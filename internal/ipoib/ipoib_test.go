package ipoib

import (
	"bytes"
	"testing"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
)

func mesh(t *testing.T, nodes int, cfg Config) (*sim.Simulation, *Net) {
	t.Helper()
	prof := fabric.EDR()
	s := sim.New(5)
	net := fabric.New(s, prof, nodes)
	var nw *Net
	s.Spawn("build", func(p *sim.Proc) {
		nw = Build(p, net, nodes, cfg)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s, nw
}

func TestStreamIntegrityAndOrder(t *testing.T) {
	s, nw := mesh(t, 2, Config{})
	var payloads [][]byte
	for i := 0; i < 50; i++ {
		payloads = append(payloads, bytes.Repeat([]byte{byte(i + 1)}, 500+100*i))
	}
	var got [][]byte
	s.Spawn("sender", func(p *sim.Proc) {
		send := nw.SendEndpoints(0)[0]
		for _, pl := range payloads {
			b, err := send.GetFree(p)
			if err != nil {
				t.Error(err)
				return
			}
			b.Len = copy(b.Data, pl)
			if err := send.Send(p, b, []int{1}); err != nil {
				t.Error(err)
				return
			}
		}
		if err := send.Finish(p); err != nil {
			t.Error(err)
		}
	})
	s.Spawn("peer-finish", func(p *sim.Proc) {
		if err := nw.SendEndpoints(1)[0].Finish(p); err != nil {
			t.Error(err)
		}
	})
	for node := 0; node < 2; node++ {
		node := node
		s.Spawn("recv", func(p *sim.Proc) {
			r := nw.RecvEndpoints(node)[0]
			for {
				d, err := r.GetData(p)
				if err != nil {
					t.Error(err)
					return
				}
				if d == nil {
					return
				}
				if node == 1 {
					got = append(got, append([]byte(nil), d.Payload...))
				}
				r.Release(p, d)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("received %d messages, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("TCP stream reordered or corrupted at %d", i)
		}
	}
}

func TestWindowFlowControl(t *testing.T) {
	// A window smaller than the send volume forces the sender to block
	// until the receiver consumes; completion is the assertion, and the
	// elapsed time must exceed the no-window-pressure case.
	run := func(window int) sim.Duration {
		s, nw := mesh(t, 2, Config{BufSize: 8 << 10, WindowBytes: window})
		s.Spawn("sender", func(p *sim.Proc) {
			send := nw.SendEndpoints(0)[0]
			for i := 0; i < 60; i++ {
				b, _ := send.GetFree(p)
				b.Len = 8000
				if err := send.Send(p, b, []int{1}); err != nil {
					t.Error(err)
					return
				}
			}
			send.Finish(p)
		})
		s.Spawn("peer-finish", func(p *sim.Proc) { nw.SendEndpoints(1)[0].Finish(p) })
		for node := 0; node < 2; node++ {
			node := node
			s.Spawn("recv", func(p *sim.Proc) {
				r := nw.RecvEndpoints(node)[0]
				for {
					d, err := r.GetData(p)
					if err != nil || d == nil {
						return
					}
					// Slow consumer on node 1.
					if node == 1 {
						p.Sleep(20_000)
					}
					r.Release(p, d)
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.Duration(s.Now())
	}
	tight := run(16 << 10) // two messages in flight
	wide := run(4 << 20)
	if tight <= wide {
		t.Fatalf("tight window (%v) should not be faster than wide (%v)", tight, wide)
	}
}

func TestSetupCheapness(t *testing.T) {
	_, nw := mesh(t, 8, Config{})
	conn, _ := nw.Setup()
	if conn <= 0 {
		t.Fatal("setup should cost something")
	}
	// TCP setup must be orders of magnitude below RDMA setup (~tens of ms).
	if conn.Milliseconds() > 5 {
		t.Fatalf("TCP setup = %v, expected well under RDMA's tens of ms", conn)
	}
}
