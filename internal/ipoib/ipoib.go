// Package ipoib models TCP/IP-over-InfiniBand socket communication: the
// performance a database gets from a network upgrade with no software
// changes. The TCP stack's per-byte costs (copies, checksums, interrupts)
// serialize on a per-node kernel path, which makes IPoIB CPU-bound at a
// fraction of the native link rate — the paper measures roughly 3x below
// the RDMA designs.
//
// The package implements shuffle.Provider so the same SHUFFLE/RECEIVE
// operators run over sockets, with send()/recv() semantics: reliable,
// ordered byte streams per connection and kernel-buffer flow control.
package ipoib

import (
	"fmt"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
)

// Config tunes the socket layer.
type Config struct {
	// BufSize is the application send-buffer size.
	BufSize int
	// WindowBytes is the per-connection kernel receive buffer (TCP window).
	WindowBytes int
	// StallTimeout bounds blocking calls.
	StallTimeout sim.Duration
}

// Defaulted fills zero fields.
func (c Config) Defaulted() Config {
	if c.BufSize <= 0 {
		c.BufSize = 64 << 10
	}
	if c.WindowBytes <= 0 {
		c.WindowBytes = 1 << 20
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 5 * time.Second
	}
	return c
}

const hdrSize = 8

// Net is a mesh of TCP connections across the cluster; it implements
// shuffle.Provider with one socket endpoint per node.
type Net struct {
	Cfg   Config
	hosts []*host
	setup sim.Duration
}

// SendEndpoints implements shuffle.Provider.
func (n *Net) SendEndpoints(node int) []shuffle.SendEndpoint {
	return []shuffle.SendEndpoint{n.hosts[node]}
}

// RecvEndpoints implements shuffle.Provider.
func (n *Net) RecvEndpoints(node int) []shuffle.RecvEndpoint {
	return []shuffle.RecvEndpoint{n.hosts[node]}
}

// Setup reports connection setup time (TCP handshakes are cheap; this is
// what makes IPoIB attractive for short queries).
func (n *Net) Setup() (conn, reg sim.Duration) { return n.setup, 0 }

// segment is one in-flight send()'s worth of bytes.
type segment struct {
	src      int
	payload  []byte
	depleted bool
}

// host is one node's socket endpoint (both halves).
type host struct {
	nw   *Net
	net  *fabric.Network
	cfg  Config
	n    int
	node int

	// kernel serializes the node's TCP stack work: every byte sent or
	// received is charged here, which caps IPoIB throughput well below the
	// link rate.
	kernel *sim.Mutex

	// outWin tracks unacknowledged bytes per destination connection.
	outWin  []int
	winCond *sim.Cond

	inbox    []*segment
	inCond   *sim.Cond
	depleted int

	appFree [][]byte
}

func newHost(net *fabric.Network, cfg Config, n, node int) *host {
	// All three primitives live on the node's own partition sim: waking a
	// waiter (kernel handoff, window ack, inbox broadcast) pushes a dispatch
	// event onto the primitive's sim, and the Deliver callbacks below run on
	// the destination partition — homing them on the control sim would leak
	// events across partitions on a parallel (-lps) run.
	hsim := net.SimAt(node)
	h := &host{
		net: net, cfg: cfg, n: n, node: node,
		kernel:  hsim.NewMutex(fmt.Sprintf("ipoib-kernel@%d", node)),
		outWin:  make([]int, n),
		winCond: hsim.NewCond(fmt.Sprintf("ipoib-win@%d", node)),
		inCond:  hsim.NewCond(fmt.Sprintf("ipoib-in@%d", node)),
	}
	for i := 0; i < 2*n; i++ {
		h.appFree = append(h.appFree, make([]byte, cfg.BufSize))
	}
	return h
}

// Build creates the socket mesh. Connection setup is three TCP handshakes'
// worth per peer — orders of magnitude cheaper than RDMA setup.
func Build(p *sim.Proc, net *fabric.Network, nodes int, cfg Config) *Net {
	cfg = cfg.Defaulted()
	nw := &Net{Cfg: cfg, hosts: make([]*host, nodes)}
	for a := 0; a < nodes; a++ {
		nw.hosts[a] = newHost(net, cfg, nodes, a)
		nw.hosts[a].nw = nw
	}
	rtt := 2 * (net.Prof.PropagationDelay + net.Prof.SwitchDelay)
	nw.setup = sim.Duration(nodes) * (3*rtt + 20*time.Microsecond)
	p.Sleep(nw.setup)
	return nw
}

func (h *host) prof() *fabric.Profile { return &h.net.Prof }

// perByte is the TCP stack CPU cost per byte on this cluster. It is charged
// once on each side, under the kernel lock.
func (h *host) perByte() float64 { return h.prof().TCPPerByte / 2 }

// GetFree implements shuffle.SendEndpoint.
func (h *host) GetFree(p *sim.Proc) (*shuffle.Buf, error) {
	h.kernel.Lock(p)
	var buf []byte
	if len(h.appFree) > 0 {
		buf = h.appFree[len(h.appFree)-1]
		h.appFree = h.appFree[:len(h.appFree)-1]
	} else {
		buf = make([]byte, h.cfg.BufSize)
	}
	h.kernel.Unlock(p)
	return &shuffle.Buf{Data: buf}, nil
}

// Send implements shuffle.SendEndpoint: one send() per group member.
func (h *host) Send(p *sim.Proc, b *shuffle.Buf, dest []int) error {
	for _, d := range dest {
		if err := h.sendOne(p, d, b.Data[:b.Len], false); err != nil {
			return err
		}
	}
	h.kernel.Lock(p)
	h.appFree = append(h.appFree, b.Data[:cap(b.Data)])
	h.kernel.Unlock(p)
	return nil
}

func (h *host) sendOne(p *sim.Proc, dest int, payload []byte, depleted bool) error {
	// Flow control: block while the connection's window is full.
	var waited sim.Duration
	for {
		h.kernel.Lock(p)
		if h.outWin[dest]+len(payload)+hdrSize <= h.cfg.WindowBytes {
			break
		}
		h.kernel.Unlock(p)
		if !h.winCond.WaitTimeout(p, 200*time.Microsecond) {
			if waited += 200 * time.Microsecond; waited > h.cfg.StallTimeout {
				return fmt.Errorf("%w: TCP window to node %d", shuffle.ErrStalled, dest)
			}
		} else {
			waited = 0
		}
	}
	size := len(payload) + hdrSize
	h.outWin[dest] += size
	// The send() syscall: segmentation, checksumming, and the copy into
	// kernel buffers, all on this node's stack.
	p.Sleep(h.prof().TCPPerMessage + sim.Duration(float64(size)*h.perByte()))
	h.kernel.Unlock(p)

	seg := &segment{src: h.node, payload: append([]byte(nil), payload...), depleted: depleted}
	peer := h.peer(dest)
	h.net.Transmit(&fabric.Message{
		From: h.node, To: dest,
		FromQP: h.connKey(h.node, dest), ToQP: h.connKey(h.node, dest),
		Payload: size, Service: fabric.RC,
		Deliver: func(at sim.Time) {
			peer.inbox = append(peer.inbox, seg)
			peer.inCond.Broadcast()
		},
	})
	return nil
}

func (h *host) peer(dest int) *host { return h.nw.hosts[dest] }

func (h *host) connKey(a, b int) uint64 { return 1<<40 | uint64(a)<<16 | uint64(b) }

// ackWindow releases window space at the sender after the receiving
// application consumed the bytes.
func (h *host) ackWindow(src, size int) {
	peer := h.nw.hosts[src]
	h.net.Transmit(&fabric.Message{
		From: h.node, To: src,
		FromQP: h.connKey(src, h.node) | 1<<41, ToQP: h.connKey(src, h.node) | 1<<41,
		Payload: 40, Service: fabric.RC,
		Deliver: func(at sim.Time) {
			peer.outWin[h.node] -= size
			peer.winCond.Broadcast()
		},
	})
}

// Finish implements shuffle.SendEndpoint: a zero-length marker closes each
// stream (TCP is ordered, so the marker arriving means all data arrived).
func (h *host) Finish(p *sim.Proc) error {
	for d := 0; d < h.n; d++ {
		if err := h.sendOne(p, d, nil, true); err != nil {
			return err
		}
	}
	return nil
}

// GetData implements shuffle.RecvEndpoint: select() on all sockets, then
// recv() under the kernel lock.
func (h *host) GetData(p *sim.Proc) (*shuffle.Data, error) {
	var waited sim.Duration
	for {
		h.kernel.Lock(p)
		if len(h.inbox) > 0 {
			seg := h.inbox[0]
			h.inbox = h.inbox[1:]
			if seg.depleted {
				h.depleted++
				h.ackWindow(seg.src, hdrSize)
				h.kernel.Unlock(p)
				continue
			}
			// recv(): copy from kernel buffers into application memory.
			p.Sleep(h.prof().TCPPerMessage + sim.Duration(float64(len(seg.payload))*h.perByte()))
			h.ackWindow(seg.src, len(seg.payload)+hdrSize)
			h.kernel.Unlock(p)
			return &shuffle.Data{Src: seg.src, Payload: seg.payload}, nil
		}
		done := h.depleted >= h.n
		h.kernel.Unlock(p)
		if done {
			return nil, nil
		}
		if !h.inCond.WaitTimeout(p, 200*time.Microsecond) {
			if waited += 200 * time.Microsecond; waited > h.cfg.StallTimeout {
				return nil, fmt.Errorf("%w: recv on node %d", shuffle.ErrStalled, h.node)
			}
		} else {
			waited = 0
		}
	}
}

// Release implements shuffle.RecvEndpoint; segment buffers are
// garbage-collected, so nothing to do.
func (h *host) Release(p *sim.Proc, d *shuffle.Data) error { return nil }
