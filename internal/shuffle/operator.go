package shuffle

import (
	"fmt"

	"rshuffle/internal/engine"
	"rshuffle/internal/sim"
)

// KeyInt64Col returns a partitioning hash over an int64 column, mixed with
// a Fibonacci multiplier so consecutive keys spread across groups.
func KeyInt64Col(col int) func(sch *engine.Schema, row []byte) uint64 {
	return func(sch *engine.Schema, row []byte) uint64 {
		v := uint64(engine.RowInt64(sch, row, col))
		v *= 0x9E3779B97F4A7C15
		return v >> 17
	}
}

// Shuffle is the data-transmitting SHUFFLE operator (Algorithm 1). It is a
// leaf of the sending fragment: each worker thread drains the child
// operator, hashes every tuple to a transmission group, packs tuples into
// RDMA-registered buffers leased from its endpoint, and transmits full
// buffers in one RDMA operation. Its Next returns Depleted once the child
// is drained and end-of-stream has propagated to every receive endpoint.
type Shuffle struct {
	In   engine.Operator
	Comm Provider
	Node int
	G    Groups
	Key  hashKeyFunc

	// ZeroCopy models sending tuples without materializing them into the
	// transmission buffer: the per-byte copy disappears, but every record
	// needs its own scatter/gather element in the work request. Following
	// Kesavan et al. (and §4.3.1), this only pays off for large records —
	// the library copies by default.
	ZeroCopy bool

	// SkipTo marks destination nodes whose partitions are already complete
	// from a previous attempt (partial restart): tuples whose transmission
	// group lies entirely within the skip set are hashed but neither packed
	// nor sent. End-of-stream still propagates to skipped destinations, so
	// their receivers observe a clean zero-row stream.
	SkipTo []bool

	// Err records the first transport error; the query should restart.
	Err error

	// BufsSent counts transmission buffers handed to SEND across all
	// threads, and SendWRs the send work requests those buffers cost at the
	// operator level (one per destination per buffer — the census a DAG
	// edge reports as its WQE cost; hardware multicast collapses the actual
	// posted count below this, which the verbs layer accounts separately).
	BufsSent, SendWRs int64

	ctx *engine.Ctx
	eps []SendEndpoint
	out [][]*Buf // [tid][group] current output buffer
	// epUsers counts threads still using each endpoint; the last one out
	// propagates Depleted (Alg. 1 lines 14-17 generalized to any e).
	epUsers []int
	// skip[g] is true when every member of group g is in SkipTo.
	skip  []bool
	empty *engine.Batch
}

// Schema implements engine.Operator; the shuffle transmits its input.
func (s *Shuffle) Schema() *engine.Schema { return s.In.Schema() }

// Open implements engine.Operator.
func (s *Shuffle) Open(ctx *engine.Ctx) {
	s.In.Open(ctx)
	s.ctx = ctx
	s.eps = s.Comm.SendEndpoints(s.Node)
	s.out = make([][]*Buf, ctx.Threads)
	for i := range s.out {
		s.out[i] = make([]*Buf, len(s.G))
	}
	s.epUsers = make([]int, len(s.eps))
	for t := 0; t < ctx.Threads; t++ {
		s.epUsers[t%len(s.eps)]++
	}
	s.skip = nil
	if len(s.SkipTo) > 0 {
		s.skip = make([]bool, len(s.G))
		for g, members := range s.G {
			all := len(members) > 0
			for _, m := range members {
				if m >= len(s.SkipTo) || !s.SkipTo[m] {
					all = false
					break
				}
			}
			s.skip[g] = all
		}
	}
	s.empty = engine.NewBatch(s.In.Schema(), 1)
}

func (s *Shuffle) fail(err error) {
	if s.Err == nil {
		s.Err = err
	}
}

// Next implements engine.Operator: it runs Algorithm 1 to completion for
// this thread.
func (s *Shuffle) Next(p *sim.Proc, tid int) (*engine.Batch, engine.State) {
	target := s.eps[tid%len(s.eps)]
	sch := s.In.Schema()
	w := sch.Width()
	ng := uint64(len(s.G))
	for {
		in, st := s.In.Next(p, tid)
		if in != nil && in.N > 0 && s.Err == nil {
			s.ctx.ChargeHash(p, in.N)
			copied := 0
			for i := 0; i < in.N; i++ {
				row := in.Row(i)
				g := int(s.Key(sch, row) % ng)
				if s.skip != nil && s.skip[g] {
					// The group's receivers already hold this partition from a
					// previous attempt; the tuple is hashed but not re-sent.
					continue
				}
				cur := s.out[tid][g]
				if cur == nil {
					b, err := target.GetFree(p)
					if err != nil {
						s.fail(err)
						break
					}
					cur, s.out[tid][g] = b, b
				}
				copy(cur.Data[cur.Len:], row)
				cur.Len += w
				copied += w
				if cur.Len+w > cur.Cap() {
					if err := target.Send(p, cur, s.G[g]); err != nil {
						s.fail(err)
						break
					}
					s.BufsSent++
					s.SendWRs += int64(len(s.G[g]))
					s.out[tid][g] = nil
				}
			}
			if s.ZeroCopy {
				// One gather element per record instead of the copy.
				p.Sleep(sim.Duration(in.N) * s.ctx.Prof.SGEPerTuple)
			} else {
				s.ctx.ChargeCopy(p, copied)
			}
		}
		if st == engine.Depleted || s.Err != nil {
			break
		}
	}
	// Flush partial buffers for this thread. A leased buffer always holds
	// at least one tuple: buffers are leased on first use and the slot is
	// cleared when a full buffer is transmitted.
	for g, cur := range s.out[tid] {
		if cur == nil || s.Err != nil {
			continue
		}
		if err := target.Send(p, cur, s.G[g]); err != nil {
			s.fail(err)
		} else {
			s.BufsSent++
			s.SendWRs += int64(len(s.G[g]))
		}
		s.out[tid][g] = nil
	}
	// The last thread using this endpoint propagates end-of-stream.
	ep := tid % len(s.eps)
	s.epUsers[ep]--
	if s.epUsers[ep] == 0 && s.Err == nil {
		if err := target.Finish(p); err != nil {
			s.fail(err)
		}
	}
	return s.empty, engine.Depleted
}

// Close implements engine.Operator.
func (s *Shuffle) Close(p *sim.Proc) { s.In.Close(p) }

// Receive is the data-receiving RECEIVE operator (Algorithm 2). It is the
// leaf of the receiving fragment: each call pulls transmission buffers from
// the thread's endpoint, copies tuples into a thread-local output batch,
// releases the buffer, and returns the batch when full.
type Receive struct {
	Comm Provider
	Node int
	// Sch is the schema of the rows being received (the sending shuffle's
	// input schema).
	Sch *engine.Schema
	// BatchTuples overrides the output batch capacity (0 = engine default).
	// The paper's compute-intensity experiment pulls 32 KiB batches.
	BatchTuples int

	// Err records the first transport error observed by any thread.
	Err error
	// Bytes counts payload bytes received across all threads.
	Bytes int64
	// Rows counts tuples received.
	Rows int64
	// RowsFrom counts tuples received per source node (grown on demand);
	// together with endpoint completion state it forms the per-partition
	// progress watermark that partial-restart recovery consults.
	RowsFrom []int64

	ctx  *engine.Ctx
	eps  []RecvEndpoint
	out  []*engine.Batch
	pend []*pendingData // per-thread partially consumed buffer
}

type pendingData struct {
	d   *Data
	off int
}

// Schema implements engine.Operator.
func (r *Receive) Schema() *engine.Schema { return r.Sch }

// Open implements engine.Operator.
func (r *Receive) Open(ctx *engine.Ctx) {
	r.ctx = ctx
	r.eps = r.Comm.RecvEndpoints(r.Node)
	r.out = make([]*engine.Batch, ctx.Threads)
	r.pend = make([]*pendingData, ctx.Threads)
	bt := r.BatchTuples
	if bt <= 0 {
		bt = engine.DefaultBatchTuples
	}
	for i := range r.out {
		r.out[i] = engine.NewBatch(r.Sch, bt)
	}
}

// Next implements engine.Operator.
func (r *Receive) Next(p *sim.Proc, tid int) (*engine.Batch, engine.State) {
	target := r.eps[tid%len(r.eps)]
	out := r.out[tid]
	out.Reset()
	for {
		var d *Data
		var off int
		if pd := r.pend[tid]; pd != nil {
			d, off = pd.d, pd.off
			r.pend[tid] = nil
		} else {
			var err error
			d, err = target.GetData(p)
			if err != nil {
				if r.Err == nil {
					r.Err = err
				}
				return out, engine.Depleted
			}
			if d == nil {
				return out, engine.Depleted
			}
		}
		n := out.AppendRows(d.Payload[off:])
		consumed := n * r.Sch.Width()
		r.ctx.ChargeCopy(p, consumed)
		r.Bytes += int64(consumed)
		r.Rows += int64(n)
		for len(r.RowsFrom) <= d.Src {
			r.RowsFrom = append(r.RowsFrom, 0)
		}
		r.RowsFrom[d.Src] += int64(n)
		off += consumed
		if off < len(d.Payload) {
			r.pend[tid] = &pendingData{d: d, off: off}
			return out, engine.MoreData
		}
		if err := target.Release(p, d); err != nil {
			if r.Err == nil {
				r.Err = err
			}
			return out, engine.Depleted
		}
		if out.Full() {
			return out, engine.MoreData
		}
	}
}

// Close implements engine.Operator.
func (r *Receive) Close(p *sim.Proc) {}

// PartitionProgress is the watermark of the stream from one source node.
type PartitionProgress struct {
	// Rows is how many tuples arrived from the source.
	Rows int64
	// Complete is true when every receive endpoint saw the source's
	// end-of-stream marker: the partition is fully delivered and a restart
	// may skip re-streaming it (provided this node's memory survived).
	Complete bool
}

// Progress returns the per-source progress watermarks over n source nodes.
// A source is complete only if every endpoint reports its stream depleted;
// endpoints that cannot report progress make every source incomplete, which
// degrades partial restart to a (correct) full restart.
func (r *Receive) Progress(n int) []PartitionProgress {
	out := make([]PartitionProgress, n)
	for src := 0; src < n; src++ {
		if src < len(r.RowsFrom) {
			out[src].Rows = r.RowsFrom[src]
		}
		complete := len(r.eps) > 0
		for _, ep := range r.eps {
			pr, ok := ep.(ProgressReporter)
			if !ok || !pr.Depleted(src) {
				complete = false
				break
			}
		}
		out[src].Complete = complete
	}
	return out
}

// CheckErr returns the first transport error seen by either side.
func CheckErr(sh *Shuffle, rc *Receive) error {
	if sh != nil && sh.Err != nil {
		return fmt.Errorf("shuffle send: %w", sh.Err)
	}
	if rc != nil && rc.Err != nil {
		return fmt.Errorf("shuffle recv: %w", rc.Err)
	}
	return nil
}
