package shuffle

import (
	"fmt"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

// waitQuantum is the polling granularity of endpoint wait loops; it bounds
// the latency of observing conditions that have no direct wakeup path.
// Fruitless waits back off exponentially up to maxWaitQuantum so a stalled
// endpoint re-polls ever less often while it runs down its StallTimeout.
const (
	waitQuantum    = 200 * time.Microsecond
	maxWaitQuantum = 16 * waitQuantum
)

// waiter paces one blocking endpoint call: every fruitless wait doubles the
// next quantum (productive work resets it) and accumulates toward the
// StallTimeout bound, converting a protocol deadlock into a diagnosable
// error instead of a hang. Wakeups themselves are event-driven (condition
// broadcasts); the quantum only sets how often the loop re-checks state
// that has no direct wakeup path.
type waiter struct {
	limit   sim.Duration
	quantum sim.Duration
	waited  sim.Duration
}

func newWaiter(limit sim.Duration) waiter {
	return waiter{limit: limit, quantum: waitQuantum}
}

// step returns the quantum for the upcoming wait.
func (w *waiter) step() sim.Duration { return w.quantum }

// progress resets the backoff after productive work.
func (w *waiter) progress() { w.quantum, w.waited = waitQuantum, 0 }

// idle records a fruitless wait of the current quantum and reports false
// once the accumulated wait exceeds the stall limit.
func (w *waiter) idle() bool {
	w.waited += w.quantum
	if w.quantum < maxWaitQuantum {
		w.quantum *= 2
		if w.quantum > maxWaitQuantum {
			w.quantum = maxWaitQuantum
		}
	}
	return w.waited <= w.limit
}

// remoteWin addresses a window of remote registered memory.
type remoteWin struct {
	rkey uint32
	base int
}

// srRCSend implements the SEND endpoint with RDMA Send/Receive over the
// Reliable Connection service (§4.4.1, Fig. 5a). One QP per peer node; the
// sender transmits while it holds credit, where credit is the absolute
// number of Receive requests the peer has posted, written into creditMR by
// the receiver via RDMA Write.
type srRCSend struct {
	dev *verbs.Device
	cfg Config
	n   int

	qps []*verbs.QP // per destination node
	cq  *verbs.CQ   // send completions for all QPs (one poll serves all)

	gate epGate

	mr       *verbs.MR // transmission buffer pool
	poolBufs int
	free     *sim.Queue[int] // free buffer offsets
	pending  map[int]int     // buffer offset -> outstanding send completions

	sent     []uint64  // per dest: sends posted on this connection
	creditMR *verbs.MR // per dest 8-byte absolute credit, written by peers

	// failed marks destinations declared dead by the connection manager;
	// qpDest maps each connection's QPN back to its destination so error
	// completions can be attributed.
	failed []bool
	qpDest map[uint32]int
}

// DrainPeer and ClosePeer implement PeerDrainer: blocked senders wake and
// observe the failed flag instead of waiting on credit the dead receiver
// will never write.
func (e *srRCSend) DrainPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = true
	}
}

func (e *srRCSend) ClosePeer(peer int) {
	e.cq.Kick()
	e.dev.KickMemWaiters()
}

// ReopenPeer implements PeerResumer: the failed mark clears and the
// sent/credit counters stay as they were — the absolute-credit protocol
// needs no reset, so a drain/reopen cycle leaks nothing.
func (e *srRCSend) ReopenPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = false
	}
}

// anyFailed returns a failed destination this endpoint still owes traffic,
// if one exists.
func (e *srRCSend) anyFailed() (int, bool) {
	for d, f := range e.failed {
		if f {
			return d, true
		}
	}
	return 0, false
}

// sendErr attributes a post/completion failure to a dead peer when possible.
func (e *srRCSend) sendErr(dest int, err error) error {
	if err == verbs.ErrPeerDown || e.failed[dest] {
		return peerFailedErr(dest)
	}
	return err
}

func (e *srRCSend) buf(off int) *Buf {
	return &Buf{Data: e.mr.Buf[off+HeaderSize : off+e.cfg.BufSize], off: off}
}

// GetFree implements SendEndpoint: it polls the send CQ until a buffer has
// completed toward every member of its transmission group.
func (e *srRCSend) GetFree(p *sim.Proc) (*Buf, error) {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		if off, ok := e.free.TryGet(); ok {
			return e.buf(off), nil
		}
		if d, ok := e.anyFailed(); ok {
			// A buffer pending toward the dead peer will never complete; the
			// fragment fails and recovery re-plans over the survivors.
			return nil, peerFailedErr(d)
		}
		var es [16]verbs.CQE
		if !e.cq.WaitNonEmpty(p, w.step()) {
			if !w.idle() {
				return nil, fmt.Errorf("%w: GetFree on node %d", ErrStalled, e.dev.Node())
			}
			continue
		}
		w.progress()
		n := e.gate.poll(p, e.cq, es[:])
		if err := e.reap(es[:n]); err != nil {
			return nil, err
		}
	}
}

// reap processes send completions, returning fully-completed buffers to the
// free list. A completion with an error status (retry exhaustion, or a
// flush after the QP errored) aborts the endpoint.
func (e *srRCSend) reap(es []verbs.CQE) error {
	var err error
	for _, c := range es {
		if c.Status != verbs.WCSuccess {
			if err == nil {
				if d, ok := e.qpDest[c.QPN]; ok && (c.Status == verbs.WCPeerDown || e.failed[d]) {
					err = peerFailedErr(d)
				} else {
					err = wcErr(c)
				}
			}
			continue
		}
		off := int(c.WRID)
		e.pending[off]--
		if e.pending[off] == 0 {
			delete(e.pending, off)
			e.free.Put(off)
		}
	}
	return err
}

// waitCredit blocks until the connection to dest has spare credit, then
// consumes one unit.
func (e *srRCSend) waitCredit(p *sim.Proc, dest int) error {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		if e.failed[dest] {
			return peerFailedErr(dest)
		}
		if e.qps[dest].State() == verbs.QPError {
			// The peer can never grant more credit over a dead connection;
			// fail fast instead of running down the stall timeout.
			return fmt.Errorf("%w: connection to node %d is in the error state", ErrTransport, dest)
		}
		credit := verbs.ReadUint64(e.creditMR.Buf[8*dest:])
		if e.sent[dest] < credit {
			e.sent[dest]++
			return nil
		}
		if !e.dev.WaitMemChange(p, w.step()) {
			if !w.idle() {
				return fmt.Errorf("%w: waiting for credit from node %d", ErrStalled, dest)
			}
			continue
		}
		w.progress()
	}
}

func (e *srRCSend) post(p *sim.Proc, dest, off, length int) error {
	for {
		err := e.gate.post(p, e.qps[dest], verbs.SendWR{
			ID: uint64(off), Op: verbs.OpSend,
			MR: e.mr, Offset: off, Len: length,
		})
		if err == nil {
			return nil
		}
		if err != verbs.ErrSQFull {
			return err
		}
		var es [16]verbs.CQE
		e.cq.WaitNonEmpty(p, 0)
		n := e.gate.poll(p, e.cq, es[:])
		if err := e.reap(es[:n]); err != nil {
			return err
		}
	}
}

func (e *srRCSend) send(p *sim.Proc, b *Buf, dest []int, flags uint16) error {
	putHeader(e.mr.Buf[b.off:], header{payload: b.Len, flags: flags, src: uint16(e.dev.Node())})
	e.pending[b.off] = len(dest)
	for _, d := range dest {
		if err := e.waitCredit(p, d); err != nil {
			return err
		}
		if err := e.post(p, d, b.off, HeaderSize+b.Len); err != nil {
			return e.sendErr(d, err)
		}
	}
	return nil
}

// Send implements SendEndpoint.
func (e *srRCSend) Send(p *sim.Proc, b *Buf, dest []int) error {
	return e.send(p, b, dest, 0)
}

// Finish implements SendEndpoint: a zero-payload buffer tagged Depleted is
// multicast to every node, then in-flight sends are drained.
func (e *srRCSend) Finish(p *sim.Proc) error {
	b, err := e.GetFree(p)
	if err != nil {
		return err
	}
	all := make([]int, e.n)
	for i := range all {
		all[i] = i
	}
	b.Len = 0
	if err := e.send(p, b, all, flagDepleted); err != nil {
		return err
	}
	w := newWaiter(e.cfg.StallTimeout)
	for len(e.pending) > 0 {
		if d, ok := e.anyFailed(); ok {
			return peerFailedErr(d)
		}
		var es [16]verbs.CQE
		if !e.cq.WaitNonEmpty(p, w.step()) {
			if !w.idle() {
				return fmt.Errorf("%w: Finish flush on node %d", ErrStalled, e.dev.Node())
			}
			continue
		}
		w.progress()
		n := e.gate.poll(p, e.cq, es[:])
		if err := e.reap(es[:n]); err != nil {
			return err
		}
	}
	return nil
}

// srRCRecv implements the RECEIVE endpoint over RC Send/Receive (Fig. 5b).
// It pre-posts receive buffers per source, and after every
// CreditFrequency-th post writes the absolute credit back into the sender's
// creditMR with RDMA Write.
type srRCRecv struct {
	dev *verbs.Device
	cfg Config
	n   int

	qps []*verbs.QP // per source node
	rcq *verbs.CQ   // receive completions, shared by all QPs
	wcq *verbs.CQ   // completions of outgoing credit writes

	gate epGate

	bufMR   *verbs.MR // receive slots, perSrc per source
	perSrc  int
	stageMR *verbs.MR // per source 8-byte staging for credit writes

	creditIssued []uint64 // absolute receives posted per source
	lastWritten  []uint64
	creditWin    []remoteWin // where each sender keeps my credit slot

	depleted   int    // sources that have sent their Depleted marker
	depletedBy []bool // which sources those were

	// failed marks sources declared dead by the connection manager; qpSrc
	// attributes completions to their source connection.
	failed []bool
	qpSrc  map[uint32]int
}

func (e *srRCRecv) slotOff(slot int) int { return slot * e.cfg.BufSize }
func (e *srRCRecv) slotSrc(slot int) int { return slot / e.perSrc }

// DrainPeer and ClosePeer implement PeerDrainer. A failed source that has
// already sent its Depleted marker owes nothing, so the receiver can still
// finish; otherwise GetData reports ErrPeerFailed instead of waiting for
// data the dead node will never send.
func (e *srRCRecv) DrainPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = true
	}
}

func (e *srRCRecv) ClosePeer(peer int) {
	e.rcq.Kick()
	e.wcq.Kick()
}

// ReopenPeer implements PeerResumer.
func (e *srRCRecv) ReopenPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = false
	}
}

// Depleted implements ProgressReporter: the stream from src completed once
// its Depleted marker arrived.
func (e *srRCRecv) Depleted(src int) bool {
	return src >= 0 && src < e.n && e.depletedBy[src]
}

// missingFailed returns a failed source whose stream is still incomplete.
func (e *srRCRecv) missingFailed() (int, bool) {
	for s, f := range e.failed {
		if f && !e.depletedBy[s] {
			return s, true
		}
	}
	return 0, false
}

// repost returns slot to its source QP and advances the credit protocol.
func (e *srRCRecv) repost(p *sim.Proc, slot int) error {
	src := e.slotSrc(slot)
	if e.failed[src] {
		// The connection is torn down; the slot is dead but so is its
		// source — nothing further arrives on it.
		return nil
	}
	err := e.gate.postRecv(p, e.qps[src], verbs.RecvWR{
		ID: uint64(slot), MR: e.bufMR, Offset: e.slotOff(slot), Len: e.cfg.BufSize,
	})
	if err != nil {
		return fmt.Errorf("%w: repost recv on node %d: %v", ErrTransport, e.dev.Node(), err)
	}
	e.creditIssued[src]++
	if e.creditIssued[src]-e.lastWritten[src] >= uint64(e.cfg.CreditFrequency) {
		if err := e.writeCredit(p, src); err != nil {
			return err
		}
	}
	// Reap completed credit writes opportunistically.
	return e.drainWrites(p)
}

// drainWrites reaps completed credit writes, surfacing any that failed.
func (e *srRCRecv) drainWrites(p *sim.Proc) error {
	var es [8]verbs.CQE
	for e.wcq.Len() > 0 {
		n := e.gate.poll(p, e.wcq, es[:])
		for _, c := range es[:n] {
			if c.Status != verbs.WCSuccess {
				if s, ok := e.qpSrc[c.QPN]; ok && (c.Status == verbs.WCPeerDown || e.failed[s]) {
					// A credit write toward a dead peer flushed; the receiver
					// itself loses nothing.
					continue
				}
				return wcErr(c)
			}
		}
	}
	return nil
}

// writeCredit transmits the absolute credit for src with RDMA Write.
func (e *srRCRecv) writeCredit(p *sim.Proc, src int) error {
	if e.failed[src] {
		return nil
	}
	e.lastWritten[src] = e.creditIssued[src]
	verbs.PutUint64(e.stageMR.Buf[8*src:], e.creditIssued[src])
	err := e.gate.post(p, e.qps[src], verbs.SendWR{
		Op: verbs.OpWrite, MR: e.stageMR, Offset: 8 * src, Len: 8, Inline: true,
		RemoteKey: e.creditWin[src].rkey, RemoteOffset: e.creditWin[src].base,
	})
	if err == verbs.ErrSQFull {
		e.wcq.WaitNonEmpty(p, 0)
		if err := e.drainWrites(p); err != nil {
			return err
		}
		return e.writeCredit(p, src)
	}
	if err == verbs.ErrPeerDown {
		return nil // the peer died under us; its credit no longer matters
	}
	if err != nil {
		return fmt.Errorf("%w: credit write: %v", ErrTransport, err)
	}
	traceCredit(e.dev, src, int64(e.creditIssued[src]))
	return nil
}

// GetData implements RecvEndpoint.
func (e *srRCRecv) GetData(p *sim.Proc) (*Data, error) {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		var es [1]verbs.CQE
		if e.gate.poll(p, e.rcq, es[:]) == 1 {
			w.progress()
			if es[0].Status != verbs.WCSuccess {
				if s, ok := e.qpSrc[es[0].QPN]; ok && (es[0].Status == verbs.WCPeerDown || e.failed[s]) {
					return nil, peerFailedErr(s)
				}
				return nil, wcErr(es[0])
			}
			slot := int(es[0].WRID)
			off := e.slotOff(slot)
			h := getHeader(e.bufMR.Buf[off:])
			if h.flags&flagDepleted != 0 {
				e.depleted++
				e.depletedBy[int(h.src)] = true
				if e.depleted >= e.n {
					e.rcq.Kick()
				}
				if h.payload == 0 {
					if err := e.repost(p, slot); err != nil {
						return nil, err
					}
					continue
				}
			}
			return &Data{
				Src:     int(h.src),
				Payload: e.bufMR.Buf[off+HeaderSize : off+HeaderSize+h.payload],
				slot:    slot,
			}, nil
		}
		if e.depleted >= e.n {
			return nil, nil
		}
		if s, ok := e.missingFailed(); ok {
			return nil, peerFailedErr(s)
		}
		if !e.rcq.WaitNonEmpty(p, w.step()) {
			if !w.idle() {
				return nil, fmt.Errorf("%w: GetData on node %d (%d/%d sources depleted)",
					ErrStalled, e.dev.Node(), e.depleted, e.n)
			}
		}
	}
}

// Release implements RecvEndpoint.
func (e *srRCRecv) Release(p *sim.Proc, d *Data) error {
	return e.repost(p, d.slot)
}

// newSRRCPair builds the per-node send and receive endpoint halves; comm
// wiring connects QPs and exchanges windows afterwards.
func newSRRCSend(dev *verbs.Device, cfg Config, n, tpe int) *srRCSend {
	pool := tpe * n * cfg.BuffersPerPeer
	e := &srRCSend{
		dev: dev, cfg: cfg, n: n,
		poolBufs: pool,
		gate:     newEPGate(dev.Sim(), fmt.Sprintf("srrc-send@%d", dev.Node())),
		free:     sim.NewQueue[int](dev.Sim(), fmt.Sprintf("srrc-free@%d", dev.Node())),
		pending:  make(map[int]int),
		sent:     make([]uint64, n),
		failed:   make([]bool, n),
		qpDest:   make(map[uint32]int),
	}
	e.cq = dev.CreateCQ(2*pool*n + 64)
	e.mr = dev.AllocMRNoCost(pool * cfg.BufSize)
	e.creditMR = dev.RegisterMRNoCost(make([]byte, 8*n))
	for i := 0; i < pool; i++ {
		e.free.Put(i * cfg.BufSize)
	}
	e.qps = make([]*verbs.QP, n)
	for d := 0; d < n; d++ {
		e.qps[d] = dev.CreateQP(verbs.QPConfig{
			Type: fabric.RC, SendCQ: e.cq, RecvCQ: e.cq,
			MaxSend: 2*pool + 16, MaxRecv: 4,
		})
		e.qpDest[e.qps[d].QPN()] = d
	}
	return e
}

func newSRRCRecv(dev *verbs.Device, cfg Config, n, tpe int) *srRCRecv {
	perSrc := tpe * cfg.RecvBuffersPerPeer
	e := &srRCRecv{
		dev: dev, cfg: cfg, n: n, perSrc: perSrc,
		gate:         newEPGate(dev.Sim(), fmt.Sprintf("srrc-recv@%d", dev.Node())),
		creditIssued: make([]uint64, n),
		lastWritten:  make([]uint64, n),
		creditWin:    make([]remoteWin, n),
		depletedBy:   make([]bool, n),
		failed:       make([]bool, n),
		qpSrc:        make(map[uint32]int),
	}
	slots := n * perSrc
	e.rcq = dev.CreateCQ(slots + 64)
	// Credit-write completions can pile up behind bulk data in the NIC's
	// transmit FIFO, so size this CQ to the worst case of one write per
	// posted receive.
	e.wcq = dev.CreateCQ(slots + 64)
	e.bufMR = dev.AllocMRNoCost(slots * cfg.BufSize)
	e.stageMR = dev.RegisterMRNoCost(make([]byte, 8*n))
	e.qps = make([]*verbs.QP, n)
	for s := 0; s < n; s++ {
		e.qps[s] = dev.CreateQP(verbs.QPConfig{
			Type: fabric.RC, SendCQ: e.wcq, RecvCQ: e.rcq,
			MaxSend: 4 * n, MaxRecv: perSrc + 4,
		})
		e.qpSrc[e.qps[s].QPN()] = s
	}
	return e
}

// prime posts the initial receive windows and records the initial credit,
// which the wiring communicates to senders out of band (part of connection
// setup).
func (e *srRCRecv) prime(p *sim.Proc) error {
	for src := 0; src < e.n; src++ {
		for i := 0; i < e.perSrc; i++ {
			slot := src*e.perSrc + i
			err := e.qps[src].PostRecv(p, verbs.RecvWR{
				ID: uint64(slot), MR: e.bufMR, Offset: e.slotOff(slot), Len: e.cfg.BufSize,
			})
			if err != nil {
				return fmt.Errorf("shuffle: prime recv failed: %v", err)
			}
		}
		e.creditIssued[src] = uint64(e.perSrc)
		e.lastWritten[src] = uint64(e.perSrc)
	}
	return nil
}
