package shuffle

import (
	"fmt"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

// srUDSend implements the SEND endpoint with RDMA Send/Receive over the
// Unreliable Datagram service (§4.4.2, Fig. 6a). A single Queue Pair
// reaches every peer; messages are capped at the MTU. The same stateless
// credit protocol as RC is used, but credit arrives as small UD datagrams
// on this endpoint's own QP (UD supports no RDMA Write). The sender counts
// every data message per destination and transmits the totals at the end so
// the receiver can detect missing or in-flight packets.
type srUDSend struct {
	dev *verbs.Device
	cfg Config
	n   int
	mtu int

	qp  *verbs.QP
	scq *verbs.CQ // send completions (fire at wire time)
	ccq *verbs.CQ // credit datagram arrivals

	gate epGate

	mr       *verbs.MR
	poolBufs int
	free     *sim.Queue[int]
	pending  map[int]int

	creditMR   *verbs.MR // receive slots for credit datagrams
	creditSlot int       // slot size: GRH + HeaderSize

	ahs    []verbs.AH // per destination: the paired receive endpoint's QP
	sent   []uint64   // credit consumed per destination
	credit []uint64   // absolute credit granted per destination
	totals []uint64   // data messages sent per destination

	// hwmc enables one-WQE broadcast through the multicast group mgid.
	hwmc bool
	mgid uint32

	// failed marks destinations declared dead by the connection manager.
	// UD sends to them still complete locally (the datagram vanishes on the
	// wire), so buffers keep cycling; only the credit wait must not block.
	failed []bool
}

// DrainPeer and ClosePeer implement PeerDrainer.
func (e *srUDSend) DrainPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = true
	}
}

func (e *srUDSend) ClosePeer(peer int) {
	e.ccq.Kick()
	e.scq.Kick()
}

// ReopenPeer implements PeerResumer. UD connections hold no per-peer QP
// state, so clearing the failed mark fully resumes the destination: the
// absolute credit and totals counters were never disturbed by the drain.
func (e *srUDSend) ReopenPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = false
	}
}

func (e *srUDSend) buf(off int) *Buf {
	return &Buf{Data: e.mr.Buf[off+HeaderSize : off+e.mtu], off: off}
}

// drainCredit consumes pending credit datagrams; absolute credit makes the
// update a simple max, so reordered or duplicated grants are harmless.
func (e *srUDSend) drainCredit(p *sim.Proc) error {
	var es [16]verbs.CQE
	for e.ccq.Len() > 0 {
		n := e.gate.poll(p, e.ccq, es[:])
		for _, c := range es[:n] {
			if c.Status != verbs.WCSuccess {
				return wcErr(c)
			}
			slot := int(c.WRID)
			off := slot * e.creditSlot
			h := getHeader(e.creditMR.Buf[off+verbs.GRHSize:])
			if h.flags&flagCredit != 0 {
				if h.value > e.credit[h.src] {
					e.credit[h.src] = h.value
				}
			}
			if err := e.postCreditRecv(p, slot); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *srUDSend) postCreditRecv(p *sim.Proc, slot int) error {
	err := e.gate.postRecv(p, e.qp, verbs.RecvWR{
		ID: uint64(slot), MR: e.creditMR, Offset: slot * e.creditSlot, Len: e.creditSlot,
	})
	if err != nil {
		return fmt.Errorf("%w: UD credit repost: %v", ErrTransport, err)
	}
	return nil
}

func (e *srUDSend) reap(es []verbs.CQE) error {
	var err error
	for _, c := range es {
		if c.Status != verbs.WCSuccess {
			if err == nil {
				err = wcErr(c)
			}
			continue
		}
		off := int(c.WRID)
		e.pending[off]--
		if e.pending[off] == 0 {
			delete(e.pending, off)
			e.free.Put(off)
		}
	}
	return err
}

// GetFree implements SendEndpoint.
func (e *srUDSend) GetFree(p *sim.Proc) (*Buf, error) {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		if off, ok := e.free.TryGet(); ok {
			return e.buf(off), nil
		}
		var es [16]verbs.CQE
		if !e.scq.WaitNonEmpty(p, w.step()) {
			if !w.idle() {
				return nil, fmt.Errorf("%w: UD GetFree on node %d", ErrStalled, e.dev.Node())
			}
			continue
		}
		w.progress()
		n := e.gate.poll(p, e.scq, es[:])
		if err := e.reap(es[:n]); err != nil {
			return nil, err
		}
	}
}

func (e *srUDSend) waitCredit(p *sim.Proc, dest int) error {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		if e.failed[dest] {
			return peerFailedErr(dest)
		}
		if err := e.drainCredit(p); err != nil {
			return err
		}
		if e.sent[dest] < e.credit[dest] {
			e.sent[dest]++
			return nil
		}
		if !e.ccq.WaitNonEmpty(p, w.step()) {
			if !w.idle() {
				return fmt.Errorf("%w: waiting for UD credit from node %d", ErrStalled, dest)
			}
			continue
		}
		w.progress()
	}
}

func (e *srUDSend) post(p *sim.Proc, dest, off, length int) error {
	for {
		err := e.gate.post(p, e.qp, verbs.SendWR{
			ID: uint64(off), Op: verbs.OpSend,
			MR: e.mr, Offset: off, Len: length,
			Dest: e.ahs[dest],
		})
		if err == nil {
			return nil
		}
		if err != verbs.ErrSQFull {
			return err
		}
		var es [16]verbs.CQE
		e.scq.WaitNonEmpty(p, 0)
		n := e.gate.poll(p, e.scq, es[:])
		if err := e.reap(es[:n]); err != nil {
			return err
		}
	}
}

func (e *srUDSend) send(p *sim.Proc, b *Buf, dest []int, flags uint16, value uint64) error {
	putHeader(e.mr.Buf[b.off:], header{
		payload: b.Len, flags: flags, src: uint16(e.dev.Node()), value: value,
	})
	if e.hwmc && flags == 0 && len(dest) == e.n {
		// Native multicast broadcast: one credit unit per member, a single
		// work request, a single uplink serialization.
		for _, d := range dest {
			if err := e.waitCredit(p, d); err != nil {
				return err
			}
			e.totals[d]++
		}
		e.pending[b.off] = 1 // one WQE, one completion
		for {
			err := e.gate.post(p, e.qp, verbs.SendWR{
				ID: uint64(b.off), Op: verbs.OpSend,
				MR: e.mr, Offset: b.off, Len: HeaderSize + b.Len,
				Dest: verbs.AH{Multicast: true, MGID: e.mgid},
			})
			if err == nil {
				return nil
			}
			if err != verbs.ErrSQFull {
				return err
			}
			var es [16]verbs.CQE
			e.scq.WaitNonEmpty(p, 0)
			n := e.gate.poll(p, e.scq, es[:])
			if err := e.reap(es[:n]); err != nil {
				return err
			}
		}
	}
	e.pending[b.off] = len(dest)
	for _, d := range dest {
		if err := e.waitCredit(p, d); err != nil {
			return err
		}
		if err := e.post(p, d, b.off, HeaderSize+b.Len); err != nil {
			return err
		}
		if flags&flagTotal == 0 {
			e.totals[d]++
		}
	}
	return nil
}

// Send implements SendEndpoint.
func (e *srUDSend) Send(p *sim.Proc, b *Buf, dest []int) error {
	return e.send(p, b, dest, 0, 0)
}

// Finish implements SendEndpoint: every peer receives a total-count
// datagram carrying how many data messages were sent to it, so it can keep
// waiting for reordered stragglers or declare loss (§4.4.2).
func (e *srUDSend) Finish(p *sim.Proc) error {
	for d := 0; d < e.n; d++ {
		b, err := e.GetFree(p)
		if err != nil {
			return err
		}
		b.Len = 0
		if err := e.send(p, b, []int{d}, flagTotal|flagDepleted, e.totals[d]); err != nil {
			return err
		}
	}
	w := newWaiter(e.cfg.StallTimeout)
	for len(e.pending) > 0 {
		var es [16]verbs.CQE
		if !e.scq.WaitNonEmpty(p, w.step()) {
			if !w.idle() {
				return fmt.Errorf("%w: UD Finish flush", ErrStalled)
			}
			continue
		}
		w.progress()
		n := e.gate.poll(p, e.scq, es[:])
		if err := e.reap(es[:n]); err != nil {
			return err
		}
	}
	return nil
}

// srUDRecv implements the RECEIVE endpoint over UD Send/Receive (Fig. 6b).
// One QP receives from every source; posted receive slots are shared.
// Per-source counters implement the paper's out-of-order Depleted handling:
// the state only transitions once received[src] matches the sender's total,
// and a timeout after the totals are known is treated as packet loss.
type srUDRecv struct {
	dev *verbs.Device
	cfg Config
	n   int
	mtu int

	qp  *verbs.QP
	rcq *verbs.CQ // data arrivals
	scq *verbs.CQ // completions of outgoing credit datagrams

	gate epGate

	bufMR    *verbs.MR
	slots    int
	slotSize int
	perSrc   int

	stageMR *verbs.MR  // per source HeaderSize staging for credit datagrams
	ahs     []verbs.AH // per source: the paired send endpoint's QP

	creditIssued []uint64
	lastWritten  []uint64
	received     []uint64
	expected     []uint64
	totalKnown   []bool
	knownCount   int

	lossWait sim.Duration // accumulated wait after all totals are known

	// failed marks sources declared dead by the connection manager.
	failed []bool
}

// DrainPeer and ClosePeer implement PeerDrainer. A failed source whose
// total is known and matched owes nothing more; otherwise GetData reports
// ErrPeerFailed instead of running down the DepletedTimeout.
func (e *srUDRecv) DrainPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = true
	}
}

func (e *srUDRecv) ClosePeer(peer int) {
	e.rcq.Kick()
	e.scq.Kick()
}

// ReopenPeer implements PeerResumer.
func (e *srUDRecv) ReopenPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = false
	}
}

// Depleted implements ProgressReporter: a UD stream is complete only when
// the sender's total is known and every counted message arrived.
func (e *srUDRecv) Depleted(src int) bool {
	return src >= 0 && src < e.n && e.totalKnown[src] && e.received[src] == e.expected[src]
}

// missingFailed returns a failed source whose stream is still incomplete.
func (e *srUDRecv) missingFailed() (int, bool) {
	for s, f := range e.failed {
		if f && (!e.totalKnown[s] || e.received[s] != e.expected[s]) {
			return s, true
		}
	}
	return 0, false
}

func (e *srUDRecv) allDone() bool {
	if e.knownCount < e.n {
		return false
	}
	for s := 0; s < e.n; s++ {
		if e.received[s] != e.expected[s] {
			return false
		}
	}
	return true
}

func (e *srUDRecv) repost(p *sim.Proc, slot, src int) error {
	err := e.gate.postRecv(p, e.qp, verbs.RecvWR{
		ID: uint64(slot), MR: e.bufMR, Offset: slot * e.slotSize, Len: e.slotSize,
	})
	if err != nil {
		return fmt.Errorf("%w: UD repost: %v", ErrTransport, err)
	}
	e.creditIssued[src]++
	if e.creditIssued[src]-e.lastWritten[src] >= uint64(e.cfg.CreditFrequency) {
		if err := e.sendCredit(p, src); err != nil {
			return err
		}
	}
	return e.drainSends(p)
}

// drainSends reaps completed credit-datagram sends, surfacing failures.
func (e *srUDRecv) drainSends(p *sim.Proc) error {
	var es [8]verbs.CQE
	for e.scq.Len() > 0 {
		n := e.gate.poll(p, e.scq, es[:])
		for _, c := range es[:n] {
			if c.Status != verbs.WCSuccess {
				return wcErr(c)
			}
		}
	}
	return nil
}

// sendCredit grants absolute credit to src with a small UD datagram.
func (e *srUDRecv) sendCredit(p *sim.Proc, src int) error {
	if e.failed[src] {
		return nil // the grant would vanish on the dead node's cut links
	}
	e.lastWritten[src] = e.creditIssued[src]
	off := src * HeaderSize
	putHeader(e.stageMR.Buf[off:], header{
		flags: flagCredit, src: uint16(e.dev.Node()), value: e.creditIssued[src],
	})
	err := e.gate.post(p, e.qp, verbs.SendWR{
		Op: verbs.OpSend, MR: e.stageMR, Offset: off, Len: HeaderSize,
		Dest: e.ahs[src], Inline: true,
	})
	if err == verbs.ErrSQFull {
		e.scq.WaitNonEmpty(p, 0)
		if err := e.drainSends(p); err != nil {
			return err
		}
		return e.sendCredit(p, src)
	}
	if err != nil {
		return fmt.Errorf("%w: UD credit send: %v", ErrTransport, err)
	}
	traceCredit(e.dev, src, int64(e.creditIssued[src]))
	return nil
}

// GetData implements RecvEndpoint.
func (e *srUDRecv) GetData(p *sim.Proc) (*Data, error) {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		var es [1]verbs.CQE
		if e.gate.poll(p, e.rcq, es[:]) == 1 {
			w.progress()
			if es[0].Status != verbs.WCSuccess {
				return nil, wcErr(es[0])
			}
			slot := int(es[0].WRID)
			off := slot*e.slotSize + verbs.GRHSize
			h := getHeader(e.bufMR.Buf[off:])
			src := int(h.src)
			if h.flags&flagTotal != 0 {
				if !e.totalKnown[src] {
					e.totalKnown[src] = true
					e.knownCount++
				}
				e.expected[src] = h.value
				if err := e.repost(p, slot, src); err != nil {
					return nil, err
				}
				if e.allDone() {
					e.rcq.Kick()
				}
				continue
			}
			e.received[src]++
			if e.allDone() {
				e.rcq.Kick()
			}
			return &Data{
				Src:     src,
				Payload: e.bufMR.Buf[off+HeaderSize : off+HeaderSize+h.payload],
				slot:    slot,
			}, nil
		}
		if e.allDone() {
			return nil, nil
		}
		if s, ok := e.missingFailed(); ok {
			return nil, peerFailedErr(s)
		}
		q := w.step()
		if !e.rcq.WaitNonEmpty(p, q) {
			if e.knownCount == e.n {
				// All totals known but counts short: either packets are
				// still in flight (common, reordering) or lost (rare).
				if e.lossWait += q; e.lossWait > e.cfg.DepletedTimeout {
					return nil, fmt.Errorf("%w on node %d: %s",
						ErrDataLoss, e.dev.Node(), e.lossReport())
				}
			}
			if !w.idle() {
				return nil, fmt.Errorf("%w: UD GetData on node %d (%d/%d totals)",
					ErrStalled, e.dev.Node(), e.knownCount, e.n)
			}
		} else {
			w.progress()
			e.lossWait = 0
		}
	}
}

func (e *srUDRecv) lossReport() string {
	missing := 0
	for s := 0; s < e.n; s++ {
		missing += int(e.expected[s] - e.received[s])
	}
	return fmt.Sprintf("%d message(s) missing", missing)
}

// Release implements RecvEndpoint.
func (e *srUDRecv) Release(p *sim.Proc, d *Data) error {
	return e.repost(p, d.slot, d.Src)
}

func newSRUDSend(dev *verbs.Device, cfg Config, n, tpe int) *srUDSend {
	mtu := dev.Network().Prof.MTU
	pool := tpe * n * cfg.BuffersPerPeer
	e := &srUDSend{
		dev: dev, cfg: cfg, n: n, mtu: mtu,
		gate:       newEPGate(dev.Sim(), fmt.Sprintf("srud-send@%d", dev.Node())),
		poolBufs:   pool,
		free:       sim.NewQueue[int](dev.Sim(), fmt.Sprintf("srud-free@%d", dev.Node())),
		pending:    make(map[int]int),
		creditSlot: verbs.GRHSize + HeaderSize,
		sent:       make([]uint64, n),
		credit:     make([]uint64, n),
		totals:     make([]uint64, n),
		ahs:        make([]verbs.AH, n),
		failed:     make([]bool, n),
	}
	// Broadcast posts one send per group member per buffer, and completions
	// sit in the CQ until the application polls; size for the worst case.
	e.scq = dev.CreateCQ(pool*n + 64)
	creditSlots := 4 * n
	e.ccq = dev.CreateCQ(creditSlots + 16)
	e.mr = dev.AllocMRNoCost(pool * mtu)
	e.creditMR = dev.RegisterMRNoCost(make([]byte, creditSlots*e.creditSlot))
	for i := 0; i < pool; i++ {
		e.free.Put(i * mtu)
	}
	e.qp = dev.CreateQP(verbs.QPConfig{
		Type: fabric.UD, SendCQ: e.scq, RecvCQ: e.ccq,
		MaxSend: pool*n + 16, MaxRecv: creditSlots + 4,
	})
	return e
}

// primeSend posts the credit-datagram receive windows.
func (e *srUDSend) primeSend(p *sim.Proc) error {
	for slot := 0; slot < 4*e.n; slot++ {
		if err := e.postCreditRecv(p, slot); err != nil {
			return err
		}
	}
	return nil
}

func newSRUDRecv(dev *verbs.Device, cfg Config, n, tpe int) *srUDRecv {
	mtu := dev.Network().Prof.MTU
	perSrc := tpe * cfg.RecvBuffersPerPeer
	slots := n * perSrc
	e := &srUDRecv{
		dev: dev, cfg: cfg, n: n, mtu: mtu,
		gate:  newEPGate(dev.Sim(), fmt.Sprintf("srud-recv@%d", dev.Node())),
		slots: slots, slotSize: verbs.GRHSize + mtu, perSrc: perSrc,
		ahs:          make([]verbs.AH, n),
		creditIssued: make([]uint64, n),
		lastWritten:  make([]uint64, n),
		received:     make([]uint64, n),
		expected:     make([]uint64, n),
		totalKnown:   make([]bool, n),
		failed:       make([]bool, n),
	}
	e.rcq = dev.CreateCQ(slots + 64)
	// Credit-datagram completions queue behind bulk data on the wire.
	e.scq = dev.CreateCQ(slots + 64)
	e.bufMR = dev.AllocMRNoCost(slots * e.slotSize)
	e.stageMR = dev.RegisterMRNoCost(make([]byte, n*HeaderSize))
	e.qp = dev.CreateQP(verbs.QPConfig{
		Type: fabric.UD, SendCQ: e.scq, RecvCQ: e.rcq,
		MaxSend: 4 * n, MaxRecv: slots + 4,
	})
	return e
}

// prime posts every data receive slot and records the initial per-source
// credit grant, which wiring communicates to senders out of band.
func (e *srUDRecv) prime(p *sim.Proc) error {
	for slot := 0; slot < e.slots; slot++ {
		err := e.qp.PostRecv(p, verbs.RecvWR{
			ID: uint64(slot), MR: e.bufMR, Offset: slot * e.slotSize, Len: e.slotSize,
		})
		if err != nil {
			return fmt.Errorf("shuffle: UD prime failed: %v", err)
		}
	}
	for src := 0; src < e.n; src++ {
		e.creditIssued[src] = uint64(e.perSrc)
		e.lastWritten[src] = uint64(e.perSrc)
	}
	return nil
}
