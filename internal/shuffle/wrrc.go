package shuffle

import (
	"fmt"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

// The WR/RC endpoint implements the paper's first future-work item: a
// shuffling endpoint based on the one-sided RDMA Write primitive. It is the
// push-side mirror of the RDMA Read design (§4.4.3):
//
//   - the RECEIVE endpoint owns the data buffers; it grants empty slot
//     addresses to each sender through the sender's SlotArr circular queue
//     (the dual of FreeArr);
//   - SEND writes the full transmission buffer directly into a granted
//     remote slot with RDMA Write, then announces it through the receiver's
//     ValidArr; both writes ride the same QP, so the Reliable Connection
//     ordering guarantees the data has landed before the announcement;
//   - RELEASE re-grants the slot to its sender.
//
// Compared with RDMA Read, buffer reuse needs no remote notification: the
// sender's buffer is free as soon as its Write completions arrive, which is
// why the design behaves better under broadcast.

// wrRCSend implements the SEND endpoint over one-sided RDMA Write.
type wrRCSend struct {
	dev *verbs.Device
	cfg Config
	n   int

	qps []*verbs.QP
	wcq *verbs.CQ // data + announcement write completions

	gate epGate

	mr       *verbs.MR // local transmission buffers
	poolBufs int
	queueCap int
	free     *sim.Queue[int]
	pending  map[int]int // buffer offset -> outstanding data writes

	// slotArrMR holds n circular queues of remote-slot grants, written by
	// receivers; slotWin[d] is the receiver's data-slot region.
	slotArrMR *verbs.MR
	cons      []int
	slotWin   []remoteWin // receiver's slot MR (data destination)

	// validWin[d] is the receiver's ValidArr queue for this sender.
	validWin []remoteWin
	prod     []int
	stageMR  *verbs.MR

	// failed marks destinations declared dead by the connection manager;
	// qpDest attributes completions to their connection.
	failed []bool
	qpDest map[uint32]int
}

func (e *wrRCSend) buf(off int) *Buf {
	return &Buf{Data: e.mr.Buf[off+HeaderSize : off+e.cfg.BufSize], off: off}
}

// DrainPeer and ClosePeer implement PeerDrainer: a dead receiver never
// grants slots again, so blocked SEND calls wake and fail with
// ErrPeerFailed instead of running down the stall timeout.
func (e *wrRCSend) DrainPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = true
	}
}

func (e *wrRCSend) ClosePeer(peer int) {
	e.wcq.Kick()
	e.dev.KickMemWaiters()
}

// ReopenPeer implements PeerResumer.
func (e *wrRCSend) ReopenPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = false
	}
}

func (e *wrRCSend) anyFailed() (int, bool) {
	for d, f := range e.failed {
		if f {
			return d, true
		}
	}
	return 0, false
}

// popSlot takes one granted remote slot for dest, blocking until the
// receiver grants one.
func (e *wrRCSend) popSlot(p *sim.Proc, dest int) (int, error) {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		if e.failed[dest] {
			return 0, peerFailedErr(dest)
		}
		if e.qps[dest].State() == verbs.QPError {
			// Grants arrive over the reverse direction of this connection;
			// once it errors no grant can ever land, so fail fast.
			return 0, fmt.Errorf("%w: connection to node %d is in the error state", ErrTransport, dest)
		}
		idx := dest*e.queueCap + e.cons[dest]%e.queueCap
		v := verbs.ReadUint64(e.slotArrMR.Buf[8*idx:])
		if v&slotValid != 0 {
			verbs.PutUint64(e.slotArrMR.Buf[8*idx:], 0)
			e.cons[dest]++
			off, _, _ := unpackSlot(v)
			return off, nil
		}
		if err := e.reapWrites(p); err != nil {
			return 0, err
		}
		if !e.dev.WaitMemChange(p, w.step()) {
			if !w.idle() {
				return 0, fmt.Errorf("%w: WR waiting for slot grant from node %d", ErrStalled, dest)
			}
			continue
		}
		w.progress()
	}
}

func (e *wrRCSend) reapWrites(p *sim.Proc) error {
	var es [16]verbs.CQE
	var err error
	for e.wcq.Len() > 0 {
		n := e.gate.poll(p, e.wcq, es[:])
		for _, c := range es[:n] {
			if c.Status != verbs.WCSuccess {
				if err == nil {
					if d, ok := e.qpDest[c.QPN]; ok && (c.Status == verbs.WCPeerDown || e.failed[d]) {
						err = peerFailedErr(d)
					} else {
						err = wcErr(c)
					}
				}
				continue
			}
			if c.WRID == 0 {
				continue // announcement write
			}
			off := int(c.WRID - 1)
			e.pending[off]--
			if e.pending[off] == 0 {
				delete(e.pending, off)
				e.free.Put(off)
			}
		}
	}
	return err
}

// GetFree implements SendEndpoint: a buffer is reusable once its data
// writes complete locally — no remote notification needed.
func (e *wrRCSend) GetFree(p *sim.Proc) (*Buf, error) {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		if off, ok := e.free.TryGet(); ok {
			return e.buf(off), nil
		}
		if err := e.reapWrites(p); err != nil {
			return nil, err
		}
		if off, ok := e.free.TryGet(); ok {
			return e.buf(off), nil
		}
		if d, ok := e.anyFailed(); ok {
			return nil, peerFailedErr(d)
		}
		if !e.wcq.WaitNonEmpty(p, w.step()) {
			if !w.idle() {
				return nil, fmt.Errorf("%w: WR GetFree on node %d", ErrStalled, e.dev.Node())
			}
			continue
		}
		w.progress()
	}
}

func (e *wrRCSend) postWrite(p *sim.Proc, dest int, wr verbs.SendWR) error {
	for {
		err := e.gate.post(p, e.qps[dest], wr)
		if err == nil {
			return nil
		}
		if err == verbs.ErrPeerDown {
			return peerFailedErr(dest)
		}
		if err != verbs.ErrSQFull {
			return err
		}
		e.wcq.WaitNonEmpty(p, 0)
		if err := e.reapWrites(p); err != nil {
			return err
		}
	}
}

func (e *wrRCSend) send(p *sim.Proc, b *Buf, dest []int, depleted bool) error {
	putHeader(e.mr.Buf[b.off:], header{payload: b.Len, src: uint16(e.dev.Node())})
	e.pending[b.off] = len(dest)
	length := HeaderSize + b.Len
	for _, d := range dest {
		slot, err := e.popSlot(p, d)
		if err != nil {
			return err
		}
		// Data write into the granted remote slot.
		if err := e.postWrite(p, d, verbs.SendWR{
			ID: uint64(b.off) + 1, Op: verbs.OpWrite,
			MR: e.mr, Offset: b.off, Len: length,
			RemoteKey: e.slotWin[d].rkey, RemoteOffset: e.slotWin[d].base + slot,
		}); err != nil {
			return err
		}
		// Announcement write, ordered behind the data on the same QP.
		idx := e.prod[d]
		e.prod[d]++
		stage := 8 * (d*e.queueCap + idx%e.queueCap)
		verbs.PutUint64(e.stageMR.Buf[stage:], packSlot(slot, length, depleted))
		if err := e.postWrite(p, d, verbs.SendWR{
			ID: 0, Op: verbs.OpWrite,
			MR: e.stageMR, Offset: stage, Len: 8, Inline: true,
			RemoteKey:    e.validWin[d].rkey,
			RemoteOffset: e.validWin[d].base + 8*(idx%e.queueCap),
		}); err != nil {
			return err
		}
	}
	return e.reapWrites(p)
}

// Send implements SendEndpoint.
func (e *wrRCSend) Send(p *sim.Proc, b *Buf, dest []int) error {
	return e.send(p, b, dest, false)
}

// Finish implements SendEndpoint.
func (e *wrRCSend) Finish(p *sim.Proc) error {
	b, err := e.GetFree(p)
	if err != nil {
		return err
	}
	all := make([]int, e.n)
	for i := range all {
		all[i] = i
	}
	b.Len = 0
	if err := e.send(p, b, all, true); err != nil {
		return err
	}
	w := newWaiter(e.cfg.StallTimeout)
	for len(e.pending) > 0 {
		if err := e.reapWrites(p); err != nil {
			return err
		}
		if len(e.pending) == 0 {
			break
		}
		if d, ok := e.anyFailed(); ok {
			return peerFailedErr(d)
		}
		if !e.wcq.WaitNonEmpty(p, w.step()) {
			if !w.idle() {
				return fmt.Errorf("%w: WR Finish flush (%d outstanding)", ErrStalled, len(e.pending))
			}
			continue
		}
		w.progress()
	}
	return nil
}

// wrRCRecv implements the RECEIVE endpoint over one-sided RDMA Write: it
// owns the data slots, polls its ValidArr queues for announcements, and
// re-grants consumed slots.
type wrRCRecv struct {
	dev *verbs.Device
	cfg Config
	n   int

	qps []*verbs.QP
	gcq *verbs.CQ // grant-write completions

	gate epGate

	slotMR *verbs.MR // data slots, perSrc per source
	perSrc int

	validArrMR *verbs.MR
	queueCap   int
	cons       []int

	grantWin []remoteWin // each sender's SlotArr region for me
	prod     []int
	stageMR  *verbs.MR

	depleted   int
	depletedBy []bool

	// failed marks sources declared dead by the connection manager; qpSrc
	// attributes completions to their connection.
	failed []bool
	qpSrc  map[uint32]int
}

// DrainPeer and ClosePeer implement PeerDrainer: GETDATA fails once a dead
// sender's stream is known to be incomplete instead of polling ValidArr
// entries that will never be written.
func (e *wrRCRecv) DrainPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = true
	}
}

func (e *wrRCRecv) ClosePeer(peer int) {
	e.gcq.Kick()
	e.dev.KickMemWaiters()
}

// ReopenPeer implements PeerResumer.
func (e *wrRCRecv) ReopenPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = false
	}
}

// Depleted implements ProgressReporter.
func (e *wrRCRecv) Depleted(src int) bool {
	return src >= 0 && src < e.n && e.depletedBy[src]
}

// missingFailed returns a failed source whose stream is still incomplete.
func (e *wrRCRecv) missingFailed() (int, bool) {
	for s, f := range e.failed {
		if f && !e.depletedBy[s] {
			return s, true
		}
	}
	return 0, false
}

// grant hands slot (an offset within slotMR) to sender src.
func (e *wrRCRecv) grant(p *sim.Proc, src, slot int) error {
	if e.failed[src] {
		return nil // the dead sender will never consume the grant
	}
	idx := e.prod[src]
	e.prod[src]++
	stage := 8 * (src*e.queueCap + idx%e.queueCap)
	verbs.PutUint64(e.stageMR.Buf[stage:], packSlot(slot, 0, false))
	for {
		err := e.gate.post(p, e.qps[src], verbs.SendWR{
			Op: verbs.OpWrite, MR: e.stageMR, Offset: stage, Len: 8, Inline: true,
			RemoteKey:    e.grantWin[src].rkey,
			RemoteOffset: e.grantWin[src].base + 8*(idx%e.queueCap),
		})
		if err == nil {
			traceCredit(e.dev, src, int64(slot))
			break
		}
		if err == verbs.ErrPeerDown {
			return nil
		}
		if err != verbs.ErrSQFull {
			return err
		}
		e.gcq.WaitNonEmpty(p, 0)
		if err := e.drainGrants(p); err != nil {
			return err
		}
	}
	return e.drainGrants(p)
}

// drainGrants reaps completed grant writes, surfacing any that failed.
func (e *wrRCRecv) drainGrants(p *sim.Proc) error {
	var es [8]verbs.CQE
	for e.gcq.Len() > 0 {
		n := e.gate.poll(p, e.gcq, es[:])
		for _, c := range es[:n] {
			if c.Status != verbs.WCSuccess {
				if s, ok := e.qpSrc[c.QPN]; ok && (c.Status == verbs.WCPeerDown || e.failed[s]) {
					// A grant toward a dead sender flushed; nothing is owed.
					continue
				}
				return wcErr(c)
			}
		}
	}
	return nil
}

// GetData implements RecvEndpoint: announcements arrive purely through
// memory, so the wait path watches for remote writes.
func (e *wrRCRecv) GetData(p *sim.Proc) (*Data, error) {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		for src := 0; src < e.n; src++ {
			idx := src*e.queueCap + e.cons[src]%e.queueCap
			v := verbs.ReadUint64(e.validArrMR.Buf[8*idx:])
			if v&slotValid == 0 {
				continue
			}
			verbs.PutUint64(e.validArrMR.Buf[8*idx:], 0)
			e.cons[src]++
			slot, _, dep := unpackSlot(v)
			h := getHeader(e.slotMR.Buf[slot:])
			if dep {
				e.depleted++
				e.depletedBy[src] = true
				if e.depleted >= e.n {
					e.dev.KickMemWaiters()
				}
			}
			if h.payload == 0 {
				// Marker: re-grant immediately.
				if err := e.grant(p, src, slot); err != nil {
					return nil, err
				}
				continue
			}
			return &Data{
				Src:     int(h.src),
				Payload: e.slotMR.Buf[slot+HeaderSize : slot+HeaderSize+h.payload],
				slot:    slot,
			}, nil
		}
		if e.depleted >= e.n {
			return nil, nil
		}
		if s, ok := e.missingFailed(); ok {
			return nil, peerFailedErr(s)
		}
		if !e.dev.WaitMemChange(p, w.step()) {
			if !w.idle() {
				return nil, fmt.Errorf("%w: WR GetData on node %d (%d/%d depleted)",
					ErrStalled, e.dev.Node(), e.depleted, e.n)
			}
		} else {
			w.progress()
		}
	}
}

// Release implements RecvEndpoint.
func (e *wrRCRecv) Release(p *sim.Proc, d *Data) error {
	// The slot belongs to the source that filled it; slots are partitioned
	// per source, so recover the source from the slot index.
	src := d.slot / (e.perSrc * e.cfg.BufSize)
	return e.grant(p, src, d.slot)
}

func newWRRCSend(dev *verbs.Device, cfg Config, n, tpe, grantCap int) *wrRCSend {
	pool := tpe * n * cfg.BuffersPerPeer
	e := &wrRCSend{
		dev: dev, cfg: cfg, n: n,
		gate:     newEPGate(dev.Sim(), fmt.Sprintf("wr-send@%d", dev.Node())),
		poolBufs: pool,
		queueCap: grantCap,
		free:     sim.NewQueue[int](dev.Sim(), fmt.Sprintf("wr-free@%d", dev.Node())),
		pending:  make(map[int]int),
		cons:     make([]int, n),
		prod:     make([]int, n),
		slotWin:  make([]remoteWin, n),
		validWin: make([]remoteWin, n),
		failed:   make([]bool, n),
		qpDest:   make(map[uint32]int),
	}
	e.wcq = dev.CreateCQ(4*pool*n + 64)
	e.mr = dev.AllocMRNoCost(pool * cfg.BufSize)
	e.slotArrMR = dev.RegisterMRNoCost(make([]byte, 8*n*grantCap))
	e.stageMR = dev.RegisterMRNoCost(make([]byte, 8*n*grantCap))
	for i := 0; i < pool; i++ {
		e.free.Put(i * cfg.BufSize)
	}
	e.qps = make([]*verbs.QP, n)
	for d := 0; d < n; d++ {
		e.qps[d] = dev.CreateQP(verbs.QPConfig{
			Type: fabric.RC, SendCQ: e.wcq, RecvCQ: e.wcq,
			MaxSend: 4*pool + 16, MaxRecv: 4,
		})
		e.qpDest[e.qps[d].QPN()] = d
	}
	return e
}

func newWRRCRecv(dev *verbs.Device, cfg Config, n, tpe int) *wrRCRecv {
	perSrc := tpe * cfg.RecvBuffersPerPeer
	e := &wrRCRecv{
		dev: dev, cfg: cfg, n: n, perSrc: perSrc,
		gate:       newEPGate(dev.Sim(), fmt.Sprintf("wr-recv@%d", dev.Node())),
		queueCap:   perSrc + 1,
		cons:       make([]int, n),
		prod:       make([]int, n),
		grantWin:   make([]remoteWin, n),
		depletedBy: make([]bool, n),
		failed:     make([]bool, n),
		qpSrc:      make(map[uint32]int),
	}
	e.gcq = dev.CreateCQ(4*n*perSrc + 64)
	e.slotMR = dev.AllocMRNoCost(n * perSrc * cfg.BufSize)
	e.validArrMR = dev.RegisterMRNoCost(make([]byte, 8*n*e.queueCap))
	e.stageMR = dev.RegisterMRNoCost(make([]byte, 8*n*e.queueCap))
	e.qps = make([]*verbs.QP, n)
	for s := 0; s < n; s++ {
		e.qps[s] = dev.CreateQP(verbs.QPConfig{
			Type: fabric.RC, SendCQ: e.gcq, RecvCQ: e.gcq,
			MaxSend: 2*perSrc + 16, MaxRecv: 4,
		})
		e.qpSrc[e.qps[s].QPN()] = s
	}
	return e
}
