package shuffle

import (
	"fmt"
	"sync/atomic"

	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
	"rshuffle/internal/verbs"
)

// NodeComm holds one node's communication endpoints for a shuffle: Send[k]
// pairs with Recv[k] on every other node (thread i uses endpoint i mod e,
// so matching indices talk to each other and the Θ(n·t²) any-core-to-any-
// core pattern the paper excludes never arises).
type NodeComm struct {
	Dev  *verbs.Device
	Send []SendEndpoint
	Recv []RecvEndpoint
}

// Comm is a fully wired cluster-wide communication layer for one shuffle
// operator pair, built by Build.
type Comm struct {
	Cfg     Config
	Threads int
	N       int
	Nodes   []*NodeComm

	// SetupTime is the virtual time spent creating QPs and exchanging
	// routing information (Fig. 12). RegTime is the additional memory
	// registration time, reported separately as in the paper.
	SetupTime sim.Duration
	RegTime   sim.Duration
	// QPsPerOperator is the number of Queue Pairs one send operator uses
	// (the x-axis of Fig. 11).
	QPsPerOperator int
	// SendMemoryPerNode is the RDMA-registered memory of one node's send
	// operator in bytes (Fig. 9b).
	SendMemoryPerNode int64
}

// threadsPerEndpoint returns how many worker threads share each endpoint.
func threadsPerEndpoint(threads, endpoints int) int {
	tpe := threads / endpoints
	if threads%endpoints != 0 {
		tpe++
	}
	if tpe < 1 {
		tpe = 1
	}
	return tpe
}

// Build creates and wires the endpoints of every node for the given
// configuration. It must run inside a Proc; it charges p the connection
// setup cost of one node (setup proceeds in parallel across nodes, and
// nodes are symmetric).
func Build(p *sim.Proc, devs []*verbs.Device, cfg Config, threads int) *Comm {
	cfg = cfg.Defaulted()
	n := len(devs)
	e := cfg.Endpoints
	tpe := threadsPerEndpoint(threads, e)
	c := &Comm{Cfg: cfg, Threads: threads, N: n, Nodes: make([]*NodeComm, n)}

	regBefore := make([]int64, n)
	for a, d := range devs {
		regBefore[a] = d.RegisteredBytes()
		c.Nodes[a] = &NodeComm{Dev: d, Send: make([]SendEndpoint, e), Recv: make([]RecvEndpoint, e)}
	}
	prof := &devs[0].Network().Prof

	for k := 0; k < e; k++ {
		switch cfg.Impl {
		case MQSR:
			ss := make([]*srRCSend, n)
			rr := make([]*srRCRecv, n)
			for a := 0; a < n; a++ {
				ss[a] = newSRRCSend(devs[a], cfg, n, tpe)
				rr[a] = newSRRCRecv(devs[a], cfg, n, tpe)
			}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					must(ss[a].qps[b].Connect(b, rr[b].qps[a].QPN()))
					must(rr[b].qps[a].Connect(a, ss[a].qps[b].QPN()))
					rr[b].creditWin[a] = remoteWin{rkey: ss[a].creditMR.RKey, base: 8 * b}
				}
			}
			for a := 0; a < n; a++ {
				must(rr[a].prime(p))
				// The initial grant travels with the out-of-band connection
				// exchange: preset each sender's credit words.
				for b := 0; b < n; b++ {
					verbs.PutUint64(ss[b].creditMR.Buf[8*a:], rr[a].creditIssued[b])
				}
				c.Nodes[a].Send[k] = ss[a]
				c.Nodes[a].Recv[k] = rr[a]
			}
		case SQSR:
			ss := make([]*srUDSend, n)
			rr := make([]*srUDRecv, n)
			for a := 0; a < n; a++ {
				ss[a] = newSRUDSend(devs[a], cfg, n, tpe)
				rr[a] = newSRUDRecv(devs[a], cfg, n, tpe)
			}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					ss[a].ahs[b] = verbs.AH{Node: b, QPN: rr[b].qp.QPN()}
					rr[a].ahs[b] = verbs.AH{Node: b, QPN: ss[b].qp.QPN()}
				}
			}
			if cfg.HWMulticast {
				mgid := nextMGID()
				for a := 0; a < n; a++ {
					ss[a].hwmc = true
					ss[a].mgid = mgid
					must(devs[a].AttachMulticast(rr[a].qp, mgid))
				}
			}
			for a := 0; a < n; a++ {
				must(ss[a].primeSend(p))
				must(rr[a].prime(p))
				for b := 0; b < n; b++ {
					ss[b].credit[a] = rr[a].creditIssued[b]
				}
				c.Nodes[a].Send[k] = ss[a]
				c.Nodes[a].Recv[k] = rr[a]
			}
		case MQWR:
			ss := make([]*wrRCSend, n)
			rr := make([]*wrRCRecv, n)
			for a := 0; a < n; a++ {
				rr[a] = newWRRCRecv(devs[a], cfg, n, tpe)
			}
			for a := 0; a < n; a++ {
				ss[a] = newWRRCSend(devs[a], cfg, n, tpe, rr[0].queueCap)
			}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					must(ss[a].qps[b].Connect(b, rr[b].qps[a].QPN()))
					must(rr[b].qps[a].Connect(a, ss[a].qps[b].QPN()))
					ss[a].slotWin[b] = remoteWin{rkey: rr[b].slotMR.RKey}
					ss[a].validWin[b] = remoteWin{rkey: rr[b].validArrMR.RKey, base: 8 * a * rr[b].queueCap}
					rr[b].grantWin[a] = remoteWin{rkey: ss[a].slotArrMR.RKey, base: 8 * b * ss[a].queueCap}
				}
			}
			// Initial grants travel with the out-of-band setup: receiver b
			// hands its per-source slot partitions to each sender directly.
			for b := 0; b < n; b++ {
				perSrc := rr[b].perSrc
				for a := 0; a < n; a++ {
					for i := 0; i < perSrc; i++ {
						slot := (a*perSrc + i) * cfg.BufSize
						idx := b*ss[a].queueCap + i
						verbs.PutUint64(ss[a].slotArrMR.Buf[8*idx:], packSlot(slot, 0, false))
					}
					rr[b].prod[a] = perSrc
				}
			}
			for a := 0; a < n; a++ {
				c.Nodes[a].Send[k] = ss[a]
				c.Nodes[a].Recv[k] = rr[a]
			}
		case MQRD:
			ss := make([]*rdRCSend, n)
			rr := make([]*rdRCRecv, n)
			for a := 0; a < n; a++ {
				ss[a] = newRDRCSend(devs[a], cfg, n, tpe)
			}
			for a := 0; a < n; a++ {
				rr[a] = newRDRCRecv(devs[a], cfg, n, tpe, ss[a].poolBufs)
			}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					must(ss[a].qps[b].Connect(b, rr[b].qps[a].QPN()))
					must(rr[b].qps[a].Connect(a, ss[a].qps[b].QPN()))
					ss[a].validWin[b] = remoteWin{rkey: rr[b].validArrMR.RKey, base: 8 * a * rr[b].queueCap}
					rr[b].freeWin[a] = remoteWin{rkey: ss[a].freeArrMR.RKey, base: 8 * b * ss[a].queueCap}
					rr[b].dataWin[a] = remoteWin{rkey: ss[a].mr.RKey}
				}
			}
			for a := 0; a < n; a++ {
				c.Nodes[a].Send[k] = ss[a]
				c.Nodes[a].Recv[k] = rr[a]
			}
		}
	}

	// Connection-manager wiring: when the failure detector declares a peer
	// dead (Device.NotifyPeerDown), drain then close every endpoint of this
	// node that involves it, so blocked SHUFFLE/RECEIVE calls terminate with
	// ErrPeerFailed. Handlers run in scheduler context and must not block.
	for a := 0; a < n; a++ {
		node := c.Nodes[a]
		self := a
		node.Dev.OnPeerDown(func(peer int) {
			// Runs on the device's own partition (the connection manager
			// routes the peer-down verdict there), so the node's trace shard
			// and clock are the right emission context.
			tr := node.Dev.Network().TracerAt(self)
			now := node.Dev.Sim().Now()
			tr.Instant(now, telemetry.EvDrainPeer, int32(self), 0, int64(peer), 0)
			for _, s := range node.Send {
				if pd, ok := s.(PeerDrainer); ok {
					pd.DrainPeer(peer)
				}
			}
			for _, r := range node.Recv {
				if pd, ok := r.(PeerDrainer); ok {
					pd.DrainPeer(peer)
				}
			}
			tr.Instant(now, telemetry.EvClosePeer, int32(self), 0, int64(peer), 0)
			for _, s := range node.Send {
				if pd, ok := s.(PeerDrainer); ok {
					pd.ClosePeer(peer)
				}
			}
			for _, r := range node.Recv {
				if pd, ok := r.(PeerDrainer); ok {
					pd.ClosePeer(peer)
				}
			}
		})
		// The reverse transition: a suspicion cleared by resumed heartbeats
		// (partition heal, reboot) re-arms the drained endpoints so the peer
		// can resume. The verbs device traces EvPeerUp.
		node.Dev.OnPeerUp(func(peer int) {
			for _, s := range node.Send {
				if pr, ok := s.(PeerResumer); ok {
					pr.ReopenPeer(peer)
				}
			}
			for _, r := range node.Recv {
				if pr, ok := r.(PeerResumer); ok {
					pr.ReopenPeer(peer)
				}
			}
		})
	}

	// QP census (one side's send operator; Fig. 11 / Table 1).
	switch cfg.Impl {
	case SQSR:
		c.QPsPerOperator = e
	default:
		c.QPsPerOperator = e * n
	}

	// Setup cost: QP creation/transition plus the out-of-band exchange is
	// charged per QP (the paper's Fig. 12); memory registration is charged
	// and reported separately, as the paper finds it negligible (<5 ms).
	// Nodes set up in parallel, so one node's cost is the elapsed time.
	qpsPerNode := 2 * c.QPsPerOperator // send side + receive side
	regBytes := devs[0].RegisteredBytes() - regBefore[0]
	c.SetupTime = prof.ConnSetupBase + sim.Duration(qpsPerNode)*prof.ConnSetupPerQP
	c.RegTime = prof.MemRegBase + sim.Duration(float64(regBytes)*prof.MemRegPerByte)
	p.Sleep(c.SetupTime + c.RegTime)

	// Send-operator registered memory (Fig. 9b): data buffers plus control
	// structures of the send endpoints of one node.
	for k := 0; k < e; k++ {
		switch s := c.Nodes[0].Send[k].(type) {
		case *srRCSend:
			c.SendMemoryPerNode += int64(len(s.mr.Buf) + len(s.creditMR.Buf))
		case *srUDSend:
			c.SendMemoryPerNode += int64(len(s.mr.Buf) + len(s.creditMR.Buf))
		case *rdRCSend:
			c.SendMemoryPerNode += int64(len(s.mr.Buf) + len(s.freeArrMR.Buf) + len(s.stageMR.Buf))
		case *wrRCSend:
			c.SendMemoryPerNode += int64(len(s.mr.Buf) + len(s.slotArrMR.Buf) + len(s.stageMR.Buf))
		}
	}
	return c
}

// SendEndpoints implements Provider.
func (c *Comm) SendEndpoints(node int) []SendEndpoint { return c.Nodes[node].Send }

// RecvEndpoints implements Provider.
func (c *Comm) RecvEndpoints(node int) []RecvEndpoint { return c.Nodes[node].Recv }

// mgidSeq hands out process-unique multicast group ids; the value never
// affects timing, only identity. It is atomic because independent
// simulations may build communication layers concurrently (the parallel
// experiment driver); within one simulation the ids are still assigned in
// deterministic order.
var mgidSeq atomic.Uint32

func nextMGID() uint32 { return mgidSeq.Add(1) }

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("shuffle: wiring failed: %v", err))
	}
}

// traceCredit records one flow-control write-back (RC credit write, UD
// credit datagram, read-based free-buffer return, or write-based slot
// grant) against the node that issued it. A is the peer the grant targets,
// B the granted value (absolute credit or buffer offset).
func traceCredit(d *verbs.Device, peer int, value int64) {
	net := d.Network()
	net.TracerAt(d.Node()).Instant(d.Sim().Now(), telemetry.EvCredit,
		int32(d.Node()), 0, int64(peer), value)
}
