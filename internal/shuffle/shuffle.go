// Package shuffle implements the paper's contribution: RDMA-aware data
// shuffling for parallel database systems.
//
// It provides the communication-endpoint abstraction of §4.2 (SEND endpoints
// with GETFREE/SEND, RECEIVE endpoints with GETDATA/RELEASE), three endpoint
// implementations over different RDMA transport functions and services —
//
//   - SR/RC: RDMA Send/Receive over Reliable Connection with a stateless
//     credit protocol, the credit written back by RDMA Write (§4.4.1);
//   - SR/UD: RDMA Send/Receive over Unreliable Datagram with per-source
//     message counting and out-of-order Depleted handling (§4.4.2);
//   - RD/RC: one-sided RDMA Read over Reliable Connection with the
//     FreeArr/ValidArr circular-queue notification scheme (§4.4.3) —
//
// the transmission-group abstraction of §4.1 (repartition, multicast,
// broadcast), the pull-based SHUFFLE and RECEIVE operators of §4.3, and the
// SE/ME endpoint-count axis, yielding the six algorithms of Table 1:
// SESQ/SR, MESQ/SR, SEMQ/SR, MEMQ/SR, SEMQ/RD, MEMQ/RD.
package shuffle

import (
	"errors"
	"fmt"
	"time"

	"rshuffle/internal/engine"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

// Impl selects the communication-endpoint implementation.
type Impl int

const (
	// SQSR uses one Queue Pair per endpoint with RDMA Send/Receive over the
	// Unreliable Datagram service.
	SQSR Impl = iota
	// MQSR uses one Queue Pair per peer with RDMA Send/Receive over the
	// Reliable Connection service.
	MQSR
	// MQRD uses one Queue Pair per peer with one-sided RDMA Read over the
	// Reliable Connection service.
	MQRD
	// MQWR uses one Queue Pair per peer with one-sided RDMA Write over the
	// Reliable Connection service — the paper's first future-work item.
	MQWR
)

func (i Impl) String() string {
	switch i {
	case SQSR:
		return "SQ/SR"
	case MQSR:
		return "MQ/SR"
	case MQRD:
		return "MQ/RD"
	default:
		return "MQ/WR"
	}
}

// Config selects one point in the paper's design space.
type Config struct {
	Impl Impl
	// Endpoints is the number of endpoints per operator: 1 is the
	// single-endpoint (SE) configuration, the thread count is the
	// multi-endpoint (ME) configuration, and intermediate values reproduce
	// the Queue-Pair sweep of Fig. 11. Zero means 1.
	Endpoints int
	// BufSize is the transmission buffer (message) size in bytes, including
	// the 16-byte buffer header. UD ignores it and uses the MTU.
	BufSize int
	// BuffersPerPeer is the number of send buffers per thread per
	// destination (the paper uses double buffering, 2).
	BuffersPerPeer int
	// RecvBuffersPerPeer is the number of posted receive buffers per thread
	// per source (the paper's receive-throughput setup uses 16).
	RecvBuffersPerPeer int
	// CreditFrequency is how many receives are posted before the receiver
	// writes back credit (Fig. 8 sweeps 1..16; default 2).
	CreditFrequency int
	// DepletedTimeout bounds how long a UD receiver waits for outstanding
	// packets after the totals are known; expiry is treated as a network
	// error and surfaces as ErrDataLoss (the query restarts).
	DepletedTimeout sim.Duration
	// StallTimeout bounds any single blocking endpoint call; it converts a
	// protocol deadlock into a diagnosable panic instead of a hang.
	StallTimeout sim.Duration
	// HWMulticast makes the SQ/SR (UD) endpoints use native InfiniBand
	// hardware multicast for full-cluster broadcast groups: one work
	// request per buffer instead of one per destination (the paper's third
	// future-work item).
	HWMulticast bool
}

// Defaulted fills zero fields with the paper's defaults.
func (c Config) Defaulted() Config {
	if c.Endpoints <= 0 {
		c.Endpoints = 1
	}
	if c.BufSize <= 0 {
		c.BufSize = 64 << 10
	}
	if c.BuffersPerPeer <= 0 {
		c.BuffersPerPeer = 2
	}
	if c.RecvBuffersPerPeer <= 0 {
		c.RecvBuffersPerPeer = 16
	}
	if c.CreditFrequency <= 0 {
		c.CreditFrequency = 2
	}
	if c.DepletedTimeout <= 0 {
		c.DepletedTimeout = 50 * time.Millisecond
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 5 * time.Second
	}
	return c
}

// Name returns the paper's designation for this configuration given the
// worker thread count, e.g. "MESQ/SR".
func (c Config) Name(threads int) string {
	mode := "SE"
	if c.Endpoints >= threads {
		mode = "ME"
	} else if c.Endpoints > 1 {
		mode = fmt.Sprintf("%dE", c.Endpoints)
	}
	return mode + c.Impl.String()
}

// Algorithm identifies one of the paper's six named designs.
type Algorithm struct {
	Name string
	Impl Impl
	// ME selects one endpoint per thread; otherwise one endpoint total.
	ME bool
}

// Algorithms lists the six designs of Table 1 in the paper's order.
var Algorithms = []Algorithm{
	{"MEMQ/SR", MQSR, true},
	{"MEMQ/RD", MQRD, true},
	{"MESQ/SR", SQSR, true},
	{"SEMQ/SR", MQSR, false},
	{"SEMQ/RD", MQRD, false},
	{"SESQ/SR", SQSR, false},
}

// ExtendedAlgorithms adds the RDMA Write designs the paper lists as future
// work to the six designs of Table 1.
var ExtendedAlgorithms = append(append([]Algorithm(nil), Algorithms...),
	Algorithm{"MEMQ/WR", MQWR, true},
	Algorithm{"SEMQ/WR", MQWR, false},
)

// Config materializes the algorithm into a Config for the given thread
// count.
func (a Algorithm) Config(threads int) Config {
	e := 1
	if a.ME {
		e = threads
	}
	return Config{Impl: a.Impl, Endpoints: e}.Defaulted()
}

// Groups is the transmission-group abstraction of §4.1: output buffer i is
// transmitted to every node in Groups[i]. Singleton groups repartition; a
// single group with every node broadcasts.
type Groups [][]int

// Repartition returns one singleton group per node: G = {{0},{1},...}.
func Repartition(n int) Groups {
	g := make(Groups, n)
	for i := range g {
		g[i] = []int{i}
	}
	return g
}

// Broadcast returns a single group containing every node.
func Broadcast(n int) Groups {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return Groups{all}
}

// Errors surfaced by endpoints.
var (
	// ErrDataLoss means the UD receiver timed out waiting for messages the
	// sender claims to have sent; the paper restarts the query.
	ErrDataLoss = errors.New("shuffle: message count mismatch after timeout (packet loss)")
	// ErrStalled means an endpoint call exceeded StallTimeout.
	ErrStalled = errors.New("shuffle: endpoint stalled")
	// ErrTransport means a work request completed with an error status (RNR
	// or transport retries exhausted, or a flush after a Queue Pair entered
	// the Error state). The query fragment fails and should restart.
	ErrTransport = errors.New("shuffle: transport failure")
	// ErrPeerFailed means a peer node was declared dead by the failure
	// detector while this endpoint still owed it (or was owed) traffic. The
	// query fragment fails and should be re-planned over the survivors.
	ErrPeerFailed = errors.New("shuffle: peer node failed")
)

// peerFailedErr tags a failure attributable to a dead peer.
func peerFailedErr(peer int) error {
	return fmt.Errorf("%w: node %d", ErrPeerFailed, peer)
}

// PeerDrainer is implemented by endpoints that support membership-aware
// teardown. When the failure detector suspects a peer, the connection
// manager calls DrainPeer then ClosePeer on every endpoint of each surviving
// node (from scheduler context — neither may block): the endpoint marks the
// peer failed and wakes every blocked caller, so SHUFFLE/RECEIVE terminate
// with ErrPeerFailed instead of waiting forever on credits, ValidArr slots,
// or UD message counts the dead node will never produce.
type PeerDrainer interface {
	DrainPeer(peer int)
	ClosePeer(peer int)
}

// PeerResumer is the re-arm half of PeerDrainer: draining a peer is not
// terminal. When a suspicion turns out to be transient — the partition
// healed or the node rebooted and the connection manager re-established the
// link — ReopenPeer clears the failed mark so the endpoint works with the
// peer again. Both drain and reopen are idempotent, and a drain/reopen
// cycle leaves the per-peer flow-control accounting untouched, so repeated
// false suspicions leak no credits. Like the drainer methods it runs from
// scheduler context and must not block.
type PeerResumer interface {
	ReopenPeer(peer int)
}

// ProgressReporter is implemented by receive endpoints that track
// per-source stream completion. Depleted reports whether the stream from
// src finished cleanly: its end-of-stream marker arrived and — for
// unreliable transports — every message the sender counted was received.
// Partial-restart recovery re-streams exactly the partitions for which some
// endpoint still reports false.
type ProgressReporter interface {
	Depleted(src int) bool
}

// wcErr converts a failed work completion into a transport error that the
// SHUFFLE/RECEIVE operators surface as a query-fragment failure.
func wcErr(c verbs.CQE) error {
	return fmt.Errorf("%w: %v", ErrTransport, c.Err())
}

// Buffer header layout. Every transmission buffer starts with a 16-byte
// header carrying the metadata the paper encodes in each buffer/message.
const (
	// HeaderSize is the per-buffer metadata prefix.
	HeaderSize = 16

	flagDepleted = 1 << 0 // end-of-stream marker from this source endpoint
	flagCredit   = 1 << 1 // UD credit datagram; off8 holds absolute credit
	flagTotal    = 1 << 2 // UD total-count datagram; off8 holds the total
)

type header struct {
	payload int
	flags   uint16
	src     uint16
	value   uint64 // credit or total count
}

func putHeader(b []byte, h header) {
	verbs.PutUint32(b[0:], uint32(h.payload))
	verbs.PutUint32(b[4:], uint32(h.flags)|uint32(h.src)<<16)
	verbs.PutUint64(b[8:], h.value)
}

func getHeader(b []byte) header {
	fs := verbs.ReadUint32(b[4:])
	return header{
		payload: int(verbs.ReadUint32(b[0:])),
		flags:   uint16(fs & 0xFFFF),
		src:     uint16(fs >> 16),
		value:   verbs.ReadUint64(b[8:]),
	}
}

// Buf is an RDMA-registered transmission buffer leased from a SEND endpoint
// via GETFREE. Write tuple data into Data and set Len before SEND.
type Buf struct {
	// Data is the tuple area (the region after the buffer header).
	Data []byte
	// Len is the number of valid bytes in Data.
	Len int

	off int // offset of the header within the endpoint MR
}

// Cap returns the tuple-area capacity.
func (b *Buf) Cap() int { return len(b.Data) }

// Data is one received transmission buffer returned by GETDATA. It must be
// handed back via RELEASE before the receiver can reuse the slot. A nil
// *Data from GETDATA signals that every source endpoint has sent Depleted.
type Data struct {
	// Src is the source node.
	Src int
	// Payload holds the tuple bytes.
	Payload []byte
	// Remote is the buffer's address in the remote SEND endpoint; it is
	// meaningful only for the one-sided (RD) implementation, where RELEASE
	// notifies the sender that this address is reusable (§4.2).
	Remote uint64

	slot int // receive-slot or local-buffer index, impl-specific
}

// SendEndpoint is the SEND half of the communication endpoint (§4.2). All
// methods are thread-safe (callable from multiple worker Procs).
type SendEndpoint interface {
	// GetFree returns a free RDMA-registered transmission buffer, blocking
	// until one is available.
	GetFree(p *sim.Proc) (*Buf, error)
	// Send schedules transmission of b to every node in dest. The buffer
	// cannot be used after Send returns. Send may block for flow control.
	Send(p *sim.Proc, b *Buf, dest []int) error
	// Finish signals end-of-stream from this endpoint to every node in the
	// cluster and flushes in-flight traffic. Call it exactly once.
	Finish(p *sim.Proc) error
}

// RecvEndpoint is the RECEIVE half of the communication endpoint (§4.2).
type RecvEndpoint interface {
	// GetData blocks until a transmission buffer is available and returns
	// it. It returns (nil, nil) once every source has signalled Depleted,
	// and an error on unrecoverable transport problems.
	GetData(p *sim.Proc) (*Data, error)
	// Release returns d's buffer to the endpoint; for one-sided transports
	// it also notifies the remote endpoint that d.Remote is consumable.
	// Reposting or notifying can itself fail when the connection has
	// errored, so Release reports transport failures like GetData does.
	Release(p *sim.Proc, d *Data) error
}

// Provider supplies each node's communication endpoints. The RDMA Comm
// implements it; the MPI and IPoIB baselines provide their own endpoints so
// the same SHUFFLE/RECEIVE operators run over every transport.
type Provider interface {
	SendEndpoints(node int) []SendEndpoint
	RecvEndpoints(node int) []RecvEndpoint
}

// epGate serializes an endpoint's per-message verb calls (posting work
// requests and polling completions). Pythia's endpoints are thread-safe via
// an internal lock, and that lock is exactly the contention the paper's
// Table 1 classifies: Excessive when one endpoint with one QP is shared by
// every thread (SESQ), Moderate for a shared endpoint with per-peer QPs
// (SEMQ, whose larger messages amortize the lock), None for per-thread
// endpoints (ME).
type epGate struct{ mu *sim.Mutex }

func newEPGate(s *sim.Simulation, name string) epGate {
	return epGate{mu: s.NewMutex("ep " + name)}
}

func (g epGate) post(p *sim.Proc, qp *verbs.QP, wr verbs.SendWR) error {
	g.mu.Lock(p)
	err := qp.PostSend(p, wr)
	g.mu.Unlock(p)
	return err
}

func (g epGate) postRecv(p *sim.Proc, qp *verbs.QP, wr verbs.RecvWR) error {
	g.mu.Lock(p)
	err := qp.PostRecv(p, wr)
	g.mu.Unlock(p)
	return err
}

func (g epGate) poll(p *sim.Proc, cq *verbs.CQ, es []verbs.CQE) int {
	g.mu.Lock(p)
	n := cq.Poll(p, es)
	g.mu.Unlock(p)
	return n
}

// dataQueue is a small FIFO of decoded Data used by endpoints that can
// complete several buffers in one poll.
type dataQueue struct {
	items []*Data
}

func (q *dataQueue) push(d *Data) { q.items = append(q.items, d) }
func (q *dataQueue) pop() *Data {
	if len(q.items) == 0 {
		return nil
	}
	d := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return d
}
func (q *dataQueue) empty() bool { return len(q.items) == 0 }

// hashKeyFunc partitions rows across transmission groups.
type hashKeyFunc = func(sch *engine.Schema, row []byte) uint64
