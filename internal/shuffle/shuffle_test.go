package shuffle

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"rshuffle/internal/engine"
	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

// shuffleRun executes one complete shuffle: every node scans a local table
// and transmits each row to the group selected by hashing column 0; every
// node's receiving fragment keeps what it gets.
type shuffleRun struct {
	sim     *sim.Simulation
	net     *fabric.Network
	comm    *Comm
	sends   []*Shuffle
	recvs   []*Receive
	results []*engine.Sink
	elapsed sim.Duration
}

func quietEDR() fabric.Profile {
	p := fabric.EDR()
	p.UDReorderProb = 0
	p.UDLossRate = 0
	return p
}

// launch builds the cluster and starts the query; callers then Run the sim.
func launch(t testing.TB, prof fabric.Profile, cfg Config, nodes, threads, rowsPerNode int, groups Groups, seed int64) *shuffleRun {
	t.Helper()
	s := sim.New(seed)
	net := fabric.New(s, prof, nodes)
	devs := verbs.OpenAll(net)
	r := &shuffleRun{sim: s, net: net}
	r.sends = make([]*Shuffle, nodes)
	r.recvs = make([]*Receive, nodes)
	r.results = make([]*engine.Sink, nodes)

	sch := engine.NewSchema(engine.TInt64, engine.TInt64)
	tables := make([]*engine.Table, nodes)
	for a := 0; a < nodes; a++ {
		tbl := engine.NewTable(sch)
		w := engine.NewWriter(tbl)
		for i := 0; i < rowsPerNode; i++ {
			w.SetInt64(0, int64(i*7+a)) // key
			w.SetInt64(1, int64(a)<<32|int64(i))
			w.Done()
		}
		tables[a] = tbl
	}

	s.Spawn("query", func(p *sim.Proc) {
		r.comm = Build(p, devs, cfg, threads)
		start := p.Now()
		done := s.NewWaitGroup("query")
		for a := 0; a < nodes; a++ {
			a := a
			sctx := &engine.Ctx{S: s, Prof: &net.Prof, Threads: threads, Node: a}
			r.sends[a] = &Shuffle{
				In: &engine.Scan{T: tables[a]}, Comm: r.comm, Node: a,
				G: groups, Key: KeyInt64Col(0),
			}
			sendSink := &engine.Sink{In: r.sends[a]}
			done.Add(1)
			sendSink.Run(sctx, fmt.Sprintf("send%d", a), func(p *sim.Proc) { done.Done() })

			rctx := &engine.Ctx{S: s, Prof: &net.Prof, Threads: threads, Node: a}
			r.recvs[a] = &Receive{Comm: r.comm, Node: a, Sch: sch}
			r.results[a] = &engine.Sink{In: r.recvs[a], Keep: true}
			done.Add(1)
			r.results[a].Run(rctx, fmt.Sprintf("recv%d", a), func(p *sim.Proc) { done.Done() })
		}
		s.Spawn("timer", func(p *sim.Proc) {
			done.Wait(p)
			r.elapsed = p.Now().Sub(start)
		})
	})
	return r
}

func runShuffle(t testing.TB, prof fabric.Profile, cfg Config, nodes, threads, rowsPerNode int, groups Groups) *shuffleRun {
	t.Helper()
	r := launch(t, prof, cfg, nodes, threads, rowsPerNode, groups, 42)
	if err := r.sim.Run(); err != nil {
		t.Fatalf("%s: %v", cfg.Name(threads), err)
	}
	return r
}

// verifyRepartition checks exactly-once delivery and correct placement.
func verifyRepartition(t *testing.T, r *shuffleRun, nodes, rowsPerNode int) {
	t.Helper()
	sch := engine.NewSchema(engine.TInt64, engine.TInt64)
	key := KeyInt64Col(0)
	seen := make(map[int64]int)
	for node, sink := range r.results {
		res := sink.Result
		for i := 0; i < res.N; i++ {
			row := res.Row(i)
			want := int(key(sch, row) % uint64(nodes))
			if want != node {
				t.Fatalf("row with key %d landed on node %d, want %d",
					engine.RowInt64(sch, row, 0), node, want)
			}
			seen[engine.RowInt64(sch, row, 1)]++
		}
	}
	if len(seen) != nodes*rowsPerNode {
		t.Fatalf("distinct rows received = %d, want %d", len(seen), nodes*rowsPerNode)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("row %x delivered %d times", id, c)
		}
	}
}

func allConfigs(threads int) []Config {
	var out []Config
	for _, a := range ExtendedAlgorithms {
		out = append(out, a.Config(threads))
	}
	return out
}

func TestRepartitionAllAlgorithms(t *testing.T) {
	const nodes, threads, rows = 4, 4, 20000
	for _, cfg := range allConfigs(threads) {
		cfg := cfg
		t.Run(cfg.Name(threads), func(t *testing.T) {
			r := runShuffle(t, quietEDR(), cfg, nodes, threads, rows, Repartition(nodes))
			for a := 0; a < nodes; a++ {
				if err := CheckErr(r.sends[a], r.recvs[a]); err != nil {
					t.Fatal(err)
				}
			}
			verifyRepartition(t, r, nodes, rows)
		})
	}
}

func TestBroadcastAllAlgorithms(t *testing.T) {
	const nodes, threads, rows = 3, 2, 5000
	for _, cfg := range allConfigs(threads) {
		cfg := cfg
		t.Run(cfg.Name(threads), func(t *testing.T) {
			r := runShuffle(t, quietEDR(), cfg, nodes, threads, rows, Broadcast(nodes))
			for node, sink := range r.results {
				if sink.Rows != int64(nodes*rows) {
					t.Fatalf("node %d received %d rows, want %d (all rows from all nodes)",
						node, sink.Rows, nodes*rows)
				}
			}
		})
	}
}

func TestMulticastGroups(t *testing.T) {
	// 4 nodes; G[0] = {1,2}, G[1] = {3}: rows hash into two groups; group 0
	// rows are duplicated to nodes 1 and 2, group 1 rows go to node 3 only,
	// node 0 receives nothing.
	const nodes, threads, rows = 4, 2, 8000
	g := Groups{{1, 2}, {3}}
	cfg := Config{Impl: MQSR, Endpoints: threads}.Defaulted()
	r := runShuffle(t, quietEDR(), cfg, nodes, threads, rows, g)
	if r.results[0].Rows != 0 {
		t.Fatalf("node 0 received %d rows, want 0", r.results[0].Rows)
	}
	if r.results[1].Rows != r.results[2].Rows {
		t.Fatalf("multicast mismatch: node1=%d node2=%d", r.results[1].Rows, r.results[2].Rows)
	}
	total := r.results[1].Rows + r.results[3].Rows
	if total != int64(nodes*rows) {
		t.Fatalf("group coverage: %d rows, want %d", total, nodes*rows)
	}
}

func TestUDOutOfOrderDelivery(t *testing.T) {
	// Reordering enabled: the counting protocol must still deliver
	// everything exactly once.
	prof := fabric.EDR() // reorder prob 0.02 by default
	prof.UDReorderProb = 0.3
	const nodes, threads, rows = 3, 2, 10000
	cfg := Config{Impl: SQSR, Endpoints: threads}.Defaulted()
	r := runShuffle(t, prof, cfg, nodes, threads, rows, Repartition(nodes))
	verifyRepartition(t, r, nodes, rows)
}

func TestUDPacketLossDetected(t *testing.T) {
	prof := quietEDR()
	const nodes, threads, rows = 2, 2, 4000
	cfg := Config{Impl: SQSR, Endpoints: threads}.Defaulted()
	r := launch(t, prof, cfg, nodes, threads, rows, Repartition(nodes), 42)
	// Drop some mid-stream datagrams destined to node 1.
	r.sim.After(1, func() { r.net.InjectUDLoss(1, 3) })
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	var got error
	for a := 0; a < nodes; a++ {
		if err := CheckErr(r.sends[a], r.recvs[a]); err != nil {
			got = err
		}
	}
	if got == nil {
		t.Fatal("packet loss went undetected")
	}
	if !errors.Is(got, ErrDataLoss) {
		t.Fatalf("error = %v, want ErrDataLoss", got)
	}
}

func TestCreditFrequencySweepStillCorrect(t *testing.T) {
	for _, f := range []int{1, 4, 16} {
		f := f
		t.Run(fmt.Sprintf("freq=%d", f), func(t *testing.T) {
			cfg := Config{Impl: MQSR, Endpoints: 2, CreditFrequency: f}.Defaulted()
			r := runShuffle(t, quietEDR(), cfg, 3, 2, 8000, Repartition(3))
			verifyRepartition(t, r, 3, 8000)
		})
	}
}

func TestSmallMessageSize(t *testing.T) {
	cfg := Config{Impl: MQSR, Endpoints: 2, BufSize: 4096}.Defaulted()
	r := runShuffle(t, quietEDR(), cfg, 3, 2, 8000, Repartition(3))
	verifyRepartition(t, r, 3, 8000)
}

func TestWRBufferReuseIsLocal(t *testing.T) {
	// The WR design frees send buffers on local write completions, so even
	// a minimal pool completes a broadcast without remote notifications.
	cfg := Config{Impl: MQWR, Endpoints: 2, BuffersPerPeer: 1}.Defaulted()
	r := runShuffle(t, quietEDR(), cfg, 3, 2, 6000, Broadcast(3))
	for node, sink := range r.results {
		if sink.Rows != int64(3*6000) {
			t.Fatalf("node %d: %d rows", node, sink.Rows)
		}
	}
}

func TestRDBroadcastBufferReuseWaitsForAll(t *testing.T) {
	// Broadcast with RD: every buffer needs a FreeArr notification from
	// every receiver before reuse; with a tiny pool this would deadlock if
	// notifications were lost. Completion itself is the assertion.
	cfg := Config{Impl: MQRD, Endpoints: 2, BuffersPerPeer: 1}.Defaulted()
	r := runShuffle(t, quietEDR(), cfg, 3, 2, 6000, Broadcast(3))
	for node, sink := range r.results {
		if sink.Rows != int64(3*6000) {
			t.Fatalf("node %d: %d rows", node, sink.Rows)
		}
	}
}

func TestQPCensus(t *testing.T) {
	s := sim.New(1)
	net := fabric.New(s, quietEDR(), 4)
	devs := verbs.OpenAll(net)
	type want struct {
		cfg Config
		qps int
	}
	cases := []want{
		{Config{Impl: SQSR, Endpoints: 1}, 1},
		{Config{Impl: SQSR, Endpoints: 8}, 8},
		{Config{Impl: MQSR, Endpoints: 1}, 4},
		{Config{Impl: MQSR, Endpoints: 8}, 32},
		{Config{Impl: MQRD, Endpoints: 8}, 32},
	}
	s.Spawn("build", func(p *sim.Proc) {
		for _, c := range cases {
			comm := Build(p, devs, c.cfg, 8)
			if comm.QPsPerOperator != c.qps {
				t.Errorf("%s: QPs = %d, want %d", c.cfg.Name(8), comm.QPsPerOperator, c.qps)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupTimeScalesWithQPs(t *testing.T) {
	setup := func(nodes int, cfg Config) sim.Duration {
		s := sim.New(1)
		net := fabric.New(s, quietEDR(), nodes)
		devs := verbs.OpenAll(net)
		var d sim.Duration
		s.Spawn("build", func(p *sim.Proc) {
			d = Build(p, devs, cfg, 8).SetupTime
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	meMQsmall := setup(2, Config{Impl: MQSR, Endpoints: 8})
	meMQbig := setup(8, Config{Impl: MQSR, Endpoints: 8})
	meSQsmall := setup(2, Config{Impl: SQSR, Endpoints: 8})
	meSQbig := setup(8, Config{Impl: SQSR, Endpoints: 8})
	if meMQbig < 3*meMQsmall {
		t.Fatalf("MQ setup should grow ~linearly with nodes: %v -> %v", meMQsmall, meMQbig)
	}
	if meSQbig != meSQsmall {
		t.Fatalf("SQ setup should be independent of cluster size: %v vs %v", meSQsmall, meSQbig)
	}
	if meSQbig >= meMQbig {
		t.Fatalf("SQ setup (%v) should be cheaper than MQ (%v)", meSQbig, meMQbig)
	}
}

func TestSendMemoryAccounting(t *testing.T) {
	mem := func(cfg Config) int64 {
		s := sim.New(1)
		net := fabric.New(s, quietEDR(), 4)
		devs := verbs.OpenAll(net)
		var m int64
		s.Spawn("build", func(p *sim.Proc) {
			m = Build(p, devs, cfg, 4).SendMemoryPerNode
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	small := mem(Config{Impl: MQSR, Endpoints: 4, BufSize: 16 << 10})
	big := mem(Config{Impl: MQSR, Endpoints: 4, BufSize: 256 << 10})
	ud := mem(Config{Impl: SQSR, Endpoints: 4})
	if big < 10*small {
		t.Fatalf("RC memory should scale with message size: %d vs %d", small, big)
	}
	if ud >= small {
		t.Fatalf("UD pinned memory (%d) should be far below RC at 16KiB (%d)", ud, small)
	}
}

func TestHeaderRoundtrip(t *testing.T) {
	b := make([]byte, HeaderSize)
	h := header{payload: 123456, flags: flagDepleted | flagTotal, src: 513, value: 1 << 40}
	putHeader(b, h)
	if got := getHeader(b); got != h {
		t.Fatalf("roundtrip = %+v, want %+v", got, h)
	}
}

func TestSlotPacking(t *testing.T) {
	for _, tc := range []struct {
		off, length int
		dep         bool
	}{{0, 0, false}, {448 << 20, 1 << 20, true}, {4096, 65536, false}} {
		v := packSlot(tc.off, tc.length, tc.dep)
		if v&slotValid == 0 {
			t.Fatal("packed slot not valid")
		}
		off, l, dep := unpackSlot(v)
		if off != tc.off || l != tc.length || dep != tc.dep {
			t.Fatalf("roundtrip (%d,%d,%v) = (%d,%d,%v)", tc.off, tc.length, tc.dep, off, l, dep)
		}
	}
}

func TestConfigNames(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want string
	}{
		{Config{Impl: SQSR, Endpoints: 14}, "MESQ/SR"},
		{Config{Impl: SQSR, Endpoints: 1}, "SESQ/SR"},
		{Config{Impl: MQSR, Endpoints: 14}, "MEMQ/SR"},
		{Config{Impl: MQSR, Endpoints: 1}, "SEMQ/SR"},
		{Config{Impl: MQRD, Endpoints: 14}, "MEMQ/RD"},
		{Config{Impl: MQRD, Endpoints: 1}, "SEMQ/RD"},
		{Config{Impl: MQSR, Endpoints: 7}, "7EMQ/SR"},
	} {
		if got := tc.cfg.Name(14); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestGroupsHelpers(t *testing.T) {
	r := Repartition(3)
	if len(r) != 3 || len(r[1]) != 1 || r[1][0] != 1 {
		t.Fatalf("Repartition(3) = %v", r)
	}
	b := Broadcast(3)
	if len(b) != 1 || len(b[0]) != 3 {
		t.Fatalf("Broadcast(3) = %v", b)
	}
}

func TestDeterministicElapsed(t *testing.T) {
	cfg := Config{Impl: SQSR, Endpoints: 2}.Defaulted()
	run := func() sim.Duration {
		r := runShuffle(t, quietEDR(), cfg, 3, 2, 5000, Repartition(3))
		return r.elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic elapsed: %v vs %v", a, b)
	}
}

func BenchmarkRepartition4NodesMESQSR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := Config{Impl: SQSR, Endpoints: 4}.Defaulted()
		runShuffle(b, quietEDR(), cfg, 4, 4, 20000, Repartition(4))
	}
}

func TestHWMulticastBroadcast(t *testing.T) {
	// Native multicast must deliver identical results to software broadcast
	// while posting far fewer send work requests.
	const nodes, threads, rows = 4, 2, 8000
	sw := runShuffle(t, quietEDR(),
		Config{Impl: SQSR, Endpoints: threads}.Defaulted(),
		nodes, threads, rows, Broadcast(nodes))
	hw := runShuffle(t, quietEDR(),
		Config{Impl: SQSR, Endpoints: threads, HWMulticast: true}.Defaulted(),
		nodes, threads, rows, Broadcast(nodes))
	for a := 0; a < nodes; a++ {
		if hw.results[a].Rows != sw.results[a].Rows {
			t.Fatalf("node %d: hw=%d sw=%d rows", a, hw.results[a].Rows, sw.results[a].Rows)
		}
		if hw.results[a].Rows != int64(nodes*rows) {
			t.Fatalf("node %d received %d rows, want %d", a, hw.results[a].Rows, nodes*rows)
		}
	}
	// CPU/NIC saving: the sender transmits roughly 1/nodes as many data
	// messages (one replicated datagram per buffer instead of one copy per
	// destination).
	swTx := sw.net.Stats(0).TxMessages
	hwTx := hw.net.Stats(0).TxMessages
	if hwTx >= swTx*2/3 {
		t.Fatalf("hardware multicast should slash transmitted messages: hw=%d sw=%d", hwTx, swTx)
	}
}

func TestHWMulticastRepartitionUnaffected(t *testing.T) {
	// Repartition groups are singletons, so the multicast path must not
	// engage and correctness must be identical.
	cfg := Config{Impl: SQSR, Endpoints: 2, HWMulticast: true}.Defaulted()
	r := runShuffle(t, quietEDR(), cfg, 4, 2, 10000, Repartition(4))
	verifyRepartition(t, r, 4, 10000)
}

func TestHWMulticastWithLossDetected(t *testing.T) {
	// Multicast datagrams are still unreliable; per-member loss must be
	// caught by the counting protocol.
	cfg := Config{Impl: SQSR, Endpoints: 2, HWMulticast: true}.Defaulted()
	r := launch(t, quietEDR(), cfg, 3, 2, 6000, Broadcast(3), 42)
	r.sim.After(1, func() { r.net.InjectUDLoss(1, 2) })
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	var got error
	for a := 0; a < 3; a++ {
		if err := CheckErr(r.sends[a], r.recvs[a]); err != nil {
			got = err
		}
	}
	if !errors.Is(got, ErrDataLoss) {
		t.Fatalf("error = %v, want ErrDataLoss", got)
	}
}

// Property: for arbitrary small configurations (implementation, endpoint
// count, buffer size, cluster size, thread count), repartitioning delivers
// every row exactly once to the hash-designated node.
func TestRandomConfigConservationProperty(t *testing.T) {
	impls := []Impl{SQSR, MQSR, MQRD, MQWR}
	f := func(implSel, eSel, nSel, tSel, bufSel uint8) bool {
		impl := impls[int(implSel)%len(impls)]
		nodes := 2 + int(nSel)%3   // 2..4
		threads := 1 + int(tSel)%4 // 1..4
		e := 1 + int(eSel)%threads
		buf := 4096 << (int(bufSel) % 3) // 4..16 KiB
		cfg := Config{Impl: impl, Endpoints: e, BufSize: buf}.Defaulted()
		rows := 4000
		r := launch(t, quietEDR(), cfg, nodes, threads, rows, Repartition(nodes), int64(implSel)+7)
		if err := r.sim.Run(); err != nil {
			t.Logf("%s n=%d t=%d e=%d buf=%d: %v", impl, nodes, threads, e, buf, err)
			return false
		}
		for a := 0; a < nodes; a++ {
			if err := CheckErr(r.sends[a], r.recvs[a]); err != nil {
				t.Logf("%s n=%d t=%d e=%d buf=%d: %v", impl, nodes, threads, e, buf, err)
				return false
			}
		}
		var total int64
		for _, s := range r.results {
			total += s.Rows
		}
		return total == int64(nodes*rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the slot codec roundtrips arbitrary in-range values.
func TestSlotCodecProperty(t *testing.T) {
	f := func(off uint32, length uint32, dep bool) bool {
		l := int(length) & 0xFFFFFF
		v := packSlot(int(off), l, dep)
		o2, l2, d2 := unpackSlot(v)
		return o2 == int(off) && l2 == l && d2 == dep && v&slotValid != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: header codec roundtrips arbitrary values.
func TestHeaderCodecProperty(t *testing.T) {
	f := func(payload uint32, flags, src uint16, value uint64) bool {
		b := make([]byte, HeaderSize)
		h := header{payload: int(payload & 0x7FFFFFFF), flags: flags, src: src, value: value}
		putHeader(b, h)
		return getHeader(b) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
