package shuffle

import (
	"fmt"
	"testing"
	"time"

	"rshuffle/internal/engine"
	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

// drainReopenCycle exercises the PeerDrainer/PeerResumer contract on every
// endpoint of node 0: drain peer 1 twice (idempotent), then reopen twice
// (also idempotent). It runs from a scheduler callback mid-stream, so the
// query that follows proves the cycle left the flow-control accounting
// intact — any leaked credit or stuck buffer would deadlock or fail the
// run.
func drainReopenCycle(t *testing.T, r *shuffleRun) {
	t.Helper()
	node := r.comm.Nodes[0]
	eps := make([]interface{}, 0, len(node.Send)+len(node.Recv))
	for _, s := range node.Send {
		eps = append(eps, s)
	}
	for _, rc := range node.Recv {
		eps = append(eps, rc)
	}
	for _, ep := range eps {
		pd, ok := ep.(PeerDrainer)
		if !ok {
			t.Errorf("%T does not implement PeerDrainer", ep)
			continue
		}
		pr, ok := ep.(PeerResumer)
		if !ok {
			t.Errorf("%T does not implement PeerResumer", ep)
			continue
		}
		pd.DrainPeer(1)
		pd.DrainPeer(1) // idempotent
		pr.ReopenPeer(1)
		pr.ReopenPeer(1) // idempotent
		// Out-of-range peers must be ignored, not panic or corrupt state.
		pd.DrainPeer(-1)
		pd.DrainPeer(99)
		pr.ReopenPeer(-1)
		pr.ReopenPeer(99)
	}
}

// TestDrainReopenPerImpl runs the drain/reopen cycle mid-stream for every
// endpoint implementation and checks the shuffle still completes with
// exactly-once delivery: the reopened peer resumed, and no credits leaked.
func TestDrainReopenPerImpl(t *testing.T) {
	const nodes, threads, rows = 3, 2, 8000
	for _, cfg := range allConfigs(threads) {
		cfg := cfg
		t.Run(cfg.Name(threads), func(t *testing.T) {
			r := launch(t, quietEDR(), cfg, nodes, threads, rows, Repartition(nodes), 42)
			// Fire after connection setup but within the stream; setup time
			// varies per config, so poll until the comm layer exists.
			var arm func()
			arm = func() {
				if r.comm == nil {
					r.sim.After(50*time.Microsecond, arm)
					return
				}
				drainReopenCycle(t, r)
			}
			r.sim.After(200*time.Microsecond, arm)
			if err := r.sim.Run(); err != nil {
				t.Fatal(err)
			}
			for a := 0; a < nodes; a++ {
				if err := CheckErr(r.sends[a], r.recvs[a]); err != nil {
					t.Fatal(err)
				}
			}
			verifyRepartition(t, r, nodes, rows)
		})
	}
}

// TestProgressWatermarks checks the per-source progress interface across
// all implementations: after a clean run every source is Complete and the
// per-source row counts sum to the node's total.
func TestProgressWatermarks(t *testing.T) {
	const nodes, threads, rows = 3, 2, 6000
	for _, cfg := range allConfigs(threads) {
		cfg := cfg
		t.Run(cfg.Name(threads), func(t *testing.T) {
			r := runShuffle(t, quietEDR(), cfg, nodes, threads, rows, Repartition(nodes))
			for a := 0; a < nodes; a++ {
				prog := r.recvs[a].Progress(nodes)
				var sum int64
				for src, pp := range prog {
					if !pp.Complete {
						t.Fatalf("node %d: source %d not complete after a clean run", a, src)
					}
					sum += pp.Rows
				}
				if sum != r.recvs[a].Rows {
					t.Fatalf("node %d: per-source rows sum %d != total %d", a, sum, r.recvs[a].Rows)
				}
			}
		})
	}
}

// launchSkip mirrors launch but attaches a SkipTo set to every sending
// shuffle at construction, the way partial-restart recovery does.
func launchSkip(t *testing.T, cfg Config, nodes, threads, rowsPerNode int, skip []bool) *shuffleRun {
	t.Helper()
	s := sim.New(42)
	net := fabric.New(s, quietEDR(), nodes)
	devs := verbs.OpenAll(net)
	r := &shuffleRun{sim: s, net: net}
	r.sends = make([]*Shuffle, nodes)
	r.recvs = make([]*Receive, nodes)
	r.results = make([]*engine.Sink, nodes)

	sch := engine.NewSchema(engine.TInt64, engine.TInt64)
	tables := make([]*engine.Table, nodes)
	for a := 0; a < nodes; a++ {
		tbl := engine.NewTable(sch)
		w := engine.NewWriter(tbl)
		for i := 0; i < rowsPerNode; i++ {
			w.SetInt64(0, int64(i*7+a))
			w.SetInt64(1, int64(a)<<32|int64(i))
			w.Done()
		}
		tables[a] = tbl
	}

	groups := Repartition(nodes)
	s.Spawn("query", func(p *sim.Proc) {
		r.comm = Build(p, devs, cfg, threads)
		done := s.NewWaitGroup("query")
		for a := 0; a < nodes; a++ {
			a := a
			sctx := &engine.Ctx{S: s, Prof: &net.Prof, Threads: threads, Node: a}
			r.sends[a] = &Shuffle{
				In: &engine.Scan{T: tables[a]}, Comm: r.comm, Node: a,
				G: groups, Key: KeyInt64Col(0), SkipTo: skip,
			}
			sendSink := &engine.Sink{In: r.sends[a]}
			done.Add(1)
			sendSink.Run(sctx, fmt.Sprintf("send%d", a), func(p *sim.Proc) { done.Done() })

			rctx := &engine.Ctx{S: s, Prof: &net.Prof, Threads: threads, Node: a}
			r.recvs[a] = &Receive{Comm: r.comm, Node: a, Sch: sch}
			r.results[a] = &engine.Sink{In: r.recvs[a], Keep: true}
			done.Add(1)
			r.results[a].Run(rctx, fmt.Sprintf("recv%d", a), func(p *sim.Proc) { done.Done() })
		}
	})
	return r
}

// TestSkipToSuppressesPartitions runs a repartition shuffle with every
// sender skipping destination 1: node 1 receives a clean zero-row stream
// (end-of-stream still propagates), the other nodes receive exactly what
// the baseline run delivers, and the run reports no error.
func TestSkipToSuppressesPartitions(t *testing.T) {
	const nodes, threads, rows = 3, 2, 8000
	cfg := Config{Impl: MQSR, Endpoints: threads}.Defaulted()
	base := runShuffle(t, quietEDR(), cfg, nodes, threads, rows, Repartition(nodes))

	skip := make([]bool, nodes)
	skip[1] = true
	r := launchSkip(t, cfg, nodes, threads, rows, skip)
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < nodes; a++ {
		if err := CheckErr(r.sends[a], r.recvs[a]); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.results[1].Rows; got != 0 {
		t.Fatalf("skipped destination received %d rows, want 0", got)
	}
	for _, a := range []int{0, 2} {
		if r.results[a].Rows != base.results[a].Rows {
			t.Fatalf("node %d: %d rows with skip, %d without", a, r.results[a].Rows, base.results[a].Rows)
		}
	}
	// The skipped node's stream is protocol-complete: every source delivered
	// its end-of-stream marker, just with zero rows.
	for src, pp := range r.recvs[1].Progress(nodes) {
		if !pp.Complete || pp.Rows != 0 {
			t.Fatalf("skipped node: source %d progress = %+v, want complete with 0 rows", src, pp)
		}
	}
}
