package shuffle

import (
	"fmt"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

// Slot encoding for the FreeArr/ValidArr circular queues (Alg. 3). One
// 8-byte word per slot: | offset:32 | length:24 | flags:7 | valid:1 |.
// A zero word is an empty slot; the receiver (of the notification) zeroes a
// slot after consuming it, and queue capacity >= the sender's buffer pool
// guarantees a producer never overruns unconsumed entries.
const (
	slotValid    = 1 << 0
	slotDepleted = 1 << 1
)

func packSlot(off, length int, depleted bool) uint64 {
	v := uint64(off)<<32 | uint64(length)<<8 | slotValid
	if depleted {
		v |= slotDepleted
	}
	return v
}

func unpackSlot(v uint64) (off, length int, depleted bool) {
	return int(v >> 32), int(v>>8) & 0xFFFFFF, v&slotDepleted != 0
}

// rdRCSend implements the SEND endpoint with one-sided RDMA Read over the
// Reliable Connection service (§4.4.3, Fig. 7a). The sender stays passive
// on the data path: SEND only announces full buffers by writing their
// addresses into each receiver's ValidArr with RDMA Write, and GETFREE
// harvests buffer addresses that receivers returned through the local
// FreeArr. The data itself moves when receivers issue RDMA Reads.
type rdRCSend struct {
	dev *verbs.Device
	cfg Config
	n   int

	qps []*verbs.QP
	wcq *verbs.CQ // completions of outgoing ValidArr writes

	gate epGate

	mr       *verbs.MR // data buffer pool; receivers read from it directly
	poolBufs int
	queueCap int

	freeArrMR *verbs.MR // n circular queues written by receivers
	cons      []int

	stageMR  *verbs.MR   // per destination 8-byte staging for slot writes
	validWin []remoteWin // per destination: my ValidArr queue at that node
	prod     []int

	free    *sim.Queue[int]
	pending map[int]int

	// failed marks destinations declared dead by the connection manager;
	// qpDest attributes completions to their connection.
	failed []bool
	qpDest map[uint32]int
}

func (e *rdRCSend) buf(off int) *Buf {
	return &Buf{Data: e.mr.Buf[off+HeaderSize : off+e.cfg.BufSize], off: off}
}

// DrainPeer and ClosePeer implement PeerDrainer: a dead receiver never
// returns buffers through FreeArr, so blocked GETFREE/FINISH calls wake and
// fail with ErrPeerFailed.
func (e *rdRCSend) DrainPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = true
	}
}

func (e *rdRCSend) ClosePeer(peer int) {
	e.wcq.Kick()
	e.dev.KickMemWaiters()
}

// ReopenPeer implements PeerResumer.
func (e *rdRCSend) ReopenPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = false
	}
}

func (e *rdRCSend) anyFailed() (int, bool) {
	for d, f := range e.failed {
		if f {
			return d, true
		}
	}
	return 0, false
}

// harvest scans every FreeArr queue for buffers returned by receivers.
func (e *rdRCSend) harvest() {
	for src := 0; src < e.n; src++ {
		for {
			idx := src*e.queueCap + e.cons[src]%e.queueCap
			v := verbs.ReadUint64(e.freeArrMR.Buf[8*idx:])
			if v&slotValid == 0 {
				break
			}
			verbs.PutUint64(e.freeArrMR.Buf[8*idx:], 0)
			e.cons[src]++
			off, _, _ := unpackSlot(v)
			e.pending[off]--
			if e.pending[off] == 0 {
				delete(e.pending, off)
				e.free.Put(off)
			}
		}
	}
}

func (e *rdRCSend) reapWrites(p *sim.Proc) error {
	var es [16]verbs.CQE
	for e.wcq.Len() > 0 {
		n := e.gate.poll(p, e.wcq, es[:])
		for _, c := range es[:n] {
			if c.Status != verbs.WCSuccess {
				if d, ok := e.qpDest[c.QPN]; ok && (c.Status == verbs.WCPeerDown || e.failed[d]) {
					return peerFailedErr(d)
				}
				return wcErr(c)
			}
		}
	}
	return nil
}

// GetFree implements SendEndpoint (Alg. 3, GETFREE): it returns a buffer
// only once every destination in its transmission group has marked it free.
func (e *rdRCSend) GetFree(p *sim.Proc) (*Buf, error) {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		if off, ok := e.free.TryGet(); ok {
			return e.buf(off), nil
		}
		e.harvest()
		if err := e.reapWrites(p); err != nil {
			return nil, err
		}
		if off, ok := e.free.TryGet(); ok {
			return e.buf(off), nil
		}
		if d, ok := e.anyFailed(); ok {
			return nil, peerFailedErr(d)
		}
		if !e.dev.WaitMemChange(p, w.step()) {
			if !w.idle() {
				return nil, fmt.Errorf("%w: RD GetFree on node %d (%d buffers outstanding)",
					ErrStalled, e.dev.Node(), len(e.pending))
			}
			continue
		}
		w.progress()
	}
}

// writeSlot announces (off, length) to dest's ValidArr via RDMA Write. The
// queue index is reserved before posting: PostSend can yield to another
// thread sharing this endpoint, and two writers must never target one slot.
func (e *rdRCSend) writeSlot(p *sim.Proc, dest int, word uint64) error {
	if e.failed[dest] {
		return peerFailedErr(dest)
	}
	idx := e.prod[dest]
	e.prod[dest]++
	// The staging slot mirrors the remote slot index: concurrent writers to
	// the same destination each stage in their own word, because PostSend
	// yields before snapshotting the payload.
	stage := 8 * (dest*e.queueCap + idx%e.queueCap)
	verbs.PutUint64(e.stageMR.Buf[stage:], word)
	for {
		err := e.gate.post(p, e.qps[dest], verbs.SendWR{
			Op: verbs.OpWrite, MR: e.stageMR, Offset: stage, Len: 8, Inline: true,
			RemoteKey:    e.validWin[dest].rkey,
			RemoteOffset: e.validWin[dest].base + 8*(idx%e.queueCap),
		})
		if err == nil {
			return nil
		}
		if err == verbs.ErrPeerDown {
			return peerFailedErr(dest)
		}
		if err != verbs.ErrSQFull {
			return err
		}
		e.wcq.WaitNonEmpty(p, 0)
		if err := e.reapWrites(p); err != nil {
			return err
		}
	}
}

func (e *rdRCSend) send(p *sim.Proc, b *Buf, dest []int, depleted bool) error {
	putHeader(e.mr.Buf[b.off:], header{payload: b.Len, src: uint16(e.dev.Node())})
	e.pending[b.off] = len(dest)
	word := packSlot(b.off, HeaderSize+b.Len, depleted)
	for _, d := range dest {
		if err := e.writeSlot(p, d, word); err != nil {
			return err
		}
	}
	return e.reapWrites(p)
}

// Send implements SendEndpoint.
func (e *rdRCSend) Send(p *sim.Proc, b *Buf, dest []int) error {
	return e.send(p, b, dest, false)
}

// Finish implements SendEndpoint: one Depleted buffer is announced to every
// node, then the endpoint waits for receivers to return every outstanding
// buffer, since buffers may not be unregistered while a remote Read could
// still target them.
func (e *rdRCSend) Finish(p *sim.Proc) error {
	b, err := e.GetFree(p)
	if err != nil {
		return err
	}
	all := make([]int, e.n)
	for i := range all {
		all[i] = i
	}
	b.Len = 0
	if err := e.send(p, b, all, true); err != nil {
		return err
	}
	w := newWaiter(e.cfg.StallTimeout)
	for len(e.pending) > 0 {
		e.harvest()
		if err := e.reapWrites(p); err != nil {
			return err
		}
		if len(e.pending) == 0 {
			break
		}
		if d, ok := e.anyFailed(); ok {
			return peerFailedErr(d)
		}
		if !e.dev.WaitMemChange(p, w.step()) {
			if !w.idle() {
				return fmt.Errorf("%w: RD Finish flush (%d outstanding)", ErrStalled, len(e.pending))
			}
			continue
		}
		w.progress()
	}
	return nil
}

// rdRCRecv implements the RECEIVE endpoint over one-sided RDMA Read
// (§4.4.3, Fig. 7b). GETDATA first turns ValidArr announcements into RDMA
// Read requests while local destination buffers are available, then waits
// for read completions. RELEASE returns the remote buffer's address through
// the sender's FreeArr and recycles the local buffer onto LocalArr.
type rdRCRecv struct {
	dev *verbs.Device
	cfg Config
	n   int

	qps []*verbs.QP
	ocq *verbs.CQ // read + FreeArr-write completions

	gate epGate

	validArrMR *verbs.MR // n circular queues written by senders
	queueCap   int
	cons       []int

	localMR  *verbs.MR // local destination buffers for incoming reads
	localArr [][]int   // per source: stack of free local buffer offsets

	stageMR *verbs.MR   // per source 8-byte staging for FreeArr writes
	freeWin []remoteWin // per source: that sender's FreeArr queue
	prod    []int

	dataWin []remoteWin // per source: that sender's data pool MR

	nextWRID     uint64
	readCtx      map[uint64]rdReadCtx
	outstanding  int
	ready        dataQueue
	pendingFrees []pendingFree
	depleted     int
	depletedBy   []bool

	// failed marks sources declared dead by the connection manager; qpSrc
	// attributes completions to their connection.
	failed []bool
	qpSrc  map[uint32]int
}

type rdReadCtx struct {
	src       int
	remoteOff int
	localOff  int
	depleted  bool
}

// DrainPeer and ClosePeer implement PeerDrainer: GETDATA stops issuing
// reads against the dead sender's pool and fails once its stream is known
// to be incomplete instead of waiting for ValidArr entries forever.
func (e *rdRCRecv) DrainPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = true
	}
}

func (e *rdRCRecv) ClosePeer(peer int) {
	e.ocq.Kick()
	e.dev.KickMemWaiters()
}

// ReopenPeer implements PeerResumer.
func (e *rdRCRecv) ReopenPeer(peer int) {
	if peer >= 0 && peer < e.n {
		e.failed[peer] = false
	}
}

// Depleted implements ProgressReporter.
func (e *rdRCRecv) Depleted(src int) bool {
	return src >= 0 && src < e.n && e.depletedBy[src]
}

// missingFailed returns a failed source whose stream is still incomplete.
func (e *rdRCRecv) missingFailed() (int, bool) {
	for s, f := range e.failed {
		if f && !e.depletedBy[s] {
			return s, true
		}
	}
	return 0, false
}

// issueReads converts consumable ValidArr entries into RDMA Read requests
// (Alg. 3, GETDATA lines 19-24).
func (e *rdRCRecv) issueReads(p *sim.Proc) error {
	for src := 0; src < e.n; src++ {
		if e.failed[src] {
			// The sender's pool is unreachable; any announced-but-unread
			// buffers die with it.
			continue
		}
		for len(e.localArr[src]) > 0 {
			idx := src*e.queueCap + e.cons[src]%e.queueCap
			v := verbs.ReadUint64(e.validArrMR.Buf[8*idx:])
			if v&slotValid == 0 {
				break
			}
			verbs.PutUint64(e.validArrMR.Buf[8*idx:], 0)
			e.cons[src]++
			off, length, dep := unpackSlot(v)
			last := len(e.localArr[src]) - 1
			local := e.localArr[src][last]
			e.localArr[src] = e.localArr[src][:last]
			e.nextWRID++
			wrid := e.nextWRID
			e.readCtx[wrid] = rdReadCtx{src: src, remoteOff: off, localOff: local, depleted: dep}
			for {
				err := e.gate.post(p, e.qps[src], verbs.SendWR{
					ID: wrid, Op: verbs.OpRead,
					MR: e.localMR, Offset: local, Len: length,
					RemoteKey: e.dataWin[src].rkey, RemoteOffset: e.dataWin[src].base + off,
				})
				if err == nil {
					break
				}
				if err == verbs.ErrPeerDown {
					return peerFailedErr(src)
				}
				if err != verbs.ErrSQFull {
					return err
				}
				if err := e.drain(p, true); err != nil {
					return err
				}
			}
			e.outstanding++
		}
	}
	return nil
}

// drain processes completions, queueing finished reads as ready Data. With
// block set it waits for at least one completion first (used only when
// operations are known to be outstanding, so the wait always terminates).
func (e *rdRCRecv) drain(p *sim.Proc, block bool) error {
	var es [16]verbs.CQE
	for {
		if e.ocq.Len() == 0 {
			if !block {
				return nil
			}
			e.ocq.WaitNonEmpty(p, 0)
		}
		n := e.gate.poll(p, e.ocq, es[:])
		if err := e.handle(es[:n]); err != nil {
			return err
		}
		block = false
	}
}

func (e *rdRCRecv) handle(es []verbs.CQE) error {
	for _, c := range es {
		if c.Status != verbs.WCSuccess {
			if s, ok := e.qpSrc[c.QPN]; ok && (c.Status == verbs.WCPeerDown || e.failed[s]) {
				return peerFailedErr(s)
			}
			return wcErr(c)
		}
		if c.Op != verbs.OpRead {
			continue // FreeArr write completion
		}
		ctx, ok := e.readCtx[c.WRID]
		if !ok {
			return fmt.Errorf("shuffle: unknown read completion %d", c.WRID)
		}
		delete(e.readCtx, c.WRID)
		e.outstanding--
		h := getHeader(e.localMR.Buf[ctx.localOff:])
		if ctx.depleted {
			e.depleted++
			e.depletedBy[ctx.src] = true
			if e.depleted >= e.n {
				e.ocq.Kick()
				e.dev.KickMemWaiters()
			}
		}
		if h.payload == 0 {
			// Marker buffer: release it right away.
			e.releaseParts(ctx.src, ctx.remoteOff, ctx.localOff)
			continue
		}
		off := ctx.localOff
		e.ready.push(&Data{
			Src:     int(h.src),
			Payload: e.localMR.Buf[off+HeaderSize : off+HeaderSize+h.payload],
			Remote:  uint64(ctx.remoteOff),
			slot:    off,
		})
	}
	return nil
}

// releaseParts performs the two halves of RELEASE without a Data wrapper.
// It is also used for zero-payload markers. The FreeArr write is deferred
// to the next GetData/Release call's Proc, so it must be invoked from Proc
// context; we keep a small queue of pending frees to flush.
func (e *rdRCRecv) releaseParts(src, remoteOff, localOff int) {
	e.pendingFrees = append(e.pendingFrees, pendingFree{src: src, remoteOff: remoteOff})
	e.localArr[src] = append(e.localArr[src], localOff)
}

type pendingFree struct {
	src       int
	remoteOff int
}

// flushFrees writes queued FreeArr notifications.
func (e *rdRCRecv) flushFrees(p *sim.Proc) error {
	for len(e.pendingFrees) > 0 {
		f := e.pendingFrees[0]
		e.pendingFrees = e.pendingFrees[1:]
		if err := e.writeFree(p, f.src, f.remoteOff); err != nil {
			return err
		}
	}
	return nil
}

func (e *rdRCRecv) writeFree(p *sim.Proc, src, remoteOff int) error {
	if e.failed[src] {
		return nil // the dead sender will never reuse the buffer anyway
	}
	// Reserve the slot index and its staging mirror before posting; see
	// rdRCSend.writeSlot for why.
	idx := e.prod[src]
	e.prod[src]++
	stage := 8 * (src*e.queueCap + idx%e.queueCap)
	verbs.PutUint64(e.stageMR.Buf[stage:], packSlot(remoteOff, 0, false))
	for {
		err := e.gate.post(p, e.qps[src], verbs.SendWR{
			Op: verbs.OpWrite, MR: e.stageMR, Offset: stage, Len: 8, Inline: true,
			RemoteKey:    e.freeWin[src].rkey,
			RemoteOffset: e.freeWin[src].base + 8*(idx%e.queueCap),
		})
		if err == nil {
			traceCredit(e.dev, src, int64(remoteOff))
			return nil
		}
		if err == verbs.ErrPeerDown {
			return nil
		}
		if err != verbs.ErrSQFull {
			return err
		}
		if err := e.drain(p, true); err != nil {
			return err
		}
	}
}

// GetData implements RecvEndpoint (Alg. 3, GETDATA).
func (e *rdRCRecv) GetData(p *sim.Proc) (*Data, error) {
	w := newWaiter(e.cfg.StallTimeout)
	for {
		if d := e.ready.pop(); d != nil {
			return d, nil
		}
		if err := e.flushFrees(p); err != nil {
			return nil, err
		}
		if err := e.issueReads(p); err != nil {
			return nil, err
		}
		if err := e.drain(p, false); err != nil {
			return nil, err
		}
		// Drain may have queued FreeArr notifications (marker buffers);
		// flush them before blocking or returning so senders never starve.
		if err := e.flushFrees(p); err != nil {
			return nil, err
		}
		if !e.ready.empty() {
			continue
		}
		if e.depleted >= e.n && e.outstanding == 0 {
			return nil, nil
		}
		if s, ok := e.missingFailed(); ok {
			return nil, peerFailedErr(s)
		}
		ok := false
		if e.outstanding > 0 {
			ok = e.ocq.WaitNonEmpty(p, w.step())
		} else {
			ok = e.dev.WaitMemChange(p, w.step())
		}
		if !ok {
			if !w.idle() {
				return nil, fmt.Errorf("%w: RD GetData on node %d (%d/%d depleted, %d reads out)",
					ErrStalled, e.dev.Node(), e.depleted, e.n, e.outstanding)
			}
		} else {
			w.progress()
		}
	}
}

// Release implements RecvEndpoint (Alg. 3, RELEASE).
func (e *rdRCRecv) Release(p *sim.Proc, d *Data) error {
	e.releaseParts(d.Src, int(d.Remote), d.slot)
	return e.flushFrees(p)
}

func newRDRCSend(dev *verbs.Device, cfg Config, n, tpe int) *rdRCSend {
	pool := tpe * n * cfg.BuffersPerPeer
	e := &rdRCSend{
		dev: dev, cfg: cfg, n: n,
		gate:     newEPGate(dev.Sim(), fmt.Sprintf("rd-send@%d", dev.Node())),
		poolBufs: pool,
		queueCap: pool + 1,
		cons:     make([]int, n),
		prod:     make([]int, n),
		validWin: make([]remoteWin, n),
		free:     sim.NewQueue[int](dev.Sim(), fmt.Sprintf("rd-free@%d", dev.Node())),
		pending:  make(map[int]int),
		failed:   make([]bool, n),
		qpDest:   make(map[uint32]int),
	}
	e.wcq = dev.CreateCQ(4*pool*n + 64)
	e.mr = dev.AllocMRNoCost(pool * cfg.BufSize)
	e.freeArrMR = dev.RegisterMRNoCost(make([]byte, 8*n*e.queueCap))
	e.stageMR = dev.RegisterMRNoCost(make([]byte, 8*n*e.queueCap))
	for i := 0; i < pool; i++ {
		e.free.Put(i * cfg.BufSize)
	}
	e.qps = make([]*verbs.QP, n)
	for d := 0; d < n; d++ {
		e.qps[d] = dev.CreateQP(verbs.QPConfig{
			Type: fabric.RC, SendCQ: e.wcq, RecvCQ: e.wcq,
			MaxSend: 2*pool + 16, MaxRecv: 4,
		})
		e.qpDest[e.qps[d].QPN()] = d
	}
	return e
}

func newRDRCRecv(dev *verbs.Device, cfg Config, n, tpe, senderPool int) *rdRCRecv {
	perSrc := tpe * cfg.RecvBuffersPerPeer
	e := &rdRCRecv{
		dev: dev, cfg: cfg, n: n,
		gate:       newEPGate(dev.Sim(), fmt.Sprintf("rd-recv@%d", dev.Node())),
		queueCap:   senderPool + 1,
		cons:       make([]int, n),
		prod:       make([]int, n),
		freeWin:    make([]remoteWin, n),
		dataWin:    make([]remoteWin, n),
		localArr:   make([][]int, n),
		readCtx:    make(map[uint64]rdReadCtx),
		depletedBy: make([]bool, n),
		failed:     make([]bool, n),
		qpSrc:      make(map[uint32]int),
	}
	e.ocq = dev.CreateCQ(4*n*perSrc + 64)
	e.validArrMR = dev.RegisterMRNoCost(make([]byte, 8*n*e.queueCap))
	e.localMR = dev.AllocMRNoCost(n * perSrc * cfg.BufSize)
	e.stageMR = dev.RegisterMRNoCost(make([]byte, 8*n*e.queueCap))
	for src := 0; src < n; src++ {
		for i := 0; i < perSrc; i++ {
			e.localArr[src] = append(e.localArr[src], (src*perSrc+i)*cfg.BufSize)
		}
	}
	e.qps = make([]*verbs.QP, n)
	for s := 0; s < n; s++ {
		e.qps[s] = dev.CreateQP(verbs.QPConfig{
			Type: fabric.RC, SendCQ: e.ocq, RecvCQ: e.ocq,
			MaxSend: 2*perSrc + 16, MaxRecv: 4,
		})
		e.qpSrc[e.qps[s].QPN()] = s
	}
	return e
}
