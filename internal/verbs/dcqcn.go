package verbs

import (
	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// DCQCN-style per-QP rate limiting in the NIC TX engine, for the lossy
// RoCEv2 tier. The control loop follows Zhu et al. (SIGCOMM'15) in shape,
// simplified to the pieces that matter for shuffle behaviour: a congested
// egress port CE-marks data packets (fabric), the receiving NIC answers with
// a coalesced congestion notification packet (CNP) toward the sender QP, the
// sender cuts that QP's rate multiplicatively, and a periodic timer recovers
// it toward line rate (hyper increase via target-rate averaging plus an
// additive-increase step). A QP with no limiter entry transmits at line rate
// with zero bookkeeping, so lossless profiles pay nothing.
type dcqcn struct {
	// rate is the current sending rate in bytes/s; target is the rate
	// before the last cut, which recovery converges back toward.
	rate, target float64
	// alpha is the EWMA congestion estimate in [0,1].
	alpha float64
	// timerArmed guards the single recovery timer per limiter; timer is its
	// cancellable wheel handle.
	timerArmed bool
	timer      sim.Timer
}

// installECN wires the fabric's ECN-mark notifications to CNP generation at
// the receiving device. OpenAll calls it once per network.
func installECN(net *fabric.Network) {
	net.SetECNHandler(func(from, to int, fromQP, toQP uint64) {
		deviceAt(net, to).ecnMarked(from, fromQP, toQP)
	})
}

// ecnMarked runs at the receiving NIC for every CE-marked packet: it answers
// with a CNP toward the sender QP, coalesced per flow by the CNP timer as
// real NICs do. CNPs ride the control lane (never paused, marked, or
// tail-dropped) and are fire-and-forget: a lost CNP just means no cut this
// interval.
func (d *Device) ecnMarked(from int, fromQP, toQP uint64) {
	prof := d.prof()
	if !prof.DCQCN {
		return
	}
	now := d.net.Sim.Now()
	if last, ok := d.cnpLast[fromQP]; ok && now.Sub(last) < prof.CNPInterval {
		return
	}
	if d.cnpLast == nil {
		d.cnpLast = make(map[uint64]sim.Time)
	}
	d.cnpLast[fromQP] = now
	d.stats.CNPsSent++
	d.tr().Instant(now, telemetry.EvCNP, int32(d.node), fromQP, int64(from), 0)
	net := d.net
	qpn := uint32(fromQP) // low half of the cache key is the sender's QPN
	cnp := &fabric.Message{
		From: d.node, To: from,
		FromQP: toQP, ToQP: fromQP,
		Payload: prof.CNPBytes, Service: fabric.RC,
		Deliver: func(at sim.Time) { deviceAt(net, from).handleCNP(qpn) },
		Dropped: func() {},
	}
	net.Transmit(cnp)
}

// handleCNP applies one congestion notification to the named local QP:
// update alpha, remember the current rate as the recovery target, cut
// multiplicatively, and make sure the recovery timer is running.
func (d *Device) handleCNP(qpn uint32) {
	prof := d.prof()
	d.stats.CNPsReceived++
	rl := d.rl[qpn]
	if rl == nil {
		rl = &dcqcn{rate: prof.LinkBandwidth, alpha: 1}
		d.rl[qpn] = rl
	}
	rl.alpha = (1-prof.DCQCNAlphaG)*rl.alpha + prof.DCQCNAlphaG
	rl.target = rl.rate
	rl.rate *= 1 - rl.alpha/2
	if rl.rate < prof.DCQCNMinRate {
		rl.rate = prof.DCQCNMinRate
	}
	d.stats.RateCuts++
	d.tr().Instant(d.net.Sim.Now(), telemetry.EvRateCut,
		int32(d.node), uint64(d.node)<<32|uint64(qpn), int64(rl.rate), 1)
	d.armRateTimer(qpn, rl)
}

func (d *Device) armRateTimer(qpn uint32, rl *dcqcn) {
	if rl.timerArmed {
		return
	}
	rl.timerArmed = true
	rl.timer = d.net.Sim.AfterTimer(d.prof().DCQCNRecoveryPeriod, func() { d.rateTick(qpn, rl) })
}

// rateTick is one recovery period: decay alpha, raise the target additively,
// and average the rate halfway toward it (the hyper-increase shape). Once
// the rate is back at line rate the limiter retires, restoring the
// zero-bookkeeping fast path.
func (d *Device) rateTick(qpn uint32, rl *dcqcn) {
	rl.timerArmed = false
	rl.timer = sim.Timer{}
	if d.rl[qpn] != rl {
		return // limiter was retired or replaced while the timer was pending
	}
	prof := d.prof()
	link := prof.LinkBandwidth
	rl.target += prof.DCQCNRateAI
	if rl.target > link {
		rl.target = link
	}
	rl.rate = (rl.rate + rl.target) / 2
	rl.alpha *= 1 - prof.DCQCNAlphaG
	d.tr().Instant(d.net.Sim.Now(), telemetry.EvRateCut,
		int32(d.node), uint64(d.node)<<32|uint64(qpn), int64(rl.rate), 0)
	if rl.rate >= 0.999*link {
		delete(d.rl, qpn)
		return
	}
	d.armRateTimer(qpn, rl)
}

// Rate returns qpn's current DCQCN sending rate in bytes/s and whether a
// limiter is active; an inactive limiter means line rate.
func (d *Device) Rate(qpn uint32) (float64, bool) {
	if rl := d.rl[qpn]; rl != nil {
		return rl.rate, true
	}
	return d.prof().LinkBandwidth, false
}

// sendPaced routes msg through the QP's go-back-N engine and DCQCN rate
// limiter before handing it to the fabric.
func (qp *QP) sendPaced(msg *fabric.Message) {
	// Go-back-N: while a replay is pending the QP's send pointer sits behind
	// the hole, so new data sends join the lost window and first hit the
	// wire when the retransmission timer fires — the head-of-line stall that
	// makes packet loss expensive on real RC hardware.
	if qp.frozenBehindHole(msg) {
		qp.retx.queue = append(qp.retx.queue, msg)
		return
	}
	qp.pacedSend(qp.dev.net.Prof.WireBytes(msg.Payload, msg.Service), func() {
		// The release instant re-checks the hole: a loss detected while the
		// message sat in the pacer rewinds it into the replay window too.
		if qp.frozenBehindHole(msg) {
			qp.retx.queue = append(qp.retx.queue, msg)
			return
		}
		qp.dev.net.Transmit(msg)
	})
}

// frozenBehindHole reports whether a pending go-back-N replay must absorb
// this message: RC data sends (droppable, i.e. retry-armed) queue behind the
// hole; infrastructure and UD traffic passes.
func (qp *QP) frozenBehindHole(msg *fabric.Message) bool {
	return qp.retx.armed && qp.cfg.Type == fabric.RC && msg.Dropped != nil
}

// pacedSend delays send() so the QP's flow respects its NIC TX engine's
// token bucket. On lossy DCQCN profiles every QP is paced — at line rate
// when uncut, at the limiter's rate after a CNP — which is what lets a
// mid-burst rate cut throttle the not-yet-released remainder of a posted
// burst, exactly as a hardware TX pipeline would. Lossless profiles (no
// DCQCN) transmit immediately with zero bookkeeping. A send still pending
// when the QP dies is discarded — its WR has already been flushed by the
// error path.
func (qp *QP) pacedSend(wire int, send func()) {
	d := qp.dev
	prof := d.prof()
	if !prof.Lossy || !prof.DCQCN {
		send()
		return
	}
	rate := prof.LinkBandwidth
	if rl := d.rl[qp.qpn]; rl != nil {
		rate = rl.rate
	}
	now := d.net.Sim.Now()
	start := qp.txNextFree
	if start < now {
		start = now
	}
	qp.txNextFree = start.Add(fabric.Serialize(wire, rate))
	if start <= now {
		send()
		return
	}
	d.net.Sim.At(start, func() {
		if qp.destroyed || qp.state == QPError {
			return
		}
		send()
	})
}
