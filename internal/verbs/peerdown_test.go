package verbs

import (
	"errors"
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
)

// TestNotifyPeerDownErrorsConnectedQPs delivers a connection-manager
// disconnect event for node 1: every connected RC QP toward that peer must
// move to the Error state with its in-flight sends completed as WCPeerDown
// and its posted receives flushed, while QPs toward other peers stay alive.
func TestNotifyPeerDownErrorsConnectedQPs(t *testing.T) {
	r := newRig(t, 3)
	qp01, qp10, cq0, _ := r.rcPair(0, 1)
	qp02, _, _, _ := r.rcPair(0, 2)
	_ = qp10
	var es []CQE
	r.sim.Spawn("victim", func(p *sim.Proc) {
		buf := make([]byte, 64)
		mr := r.devs[0].RegisterMRNoCost(buf)
		if err := qp01.PostRecv(p, RecvWR{ID: 7, MR: mr, Len: 64}); err != nil {
			t.Error(err)
			return
		}
		// The peer never answers; the disconnect event arrives first.
		if err := qp01.PostSend(p, SendWR{ID: 8, Op: OpSend, MR: mr, Len: 64}); err != nil {
			t.Error(err)
			return
		}
		var e [8]CQE
		for len(es) < 2 {
			es = append(es, e[:cq0.WaitPoll(p, e[:])]...)
		}
	})
	r.sim.Spawn("cm", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		r.devs[0].NotifyPeerDown(1)
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		switch e.WRID {
		case 8:
			if e.Status != WCPeerDown {
				t.Fatalf("send completion = %+v, want WCPeerDown", e)
			}
			if e.Err() == nil {
				t.Fatal("WCPeerDown completion should carry an error")
			}
		case 7:
			if e.Status != WCFlushErr || e.Op != OpRecv {
				t.Fatalf("recv completion = %+v, want flushed", e)
			}
		default:
			t.Fatalf("unexpected completion %+v", e)
		}
	}
	if qp01.State() != QPError {
		t.Fatalf("QP to the dead peer: state = %v, want QPError", qp01.State())
	}
	if qp02.State() == QPError {
		t.Fatal("QP to a healthy peer was torn down")
	}
	if !r.devs[0].PeerDown(1) || r.devs[0].PeerDown(2) {
		t.Fatal("PeerDown bookkeeping wrong")
	}
}

// TestPostToDeadPeerFailsFast posts to a peer already declared down: both
// PostSend and PostRecv must fail immediately with ErrPeerDown instead of
// letting work requests sink into a dead connection.
func TestPostToDeadPeerFailsFast(t *testing.T) {
	r := newRig(t, 2)
	qpa, _, _, _ := r.rcPair(0, 1)
	r.devs[0].NotifyPeerDown(1)
	r.sim.Spawn("post", func(p *sim.Proc) {
		buf := make([]byte, 64)
		mr := r.devs[0].RegisterMRNoCost(buf)
		if err := qpa.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: 64}); !errors.Is(err, ErrPeerDown) {
			t.Errorf("PostSend = %v, want ErrPeerDown", err)
		}
		if err := qpa.PostRecv(p, RecvWR{MR: mr, Len: 64}); !errors.Is(err, ErrPeerDown) {
			t.Errorf("PostRecv = %v, want ErrPeerDown", err)
		}
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestNotifyPeerDownHandlersAndIdempotence registers disconnect handlers
// and fires the event twice: handlers run once each, in registration order,
// and UD QPs (no peer binding) are untouched.
func TestNotifyPeerDownHandlersAndIdempotence(t *testing.T) {
	r := newRig(t, 2)
	cq := r.devs[0].CreateCQ(16)
	ud := r.devs[0].CreateQP(QPConfig{Type: fabric.UD, SendCQ: cq, RecvCQ: cq})
	var order []int
	r.devs[0].OnPeerDown(func(peer int) { order = append(order, 1) })
	r.devs[0].OnPeerDown(func(peer int) { order = append(order, 2) })
	r.devs[0].NotifyPeerDown(1)
	r.devs[0].NotifyPeerDown(1) // repeat disconnect event: no double teardown
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("handler order = %v, want [1 2] exactly once", order)
	}
	if ud.State() == QPError {
		t.Fatal("UD QP has no peer and must survive a peer-down event")
	}
}

// TestPeerDownCancelsPendingRetransmit races the per-QP retransmission
// timer against a connection-manager disconnect: a send is dropped by the
// fabric (arming the go-back-N timer), then the peer is declared down well
// before the local ACK timeout expires. The pending timer must be cancelled
// outright — the lost window discarded, the WR completed as WCPeerDown, and
// nothing retransmitted into the torn-down QP when the timeout would have
// fired.
func TestPeerDownCancelsPendingRetransmit(t *testing.T) {
	r := newRig(t, 2)
	// Drop exactly the first RC packet toward the peer.
	r.net.Faults().Add(fabric.FaultRule{
		Class: fabric.FaultRCLoss, From: 0, To: 1, Count: 1,
	})
	qpa, _, cqa, _ := r.rcPair(0, 1)
	retryDelay := r.net.Prof.TransportRetryDelay

	sink := make([]byte, 64)
	rmr := r.devs[1].RegisterMRNoCost(sink)
	var got CQE
	var txAfterTeardown int64
	r.sim.Spawn("race", func(p *sim.Proc) {
		buf := make([]byte, 64)
		mr := r.devs[0].RegisterMRNoCost(buf)
		if err := qpa.PostSend(p, SendWR{ID: 21, Op: OpWrite, MR: mr, Len: 64,
			RemoteKey: rmr.RKey}); err != nil {
			t.Error(err)
			return
		}
		// Let the drop land and arm the retransmission timer, then tear the
		// peer down long before the ACK timeout would fire.
		p.Sleep(50 * time.Microsecond)
		if !qpa.retx.armed || len(qpa.retx.queue) != 1 {
			t.Errorf("retx engine not armed before teardown: armed=%v queue=%d",
				qpa.retx.armed, len(qpa.retx.queue))
		}
		r.devs[0].NotifyPeerDown(1)
		if qpa.retx.armed || qpa.retx.queue != nil {
			t.Error("peer-down left the retransmission timer armed")
		}
		txAfterTeardown = r.net.Stats(0).TxMessages
		var es [1]CQE
		cqa.WaitPoll(p, es[:])
		got = es[0]
		// Outlive the original timer deadline: a stale firing must not
		// replay the lost window.
		p.Sleep(2 * retryDelay)
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Status != WCPeerDown || got.WRID != 21 {
		t.Fatalf("completion = %+v, want WCPeerDown for WRID 21", got)
	}
	if tx := r.net.Stats(0).TxMessages; tx != txAfterTeardown {
		t.Fatalf("node 0 transmitted %d messages after teardown (was %d): stale retransmit fired",
			tx, txAfterTeardown)
	}
	if qpa.State() != QPError {
		t.Fatalf("QP state = %v, want QPError", qpa.State())
	}
}
