package verbs

import (
	"errors"
	"fmt"
	"time"

	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// ErrReconnectFailed reports that the connection manager exhausted its
// reconnect budget without both directions of the link becoming reachable.
var ErrReconnectFailed = errors.New("verbs: reconnect attempts exhausted")

// ReconnectPolicy bounds the connection manager's re-establishment loop
// after a peer-down event: each attempt probes the link with a control
// round-trip and, on failure, backs off exponentially from BaseBackoff up
// to MaxBackoff before the next probe.
type ReconnectPolicy struct {
	// MaxAttempts caps the number of probes (default 8).
	MaxAttempts int
	// BaseBackoff is the sleep after the first failed probe (default 50µs);
	// it doubles per failure up to MaxBackoff (default 1ms).
	BaseBackoff sim.Duration
	MaxBackoff  sim.Duration
}

// Defaulted returns the policy with zero fields replaced by defaults.
func (pol ReconnectPolicy) Defaulted() ReconnectPolicy {
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = 8
	}
	if pol.BaseBackoff <= 0 {
		pol.BaseBackoff = 50 * time.Microsecond
	}
	if pol.MaxBackoff <= 0 {
		pol.MaxBackoff = time.Millisecond
	}
	return pol
}

// ReconnectRCPair re-establishes a reliable connection between devices a
// and b after a peer-down event. Each attempt charges the calling process
// one out-of-band control round-trip to probe the link; if either direction
// is unreachable (node down or link cut) the loop backs off exponentially
// and retries, up to pol.MaxAttempts. On success it clears the peer-down
// verdict on both devices, creates a fresh QP pair, connects it (capturing
// the peers' current boot epochs, so the new pair is fenced against any
// future reboot), and charges the per-QP connection setup cost.
//
// The old, broken QPs are not touched: their pending completions flush with
// WCPeerDown/WCFenced as usual, and the caller destroys them when drained.
func ReconnectRCPair(p *sim.Proc, a, b *Device, cfgA, cfgB QPConfig, pol ReconnectPolicy) (*QP, *QP, error) {
	if a.net != b.net {
		panic("verbs: ReconnectRCPair across networks")
	}
	pol = pol.Defaulted()
	net := a.net
	prof := net.Prof
	probeRTT := 2 * (prof.PropagationDelay + prof.SwitchDelay)
	backoff := pol.BaseBackoff
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		// Out-of-band probe: one control round-trip on the management lane.
		p.Sleep(probeRTT)
		now := net.Sim.Now()
		if net.Reachable(a.node, b.node, now) && net.Reachable(b.node, a.node, now) {
			a.NotifyPeerUp(b.node)
			b.NotifyPeerUp(a.node)
			qa := a.CreateQP(cfgA)
			qb := b.CreateQP(cfgB)
			if err := qa.Connect(b.node, qb.qpn); err != nil {
				panic(fmt.Sprintf("verbs: reconnect connect: %v", err))
			}
			if err := qb.Connect(a.node, qa.qpn); err != nil {
				panic(fmt.Sprintf("verbs: reconnect connect: %v", err))
			}
			p.Sleep(2 * prof.ConnSetupPerQP)
			a.stats.Reconnects++
			b.stats.Reconnects++
			at := net.Sim.Now()
			a.tr().Instant(at, telemetry.EvReconnect, int32(a.node), qa.cacheKey(), int64(b.node), int64(attempt))
			b.tr().Instant(at, telemetry.EvReconnect, int32(b.node), qb.cacheKey(), int64(a.node), int64(attempt))
			return qa, qb, nil
		}
		if attempt < pol.MaxAttempts {
			p.Sleep(backoff)
			backoff *= 2
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
	}
	return nil, nil, ErrReconnectFailed
}
