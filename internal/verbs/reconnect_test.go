package verbs

import (
	"bytes"
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
)

// TestStaleEpochWriteFenced pins the epoch fence: an RDMA Write posted on a
// QP connected before the responder rebooted must be rejected at the
// responder — the memory stays untouched, the stale_fenced counter rises,
// and the writer's QP breaks with WCFenced rather than WCSuccess.
func TestStaleEpochWriteFenced(t *testing.T) {
	r := newRig(t, 2)
	qpa, _, cqa, _ := r.rcPair(0, 1)

	remote := make([]byte, 64)
	rmr := r.devs[1].RegisterMRNoCost(remote)

	var got CQE
	r.sim.Spawn("writer", func(p *sim.Proc) {
		// The responder reboots after the connection exchange: its memory is
		// wiped and its boot epoch advances past the one qpa captured.
		r.devs[1].BumpEpoch()
		local := []byte("stale epoch payload bits")
		lmr := r.devs[0].RegisterMRNoCost(local)
		err := qpa.PostSend(p, SendWR{ID: 9, Op: OpWrite, MR: lmr, Len: len(local),
			RemoteKey: rmr.RKey, RemoteOffset: 0})
		if err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		cqa.WaitPoll(p, es[:])
		got = es[0]
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Status != WCFenced {
		t.Fatalf("writer completion = %v, want WCFenced", got.Status)
	}
	if !bytes.Equal(remote, make([]byte, 64)) {
		t.Fatalf("responder memory modified by stale-epoch write: %q", remote)
	}
	if n := r.devs[1].Stats().StaleFenced; n != 1 {
		t.Fatalf("responder stale_fenced = %d, want 1", n)
	}
	if qpa.State() != QPError {
		t.Fatalf("stale writer QP state = %v, want QPError", qpa.State())
	}
}

// TestStaleEpochSendAndReadFenced covers the two other responder paths:
// an RC Send and an RDMA Read from a stale-epoch QP are both fenced.
func TestStaleEpochSendAndReadFenced(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   Opcode
	}{{"send", OpSend}, {"read", OpRead}} {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 2)
			qpa, qpb, cqa, _ := r.rcPair(0, 1)

			remote := make([]byte, 64)
			rmr := r.devs[1].RegisterMRNoCost(remote)

			var got CQE
			r.sim.Spawn("responder", func(p *sim.Proc) {
				if tc.op == OpSend {
					buf := make([]byte, 64)
					mr := r.devs[1].RegisterMRNoCost(buf)
					// The receive may never complete; post and walk away.
					_ = qpb.PostRecv(p, RecvWR{ID: 1, MR: mr, Len: 64})
				}
			})
			r.sim.Spawn("requester", func(p *sim.Proc) {
				p.Sleep(time.Microsecond)
				r.devs[1].BumpEpoch()
				local := make([]byte, 32)
				lmr := r.devs[0].RegisterMRNoCost(local)
				wr := SendWR{ID: 5, Op: tc.op, MR: lmr, Len: 32}
				if tc.op == OpRead {
					wr.RemoteKey = rmr.RKey
				}
				if err := qpa.PostSend(p, wr); err != nil {
					t.Error(err)
					return
				}
				var es [1]CQE
				cqa.WaitPoll(p, es[:])
				got = es[0]
			})
			if err := r.sim.Run(); err != nil {
				t.Fatal(err)
			}
			if got.Status != WCFenced {
				t.Fatalf("completion = %v, want WCFenced", got.Status)
			}
			if n := r.devs[1].Stats().StaleFenced; n != 1 {
				t.Fatalf("stale_fenced = %d, want 1", n)
			}
		})
	}
}

// TestReconnectRCPairAfterReboot exercises the connection-manager loop: a
// peer goes dark for a bounded reboot window, the CM retries with backoff
// until the port is back, and the fresh QP pair carries the new epoch so
// traffic flows again.
func TestReconnectRCPairAfterReboot(t *testing.T) {
	r := newRig(t, 2)
	r.net.Faults().Add(fabric.FaultRule{Class: fabric.FaultReboot, To: 1,
		Start: sim.Time(0).Add(5 * time.Microsecond), End: sim.Time(0).Add(200 * time.Microsecond)})
	qpa, _, _, _ := r.rcPair(0, 1)

	var newA, newB *QP
	var reconnectErr error
	r.sim.Spawn("cm", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond) // inside the reboot window
		r.devs[0].NotifyPeerDown(1)
		cq := r.devs[0].CreateCQ(64)
		cqb := r.devs[1].CreateCQ(64)
		newA, newB, reconnectErr = ReconnectRCPair(p,
			r.devs[0], r.devs[1],
			QPConfig{Type: fabric.RC, SendCQ: cq, RecvCQ: cq},
			QPConfig{Type: fabric.RC, SendCQ: cqb, RecvCQ: cqb},
			ReconnectPolicy{MaxAttempts: 16, BaseBackoff: 20 * time.Microsecond})
		if reconnectErr != nil {
			return
		}
		// The new pair is live and fenced at the post-reboot epoch.
		buf := []byte("post-reboot hello")
		mr := r.devs[0].RegisterMRNoCost(buf)
		rbuf := make([]byte, 64)
		rmr := r.devs[1].RegisterMRNoCost(rbuf)
		if err := newB.PostRecv(p, RecvWR{ID: 1, MR: rmr, Len: 64}); err != nil {
			t.Error(err)
			return
		}
		if err := newA.PostSend(p, SendWR{ID: 2, Op: OpSend, MR: mr, Len: len(buf)}); err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		newA.cfg.SendCQ.WaitPoll(p, es[:])
		if es[0].Status != WCSuccess {
			t.Errorf("post-reconnect send status = %v", es[0].Status)
		}
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if reconnectErr != nil {
		t.Fatalf("reconnect failed: %v", reconnectErr)
	}
	if r.devs[0].PeerDown(1) {
		t.Fatal("peer 1 still marked down after reconnect")
	}
	if r.devs[0].Stats().Reconnects != 1 || r.devs[1].Stats().Reconnects != 1 {
		t.Fatalf("reconnect counters = %d/%d, want 1/1",
			r.devs[0].Stats().Reconnects, r.devs[1].Stats().Reconnects)
	}
	// The new pair captured the post-reboot epoch, not the stale one.
	if newA.PeerEpoch() != r.devs[1].Epoch() {
		t.Fatalf("new QP peer epoch = %d, responder epoch = %d", newA.PeerEpoch(), r.devs[1].Epoch())
	}
	// The pre-reboot QP is stale by construction once the epoch advances.
	if qpa.PeerEpoch() == r.devs[1].Epoch() && r.devs[1].Epoch() > 1 {
		t.Fatal("stale QP should not match the post-reboot epoch")
	}
}

// TestReconnectRCPairExhausted pins the bounded-failure contract: while the
// peer never becomes reachable the loop must stop after MaxAttempts with
// ErrReconnectFailed, not spin forever.
func TestReconnectRCPairExhausted(t *testing.T) {
	r := newRig(t, 2)
	r.net.Faults().Add(fabric.FaultRule{Class: fabric.FaultCrash, To: 1,
		Start: sim.Time(0).Add(time.Microsecond)})
	var err error
	r.sim.Spawn("cm", func(p *sim.Proc) {
		p.Sleep(5 * time.Microsecond)
		r.devs[0].NotifyPeerDown(1)
		cq := r.devs[0].CreateCQ(8)
		cqb := r.devs[1].CreateCQ(8)
		_, _, err = ReconnectRCPair(p, r.devs[0], r.devs[1],
			QPConfig{Type: fabric.RC, SendCQ: cq, RecvCQ: cq},
			QPConfig{Type: fabric.RC, SendCQ: cqb, RecvCQ: cqb},
			ReconnectPolicy{MaxAttempts: 4})
	})
	if e := r.sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != ErrReconnectFailed {
		t.Fatalf("err = %v, want ErrReconnectFailed", err)
	}
	if r.devs[0].PeerDown(1) != true {
		t.Fatal("peer should remain down after exhausted reconnect")
	}
}
