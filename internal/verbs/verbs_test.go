package verbs

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
)

// testRig wires a quiet two-node (or n-node) fabric with verbs devices.
type testRig struct {
	sim  *sim.Simulation
	net  *fabric.Network
	devs []*Device
}

func newRig(t testing.TB, nodes int, mutate ...func(*fabric.Profile)) *testRig {
	t.Helper()
	p := fabric.EDR()
	p.UDReorderProb = 0
	p.UDLossRate = 0
	for _, m := range mutate {
		m(&p)
	}
	s := sim.New(1)
	net := fabric.New(s, p, nodes)
	return &testRig{sim: s, net: net, devs: OpenAll(net)}
}

// rcPair creates a connected RC QP pair between nodes a and b and returns
// (qpA, qpB, cqA, cqB) where each cq serves both send and recv.
func (r *testRig) rcPair(a, b int) (*QP, *QP, *CQ, *CQ) {
	cqa := r.devs[a].CreateCQ(4096)
	cqb := r.devs[b].CreateCQ(4096)
	qpa := r.devs[a].CreateQP(QPConfig{Type: fabric.RC, SendCQ: cqa, RecvCQ: cqa})
	qpb := r.devs[b].CreateQP(QPConfig{Type: fabric.RC, SendCQ: cqb, RecvCQ: cqb})
	if err := qpa.Connect(b, qpb.QPN()); err != nil {
		panic(err)
	}
	if err := qpb.Connect(a, qpa.QPN()); err != nil {
		panic(err)
	}
	return qpa, qpb, cqa, cqb
}

func TestRCSendRecvRoundtrip(t *testing.T) {
	r := newRig(t, 2)
	qpa, qpb, cqa, cqb := r.rcPair(0, 1)
	var got []byte
	var recvCQE, sendCQE CQE

	r.sim.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 128)
		mr := r.devs[1].RegisterMRNoCost(buf)
		if err := qpb.PostRecv(p, RecvWR{ID: 7, MR: mr, Len: 128}); err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		cqb.WaitPoll(p, es[:])
		recvCQE = es[0]
		got = append([]byte(nil), buf[:es[0].Bytes]...)
	})
	r.sim.Spawn("send", func(p *sim.Proc) {
		p.Sleep(time.Microsecond) // let the receive get posted
		buf := []byte("hello rdma world")
		mr := r.devs[0].RegisterMRNoCost(buf)
		err := qpa.PostSend(p, SendWR{ID: 3, Op: OpSend, MR: mr, Len: len(buf), Imm: 42, HasImm: true})
		if err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		cqa.WaitPoll(p, es[:])
		sendCQE = es[0]
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello rdma world" {
		t.Fatalf("payload = %q", got)
	}
	if recvCQE.Op != OpRecv || recvCQE.WRID != 7 || recvCQE.Bytes != 16 {
		t.Fatalf("recv CQE = %+v", recvCQE)
	}
	if !recvCQE.HasImm || recvCQE.Imm != 42 {
		t.Fatalf("immediate lost: %+v", recvCQE)
	}
	if recvCQE.SrcNode != 0 || recvCQE.SrcQPN != qpa.QPN() {
		t.Fatalf("source identity wrong: %+v", recvCQE)
	}
	if sendCQE.Op != OpSend || sendCQE.WRID != 3 {
		t.Fatalf("send CQE = %+v", sendCQE)
	}
	if qpa.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after completion", qpa.Outstanding())
	}
}

func TestRCRNRRetryWhenRecvPostedLate(t *testing.T) {
	r := newRig(t, 2)
	qpa, qpb, cqa, cqb := r.rcPair(0, 1)
	delivered := false
	r.sim.Spawn("send", func(p *sim.Proc) {
		buf := make([]byte, 64)
		mr := r.devs[0].RegisterMRNoCost(buf)
		if err := qpa.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: 64}); err != nil {
			t.Error(err)
		}
		var es [1]CQE
		cqa.WaitPoll(p, es[:])
	})
	r.sim.Spawn("recv", func(p *sim.Proc) {
		// Post the receive well after the send has arrived and NAKed.
		p.Sleep(100 * time.Microsecond)
		buf := make([]byte, 64)
		mr := r.devs[1].RegisterMRNoCost(buf)
		if err := qpb.PostRecv(p, RecvWR{MR: mr, Len: 64}); err != nil {
			t.Error(err)
		}
		var es [1]CQE
		cqb.WaitPoll(p, es[:])
		delivered = true
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("send never delivered after RNR retries")
	}
	if r.devs[0].Stats().RNRRetries == 0 {
		t.Fatal("expected RNR retries to be counted")
	}
}

func TestUDSendCompletesBeforeDelivery(t *testing.T) {
	r := newRig(t, 2)
	cq0 := r.devs[0].CreateCQ(64)
	cq1 := r.devs[1].CreateCQ(64)
	ud0 := r.devs[0].CreateQP(QPConfig{Type: fabric.UD, SendCQ: cq0, RecvCQ: cq0})
	ud1 := r.devs[1].CreateQP(QPConfig{Type: fabric.UD, SendCQ: cq1, RecvCQ: cq1})

	var sendDone, recvDone sim.Time
	var rcqe CQE
	var payload []byte
	r.sim.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 4096+GRHSize)
		mr := r.devs[1].RegisterMRNoCost(buf)
		if err := ud1.PostRecv(p, RecvWR{ID: 9, MR: mr, Len: len(buf)}); err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		cq1.WaitPoll(p, es[:])
		rcqe = es[0]
		recvDone = p.Now()
		payload = append([]byte(nil), buf[GRHSize:es[0].Bytes]...)
	})
	r.sim.Spawn("send", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		msg := bytes.Repeat([]byte{0xAB}, 4096)
		mr := r.devs[0].RegisterMRNoCost(msg)
		err := ud0.PostSend(p, SendWR{ID: 5, Op: OpSend, MR: mr, Len: 4096,
			Dest: AH{Node: 1, QPN: ud1.QPN()}})
		if err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		cq0.WaitPoll(p, es[:])
		sendDone = p.Now()
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone >= recvDone {
		t.Fatalf("UD send completion at %v should precede delivery at %v", sendDone, recvDone)
	}
	if rcqe.Bytes != 4096+GRHSize {
		t.Fatalf("UD recv bytes = %d, want %d", rcqe.Bytes, 4096+GRHSize)
	}
	if rcqe.SrcNode != 0 || rcqe.SrcQPN != ud0.QPN() {
		t.Fatalf("UD source identity wrong: %+v", rcqe)
	}
	for _, b := range payload {
		if b != 0xAB {
			t.Fatal("UD payload corrupted")
		}
	}
}

func TestUDDropWithoutRecv(t *testing.T) {
	r := newRig(t, 2)
	cq0 := r.devs[0].CreateCQ(64)
	cq1 := r.devs[1].CreateCQ(64)
	ud0 := r.devs[0].CreateQP(QPConfig{Type: fabric.UD, SendCQ: cq0, RecvCQ: cq0})
	ud1 := r.devs[1].CreateQP(QPConfig{Type: fabric.UD, SendCQ: cq1, RecvCQ: cq1})
	r.sim.Spawn("send", func(p *sim.Proc) {
		buf := make([]byte, 512)
		mr := r.devs[0].RegisterMRNoCost(buf)
		if err := ud0.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: 512,
			Dest: AH{Node: 1, QPN: ud1.QPN()}}); err != nil {
			t.Error(err)
		}
		var es [1]CQE
		cq0.WaitPoll(p, es[:]) // local send completion still arrives
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if r.devs[1].Stats().UDNoRecvDrops != 1 {
		t.Fatalf("UDNoRecvDrops = %d, want 1", r.devs[1].Stats().UDNoRecvDrops)
	}
	if cq1.Len() != 0 {
		t.Fatal("receiver CQ should be empty after drop")
	}
}

func TestPostErrors(t *testing.T) {
	r := newRig(t, 2)
	cq0 := r.devs[0].CreateCQ(64)
	ud := r.devs[0].CreateQP(QPConfig{Type: fabric.UD, SendCQ: cq0, RecvCQ: cq0})
	rc := r.devs[0].CreateQP(QPConfig{Type: fabric.RC, SendCQ: cq0, RecvCQ: cq0, MaxSend: 1, MaxRecv: 1})
	r.sim.Spawn("t", func(p *sim.Proc) {
		big := make([]byte, 8192)
		mr := r.devs[0].RegisterMRNoCost(big)

		if err := ud.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: 8192, Dest: AH{Node: 1}}); err != ErrTooLong {
			t.Errorf("UD oversize: err = %v, want ErrTooLong", err)
		}
		if err := ud.PostSend(p, SendWR{Op: OpRead, MR: mr, Len: 64}); err != ErrBadOp {
			t.Errorf("UD read: err = %v, want ErrBadOp", err)
		}
		if err := rc.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: 64}); err != ErrNotConnected {
			t.Errorf("unconnected RC: err = %v, want ErrNotConnected", err)
		}
		if err := rc.PostSend(p, SendWR{Op: OpSend, MR: mr, Offset: 8000, Len: 500}); err != ErrOutOfRange {
			t.Errorf("out of range: err = %v, want ErrOutOfRange", err)
		}
		if err := ud.PostRecv(p, RecvWR{MR: mr, Len: GRHSize}); err != ErrTooLong {
			t.Errorf("UD tiny recv: err = %v, want ErrTooLong", err)
		}
		if err := rc.PostRecv(p, RecvWR{MR: mr, Len: 64}); err != nil {
			t.Errorf("first recv: %v", err)
		}
		if err := rc.PostRecv(p, RecvWR{MR: mr, Len: 64}); err != ErrRQFull {
			t.Errorf("RQ overflow: err = %v, want ErrRQFull", err)
		}
		if err := ud.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: 500, Inline: true, Dest: AH{Node: 1}}); err != ErrTooLong {
			t.Errorf("oversize inline: err = %v, want ErrTooLong", err)
		}
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSQDepthLimit(t *testing.T) {
	r := newRig(t, 2)
	cqa := r.devs[0].CreateCQ(64)
	cqb := r.devs[1].CreateCQ(64)
	qpa := r.devs[0].CreateQP(QPConfig{Type: fabric.RC, SendCQ: cqa, RecvCQ: cqa, MaxSend: 2})
	qpb := r.devs[1].CreateQP(QPConfig{Type: fabric.RC, SendCQ: cqb, RecvCQ: cqb})
	qpa.Connect(1, qpb.QPN())
	qpb.Connect(0, qpa.QPN())
	r.sim.Spawn("send", func(p *sim.Proc) {
		buf := make([]byte, 64)
		mr := r.devs[0].RegisterMRNoCost(buf)
		wr := SendWR{Op: OpSend, MR: mr, Len: 64}
		if err := qpa.PostSend(p, wr); err != nil {
			t.Error(err)
		}
		if err := qpa.PostSend(p, wr); err != nil {
			t.Error(err)
		}
		if err := qpa.PostSend(p, wr); err != ErrSQFull {
			t.Errorf("third post: err = %v, want ErrSQFull", err)
		}
	})
	r.sim.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 256)
		mr := r.devs[1].RegisterMRNoCost(buf)
		for i := 0; i < 2; i++ {
			if err := qpb.PostRecv(p, RecvWR{MR: mr, Offset: i * 64, Len: 64}); err != nil {
				t.Error(err)
			}
		}
		var es [2]CQE
		for n := 0; n < 2; {
			n += cqb.WaitPoll(p, es[:])
		}
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRDMAWriteUpdatesRemoteMemory(t *testing.T) {
	r := newRig(t, 2)
	qpa, _, cqa, _ := r.rcPair(0, 1)
	remote := make([]byte, 256)
	rmr := r.devs[1].RegisterMRNoCost(remote)

	woken := false
	r.sim.Spawn("poller", func(p *sim.Proc) {
		if !r.devs[1].WaitMemChange(p, time.Second) {
			t.Error("WaitMemChange timed out")
			return
		}
		woken = true
		if ReadUint64(remote[16:]) != 0xDEADBEEF {
			t.Errorf("remote word = %#x", ReadUint64(remote[16:]))
		}
	})
	r.sim.Spawn("writer", func(p *sim.Proc) {
		local := make([]byte, 8)
		PutUint64(local, 0xDEADBEEF)
		lmr := r.devs[0].RegisterMRNoCost(local)
		err := qpa.PostSend(p, SendWR{Op: OpWrite, MR: lmr, Len: 8,
			RemoteKey: rmr.RKey, RemoteOffset: 16})
		if err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		cqa.WaitPoll(p, es[:])
		if es[0].Op != OpWrite {
			t.Errorf("completion op = %v, want WRITE", es[0].Op)
		}
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("memory-change waiter never woke")
	}
	if r.devs[1].Stats().RemoteWrites != 1 {
		t.Fatalf("RemoteWrites = %d, want 1", r.devs[1].Stats().RemoteWrites)
	}
}

func TestRDMAReadPullsRemoteMemory(t *testing.T) {
	r := newRig(t, 2)
	qpa, _, cqa, _ := r.rcPair(0, 1)
	remote := bytes.Repeat([]byte{0x5C}, 65536)
	rmr := r.devs[1].RegisterMRNoCost(remote)
	local := make([]byte, 65536)
	lmr := r.devs[0].RegisterMRNoCost(local)

	r.sim.Spawn("reader", func(p *sim.Proc) {
		err := qpa.PostSend(p, SendWR{ID: 11, Op: OpRead, MR: lmr, Len: 65536,
			RemoteKey: rmr.RKey, RemoteOffset: 0})
		if err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		cqa.WaitPoll(p, es[:])
		if es[0].Op != OpRead || es[0].WRID != 11 || es[0].Bytes != 65536 {
			t.Errorf("read CQE = %+v", es[0])
		}
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, remote) {
		t.Fatal("read data does not match remote memory")
	}
	if r.devs[1].Stats().Posts != 0 {
		t.Fatal("one-sided read must not involve the remote CPU")
	}
}

func TestSharedQPPostContention(t *testing.T) {
	// Two procs posting back-to-back on one QP must serialize on the QP
	// lock: total elapsed CPU time is at least 2 posts in sequence.
	r := newRig(t, 2)
	qpa, qpb, _, cqb := r.rcPair(0, 1)
	_ = cqb
	post := r.net.Prof.PostCost
	buf := make([]byte, 64)
	mr := r.devs[0].RegisterMRNoCost(buf)
	rbuf := make([]byte, 4096)
	rmr := r.devs[1].RegisterMRNoCost(rbuf)
	var t1, t2 sim.Time
	r.sim.Spawn("prep", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			qpb.PostRecv(p, RecvWR{MR: rmr, Offset: i * 64, Len: 64})
		}
	})
	for i := 0; i < 2; i++ {
		i := i
		r.sim.Spawn("poster", func(p *sim.Proc) {
			p.Sleep(time.Microsecond) // after prep
			if err := qpa.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: 64}); err != nil {
				t.Error(err)
			}
			if i == 0 {
				t1 = p.Now()
			} else {
				t2 = p.Now()
			}
		})
	}
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	gap := t2 - t1
	if gap < 0 {
		gap = -gap
	}
	if sim.Duration(gap) < post {
		t.Fatalf("posts completed %v apart; want at least one PostCost (%v) of serialization", gap, post)
	}
}

func TestMRAccounting(t *testing.T) {
	r := newRig(t, 1)
	d := r.devs[0]
	r.sim.Spawn("mem", func(p *sim.Proc) {
		a := d.RegisterMR(p, make([]byte, 1000))
		b := d.RegisterMR(p, make([]byte, 500))
		if d.RegisteredBytes() != 1500 {
			t.Errorf("registered = %d, want 1500", d.RegisteredBytes())
		}
		a.Deregister(p)
		if d.RegisteredBytes() != 500 {
			t.Errorf("registered = %d, want 500", d.RegisteredBytes())
		}
		if d.PeakRegisteredBytes() != 1500 {
			t.Errorf("peak = %d, want 1500", d.PeakRegisteredBytes())
		}
		b.Deregister(p)
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCQOverrunPanics(t *testing.T) {
	r := newRig(t, 1)
	cq := r.devs[0].CreateCQ(1)
	defer func() {
		if recover() == nil {
			t.Fatal("CQ overrun did not panic")
		}
	}()
	cq.push(CQE{})
	cq.push(CQE{})
}

func TestWaitPollTimeout(t *testing.T) {
	r := newRig(t, 1)
	cq := r.devs[0].CreateCQ(16)
	var n int
	var at sim.Time
	r.sim.Spawn("poller", func(p *sim.Proc) {
		var es [1]CQE
		n = cq.WaitPollTimeout(p, es[:], 50*time.Microsecond)
		at = p.Now()
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("poll returned %d entries on empty CQ", n)
	}
	if at != sim.Time(50*time.Microsecond) {
		t.Fatalf("timed out at %v, want 50µs", at)
	}
}

// Property: any sequence of RC sends arrives intact and in order.
func TestRCStreamIntegrityProperty(t *testing.T) {
	f := func(lens []uint8) bool {
		if len(lens) == 0 || len(lens) > 60 {
			return true
		}
		r := newRig(t, 2)
		qpa, qpb, cqa, cqb := r.rcPair(0, 1)
		sent := make([][]byte, len(lens))
		var got [][]byte
		r.sim.Spawn("recv", func(p *sim.Proc) {
			buf := make([]byte, 512)
			mr := r.devs[1].RegisterMRNoCost(buf)
			for range lens {
				if err := qpb.PostRecv(p, RecvWR{MR: mr, Len: 512}); err != nil {
					t.Error(err)
					return
				}
				var es [1]CQE
				cqb.WaitPoll(p, es[:])
				got = append(got, append([]byte(nil), buf[:es[0].Bytes]...))
			}
		})
		r.sim.Spawn("send", func(p *sim.Proc) {
			for i, l := range lens {
				n := int(l) + 1
				msg := make([]byte, n)
				for j := range msg {
					msg[j] = byte(i ^ j)
				}
				sent[i] = msg
				mr := r.devs[0].RegisterMRNoCost(msg)
				for {
					err := qpa.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: n})
					if err == nil {
						break
					}
					if err == ErrSQFull {
						var es [8]CQE
						cqa.WaitPoll(p, es[:])
						continue
					}
					t.Error(err)
					return
				}
			}
		})
		if err := r.sim.Run(); err != nil {
			t.Error(err)
			return false
		}
		if len(got) != len(sent) {
			return false
		}
		for i := range sent {
			if !bytes.Equal(got[i], sent[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRCSendRecv4K(b *testing.B) {
	r := newRig(b, 2)
	qpa, qpb, cqa, cqb := r.rcPair(0, 1)
	const depth = 64
	r.sim.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, depth*4096)
		mr := r.devs[1].RegisterMRNoCost(buf)
		for i := 0; i < depth; i++ {
			qpb.PostRecv(p, RecvWR{MR: mr, Offset: i * 4096, Len: 4096})
		}
		var es [16]CQE
		for seen := 0; seen < b.N; {
			n := cqb.WaitPoll(p, es[:])
			seen += n
			for i := 0; i < n; i++ {
				qpb.PostRecv(p, RecvWR{MR: mr, Len: 4096})
			}
		}
	})
	r.sim.Spawn("send", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		mr := r.devs[0].RegisterMRNoCost(buf)
		var es [16]CQE
		for i := 0; i < b.N; {
			err := qpa.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: 4096})
			switch err {
			case nil:
				i++
			case ErrSQFull:
				cqa.WaitPoll(p, es[:])
			default:
				b.Error(err)
				return
			}
		}
		for qpa.Outstanding() > 0 {
			cqa.WaitPoll(p, es[:])
		}
	})
	b.ResetTimer()
	if err := r.sim.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestMulticastDeliversToAllMembers(t *testing.T) {
	r := newRig(t, 4)
	const mgid = 7
	type member struct {
		qp  *QP
		cq  *CQ
		buf []byte
	}
	members := make([]member, 3) // nodes 1..3 join; node 0 sends
	for i := range members {
		node := i + 1
		cq := r.devs[node].CreateCQ(16)
		qp := r.devs[node].CreateQP(QPConfig{Type: fabric.UD, SendCQ: cq, RecvCQ: cq})
		if err := r.devs[node].AttachMulticast(qp, mgid); err != nil {
			t.Fatal(err)
		}
		members[i] = member{qp: qp, cq: cq, buf: make([]byte, GRHSize+4096)}
	}
	scq := r.devs[0].CreateCQ(16)
	sqp := r.devs[0].CreateQP(QPConfig{Type: fabric.UD, SendCQ: scq, RecvCQ: scq})

	got := make([]string, 3)
	for i := range members {
		i := i
		r.sim.Spawn("recv", func(p *sim.Proc) {
			m := members[i]
			mr := r.devs[i+1].RegisterMRNoCost(m.buf)
			if err := m.qp.PostRecv(p, RecvWR{MR: mr, Len: len(m.buf)}); err != nil {
				t.Error(err)
				return
			}
			var es [1]CQE
			m.cq.WaitPoll(p, es[:])
			got[i] = string(m.buf[GRHSize : GRHSize+es[0].Bytes-GRHSize])
			if es[0].SrcNode != 0 {
				t.Errorf("member %d: src node %d", i, es[0].SrcNode)
			}
		})
	}
	r.sim.Spawn("send", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		msg := []byte("multicast payload")
		mr := r.devs[0].RegisterMRNoCost(msg)
		err := sqp.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: len(msg),
			Dest: AH{Multicast: true, MGID: mgid}})
		if err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		scq.WaitPoll(p, es[:]) // exactly one completion for the group send
		if sqp.Outstanding() != 0 {
			t.Error("multicast send should consume one SQ slot")
		}
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != "multicast payload" {
			t.Fatalf("member %d got %q", i, g)
		}
	}
	// One uplink transmission at the sender regardless of group size.
	if tx := r.net.Stats(0).TxMessages; tx != 1 {
		t.Fatalf("sender transmitted %d messages, want 1", tx)
	}
}

func TestMulticastDetach(t *testing.T) {
	r := newRig(t, 2)
	cq := r.devs[1].CreateCQ(16)
	qp := r.devs[1].CreateQP(QPConfig{Type: fabric.UD, SendCQ: cq, RecvCQ: cq})
	if err := r.devs[1].AttachMulticast(qp, 9); err != nil {
		t.Fatal(err)
	}
	r.devs[1].DetachMulticast(qp, 9)

	scq := r.devs[0].CreateCQ(16)
	sqp := r.devs[0].CreateQP(QPConfig{Type: fabric.UD, SendCQ: scq, RecvCQ: scq})
	r.sim.Spawn("send", func(p *sim.Proc) {
		buf := make([]byte, 64)
		mr := r.devs[0].RegisterMRNoCost(buf)
		if err := sqp.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: 64,
			Dest: AH{Multicast: true, MGID: 9}}); err != nil {
			t.Error(err)
		}
		var es [1]CQE
		scq.WaitPoll(p, es[:])
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if cq.Len() != 0 {
		t.Fatal("detached member still received the datagram")
	}
}

func TestAttachMulticastRejectsRC(t *testing.T) {
	r := newRig(t, 2)
	cq := r.devs[0].CreateCQ(4)
	rc := r.devs[0].CreateQP(QPConfig{Type: fabric.RC, SendCQ: cq, RecvCQ: cq})
	if err := r.devs[0].AttachMulticast(rc, 1); err != ErrBadOp {
		t.Fatalf("err = %v, want ErrBadOp", err)
	}
}

func TestUDRejectedOnIWARP(t *testing.T) {
	r := newRig(t, 1, func(p *fabric.Profile) { p.SupportsUD = false; p.Name = "iWARP" })
	cq := r.devs[0].CreateCQ(4)
	defer func() {
		if recover() == nil {
			t.Fatal("UD QP on a UD-less transport must panic")
		}
	}()
	r.devs[0].CreateQP(QPConfig{Type: fabric.UD, SendCQ: cq, RecvCQ: cq})
}
