package verbs

import (
	"testing"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// rocev2 swaps the rig's profile for the lossy RoCEv2 tier with the
// simulation's own randomness disabled, so tests see only deterministic
// congestion behaviour.
func rocev2(p *fabric.Profile) {
	*p = fabric.RoCEv2Lossy()
	p.UDReorderProb = 0
	p.UDLossRate = 0
}

// TestECNCNPRateCutRoundTrip drives a paced 3-into-1 RDMA-write incast under
// RoCEv2Lossy and follows one congestion signal end to end in virtual time:
// the congested egress marks an admitted packet (ECN), the receiver NIC
// answers with a CNP no earlier than the mark, and the sender NIC cuts its
// per-QP rate no earlier than one propagation delay after the CNP flew back.
// Every write must still complete successfully.
func TestECNCNPRateCutRoundTrip(t *testing.T) {
	r := newRig(t, 4, rocev2)
	tr := telemetry.NewTracer(1 << 16)
	r.net.SetTracer(tr)
	prof := r.net.Prof

	const perSender = 40
	const payload = 16 << 10
	wire := prof.WireBytes(payload, fabric.RC)
	gap := fabric.Serialize(wire, prof.LinkBandwidth) * 5 / 4 // 0.8x line rate each

	sink := make([]byte, payload)
	rmr := r.devs[3].RegisterMRNoCost(sink)
	completed := 0
	for src := 0; src < 3; src++ {
		qp, _, cq, _ := r.rcPair(src, 3)
		dev := r.devs[src]
		r.sim.Spawn("writer", func(p *sim.Proc) {
			buf := make([]byte, payload)
			mr := dev.RegisterMRNoCost(buf)
			for i := 0; i < perSender; i++ {
				err := qp.PostSend(p, SendWR{ID: uint64(i), Op: OpWrite, MR: mr,
					Len: payload, RemoteKey: rmr.RKey})
				if err != nil {
					t.Error(err)
					return
				}
				p.Sleep(gap)
			}
			var es [8]CQE
			for done := 0; done < perSender; {
				n := cq.WaitPoll(p, es[:])
				for _, e := range es[:n] {
					if e.Status != WCSuccess {
						t.Errorf("write completion %+v, want success", e)
					}
				}
				done += n
				completed += n
			}
		})
	}
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != 3*perSender {
		t.Fatalf("completed %d of %d writes", completed, 3*perSender)
	}

	recv := r.devs[3].Stats()
	if recv.CNPsSent == 0 {
		t.Fatal("congested receiver generated no CNPs")
	}
	var gotCNPs, cuts int64
	for src := 0; src < 3; src++ {
		st := r.devs[src].Stats()
		gotCNPs += st.CNPsReceived
		cuts += st.RateCuts
	}
	if gotCNPs == 0 || cuts == 0 {
		t.Fatalf("CNPsReceived = %d, RateCuts = %d: DCQCN loop never closed", gotCNPs, cuts)
	}
	if gotCNPs > recv.CNPsSent {
		t.Fatalf("received %d CNPs but only %d were sent", gotCNPs, recv.CNPsSent)
	}

	// The signal chain is causal in virtual time: mark <= CNP <= cut, with
	// at least one propagation delay between the CNP leaving the receiver
	// and the cut landing on the sender.
	var tMark, tCNP, tCut sim.Time
	for _, e := range tr.Events() {
		switch e.Name {
		case telemetry.EvECNMark:
			if tMark == 0 {
				tMark = e.At
			}
		case telemetry.EvCNP:
			if tCNP == 0 {
				tCNP = e.At
			}
		case telemetry.EvRateCut:
			if tCut == 0 && e.B == 1 {
				tCut = e.At
			}
		}
	}
	if tMark == 0 || tCNP == 0 || tCut == 0 {
		t.Fatalf("missing trace events: mark %v, cnp %v, cut %v", tMark, tCNP, tCut)
	}
	if !(tMark <= tCNP && tCNP <= tCut) {
		t.Fatalf("causality violated: mark %v, cnp %v, cut %v", tMark, tCNP, tCut)
	}
	if tCut < tCNP.Add(prof.PropagationDelay) {
		t.Fatalf("rate cut at %v, before the CNP could fly back (cnp %v + prop %v)",
			tCut, tCNP, prof.PropagationDelay)
	}
}

// TestRCTailDropRetransmitRecovery pre-posts a write burst far too large for
// the switch buffer: packets tail-drop, the per-QP go-back-N engine replays
// them after the ACK timeout through the DCQCN pacer, and every write still
// completes successfully — loss shows up only as bounded retries, never as a
// hang or an error.
func TestRCTailDropRetransmitRecovery(t *testing.T) {
	r := newRig(t, 4, rocev2)
	const perSender = 12
	const payload = 64 << 10

	sink := make([]byte, payload)
	rmr := r.devs[3].RegisterMRNoCost(sink)
	completed := 0
	for src := 0; src < 3; src++ {
		qp, _, cq, _ := r.rcPair(src, 3)
		dev := r.devs[src]
		r.sim.Spawn("burst", func(p *sim.Proc) {
			buf := make([]byte, payload)
			mr := dev.RegisterMRNoCost(buf)
			for i := 0; i < perSender; i++ {
				err := qp.PostSend(p, SendWR{ID: uint64(i), Op: OpWrite, MR: mr,
					Len: payload, RemoteKey: rmr.RKey})
				if err != nil {
					t.Error(err)
					return
				}
			}
			var es [8]CQE
			for done := 0; done < perSender; {
				n := cq.WaitPoll(p, es[:])
				for _, e := range es[:n] {
					if e.Status != WCSuccess {
						t.Errorf("completion %+v, want success after retransmit", e)
					}
				}
				done += n
				completed += n
			}
		})
	}
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != 3*perSender {
		t.Fatalf("completed %d of %d writes", completed, 3*perSender)
	}
	if drops := r.net.Stats(3).TailDrops; drops == 0 {
		t.Fatal("the burst was supposed to overrun the buffer")
	}
	var retries int64
	for src := 0; src < 3; src++ {
		retries += r.devs[src].Stats().TransportRetries
	}
	if retries == 0 {
		t.Fatal("drops without transport retries: recovery path untested")
	}
	if r.net.Stats(3).TailDrops > retries {
		t.Fatalf("%d tail drops but only %d retries: some loss was never replayed",
			r.net.Stats(3).TailDrops, retries)
	}
}

// TestUDOverrunDropsSilently floods one port with pre-posted UD datagrams:
// the overrun tail-drops silently — send completions all succeed (fire on
// the wire, UD semantics), no QP errors anywhere, and the receiver simply
// sees fewer datagrams than were sent.
func TestUDOverrunDropsSilently(t *testing.T) {
	r := newRig(t, 4, rocev2)
	const perSender = 80
	payload := r.net.Prof.MTU

	dcq := r.devs[3].CreateCQ(4096)
	dst := r.devs[3].CreateQP(QPConfig{Type: fabric.UD, SendCQ: dcq, RecvCQ: dcq, MaxRecv: 4096})
	sent, completedOK := 0, 0
	var srcQPs []*QP
	for src := 0; src < 3; src++ {
		cq := r.devs[src].CreateCQ(4096)
		qp := r.devs[src].CreateQP(QPConfig{Type: fabric.UD, SendCQ: cq, RecvCQ: cq, MaxSend: 4096})
		srcQPs = append(srcQPs, qp)
		dev := r.devs[src]
		r.sim.Spawn("flood", func(p *sim.Proc) {
			buf := make([]byte, payload)
			mr := dev.RegisterMRNoCost(buf)
			for i := 0; i < perSender; i++ {
				err := qp.PostSend(p, SendWR{ID: uint64(i), Op: OpSend, MR: mr, Len: payload,
					Dest: AH{Node: 3, QPN: dst.QPN()}})
				if err != nil {
					t.Error(err)
					return
				}
				sent++
			}
			var es [16]CQE
			for done := 0; done < perSender; {
				n := cq.WaitPoll(p, es[:])
				for _, e := range es[:n] {
					if e.Status != WCSuccess {
						t.Errorf("UD send completion %+v, want success even when dropped", e)
					}
				}
				done += n
				completedOK += n
			}
		})
	}
	r.sim.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, (GRHSize+payload)*perSender*3)
		mr := r.devs[3].RegisterMRNoCost(buf)
		for i := 0; i < perSender*3; i++ {
			if err := dst.PostRecv(p, RecvWR{ID: uint64(i), MR: mr,
				Offset: i * (GRHSize + payload), Len: GRHSize + payload}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if completedOK != sent || sent != 3*perSender {
		t.Fatalf("send completions %d, sent %d, want %d successful", completedOK, sent, 3*perSender)
	}
	port := r.net.Stats(3)
	if port.TailDrops == 0 {
		t.Fatal("pre-posted UD flood did not overrun the buffer")
	}
	if port.UDDropped < port.TailDrops {
		t.Fatalf("UDDropped %d < TailDrops %d: drops must be accounted as UD loss",
			port.UDDropped, port.TailDrops)
	}
	gotRecvs := r.devs[3].Stats().RecvsCompleted
	if want := int64(3*perSender) - port.TailDrops; gotRecvs != want {
		t.Fatalf("receiver completed %d datagrams, want %d (sent %d - dropped %d)",
			gotRecvs, want, 3*perSender, port.TailDrops)
	}
	for _, qp := range srcQPs {
		if qp.State() == QPError {
			t.Fatal("UD overrun must never error a QP")
		}
	}
	if dst.State() == QPError {
		t.Fatal("receiver QP errored on a silent overrun")
	}
}
