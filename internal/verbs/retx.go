package verbs

import (
	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// Per-QP transport retransmission. Real RC hardware keeps one retransmission
// timer per QP (the local ACK timeout) and, on expiry or NAK, rewinds the
// send pointer to the lost packet and replays go-back-N style; this file
// models that instead of scheduling an independent timer per lost message.
// While the timer is pending, the QP's new data sends queue behind the hole
// (see QP.sendPaced) and ship with the replay, so a loss stalls the whole
// pipeline for one ACK timeout — the dominant cost of running RoCE on a
// lossy fabric. The timer is cancellable: teardown paths (QP error,
// peer-down, Destroy) stop the wheel timer in O(1) so a pending timer can
// never fire into a dead QP.

// retxState is one QP's retransmission engine.
type retxState struct {
	// queue is the lost window awaiting replay — dropped messages plus any
	// data sends posted while the send pointer was rewound — in queue order.
	queue []*fabric.Message
	// armed guards the single pending timer.
	armed bool
	// timer is the pending wheel timer handle (sim.Timer), cancelled by
	// cancelRetx.
	timer sim.Timer
}

// armRetry installs the transport-loss handler on an RC message: when the
// fabric reports it dropped (tail drop on the lossy tier, or an injected
// fault), the message joins the QP's lost window and the per-QP
// retransmission timer is armed. Each message carries a bounded retry budget
// (ibv retry_cnt semantics); exhaustion errors the QP with WCRetryExceeded
// and flushes everything outstanding.
func (qp *QP) armRetry(msg *fabric.Message, wrID uint64, op Opcode) {
	prof := qp.dev.prof()
	attempts := 0
	drop := func() {
		if qp.state == QPError || qp.destroyed {
			return
		}
		attempts++
		if attempts > prof.RetryCount {
			qp.enterError(CQE{QPN: qp.qpn, WRID: wrID, Op: op, Status: WCRetryExceeded})
			return
		}
		qp.dev.stats.TransportRetries++
		qp.dev.tr().Instant(qp.dev.sim.Now(), telemetry.EvTransportRetry,
			int32(qp.dev.node), qp.cacheKey(), int64(wrID), int64(attempts))
		qp.retx.queue = append(qp.retx.queue, msg)
		qp.armRetxTimer()
	}
	net := qp.dev.net
	if net.Partitioned() && msg.To != qp.dev.node {
		// The fabric reports a loss from the receiving end of the wire (the
		// arrival event that never delivered), which on a partitioned network
		// is another partition. The loss verdict — real hardware's timeout or
		// NAK — routes home before touching the QP's retransmission engine.
		to := msg.To
		msg.Dropped = func() {
			exec := net.SimAt(to)
			net.Route(to, qp.dev.node, exec.Now().Add(net.Prof.RouteLatency()), drop)
		}
		return
	}
	msg.Dropped = drop
}

// armRetxTimer starts the QP's retransmission timer unless one is already
// pending; it fires after the local ACK timeout.
func (qp *QP) armRetxTimer() {
	if qp.retx.armed {
		return
	}
	qp.retx.armed = true
	qp.retx.timer = qp.dev.sim.AfterTimer(qp.dev.prof().TransportRetryDelay, qp.retxFire)
}

// retxFire replays the lost window in queue order (go-back-N). Replays go
// through the DCQCN pacer, so a congestion-cut QP retransmits at its cut
// rate instead of re-melting the switch. Teardown while the timer was
// pending stops it on the wheel, so a cancelled timer never gets here; the
// state checks are a second line of defense.
func (qp *QP) retxFire() {
	if !qp.retx.armed || qp.destroyed || qp.state == QPError {
		return
	}
	qp.retx.armed = false
	window := qp.retx.queue
	qp.retx.queue = nil
	net := qp.dev.net
	for _, m := range window {
		if net.Partitioned() && m.From != qp.dev.node {
			// A remote-NIC leg (an RDMA Read response) replays on the NIC
			// that owns it. Partitioned profiles are lossless, so there is no
			// pacer state to consult on the far side — the bare Transmit is
			// exactly what sendPaced reduces to there.
			m := m
			net.Route(qp.dev.node, m.From, qp.dev.sim.Now().Add(net.Prof.RouteLatency()),
				func() { net.Transmit(m) })
			continue
		}
		qp.sendPaced(m)
	}
}

// cancelRetx stops any pending retransmission timer on the wheel and
// discards the unreplayed window. Every QP teardown path calls it, so a
// timer armed before a peer-down event can never transmit into the
// torn-down QP; the windowed WRs themselves are flushed by the error path.
func (qp *QP) cancelRetx() {
	qp.retx.timer.Stop()
	qp.retx.timer = sim.Timer{}
	qp.retx.armed = false
	qp.retx.queue = nil
}
