package verbs

import (
	"errors"
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
)

// TestRNRRetryExhaustionErrorsQP posts a send whose peer never posts a
// receive: after rnr_retry attempts the sender must surface a
// WCRNRRetryExceeded completion, transition the QP to the Error state, and
// reject further posts with ErrQPError.
func TestRNRRetryExhaustionErrorsQP(t *testing.T) {
	r := newRig(t, 2)
	qpa, _, cqa, _ := r.rcPair(0, 1)
	var got CQE
	r.sim.Spawn("send", func(p *sim.Proc) {
		buf := make([]byte, 64)
		mr := r.devs[0].RegisterMRNoCost(buf)
		if err := qpa.PostSend(p, SendWR{ID: 9, Op: OpSend, MR: mr, Len: 64}); err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		cqa.WaitPoll(p, es[:])
		got = es[0]
		if err := qpa.PostSend(p, SendWR{Op: OpSend, MR: mr, Len: 64}); !errors.Is(err, ErrQPError) {
			t.Errorf("post after error = %v, want ErrQPError", err)
		}
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Status != WCRNRRetryExceeded || got.WRID != 9 {
		t.Fatalf("completion = %+v, want WCRNRRetryExceeded for WRID 9", got)
	}
	if got.Err() == nil {
		t.Fatal("failed completion should carry an error")
	}
	if qpa.State() != QPError {
		t.Fatalf("QP state = %v, want QPError", qpa.State())
	}
	st := r.devs[0].Stats()
	if st.RNRRetries == 0 || st.QPErrors == 0 {
		t.Fatalf("stats = %+v, want RNR retries and a QP error counted", st)
	}
}

// TestTransportRetryExhaustion cuts the link under an in-flight send: the
// NIC retransmits retry_cnt times, then completes the WR with
// WCRetryExceeded and errors the QP.
func TestTransportRetryExhaustion(t *testing.T) {
	r := newRig(t, 2)
	r.net.Faults().Add(fabric.FaultRule{
		Class: fabric.FaultRCLoss, From: fabric.AnyNode, To: 1, Rate: 1,
	})
	qpa, qpb, cqa, _ := r.rcPair(0, 1)
	var got CQE
	r.sim.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 64)
		mr := r.devs[1].RegisterMRNoCost(buf)
		if err := qpb.PostRecv(p, RecvWR{MR: mr, Len: 64}); err != nil {
			t.Error(err)
		}
	})
	r.sim.Spawn("send", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		buf := make([]byte, 64)
		mr := r.devs[0].RegisterMRNoCost(buf)
		if err := qpa.PostSend(p, SendWR{ID: 4, Op: OpSend, MR: mr, Len: 64}); err != nil {
			t.Error(err)
			return
		}
		var es [1]CQE
		cqa.WaitPoll(p, es[:])
		got = es[0]
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Status != WCRetryExceeded || got.WRID != 4 {
		t.Fatalf("completion = %+v, want WCRetryExceeded for WRID 4", got)
	}
	if qpa.State() != QPError {
		t.Fatalf("QP state = %v, want QPError", qpa.State())
	}
	if st := r.devs[0].Stats(); st.TransportRetries == 0 {
		t.Fatalf("stats = %+v, want transport retries counted", st)
	}
}

// TestQPErrorFlushesPostedWork errors a QP that still holds posted receives:
// every one of them must be flushed with a WCFlushErr completion — exactly
// once — and later receive posts must fail with ErrQPError.
func TestQPErrorFlushesPostedWork(t *testing.T) {
	r := newRig(t, 2)
	qpa, qpb, _, cqb := r.rcPair(0, 1)
	_ = qpa // node 0 never posts a receive, so qpb's send exhausts RNR retries
	var es []CQE
	r.sim.Spawn("victim", func(p *sim.Proc) {
		buf := make([]byte, 64)
		mr := r.devs[1].RegisterMRNoCost(buf)
		for i := 0; i < 2; i++ {
			if err := qpb.PostRecv(p, RecvWR{ID: uint64(100 + i), MR: mr, Len: 64}); err != nil {
				t.Error(err)
				return
			}
		}
		if err := qpb.PostSend(p, SendWR{ID: 5, Op: OpSend, MR: mr, Len: 64}); err != nil {
			t.Error(err)
			return
		}
		var e [8]CQE
		for len(es) < 3 {
			es = append(es, e[:cqb.WaitPoll(p, e[:])]...)
		}
		if err := qpb.PostRecv(p, RecvWR{MR: mr, Len: 64}); !errors.Is(err, ErrQPError) {
			t.Errorf("post after flush = %v, want ErrQPError", err)
		}
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(es) != 3 {
		t.Fatalf("got %d completions, want 3: %+v", len(es), es)
	}
	flushed := map[uint64]bool{}
	for _, e := range es {
		switch {
		case e.WRID == 5:
			if e.Status != WCRNRRetryExceeded {
				t.Fatalf("send completion = %+v, want WCRNRRetryExceeded", e)
			}
		case e.Op == OpRecv && e.Status == WCFlushErr:
			if flushed[e.WRID] {
				t.Fatalf("receive %d flushed twice", e.WRID)
			}
			flushed[e.WRID] = true
		default:
			t.Fatalf("unexpected completion %+v", e)
		}
	}
	if !flushed[100] || !flushed[101] {
		t.Fatalf("posted receives not flushed: %+v", es)
	}
}
