package verbs

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"rshuffle/internal/sim"
)

// Registered-buffer pooling. Profiling whole-query runs shows the dominant
// host cost is not event dispatch but endpoint construction: every shuffle
// operator registers multi-megabyte data rings (send pools, receive rings),
// and Go zeroes each fresh allocation, so back-to-back runs spend most of
// their CPU in memclr plus the GC cycles the garbage rings trigger. Real
// RDMA applications hit the same wall — memory registration is so expensive
// that every serious runtime keeps a registered-buffer cache and reuses
// pinned regions across operators. This file is the simulator-host analogue:
// a process-wide, size-classed free list of ring buffers that AllocMRNoCost
// draws from and Cluster teardown returns to.
//
// Pooled buffers come back with UNSPECIFIED CONTENTS (whatever the previous
// tenant wrote). That is safe for data rings because every consumer in the
// transport designs reads only length-bounded regions it has seen written
// (WC byte counts, staged lengths, valid markers) — the same discipline a
// real ibv buffer imposes, since pinned memory is never zeroed by the NIC.
// Buffers whose initial all-zero state is load-bearing (credit words, stage
// arrays, valid/slot markers) must NOT come from the pool; keep allocating
// those fresh.
//
// The pool is an explicitly budgeted LIFO free list per power-of-two size
// class, not a sync.Pool: sync.Pool's GC-epoch retention let long sweeps
// (hundreds of clusters between collections) accumulate gigabytes of dead
// rings, which in turn stretched the GC pacing goal and slowed every later
// simulation in the process. Here Put drops buffers beyond a fixed
// process-wide byte budget, so retention is bounded by bufPoolBudget no
// matter how many clusters a sweep builds, and the GC never interacts with
// the pool at all. The budget comfortably holds one cluster generation's
// rings — which is all reuse needs, since experiment cells build and retire
// clusters serially. Pool hits are non-deterministic under parallel cells
// (classes are shared process-wide), but only buffer identity varies —
// never simulated behaviour, because contents are invisible (above) and
// virtual time is independent of host memory.

const (
	bufClassMinBits = 12 // 4 KiB: below this, pooling saves less than it costs
	bufClassMaxBits = 28 // 256 MiB: largest ring any experiment builds

	// bufPoolBudget caps the total bytes retained across all classes.
	// Beyond it, putBuf drops buffers for the GC to reclaim.
	bufPoolBudget = 768 << 20
)

var (
	bufClasses  [bufClassMaxBits - bufClassMinBits + 1]bufClassList
	bufRetained atomic.Int64 // bytes currently parked across all classes
)

// bufClassList is one size class's free list: a mutex-guarded LIFO stack,
// so the most recently retired ring (hottest in cache, already faulted in)
// is reused first.
type bufClassList struct {
	mu   sync.Mutex
	bufs [][]byte
}

// bufClass returns the index of the smallest class holding n bytes, or -1
// when n falls outside the pooled range.
func bufClass(n int) int {
	if n <= 0 || n > 1<<bufClassMaxBits {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < bufClassMinBits {
		b = bufClassMinBits
	}
	return b - bufClassMinBits
}

// getBuf returns an n-byte slice backed by a pooled class-sized array, or a
// fresh allocation when n is outside the pooled range. Contents are
// unspecified on a pool hit.
func getBuf(n int) []byte {
	c := bufClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	cl := &bufClasses[c]
	cl.mu.Lock()
	if last := len(cl.bufs) - 1; last >= 0 {
		b := cl.bufs[last]
		cl.bufs[last] = nil
		cl.bufs = cl.bufs[:last]
		cl.mu.Unlock()
		bufRetained.Add(-int64(cap(b)))
		return b[:n]
	}
	cl.mu.Unlock()
	return make([]byte, n, 1<<(c+bufClassMinBits))
}

// putBuf returns a buffer obtained from getBuf to its class. Buffers whose
// capacity is not an exact class size (out-of-range allocations) or that
// would push retention past bufPoolBudget are left for the GC.
func putBuf(b []byte) {
	c := cap(b)
	if c < 1<<bufClassMinBits || c&(c-1) != 0 || c > 1<<bufClassMaxBits {
		return
	}
	if bufRetained.Add(int64(c)) > bufPoolBudget {
		bufRetained.Add(-int64(c))
		return
	}
	cl := &bufClasses[bits.Len(uint(c))-1-bufClassMinBits]
	cl.mu.Lock()
	cl.bufs = append(cl.bufs, b[:c])
	cl.mu.Unlock()
}

// AllocMRNoCost registers an n-byte region drawn from the process-wide
// registered-buffer pool. Contents are UNSPECIFIED — callers must treat the
// region like real pinned memory and only read bytes they have seen
// written. Use it for data rings; regions whose initial zero state is
// semantic must go through RegisterMRNoCost(make([]byte, n)) instead. The
// region returns to the pool on Deregister or Device.RecycleMRs.
func (d *Device) AllocMRNoCost(n int) *MR {
	mr := d.RegisterMRNoCost(getBuf(n))
	mr.pooled = true
	return mr
}

// AllocMR is AllocMRNoCost charging p the registration cost, mirroring
// RegisterMR.
func (d *Device) AllocMR(p *sim.Proc, n int) *MR {
	p.Sleep(d.prof().MemRegBase + sim.Duration(float64(n)*d.prof().MemRegPerByte))
	return d.AllocMRNoCost(n)
}

// RecycleMRs deregisters every remaining pooled region on the device and
// returns the buffers to the pool. Call it only when the owning simulation
// is finished: no Proc may touch a recycled ring again. Non-pooled regions
// are untouched, and calling it twice is a no-op.
func (d *Device) RecycleMRs() {
	for key, mr := range d.mrs {
		if !mr.pooled {
			continue
		}
		mr.pooled = false
		delete(d.mrs, key)
		d.registered -= int64(len(mr.Buf))
		putBuf(mr.Buf)
		mr.Buf = nil
	}
}
