package verbs

import (
	"fmt"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// MaxInline is the largest payload that may be posted with SendWR.Inline.
const MaxInline = 220

// AH is an address handle identifying a UD destination: either a single
// (node, QPN) pair, or a hardware multicast group when Multicast is set.
type AH struct {
	Node int
	QPN  uint32
	// Multicast addresses the MGID group instead of a single QP; the switch
	// replicates the datagram to every attached QP (one work request, one
	// uplink serialization at the sender).
	Multicast bool
	MGID      uint32
}

// RecvWR is a receive work request: a registered buffer slot into which one
// incoming Send will be placed.
type RecvWR struct {
	ID     uint64
	MR     *MR
	Offset int
	Len    int
}

// SendWR is a send-side work request for the Send, Read, or Write transport
// functions.
type SendWR struct {
	ID uint64
	Op Opcode

	// Local buffer.
	MR     *MR
	Offset int
	Len    int

	// Imm is carried to the receiver's completion when HasImm is set
	// (Send only).
	Imm    uint32
	HasImm bool

	// Inline asks the CPU to copy the payload into the work request itself,
	// allowing the buffer to be reused as soon as the post returns.
	Inline bool

	// Dest addresses the destination of a UD Send.
	Dest AH

	// RemoteKey and RemoteOffset address the remote region for Read/Write.
	RemoteKey    uint32
	RemoteOffset int
}

// QPConfig configures CreateQP.
type QPConfig struct {
	Type    fabric.Service
	SendCQ  *CQ
	RecvCQ  *CQ
	MaxSend int // send queue depth
	MaxRecv int // receive queue depth
}

// QP is a queue pair. Its methods are thread-safe: posting verbs serialize
// on an internal FIFO lock, which is exactly the contention the paper
// observes on ibv_post_send when many threads share one QP.
type QP struct {
	dev *Device
	qpn uint32
	cfg QPConfig
	mu  *sim.Mutex

	connected bool
	peerNode  int
	peerQPN   uint32
	// peerEpoch is the peer device's boot epoch captured at Connect (the
	// epoch rides the connection-manager exchange). Every work request this
	// QP issues carries it, and the responder fences requests whose epoch no
	// longer matches its own — a pre-reboot QP can never complete into
	// post-reboot memory. Zero means unfenced (peer not epoch-aware).
	peerEpoch uint64

	recvQ       []RecvWR
	outstanding int
	// inflight tracks posted sends in order, so that an error transition
	// can flush them deterministically.
	inflight []inflightWR

	// stalled holds RC messages that arrived while no receive was posted.
	// The connection preserves ordering: later arrivals queue behind the
	// RNR-NAKed head and are matched in arrival order once receives appear.
	stalled      []stalledRC
	drainPending bool

	// retx is the per-QP transport retransmission engine (see retx.go).
	retx retxState
	// txNextFree is the NIC TX engine's token bucket for this QP: on lossy
	// DCQCN profiles, sends are released no faster than the QP's current
	// rate (see pacedSend).
	txNextFree sim.Time

	state     QPState
	destroyed bool
}

// inflightWR is the identity of one posted, uncompleted send-side WR.
type inflightWR struct {
	id uint64
	op Opcode
}

// stalledRC is an in-flight RC message waiting for a posted receive.
type stalledRC struct {
	payload []byte
	wr      SendWR
	src     *QP
	// retries counts RNR retry rounds this message has spent at the head
	// of the stall queue.
	retries int
}

// CreateQP creates a queue pair of the configured type. It panics if the
// transport does not offer the requested service (iWARP has no UD).
func (d *Device) CreateQP(cfg QPConfig) *QP {
	if cfg.Type == fabric.UD && !d.prof().SupportsUD {
		panic(fmt.Sprintf("verbs: %s offers no Unreliable Datagram service", d.prof().Name))
	}
	if cfg.MaxSend <= 0 {
		cfg.MaxSend = 128
	}
	if cfg.MaxRecv <= 0 {
		cfg.MaxRecv = 512
	}
	d.nextQPN++
	d.stats.QPsCreated++
	qp := &QP{
		dev: d,
		qpn: d.nextQPN,
		cfg: cfg,
		mu:  d.sim.NewMutex(fmt.Sprintf("qp%d@%d", d.nextQPN, d.node)),
	}
	d.qps[qp.qpn] = qp
	return qp
}

// QPN returns the queue pair number, unique within the device.
func (qp *QP) QPN() uint32 { return qp.qpn }

// Type returns the transport service of this QP.
func (qp *QP) Type() fabric.Service { return qp.cfg.Type }

// State returns the queue pair state.
func (qp *QP) State() QPState { return qp.state }

// Destroy removes the QP; subsequent deliveries to it are dropped and any
// pending retransmission timer is cancelled.
func (qp *QP) Destroy() {
	qp.destroyed = true
	qp.cancelRetx()
	delete(qp.dev.qps, qp.qpn)
}

// cacheKey identifies this QP's state in NIC caches across the cluster.
func (qp *QP) cacheKey() uint64 { return uint64(qp.dev.node)<<32 | uint64(qp.qpn) }

// Connect binds an RC queue pair to its single remote peer. Both sides must
// connect before traffic flows. The out-of-band exchange cost is accounted
// by the cluster connection manager, not here.
func (qp *QP) Connect(peerNode int, peerQPN uint32) error {
	if qp.cfg.Type != fabric.RC {
		return ErrBadOp
	}
	qp.connected = true
	qp.peerNode = peerNode
	qp.peerQPN = peerQPN
	// The peer's boot epoch rides the out-of-band connection exchange; work
	// requests carry it so the responder can fence stale writers after a
	// reboot. Loopback connections and non-device peers stay unfenced.
	if peerNode != qp.dev.node {
		if peer, ok := qp.dev.net.Host(peerNode).(*Device); ok {
			qp.peerEpoch = peer.epoch
		}
	}
	return nil
}

// PeerEpoch returns the peer boot epoch captured at Connect (0 if unfenced).
func (qp *QP) PeerEpoch() uint64 { return qp.peerEpoch }

// fencedAt implements the responder-side epoch check: if this QP's captured
// peer epoch is stale with respect to the responder device's current epoch,
// the work request is rejected before touching responder memory — the
// responder counts and traces the fence, and the requester QP breaks with
// WCFenced. It returns true when the request must not proceed.
func (qp *QP) fencedAt(responder *Device, wrID uint64, op Opcode) bool {
	if qp.peerEpoch == 0 || qp.peerEpoch == responder.epoch {
		return false
	}
	responder.stats.StaleFenced++
	responder.tr().Instant(responder.sim.Now(), telemetry.EvStaleFenced,
		int32(responder.node), qp.cacheKey(), int64(qp.dev.node), int64(responder.epoch))
	qp.errorFrom(responder, CQE{QPN: qp.qpn, WRID: wrID, Op: op, Status: WCFenced})
	return true
}

// errorFrom transitions qp into the Error state from an event executing on
// exec's partition. A queue pair's state may only be touched by its own
// partition, so on a partitioned network a remote responder's verdict (fence,
// peer-error, RNR exhaustion) rides the fabric home as a routed NAK, arriving
// one route latency later — exactly the wire trip the verdict takes on real
// hardware. Same-node and legacy callers transition synchronously, keeping
// the single-simulation path byte-identical.
func (qp *QP) errorFrom(exec *Device, e CQE) {
	net := qp.dev.net
	if net.Partitioned() && exec.node != qp.dev.node {
		net.Route(exec.node, qp.dev.node, exec.sim.Now().Add(net.Prof.RouteLatency()),
			func() { qp.enterError(e) })
		return
	}
	qp.enterError(e)
}

// PostRecv posts a receive buffer. The buffer must stay untouched until its
// completion arrives. For UD queue pairs the first GRHSize bytes of the
// slot are consumed by the routing header, so Len must exceed GRHSize.
func (qp *QP) PostRecv(p *sim.Proc, wr RecvWR) error {
	qp.mu.Lock(p)
	defer qp.mu.Unlock(p)
	p.Sleep(qp.dev.prof().PostCost)
	qp.dev.stats.Posts++
	if qp.cfg.Type == fabric.RC && qp.connected && qp.dev.PeerDown(qp.peerNode) {
		return ErrPeerDown
	}
	if qp.state == QPError {
		return ErrQPError
	}
	if len(qp.recvQ) >= qp.cfg.MaxRecv {
		return ErrRQFull
	}
	if wr.Offset < 0 || wr.Offset+wr.Len > len(wr.MR.Buf) {
		return ErrOutOfRange
	}
	if qp.cfg.Type == fabric.UD && wr.Len <= GRHSize {
		return ErrTooLong
	}
	qp.recvQ = append(qp.recvQ, wr)
	qp.armRNRTimer()
	return nil
}

// RecvQueued returns the number of posted, unmatched receive buffers.
func (qp *QP) RecvQueued() int { return len(qp.recvQ) }

// PostSend posts a Send, Read, or Write work request. It never blocks on
// the network; completion arrives on the send CQ.
func (qp *QP) PostSend(p *sim.Proc, wr SendWR) error {
	qp.mu.Lock(p)
	p.Sleep(qp.dev.prof().PostCost)
	qp.dev.stats.Posts++
	if qp.cfg.Type == fabric.RC && qp.connected && qp.dev.PeerDown(qp.peerNode) {
		qp.mu.Unlock(p)
		return ErrPeerDown
	}
	if qp.state == QPError {
		qp.mu.Unlock(p)
		return ErrQPError
	}
	if qp.outstanding >= qp.cfg.MaxSend {
		qp.mu.Unlock(p)
		return ErrSQFull
	}
	if wr.Offset < 0 || wr.Offset+wr.Len > len(wr.MR.Buf) {
		qp.mu.Unlock(p)
		return ErrOutOfRange
	}
	var err error
	switch wr.Op {
	case OpSend:
		err = qp.postSendMsg(p, wr)
	case OpRead:
		err = qp.postRead(wr)
	case OpWrite:
		err = qp.postWrite(p, wr)
	default:
		err = ErrBadOp
	}
	if err == nil {
		qp.outstanding++
		qp.inflight = append(qp.inflight, inflightWR{wr.ID, wr.Op})
		// The WR lifecycle span opens at post time and closes when the
		// completion is generated (complete) or the WR is flushed.
		qp.dev.tr().Begin(qp.dev.sim.Now(), telemetry.EvWR,
			int32(qp.dev.node), qp.cacheKey(), int64(wr.ID), int64(wr.Op))
	}
	qp.mu.Unlock(p)
	return err
}

// Outstanding returns the number of posted sends whose completions have not
// been generated yet.
func (qp *QP) Outstanding() int { return qp.outstanding }

func (qp *QP) complete(cq *CQ, e CQE) {
	if qp.state == QPError {
		// The WR was already flushed with an error completion; drop the
		// late success.
		return
	}
	qp.dropInflight(e.WRID, e.Op)
	qp.outstanding--
	qp.dev.tr().End(qp.dev.sim.Now(), telemetry.EvWR,
		int32(qp.dev.node), qp.cacheKey(), int64(e.WRID), int64(e.Status))
	cq.push(e)
}

// dropInflight removes the first in-flight record matching (id, op).
func (qp *QP) dropInflight(id uint64, op Opcode) bool {
	for i, w := range qp.inflight {
		if w.id == id && w.op == op {
			qp.inflight = append(qp.inflight[:i], qp.inflight[i+1:]...)
			return true
		}
	}
	return false
}

// enterError transitions the QP to the Error state: the triggering failed WR
// completes with its error status, every other outstanding send-side WR and
// every posted receive is flushed with WCFlushErr, and subsequent posts fail
// with ErrQPError. It is idempotent.
func (qp *QP) enterError(trigger CQE) {
	if qp.state == QPError || qp.destroyed {
		return
	}
	qp.state = QPError
	qp.cancelRetx()
	qp.dev.stats.QPErrors++
	now := qp.dev.sim.Now()
	qp.dev.tr().Instant(now, telemetry.EvQPError,
		int32(qp.dev.node), qp.cacheKey(), int64(trigger.Status), 0)
	if qp.dropInflight(trigger.WRID, trigger.Op) {
		qp.outstanding--
	}
	qp.dev.tr().End(now, telemetry.EvWR,
		int32(qp.dev.node), qp.cacheKey(), int64(trigger.WRID), int64(trigger.Status))
	qp.cfg.SendCQ.pushFlush(trigger)
	for _, w := range qp.inflight {
		qp.outstanding--
		qp.dev.tr().End(now, telemetry.EvWR,
			int32(qp.dev.node), qp.cacheKey(), int64(w.id), int64(WCFlushErr))
		qp.cfg.SendCQ.pushFlush(CQE{QPN: qp.qpn, WRID: w.id, Op: w.op, Status: WCFlushErr})
	}
	qp.inflight = nil
	for _, rwr := range qp.recvQ {
		qp.cfg.RecvCQ.pushFlush(CQE{QPN: qp.qpn, WRID: rwr.ID, Op: OpRecv, Status: WCFlushErr})
	}
	qp.recvQ = nil
	qp.stalled = nil
	// Wake pollers that wait on memory changes rather than CQs (one-sided
	// protocols) so they observe the failure promptly.
	qp.dev.memWake.Broadcast()
}

// forceError transitions the QP to the Error state on a connection-manager
// event rather than a failed work request: every outstanding send-side WR is
// flushed with status st, every posted receive with WCFlushErr, and further
// posts fail. It is idempotent.
func (qp *QP) forceError(st WCStatus) {
	if qp.state == QPError || qp.destroyed {
		return
	}
	qp.state = QPError
	qp.cancelRetx()
	qp.dev.stats.QPErrors++
	now := qp.dev.sim.Now()
	qp.dev.tr().Instant(now, telemetry.EvQPError,
		int32(qp.dev.node), qp.cacheKey(), int64(st), 0)
	for _, w := range qp.inflight {
		qp.outstanding--
		qp.dev.tr().End(now, telemetry.EvWR,
			int32(qp.dev.node), qp.cacheKey(), int64(w.id), int64(st))
		qp.cfg.SendCQ.pushFlush(CQE{QPN: qp.qpn, WRID: w.id, Op: w.op, Status: st})
	}
	qp.inflight = nil
	for _, rwr := range qp.recvQ {
		qp.cfg.RecvCQ.pushFlush(CQE{QPN: qp.qpn, WRID: rwr.ID, Op: OpRecv, Status: WCFlushErr})
	}
	qp.recvQ = nil
	qp.stalled = nil
	qp.dev.memWake.Broadcast()
}

func (qp *QP) postSendMsg(p *sim.Proc, wr SendWR) error {
	prof := qp.dev.prof()
	var toNode int
	var toQPN uint32
	switch qp.cfg.Type {
	case fabric.RC:
		if !qp.connected {
			return ErrNotConnected
		}
		if wr.Len > prof.MaxMsgRC {
			return ErrTooLong
		}
		toNode, toQPN = qp.peerNode, qp.peerQPN
	case fabric.UD:
		if wr.Len > prof.MTU {
			return ErrTooLong
		}
		if wr.Dest.Multicast {
			return qp.postMulticast(p, wr)
		}
		toNode, toQPN = wr.Dest.Node, wr.Dest.QPN
	}
	if wr.Inline {
		if wr.Len > MaxInline {
			return ErrTooLong
		}
		// The CPU copies the payload into the WQE; charged here.
		p.Sleep(sim.Duration(float64(wr.Len) * prof.MemCopyPerByte))
	}
	// Snapshot the payload: the NIC DMA-reads it during transmission, and a
	// correct application may reuse the buffer after the send completion,
	// which for UD fires before delivery.
	payload := make([]byte, wr.Len)
	copy(payload, wr.MR.Buf[wr.Offset:wr.Offset+wr.Len])

	msg := &fabric.Message{
		From: qp.dev.node, To: toNode,
		FromQP: qp.cacheKey(), ToQP: uint64(toNode)<<32 | uint64(toQPN),
		Payload: wr.Len, Service: qp.cfg.Type,
	}
	net := qp.dev.net
	switch qp.cfg.Type {
	case fabric.UD:
		// Local completion when the datagram is on the wire.
		msg.Sent = func(at sim.Time) {
			qp.dev.stats.SendsCompleted++
			qp.complete(qp.cfg.SendCQ, CQE{QPN: qp.qpn, WRID: wr.ID, Op: OpSend, Bytes: wr.Len})
		}
		msg.Deliver = func(at sim.Time) { deliverUD(net, toNode, toQPN, qp.dev.node, qp.qpn, payload, wr) }
		msg.Dropped = func() {}
	case fabric.RC:
		msg.Deliver = func(at sim.Time) {
			qp.deliverRC(toNode, toQPN, payload, wr)
		}
		qp.armRetry(msg, wr.ID, OpSend)
	}
	qp.sendPaced(msg)
	return nil
}

// postMulticast sends one datagram to every QP attached to the MGID.
func (qp *QP) postMulticast(p *sim.Proc, wr SendWR) error {
	if wr.Inline {
		if wr.Len > MaxInline {
			return ErrTooLong
		}
		p.Sleep(sim.Duration(float64(wr.Len) * qp.dev.prof().MemCopyPerByte))
	}
	payload := make([]byte, wr.Len)
	copy(payload, wr.MR.Buf[wr.Offset:wr.Offset+wr.Len])

	net := qp.dev.net
	// The switch knows the membership; collect member nodes and their
	// attached QPs.
	var nodes []int
	members := map[int][]*QP{}
	for i := 0; i < net.Nodes(); i++ {
		d, ok := net.Host(i).(*Device)
		if !ok {
			continue
		}
		if qps := d.mcast[wr.Dest.MGID]; len(qps) > 0 {
			nodes = append(nodes, i)
			members[i] = qps
		}
	}
	msg := &fabric.Message{
		From: qp.dev.node, To: -1,
		FromQP: qp.cacheKey(), ToQP: uint64(wr.Dest.MGID) | 1<<48,
		Payload: wr.Len, Service: fabric.UD,
		Sent: func(at sim.Time) {
			qp.dev.stats.SendsCompleted++
			qp.complete(qp.cfg.SendCQ, CQE{QPN: qp.qpn, WRID: wr.ID, Op: OpSend, Bytes: wr.Len})
		},
		Dropped: func() {},
	}
	src, srcQPN := qp.dev.node, qp.qpn
	qp.pacedSend(net.Prof.WireBytes(wr.Len, fabric.UD), func() {
		net.TransmitMulticast(msg, nodes, func(dest int, at sim.Time) {
			for _, rqp := range members[dest] {
				deliverUD(net, dest, rqp.qpn, src, srcQPN, payload, wr)
			}
		})
	})
	return nil
}

// deliverRC lands an RC Send at its destination. If no receive is posted
// (or earlier messages are already stalled) the message joins the
// connection's stall queue: the destination returned an RNR NAK and the
// retried message must still be matched in its original order, as the
// Reliable Connection service guarantees in-order delivery.
func (qp *QP) deliverRC(toNode int, toQPN uint32, payload []byte, wr SendWR) {
	dst := deviceAt(qp.dev.net, toNode)
	rqp := dst.qps[toQPN]
	if rqp == nil || rqp.destroyed || rqp.cfg.Type != fabric.RC {
		panic(fmt.Sprintf("verbs: RC send to nonexistent QP %d on node %d", toQPN, toNode))
	}
	net := qp.dev.net
	if !net.Partitioned() && qp.state == QPError {
		// Late arrival of a send that was already flushed at the source. On a
		// partitioned network this executes on the receiver's partition and
		// the sender's state cannot be read here; the late success is instead
		// dropped by complete()'s own error-state guard when the routed ACK
		// reaches home — the same hardware behaviour, judged one trip later.
		return
	}
	if rqp.state == QPError {
		// The peer flushed its receive queue and will never post again; the
		// sender observes the broken connection as retry exhaustion.
		qp.errorFrom(rqp.dev, CQE{QPN: qp.qpn, WRID: wr.ID, Op: OpSend, Status: WCRetryExceeded})
		return
	}
	if qp.fencedAt(dst, wr.ID, OpSend) {
		// Stale boot epoch: the responder rejects the Send before it can
		// consume a post-reboot receive buffer.
		return
	}
	if len(rqp.stalled) > 0 || len(rqp.recvQ) == 0 {
		// The RNR NAK is generated here, at the responder; partitioned runs
		// therefore count it on the responder device (whose partition is
		// executing), while the legacy path keeps its historical requester
		// attribution byte-for-byte.
		if net.Partitioned() {
			rqp.dev.stats.RNRRetries++
		} else {
			qp.dev.stats.RNRRetries++
		}
		rqp.dev.tr().Instant(rqp.dev.sim.Now(), telemetry.EvRNRRetry,
			int32(toNode), rqp.cacheKey(), int64(wr.ID), 0)
		rqp.stalled = append(rqp.stalled, stalledRC{payload: payload, wr: wr, src: qp})
		rqp.armRNRTimer()
		return
	}
	rqp.match(stalledRC{payload: payload, wr: wr, src: qp})
}

// match consumes one posted receive for message m and generates both
// completions.
func (rqp *QP) match(m stalledRC) {
	net := rqp.dev.net
	rwr := rqp.recvQ[0]
	rqp.recvQ = rqp.recvQ[1:]
	if rwr.Len < len(m.payload) {
		panic(fmt.Sprintf("verbs: RC recv buffer too small (%d < %d) on node %d",
			rwr.Len, len(m.payload), rqp.dev.node))
	}
	copy(rwr.MR.Buf[rwr.Offset:], m.payload)
	rqp.dev.stats.RecvsCompleted++
	rqp.cfg.RecvCQ.push(CQE{
		QPN: rqp.qpn, WRID: rwr.ID, Op: OpRecv, Bytes: len(m.payload),
		Imm: m.wr.Imm, HasImm: m.wr.HasImm,
		SrcNode: m.src.dev.node, SrcQPN: m.src.qpn,
	})
	// Sender completion once the ACK returns.
	src, wrID, n := m.src, m.wr.ID, len(m.payload)
	ack := func() {
		src.dev.stats.SendsCompleted++
		src.complete(src.cfg.SendCQ, CQE{QPN: src.qpn, WRID: wrID, Op: OpSend, Bytes: n})
	}
	if net.Partitioned() && src.dev.node != rqp.dev.node {
		// Partitioned: the ACK rides the fabric back to the sender's
		// partition, paying the full route latency (switch + propagation) so
		// its arrival clears the window bound at any LP count.
		net.Route(rqp.dev.node, src.dev.node, rqp.dev.sim.Now().Add(net.Prof.RouteLatency()), ack)
	} else {
		src.dev.sim.After(net.Prof.PropagationDelay, ack)
	}
}

// armRNRTimer schedules one RNR retry round after RNRRetryDelay, unless one
// is already pending. Rounds drain stalled messages against posted receives
// in arrival order; a head message that stays unmatched burns one of its
// bounded retries (rnr_retry semantics).
func (rqp *QP) armRNRTimer() { rqp.armRNRAfter(rqp.dev.prof().RNRRetryDelay) }

func (rqp *QP) armRNRAfter(d sim.Duration) {
	if rqp.drainPending || len(rqp.stalled) == 0 {
		return
	}
	rqp.drainPending = true
	rqp.dev.sim.After(d, func() { rqp.rnrTick() })
}

// rnrTick runs one RNR retry round.
func (rqp *QP) rnrTick() {
	rqp.drainPending = false
	if rqp.destroyed || rqp.state == QPError {
		rqp.stalled = nil
		return
	}
	for len(rqp.stalled) > 0 && len(rqp.recvQ) > 0 {
		m := rqp.stalled[0]
		rqp.stalled = rqp.stalled[1:]
		rqp.match(m)
	}
	if len(rqp.stalled) == 0 {
		return
	}
	// Still no receive posted: the sender NIC retries the head message and
	// receives another RNR NAK.
	head := &rqp.stalled[0]
	head.retries++
	rqp.dev.stats.RNRRetries++
	rqp.dev.tr().Instant(rqp.dev.sim.Now(), telemetry.EvRNRRetry,
		int32(rqp.dev.node), rqp.cacheKey(), int64(head.wr.ID), int64(head.retries))
	if lim := rqp.dev.prof().RNRRetryCount; lim > 0 && head.retries > lim {
		// rnr_retry exhausted: the sender QP breaks. Every message it has
		// queued here dies with it (an RC connection is one sender QP).
		src := head.src
		id := head.wr.ID
		kept := rqp.stalled[:0]
		for _, m := range rqp.stalled {
			if m.src != src {
				kept = append(kept, m)
			}
		}
		rqp.stalled = kept
		src.errorFrom(rqp.dev, CQE{QPN: src.qpn, WRID: id, Op: OpSend, Status: WCRNRRetryExceeded})
	}
	if len(rqp.stalled) > 0 {
		// Successive NAKs advertise geometrically growing RNR timers, so
		// rnr_retry = 7 buys a total stall budget of 127 base delays
		// (~1.5 ms on FDR) before the connection breaks.
		d := rqp.dev.prof().RNRRetryDelay
		shift := rqp.stalled[0].retries
		if shift > 6 {
			shift = 6
		}
		rqp.armRNRAfter(d << shift)
	}
}

// deliverUD lands a datagram: no receive posted, wrong QP type, or an
// undersized buffer silently consumes the packet.
func deliverUD(net *fabric.Network, toNode int, toQPN uint32, srcNode int, srcQPN uint32, payload []byte, wr SendWR) {
	dst := deviceAt(net, toNode)
	rqp := dst.qps[toQPN]
	if rqp == nil || rqp.destroyed || rqp.cfg.Type != fabric.UD {
		dst.stats.UDNoRecvDrops++
		return
	}
	if len(rqp.recvQ) == 0 {
		dst.stats.UDNoRecvDrops++
		return
	}
	rwr := rqp.recvQ[0]
	if rwr.Len < GRHSize+len(payload) {
		// Real hardware completes this receive in error; the common outcome
		// for the application is a lost message.
		rqp.recvQ = rqp.recvQ[1:]
		dst.stats.UDNoRecvDrops++
		return
	}
	rqp.recvQ = rqp.recvQ[1:]
	copy(rwr.MR.Buf[rwr.Offset+GRHSize:], payload)
	dst.stats.RecvsCompleted++
	rqp.cfg.RecvCQ.push(CQE{
		QPN: rqp.qpn, WRID: rwr.ID, Op: OpRecv, Bytes: GRHSize + len(payload),
		Imm: wr.Imm, HasImm: wr.HasImm,
		SrcNode: srcNode, SrcQPN: srcQPN,
	})
}

func (qp *QP) postRead(wr SendWR) error {
	if qp.cfg.Type != fabric.RC {
		return ErrBadOp
	}
	if !qp.connected {
		return ErrNotConnected
	}
	prof := qp.dev.prof()
	if wr.Len > prof.MaxMsgRC {
		return ErrTooLong
	}
	net := qp.dev.net
	remote := deviceAt(net, qp.peerNode)
	// Request leg: a small control packet to the responder NIC.
	req := &fabric.Message{
		From: qp.dev.node, To: qp.peerNode,
		FromQP: qp.cacheKey(), ToQP: uint64(qp.peerNode)<<32 | uint64(qp.peerQPN),
		Payload: prof.ReadRequestBytes, Service: fabric.RC,
	}
	req.Deliver = func(at sim.Time) {
		if qp.fencedAt(remote, wr.ID, OpRead) {
			return
		}
		// The responder NIC DMA-reads the region now — no remote CPU.
		rmr := remote.mrs[wr.RemoteKey]
		if rmr == nil || wr.RemoteOffset < 0 || wr.RemoteOffset+wr.Len > len(rmr.Buf) {
			panic(fmt.Sprintf("verbs: RDMA Read outside remote MR (rkey %d, off %d, len %d)",
				wr.RemoteKey, wr.RemoteOffset, wr.Len))
		}
		data := make([]byte, wr.Len)
		copy(data, rmr.Buf[wr.RemoteOffset:wr.RemoteOffset+wr.Len])
		resp := &fabric.Message{
			From: qp.peerNode, To: qp.dev.node,
			FromQP: uint64(qp.peerNode)<<32 | uint64(qp.peerQPN), ToQP: qp.cacheKey(),
			Payload: wr.Len, Service: fabric.RC,
		}
		resp.Deliver = func(at sim.Time) {
			copy(wr.MR.Buf[wr.Offset:], data)
			qp.dev.stats.ReadsCompleted++
			qp.complete(qp.cfg.SendCQ, CQE{QPN: qp.qpn, WRID: wr.ID, Op: OpRead, Bytes: wr.Len})
		}
		// A lost response is retransmitted by the responder NIC; each leg
		// carries its own retry_cnt budget. The responder's own QP paces the
		// bulk leg, so a congestion-cut server streams reads at its cut rate.
		qp.armRetry(resp, wr.ID, OpRead)
		if rqp := remote.qps[qp.peerQPN]; rqp != nil {
			rqp.sendPaced(resp)
		} else {
			net.Transmit(resp)
		}
	}
	qp.armRetry(req, wr.ID, OpRead)
	net.Transmit(req)
	return nil
}

func (qp *QP) postWrite(p *sim.Proc, wr SendWR) error {
	if qp.cfg.Type != fabric.RC {
		return ErrBadOp
	}
	if !qp.connected {
		return ErrNotConnected
	}
	prof := qp.dev.prof()
	if wr.Len > prof.MaxMsgRC {
		return ErrTooLong
	}
	if wr.Inline {
		if wr.Len > MaxInline {
			return ErrTooLong
		}
		p.Sleep(sim.Duration(float64(wr.Len) * prof.MemCopyPerByte))
	}
	payload := make([]byte, wr.Len)
	copy(payload, wr.MR.Buf[wr.Offset:wr.Offset+wr.Len])
	net := qp.dev.net
	remote := deviceAt(net, qp.peerNode)
	msg := &fabric.Message{
		From: qp.dev.node, To: qp.peerNode,
		FromQP: qp.cacheKey(), ToQP: uint64(qp.peerNode)<<32 | uint64(qp.peerQPN),
		Payload: wr.Len, Service: fabric.RC,
	}
	msg.Deliver = func(at sim.Time) {
		if qp.fencedAt(remote, wr.ID, OpWrite) {
			return
		}
		rmr := remote.mrs[wr.RemoteKey]
		if rmr == nil || wr.RemoteOffset < 0 || wr.RemoteOffset+wr.Len > len(rmr.Buf) {
			panic(fmt.Sprintf("verbs: RDMA Write outside remote MR (rkey %d, off %d, len %d)",
				wr.RemoteKey, wr.RemoteOffset, wr.Len))
		}
		copy(rmr.Buf[wr.RemoteOffset:], payload)
		remote.stats.RemoteWrites++
		remote.memWake.Broadcast()
		ack := func() {
			qp.dev.stats.WritesCompleted++
			qp.complete(qp.cfg.SendCQ, CQE{QPN: qp.qpn, WRID: wr.ID, Op: OpWrite, Bytes: wr.Len})
		}
		if net.Partitioned() && qp.dev.node != remote.node {
			// The write ACK routes back to the requester's partition at the
			// full route latency, clearing the window bound at any LP count.
			net.Route(remote.node, qp.dev.node, remote.sim.Now().Add(net.Prof.RouteLatency()), ack)
		} else {
			qp.dev.sim.After(net.Prof.PropagationDelay, ack)
		}
	}
	qp.armRetry(msg, wr.ID, OpWrite)
	qp.sendPaced(msg)
	return nil
}

// OpenAll opens one device per node, attaches each to its fabric node so
// delivery callbacks can dispatch, and returns them. Call it exactly once
// per network.
func OpenAll(net *fabric.Network) []*Device {
	devs := make([]*Device, net.Nodes())
	for i := range devs {
		if net.Host(i) != nil {
			panic("verbs: OpenAll called twice for the same network")
		}
		devs[i] = Open(net, i)
		net.SetHost(i, devs[i])
	}
	installECN(net)
	return devs
}

func deviceAt(net *fabric.Network, node int) *Device {
	d, ok := net.Host(node).(*Device)
	if !ok {
		panic("verbs: network node has no verbs device; use OpenAll")
	}
	return d
}
