// Package verbs provides an InfiniBand-verbs-shaped RDMA API over the
// simulated fabric: devices, memory regions, completion queues, and Reliable
// Connection / Unreliable Datagram Queue Pairs supporting the Send, Receive,
// Read, and Write transport functions.
//
// The API mirrors the ibv_* interface closely enough that the paper's
// algorithms translate line for line: receive buffers must be posted before
// a Send arrives (RC retries after an RNR delay; UD drops silently), UD
// receive payloads land after a 40-byte GRH gap, one-sided Read/Write never
// involve the remote CPU, and every verb charges the calling Proc the
// calibrated CPU cost from the fabric profile.
package verbs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// GRHSize is the number of bytes reserved at the front of every UD receive
// buffer, as in real IB verbs (the Global Routing Header area).
const GRHSize = 40

// Exported error values returned by the posting verbs.
var (
	ErrSQFull       = errors.New("verbs: send queue full")
	ErrRQFull       = errors.New("verbs: receive queue full")
	ErrTooLong      = errors.New("verbs: message exceeds transport limit")
	ErrNotConnected = errors.New("verbs: RC queue pair not connected")
	ErrBadOp        = errors.New("verbs: operation not supported by transport")
	ErrOutOfRange   = errors.New("verbs: access outside memory region")
	// ErrQPError is returned by the posting verbs once the queue pair has
	// transitioned to the Error state; outstanding work has been flushed.
	ErrQPError = errors.New("verbs: queue pair in error state")
	// ErrPeerDown is returned by the posting verbs on an RC queue pair whose
	// peer the connection manager has declared dead (NotifyPeerDown): the
	// post fails immediately instead of burning the transport retry budget.
	ErrPeerDown = errors.New("verbs: peer declared down by connection manager")
)

// WCStatus is a work completion status, mirroring ibv_wc_status. The zero
// value is success, so completions constructed by healthy paths need no
// explicit status.
type WCStatus int

const (
	// WCSuccess marks a successfully completed work request.
	WCSuccess WCStatus = iota
	// WCRNRRetryExceeded marks a Send whose peer kept answering RNR NAK
	// (no posted receive) past the QP's rnr_retry budget.
	WCRNRRetryExceeded
	// WCRetryExceeded marks a work request whose transport-level retries
	// (lost packets, missing ACKs, dead peer) exceeded retry_cnt.
	WCRetryExceeded
	// WCFlushErr marks a work request flushed unexecuted because its QP
	// entered the Error state (IBV_WC_WR_FLUSH_ERR).
	WCFlushErr
	// WCPeerDown marks a work request flushed because the connection manager
	// declared the QP's peer dead (a disconnect/fatal async event in real
	// verbs); it is more diagnosable than the generic flush status.
	WCPeerDown
	// WCFenced marks a work request rejected at the responder because the
	// posting QP was connected under a stale boot epoch: the peer rebooted
	// since, and its memory must not be touched by pre-reboot writers. The
	// responder never executes the request (remote access error semantics).
	WCFenced
)

func (s WCStatus) String() string {
	switch s {
	case WCSuccess:
		return "success"
	case WCRNRRetryExceeded:
		return "RNR retry exceeded"
	case WCRetryExceeded:
		return "transport retry exceeded"
	case WCFlushErr:
		return "WR flushed"
	case WCPeerDown:
		return "peer down"
	case WCFenced:
		return "fenced by stale epoch"
	}
	return "unknown"
}

// QPState is the queue pair state: Ready (RTS) or Error.
type QPState int

const (
	// QPReady is the normal operating state (collapsing INIT/RTR/RTS).
	QPReady QPState = iota
	// QPError is entered on retry exhaustion; outstanding WRs are flushed
	// with WCFlushErr and further posts fail with ErrQPError.
	QPError
)

// Device is a per-node verbs context (the result of ibv_open_device).
type Device struct {
	net *fabric.Network
	// sim owns this device's events: the node's partition on a partitioned
	// network, the shared simulation otherwise. Every event that touches
	// device state executes on it; cross-device interactions route through
	// the fabric (see errorFrom, match, postWrite).
	sim     *sim.Simulation
	node    int
	nextQPN uint32
	nextKey uint32
	qps     map[uint32]*QP
	mrs     map[uint32]*MR

	registered     int64
	peakRegistered int64

	// memWake is broadcast whenever a one-sided Write (or Read-side buffer
	// fill) lands in this node's memory, so applications that poll plain
	// memory locations can block instead of spinning the scheduler.
	memWake *sim.Cond

	// mcast holds this node's multicast group attachments.
	mcast map[uint32][]*QP

	// deadPeers records nodes the connection manager has declared dead;
	// peerDownFns are the registered disconnect-event handlers, invoked in
	// registration order; peerUpFns mirror them for reconnect events.
	deadPeers   map[int]bool
	peerDownFns []func(peer int)
	peerUpFns   []func(peer int)

	// epoch is this device's boot incarnation, starting at 1. The connection
	// manager bumps it when the node reboots (its memory is gone); QPs
	// capture the responder's epoch at Connect and the responder fences work
	// requests carrying a stale one (see QP fencing in qp.go).
	epoch uint64

	// rl holds the active DCQCN rate limiters by local QPN (lossy tier
	// only); a QP with no entry transmits at line rate. cnpLast coalesces
	// CNP generation per remote flow (keyed by the sender's QP cache key).
	rl      map[uint32]*dcqcn
	cnpLast map[uint64]sim.Time

	stats DeviceStats
}

// DeviceStats counts verb-level activity on one device.
type DeviceStats struct {
	Posts, Polls    int64
	RNRRetries      int64
	UDNoRecvDrops   int64
	RemoteWrites    int64
	SendsCompleted  int64
	RecvsCompleted  int64
	ReadsCompleted  int64
	WritesCompleted int64
	// TransportRetries counts RC packets queued for retransmission after a
	// loss (injected or congestion tail drop); QPErrors counts queue pairs
	// that entered the Error state.
	TransportRetries int64
	QPErrors         int64
	// CNPsSent counts congestion notification packets this device generated
	// for ECN-marked arrivals; CNPsReceived counts CNPs applied to local
	// QPs; RateCuts counts the resulting multiplicative rate cuts.
	CNPsSent, CNPsReceived int64
	RateCuts               int64
	// QPsCreated counts CreateQP calls; the telemetry layer derives the
	// paper's Table 1 Queue Pair census from it.
	QPsCreated int64
	// StaleFenced counts work requests from stale-epoch Queue Pairs rejected
	// at this device before touching its memory; Reconnects counts RC
	// connections re-established after a peer-down event.
	StaleFenced int64
	Reconnects  int64
}

// Open returns the verbs context for the given node.
func Open(net *fabric.Network, node int) *Device {
	d := &Device{
		net:   net,
		node:  node,
		qps:   make(map[uint32]*QP),
		mrs:   make(map[uint32]*MR),
		mcast: make(map[uint32][]*QP),
		rl:    make(map[uint32]*dcqcn),
		epoch: 1,
	}
	d.sim = net.SimAt(node)
	d.memWake = d.sim.NewCond(fmt.Sprintf("memwake@%d", node))
	return d
}

// Node returns the fabric node id of this device.
func (d *Device) Node() int { return d.node }

// Sim returns the simulation owning this device's events — the node's
// partition when the network is partitioned across logical partitions, the
// shared simulation otherwise. Procs driving this device must run on it.
func (d *Device) Sim() *sim.Simulation { return d.sim }

// Network returns the underlying fabric.
func (d *Device) Network() *fabric.Network { return d.net }

// Stats returns a copy of the device counters.
func (d *Device) Stats() DeviceStats { return d.stats }

// PublishMetrics copies the device counters into the registry under
// "verbs.<metric>.node<i>" names plus "verbs.<metric>.total" aggregates.
// Publish into a fresh registry per run: counters accumulate.
func (d *Device) PublishMetrics(reg *telemetry.Registry) {
	for _, it := range []struct {
		name string
		v    int64
	}{
		{"posts", d.stats.Posts},
		{"polls", d.stats.Polls},
		{"rnr_retries", d.stats.RNRRetries},
		{"transport_retries", d.stats.TransportRetries},
		{"ud_no_recv_drops", d.stats.UDNoRecvDrops},
		{"remote_writes", d.stats.RemoteWrites},
		{"sends_completed", d.stats.SendsCompleted},
		{"recvs_completed", d.stats.RecvsCompleted},
		{"reads_completed", d.stats.ReadsCompleted},
		{"writes_completed", d.stats.WritesCompleted},
		{"qp_errors", d.stats.QPErrors},
		{"qps_created", d.stats.QPsCreated},
		{"cnps_sent", d.stats.CNPsSent},
		{"cnps_received", d.stats.CNPsReceived},
		{"rate_cuts", d.stats.RateCuts},
		{"stale_fenced", d.stats.StaleFenced},
		{"reconnects", d.stats.Reconnects},
	} {
		reg.Counter(fmt.Sprintf("verbs.%s.node%d", it.name, d.node)).Add(it.v)
		reg.Counter("verbs." + it.name + ".total").Add(it.v)
	}
	reg.Gauge(fmt.Sprintf("verbs.registered_bytes.node%d", d.node)).Set(float64(d.registered))
	reg.Gauge(fmt.Sprintf("verbs.peak_registered_bytes.node%d", d.node)).Set(float64(d.peakRegistered))
}

func (d *Device) prof() *fabric.Profile { return &d.net.Prof }

// tr returns the tracer for events executing on this device's partition —
// the node's shard when partitioned, the shared tracer otherwise; nil
// (tracing disabled) is safe to emit on, so callers never branch.
func (d *Device) tr() *telemetry.Tracer { return d.net.TracerAt(d.node) }

// MR is a registered memory region. Buf is the pinned memory itself; remote
// peers address it by (RKey, offset).
type MR struct {
	dev  *Device
	Buf  []byte
	LKey uint32
	RKey uint32
	// pooled marks regions drawn from the registered-buffer pool
	// (AllocMRNoCost); Deregister and RecycleMRs return them to it.
	pooled bool
}

// RegisterMR pins and registers buf, charging p the registration cost.
func (d *Device) RegisterMR(p *sim.Proc, buf []byte) *MR {
	p.Sleep(d.prof().MemRegBase + sim.Duration(float64(len(buf))*d.prof().MemRegPerByte))
	return d.RegisterMRNoCost(buf)
}

// RegisterMRNoCost registers buf without charging virtual time; it is meant
// for tests and for setup phases whose cost is accounted elsewhere.
func (d *Device) RegisterMRNoCost(buf []byte) *MR {
	d.nextKey++
	mr := &MR{dev: d, Buf: buf, LKey: d.nextKey, RKey: d.nextKey}
	d.mrs[mr.RKey] = mr
	d.registered += int64(len(buf))
	if d.registered > d.peakRegistered {
		d.peakRegistered = d.registered
	}
	return mr
}

// Deregister unpins the region, charging p the deregistration cost.
func (m *MR) Deregister(p *sim.Proc) {
	p.Sleep(m.dev.prof().MemDeregBase)
	delete(m.dev.mrs, m.RKey)
	m.dev.registered -= int64(len(m.Buf))
	if m.pooled {
		m.pooled = false
		putBuf(m.Buf)
		m.Buf = nil
	}
}

// RegisteredBytes returns the bytes currently registered on this device.
func (d *Device) RegisteredBytes() int64 { return d.registered }

// PeakRegisteredBytes returns the high-water mark of registered bytes.
func (d *Device) PeakRegisteredBytes() int64 { return d.peakRegistered }

// AttachMulticast joins qp (which must be UD) to the multicast group mgid,
// like ibv_attach_mcast. Datagrams sent to the group consume posted
// receives exactly like unicast UD sends.
func (d *Device) AttachMulticast(qp *QP, mgid uint32) error {
	if qp.cfg.Type != fabric.UD {
		return ErrBadOp
	}
	d.mcast[mgid] = append(d.mcast[mgid], qp)
	return nil
}

// DetachMulticast removes qp from the group.
func (d *Device) DetachMulticast(qp *QP, mgid uint32) {
	qps := d.mcast[mgid]
	for i, q := range qps {
		if q == qp {
			d.mcast[mgid] = append(qps[:i], qps[i+1:]...)
			return
		}
	}
}

// KickMemWaiters wakes every Proc blocked in WaitMemChange; see CQ.Kick.
func (d *Device) KickMemWaiters() { d.memWake.Broadcast() }

// Epoch returns this device's boot incarnation (1 at open).
func (d *Device) Epoch() uint64 { return d.epoch }

// BumpEpoch advances the device's boot epoch. The cluster's connection
// manager calls it when the node's port returns from a reboot: the node's
// memory is a fresh incarnation, and any Queue Pair still connected under
// the old epoch is fenced at this responder before it can touch it.
func (d *Device) BumpEpoch() {
	d.epoch++
	// Wake memory pollers: their world changed even though no write landed.
	d.memWake.Broadcast()
}

// PeerDown reports whether the connection manager has declared node dead.
func (d *Device) PeerDown(node int) bool { return d.deadPeers[node] }

// OnPeerUp registers a connection-manager reconnect handler, invoked from
// NotifyPeerUp in registration order from scheduler context; handlers must
// not block.
func (d *Device) OnPeerUp(fn func(peer int)) {
	d.peerUpFns = append(d.peerUpFns, fn)
}

// NotifyPeerUp is the connection-manager reconnect event: it clears the
// peer's dead mark so posting verbs stop failing fast with ErrPeerDown, and
// invokes the registered OnPeerUp handlers. Queue Pairs errored by the
// earlier NotifyPeerDown stay errored — reconnection rebuilds fresh pairs
// (see ReconnectRCPair). Idempotent; runs in scheduler context.
func (d *Device) NotifyPeerUp(peer int) {
	if !d.deadPeers[peer] {
		return
	}
	delete(d.deadPeers, peer)
	d.tr().Instant(d.sim.Now(), telemetry.EvPeerUp, int32(d.node), 0, int64(peer), 0)
	for _, fn := range d.peerUpFns {
		fn(peer)
	}
	d.memWake.Broadcast()
}

// OnPeerDown registers a connection-manager disconnect handler, invoked once
// per dead peer in registration order from scheduler context; handlers must
// not block.
func (d *Device) OnPeerDown(fn func(peer int)) {
	d.peerDownFns = append(d.peerDownFns, fn)
}

// NotifyPeerDown is the connection-manager disconnect event: it marks peer
// dead, transitions every connected RC queue pair bound to it into the Error
// state (outstanding work flushes with WCPeerDown), and invokes the
// registered OnPeerDown handlers. Subsequent posts on those QPs — and on any
// QP later connected to peer — fail fast with ErrPeerDown. It is idempotent
// and runs in scheduler context.
func (d *Device) NotifyPeerDown(peer int) {
	if d.deadPeers[peer] {
		return
	}
	if d.deadPeers == nil {
		d.deadPeers = make(map[int]bool)
	}
	d.deadPeers[peer] = true
	d.tr().Instant(d.sim.Now(), telemetry.EvPeerDown, int32(d.node), 0, int64(peer), 0)
	// QPNs ascend from 1; iterating them in order keeps teardown (and thus
	// the flush-completion order) deterministic across runs.
	for qpn := uint32(1); qpn <= d.nextQPN; qpn++ {
		qp := d.qps[qpn]
		if qp == nil || qp.cfg.Type != fabric.RC || !qp.connected || qp.peerNode != peer {
			continue
		}
		qp.forceError(WCPeerDown)
	}
	for _, fn := range d.peerDownFns {
		fn(peer)
	}
	d.memWake.Broadcast()
}

// WaitMemChange blocks p until a remote one-sided operation modifies this
// node's memory, or until the timeout elapses. It models an application
// spin-polling a plain memory location; each wakeup charges one poll cost.
// It returns false on timeout. A non-positive timeout waits indefinitely,
// which lets the simulator's deadlock detector catch protocol bugs.
func (d *Device) WaitMemChange(p *sim.Proc, timeout sim.Duration) bool {
	ok := true
	if timeout <= 0 {
		d.memWake.Wait(p)
	} else {
		ok = d.memWake.WaitTimeout(p, timeout)
	}
	p.Sleep(d.prof().PollCost)
	return ok
}

// Opcode identifies a work request or completion type.
type Opcode int

const (
	OpSend Opcode = iota
	OpRecv
	OpRead
	OpWrite
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpRead:
		return "READ"
	default:
		return "WRITE"
	}
}

// CQE is a completion queue entry.
type CQE struct {
	QPN   uint32
	WRID  uint64
	Op    Opcode
	Bytes int
	// Status reports how the work request completed; the zero value is
	// WCSuccess. Consumers must check it before trusting Bytes or Imm.
	Status WCStatus
	// Imm carries the immediate data of the Send that produced a receive
	// completion, when HasImm is set.
	Imm    uint32
	HasImm bool
	// SrcNode and SrcQPN identify the sender for receive completions (on UD
	// they come from the datagram's address header).
	SrcNode int
	SrcQPN  uint32
}

// Err returns nil for successful completions and a descriptive error for
// failed ones.
func (e CQE) Err() error {
	if e.Status == WCSuccess {
		return nil
	}
	return fmt.Errorf("verbs: %s wr %d on qp %d failed: %s", e.Op, e.WRID, e.QPN, e.Status)
}

// CQ is a completion queue.
type CQ struct {
	dev     *Device
	cap     int
	entries []CQE
	cond    *sim.Cond
}

// CreateCQ returns a completion queue that can hold at most capacity
// entries; overflowing it panics, as a CQ overrun is a protocol bug.
func (d *Device) CreateCQ(capacity int) *CQ {
	return &CQ{
		dev:  d,
		cap:  capacity,
		cond: d.sim.NewCond(fmt.Sprintf("cq@%d", d.node)),
	}
}

func (cq *CQ) push(e CQE) {
	if len(cq.entries) >= cq.cap {
		panic(fmt.Sprintf("verbs: CQ overrun on node %d (cap %d)", cq.dev.node, cq.cap))
	}
	cq.entries = append(cq.entries, e)
	cq.cond.Broadcast()
}

// pushFlush delivers an error completion generated while flushing a QP.
// Flushes may momentarily exceed the CQ capacity (the whole receive queue
// errors out at once); real hardware reports these through the same CQ, and
// panicking here would turn a survivable fault into a crash.
func (cq *CQ) pushFlush(e CQE) {
	cq.entries = append(cq.entries, e)
	cq.cond.Broadcast()
}

// Poll retrieves up to len(dst) completions without blocking, charging one
// poll cost. It returns the number of entries written.
func (cq *CQ) Poll(p *sim.Proc, dst []CQE) int {
	p.Sleep(cq.dev.prof().PollCost)
	cq.dev.stats.Polls++
	n := copy(dst, cq.entries)
	cq.entries = cq.entries[n:]
	if len(cq.entries) == 0 {
		cq.entries = nil
	}
	if n > 0 {
		// Empty polls are the receive loop's idle spin; only fruitful ones
		// carry timeline information worth a trace slot.
		cq.dev.tr().Instant(cq.dev.sim.Now(), telemetry.EvCQPoll, int32(cq.dev.node), 0, int64(n), 0)
	}
	return n
}

// WaitPoll blocks until at least one completion is available, then behaves
// like Poll. Blocking models a spin-poll loop whose idle iterations are not
// charged (the paper reports receive-side threads up to 90% idle).
func (cq *CQ) WaitPoll(p *sim.Proc, dst []CQE) int {
	for len(cq.entries) == 0 {
		cq.cond.Wait(p)
	}
	return cq.Poll(p, dst)
}

// WaitPollTimeout is WaitPoll with a deadline; it returns 0 on timeout.
func (cq *CQ) WaitPollTimeout(p *sim.Proc, dst []CQE, timeout sim.Duration) int {
	if len(cq.entries) == 0 {
		if !cq.cond.WaitTimeout(p, timeout) && len(cq.entries) == 0 {
			return 0
		}
	}
	for len(cq.entries) == 0 {
		// A spurious wake; keep waiting within a fresh timeout window.
		if !cq.cond.WaitTimeout(p, timeout) && len(cq.entries) == 0 {
			return 0
		}
	}
	return cq.Poll(p, dst)
}

// WaitNonEmpty blocks p until the CQ holds at least one completion or the
// timeout elapses, without consuming anything. It returns false on timeout.
// Use it in loops that must also observe conditions other than the CQ.
func (cq *CQ) WaitNonEmpty(p *sim.Proc, timeout sim.Duration) bool {
	if len(cq.entries) > 0 {
		return true
	}
	if timeout <= 0 {
		cq.cond.Wait(p)
		return true
	}
	return cq.cond.WaitTimeout(p, timeout)
}

// Kick wakes every Proc blocked on this CQ without delivering anything.
// Protocol layers use it when an end-of-stream predicate flips so waiters
// re-check immediately instead of after their wait quantum.
func (cq *CQ) Kick() { cq.cond.Broadcast() }

// Len returns the number of queued completions.
func (cq *CQ) Len() int { return len(cq.entries) }

// PutUint64 and ReadUint64 are helpers for protocols that poll plain
// memory words updated by remote writes (credit counters, circular-queue
// slots).
func PutUint64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func ReadUint64(b []byte) uint64   { return binary.LittleEndian.Uint64(b) }
func PutUint32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func ReadUint32(b []byte) uint32   { return binary.LittleEndian.Uint32(b) }
