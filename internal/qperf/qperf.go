// Package qperf reimplements the qperf bandwidth probe the paper uses as a
// peak-throughput reference: a sender that registers a single buffer and
// posts RC Sends in a tight loop, and a receiver that re-posts Receives and
// never touches the transmitted data. The result brackets what any shuffle
// algorithm can hope to achieve, but — as the paper notes — its design
// assumptions (one buffer, no consumption) preclude direct comparison.
package qperf

import (
	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

// Result is one qperf measurement.
type Result struct {
	Bytes   int64
	Elapsed sim.Duration
}

// GiBps returns the measured bandwidth in GiB/s.
func (r Result) GiBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / (1 << 30)
}

// Run measures RC Send/Receive bandwidth between two fresh nodes on the
// given profile, transferring total bytes in msgSize messages.
func Run(prof fabric.Profile, msgSize int, total int64) Result {
	s := sim.New(99)
	net := fabric.New(s, prof, 2)
	devs := verbs.OpenAll(net)

	const depth = 64
	count := int(total / int64(msgSize))
	var res Result

	scq := devs[0].CreateCQ(2*depth + 8)
	rcq := devs[1].CreateCQ(2*depth + 8)
	sqp := devs[0].CreateQP(verbs.QPConfig{Type: fabric.RC, SendCQ: scq, RecvCQ: scq, MaxSend: depth, MaxRecv: 4})
	rqp := devs[1].CreateQP(verbs.QPConfig{Type: fabric.RC, SendCQ: rcq, RecvCQ: rcq, MaxSend: 4, MaxRecv: 2 * depth})
	mustNil(sqp.Connect(1, rqp.QPN()))
	mustNil(rqp.Connect(0, sqp.QPN()))

	sbuf := devs[0].RegisterMRNoCost(make([]byte, msgSize))
	rbuf := devs[1].RegisterMRNoCost(make([]byte, 2*depth*msgSize))

	s.Spawn("qperf-recv", func(p *sim.Proc) {
		for i := 0; i < 2*depth; i++ {
			mustNil(rqp.PostRecv(p, verbs.RecvWR{ID: uint64(i), MR: rbuf, Offset: i * msgSize, Len: msgSize}))
		}
		var es [16]verbs.CQE
		seen := 0
		var start sim.Time
		for seen < count {
			n := rcq.WaitPoll(p, es[:])
			if seen == 0 && n > 0 {
				start = p.Now()
			}
			for _, c := range es[:n] {
				seen++
				res.Bytes += int64(msgSize)
				slot := int(c.WRID)
				mustNil(rqp.PostRecv(p, verbs.RecvWR{ID: uint64(slot), MR: rbuf, Offset: slot * msgSize, Len: msgSize}))
			}
		}
		res.Elapsed = p.Now().Sub(start)
	})
	s.Spawn("qperf-send", func(p *sim.Proc) {
		var es [16]verbs.CQE
		for i := 0; i < count; {
			// Reap completions as they pile up, as the real tool's send
			// loop does.
			for scq.Len() >= depth {
				scq.Poll(p, es[:])
			}
			err := sqp.PostSend(p, verbs.SendWR{Op: verbs.OpSend, MR: sbuf, Len: msgSize})
			switch err {
			case nil:
				i++
			case verbs.ErrSQFull:
				scq.WaitPoll(p, es[:])
			default:
				panic(err)
			}
		}
		for sqp.Outstanding() > 0 {
			scq.WaitPoll(p, es[:])
		}
	})
	if err := s.Run(); err != nil {
		panic(err)
	}
	s.Shutdown()
	return res
}

func mustNil(err error) {
	if err != nil {
		panic(err)
	}
}
