package qperf

import (
	"testing"

	"rshuffle/internal/fabric"
)

func TestMessageSizeDependence(t *testing.T) {
	small := Run(fabric.EDR(), 4<<10, 256<<20)
	large := Run(fabric.EDR(), 64<<10, 256<<20)
	if small.GiBps() >= large.GiBps() {
		t.Fatalf("4KiB (%.2f) should be slower than 64KiB (%.2f) due to per-WQE costs",
			small.GiBps(), large.GiBps())
	}
}

func TestProfileOrdering(t *testing.T) {
	fdr := Run(fabric.FDR(), 64<<10, 256<<20)
	edr := Run(fabric.EDR(), 64<<10, 256<<20)
	if edr.GiBps() <= fdr.GiBps() {
		t.Fatalf("EDR (%.2f) must beat FDR (%.2f)", edr.GiBps(), fdr.GiBps())
	}
	if r := edr.GiBps() / fdr.GiBps(); r < 1.6 || r > 2.2 {
		t.Fatalf("EDR/FDR ratio = %.2f, want ~1.9 (100/56 Gb/s)", r)
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(fabric.EDR(), 64<<10, 64<<20)
	b := Run(fabric.EDR(), 64<<10, 64<<20)
	if a != b {
		t.Fatalf("qperf is not deterministic: %+v vs %+v", a, b)
	}
}
