package cluster_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"rshuffle/internal/cluster"
	"rshuffle/internal/fabric"
	"rshuffle/internal/ipoib"
	"rshuffle/internal/mpi"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/telemetry"
)

// Serial-vs-parallel equivalence: the conservative PDES engine promises that
// a given seed produces byte-identical outputs at every logical-partition
// count — ParallelLPs 1 is the reference serial ordering of the same engine,
// and 2 and 8 exercise the windowed parallel path with multi-node and
// single-node partitions respectively. The fingerprint covers everything the
// repository treats as a regression oracle: the full benchmark result, the
// total event count, the metrics registry report, and the merged trace
// stream.

// goMaxProcs forces the true parallel wide-window path even on a single-core
// host (runWide degrades to serial LP order when GOMAXPROCS is 1) and
// restores the previous value on cleanup.
func goMaxProcs(t testing.TB, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// pdesFingerprint runs one receive-throughput query on a PDES cluster and
// renders every observable output as one string.
func pdesFingerprint(t *testing.T, alg shuffle.Algorithm, lps int, chaos bool) string {
	t.Helper()
	const nodes, threads, seed = 8, 2, 42
	c := cluster.NewWithOptions(fabric.FDR(), nodes, threads, seed,
		cluster.SimOptions{ParallelLPs: lps})
	c.EnableTracing(1 << 13)
	if chaos {
		// The chaos harness's crash-stream scenario: node 1's NIC dies shortly
		// after streaming starts, the heartbeat detector convicts it, and the
		// query fails over with ErrPeerFailed. A crash is a pure time-window
		// fault, so it is PDES-safe; the outcome must be identical at every
		// LP count.
		c.InstallDetector(cluster.DetectorConfig{})
		c.AtBenchStart(func() {
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultCrash, To: 1,
				Start: c.Sim.Now().Add(40 * time.Microsecond),
			})
		})
	}
	res, err := c.RunBench(cluster.BenchOpts{
		Factory:     cluster.RDMAProvider(alg.Config(threads)),
		RowsPerNode: 2048,
	})
	if err != nil {
		t.Fatalf("%s lps=%d: %v", alg.Name, lps, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "result: %+v\n", res)
	fmt.Fprintf(&b, "events: %d\n", c.Events())
	if err := telemetry.WriteReport(&b, c.Metrics()); err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Trace() {
		fmt.Fprintf(&b, "%+v\n", e)
	}
	return b.String()
}

// diffLine reports the first line at which two fingerprints diverge, with a
// little context, so a determinism break is diagnosable from the test log.
func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  ref: %s\n  got: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestPDESEquivalenceMatrix runs all six Table 1 algorithms, plus one
// crash-stop chaos cell, at 1, 2, and 8 logical partitions and requires the
// complete output fingerprint to be byte-identical across LP counts.
func TestPDESEquivalenceMatrix(t *testing.T) {
	goMaxProcs(t, 4)
	cells := make([]struct {
		name  string
		alg   shuffle.Algorithm
		chaos bool
	}, 0, len(shuffle.Algorithms)+1)
	for _, alg := range shuffle.Algorithms {
		cells = append(cells, struct {
			name  string
			alg   shuffle.Algorithm
			chaos bool
		}{alg.Name, alg, false})
	}
	cells = append(cells, struct {
		name  string
		alg   shuffle.Algorithm
		chaos bool
	}{"crash-stream", shuffle.Algorithms[0], true})

	for _, cell := range cells {
		cell := cell
		t.Run(strings.ReplaceAll(cell.name, "/", "_"), func(t *testing.T) {
			ref := pdesFingerprint(t, cell.alg, 1, cell.chaos)
			for _, lps := range []int{2, 8} {
				got := pdesFingerprint(t, cell.alg, lps, cell.chaos)
				if got != ref {
					t.Fatalf("%s: lps=%d diverges from lps=1 reference\n%s",
						cell.name, lps, diffLine(ref, got))
				}
			}
		})
	}
}

// TestSameInstantTieEquivalence is the regression cell for the same-instant
// delivery-order leak: on the EDR profile with 14 threads and 16 KiB
// buffers, two senders routinely finish serializing messages toward one
// receiver at exactly the same instant. Which barrier delivers each arrival
// depends on the window bounds — which move with the LP count — so before
// the wheel re-sorted same-instant deliveries by their (source, sequence)
// key, the receiver processed the tie in barrier order and the ACK
// completions swapped between LP counts (first seen as a one-cell Fig. 9
// divergence at this exact configuration). The matrix's FDR/2-thread cells
// never produce such ties, so this cell guards the regime separately.
// (Deliberately outside the ^TestPDES -race smoke: the cell moves ~50 MiB
// per node and would dominate that budget.)
func TestSameInstantTieEquivalence(t *testing.T) {
	goMaxProcs(t, 4)
	prof := fabric.EDR()
	prof.UDReorderProb = 0
	run := func(lps int) string {
		cfg := shuffle.Algorithm{Name: "MEMQ/SR", Impl: shuffle.MQSR, ME: true}.Config(prof.Threads)
		cfg.BufSize = 16 << 10
		c := cluster.NewWithOptions(prof, 8, prof.Threads, 143,
			cluster.SimOptions{ParallelLPs: lps})
		res, err := c.RunBench(cluster.BenchOpts{
			Factory: cluster.RDMAProvider(cfg), RowsPerNode: 400000,
		})
		if err != nil {
			t.Fatalf("lps=%d: %v", lps, err)
		}
		if res.Err != nil {
			t.Fatalf("lps=%d: %v", lps, res.Err)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "result: %+v\n", res)
		fmt.Fprintf(&b, "events: %d\n", c.Events())
		if err := telemetry.WriteReport(&b, c.Metrics()); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	ref := run(1)
	if got := run(2); got != ref {
		t.Fatalf("lps=2 diverges from lps=1 reference\n%s", diffLine(ref, got))
	}
}

// TestPDESMatchesClassicResult pins the relationship between the PDES engine
// and the classic single-simulation engine: the PDES path inserts explicit
// route hops for control interactions, so virtual-time results may differ by
// those latencies, but the query must produce the same data movement — rows
// and bytes received per node — and complete without error on both engines.
func TestPDESMatchesClassicResult(t *testing.T) {
	goMaxProcs(t, 4)
	run := func(lps int) *cluster.BenchResult {
		c := cluster.NewWithOptions(fabric.FDR(), 8, 2, 42,
			cluster.SimOptions{ParallelLPs: lps})
		res, err := c.RunBench(cluster.BenchOpts{
			Factory:     cluster.RDMAProvider(shuffle.Config{Impl: shuffle.MQSR, Endpoints: 2}),
			RowsPerNode: 2048,
		})
		if err != nil {
			t.Fatalf("lps=%d: %v", lps, err)
		}
		if res.Err != nil {
			t.Fatalf("lps=%d: %v", lps, res.Err)
		}
		return res
	}
	classic, pdes := run(0), run(8)
	for a := range classic.RowsPerNode {
		if classic.RowsPerNode[a] != pdes.RowsPerNode[a] ||
			classic.BytesPerNode[a] != pdes.BytesPerNode[a] {
			t.Fatalf("node %d: classic %d rows/%d B, pdes %d rows/%d B", a,
				classic.RowsPerNode[a], classic.BytesPerNode[a],
				pdes.RowsPerNode[a], pdes.BytesPerNode[a])
		}
	}
}

// TestBaselineTransportEquivalence guards the non-RDMA baselines (MPI,
// IPoIB) on the partitioned engine. Both libraries block worker Procs on
// Mutex/Cond primitives, and waking a waiter pushes a dispatch event onto
// the *primitive's* simulation — so a primitive homed on the control
// partition (as both once were) schedules wakeups on LP 0 at LP 0's clock
// for Procs that live elsewhere, leaving the waiter's home clock behind and
// its next Sleep wake below the window start (caught by the Route bound
// panic on EDR fig08 under -lps). The MPI cell reproduces the original
// failure: EDR at a row count that keeps all rendezvous slots and the
// library lock contended. (Deliberately outside the ^TestPDES -race smoke:
// the MPI cell moves ~40 MiB per node and would dominate that budget.)
func TestBaselineTransportEquivalence(t *testing.T) {
	goMaxProcs(t, 4)
	prof := fabric.EDR()
	prof.UDReorderProb = 0
	bufTuples := (shuffle.Config{Impl: shuffle.MQSR}.Defaulted().BufSize - shuffle.HeaderSize) / 16
	cells := []struct {
		name    string
		factory cluster.ProviderFactory
		rows    int
	}{
		{"MPI", cluster.MPIProvider(mpi.Config{}), 6 * prof.Threads * 8 * bufTuples},
		{"IPoIB", cluster.IPoIBProvider(ipoib.Config{}), 100000},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			run := func(lps int) string {
				c := cluster.NewWithOptions(prof, 8, 0, 106,
					cluster.SimOptions{ParallelLPs: lps})
				res, err := c.RunBench(cluster.BenchOpts{
					Factory: cell.factory, RowsPerNode: cell.rows,
				})
				if err != nil {
					t.Fatalf("lps=%d: %v", lps, err)
				}
				if res.Err != nil {
					t.Fatalf("lps=%d: %v", lps, res.Err)
				}
				var b strings.Builder
				fmt.Fprintf(&b, "result: %+v\n", res)
				fmt.Fprintf(&b, "events: %d\n", c.Events())
				if err := telemetry.WriteReport(&b, c.Metrics()); err != nil {
					t.Fatal(err)
				}
				return b.String()
			}
			ref := run(1)
			if got := run(4); got != ref {
				t.Fatalf("lps=4 diverges from lps=1 reference\n%s", diffLine(ref, got))
			}
		})
	}
}
