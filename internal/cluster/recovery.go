package cluster

import (
	"errors"
	"fmt"

	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// ErrRecoveryExhausted means a query kept failing until its RecoveryPolicy
// gave up (restart budget or deadline spent). The last attempt's transport
// error is wrapped for diagnosis.
var ErrRecoveryExhausted = errors.New("cluster: recovery exhausted")

// RecoveryPolicy governs how the harness reacts to a failed query fragment.
// Any transport error — UD data loss (§4.4.2), RNR or transport retry
// exhaustion erroring a Queue Pair, an endpoint stall — aborts the attempt,
// and the query restarts from scratch on a fresh cluster after an
// exponential virtual-time backoff, up to MaxRestarts times. Simulation
// failures (a genuine deadlock) are not recoverable and surface directly.
type RecoveryPolicy struct {
	// MaxRestarts bounds how many restarts follow the initial attempt.
	MaxRestarts int
	// BaseBackoff is the virtual-time delay charged before the first
	// restart; every further restart doubles it. Zero disables backoff.
	BaseBackoff sim.Duration
	// MaxBackoff caps the doubling; zero leaves it uncapped.
	MaxBackoff sim.Duration
	// Deadline bounds the total virtual time spent across attempts and
	// backoffs: once exceeded, no further restart is scheduled. Zero means
	// no deadline.
	Deadline sim.Duration
}

// Attempt records one try of the query under a RecoveryPolicy.
type Attempt struct {
	// Backoff is the virtual-time delay charged before this attempt.
	Backoff sim.Duration
	// Elapsed is the attempt's query response time.
	Elapsed sim.Duration
	// Err is the attempt's transport error; nil for a successful attempt.
	Err error
	// Membership lists the original node ids the attempt ran on. Plain
	// RecoveryPolicy runs leave it nil (full membership every attempt);
	// MembershipRecovery shrinks it as the failure detector declares nodes
	// dead.
	Membership []int
}

// RecoveryResult reports a query run under a RecoveryPolicy.
type RecoveryResult struct {
	// BenchResult holds the final attempt's metrics (successful or not).
	*BenchResult
	// Restarts is the number of restarts performed.
	Restarts int
	// Attempts lists every attempt in order, including the failures.
	Attempts []Attempt
	// TotalVirtual is the virtual time spent across all attempts and
	// backoffs. Each attempt runs on its own single-use Simulation, so this
	// is the accounting sum, not one clock reading.
	TotalVirtual sim.Duration
	// Detections and MaxDetect aggregate the failure detector across all
	// attempts (MembershipRecovery only): total suspicion events and the
	// worst crash-to-suspicion latency.
	Detections int
	MaxDetect  sim.Duration
	// PartitionsKept counts the (source, destination) partitions that
	// restart attempts skipped re-streaming because the destination already
	// held them complete from an earlier attempt; PartitionsRestreamed
	// counts the partitions restarts streamed again. A full restart of an
	// n-node query re-streams n*n partitions per attempt.
	PartitionsKept, PartitionsRestreamed int
}

// PublishMetrics copies the recovery run's aggregates into the registry
// under "recovery.*" names, so fault experiments report through the same
// channel as the data-path counters.
func (r *RecoveryResult) PublishMetrics(reg *telemetry.Registry) {
	reg.Counter("recovery.restarts").Add(int64(r.Restarts))
	reg.Counter("recovery.attempts").Add(int64(len(r.Attempts)))
	reg.Counter("recovery.fd_detections").Add(int64(r.Detections))
	reg.Gauge("recovery.fd_max_detect_us").SetMax(float64(r.MaxDetect) / 1e3)
	reg.Gauge("recovery.total_virtual_ms").SetMax(float64(r.TotalVirtual) / 1e6)
	reg.Counter("recovery.partitions_kept").Add(int64(r.PartitionsKept))
	reg.Counter("recovery.partitions_restreamed").Add(int64(r.PartitionsRestreamed))
}

// backoff returns the delay before restart number restart (0-based).
func (pol RecoveryPolicy) backoff(restart int) sim.Duration {
	if pol.BaseBackoff <= 0 {
		return 0
	}
	if restart > 32 {
		restart = 32 // avoid shift overflow; long past any real cap
	}
	b := pol.BaseBackoff << uint(restart)
	if pol.MaxBackoff > 0 && b > pol.MaxBackoff {
		b = pol.MaxBackoff
	}
	return b
}

// Run executes the workload under the policy. mk builds a fresh cluster for
// the given attempt number (a Simulation is single-use, so every attempt
// needs its own); fault-injection harnesses use the attempt number to model
// transient versus persistent faults. The returned error is nil on eventual
// success, wraps ErrRecoveryExhausted when the policy gives up, and is the
// raw simulation error (with a partial result) when a run fails outright.
func (pol RecoveryPolicy) Run(mk func(attempt int) *Cluster, opts BenchOpts) (*RecoveryResult, error) {
	r := &RecoveryResult{}
	var backoff sim.Duration
	for attempt := 0; ; attempt++ {
		res, err := mk(attempt).RunBench(opts)
		if err != nil {
			// The simulation itself failed (e.g. an undetected protocol
			// deadlock). Restarting cannot help; report it as terminal.
			r.Restarts = len(r.Attempts)
			return r, err
		}
		r.BenchResult = res
		r.TotalVirtual += res.Elapsed
		r.Attempts = append(r.Attempts, Attempt{Backoff: backoff, Elapsed: res.Elapsed, Err: res.Err})
		r.Restarts = attempt
		if res.Err == nil {
			return r, nil
		}
		backoff, err = pol.next(r, attempt, res.Err)
		if err != nil {
			return r, err
		}
	}
}

// next decides whether a further restart is allowed after failed attempt
// number attempt. The deadline is checked BEFORE the backoff is charged or
// the next attempt starts: a restart whose backoff alone would overrun the
// deadline is never scheduled, so TotalVirtual stays within the budget
// instead of overshooting by one backoff plus one attempt.
func (pol RecoveryPolicy) next(r *RecoveryResult, attempt int, cause error) (sim.Duration, error) {
	if attempt >= pol.MaxRestarts {
		return 0, fmt.Errorf("%w after %d attempt(s): %v",
			ErrRecoveryExhausted, attempt+1, cause)
	}
	b := pol.backoff(attempt)
	if pol.Deadline > 0 && r.TotalVirtual+b >= pol.Deadline {
		return 0, fmt.Errorf("%w: deadline %v spent after %d attempt(s): %v",
			ErrRecoveryExhausted, pol.Deadline, attempt+1, cause)
	}
	r.TotalVirtual += b
	return b, nil
}

// MembershipRecovery is the crash-aware recovery policy: every attempt runs
// with a heartbeat failure detector armed, and when the detector declares
// nodes dead the next attempt re-plans the query over the N-1 survivors
// instead of retrying the full membership against a node that will never
// answer.
//
// When the membership is unchanged between attempts — the transient-fault
// case: a reboot or a healed partition, where the detector suspects but
// never convicts — restarts are partial: the per-partition progress
// watermarks of the failed attempt (BenchResult.Progress) identify the
// (source, destination) streams whose end-of-stream marker was delivered,
// and the next attempt skips re-streaming those. A destination whose boot
// epoch advanced mid-attempt lost its memory, so its watermarks are
// discarded and everything it held is re-streamed. A membership change
// re-hashes every partition, so it always forces a full re-stream.
type MembershipRecovery struct {
	Policy   RecoveryPolicy
	Detector DetectorConfig
}

// keptPart is the carried payload of one complete (source, destination)
// partition: the rows and bytes the destination already holds.
type keptPart struct {
	rows, bytes int64
}

// Run executes the workload with membership-aware restarts. mk builds a
// fresh cluster of the given size for each attempt (attempt 0 always gets n
// nodes); opts.GroupsFn, when set, re-plans the transmission pattern for
// the shrunken cluster. The error contract matches RecoveryPolicy.Run.
func (mr MembershipRecovery) Run(n int, mk func(attempt, members int) *Cluster, opts BenchOpts) (*RecoveryResult, error) {
	pol := mr.Policy
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	// kept maps an {original src, original dst} pair to the payload the
	// destination retains from a completed stream of an earlier attempt.
	kept := make(map[[2]int]keptPart)
	r := &RecoveryResult{}
	var backoff sim.Duration
	for attempt := 0; ; attempt++ {
		aOpts := opts
		aOpts.SkipTo = skipMatrix(kept, members)
		if attempt > 0 {
			nk := countSkips(aOpts.SkipTo)
			r.PartitionsKept += nk
			r.PartitionsRestreamed += len(members)*len(members) - nk
		}
		c := mk(attempt, len(members))
		fd := c.InstallDetector(mr.Detector)
		res, err := c.RunBench(aOpts)
		if err != nil {
			r.Restarts = len(r.Attempts)
			return r, err
		}
		// Fold the partitions this attempt skipped back into its totals, so
		// a partial restart reports the same delivered rows and bytes as the
		// fault-free run.
		for ld, dorig := range members {
			for _, sorig := range members {
				if k, ok := kept[[2]int{sorig, dorig}]; ok && ld < len(res.RowsPerNode) {
					res.RowsPerNode[ld] += k.rows
					res.BytesPerNode[ld] += k.bytes
				}
			}
		}
		r.BenchResult = res
		r.TotalVirtual += res.Elapsed
		r.Attempts = append(r.Attempts, Attempt{
			Backoff: backoff, Elapsed: res.Elapsed, Err: res.Err,
			Membership: append([]int(nil), members...),
		})
		r.Restarts = attempt
		r.Detections += fd.Detections
		if fd.MaxDetectionLatency > r.MaxDetect {
			r.MaxDetect = fd.MaxDetectionLatency
		}
		if res.Err == nil {
			return r, nil
		}
		harvestKept(kept, res, members)
		// Shrink the membership by the nodes a majority suspects. The
		// detector indexes this attempt's cluster; map back to original ids.
		if dead := fd.Dead(); len(dead) > 0 {
			gone := make(map[int]bool, len(dead))
			for _, local := range dead {
				gone[local] = true
			}
			var next []int
			for local, orig := range members {
				if !gone[local] {
					next = append(next, orig)
				}
			}
			members = next
			// Fewer groups re-hash every tuple to a new destination: the
			// retained partitions no longer match the plan, so the shrunken
			// attempt re-streams everything.
			kept = make(map[[2]int]keptPart)
		}
		if len(members) == 0 {
			return r, fmt.Errorf("%w: no surviving members after %d attempt(s): %v",
				ErrRecoveryExhausted, attempt+1, res.Err)
		}
		backoff, err = pol.next(r, attempt, res.Err)
		if err != nil {
			return r, err
		}
	}
}

// skipMatrix projects the kept-partition set onto the attempt's local node
// ids: row src lists the destinations sender src must not re-stream. It
// returns nil when nothing is kept.
func skipMatrix(kept map[[2]int]keptPart, members []int) [][]bool {
	if len(kept) == 0 {
		return nil
	}
	m := make([][]bool, len(members))
	any := false
	for ls, sorig := range members {
		m[ls] = make([]bool, len(members))
		for ld, dorig := range members {
			if _, ok := kept[[2]int{sorig, dorig}]; ok {
				m[ls][ld] = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return m
}

// countSkips counts the true cells of a skip matrix.
func countSkips(m [][]bool) int {
	n := 0
	for _, row := range m {
		for _, b := range row {
			if b {
				n++
			}
		}
	}
	return n
}

// harvestKept updates the kept-partition set after a failed attempt. A
// stream (src, dst) becomes kept when the destination's watermark shows it
// complete — the end-of-stream marker arrived, so the destination holds the
// whole partition. A destination whose boot epoch advanced rebooted during
// the attempt: its memory is gone, so every partition it held is dropped.
// Pairs already kept from earlier attempts ran skipped (zero new rows) and
// retain their original payload accounting.
func harvestKept(kept map[[2]int]keptPart, res *BenchResult, members []int) {
	for ld, dorig := range members {
		if ld < len(res.Epochs) && res.Epochs[ld] > 1 {
			for _, sorig := range members {
				delete(kept, [2]int{sorig, dorig})
			}
			continue
		}
		if ld >= len(res.Progress) {
			continue
		}
		// All rows share one schema, so the attempt's byte/row ratio at this
		// destination recovers the per-partition byte count. Carried-forward
		// rows were folded in with the same width, so the ratio is unchanged.
		var width int64
		if ld < len(res.RowsPerNode) && res.RowsPerNode[ld] > 0 {
			width = res.BytesPerNode[ld] / res.RowsPerNode[ld]
		}
		for ls, sorig := range members {
			if ls >= len(res.Progress[ld]) {
				break
			}
			key := [2]int{sorig, dorig}
			if _, ok := kept[key]; ok {
				continue
			}
			if pp := res.Progress[ld][ls]; pp.Complete {
				kept[key] = keptPart{rows: pp.Rows, bytes: pp.Rows * width}
			}
		}
	}
}
