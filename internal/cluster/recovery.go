package cluster

import (
	"errors"
	"fmt"

	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// ErrRecoveryExhausted means a query kept failing until its RecoveryPolicy
// gave up (restart budget or deadline spent). The last attempt's transport
// error is wrapped for diagnosis.
var ErrRecoveryExhausted = errors.New("cluster: recovery exhausted")

// RecoveryPolicy governs how the harness reacts to a failed query fragment.
// Any transport error — UD data loss (§4.4.2), RNR or transport retry
// exhaustion erroring a Queue Pair, an endpoint stall — aborts the attempt,
// and the query restarts from scratch on a fresh cluster after an
// exponential virtual-time backoff, up to MaxRestarts times. Simulation
// failures (a genuine deadlock) are not recoverable and surface directly.
type RecoveryPolicy struct {
	// MaxRestarts bounds how many restarts follow the initial attempt.
	MaxRestarts int
	// BaseBackoff is the virtual-time delay charged before the first
	// restart; every further restart doubles it. Zero disables backoff.
	BaseBackoff sim.Duration
	// MaxBackoff caps the doubling; zero leaves it uncapped.
	MaxBackoff sim.Duration
	// Deadline bounds the total virtual time spent across attempts and
	// backoffs: once exceeded, no further restart is scheduled. Zero means
	// no deadline.
	Deadline sim.Duration
}

// Attempt records one try of the query under a RecoveryPolicy.
type Attempt struct {
	// Backoff is the virtual-time delay charged before this attempt.
	Backoff sim.Duration
	// Elapsed is the attempt's query response time.
	Elapsed sim.Duration
	// Err is the attempt's transport error; nil for a successful attempt.
	Err error
	// Membership lists the original node ids the attempt ran on. Plain
	// RecoveryPolicy runs leave it nil (full membership every attempt);
	// MembershipRecovery shrinks it as the failure detector declares nodes
	// dead.
	Membership []int
}

// RecoveryResult reports a query run under a RecoveryPolicy.
type RecoveryResult struct {
	// BenchResult holds the final attempt's metrics (successful or not).
	*BenchResult
	// Restarts is the number of restarts performed.
	Restarts int
	// Attempts lists every attempt in order, including the failures.
	Attempts []Attempt
	// TotalVirtual is the virtual time spent across all attempts and
	// backoffs. Each attempt runs on its own single-use Simulation, so this
	// is the accounting sum, not one clock reading.
	TotalVirtual sim.Duration
	// Detections and MaxDetect aggregate the failure detector across all
	// attempts (MembershipRecovery only): total suspicion events and the
	// worst crash-to-suspicion latency.
	Detections int
	MaxDetect  sim.Duration
}

// PublishMetrics copies the recovery run's aggregates into the registry
// under "recovery.*" names, so fault experiments report through the same
// channel as the data-path counters.
func (r *RecoveryResult) PublishMetrics(reg *telemetry.Registry) {
	reg.Counter("recovery.restarts").Add(int64(r.Restarts))
	reg.Counter("recovery.attempts").Add(int64(len(r.Attempts)))
	reg.Counter("recovery.fd_detections").Add(int64(r.Detections))
	reg.Gauge("recovery.fd_max_detect_us").SetMax(float64(r.MaxDetect) / 1e3)
	reg.Gauge("recovery.total_virtual_ms").SetMax(float64(r.TotalVirtual) / 1e6)
}

// backoff returns the delay before restart number restart (0-based).
func (pol RecoveryPolicy) backoff(restart int) sim.Duration {
	if pol.BaseBackoff <= 0 {
		return 0
	}
	if restart > 32 {
		restart = 32 // avoid shift overflow; long past any real cap
	}
	b := pol.BaseBackoff << uint(restart)
	if pol.MaxBackoff > 0 && b > pol.MaxBackoff {
		b = pol.MaxBackoff
	}
	return b
}

// Run executes the workload under the policy. mk builds a fresh cluster for
// the given attempt number (a Simulation is single-use, so every attempt
// needs its own); fault-injection harnesses use the attempt number to model
// transient versus persistent faults. The returned error is nil on eventual
// success, wraps ErrRecoveryExhausted when the policy gives up, and is the
// raw simulation error (with a partial result) when a run fails outright.
func (pol RecoveryPolicy) Run(mk func(attempt int) *Cluster, opts BenchOpts) (*RecoveryResult, error) {
	r := &RecoveryResult{}
	var backoff sim.Duration
	for attempt := 0; ; attempt++ {
		res, err := mk(attempt).RunBench(opts)
		if err != nil {
			// The simulation itself failed (e.g. an undetected protocol
			// deadlock). Restarting cannot help; report it as terminal.
			r.Restarts = len(r.Attempts)
			return r, err
		}
		r.BenchResult = res
		r.TotalVirtual += res.Elapsed
		r.Attempts = append(r.Attempts, Attempt{Backoff: backoff, Elapsed: res.Elapsed, Err: res.Err})
		r.Restarts = attempt
		if res.Err == nil {
			return r, nil
		}
		backoff, err = pol.next(r, attempt, res.Err)
		if err != nil {
			return r, err
		}
	}
}

// next decides whether a further restart is allowed after failed attempt
// number attempt. The deadline is checked BEFORE the backoff is charged or
// the next attempt starts: a restart whose backoff alone would overrun the
// deadline is never scheduled, so TotalVirtual stays within the budget
// instead of overshooting by one backoff plus one attempt.
func (pol RecoveryPolicy) next(r *RecoveryResult, attempt int, cause error) (sim.Duration, error) {
	if attempt >= pol.MaxRestarts {
		return 0, fmt.Errorf("%w after %d attempt(s): %v",
			ErrRecoveryExhausted, attempt+1, cause)
	}
	b := pol.backoff(attempt)
	if pol.Deadline > 0 && r.TotalVirtual+b >= pol.Deadline {
		return 0, fmt.Errorf("%w: deadline %v spent after %d attempt(s): %v",
			ErrRecoveryExhausted, pol.Deadline, attempt+1, cause)
	}
	r.TotalVirtual += b
	return b, nil
}

// MembershipRecovery is the crash-aware recovery policy: every attempt runs
// with a heartbeat failure detector armed, and when the detector declares
// nodes dead the next attempt re-plans the query over the N-1 survivors
// instead of retrying the full membership against a node that will never
// answer.
type MembershipRecovery struct {
	Policy   RecoveryPolicy
	Detector DetectorConfig
}

// Run executes the workload with membership-aware restarts. mk builds a
// fresh cluster of the given size for each attempt (attempt 0 always gets n
// nodes); opts.GroupsFn, when set, re-plans the transmission pattern for
// the shrunken cluster. The error contract matches RecoveryPolicy.Run.
func (mr MembershipRecovery) Run(n int, mk func(attempt, members int) *Cluster, opts BenchOpts) (*RecoveryResult, error) {
	pol := mr.Policy
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	r := &RecoveryResult{}
	var backoff sim.Duration
	for attempt := 0; ; attempt++ {
		c := mk(attempt, len(members))
		fd := c.InstallDetector(mr.Detector)
		res, err := c.RunBench(opts)
		if err != nil {
			r.Restarts = len(r.Attempts)
			return r, err
		}
		r.BenchResult = res
		r.TotalVirtual += res.Elapsed
		r.Attempts = append(r.Attempts, Attempt{
			Backoff: backoff, Elapsed: res.Elapsed, Err: res.Err,
			Membership: append([]int(nil), members...),
		})
		r.Restarts = attempt
		r.Detections += fd.Detections
		if fd.MaxDetectionLatency > r.MaxDetect {
			r.MaxDetect = fd.MaxDetectionLatency
		}
		if res.Err == nil {
			return r, nil
		}
		// Shrink the membership by the nodes a majority suspects. The
		// detector indexes this attempt's cluster; map back to original ids.
		if dead := fd.Dead(); len(dead) > 0 {
			gone := make(map[int]bool, len(dead))
			for _, local := range dead {
				gone[local] = true
			}
			var next []int
			for local, orig := range members {
				if !gone[local] {
					next = append(next, orig)
				}
			}
			members = next
		}
		if len(members) == 0 {
			return r, fmt.Errorf("%w: no surviving members after %d attempt(s): %v",
				ErrRecoveryExhausted, attempt+1, res.Err)
		}
		backoff, err = pol.next(r, attempt, res.Err)
		if err != nil {
			return r, err
		}
	}
}
