package cluster

import (
	"errors"
	"fmt"

	"rshuffle/internal/sim"
)

// ErrRecoveryExhausted means a query kept failing until its RecoveryPolicy
// gave up (restart budget or deadline spent). The last attempt's transport
// error is wrapped for diagnosis.
var ErrRecoveryExhausted = errors.New("cluster: recovery exhausted")

// RecoveryPolicy governs how the harness reacts to a failed query fragment.
// Any transport error — UD data loss (§4.4.2), RNR or transport retry
// exhaustion erroring a Queue Pair, an endpoint stall — aborts the attempt,
// and the query restarts from scratch on a fresh cluster after an
// exponential virtual-time backoff, up to MaxRestarts times. Simulation
// failures (a genuine deadlock) are not recoverable and surface directly.
type RecoveryPolicy struct {
	// MaxRestarts bounds how many restarts follow the initial attempt.
	MaxRestarts int
	// BaseBackoff is the virtual-time delay charged before the first
	// restart; every further restart doubles it. Zero disables backoff.
	BaseBackoff sim.Duration
	// MaxBackoff caps the doubling; zero leaves it uncapped.
	MaxBackoff sim.Duration
	// Deadline bounds the total virtual time spent across attempts and
	// backoffs: once exceeded, no further restart is scheduled. Zero means
	// no deadline.
	Deadline sim.Duration
}

// Attempt records one try of the query under a RecoveryPolicy.
type Attempt struct {
	// Backoff is the virtual-time delay charged before this attempt.
	Backoff sim.Duration
	// Elapsed is the attempt's query response time.
	Elapsed sim.Duration
	// Err is the attempt's transport error; nil for a successful attempt.
	Err error
}

// RecoveryResult reports a query run under a RecoveryPolicy.
type RecoveryResult struct {
	// BenchResult holds the final attempt's metrics (successful or not).
	*BenchResult
	// Restarts is the number of restarts performed.
	Restarts int
	// Attempts lists every attempt in order, including the failures.
	Attempts []Attempt
	// TotalVirtual is the virtual time spent across all attempts and
	// backoffs. Each attempt runs on its own single-use Simulation, so this
	// is the accounting sum, not one clock reading.
	TotalVirtual sim.Duration
}

// backoff returns the delay before restart number restart (0-based).
func (pol RecoveryPolicy) backoff(restart int) sim.Duration {
	if pol.BaseBackoff <= 0 {
		return 0
	}
	if restart > 32 {
		restart = 32 // avoid shift overflow; long past any real cap
	}
	b := pol.BaseBackoff << uint(restart)
	if pol.MaxBackoff > 0 && b > pol.MaxBackoff {
		b = pol.MaxBackoff
	}
	return b
}

// Run executes the workload under the policy. mk builds a fresh cluster for
// the given attempt number (a Simulation is single-use, so every attempt
// needs its own); fault-injection harnesses use the attempt number to model
// transient versus persistent faults. The returned error is nil on eventual
// success, wraps ErrRecoveryExhausted when the policy gives up, and is the
// raw simulation error (with a partial result) when a run fails outright.
func (pol RecoveryPolicy) Run(mk func(attempt int) *Cluster, opts BenchOpts) (*RecoveryResult, error) {
	r := &RecoveryResult{}
	for attempt := 0; ; attempt++ {
		var backoff sim.Duration
		if attempt > 0 {
			backoff = pol.backoff(attempt - 1)
			r.TotalVirtual += backoff
		}
		res, err := mk(attempt).RunBench(opts)
		if err != nil {
			// The simulation itself failed (e.g. an undetected protocol
			// deadlock). Restarting cannot help; report it as terminal.
			r.Restarts = len(r.Attempts)
			return r, err
		}
		r.BenchResult = res
		r.TotalVirtual += res.Elapsed
		r.Attempts = append(r.Attempts, Attempt{Backoff: backoff, Elapsed: res.Elapsed, Err: res.Err})
		r.Restarts = attempt
		if res.Err == nil {
			return r, nil
		}
		if attempt >= pol.MaxRestarts {
			return r, fmt.Errorf("%w after %d attempt(s): %v",
				ErrRecoveryExhausted, attempt+1, res.Err)
		}
		if pol.Deadline > 0 && r.TotalVirtual >= pol.Deadline {
			return r, fmt.Errorf("%w: deadline %v spent after %d attempt(s): %v",
				ErrRecoveryExhausted, pol.Deadline, attempt+1, res.Err)
		}
	}
}
