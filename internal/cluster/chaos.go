// Chaos harness: deterministic fault-injection runs across the shuffle
// algorithms. Every scenario is a FaultPlan schedule evaluated against the
// simulation clock, so a (profile, algorithm, fault, seed) tuple always
// yields the same outcome — either a clean recovery through the
// RecoveryPolicy or a clean, diagnosable terminal error, never a panic or
// an undetected deadlock.
package cluster

import (
	"errors"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
)

// ChaosFault is one fault-injection scenario: Install arms the fault plan
// of a freshly booted cluster for the given attempt. Transient faults arm
// only attempt 0 — by the time the query restarts the fault has cleared —
// while persistent-but-survivable faults (degraded links, stragglers,
// CRC-caught corruption) arm every attempt.
type ChaosFault struct {
	Name    string
	Install func(c *Cluster, attempt int)
	// Crash marks a crash-stop scenario: RunChaos arms the heartbeat
	// failure detector and recovers through MembershipRecovery, so the
	// restart runs on the surviving membership instead of retrying the full
	// cluster against a dead node.
	Crash bool
	// Groups overrides the transmission pattern per cluster size; nil means
	// repartition. Crash scenarios use it to re-plan broadcast trees over
	// the survivors.
	Groups func(n int) shuffle.Groups
}

// ChaosFaults returns the standard fault matrix of the chaos harness. The
// victim links involve node 1 (or node 0 for the straggler pause) so every
// scenario hits both a sending and a receiving fragment.
func ChaosFaults() []ChaosFault {
	return []ChaosFault{
		// Deterministically swallow a few datagrams into node 1: the UD
		// designs detect the count mismatch (§4.4.2) and restart; the RC
		// designs carry no UD traffic and pass untouched.
		{Name: "ud-loss", Install: func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultUDLoss, From: fabric.AnyNode, To: 1, Count: 3,
			})
		}},
		// Kill every RC packet into node 1 for the whole first attempt: the
		// sender NICs retransmit until retry_cnt is exhausted, the Queue
		// Pairs enter the Error state, and the fragments fail over to a
		// restart. UD traffic is unaffected.
		{Name: "rc-outage", Install: func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultRCLoss, From: fabric.AnyNode, To: 1, Rate: 1,
			})
		}},
		// Quarter the bandwidth of every link into node 1 for the whole
		// run: the query must still complete, only slower.
		{Name: "degrade", Install: func(c *Cluster, attempt int) {
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultDegrade, From: fabric.AnyNode, To: 1, Factor: 0.25,
			})
		}},
		// Freeze node 0's NIC for 300us out of every 2ms — a GC-like
		// straggler. Lossless, so the query completes without restarts.
		{Name: "pause", Install: func(c *Cluster, attempt int) {
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultPause, From: fabric.AnyNode, To: 0,
				Period: 2 * time.Millisecond, OnFor: 300 * time.Microsecond,
			})
		}},
		// Flap the link into node 1 during the first 3ms of attempt 0: RC
		// packets sent inside a 120us outage burst are lost and retried
		// 400us later, outside the burst, so the NIC-level recovery usually
		// absorbs the fault without erroring the QP.
		{Name: "flap", Install: func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultRCLoss, From: fabric.AnyNode, To: 1, Rate: 1,
				End:    sim.Time(3 * time.Millisecond),
				Period: time.Millisecond, OnFor: 120 * time.Microsecond,
			})
		}},
		// Corrupt one packet of the next five RC messages into node 1: the
		// link-level CRC catches each one and the retransmit costs a packet
		// serialization plus a round trip — invisible above the fabric.
		{Name: "corrupt", Install: func(c *Cluster, attempt int) {
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultCorrupt, From: fabric.AnyNode, To: 1, Count: 5,
			})
		}},
	}
}

// ChaosCrashFaults returns the crash-stop scenarios: a node's NIC dies
// permanently (control lane included) and the cluster must detect it,
// tear down the affected connections, and finish on the survivors. The
// crash arms only attempt 0 — the restarted query excludes the dead node,
// so the fault has nothing left to hit.
func ChaosCrashFaults() []ChaosFault {
	// midStream arms the crash a moment after the query starts streaming
	// (AtBenchStart), since the absolute setup cost varies per algorithm.
	midStream := func(victim int) func(c *Cluster, attempt int) {
		return func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.AtBenchStart(func() {
				c.Net.Faults().Add(fabric.FaultRule{
					Class: fabric.FaultCrash, To: victim,
					Start: c.Sim.Now().Add(40 * time.Microsecond),
				})
			})
		}
	}
	return []ChaosFault{
		// Node 1 is dead before connection setup even begins: no data ever
		// flows to or from it, and the survivors' first sends block on
		// credit until the detector declares it down.
		{Name: "crash-setup", Crash: true, Install: func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.Net.Faults().Add(fabric.FaultRule{Class: fabric.FaultCrash, To: 1})
		}},
		// Node 1 dies while the shuffle is streaming: in-flight messages to
		// and from it vanish and every endpoint pair involving it must
		// drain partially-transferred state.
		{Name: "crash-stream", Crash: true, Install: midStream(1)},
		// A broadcast root dies mid-stream: every survivor both loses a
		// source and loses a destination of its own broadcast, and the
		// restart re-plans the broadcast group over the survivors.
		{Name: "crash-root", Crash: true, Install: midStream(0), Groups: shuffle.Broadcast},
	}
}

// ChaosTransientFaults returns the transient-failure scenarios: bounded
// reboot windows (the port goes dark and comes back with its memory wiped)
// and network partitions with a heal deadline. All are crash-aware — the
// heartbeat detector is armed — because telling a transient outage apart
// from a crash-stop is exactly the detector's job: a reboot or an
// asymmetric cut must end in suspicion and a partial restart, while only
// the symmetric minority cut that outlives the attempt is convicted and
// excluded like a crash.
func ChaosTransientFaults() []ChaosFault {
	return []ChaosFault{
		// Node 1's port is dark from boot until 600us in: connection setup
		// and any early traffic ride through NIC retransmission, and once the
		// detector observes the down->up transition it bumps node 1's boot
		// epoch, fencing every Queue Pair connected before the reboot.
		{Name: "reboot-setup", Crash: true, Install: func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultReboot, To: 1,
				End: sim.Time(600 * time.Microsecond),
			})
		}},
		// Node 1 reboots mid-stream: in-flight traffic both ways is lost for
		// 800us, its received partial partitions are wiped (epoch bump), and
		// the restart may keep only partitions held by the other nodes.
		{Name: "reboot-stream", Crash: true, Install: func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.AtBenchStart(func() {
				start := c.Sim.Now().Add(40 * time.Microsecond)
				c.Net.Faults().Add(fabric.FaultRule{
					Class: fabric.FaultReboot, To: 1,
					Start: start, End: start.Add(800 * time.Microsecond),
				})
			})
		}},
		// Symmetric minority partition that outlives the attempt: node 1 is
		// unreachable in both directions, so no witness can veto and the
		// majority convicts it — the restart re-plans over the survivors,
		// exactly as if it had crashed.
		{Name: "partition-minority", Crash: true, Install: func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.AtBenchStart(func() {
				rest := make([]int, 0, c.N-1)
				for a := 0; a < c.N; a++ {
					if a != 1 {
						rest = append(rest, a)
					}
				}
				start := c.Sim.Now().Add(40 * time.Microsecond)
				c.Net.Faults().Add(fabric.FaultRule{
					Class: fabric.FaultPartition, GroupA: []int{1}, GroupB: rest,
					Start: start, End: start.Add(80 * time.Millisecond),
				})
			})
		}},
		// Asymmetric cut of the single link direction 1->0, healing within
		// the attempt: only node 0 suspects node 1, so there is no majority
		// and no conviction — the membership survives intact and the restart
		// is partial, re-streaming strictly fewer partitions than a full
		// restart because the unaffected streams completed before the
		// failure was declared.
		{Name: "partition-asymmetric", Crash: true, Install: func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.AtBenchStart(func() {
				start := c.Sim.Now().Add(40 * time.Microsecond)
				c.Net.Faults().Add(fabric.FaultRule{
					Class: fabric.FaultPartition, GroupA: []int{1}, GroupB: []int{0},
					Asym: true, Start: start, End: start.Add(8 * time.Millisecond),
				})
			})
		}},
	}
}

// ChaosOpts configures one chaos run.
type ChaosOpts struct {
	Prof           fabric.Profile
	Nodes, Threads int
	RowsPerNode    int
	Seed           int64
	Policy         RecoveryPolicy
	// Detector parameterizes the failure detector for crash scenarios; the
	// zero value selects the defaults (500us period, 3 missed beats).
	Detector DetectorConfig
}

// ChaosOutcome is the deterministic summary of one chaos run: with equal
// ChaosOpts and fault, two runs produce identical outcomes.
type ChaosOutcome struct {
	Alg, Fault string
	// Restarts is the number of query restarts the recovery policy ran.
	Restarts int
	// Failed and Err report a terminal failure after recovery gave up; Err
	// is the diagnosable error text, empty on success.
	Failed bool
	Err    string
	// Rows is the cluster-wide row count delivered by the final attempt.
	Rows int64
	// Elapsed is the final attempt's response time; TotalVirtual sums every
	// attempt and backoff.
	Elapsed      sim.Duration
	TotalVirtual sim.Duration
	// Members is the surviving-membership size of the final attempt (equal
	// to Nodes unless a crash shrank the cluster).
	Members int
	// Detections counts failure-detector suspicion events across all
	// attempts; MaxDetect is the worst crash-to-suspicion latency. Both are
	// zero for non-crash scenarios.
	Detections int
	MaxDetect  sim.Duration
	// PartitionsKept and PartitionsRestreamed count the (source,
	// destination) partitions restart attempts skipped versus streamed
	// again. A full restart re-streams Members*Members partitions per
	// attempt; a partial restart keeps the ones whose end-of-stream marker
	// was already delivered.
	PartitionsKept, PartitionsRestreamed int
}

// RunChaos runs one algorithm under one fault scenario with the given
// recovery policy. The returned error is non-nil only for harness-level
// failures (a simulation deadlock) — a query that exhausts its restart
// budget is reported through ChaosOutcome.Failed, not the error.
func RunChaos(alg shuffle.Algorithm, fault ChaosFault, o ChaosOpts) (ChaosOutcome, error) {
	cfg := alg.Config(o.Threads)
	// Tight timeouts keep failed attempts short in virtual time: a dead
	// connection is declared after ~tens of milliseconds instead of the
	// interactive-scale defaults.
	cfg.DepletedTimeout = 10 * time.Millisecond
	cfg.StallTimeout = 120 * time.Millisecond
	out := ChaosOutcome{Alg: alg.Name, Fault: fault.Name, Members: o.Nodes}
	bopts := BenchOpts{Factory: RDMAProvider(cfg), RowsPerNode: o.RowsPerNode, GroupsFn: fault.Groups}
	var r *RecoveryResult
	var err error
	if fault.Crash {
		mr := MembershipRecovery{Policy: o.Policy, Detector: o.Detector}
		r, err = mr.Run(o.Nodes, func(attempt, members int) *Cluster {
			c := New(o.Prof, members, o.Threads, o.Seed)
			fault.Install(c, attempt)
			return c
		}, bopts)
	} else {
		r, err = o.Policy.Run(func(attempt int) *Cluster {
			c := New(o.Prof, o.Nodes, o.Threads, o.Seed)
			fault.Install(c, attempt)
			return c
		}, bopts)
	}
	if err != nil && !errors.Is(err, ErrRecoveryExhausted) {
		return out, err
	}
	out.Restarts = r.Restarts
	out.TotalVirtual = r.TotalVirtual
	out.Detections = r.Detections
	out.MaxDetect = r.MaxDetect
	out.PartitionsKept = r.PartitionsKept
	out.PartitionsRestreamed = r.PartitionsRestreamed
	if n := len(r.Attempts); n > 0 && r.Attempts[n-1].Membership != nil {
		out.Members = len(r.Attempts[n-1].Membership)
	}
	if r.BenchResult != nil {
		out.Elapsed = r.Elapsed
		for _, n := range r.RowsPerNode {
			out.Rows += n
		}
	}
	if err != nil {
		out.Failed, out.Err = true, err.Error()
	}
	return out, nil
}
