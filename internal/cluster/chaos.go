// Chaos harness: deterministic fault-injection runs across the shuffle
// algorithms. Every scenario is a FaultPlan schedule evaluated against the
// simulation clock, so a (profile, algorithm, fault, seed) tuple always
// yields the same outcome — either a clean recovery through the
// RecoveryPolicy or a clean, diagnosable terminal error, never a panic or
// an undetected deadlock.
package cluster

import (
	"errors"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
)

// ChaosFault is one fault-injection scenario: Install arms the fault plan
// of a freshly booted cluster for the given attempt. Transient faults arm
// only attempt 0 — by the time the query restarts the fault has cleared —
// while persistent-but-survivable faults (degraded links, stragglers,
// CRC-caught corruption) arm every attempt.
type ChaosFault struct {
	Name    string
	Install func(c *Cluster, attempt int)
}

// ChaosFaults returns the standard fault matrix of the chaos harness. The
// victim links involve node 1 (or node 0 for the straggler pause) so every
// scenario hits both a sending and a receiving fragment.
func ChaosFaults() []ChaosFault {
	return []ChaosFault{
		// Deterministically swallow a few datagrams into node 1: the UD
		// designs detect the count mismatch (§4.4.2) and restart; the RC
		// designs carry no UD traffic and pass untouched.
		{"ud-loss", func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultUDLoss, From: fabric.AnyNode, To: 1, Count: 3,
			})
		}},
		// Kill every RC packet into node 1 for the whole first attempt: the
		// sender NICs retransmit until retry_cnt is exhausted, the Queue
		// Pairs enter the Error state, and the fragments fail over to a
		// restart. UD traffic is unaffected.
		{"rc-outage", func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultRCLoss, From: fabric.AnyNode, To: 1, Rate: 1,
			})
		}},
		// Quarter the bandwidth of every link into node 1 for the whole
		// run: the query must still complete, only slower.
		{"degrade", func(c *Cluster, attempt int) {
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultDegrade, From: fabric.AnyNode, To: 1, Factor: 0.25,
			})
		}},
		// Freeze node 0's NIC for 300us out of every 2ms — a GC-like
		// straggler. Lossless, so the query completes without restarts.
		{"pause", func(c *Cluster, attempt int) {
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultPause, From: fabric.AnyNode, To: 0,
				Period: 2 * time.Millisecond, OnFor: 300 * time.Microsecond,
			})
		}},
		// Flap the link into node 1 during the first 3ms of attempt 0: RC
		// packets sent inside a 120us outage burst are lost and retried
		// 400us later, outside the burst, so the NIC-level recovery usually
		// absorbs the fault without erroring the QP.
		{"flap", func(c *Cluster, attempt int) {
			if attempt > 0 {
				return
			}
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultRCLoss, From: fabric.AnyNode, To: 1, Rate: 1,
				End:    sim.Time(3 * time.Millisecond),
				Period: time.Millisecond, OnFor: 120 * time.Microsecond,
			})
		}},
		// Corrupt one packet of the next five RC messages into node 1: the
		// link-level CRC catches each one and the retransmit costs a packet
		// serialization plus a round trip — invisible above the fabric.
		{"corrupt", func(c *Cluster, attempt int) {
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultCorrupt, From: fabric.AnyNode, To: 1, Count: 5,
			})
		}},
	}
}

// ChaosOpts configures one chaos run.
type ChaosOpts struct {
	Prof           fabric.Profile
	Nodes, Threads int
	RowsPerNode    int
	Seed           int64
	Policy         RecoveryPolicy
}

// ChaosOutcome is the deterministic summary of one chaos run: with equal
// ChaosOpts and fault, two runs produce identical outcomes.
type ChaosOutcome struct {
	Alg, Fault string
	// Restarts is the number of query restarts the recovery policy ran.
	Restarts int
	// Failed and Err report a terminal failure after recovery gave up; Err
	// is the diagnosable error text, empty on success.
	Failed bool
	Err    string
	// Rows is the cluster-wide row count delivered by the final attempt.
	Rows int64
	// Elapsed is the final attempt's response time; TotalVirtual sums every
	// attempt and backoff.
	Elapsed      sim.Duration
	TotalVirtual sim.Duration
}

// RunChaos runs one algorithm under one fault scenario with the given
// recovery policy. The returned error is non-nil only for harness-level
// failures (a simulation deadlock) — a query that exhausts its restart
// budget is reported through ChaosOutcome.Failed, not the error.
func RunChaos(alg shuffle.Algorithm, fault ChaosFault, o ChaosOpts) (ChaosOutcome, error) {
	cfg := alg.Config(o.Threads)
	// Tight timeouts keep failed attempts short in virtual time: a dead
	// connection is declared after ~tens of milliseconds instead of the
	// interactive-scale defaults.
	cfg.DepletedTimeout = 10 * time.Millisecond
	cfg.StallTimeout = 120 * time.Millisecond
	mk := func(attempt int) *Cluster {
		c := New(o.Prof, o.Nodes, o.Threads, o.Seed)
		fault.Install(c, attempt)
		return c
	}
	out := ChaosOutcome{Alg: alg.Name, Fault: fault.Name}
	r, err := o.Policy.Run(mk, BenchOpts{Factory: RDMAProvider(cfg), RowsPerNode: o.RowsPerNode})
	if err != nil && !errors.Is(err, ErrRecoveryExhausted) {
		return out, err
	}
	out.Restarts = r.Restarts
	out.TotalVirtual = r.TotalVirtual
	if r.BenchResult != nil {
		out.Elapsed = r.Elapsed
		for _, n := range r.RowsPerNode {
			out.Rows += n
		}
	}
	if err != nil {
		out.Failed, out.Err = true, err.Error()
	}
	return out, nil
}
