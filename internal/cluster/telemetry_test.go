package cluster

import (
	"strings"
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// tracedCrashRun executes one crash-stop attempt with tracing on and
// returns the exported Chrome trace. The run fails (node 1 dies
// mid-stream), so the trace covers the whole event vocabulary: WR spans,
// wire instants, detector ticks and suspicions, peer-down drains, QP
// errors, and flushed completions.
func tracedCrashRun(t *testing.T, seed int64, rows int) string {
	t.Helper()
	c := New(fabric.FDR(), 3, 2, seed)
	tr := c.EnableTracing(1 << 16)
	c.InstallDetector(DetectorConfig{})
	c.AtBenchStart(func() {
		c.Net.Faults().Add(fabric.FaultRule{
			Class: fabric.FaultCrash, To: 1,
			Start: c.Sim.Now().Add(40 * time.Microsecond),
		})
	})
	cfg := shuffle.Algorithms[0].Config(c.Threads) // MEMQ/SR
	cfg.DepletedTimeout = 10 * time.Millisecond
	cfg.StallTimeout = 120 * time.Millisecond
	res, err := c.RunBench(BenchOpts{Factory: RDMAProvider(cfg), RowsPerNode: rows})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if res.Err == nil {
		t.Fatal("crash run unexpectedly succeeded; the trace would not cover recovery events")
	}
	var b strings.Builder
	if err := telemetry.WriteChromeTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTraceDeterminism is the regression oracle the telemetry layer is built
// around: two same-seed runs of a chaotic (crash-stop) workload must export
// byte-identical traces.
func TestTraceDeterminism(t *testing.T) {
	a := tracedCrashRun(t, 7, 16384)
	b := tracedCrashRun(t, 7, 16384)
	if a != b {
		t.Fatal("same-seed runs exported different traces")
	}
	// A different workload must actually change the trace, or the oracle is
	// vacuous. (A different seed alone need not: this small run never
	// consults the RNG, e.g. for QP-cache evictions.)
	if c := tracedCrashRun(t, 7, 16640); c == a {
		t.Fatal("different workloads exported identical traces")
	}
	for _, ev := range []string{
		`"name":"wr"`, `"name":"wire"`, `"name":"fd_tick"`, `"name":"suspect"`,
		`"name":"peer_down"`, `"name":"drain_peer"`, `"name":"close_peer"`,
		`"name":"qp_error"`, `"name":"phase"`, `"name":"credit"`,
	} {
		if !strings.Contains(a, ev) {
			t.Errorf("trace missing event %s", ev)
		}
	}
}

// TestRegistryQPCensus reproduces Table 1's QP-count column from registry
// data alone: on the EDR cluster (16 nodes, 14 threads) the per-operator QP
// count is half of node 0's qps_created counter (one operator pair creates
// the send and the receive side).
func TestRegistryQPCensus(t *testing.T) {
	want := map[string]int64{
		"MEMQ/SR": 224, "MEMQ/RD": 224, "MESQ/SR": 14,
		"SEMQ/SR": 16, "SEMQ/RD": 16, "SESQ/SR": 1,
	}
	for _, alg := range shuffle.Algorithms {
		c := New(fabric.EDR(), 16, 14, 1)
		cfg := alg.Config(c.Threads)
		var comm *shuffle.Comm
		c.Sim.Spawn("build", func(p *sim.Proc) {
			comm = shuffle.Build(p, c.Devs, cfg, c.Threads)
		})
		if err := c.Sim.Run(); err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		reg := c.Metrics()
		got := reg.CounterValue("verbs.qps_created.node0") / 2
		if got != want[alg.Name] {
			t.Errorf("%s: registry-derived QPs/operator = %d, want %d", alg.Name, got, want[alg.Name])
		}
		if int64(comm.QPsPerOperator) != got {
			t.Errorf("%s: registry (%d) disagrees with Comm.QPsPerOperator (%d)",
				alg.Name, got, comm.QPsPerOperator)
		}
	}
}

// TestPhaseScopedNICStats checks that RunBench splits the NIC counters into
// setup and streaming phases, and that ResetStats re-arms the counters for
// a fresh scope.
func TestPhaseScopedNICStats(t *testing.T) {
	c := New(fabric.FDR(), 3, 2, 3)
	cfg := shuffle.Algorithms[0].Config(c.Threads)
	res, err := c.RunBench(BenchOpts{Factory: RDMAProvider(cfg), RowsPerNode: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.SetupNIC) != 3 || len(res.StreamNIC) != 3 {
		t.Fatalf("phase snapshots missing: setup=%d stream=%d", len(res.SetupNIC), len(res.StreamNIC))
	}
	var stream int64
	for i := range res.StreamNIC {
		stream += res.StreamNIC[i].TxMessages
	}
	if stream == 0 {
		t.Fatal("streaming phase recorded no traffic")
	}
	// Setup and stream must add up to the final counters.
	final := c.Net.SnapshotStats()
	for i := range final {
		if got := res.SetupNIC[i].TxMessages + res.StreamNIC[i].TxMessages; got != final[i].TxMessages {
			t.Fatalf("node %d: setup+stream = %d, final = %d", i, got, final[i].TxMessages)
		}
	}
	c.Net.ResetStats()
	for i, s := range c.Net.SnapshotStats() {
		if s.TxMessages != 0 || s.TxBacklogPeak != 0 {
			t.Fatalf("node %d: stats survive ResetStats: %+v", i, s)
		}
	}
}

// TestLaneByteSplit checks the control/data lane accounting: control-lane
// bytes flow (credits are small inline writes) and the two lanes add up to
// the total wire volume.
func TestLaneByteSplit(t *testing.T) {
	c := New(fabric.FDR(), 3, 2, 5)
	cfg := shuffle.Algorithms[0].Config(c.Threads)
	res, err := c.RunBench(BenchOpts{Factory: RDMAProvider(cfg), RowsPerNode: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var control, data, wire int64
	for _, s := range c.Net.SnapshotStats() {
		control += s.TxControlBytes
		data += s.TxDataBytes
		wire += s.TxWireBytes
	}
	if control == 0 {
		t.Fatal("no control-lane bytes recorded (credit write-backs should be small)")
	}
	if data == 0 {
		t.Fatal("no data-lane bytes recorded")
	}
	if control+data != wire {
		t.Fatalf("lanes don't add up: control %d + data %d != wire %d", control, data, wire)
	}
}
