package cluster

import (
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

func quiet(p fabric.Profile) fabric.Profile {
	p.UDReorderProb = 0
	return p
}

func benchRun(t testing.TB, prof fabric.Profile, cfg shuffle.Config, nodes, rows int, groups shuffle.Groups) *BenchResult {
	t.Helper()
	c := New(prof, nodes, 0, 7)
	res, err := c.RunBench(BenchOpts{
		Factory:     RDMAProvider(cfg),
		RowsPerNode: rows,
		Groups:      groups,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

func TestBenchConservesRows(t *testing.T) {
	const nodes, rows = 4, 50000
	cfg := shuffle.Config{Impl: shuffle.SQSR, Endpoints: 14}
	res := benchRun(t, quiet(fabric.EDR()), cfg, nodes, rows, nil)
	var total int64
	for _, r := range res.RowsPerNode {
		total += r
	}
	if total != int64(nodes*rows) {
		t.Fatalf("rows received = %d, want %d", total, nodes*rows)
	}
}

func TestBenchUniformPartitioning(t *testing.T) {
	const nodes, rows = 8, 40000
	cfg := shuffle.Config{Impl: shuffle.MQSR, Endpoints: 14}
	res := benchRun(t, quiet(fabric.EDR()), cfg, nodes, rows, nil)
	mean := float64(nodes*rows) / float64(nodes)
	for a, r := range res.RowsPerNode {
		dev := float64(r)/mean - 1
		if dev < -0.05 || dev > 0.05 {
			t.Fatalf("node %d received %d rows, >5%% from mean %.0f", a, r, mean)
		}
	}
}

// TestCalibrationMESQSREDR pins the headline calibration point: MESQ/SR on
// 8 EDR nodes should reach close to the paper's ~11 GiB/s per node.
func TestCalibrationMESQSREDR(t *testing.T) {
	cfg := shuffle.Config{Impl: shuffle.SQSR, Endpoints: 14}
	res := benchRun(t, quiet(fabric.EDR()), cfg, 8, 300_000, nil)
	if g := res.GiBps(); g < 9.0 || g > 12.5 {
		t.Fatalf("MESQ/SR EDR 8-node throughput = %.2f GiB/s, want ~10-12", g)
	}
}

// TestCalibrationMESQSRFDR pins the FDR point (~5.5 GiB/s in the paper).
func TestCalibrationMESQSRFDR(t *testing.T) {
	cfg := shuffle.Config{Impl: shuffle.SQSR, Endpoints: 10}
	res := benchRun(t, quiet(fabric.FDR()), cfg, 8, 300_000, nil)
	if g := res.GiBps(); g < 4.5 || g > 6.5 {
		t.Fatalf("MESQ/SR FDR 8-node throughput = %.2f GiB/s, want ~5-6", g)
	}
}

// Throughput must be volume-independent once buffers cycle in steady state
// (the scaled-down data volumes substitute for the paper's 160 GiB/node).
// UD streams reach steady state quickly because messages are one MTU.
func TestThroughputVolumeIndependent(t *testing.T) {
	cfg := shuffle.Config{Impl: shuffle.SQSR, Endpoints: 14}
	small := benchRun(t, quiet(fabric.EDR()), cfg, 4, 500_000, nil).GiBps()
	large := benchRun(t, quiet(fabric.EDR()), cfg, 4, 2_000_000, nil).GiBps()
	ratio := large / small
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("throughput varies with volume: %.2f vs %.2f GiB/s", small, large)
	}
}

func TestBroadcastBench(t *testing.T) {
	const nodes, rows = 4, 50_000
	cfg := shuffle.Config{Impl: shuffle.SQSR, Endpoints: 14}
	res := benchRun(t, quiet(fabric.EDR()), cfg, nodes, rows, shuffle.Broadcast(nodes))
	for a, r := range res.RowsPerNode {
		if r != int64(nodes*rows) {
			t.Fatalf("node %d received %d rows, want %d", a, r, nodes*rows)
		}
	}
}

func TestBurnSlowsElapsed(t *testing.T) {
	run := func(burn int) *BenchResult {
		c := New(quiet(fabric.EDR()), 4, 0, 7)
		res, err := c.RunBench(BenchOpts{
			Factory:           RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 14}),
			RowsPerNode:       100_000,
			BurnPerBatch:      time.Duration(burn),
			ReceiveBatchBytes: 32 << 10,
		})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		return res
	}
	fast, slow := run(0), run(15_000)
	if slow.Elapsed <= fast.Elapsed {
		t.Fatalf("burn did not slow the query: %v vs %v", fast.Elapsed, slow.Elapsed)
	}
}

// TestRestartOnLoss exercises the paper's UD recovery policy end to end:
// injected packet loss fails the first attempt, the harness restarts the
// query, and the retry (without injected loss) succeeds.
func TestRestartOnLoss(t *testing.T) {
	attempt := 0
	mk := func() *Cluster {
		attempt++
		c := New(quiet(fabric.EDR()), 2, 4, 7)
		if attempt == 1 {
			c.Sim.After(1, func() { c.Net.InjectUDLoss(1, 2) })
		}
		return c
	}
	res, restarts, err := RunBenchWithRestart(mk, BenchOpts{
		Factory:     RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 4}),
		RowsPerNode: 30_000,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if restarts != 1 {
		t.Fatalf("restarts = %d, want 1", restarts)
	}
	var rows int64
	for _, r := range res.RowsPerNode {
		rows += r
	}
	if rows != 2*30_000 {
		t.Fatalf("rows after restart = %d", rows)
	}
}

// TestRestartGivesUp verifies the cap on restart attempts.
func TestRestartGivesUp(t *testing.T) {
	mk := func() *Cluster {
		c := New(quiet(fabric.EDR()), 2, 4, 7)
		c.Sim.After(1, func() { c.Net.InjectUDLoss(1, 2) })
		return c
	}
	_, restarts, err := RunBenchWithRestart(mk, BenchOpts{
		Factory:     RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 4}),
		RowsPerNode: 30_000,
	}, 2)
	if err == nil {
		t.Fatal("persistent loss should surface an error")
	}
	if restarts != 2 {
		t.Fatalf("restarts = %d, want 2", restarts)
	}
}
