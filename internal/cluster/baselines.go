package cluster

import (
	"rshuffle/internal/ipoib"
	"rshuffle/internal/mpi"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
)

// MPIProvider returns a factory for the MVAPICH-like baseline.
func MPIProvider(cfg mpi.Config) ProviderFactory {
	return func(p *sim.Proc, c *Cluster) shuffle.Provider {
		return mpi.Build(p, c.Devs, cfg)
	}
}

// IPoIBProvider returns a factory for the TCP-over-InfiniBand baseline.
func IPoIBProvider(cfg ipoib.Config) ProviderFactory {
	return func(p *sim.Proc, c *Cluster) shuffle.Provider {
		return ipoib.Build(p, c.Net, c.N, cfg)
	}
}

// setupReporter lets RunBench pick up bootstrap costs from any transport.
type setupReporter interface {
	Setup() (conn, reg sim.Duration)
}
