// Package cluster provides the experiment harness: it boots a simulated
// cluster (fabric + verbs devices + worker threads per node), runs shuffle
// workloads over any transport provider, and reports virtual-time metrics.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"rshuffle/internal/engine"
	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
	"rshuffle/internal/verbs"
)

// Cluster is one simulated cluster instance. Create a fresh Cluster per
// experiment run; the embedded Simulation is single-use.
type Cluster struct {
	Sim *sim.Simulation
	Net *fabric.Network
	// Group is the logical-partition coordinator when the cluster runs with
	// parallel discrete-event execution (NewWithOptions with ParallelLPs >
	// 0); nil on the classic single-simulation path. When set, Sim is the
	// control partition's simulation.
	Group   *sim.Group
	Devs    []*verbs.Device
	N       int
	Threads int
	// FD is the heartbeat failure detector, when one is installed
	// (InstallDetector). RunBench stops it once the query completes.
	FD *Detector
	// onBenchStart callbacks run when RunBench finishes transport setup and
	// the query proper starts streaming. Fault harnesses use it to arm
	// faults relative to the streaming phase, whose absolute start varies
	// with the per-algorithm connection setup cost.
	onBenchStart []func()
}

// AtBenchStart registers a callback to run at the instant RunBench starts
// streaming (after transport setup). Callbacks run inside the benchmark
// Proc and must not block.
func (c *Cluster) AtBenchStart(f func()) { c.onBenchStart = append(c.onBenchStart, f) }

// FireBenchStart invokes the AtBenchStart callbacks. RunBench calls it when
// the streaming phase begins; external schedulers that drive their own query
// (the DAG runner) call it at the equivalent instant so fault harnesses
// armed relative to the streaming phase work unchanged.
func (c *Cluster) FireBenchStart() {
	for _, f := range c.onBenchStart {
		f()
	}
}

// New boots a cluster of nodes over the given hardware profile. threads <= 0
// selects the profile's default thread count.
func New(prof fabric.Profile, nodes, threads int, seed int64) *Cluster {
	if threads <= 0 {
		threads = prof.Threads
	}
	s := sim.New(seed)
	net := fabric.New(s, prof, nodes)
	return &Cluster{
		Sim: s, Net: net, Devs: verbs.OpenAll(net),
		N: nodes, Threads: threads,
	}
}

// SimOptions selects the simulation execution engine for a cluster.
type SimOptions struct {
	// ParallelLPs > 0 partitions the run across that many logical partitions
	// executed with conservative lookahead-windowed parallelism (see
	// internal/sim/pdes.go). Node state is spread over the partitions in
	// contiguous blocks and cross-node interactions ride routed mailboxes, so
	// a given seed produces byte-identical results at every LP count —
	// ParallelLPs 1 is the reference serial ordering of the same engine. 0
	// keeps the classic single-simulation engine, byte-for-byte unchanged.
	// Values above the node count are clamped.
	ParallelLPs int
}

// NewWithOptions boots a cluster like New, with an explicit choice of
// simulation engine. Partitioned execution requires a lossless profile and
// supports fault plans whose rules are pure time-window checks (crashes,
// partitions); probabilistic loss draws would couple partitions through a
// shared RNG stream.
func NewWithOptions(prof fabric.Profile, nodes, threads int, seed int64, opts SimOptions) *Cluster {
	if opts.ParallelLPs <= 0 {
		return New(prof, nodes, threads, seed)
	}
	if threads <= 0 {
		threads = prof.Threads
	}
	g := sim.NewGroup(seed, opts.ParallelLPs, nodes, prof.RouteLatency())
	net := fabric.NewPartitioned(g, prof, nodes, seed)
	return &Cluster{
		Sim: net.Sim, Net: net, Group: g, Devs: verbs.OpenAll(net),
		N: nodes, Threads: threads,
	}
}

// Ctx returns an operator context for one node's fragment. The fragment's
// Procs run on the simulation owning the node — its partition on a
// partitioned cluster, the shared simulation otherwise.
func (c *Cluster) Ctx(node int) *engine.Ctx {
	return &engine.Ctx{S: c.Net.SimAt(node), Prof: &c.Net.Prof, Threads: c.Threads, Node: node}
}

// Events returns the total number of simulation events fired, summed across
// partitions on a partitioned cluster.
func (c *Cluster) Events() uint64 {
	if c.Group != nil {
		return c.Group.Events()
	}
	return c.Sim.Events()
}

// EnableTracing attaches a fresh event tracer holding at most capacity
// events to the cluster's fabric; every layer (fabric, verbs, shuffle,
// detector) reaches it through Network.Tracer. It returns the tracer for
// export after the run.
// On a partitioned cluster each node gets its own shard (plus one for
// control) so emission never crosses partitions; read the merged stream with
// Trace. The returned tracer is the control shard in that case.
func (c *Cluster) EnableTracing(capacity int) *telemetry.Tracer {
	if c.Group != nil {
		shards := make([]*telemetry.Tracer, c.N+1)
		for i := range shards {
			shards[i] = telemetry.NewTracer(capacity)
		}
		c.Net.SetTracerShards(shards)
		return shards[c.N]
	}
	t := telemetry.NewTracer(capacity)
	c.Net.SetTracer(t)
	return t
}

// Trace returns the run's trace events in one deterministic stream: the
// single tracer's events on the classic path, the per-node shards merged by
// (time, shard, emission order) — and renumbered — on a partitioned cluster.
// Returns nil when tracing was never enabled.
func (c *Cluster) Trace() []telemetry.Event {
	if c.Group != nil {
		return telemetry.MergeShards(c.Net.TraceShards())
	}
	if t := c.Net.Tracer(); t != nil {
		return t.Events()
	}
	return nil
}

// Metrics scrapes the whole stack into a fresh registry: every fabric NIC
// counter, every verbs device counter, and — when a failure detector is
// installed — its detection statistics. Call it after the run; counters in
// the registry are snapshots, not live handles.
func (c *Cluster) Metrics() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	c.Net.PublishMetrics(reg)
	for _, d := range c.Devs {
		d.PublishMetrics(reg)
	}
	if c.FD != nil {
		reg.Counter("cluster.fd_detections").Add(int64(c.FD.Detections))
		reg.Gauge("cluster.fd_max_detect_us").Set(float64(c.FD.MaxDetectionLatency) / 1e3)
	}
	return reg
}

// ProviderFactory builds one transport layer for one shuffle operator pair.
// It runs inside a Proc so it can charge setup time. Implementations exist
// for the RDMA designs (RDMAProvider), MPI, and IPoIB.
type ProviderFactory func(p *sim.Proc, c *Cluster) shuffle.Provider

// RDMAProvider returns a factory for one of the paper's RDMA designs.
func RDMAProvider(cfg shuffle.Config) ProviderFactory {
	return func(p *sim.Proc, c *Cluster) shuffle.Provider {
		return shuffle.Build(p, c.Devs, cfg, c.Threads)
	}
}

// SyntheticTable generates the §5.1 workload table R with two long integer
// attributes; R.a is uniformly distributed and randomized.
func SyntheticTable(seed int64, rows int) *engine.Table {
	return SyntheticTableWide(seed, rows, 16)
}

// SyntheticTableZipf generates R with Zipf-distributed keys over the given
// domain: with exponent s > 0 some partitions receive far more data than
// others, the skew scenario the flow-join line of work targets (paper §6).
func SyntheticTableZipf(seed int64, rows int, domain uint64, exponent float64) *engine.Table {
	sch := engine.NewSchema(engine.TInt64, engine.TInt64)
	t := engine.NewTable(sch)
	w := engine.NewWriter(t)
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1+exponent, 1, domain-1)
	for i := 0; i < rows; i++ {
		w.SetInt64(0, int64(z.Uint64()))
		w.SetInt64(1, int64(i))
		w.Done()
	}
	return t
}

// SyntheticTableWide generates R with a configurable record width (a
// multiple of 8, at least 16): a randomized key, a row id, and padding
// columns. Wide records drive the zero-copy ablation.
func SyntheticTableWide(seed int64, rows, width int) *engine.Table {
	if width < 16 || width%8 != 0 {
		panic(fmt.Sprintf("cluster: record width %d must be a multiple of 8, >= 16", width))
	}
	cols := make([]engine.Type, width/8)
	for i := range cols {
		cols[i] = engine.TInt64
	}
	t := engine.NewTable(engine.NewSchema(cols...))
	w := engine.NewWriter(t)
	rng := newSplitMix(uint64(seed))
	for i := 0; i < rows; i++ {
		w.SetInt64(0, int64(rng.next()))
		w.SetInt64(1, int64(i))
		w.Done()
	}
	return t
}

// splitMix is a tiny deterministic generator so table synthesis does not
// consume the simulation's RNG stream.
type splitMix struct{ x uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{x: seed} }
func (s *splitMix) next() uint64 {
	s.x += 0x9E3779B97F4A7C15
	z := s.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Phase ids used in EvPhase trace spans.
const (
	phaseSetup  = 0 // transport bootstrap: QP creation, wiring, registration
	phaseStream = 1 // the query proper
)

// BenchOpts configures a receive-throughput run (§5.1): every node scans a
// local copy of R and shuffles it on R.a.
type BenchOpts struct {
	Factory ProviderFactory
	// RowsPerNode is the size of each node's local R fragment.
	RowsPerNode int
	// Passes streams the table this many times (the paper uses ten).
	Passes int
	// Groups is the transmission pattern; nil means repartition.
	Groups shuffle.Groups
	// GroupsFn derives the transmission pattern from the cluster size when
	// Groups is nil; membership-aware recovery uses it so a restart on a
	// shrunken cluster re-plans the pattern over the survivors.
	GroupsFn func(n int) shuffle.Groups
	// BurnPerBatch makes the receiving fragment compute-intensive (Fig. 13).
	BurnPerBatch sim.Duration
	// ReceiveBatchBytes sets the receiving fragment's pull granularity when
	// BurnPerBatch is used (the paper pulls 32 KiB batches).
	ReceiveBatchBytes int
	// RowWidth is the record size in bytes (default 16; must be a multiple
	// of 8). The zero-copy ablation sweeps it.
	RowWidth int
	// ZipfExponent, when positive, draws keys from a Zipf distribution so
	// some receivers become hot (skew study); zero keeps keys uniform.
	ZipfExponent float64
	// ZeroCopy enables the shuffle operator's zero-copy send path.
	ZeroCopy bool
	// SkipTo[src][dst] marks partitions already complete from a previous
	// attempt: sender src suppresses the groups that lie entirely within its
	// skip row (partial restart). End-of-stream still propagates on skipped
	// streams, so their receivers observe a clean zero-row stream. Rows may
	// be nil or short; missing entries mean nothing is skipped.
	SkipTo [][]bool
}

// skipFor returns sender src's skip row, or nil when none is configured.
func (o BenchOpts) skipFor(src int) []bool {
	if src < len(o.SkipTo) {
		return o.SkipTo[src]
	}
	return nil
}

// BenchResult reports one receive-throughput run.
type BenchResult struct {
	// Elapsed is the query response time, excluding connection setup.
	Elapsed sim.Duration
	// SetupTime and RegTime are the transport bootstrap costs (Fig. 12).
	SetupTime, RegTime sim.Duration
	// BytesPerNode is each node's received payload volume.
	BytesPerNode []int64
	// RowsPerNode is each node's received row count.
	RowsPerNode []int64
	// SendMemoryPerNode and QPsPerOperator describe the transport (RDMA
	// providers only; zero otherwise).
	SendMemoryPerNode int64
	QPsPerOperator    int
	// BurnBatches counts node 0's receiving-fragment burn periods when
	// BurnPerBatch is set (used by the Fig. 13 harness).
	BurnBatches int64
	// SendBusyFrac and RecvBusyFrac are the fraction of worker-thread time
	// spent on CPU work (vs blocked on completions, credit, or buffers) in
	// the sending and receiving fragments — the paper's §5.1.3 profiling.
	SendBusyFrac, RecvBusyFrac float64
	// SetupNIC and StreamNIC are per-node NIC counter deltas scoped to the
	// transport-setup and streaming phases, so multi-phase experiments don't
	// conflate bootstrap traffic with the query itself. Backlog peaks in
	// StreamNIC are run-wide maxima (see NICStats.Sub).
	SetupNIC, StreamNIC []fabric.NICStats
	// Progress is each node's per-source partition watermark at the end of
	// the run (Progress[dst][src]); partial-restart recovery consults it to
	// decide which partitions a failed attempt completed.
	Progress [][]shuffle.PartitionProgress
	// Epochs records each node's device boot epoch at the end of the run. An
	// epoch above its starting value means the node rebooted mid-run: its
	// memory was wiped, so any partitions it held have regressed.
	Epochs []uint64
	// Err is the first transport error; non-nil means the run must restart.
	Err error
}

// ThroughputPerNode returns the mean per-node receive throughput in bytes
// per second of virtual time.
func (r *BenchResult) ThroughputPerNode() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	var total float64
	for _, b := range r.BytesPerNode {
		total += float64(b)
	}
	return total / float64(len(r.BytesPerNode)) / r.Elapsed.Seconds()
}

// GiBps converts ThroughputPerNode to GiB/s (the unit of Figs. 8-11).
func (r *BenchResult) GiBps() float64 { return r.ThroughputPerNode() / (1 << 30) }

// RunBenchWithRestart runs the workload like RunBench, but applies the
// paper's recovery policy: any transport error — UD message-count mismatch
// (§4.4.2), retry exhaustion erroring a Queue Pair, an endpoint stall — is
// treated as a query failure and the query restarts from scratch (on a
// fresh cluster, since a Simulation is single-use). It returns the final
// result and the number of restarts; attempts are capped at maxRestarts.
// It is a thin wrapper over RecoveryPolicy.Run.
func RunBenchWithRestart(mk func() *Cluster, opts BenchOpts, maxRestarts int) (*BenchResult, int, error) {
	pol := RecoveryPolicy{MaxRestarts: maxRestarts}
	r, err := pol.Run(func(int) *Cluster { return mk() }, opts)
	if err != nil {
		if errors.Is(err, ErrRecoveryExhausted) {
			return r.BenchResult, r.Restarts, r.BenchResult.Err
		}
		return nil, r.Restarts, err
	}
	return r.BenchResult, r.Restarts, nil
}

// RunBench executes the synthetic receive-throughput query to completion
// and returns its metrics. It owns the cluster's simulation.
func (c *Cluster) RunBench(opts BenchOpts) (*BenchResult, error) {
	if opts.Passes <= 0 {
		opts.Passes = 1
	}
	groups := opts.Groups
	if groups == nil && opts.GroupsFn != nil {
		groups = opts.GroupsFn(c.N)
	}
	if groups == nil {
		groups = shuffle.Repartition(c.N)
	}
	res := &BenchResult{
		BytesPerNode: make([]int64, c.N),
		RowsPerNode:  make([]int64, c.N),
	}
	if opts.RowWidth == 0 {
		opts.RowWidth = 16
	}
	tables := make([]*engine.Table, c.N)
	for a := 0; a < c.N; a++ {
		if opts.ZipfExponent > 0 {
			tables[a] = SyntheticTableZipf(int64(a)+1, opts.RowsPerNode, 1<<20, opts.ZipfExponent)
		} else {
			tables[a] = SyntheticTableWide(int64(a)+1, opts.RowsPerNode, opts.RowWidth)
		}
	}
	sch := tables[0].Sch

	c.Sim.Spawn("bench", func(p *sim.Proc) {
		tr := c.Net.TracerAt(-1)
		tr.Begin(p.Now(), telemetry.EvPhase, -1, 0, phaseSetup, 0)
		prov := opts.Factory(p, c)
		if comm, ok := prov.(*shuffle.Comm); ok {
			res.SetupTime, res.RegTime = comm.SetupTime, comm.RegTime
			res.SendMemoryPerNode = comm.SendMemoryPerNode
			res.QPsPerOperator = comm.QPsPerOperator
		} else if sr, ok := prov.(setupReporter); ok {
			res.SetupTime, res.RegTime = sr.Setup()
		}
		res.SetupNIC = c.Net.SnapshotStats()
		start := p.Now()
		tr.End(start, telemetry.EvPhase, -1, 0, phaseSetup, 0)
		tr.Begin(start, telemetry.EvPhase, -1, 0, phaseStream, 0)
		c.FireBenchStart()
		done := c.Sim.NewWaitGroup("bench")
		// The WaitGroup lives on the control partition; a worker fragment's
		// completion is a control message — on a partitioned run it routes
		// home like any other cross-node interaction, paying one route
		// latency, so the join instant is identical at every LP count.
		finish := func(node int) func(*sim.Proc) {
			if c.Group == nil {
				return func(*sim.Proc) { done.Done() }
			}
			return func(*sim.Proc) {
				at := c.Net.SimAt(node).Now().Add(c.Net.Prof.RouteLatency())
				c.Net.Route(node, c.N, at, func() { done.Done() })
			}
		}
		sends := make([]*shuffle.Shuffle, c.N)
		recvs := make([]*shuffle.Receive, c.N)
		sendSinks := make([]*engine.Sink, c.N)
		recvSinks := make([]*engine.Sink, c.N)
		var node0Burn *engine.Burn
		for a := 0; a < c.N; a++ {
			a := a
			sends[a] = &shuffle.Shuffle{
				In:   &engine.Scan{T: tables[a], Passes: opts.Passes},
				Comm: prov, Node: a, G: groups, Key: shuffle.KeyInt64Col(0),
				ZeroCopy: opts.ZeroCopy, SkipTo: opts.skipFor(a),
			}
			sendSink := &engine.Sink{In: sends[a]}
			sendSinks[a] = sendSink
			done.Add(1)
			sendSink.Run(c.Ctx(a), fmt.Sprintf("send%d", a), finish(a))

			bt := 0
			if opts.ReceiveBatchBytes > 0 {
				bt = opts.ReceiveBatchBytes / sch.Width()
			}
			recvs[a] = &shuffle.Receive{Comm: prov, Node: a, Sch: sch, BatchTuples: bt}
			var top engine.Operator = recvs[a]
			var burn *engine.Burn
			if opts.BurnPerBatch > 0 {
				burn = &engine.Burn{In: top, PerBatch: opts.BurnPerBatch}
				top = burn
			}
			if a == 0 && burn != nil {
				node0Burn = burn
			}
			recvSink := &engine.Sink{In: top}
			recvSinks[a] = recvSink
			done.Add(1)
			recvSink.Run(c.Ctx(a), fmt.Sprintf("recv%d", a), finish(a))
		}
		if c.Group != nil {
			// Setup reached across partitions freely (fused lockstep); from
			// the next barrier on, the streaming phase runs wide — every
			// partition executes its lookahead window in parallel.
			c.Group.GoWide()
		}
		c.Sim.Spawn("bench-join", func(p *sim.Proc) {
			done.Wait(p)
			// The query ends the instant the last finish() lands, before any
			// engine rejoin: Fuse parks this Proc across a barrier and resumes
			// it two lookahead intervals later, so reading the clock after it
			// would fold engine bookkeeping into Elapsed.
			end := p.Now()
			if c.Group != nil {
				// Rejoin lockstep before reading worker-side state: sinks,
				// receive counters, NIC stats all live on other partitions.
				c.Group.Fuse(p)
			}
			if c.FD != nil {
				c.FD.Stop()
			}
			res.Elapsed = end.Sub(start)
			tr.End(end, telemetry.EvPhase, -1, 0, phaseStream, 0)
			final := c.Net.SnapshotStats()
			res.StreamNIC = make([]fabric.NICStats, len(final))
			for i := range final {
				res.StreamNIC[i] = final[i].Sub(res.SetupNIC[i])
			}
			if node0Burn != nil {
				res.BurnBatches = node0Burn.Batches
			}
			var sb, sw, rb, rw sim.Duration
			for a := 0; a < c.N; a++ {
				sb += sendSinks[a].Busy
				sw += sendSinks[a].Blocked
				rb += recvSinks[a].Busy
				rw += recvSinks[a].Blocked
			}
			if sb+sw > 0 {
				res.SendBusyFrac = sb.Seconds() / (sb + sw).Seconds()
			}
			if rb+rw > 0 {
				res.RecvBusyFrac = rb.Seconds() / (rb + rw).Seconds()
			}
			res.Progress = make([][]shuffle.PartitionProgress, c.N)
			res.Epochs = make([]uint64, c.N)
			for a := 0; a < c.N; a++ {
				res.BytesPerNode[a] = recvs[a].Bytes
				res.RowsPerNode[a] = recvs[a].Rows
				res.Progress[a] = recvs[a].Progress(c.N)
				res.Epochs[a] = c.Devs[a].Epoch()
				if err := shuffle.CheckErr(sends[a], recvs[a]); err != nil && res.Err == nil {
					res.Err = err
				}
			}
		})
	})
	if c.Group != nil {
		if err := c.Group.Run(); err != nil {
			return nil, err
		}
	} else if err := c.Sim.Run(); err != nil {
		return nil, err
	}
	c.Recycle()
	return res, nil
}

// Recycle tears the cluster down after its simulation finishes: every
// pooled registered ring on the cluster's devices returns to the
// process-wide buffer pool, and the simulation's Proc goroutines are shut
// down (see sim.Shutdown — without this, each discarded cluster leaks its
// parked goroutines and everything they pin, and sweeps over many clusters
// slow down as the GC's mark work grows). The simulation must be finished
// and must not run again: a recycled ring may immediately back an endpoint
// in another cluster. RunBench calls it on completion; call it directly
// after hand-rolled runs (tpch queries) that drive c.Sim.Run themselves.
// Idempotent. Reading results, stats, and c.Sim.Events() remains safe.
func (c *Cluster) Recycle() {
	for _, d := range c.Devs {
		d.RecycleMRs()
	}
	if c.Group != nil {
		c.Group.Shutdown()
		return
	}
	c.Sim.Shutdown()
}
