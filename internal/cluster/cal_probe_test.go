package cluster

import (
	"fmt"
	"testing"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

func TestCalProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, prof := range []fabric.Profile{fabric.FDR(), fabric.EDR()} {
		for _, nodes := range []int{8, 16} {
			fmt.Printf("== %s %d nodes repartition ==\n", prof.Name, nodes)
			for _, a := range shuffle.Algorithms {
				cfg := a.Config(prof.Threads)
				res := benchRun(t, quiet(prof), cfg, nodes, 1_000_000, nil)
				fmt.Printf("  %-8s %6.2f GiB/s\n", a.Name, res.GiBps())
			}
		}
	}
	// Message-size sweep, SEMQ/SR and MEMQ/SR on EDR 8 nodes (Fig 9a).
	fmt.Println("== EDR 8 nodes message size (MQ/SR) ==")
	for _, bs := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10} {
		se := benchRun(t, quiet(fabric.EDR()), shuffle.Config{Impl: shuffle.MQSR, Endpoints: 1, BufSize: bs}, 8, 1_000_000, nil)
		me := benchRun(t, quiet(fabric.EDR()), shuffle.Config{Impl: shuffle.MQSR, Endpoints: 14, BufSize: bs}, 8, 1_000_000, nil)
		fmt.Printf("  %6dKiB SEMQ=%6.2f MEMQ=%6.2f\n", bs>>10, se.GiBps(), me.GiBps())
	}
	// Broadcast EDR 8 nodes.
	fmt.Println("== EDR 8 nodes broadcast ==")
	for _, a := range shuffle.Algorithms {
		cfg := a.Config(14)
		res := benchRun(t, quiet(fabric.EDR()), cfg, 8, 150_000, shuffle.Broadcast(8))
		fmt.Printf("  %-8s %6.2f GiB/s\n", a.Name, res.GiBps())
	}
}
