package cluster

import (
	"strings"
	"testing"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// incast returns the transmission pattern that funnels every node's rows
// into node 0 — the congestion-heaviest plan the shuffle operator can
// produce, and the one the lossy RoCEv2 tier exists to survive.
func incast(n int) shuffle.Groups { return shuffle.Groups{{0}} }

// runLossyIncast shuffles a Zipf-skewed plan — most rows funnel to node 0,
// but every sender also feeds the other seven destinations, so a PFC pause
// on a sender's uplink stalls its victim flows too — on the given fabric and
// returns the result (Err left for the caller to judge).
func runLossyIncast(t *testing.T, prof fabric.Profile, seed int64, rows int) *BenchResult {
	t.Helper()
	c := New(prof, 8, 2, seed)
	cfg := shuffle.Algorithms[0].Config(c.Threads) // MEMQ/SR
	// A deep per-peer send window lets every sender commit far more than the
	// switch buffer: without congestion control the incast must overrun.
	cfg.BuffersPerPeer = 8
	cfg.BufSize = 32 << 10
	res, err := c.RunBench(BenchOpts{
		Factory: RDMAProvider(cfg), RowsPerNode: rows, ZipfExponent: 1.0,
	})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	return res
}

// TestLossyIncastDCQCNDegradationWhenDisabled is the acceptance check for
// the DCQCN rate limiter: under RoCEv2Lossy with an incast-heavy skewed
// plan, turning the congestion-control loop off must measurably degrade the
// response time. With the loop on, WRED marks hold the hot queue near the
// marking threshold and the run completes cleanly; with it off, the switch
// tail-drops entire committed windows, the NICs burn ACK timeouts on
// go-back-N replays, and sustained overrun can exhaust retry budgets —
// surfacing as a bounded QP error / stalled-endpoint report, never a panic
// or a hang.
func TestLossyIncastDCQCNDegradationWhenDisabled(t *testing.T) {
	const rows = 262144
	on := runLossyIncast(t, fabric.RoCEv2Lossy(), 42, rows)
	if on.Err != nil {
		t.Fatalf("with DCQCN on the lossy incast must complete cleanly; got %v", on.Err)
	}

	off := fabric.RoCEv2Lossy()
	off.DCQCN = false
	offRes := runLossyIncast(t, off, 42, rows)

	// Degradation can surface two ways, both acceptable and both "measurable":
	// the run limps home slower, or loss escalates past the retry budget and
	// the query dies with a bounded transport error. What is NOT acceptable
	// is off matching on.
	if offRes.Err == nil && float64(offRes.Elapsed) < 1.05*float64(on.Elapsed) {
		t.Fatalf("DCQCN off finished in %v vs on %v with no error: disabling congestion control should measurably hurt",
			offRes.Elapsed, on.Elapsed)
	}
	t.Logf("DCQCN on: %v; DCQCN off: %v (err=%v)", on.Elapsed, offRes.Elapsed, offRes.Err)
}

// TestLossyChaosSmoke runs an RC design and a UD design through the fault
// matrix on the lossy RoCEv2 fabric: congestion hazards (pauses, marks,
// drops, retransmits) compose with injected faults, yet every query must
// converge with all rows delivered and bitwise identical outcomes on a
// same-seed repeat.
func TestLossyChaosSmoke(t *testing.T) {
	opts := chaosOpts()
	opts.Prof = fabric.RoCEv2Lossy()
	want := int64(opts.Nodes) * int64(opts.RowsPerNode)
	algs := []shuffle.Algorithm{shuffle.Algorithms[0], shuffle.Algorithms[2]} // MEMQ/SR, MESQ/SR
	for _, alg := range algs {
		for _, f := range ChaosFaults() {
			alg, f := alg, f
			t.Run(alg.Name+"/"+f.Name, func(t *testing.T) {
				o1, err := RunChaos(alg, f, opts)
				if err != nil {
					t.Fatalf("simulation failed: %v", err)
				}
				o2, err := RunChaos(alg, f, opts)
				if err != nil {
					t.Fatalf("simulation failed on repeat: %v", err)
				}
				if o1 != o2 {
					t.Fatalf("nondeterministic lossy outcome:\n  %+v\n  %+v", o1, o2)
				}
				if o1.Failed {
					t.Fatalf("recovery did not converge on the lossy fabric: %s", o1.Err)
				}
				if o1.Rows != want {
					t.Fatalf("rows = %d, want %d (restarts %d)", o1.Rows, want, o1.Restarts)
				}
			})
		}
	}
}

// tracedLossyRun executes one lossy incast with tracing enabled and returns
// the exported Chrome trace.
func tracedLossyRun(t *testing.T, seed int64, rows int) string {
	t.Helper()
	c := New(fabric.RoCEv2Lossy(), 4, 2, seed)
	tr := c.EnableTracing(1 << 18)
	cfg := shuffle.Algorithms[0].Config(c.Threads)
	res, err := c.RunBench(BenchOpts{
		Factory: RDMAProvider(cfg), RowsPerNode: rows, GroupsFn: incast,
	})
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("traced lossy run errored: %v", res.Err)
	}
	var b strings.Builder
	if err := telemetry.WriteChromeTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestLossyTraceDeterminism extends the trace oracle to the lossy tier:
// same-seed runs with congestion control active — ECN marks, CNPs, rate
// cuts, possibly pause frames and retransmits — must export byte-identical
// Chrome traces, and the new event vocabulary must actually appear.
func TestLossyTraceDeterminism(t *testing.T) {
	a := tracedLossyRun(t, 7, 16384)
	b := tracedLossyRun(t, 7, 16384)
	if a != b {
		t.Fatal("same-seed lossy runs exported different traces")
	}
	if c := tracedLossyRun(t, 7, 16640); c == a {
		t.Fatal("different lossy workloads exported identical traces")
	}
	for _, ev := range []string{`"name":"ecn_mark"`, `"name":"cnp"`, `"name":"rate_cut"`} {
		if !strings.Contains(a, ev) {
			t.Errorf("lossy trace missing event %s", ev)
		}
	}
}

var _ = sim.Duration(0)
