package cluster

import (
	"runtime"
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

// TestRecycleReleasesProcGoroutines pins that discarding a cluster leaves
// nothing behind: RunBench's Recycle must shut down the simulation's proc
// goroutines along with returning its rings to the buffer pool. Before
// this guarantee, every cluster leaked its full proc population (about 26
// goroutines at this scale), each parked goroutine pinning the cluster's
// simulation, wheel, and rings — so benchmark and experiment sweeps slowed
// down linearly with the number of clusters built as GC mark and
// stack-scan work accumulated.
func TestRecycleReleasesProcGoroutines(t *testing.T) {
	run := func() {
		c := New(fabric.FDR(), 4, 2, 42)
		_, err := c.RunBench(BenchOpts{
			Factory:     RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 2}),
			RowsPerNode: 2048,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	run() // warm process-wide pools before taking the baseline
	base := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		run()
	}
	// Killed goroutines have handed control back by the time Recycle
	// returns but may not have finished exiting; give them a moment.
	n := runtime.NumGoroutine()
	for deadline := time.Now().Add(5 * time.Second); n > base && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > base {
		t.Fatalf("goroutines grew %d -> %d over 8 cluster runs; Recycle is leaking procs", base, n)
	}
}
