// Out-of-band failure detection. The connection manager of every node
// exchanges heartbeats with every peer over the management lane; when a peer
// stays silent past a suspicion threshold the detector declares it down and
// tells the local verbs device (Device.NotifyPeerDown), which errors the
// affected Queue Pairs and lets the shuffle endpoints drain. Crash-stop
// outages are therefore detected in a few heartbeat periods of virtual time
// instead of waiting for an endpoint stall timeout.
package cluster

import (
	"time"

	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// DetectorConfig parameterizes the heartbeat failure detector in virtual
// time.
type DetectorConfig struct {
	// Period is the heartbeat interval; zero selects 500us.
	Period sim.Duration
	// Suspect is the number of consecutive missed periods after which a
	// silent peer is declared down; zero selects 3. Detection latency is
	// bounded by (Suspect+2)*Period.
	Suspect int
	// Horizon stops the detector after this much virtual time as a backstop
	// so a wedged run still surfaces as a simulation deadlock instead of
	// ticking forever; zero selects 1s. Benchmarks stop the detector as soon
	// as the query completes, long before the horizon.
	Horizon sim.Duration
}

func (cfg DetectorConfig) defaulted() DetectorConfig {
	if cfg.Period <= 0 {
		cfg.Period = 500 * time.Microsecond
	}
	if cfg.Suspect <= 0 {
		cfg.Suspect = 3
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = time.Second
	}
	return cfg
}

// Detector is the cluster-wide heartbeat failure detector. Heartbeats ride
// the management lane (the same out-of-band channel the connection setup
// uses), so they share the crash fate of the NIC: a FaultCrash silences a
// node's heartbeats exactly when it silences its data traffic. The exchange
// is evaluated analytically against the fault plan at every tick rather
// than as fabric messages, keeping the data path untouched; transient
// faults (pause, loss, degradation) are shorter than any realistic
// suspicion threshold and never silence the modeled heartbeats.
type Detector struct {
	cfg DetectorConfig
	c   *Cluster

	// lastHeard[i][j] is the last tick at which node i heard node j's
	// heartbeat; suspected[i][j] latches i's suspicion of j.
	lastHeard [][]sim.Time
	suspected [][]bool
	stopped   bool

	// Detections counts suspicion events across all node pairs.
	Detections int
	// MaxDetectionLatency is the worst gap between a node's actual crash
	// time and a survivor suspecting it.
	MaxDetectionLatency sim.Duration
}

// InstallDetector arms a heartbeat failure detector on the cluster and
// starts it ticking immediately (first tick one period into the run). Call
// before RunBench; the benchmark stops the detector once the query
// completes.
func (c *Cluster) InstallDetector(cfg DetectorConfig) *Detector {
	cfg = cfg.defaulted()
	d := &Detector{cfg: cfg, c: c}
	d.lastHeard = make([][]sim.Time, c.N)
	d.suspected = make([][]bool, c.N)
	for i := 0; i < c.N; i++ {
		d.lastHeard[i] = make([]sim.Time, c.N)
		d.suspected[i] = make([]bool, c.N)
	}
	c.FD = d
	d.schedule()
	return d
}

// Stop halts the heartbeat exchange; the already-scheduled tick becomes a
// no-op and nothing further is scheduled.
func (d *Detector) Stop() { d.stopped = true }

func (d *Detector) schedule() {
	d.c.Sim.After(d.cfg.Period, func() {
		if d.stopped {
			return
		}
		d.step()
		if d.c.Sim.Now().Sub(0) < d.cfg.Horizon {
			d.schedule()
		}
	})
}

// step evaluates one heartbeat round: every pair exchanges a heartbeat
// unless the fault plan has crashed the sender (at send time) or the
// listener (now), then silent pairs past the suspicion threshold are
// declared down.
func (d *Detector) step() {
	now := d.c.Sim.Now()
	net := d.c.Net
	net.Tracer().Instant(now, telemetry.EvFDTick, -1, 0, int64(d.Detections), 0)
	wire := net.Prof.PropagationDelay + net.Prof.SwitchDelay
	sent := now.Add(-wire)
	if sent < 0 {
		sent = 0
	}
	threshold := sim.Duration(d.cfg.Suspect) * d.cfg.Period
	for i := 0; i < d.c.N; i++ {
		listening := !net.Crashed(i, now)
		for j := 0; j < d.c.N; j++ {
			if i == j {
				continue
			}
			if listening && !net.Crashed(j, sent) {
				d.lastHeard[i][j] = now
				continue
			}
			if d.suspected[i][j] || now.Sub(d.lastHeard[i][j]) <= threshold {
				continue
			}
			d.suspected[i][j] = true
			d.Detections++
			net.Tracer().Instant(now, telemetry.EvSuspect, int32(i), 0, int64(j), 0)
			if ct, ok := net.CrashTime(j); ok && ct <= now {
				if lat := now.Sub(ct); lat > d.MaxDetectionLatency {
					d.MaxDetectionLatency = lat
				}
			}
			d.c.Devs[i].NotifyPeerDown(j)
		}
	}
}

// Dead returns the nodes a majority of the cluster suspects, in node order.
// A single crashed node is always in the set once detected (its survivors
// all suspect it), while the crashed node's own suspicions of everyone else
// — it hears nothing once its NIC dies — never reach a majority.
func (d *Detector) Dead() []int {
	var dead []int
	for j := 0; j < d.c.N; j++ {
		votes := 0
		for i := 0; i < d.c.N; i++ {
			if i != j && d.suspected[i][j] {
				votes++
			}
		}
		if 2*votes > d.c.N {
			dead = append(dead, j)
		}
	}
	return dead
}

// Suspected reports whether node i currently suspects node j.
func (d *Detector) Suspected(i, j int) bool { return d.suspected[i][j] }
