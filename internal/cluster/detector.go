// Out-of-band failure detection. The connection manager of every node
// exchanges heartbeats with every peer over the management lane; when a peer
// stays silent past a suspicion threshold the detector declares it down and
// tells the local verbs device (Device.NotifyPeerDown), which errors the
// affected Queue Pairs and lets the shuffle endpoints drain. Crash-stop
// outages are therefore detected in a few heartbeat periods of virtual time
// instead of waiting for an endpoint stall timeout.
package cluster

import (
	"time"

	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// DetectorConfig parameterizes the heartbeat failure detector in virtual
// time.
type DetectorConfig struct {
	// Period is the heartbeat interval; zero selects 500us.
	Period sim.Duration
	// Suspect is the number of consecutive missed periods after which a
	// silent peer is declared down; zero selects 3. Detection latency is
	// bounded by (Suspect+2)*Period.
	Suspect int
	// Horizon stops the detector after this much virtual time as a backstop
	// so a wedged run still surfaces as a simulation deadlock instead of
	// ticking forever; zero selects 1s. Benchmarks stop the detector as soon
	// as the query completes, long before the horizon.
	Horizon sim.Duration
}

func (cfg DetectorConfig) defaulted() DetectorConfig {
	if cfg.Period <= 0 {
		cfg.Period = 500 * time.Microsecond
	}
	if cfg.Suspect <= 0 {
		cfg.Suspect = 3
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = time.Second
	}
	return cfg
}

// Detector is the cluster-wide heartbeat failure detector. Heartbeats ride
// the management lane (the same out-of-band channel the connection setup
// uses), so they share the crash fate of the NIC: a FaultCrash silences a
// node's heartbeats exactly when it silences its data traffic. The exchange
// is evaluated analytically against the fault plan at every tick rather
// than as fabric messages, keeping the data path untouched; transient
// faults (pause, loss, degradation) are shorter than any realistic
// suspicion threshold and never silence the modeled heartbeats.
type Detector struct {
	cfg DetectorConfig
	c   *Cluster

	// lastHeard[i][j] is the last tick at which node i heard node j's
	// heartbeat; suspected[i][j] is i's current suspicion of j. Suspicion is
	// not terminal: hearing a suspected peer again clears it (the partition
	// healed or the node rebooted) and advances i's view epoch.
	lastHeard [][]sim.Time
	suspected [][]bool
	// viewEpoch[i] counts membership-view changes at node i; every suspicion
	// set or clear advances it, so two views with equal epochs are identical.
	viewEpoch []uint64
	// prevDown[j] remembers whether j's port was dark at the previous tick;
	// the first tick after a reboot window closes bumps j's device boot
	// epoch, modeling the memory wipe that fences pre-reboot writers.
	prevDown []bool
	// lastTick is the virtual time of the most recent heartbeat round; Dead
	// uses it to judge witness freshness.
	lastTick sim.Time
	stopped  bool

	// Detections counts suspicion events across all node pairs.
	Detections int
	// MaxDetectionLatency is the worst gap between a node's actual outage
	// time and a survivor suspecting it.
	MaxDetectionLatency sim.Duration
}

// InstallDetector arms a heartbeat failure detector on the cluster and
// starts it ticking immediately (first tick one period into the run). Call
// before RunBench; the benchmark stops the detector once the query
// completes.
func (c *Cluster) InstallDetector(cfg DetectorConfig) *Detector {
	cfg = cfg.defaulted()
	d := &Detector{cfg: cfg, c: c}
	d.lastHeard = make([][]sim.Time, c.N)
	d.suspected = make([][]bool, c.N)
	d.viewEpoch = make([]uint64, c.N)
	d.prevDown = make([]bool, c.N)
	for i := 0; i < c.N; i++ {
		d.lastHeard[i] = make([]sim.Time, c.N)
		d.suspected[i] = make([]bool, c.N)
	}
	c.FD = d
	d.schedule()
	return d
}

// Stop halts the heartbeat exchange; the already-scheduled tick becomes a
// no-op and nothing further is scheduled.
func (d *Detector) Stop() { d.stopped = true }

// notify delivers a connection-manager verdict (peer-down, peer-up, epoch
// bump) to node's device. The detector itself is control-partition state; on
// a partitioned cluster the verdict rides a routed management message to the
// node's partition — a device is only ever touched by its own partition —
// arriving one route latency after the tick, at any LP count. The classic
// path keeps the historical synchronous call.
func (d *Detector) notify(node int, fn func()) {
	c := d.c
	if c.Group == nil {
		fn()
		return
	}
	c.Net.Route(c.N, node, c.Sim.Now().Add(c.Net.Prof.RouteLatency()), fn)
}

func (d *Detector) schedule() {
	d.c.Sim.After(d.cfg.Period, func() {
		if d.stopped {
			return
		}
		d.step()
		if d.c.Sim.Now().Sub(0) < d.cfg.Horizon {
			d.schedule()
		}
	})
}

// step evaluates one heartbeat round: every pair exchanges a heartbeat
// unless the fault plan has silenced the sender's port (at send time), the
// listener's port (now), or cut the sender→listener link (a partition).
// Silent pairs past the suspicion threshold are suspected; hearing a
// suspected peer again clears the suspicion — a partition produces
// suspicion, not a permanent death verdict.
func (d *Detector) step() {
	now := d.c.Sim.Now()
	net := d.c.Net
	net.TracerAt(-1).Instant(now, telemetry.EvFDTick, -1, 0, int64(d.Detections), 0)
	wire := net.Prof.PropagationDelay + net.Prof.SwitchDelay
	sent := now.Add(-wire)
	if sent < 0 {
		sent = 0
	}
	threshold := sim.Duration(d.cfg.Suspect) * d.cfg.Period
	// A reboot window that closed since the previous tick advances the
	// node's boot epoch: its memory came back empty, and the epoch fence
	// keeps pre-reboot Queue Pairs out of it.
	for j := 0; j < d.c.N; j++ {
		down := net.Down(j, now)
		if d.prevDown[j] && !down {
			dev := d.c.Devs[j]
			d.notify(j, func() { dev.BumpEpoch() })
		}
		d.prevDown[j] = down
	}
	for i := 0; i < d.c.N; i++ {
		listening := !net.Down(i, now)
		for j := 0; j < d.c.N; j++ {
			if i == j {
				continue
			}
			if listening && !net.Down(j, sent) && !net.Cut(j, i, now) {
				d.lastHeard[i][j] = now
				if d.suspected[i][j] {
					// The peer is back (heal or reboot): clear the suspicion,
					// advance the view, and let the connection manager re-arm.
					d.suspected[i][j] = false
					d.viewEpoch[i]++
					dev, peer := d.c.Devs[i], j
					d.notify(i, func() { dev.NotifyPeerUp(peer) })
				}
				continue
			}
			if d.suspected[i][j] || now.Sub(d.lastHeard[i][j]) <= threshold {
				continue
			}
			d.suspected[i][j] = true
			d.viewEpoch[i]++
			d.Detections++
			net.TracerAt(-1).Instant(now, telemetry.EvSuspect, int32(i), 0, int64(j), 0)
			if dt, ok := net.DownTime(j); ok && dt <= now {
				if lat := now.Sub(dt); lat > d.MaxDetectionLatency {
					d.MaxDetectionLatency = lat
				}
			}
			dev, peer := d.c.Devs[i], j
			d.notify(i, func() { dev.NotifyPeerDown(peer) })
		}
	}
	d.lastTick = now
}

// Dead returns the nodes the cluster has declared dead, in node order. A
// node j is dead when a majority suspects it AND no live witness vouches
// for it: a witness is a node i that is itself not majority-suspected, does
// not suspect j, and heard j within the suspicion threshold of the last
// heartbeat round. A crashed node has no witnesses (nobody hears it), so it
// is declared dead as before; a node severed from a majority by an
// asymmetric partition keeps a fresh witness on the reachable side and is
// only ever suspected — suspicion, not split-brain false death.
func (d *Detector) Dead() []int {
	threshold := sim.Duration(d.cfg.Suspect) * d.cfg.Period
	majoritySuspected := make([]bool, d.c.N)
	for j := 0; j < d.c.N; j++ {
		votes := 0
		for i := 0; i < d.c.N; i++ {
			if i != j && d.suspected[i][j] {
				votes++
			}
		}
		majoritySuspected[j] = 2*votes > d.c.N
	}
	var dead []int
	for j := 0; j < d.c.N; j++ {
		if !majoritySuspected[j] {
			continue
		}
		vetoed := false
		for i := 0; i < d.c.N && !vetoed; i++ {
			if i == j || majoritySuspected[i] || d.suspected[i][j] {
				continue
			}
			if d.lastTick.Sub(d.lastHeard[i][j]) <= threshold {
				vetoed = true
			}
		}
		if !vetoed {
			dead = append(dead, j)
		}
	}
	return dead
}

// Suspected reports whether node i currently suspects node j.
func (d *Detector) Suspected(i, j int) bool { return d.suspected[i][j] }

// ViewEpoch returns node i's membership-view epoch: it advances on every
// suspicion set or clear at i, so equal epochs imply identical views.
func (d *Detector) ViewEpoch(i int) uint64 { return d.viewEpoch[i] }

// View returns node i's current membership view: its epoch stamp and the
// peers i suspects, in node order.
func (d *Detector) View(i int) (epoch uint64, suspects []int) {
	for j := 0; j < d.c.N; j++ {
		if d.suspected[i][j] {
			suspects = append(suspects, j)
		}
	}
	return d.viewEpoch[i], suspects
}
