package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

func chaosOpts() ChaosOpts {
	return ChaosOpts{
		Prof: fabric.FDR(), Nodes: 3, Threads: 2,
		RowsPerNode: 8192, Seed: 11,
		Policy: RecoveryPolicy{
			MaxRestarts: 2,
			BaseBackoff: 500 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
		},
	}
}

// TestChaosMatrix runs every algorithm of Table 1 under every fault class
// twice with the same seed, asserting (a) no simulation failure, (b) the
// recovery policy ends in success with every row delivered, (c) bitwise
// identical outcomes — the schedule is deterministic — and (d) the faults
// that must force a query restart actually do.
func TestChaosMatrix(t *testing.T) {
	opts := chaosOpts()
	want := int64(opts.Nodes) * int64(opts.RowsPerNode)
	for _, alg := range shuffle.Algorithms {
		for _, f := range ChaosFaults() {
			alg, f := alg, f
			t.Run(alg.Name+"/"+f.Name, func(t *testing.T) {
				o1, err := RunChaos(alg, f, opts)
				if err != nil {
					t.Fatalf("simulation failed: %v", err)
				}
				o2, err := RunChaos(alg, f, opts)
				if err != nil {
					t.Fatalf("simulation failed on repeat: %v", err)
				}
				if o1 != o2 {
					t.Fatalf("nondeterministic outcome:\n  %+v\n  %+v", o1, o2)
				}
				if o1.Failed {
					t.Fatalf("recovery did not converge: %s", o1.Err)
				}
				if o1.Rows != want {
					t.Fatalf("rows = %d, want %d (restarts %d)", o1.Rows, want, o1.Restarts)
				}
				udAlg := alg.Impl == shuffle.SQSR
				if f.Name == "ud-loss" && udAlg && o1.Restarts == 0 {
					t.Fatalf("UD datagram loss should force a restart of %s", alg.Name)
				}
				if f.Name == "rc-outage" && !udAlg && o1.Restarts == 0 {
					t.Fatalf("RC outage should force a restart of %s", alg.Name)
				}
				if (f.Name == "degrade" || f.Name == "pause" || f.Name == "corrupt") && o1.Restarts != 0 {
					t.Fatalf("survivable fault %s restarted %s %d time(s): %+v",
						f.Name, alg.Name, o1.Restarts, o1)
				}
			})
		}
	}
}

// TestChaosPersistentFaultGivesUp arms the same fault on every attempt: the
// recovery policy must exhaust its restart budget and report a clean,
// diagnosable terminal error instead of hanging or panicking.
func TestChaosPersistentFaultGivesUp(t *testing.T) {
	persistent := ChaosFault{Name: "persistent-ud-loss", Install: func(c *Cluster, attempt int) {
		c.Net.Faults().Add(fabric.FaultRule{
			Class: fabric.FaultUDLoss, From: fabric.AnyNode, To: 1, Count: 3,
		})
	}}
	opts := chaosOpts()
	o, err := RunChaos(shuffle.Algorithm{Name: "MESQ/SR", Impl: shuffle.SQSR, ME: true}, persistent, opts)
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if !o.Failed {
		t.Fatalf("persistent fault should exhaust recovery: %+v", o)
	}
	if o.Restarts != opts.Policy.MaxRestarts {
		t.Fatalf("restarts = %d, want %d", o.Restarts, opts.Policy.MaxRestarts)
	}
	if !strings.Contains(o.Err, "recovery exhausted") {
		t.Fatalf("terminal error not diagnosable: %q", o.Err)
	}
}

// TestRecoveryPolicyDeadline bounds the total virtual time: with a deadline
// shorter than one attempt, a failing query gets no restart at all.
func TestRecoveryPolicyDeadline(t *testing.T) {
	mk := func(attempt int) *Cluster {
		c := New(quiet(fabric.EDR()), 2, 4, 7)
		c.Sim.After(1, func() { c.Net.InjectUDLoss(1, 2) })
		return c
	}
	pol := RecoveryPolicy{MaxRestarts: 5, Deadline: 1} // 1ns: spent by any attempt
	r, err := pol.Run(mk, BenchOpts{
		Factory:     RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 4, DepletedTimeout: 5 * time.Millisecond}),
		RowsPerNode: 20_000,
	})
	if !errors.Is(err, ErrRecoveryExhausted) {
		t.Fatalf("err = %v, want ErrRecoveryExhausted", err)
	}
	if len(r.Attempts) != 1 || r.Restarts != 0 {
		t.Fatalf("attempts = %d restarts = %d, want 1 and 0", len(r.Attempts), r.Restarts)
	}
	if r.Attempts[0].Err == nil || r.TotalVirtual < r.Attempts[0].Elapsed {
		t.Fatalf("attempt bookkeeping wrong: %+v", r.Attempts[0])
	}
}

// TestRecoveryPolicyBackoff pins the exponential backoff schedule.
func TestRecoveryPolicyBackoff(t *testing.T) {
	pol := RecoveryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	want := []time.Duration{1, 2, 4, 4, 4}
	for i, w := range want {
		if got := pol.backoff(i); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if none := (RecoveryPolicy{}).backoff(3); none != 0 {
		t.Fatalf("zero policy backoff = %v, want 0", none)
	}
}

// TestRecoveryPolicyRecordsAttempts checks the per-restart metrics: one
// failed attempt with a backoff before the successful retry.
func TestRecoveryPolicyRecordsAttempts(t *testing.T) {
	mk := func(attempt int) *Cluster {
		c := New(quiet(fabric.EDR()), 2, 4, 7)
		if attempt == 0 {
			c.Sim.After(1, func() { c.Net.InjectUDLoss(1, 2) })
		}
		return c
	}
	pol := RecoveryPolicy{MaxRestarts: 3, BaseBackoff: time.Millisecond}
	r, err := pol.Run(mk, BenchOpts{
		Factory:     RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 4, DepletedTimeout: 5 * time.Millisecond}),
		RowsPerNode: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Restarts != 1 || len(r.Attempts) != 2 {
		t.Fatalf("restarts = %d attempts = %d, want 1 and 2", r.Restarts, len(r.Attempts))
	}
	if !errors.Is(r.Attempts[0].Err, shuffle.ErrDataLoss) {
		t.Fatalf("first attempt error = %v, want data loss", r.Attempts[0].Err)
	}
	if r.Attempts[1].Err != nil || r.Attempts[1].Backoff != time.Millisecond {
		t.Fatalf("second attempt = %+v, want success after 1ms backoff", r.Attempts[1])
	}
	if wantTotal := r.Attempts[0].Elapsed + r.Attempts[1].Elapsed + time.Millisecond; r.TotalVirtual != wantTotal {
		t.Fatalf("TotalVirtual = %v, want %v", r.TotalVirtual, wantTotal)
	}
}
