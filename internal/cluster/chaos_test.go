package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
)

func chaosOpts() ChaosOpts {
	return ChaosOpts{
		Prof: fabric.FDR(), Nodes: 3, Threads: 2,
		RowsPerNode: 8192, Seed: 11,
		Policy: RecoveryPolicy{
			MaxRestarts: 2,
			BaseBackoff: 500 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
		},
	}
}

// TestChaosMatrix runs every algorithm of Table 1 under every fault class
// twice with the same seed, asserting (a) no simulation failure, (b) the
// recovery policy ends in success with every row delivered, (c) bitwise
// identical outcomes — the schedule is deterministic — and (d) the faults
// that must force a query restart actually do.
func TestChaosMatrix(t *testing.T) {
	opts := chaosOpts()
	want := int64(opts.Nodes) * int64(opts.RowsPerNode)
	for _, alg := range shuffle.Algorithms {
		for _, f := range ChaosFaults() {
			alg, f := alg, f
			t.Run(alg.Name+"/"+f.Name, func(t *testing.T) {
				o1, err := RunChaos(alg, f, opts)
				if err != nil {
					t.Fatalf("simulation failed: %v", err)
				}
				o2, err := RunChaos(alg, f, opts)
				if err != nil {
					t.Fatalf("simulation failed on repeat: %v", err)
				}
				if o1 != o2 {
					t.Fatalf("nondeterministic outcome:\n  %+v\n  %+v", o1, o2)
				}
				if o1.Failed {
					t.Fatalf("recovery did not converge: %s", o1.Err)
				}
				if o1.Rows != want {
					t.Fatalf("rows = %d, want %d (restarts %d)", o1.Rows, want, o1.Restarts)
				}
				udAlg := alg.Impl == shuffle.SQSR
				if f.Name == "ud-loss" && udAlg && o1.Restarts == 0 {
					t.Fatalf("UD datagram loss should force a restart of %s", alg.Name)
				}
				if f.Name == "rc-outage" && !udAlg && o1.Restarts == 0 {
					t.Fatalf("RC outage should force a restart of %s", alg.Name)
				}
				if (f.Name == "degrade" || f.Name == "pause" || f.Name == "corrupt") && o1.Restarts != 0 {
					t.Fatalf("survivable fault %s restarted %s %d time(s): %+v",
						f.Name, alg.Name, o1.Restarts, o1)
				}
			})
		}
	}
}

// TestChaosCrashMatrix runs every Table 1 algorithm under every crash-stop
// scenario twice with the same seed. A crash must (a) never panic or
// deadlock the simulation, (b) be detected by the heartbeat detector within
// the documented (Suspect+2)*Period bound — not by waiting out an endpoint
// stall timeout — (c) force exactly one membership-shrinking restart that
// completes on the survivors with the full surviving-membership row totals,
// and (d) yield bitwise identical outcomes on a repeat run.
func TestChaosCrashMatrix(t *testing.T) {
	opts := chaosOpts()
	period := 500 * time.Microsecond
	opts.Detector = DetectorConfig{Period: period, Suspect: 3}
	for _, alg := range shuffle.Algorithms {
		for _, f := range ChaosCrashFaults() {
			alg, f := alg, f
			t.Run(alg.Name+"/"+f.Name, func(t *testing.T) {
				o1, err := RunChaos(alg, f, opts)
				if err != nil {
					t.Fatalf("simulation failed: %v", err)
				}
				o2, err := RunChaos(alg, f, opts)
				if err != nil {
					t.Fatalf("simulation failed on repeat: %v", err)
				}
				if o1 != o2 {
					t.Fatalf("nondeterministic outcome:\n  %+v\n  %+v", o1, o2)
				}
				if o1.Failed {
					t.Fatalf("recovery did not converge: %s", o1.Err)
				}
				if o1.Restarts == 0 {
					t.Fatalf("a crash must force a restart: %+v", o1)
				}
				survivors := opts.Nodes - 1
				if o1.Members != survivors {
					t.Fatalf("final membership = %d, want %d survivors", o1.Members, survivors)
				}
				want := int64(survivors) * int64(opts.RowsPerNode)
				if f.Groups != nil { // broadcast: every survivor gets every row
					want *= int64(survivors)
				}
				if o1.Rows != want {
					t.Fatalf("rows = %d, want %d on the surviving membership", o1.Rows, want)
				}
				if o1.Detections == 0 {
					t.Fatalf("crash went undetected: %+v", o1)
				}
				bound := sim.Duration(opts.Detector.Suspect+2) * period
				if o1.MaxDetect <= 0 || o1.MaxDetect > bound {
					t.Fatalf("detection latency %v outside (0, %v]", o1.MaxDetect, bound)
				}
			})
		}
	}
}

// TestChaosTransientMatrix runs every Table 1 algorithm under every
// transient-fault scenario (bounded reboots, healing partitions) twice with
// the same seed. Every cell must (a) never fail the simulation, (b) end in
// success within the restart budget with exact cluster-wide row totals —
// partial restarts fold the kept partitions back in, so the delivered rows
// are identical to a fault-free run — and (c) be bitwise deterministic.
// Scenario-specific clauses pin the membership semantics: an asymmetric cut
// or a bounded reboot never shrinks the membership, while the symmetric
// minority cut is convicted and excluded like a crash.
func TestChaosTransientMatrix(t *testing.T) {
	opts := chaosOpts()
	opts.Detector = DetectorConfig{Period: 500 * time.Microsecond, Suspect: 3}
	fullRows := int64(opts.Nodes) * int64(opts.RowsPerNode)
	for _, alg := range shuffle.Algorithms {
		for _, f := range ChaosTransientFaults() {
			alg, f := alg, f
			t.Run(alg.Name+"/"+f.Name, func(t *testing.T) {
				o1, err := RunChaos(alg, f, opts)
				if err != nil {
					t.Fatalf("simulation failed: %v", err)
				}
				o2, err := RunChaos(alg, f, opts)
				if err != nil {
					t.Fatalf("simulation failed on repeat: %v", err)
				}
				if o1 != o2 {
					t.Fatalf("nondeterministic outcome:\n  %+v\n  %+v", o1, o2)
				}
				if o1.Failed {
					t.Fatalf("recovery did not converge: %s", o1.Err)
				}
				// Every restart accounts for all Members^2 partitions, either
				// kept or re-streamed.
				if all := o1.Members * o1.Members * o1.Restarts; o1.PartitionsKept+o1.PartitionsRestreamed != all {
					t.Fatalf("kept %d + restreamed %d != %d partitions over %d restart(s)",
						o1.PartitionsKept, o1.PartitionsRestreamed, all, o1.Restarts)
				}
				switch f.Name {
				case "partition-minority":
					// Unreachable from every majority node in both directions:
					// no witness can veto, so the conviction stands and the
					// restart re-plans over the survivors.
					survivors := opts.Nodes - 1
					if o1.Members != survivors || o1.Restarts == 0 {
						t.Fatalf("minority cut must shrink to %d survivors via a restart: %+v", survivors, o1)
					}
					if want := int64(survivors) * int64(opts.RowsPerNode); o1.Rows != want {
						t.Fatalf("rows = %d, want %d on the survivors", o1.Rows, want)
					}
					if o1.Detections == 0 {
						t.Fatalf("partition went unsuspected: %+v", o1)
					}
				case "partition-asymmetric":
					// One-way cut: a single suspect is not a majority, so the
					// membership survives intact and the restart is partial —
					// strictly fewer partitions re-streamed than a full
					// restart of the same attempts.
					if o1.Members != opts.Nodes || o1.Restarts == 0 {
						t.Fatalf("asymmetric cut must restart on full membership: %+v", o1)
					}
					if o1.Rows != fullRows {
						t.Fatalf("rows = %d, want %d", o1.Rows, fullRows)
					}
					if o1.PartitionsKept == 0 {
						t.Fatalf("asymmetric cut must allow a partial restart: %+v", o1)
					}
					if full := o1.Members * o1.Members * o1.Restarts; o1.PartitionsRestreamed >= full {
						t.Fatalf("partial restart re-streamed %d of %d partitions: %+v",
							o1.PartitionsRestreamed, full, o1)
					}
					if o1.Detections == 0 {
						t.Fatalf("cut went unsuspected: %+v", o1)
					}
				default: // reboot-setup, reboot-stream
					// A bounded reboot is never a conviction: the membership
					// stays whole whether the NIC-level recovery absorbs the
					// window or epoch fencing forces a restart.
					if o1.Members != opts.Nodes {
						t.Fatalf("reboot shrank the membership: %+v", o1)
					}
					if o1.Rows != fullRows {
						t.Fatalf("rows = %d, want %d", o1.Rows, fullRows)
					}
				}
			})
		}
	}
}

// TestChaosRebootForcesRestart pins that the reboot scenarios do exercise
// the failure path: across Table 1, at least one algorithm is forced to
// restart by a setup-window reboot and at least one by a mid-stream reboot
// (which algorithm absorbs which window is a deterministic function of its
// setup time). Recovery must stay bounded either way.
func TestChaosRebootForcesRestart(t *testing.T) {
	opts := chaosOpts()
	opts.Detector = DetectorConfig{Period: 500 * time.Microsecond, Suspect: 3}
	restarted := map[string]bool{}
	for _, alg := range shuffle.Algorithms {
		for _, f := range ChaosTransientFaults()[:2] {
			o, err := RunChaos(alg, f, opts)
			if err != nil {
				t.Fatalf("%s/%s: simulation failed: %v", alg.Name, f.Name, err)
			}
			if o.Failed {
				t.Fatalf("%s/%s: recovery did not converge: %s", alg.Name, f.Name, o.Err)
			}
			if o.Restarts > 0 {
				restarted[f.Name] = true
			}
		}
	}
	for _, name := range []string{"reboot-setup", "reboot-stream"} {
		if !restarted[name] {
			t.Errorf("no algorithm restarted under %s; the scenario exercises nothing", name)
		}
	}
}

// TestPartitionSmoke is the race-enabled CI smoke cell (make
// partition-smoke): one mid-stream reboot and one asymmetric partition of
// the baseline algorithm, asserting graceful bounded recovery and — for the
// partition — a partial restart that re-streams strictly fewer partitions
// than a full restart would.
func TestPartitionSmoke(t *testing.T) {
	opts := chaosOpts()
	opts.Detector = DetectorConfig{Period: 500 * time.Microsecond, Suspect: 3}
	fullRows := int64(opts.Nodes) * int64(opts.RowsPerNode)
	alg := shuffle.Algorithms[0] // MEMQ/SR
	faults := ChaosTransientFaults()
	reboot, asym := faults[1], faults[3]

	o, err := RunChaos(alg, reboot, opts)
	if err != nil {
		t.Fatalf("reboot cell: simulation failed: %v", err)
	}
	if o.Failed || o.Rows != fullRows || o.Members != opts.Nodes {
		t.Fatalf("reboot cell did not recover gracefully: %+v", o)
	}

	o, err = RunChaos(alg, asym, opts)
	if err != nil {
		t.Fatalf("partition cell: simulation failed: %v", err)
	}
	if o.Failed || o.Rows != fullRows || o.Members != opts.Nodes {
		t.Fatalf("partition cell did not recover gracefully: %+v", o)
	}
	if o.Restarts == 0 || o.PartitionsKept == 0 {
		t.Fatalf("partition cell must recover via a partial restart: %+v", o)
	}
	if full := o.Members * o.Members * o.Restarts; o.PartitionsRestreamed >= full {
		t.Fatalf("partial restart re-streamed %d of %d partitions: %+v", o.PartitionsRestreamed, full, o)
	}
}

// TestChaosCrashExhaustsDiagnosably disallows restarts entirely: the crash
// attempt's error must surface as a diagnosable ErrPeerFailed chain naming
// the dead node, wrapped in ErrRecoveryExhausted — never a bare stall.
func TestChaosCrashExhaustsDiagnosably(t *testing.T) {
	opts := chaosOpts()
	opts.Policy.MaxRestarts = 0
	alg := shuffle.Algorithms[0]
	o, err := RunChaos(alg, ChaosCrashFaults()[0], opts)
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if !o.Failed {
		t.Fatalf("crash with no restart budget must fail: %+v", o)
	}
	if !strings.Contains(o.Err, "recovery exhausted") || !strings.Contains(o.Err, "peer node failed") {
		t.Fatalf("terminal error not diagnosable: %q", o.Err)
	}
	// The only attempt ran on full membership; the detected death shows up
	// in the detector metrics, not a shrunken final membership.
	if o.Members != opts.Nodes || o.Detections == 0 {
		t.Fatalf("detection bookkeeping wrong: %+v", o)
	}
}

// TestMembershipRecoveryAttempts pins the bookkeeping of a crash recovery:
// attempt 0 on full membership fails with ErrPeerFailed, attempt 1 runs on
// the survivors and succeeds.
func TestMembershipRecoveryAttempts(t *testing.T) {
	mr := MembershipRecovery{
		Policy:   RecoveryPolicy{MaxRestarts: 2, BaseBackoff: time.Millisecond},
		Detector: DetectorConfig{},
	}
	cfg := shuffle.Config{Impl: shuffle.MQSR, Endpoints: 2, DepletedTimeout: 10 * time.Millisecond,
		StallTimeout: 120 * time.Millisecond}
	r, err := mr.Run(3, func(attempt, members int) *Cluster {
		c := New(fabric.FDR(), members, 2, 11)
		if attempt == 0 {
			c.Net.Faults().Add(fabric.FaultRule{Class: fabric.FaultCrash, To: 1})
		}
		return c
	}, BenchOpts{Factory: RDMAProvider(cfg), RowsPerNode: 4096})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if r.Restarts != 1 || len(r.Attempts) != 2 {
		t.Fatalf("restarts = %d attempts = %d, want 1 and 2", r.Restarts, len(r.Attempts))
	}
	if !errors.Is(r.Attempts[0].Err, shuffle.ErrPeerFailed) {
		t.Fatalf("attempt 0 error = %v, want ErrPeerFailed", r.Attempts[0].Err)
	}
	if got := r.Attempts[0].Membership; len(got) != 3 {
		t.Fatalf("attempt 0 membership = %v, want the full cluster", got)
	}
	if got := r.Attempts[1].Membership; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("attempt 1 membership = %v, want [0 2]", got)
	}
	if r.Attempts[1].Err != nil || r.Attempts[1].Backoff != time.Millisecond {
		t.Fatalf("attempt 1 = %+v, want success after 1ms backoff", r.Attempts[1])
	}
	if r.Detections == 0 || r.MaxDetect <= 0 {
		t.Fatalf("detector metrics missing: %+v", r)
	}
}

// TestChaosPersistentFaultGivesUp arms the same fault on every attempt: the
// recovery policy must exhaust its restart budget and report a clean,
// diagnosable terminal error instead of hanging or panicking.
func TestChaosPersistentFaultGivesUp(t *testing.T) {
	persistent := ChaosFault{Name: "persistent-ud-loss", Install: func(c *Cluster, attempt int) {
		c.Net.Faults().Add(fabric.FaultRule{
			Class: fabric.FaultUDLoss, From: fabric.AnyNode, To: 1, Count: 3,
		})
	}}
	opts := chaosOpts()
	o, err := RunChaos(shuffle.Algorithm{Name: "MESQ/SR", Impl: shuffle.SQSR, ME: true}, persistent, opts)
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if !o.Failed {
		t.Fatalf("persistent fault should exhaust recovery: %+v", o)
	}
	if o.Restarts != opts.Policy.MaxRestarts {
		t.Fatalf("restarts = %d, want %d", o.Restarts, opts.Policy.MaxRestarts)
	}
	if !strings.Contains(o.Err, "recovery exhausted") {
		t.Fatalf("terminal error not diagnosable: %q", o.Err)
	}
}

// TestRecoveryPolicyDeadline bounds the total virtual time: with a deadline
// shorter than one attempt, a failing query gets no restart at all.
func TestRecoveryPolicyDeadline(t *testing.T) {
	mk := func(attempt int) *Cluster {
		c := New(quiet(fabric.EDR()), 2, 4, 7)
		c.Sim.After(1, func() { c.Net.InjectUDLoss(1, 2) })
		return c
	}
	pol := RecoveryPolicy{MaxRestarts: 5, Deadline: 1} // 1ns: spent by any attempt
	r, err := pol.Run(mk, BenchOpts{
		Factory:     RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 4, DepletedTimeout: 5 * time.Millisecond}),
		RowsPerNode: 20_000,
	})
	if !errors.Is(err, ErrRecoveryExhausted) {
		t.Fatalf("err = %v, want ErrRecoveryExhausted", err)
	}
	if len(r.Attempts) != 1 || r.Restarts != 0 {
		t.Fatalf("attempts = %d restarts = %d, want 1 and 0", len(r.Attempts), r.Restarts)
	}
	if r.Attempts[0].Err == nil || r.TotalVirtual < r.Attempts[0].Elapsed {
		t.Fatalf("attempt bookkeeping wrong: %+v", r.Attempts[0])
	}
}

// TestRecoveryPolicyBackoff pins the exponential backoff schedule.
func TestRecoveryPolicyBackoff(t *testing.T) {
	pol := RecoveryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	want := []time.Duration{1, 2, 4, 4, 4}
	for i, w := range want {
		if got := pol.backoff(i); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if none := (RecoveryPolicy{}).backoff(3); none != 0 {
		t.Fatalf("zero policy backoff = %v, want 0", none)
	}
}

// TestRecoveryPolicyRecordsAttempts checks the per-restart metrics: one
// failed attempt with a backoff before the successful retry.
func TestRecoveryPolicyRecordsAttempts(t *testing.T) {
	mk := func(attempt int) *Cluster {
		c := New(quiet(fabric.EDR()), 2, 4, 7)
		if attempt == 0 {
			c.Sim.After(1, func() { c.Net.InjectUDLoss(1, 2) })
		}
		return c
	}
	pol := RecoveryPolicy{MaxRestarts: 3, BaseBackoff: time.Millisecond}
	r, err := pol.Run(mk, BenchOpts{
		Factory:     RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 4, DepletedTimeout: 5 * time.Millisecond}),
		RowsPerNode: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Restarts != 1 || len(r.Attempts) != 2 {
		t.Fatalf("restarts = %d attempts = %d, want 1 and 2", r.Restarts, len(r.Attempts))
	}
	if !errors.Is(r.Attempts[0].Err, shuffle.ErrDataLoss) {
		t.Fatalf("first attempt error = %v, want data loss", r.Attempts[0].Err)
	}
	if r.Attempts[1].Err != nil || r.Attempts[1].Backoff != time.Millisecond {
		t.Fatalf("second attempt = %+v, want success after 1ms backoff", r.Attempts[1])
	}
	if wantTotal := r.Attempts[0].Elapsed + r.Attempts[1].Elapsed + time.Millisecond; r.TotalVirtual != wantTotal {
		t.Fatalf("TotalVirtual = %v, want %v", r.TotalVirtual, wantTotal)
	}
}
