package cluster

import (
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
)

// detectorRig boots a cluster, optionally crashes a node, lets the detector
// run for the given virtual time with no workload, and returns it.
func detectorRig(t *testing.T, crashNode int, crashAt, runFor sim.Duration) *Detector {
	t.Helper()
	c := New(fabric.FDR(), 3, 2, 11)
	if crashNode >= 0 {
		c.Net.Faults().Add(fabric.FaultRule{
			Class: fabric.FaultCrash, To: crashNode, Start: sim.Time(crashAt),
		})
	}
	fd := c.InstallDetector(DetectorConfig{Period: 500 * time.Microsecond, Suspect: 3})
	c.Sim.After(runFor, fd.Stop)
	if err := c.Sim.Run(); err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	return fd
}

// TestDetectorSuspectsCrashedNode crashes node 1 and checks that both
// survivors suspect it within the documented (Suspect+2)*Period bound, that
// the majority rule declares exactly node 1 dead, and that the crashed node
// itself — hearing nothing — suspects everyone without polluting Dead.
func TestDetectorSuspectsCrashedNode(t *testing.T) {
	fd := detectorRig(t, 1, time.Millisecond, 20*time.Millisecond)
	if !fd.Suspected(0, 1) || !fd.Suspected(2, 1) {
		t.Fatalf("survivors did not suspect the crashed node")
	}
	if !fd.Suspected(1, 0) || !fd.Suspected(1, 2) {
		t.Fatalf("crashed node should suspect the silent world")
	}
	if dead := fd.Dead(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("Dead() = %v, want [1]", dead)
	}
	if fd.Detections != 4 {
		t.Fatalf("Detections = %d, want 4 (2 survivors x node 1, node 1 x 2 peers)", fd.Detections)
	}
	bound := 5 * 500 * time.Microsecond // (Suspect+2)*Period
	if fd.MaxDetectionLatency <= 0 || fd.MaxDetectionLatency > bound {
		t.Fatalf("MaxDetectionLatency = %v, want in (0, %v]", fd.MaxDetectionLatency, bound)
	}
}

// TestDetectorQuietWithoutCrash runs a healthy cluster: no suspicion, no
// declared deaths, zero latency.
func TestDetectorQuietWithoutCrash(t *testing.T) {
	fd := detectorRig(t, -1, 0, 20*time.Millisecond)
	if fd.Detections != 0 || len(fd.Dead()) != 0 || fd.MaxDetectionLatency != 0 {
		t.Fatalf("healthy cluster produced detections: %d dead=%v lat=%v",
			fd.Detections, fd.Dead(), fd.MaxDetectionLatency)
	}
}

// TestDetectorNotifiesDevice checks the detector-to-verbs wiring: once a
// survivor suspects the crashed peer its device reports PeerDown.
func TestDetectorNotifiesDevice(t *testing.T) {
	c := New(fabric.FDR(), 3, 2, 11)
	c.Net.Faults().Add(fabric.FaultRule{Class: fabric.FaultCrash, To: 2})
	fd := c.InstallDetector(DetectorConfig{})
	c.Sim.After(20*time.Millisecond, fd.Stop)
	if err := c.Sim.Run(); err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if !c.Devs[0].PeerDown(2) || !c.Devs[1].PeerDown(2) {
		t.Fatalf("survivor devices were not told the peer is down")
	}
	if c.Devs[0].PeerDown(1) {
		t.Fatalf("live peer wrongly declared down")
	}
}

// TestDetectorHorizon stops the detector on its own once the horizon
// passes, so a wedged simulation does not tick forever.
func TestDetectorHorizon(t *testing.T) {
	c := New(fabric.FDR(), 2, 2, 11)
	c.InstallDetector(DetectorConfig{Period: time.Millisecond, Horizon: 10 * time.Millisecond})
	if err := c.Sim.Run(); err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	now := c.Sim.Now()
	if now.Sub(0) < 10*time.Millisecond || now.Sub(0) > 12*time.Millisecond {
		t.Fatalf("detector stopped at %v, want right after the 10ms horizon", now.Sub(0))
	}
}
