package cluster

import (
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
)

// TestAsymmetricPartitionSuspectsNotDead pins the fix for the split-brain
// false-death bug: under an asymmetric partition that hides node 2 from
// nodes {0,1,3} — a majority of the 5-node cluster — node 4 still hears 2,
// so 2 must be *suspected* by the cut-off side but never declared Dead().
// The old pure-majority rule would have declared it dead.
func TestAsymmetricPartitionSuspectsNotDead(t *testing.T) {
	c := New(fabric.FDR(), 5, 2, 11)
	c.Net.Faults().Add(fabric.FaultRule{
		Class: fabric.FaultPartition, GroupA: []int{2}, GroupB: []int{0, 1, 3},
		Asym:  true,
		Start: sim.Time(0).Add(time.Millisecond), End: sim.Time(0).Add(100 * time.Millisecond),
	})
	fd := c.InstallDetector(DetectorConfig{Period: 500 * time.Microsecond, Suspect: 3})
	c.Sim.After(20*time.Millisecond, fd.Stop) // stop well before the heal
	if err := c.Sim.Run(); err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	for _, i := range []int{0, 1, 3} {
		if !fd.Suspected(i, 2) {
			t.Fatalf("node %d should suspect the hidden node 2", i)
		}
	}
	if fd.Suspected(4, 2) {
		t.Fatal("node 4 hears node 2 and must not suspect it")
	}
	// The cut is one-way: node 2 still hears everyone.
	for _, j := range []int{0, 1, 3, 4} {
		if fd.Suspected(2, j) {
			t.Fatalf("node 2 should still hear node %d (asymmetric cut)", j)
		}
	}
	if dead := fd.Dead(); len(dead) != 0 {
		t.Fatalf("Dead() = %v, want none: node 4's fresh heartbeat vetoes the majority", dead)
	}
	if ep, sus := fd.View(0); ep == 0 || len(sus) != 1 || sus[0] != 2 {
		t.Fatalf("View(0) = epoch %d suspects %v, want a stamped view suspecting [2]", ep, sus)
	}
}

// TestPartitionHealClearsSuspicion runs a symmetric minority partition to
// its heal deadline: during the cut both sides suspect each other, and
// after the heal every suspicion is cleared, the view epochs advance, and
// the verbs devices are told the peers are back.
func TestPartitionHealClearsSuspicion(t *testing.T) {
	c := New(fabric.FDR(), 4, 2, 11)
	c.Net.Faults().Add(fabric.FaultRule{
		Class: fabric.FaultPartition, GroupA: []int{1}, GroupB: []int{0, 2, 3},
		Start: sim.Time(0).Add(time.Millisecond), End: sim.Time(0).Add(10 * time.Millisecond),
	})
	fd := c.InstallDetector(DetectorConfig{Period: 500 * time.Microsecond, Suspect: 3})
	c.Sim.After(30*time.Millisecond, fd.Stop)
	if err := c.Sim.Run(); err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if fd.Detections == 0 {
		t.Fatal("the partition should have produced suspicions")
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && fd.Suspected(i, j) {
				t.Fatalf("suspicion %d->%d survived the heal", i, j)
			}
		}
	}
	if dead := fd.Dead(); len(dead) != 0 {
		t.Fatalf("Dead() = %v after heal, want none", dead)
	}
	// Suspicion set + clear both advance the view epoch.
	if ep, _ := fd.View(0); ep < 2 {
		t.Fatalf("ViewEpoch(0) = %d, want >= 2 (one set, one clear)", ep)
	}
	if c.Devs[0].PeerDown(1) {
		t.Fatal("device still thinks the healed peer is down")
	}
}

// TestRebootBumpsEpoch closes the loop between the fault plan and the epoch
// fence: when a reboot window ends, the detector bumps the rebooted node's
// device boot epoch (its memory came back empty) and clears the survivors'
// suspicions once heartbeats resume.
func TestRebootBumpsEpoch(t *testing.T) {
	c := New(fabric.FDR(), 3, 2, 11)
	c.Net.Faults().Add(fabric.FaultRule{
		Class: fabric.FaultReboot, To: 1,
		Start: sim.Time(0).Add(time.Millisecond), End: sim.Time(0).Add(8 * time.Millisecond),
	})
	fd := c.InstallDetector(DetectorConfig{Period: 500 * time.Microsecond, Suspect: 3})
	c.Sim.After(20*time.Millisecond, fd.Stop)
	if err := c.Sim.Run(); err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if got := c.Devs[1].Epoch(); got != 2 {
		t.Fatalf("rebooted node epoch = %d, want 2", got)
	}
	if got := c.Devs[0].Epoch(); got != 1 {
		t.Fatalf("untouched node epoch = %d, want 1", got)
	}
	if fd.Suspected(0, 1) || fd.Suspected(2, 1) {
		t.Fatal("suspicion of the rebooted node should clear once heartbeats resume")
	}
	if dead := fd.Dead(); len(dead) != 0 {
		t.Fatalf("Dead() = %v after reboot, want none", dead)
	}
}
