package cluster_test

import (
	"testing"

	"rshuffle/internal/cluster"
	"rshuffle/internal/dag"
	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

// Macro benchmarks: whole shuffle queries on a small FDR cluster, one
// simulation per iteration. These measure the simulator's wall-clock cost
// end to end — kernel scheduling, fabric modelling, and the shuffle
// operators together — complementing the kernel micro-benchmarks in
// internal/sim. The virtual-time results are deterministic; only wall time
// and allocations are under test here. The package is cluster_test so the
// DAG benchmark can import internal/dag without a cycle.

func benchShuffle(b *testing.B, cfg shuffle.Config) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		c := cluster.New(fabric.FDR(), 4, 2, 42)
		res, err := c.RunBench(cluster.BenchOpts{
			Factory: cluster.RDMAProvider(cfg), RowsPerNode: 8192,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		events += c.Sim.Events()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
}

func BenchmarkShuffleMEMQSR(b *testing.B) {
	benchShuffle(b, shuffle.Config{Impl: shuffle.MQSR, Endpoints: 2})
}

func BenchmarkShuffleMEMQRD(b *testing.B) {
	benchShuffle(b, shuffle.Config{Impl: shuffle.MQRD, Endpoints: 2})
}

func BenchmarkShuffleMESQSR(b *testing.B) {
	benchShuffle(b, shuffle.Config{Impl: shuffle.SQSR, Endpoints: 2})
}

// benchShuffleLPs runs a 64-node whole-query benchmark on the PDES engine
// at a fixed logical-partition count. The four LP variants together are the
// parallel-speedup oracle: virtual-time results are byte-identical across
// them (the equivalence matrix pins that), so any ns/op difference is pure
// engine wall-clock — windowing overhead at LP1, scaling at LP2..8. Real
// speedup needs real cores: on a single-core host the wide path degrades to
// serial window execution and the variants converge.
func benchShuffleLPs(b *testing.B, lps int) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		c := cluster.NewWithOptions(fabric.FDR(), 64, 2, 42,
			cluster.SimOptions{ParallelLPs: lps})
		res, err := c.RunBench(cluster.BenchOpts{
			Factory:     cluster.RDMAProvider(shuffle.Config{Impl: shuffle.MQSR, Endpoints: 2}),
			RowsPerNode: 2048,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		events += c.Events()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
}

func BenchmarkShuffleWide64LP1(b *testing.B) { benchShuffleLPs(b, 1) }
func BenchmarkShuffleWide64LP2(b *testing.B) { benchShuffleLPs(b, 2) }
func BenchmarkShuffleWide64LP4(b *testing.B) { benchShuffleLPs(b, 4) }
func BenchmarkShuffleWide64LP8(b *testing.B) { benchShuffleLPs(b, 8) }

// BenchmarkDAGMultiStage runs the three-shuffle multi-stage demo plan
// (partial agg → hash re-shuffle → join → broadcast) end to end, covering
// the DAG planner's wiring and per-edge bookkeeping on top of the same
// simulator stack.
func BenchmarkDAGMultiStage(b *testing.B) {
	prof := fabric.FDR()
	prof.UDReorderProb = 0
	fact, dim := dag.DemoTables(4, 2000, 250, 7)
	factory := cluster.RDMAProvider(shuffle.Config{Impl: shuffle.MQSR, Endpoints: 2})
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		c := cluster.New(prof, 4, 2, 42)
		res := dag.MultiStageDemo(fact, dim).Run(c, factory)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		events += c.Sim.Events()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
}
