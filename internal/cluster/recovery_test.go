package cluster

import (
	"errors"
	"testing"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

// failingMk returns a cluster builder whose every attempt loses UD
// datagrams, so the query fails deterministically each time.
func failingMk() func(attempt int) *Cluster {
	return func(attempt int) *Cluster {
		c := New(quiet(fabric.EDR()), 2, 4, 7)
		c.Sim.After(1, func() { c.Net.InjectUDLoss(1, 2) })
		return c
	}
}

func failingOpts() BenchOpts {
	return BenchOpts{
		Factory:     RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 4, DepletedTimeout: 5 * time.Millisecond}),
		RowsPerNode: 20_000,
	}
}

// TestRecoveryPolicyMaxRestartsZero gives the policy no restart budget: one
// attempt, zero restarts, immediate exhaustion.
func TestRecoveryPolicyMaxRestartsZero(t *testing.T) {
	pol := RecoveryPolicy{MaxRestarts: 0, BaseBackoff: time.Millisecond}
	r, err := pol.Run(failingMk(), failingOpts())
	if !errors.Is(err, ErrRecoveryExhausted) {
		t.Fatalf("err = %v, want ErrRecoveryExhausted", err)
	}
	if len(r.Attempts) != 1 || r.Restarts != 0 {
		t.Fatalf("attempts = %d restarts = %d, want 1 and 0", len(r.Attempts), r.Restarts)
	}
	if r.TotalVirtual != r.Attempts[0].Elapsed {
		t.Fatalf("TotalVirtual = %v, want exactly the single attempt %v (no backoff charged)",
			r.TotalVirtual, r.Attempts[0].Elapsed)
	}
}

// TestRecoveryPolicyDeadlineBeforeBackoff regression-tests the deadline
// ordering: when the next backoff alone would overrun the deadline, the
// policy must give up WITHOUT charging the backoff or running another
// attempt, so TotalVirtual never overshoots the budget by a backoff.
func TestRecoveryPolicyDeadlineBeforeBackoff(t *testing.T) {
	pol := RecoveryPolicy{MaxRestarts: 5, BaseBackoff: time.Hour, Deadline: 100 * time.Millisecond}
	r, err := pol.Run(failingMk(), failingOpts())
	if !errors.Is(err, ErrRecoveryExhausted) {
		t.Fatalf("err = %v, want ErrRecoveryExhausted", err)
	}
	if len(r.Attempts) != 1 || r.Restarts != 0 {
		t.Fatalf("attempts = %d restarts = %d, want deadline to forbid the restart", len(r.Attempts), r.Restarts)
	}
	if r.TotalVirtual != r.Attempts[0].Elapsed {
		t.Fatalf("TotalVirtual = %v, want %v: the never-taken backoff must not be charged",
			r.TotalVirtual, r.Attempts[0].Elapsed)
	}
	if r.TotalVirtual >= pol.Deadline {
		t.Fatalf("TotalVirtual = %v overran the %v deadline", r.TotalVirtual, pol.Deadline)
	}
}

// TestRecoveryPolicyMaxBackoffCaps runs a persistently failing query to
// exhaustion and pins the full backoff schedule against MaxBackoff, plus
// the Attempts/TotalVirtual accounting across every attempt.
func TestRecoveryPolicyMaxBackoffCaps(t *testing.T) {
	pol := RecoveryPolicy{MaxRestarts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	r, err := pol.Run(failingMk(), failingOpts())
	if !errors.Is(err, ErrRecoveryExhausted) {
		t.Fatalf("err = %v, want ErrRecoveryExhausted", err)
	}
	if len(r.Attempts) != 4 || r.Restarts != 3 {
		t.Fatalf("attempts = %d restarts = %d, want 4 and 3", len(r.Attempts), r.Restarts)
	}
	wantBackoffs := []time.Duration{0, time.Millisecond, 2 * time.Millisecond, 2 * time.Millisecond}
	var wantTotal time.Duration
	for i, a := range r.Attempts {
		if a.Backoff != wantBackoffs[i] {
			t.Fatalf("attempt %d backoff = %v, want %v", i, a.Backoff, wantBackoffs[i])
		}
		if a.Err == nil {
			t.Fatalf("attempt %d unexpectedly succeeded", i)
		}
		wantTotal += a.Backoff + a.Elapsed
	}
	if r.TotalVirtual != wantTotal {
		t.Fatalf("TotalVirtual = %v, want %v", r.TotalVirtual, wantTotal)
	}
}
