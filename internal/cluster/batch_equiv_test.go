package cluster

import (
	"reflect"
	"testing"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

// TestBatchedArrivalEquivalence pins the fabric's batched-arrival fast
// path against the per-message specification: every Table 1 design, run at
// the same seed with batching on and off, must produce an identical
// BenchResult down to the per-phase NIC counters. At this scale no
// delivery ties with an unrelated same-instant event, so the two paths
// must agree bit-for-bit and any divergence — a virtual nanosecond of
// Elapsed, one byte of traffic, one QP-cache miss — is a bug in the
// drain's ordering or window arithmetic. (At larger scales simultaneous-
// event ties may legitimately resolve differently between the paths; see
// SetArrivalBatching and DESIGN.md "Kernel performance".)
func TestBatchedArrivalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	run := func(alg shuffle.Algorithm, batched bool) *BenchResult {
		// EDR with its default UD reorder probability: the UD designs must
		// agree even when transmit-time jitter draws are in play.
		c := New(fabric.EDR(), 4, 0, 42)
		c.Net.SetArrivalBatching(batched)
		res, err := c.RunBench(BenchOpts{
			Factory:     RDMAProvider(alg.Config(c.Threads)),
			RowsPerNode: 50000,
		})
		if err != nil {
			t.Fatalf("%s batched=%v: %v", alg.Name, batched, err)
		}
		if res.Err != nil {
			t.Fatalf("%s batched=%v: %v", alg.Name, batched, res.Err)
		}
		return res
	}
	for _, alg := range shuffle.Algorithms {
		t.Run(alg.Name, func(t *testing.T) {
			batched, exact := run(alg, true), run(alg, false)
			if !reflect.DeepEqual(batched, exact) {
				t.Errorf("batched and per-message paths diverge\nbatched: %+v\nexact:   %+v",
					batched, exact)
			}
		})
	}
}
