package cluster

import (
	"testing"

	"rshuffle/internal/fabric"
	"rshuffle/internal/ipoib"
	"rshuffle/internal/mpi"
	"rshuffle/internal/qperf"
	"rshuffle/internal/shuffle"
)

func runBaseline(t testing.TB, prof fabric.Profile, f ProviderFactory, nodes, rows int, groups shuffle.Groups) *BenchResult {
	t.Helper()
	c := New(prof, nodes, 0, 7)
	res, err := c.RunBench(BenchOpts{Factory: f, RowsPerNode: rows, Groups: groups})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

func TestMPIConservesRows(t *testing.T) {
	const nodes, rows = 4, 100_000
	res := runBaseline(t, quiet(fabric.EDR()), MPIProvider(mpi.Config{}), nodes, rows, nil)
	var total int64
	for _, r := range res.RowsPerNode {
		total += r
	}
	if total != int64(nodes*rows) {
		t.Fatalf("rows = %d, want %d", total, nodes*rows)
	}
}

func TestMPIBroadcast(t *testing.T) {
	const nodes, rows = 3, 40_000
	res := runBaseline(t, quiet(fabric.EDR()), MPIProvider(mpi.Config{}), nodes, rows, shuffle.Broadcast(nodes))
	for a, r := range res.RowsPerNode {
		if r != int64(nodes*rows) {
			t.Fatalf("node %d received %d rows, want %d", a, r, nodes*rows)
		}
	}
}

func TestIPoIBConservesRows(t *testing.T) {
	const nodes, rows = 4, 100_000
	res := runBaseline(t, quiet(fabric.EDR()), IPoIBProvider(ipoib.Config{}), nodes, rows, nil)
	var total int64
	for _, r := range res.RowsPerNode {
		total += r
	}
	if total != int64(nodes*rows) {
		t.Fatalf("rows = %d, want %d", total, nodes*rows)
	}
}

func TestIPoIBBroadcast(t *testing.T) {
	const nodes, rows = 3, 40_000
	res := runBaseline(t, quiet(fabric.EDR()), IPoIBProvider(ipoib.Config{}), nodes, rows, shuffle.Broadcast(nodes))
	for a, r := range res.RowsPerNode {
		if r != int64(nodes*rows) {
			t.Fatalf("node %d received %d rows, want %d", a, r, nodes*rows)
		}
	}
}

// The paper's headline ordering: RDMA > MPI > IPoIB for repartitioning.
func TestBaselineOrdering(t *testing.T) {
	const nodes, rows = 8, 1_000_000
	rdma := runBaseline(t, quiet(fabric.EDR()),
		RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 14}), nodes, rows, nil)
	mpiRes := runBaseline(t, quiet(fabric.EDR()), MPIProvider(mpi.Config{}), nodes, rows, nil)
	ipoibRes := runBaseline(t, quiet(fabric.EDR()), IPoIBProvider(ipoib.Config{}), nodes, rows, nil)
	r, m, i := rdma.GiBps(), mpiRes.GiBps(), ipoibRes.GiBps()
	t.Logf("EDR 8 nodes: MESQ/SR=%.2f MPI=%.2f IPoIB=%.2f GiB/s", r, m, i)
	if !(r > m && m > i) {
		t.Fatalf("ordering violated: RDMA=%.2f MPI=%.2f IPoIB=%.2f", r, m, i)
	}
	if r < 1.5*m {
		t.Fatalf("RDMA should be well ahead of MPI: %.2f vs %.2f", r, m)
	}
	if r < 2.2*i {
		t.Fatalf("RDMA should be ~3x IPoIB: %.2f vs %.2f", r, i)
	}
}

func TestQperf(t *testing.T) {
	edr := qperf.Run(fabric.EDR(), 64<<10, 1<<30)
	fdr := qperf.Run(fabric.FDR(), 64<<10, 1<<30)
	t.Logf("qperf: FDR=%.2f EDR=%.2f GiB/s", fdr.GiBps(), edr.GiBps())
	if g := edr.GiBps(); g < 10.5 || g > 12 {
		t.Fatalf("EDR qperf = %.2f GiB/s, want ~11.5", g)
	}
	if g := fdr.GiBps(); g < 5.2 || g > 6.3 {
		t.Fatalf("FDR qperf = %.2f GiB/s, want ~5.9", g)
	}
}
