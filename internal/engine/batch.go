// Package engine implements a Pythia-like vectorized, parallel, pull-based
// query engine: fixed-width row batches, a NEXT(thread-id) operator
// interface (Figure 1 of the paper), and the relational operators needed by
// the evaluation workloads (scan, filter, project, hash join, hash
// aggregation, top-N sort, and a calibrated compute-burn operator).
//
// All CPU work is charged to the calling Proc in virtual time using the
// cluster profile's per-tuple and per-byte constants, one Sleep per batch so
// event counts stay proportional to batches, not tuples.
package engine

import (
	"encoding/binary"
	"fmt"
)

// Type is a fixed-width column type.
type Type int

const (
	// TInt64 is a 64-bit signed integer (also used for dates as days).
	TInt64 Type = iota
	// TFloat64 is a 64-bit IEEE float.
	TFloat64
	// TStr16 is a fixed 16-byte string, zero padded.
	TStr16
	// TStr32 is a fixed 32-byte string, zero padded.
	TStr32
)

// Size returns the byte width of the type.
func (t Type) Size() int {
	switch t {
	case TInt64, TFloat64:
		return 8
	case TStr16:
		return 16
	case TStr32:
		return 32
	}
	panic(fmt.Sprintf("engine: unknown type %d", int(t)))
}

func (t Type) String() string {
	switch t {
	case TInt64:
		return "int64"
	case TFloat64:
		return "float64"
	case TStr16:
		return "str16"
	default:
		return "str32"
	}
}

// Schema describes a fixed-width row layout.
type Schema struct {
	Cols    []Type
	offsets []int
	width   int
}

// NewSchema builds a schema from column types.
func NewSchema(cols ...Type) *Schema {
	s := &Schema{Cols: cols, offsets: make([]int, len(cols))}
	for i, c := range cols {
		s.offsets[i] = s.width
		s.width += c.Size()
	}
	return s
}

// Width returns the row width in bytes.
func (s *Schema) Width() int { return s.width }

// Offset returns the byte offset of column i within a row.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// Equal reports whether two schemas have the same column layout. The DAG
// planner uses it to validate that a stage builds the same row shape on
// every cluster node and that edge endpoints agree on the wire format.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.Cols) != len(o.Cols) {
		return false
	}
	for i, c := range s.Cols {
		if o.Cols[i] != c {
			return false
		}
	}
	return true
}

// Concat returns a schema with s's columns followed by o's.
func (s *Schema) Concat(o *Schema) *Schema {
	return NewSchema(append(append([]Type(nil), s.Cols...), o.Cols...)...)
}

// Project returns a schema with only the selected columns of s.
func (s *Schema) Project(cols ...int) *Schema {
	ts := make([]Type, len(cols))
	for i, c := range cols {
		ts[i] = s.Cols[c]
	}
	return NewSchema(ts...)
}

// DefaultBatchTuples is the vector size of the engine.
const DefaultBatchTuples = 1024

// Batch is a vector of fixed-width rows.
type Batch struct {
	Sch  *Schema
	Data []byte
	N    int
	cap  int
}

// NewBatch allocates an empty batch holding up to capTuples rows.
func NewBatch(sch *Schema, capTuples int) *Batch {
	return &Batch{Sch: sch, Data: make([]byte, capTuples*sch.Width()), cap: capTuples}
}

// Cap returns the tuple capacity.
func (b *Batch) Cap() int { return b.cap }

// Full reports whether the batch has no room left.
func (b *Batch) Full() bool { return b.N >= b.cap }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.N = 0 }

// Bytes returns the used portion of the batch's row data.
func (b *Batch) Bytes() []byte { return b.Data[:b.N*b.Sch.Width()] }

// Row returns the raw bytes of row i.
func (b *Batch) Row(i int) []byte {
	w := b.Sch.Width()
	return b.Data[i*w : (i+1)*w]
}

// AppendRow copies a raw row into the batch; the row must match the schema
// width. It panics when full — callers check Full first.
func (b *Batch) AppendRow(row []byte) {
	if b.Full() {
		panic("engine: append to full batch")
	}
	copy(b.Row(b.N), row)
	b.N++
}

// AppendRows bulk-copies complete rows from raw (a multiple of the row
// width) and returns how many rows were consumed.
func (b *Batch) AppendRows(raw []byte) int {
	w := b.Sch.Width()
	n := len(raw) / w
	if room := b.cap - b.N; n > room {
		n = room
	}
	copy(b.Data[b.N*w:], raw[:n*w])
	b.N += n
	return n
}

// Int64 reads an int64 column.
func (b *Batch) Int64(row, col int) int64 {
	off := row*b.Sch.Width() + b.Sch.Offset(col)
	return int64(binary.LittleEndian.Uint64(b.Data[off:]))
}

// SetInt64 writes an int64 column.
func (b *Batch) SetInt64(row, col int, v int64) {
	off := row*b.Sch.Width() + b.Sch.Offset(col)
	binary.LittleEndian.PutUint64(b.Data[off:], uint64(v))
}

// Float64 reads a float64 column.
func (b *Batch) Float64(row, col int) float64 {
	off := row*b.Sch.Width() + b.Sch.Offset(col)
	return float64frombits(binary.LittleEndian.Uint64(b.Data[off:]))
}

// SetFloat64 writes a float64 column.
func (b *Batch) SetFloat64(row, col int, v float64) {
	off := row*b.Sch.Width() + b.Sch.Offset(col)
	binary.LittleEndian.PutUint64(b.Data[off:], float64bits(v))
}

// Str reads a fixed string column with padding trimmed.
func (b *Batch) Str(row, col int) string {
	off := row*b.Sch.Width() + b.Sch.Offset(col)
	n := b.Sch.Cols[col].Size()
	s := b.Data[off : off+n]
	for n > 0 && s[n-1] == 0 {
		n--
	}
	return string(s[:n])
}

// SetStr writes a fixed string column, truncating or zero-padding.
func (b *Batch) SetStr(row, col int, v string) {
	off := row*b.Sch.Width() + b.Sch.Offset(col)
	n := b.Sch.Cols[col].Size()
	dst := b.Data[off : off+n]
	for i := range dst {
		dst[i] = 0
	}
	copy(dst, v)
}

// RowInt64 reads an int64 column from a raw row.
func RowInt64(sch *Schema, row []byte, col int) int64 {
	return int64(binary.LittleEndian.Uint64(row[sch.Offset(col):]))
}

// RowSetInt64 writes an int64 column into a raw row.
func RowSetInt64(sch *Schema, row []byte, col int, v int64) {
	binary.LittleEndian.PutUint64(row[sch.Offset(col):], uint64(v))
}

// RowFloat64 reads a float64 column from a raw row.
func RowFloat64(sch *Schema, row []byte, col int) float64 {
	return float64frombits(binary.LittleEndian.Uint64(row[sch.Offset(col):]))
}
