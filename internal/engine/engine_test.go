package engine

import (
	"fmt"
	"testing"
	"testing/quick"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
)

func testCtx(s *sim.Simulation, threads int) *Ctx {
	p := fabric.EDR()
	return &Ctx{S: s, Prof: &p, Threads: threads}
}

// makeInts builds a table of (k int64, v int64) rows with k = i%mod, v = i.
func makeInts(n, mod int) *Table {
	t := NewTable(NewSchema(TInt64, TInt64))
	w := NewWriter(t)
	for i := 0; i < n; i++ {
		w.SetInt64(0, int64(i%mod))
		w.SetInt64(1, int64(i))
		w.Done()
	}
	return t
}

// runPlan drains op with the given thread count and returns the sink.
func runPlan(t testing.TB, op Operator, threads int, keep bool) *Sink {
	t.Helper()
	s := sim.New(1)
	ctx := testCtx(s, threads)
	sink := &Sink{In: op, Keep: keep}
	sink.Run(ctx, "test", nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return sink
}

func TestSchemaLayout(t *testing.T) {
	s := NewSchema(TInt64, TStr16, TFloat64, TStr32)
	if s.Width() != 8+16+8+32 {
		t.Fatalf("width = %d", s.Width())
	}
	if s.Offset(2) != 24 {
		t.Fatalf("offset(2) = %d", s.Offset(2))
	}
	pr := s.Project(2, 0)
	if pr.Width() != 16 || pr.Cols[0] != TFloat64 || pr.Cols[1] != TInt64 {
		t.Fatalf("projected schema wrong: %+v", pr)
	}
	cc := s.Concat(NewSchema(TInt64))
	if cc.Width() != s.Width()+8 {
		t.Fatalf("concat width = %d", cc.Width())
	}
}

func TestBatchAccessors(t *testing.T) {
	sch := NewSchema(TInt64, TFloat64, TStr16)
	b := NewBatch(sch, 4)
	b.N = 2
	b.SetInt64(1, 0, -42)
	b.SetFloat64(1, 1, 3.5)
	b.SetStr(1, 2, "shuffle")
	if b.Int64(1, 0) != -42 || b.Float64(1, 1) != 3.5 || b.Str(1, 2) != "shuffle" {
		t.Fatalf("roundtrip failed: %d %f %q", b.Int64(1, 0), b.Float64(1, 1), b.Str(1, 2))
	}
	// Overlong strings truncate to the column width.
	b.SetStr(0, 2, "0123456789abcdefXYZ")
	if b.Str(0, 2) != "0123456789abcdef" {
		t.Fatalf("truncation: %q", b.Str(0, 2))
	}
}

func TestScanAllRowsAllThreads(t *testing.T) {
	for _, threads := range []int{1, 3, 8} {
		tbl := makeInts(10_000, 97)
		sink := runPlan(t, &Scan{T: tbl}, threads, false)
		if sink.Rows != 10_000 {
			t.Fatalf("threads=%d: rows = %d, want 10000", threads, sink.Rows)
		}
	}
}

func TestScanPasses(t *testing.T) {
	tbl := makeInts(1000, 10)
	sink := runPlan(t, &Scan{T: tbl, Passes: 3}, 4, false)
	if sink.Rows != 3000 {
		t.Fatalf("rows = %d, want 3000", sink.Rows)
	}
}

func TestScanChargesTime(t *testing.T) {
	s := sim.New(1)
	ctx := testCtx(s, 2)
	sink := &Sink{In: &Scan{T: makeInts(50_000, 7)}}
	sink.Run(ctx, "t", nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() == 0 {
		t.Fatal("scan consumed no virtual time")
	}
}

func TestFilter(t *testing.T) {
	tbl := makeInts(10_000, 10)
	op := &Filter{
		In:   &Scan{T: tbl},
		Pred: func(b *Batch, i int) bool { return b.Int64(i, 0) < 3 },
	}
	sink := runPlan(t, op, 4, false)
	if sink.Rows != 3000 {
		t.Fatalf("rows = %d, want 3000", sink.Rows)
	}
}

func TestProject(t *testing.T) {
	tbl := NewTable(NewSchema(TInt64, TStr16, TInt64))
	w := NewWriter(tbl)
	for i := 0; i < 100; i++ {
		w.SetInt64(0, int64(i))
		w.SetStr(1, fmt.Sprintf("row%d", i))
		w.SetInt64(2, int64(i*2))
		w.Done()
	}
	op := &Project{In: &Scan{T: tbl}, Cols: []int{2, 0}}
	sink := runPlan(t, op, 2, true)
	if sink.Rows != 100 {
		t.Fatalf("rows = %d", sink.Rows)
	}
	if sink.Result.Sch.Width() != 16 {
		t.Fatalf("projected width = %d, want 16", sink.Result.Sch.Width())
	}
	// Verify one row: col0 = 2*orig, col1 = orig.
	seen := map[int64]int64{}
	for i := 0; i < sink.Result.N; i++ {
		row := sink.Result.Row(i)
		sch := sink.Result.Sch
		seen[RowInt64(sch, row, 1)] = RowInt64(sch, row, 0)
	}
	if seen[7] != 14 {
		t.Fatalf("projection scrambled columns: %v", seen[7])
	}
}

func TestHashJoinInner(t *testing.T) {
	build := makeInts(100, 100) // keys 0..99 unique
	probe := makeInts(1000, 50) // keys 0..49, 20 rows each
	op := &HashJoin{
		Build: &Scan{T: build}, Probe: &Scan{T: probe},
		BuildKey: 0, ProbeKey: 0,
	}
	sink := runPlan(t, op, 4, true)
	// Each of the 1000 probe rows with key<50 matches exactly one build row.
	if sink.Rows != 1000 {
		t.Fatalf("join rows = %d, want 1000", sink.Rows)
	}
	// Check join columns line up: build(k,v) ++ probe(k,v) with equal keys.
	sch := sink.Result.Sch
	for i := 0; i < sink.Result.N; i++ {
		row := sink.Result.Row(i)
		if RowInt64(sch, row, 0) != RowInt64(sch, row, 2) {
			t.Fatalf("row %d: keys differ: %d vs %d", i,
				RowInt64(sch, row, 0), RowInt64(sch, row, 2))
		}
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	build := makeInts(20, 5)  // 5 keys, 4 build rows each
	probe := makeInts(10, 10) // keys 0..9; only 0..4 match
	op := &HashJoin{Build: &Scan{T: build}, Probe: &Scan{T: probe},
		BuildKey: 0, ProbeKey: 0}
	sink := runPlan(t, op, 2, false)
	if sink.Rows != 5*4 {
		t.Fatalf("join rows = %d, want 20", sink.Rows)
	}
}

func TestHashJoinCarryOverflow(t *testing.T) {
	// One build key with a huge chain times many matching probe rows forces
	// output-batch overflow and exercises the carry path.
	build := makeInts(3000, 1) // all key 0
	probe := makeInts(5, 1)    // all key 0
	op := &HashJoin{Build: &Scan{T: build}, Probe: &Scan{T: probe},
		BuildKey: 0, ProbeKey: 0}
	sink := runPlan(t, op, 2, false)
	if sink.Rows != 15000 {
		t.Fatalf("join rows = %d, want 15000", sink.Rows)
	}
}

func TestHashAggSumAndCount(t *testing.T) {
	tbl := makeInts(1000, 4) // keys 0..3, 250 rows each
	op := &HashAgg{
		In:      &Scan{T: tbl},
		KeyCols: []int{0},
		Aggs: []AggSpec{
			{Kind: AggCount},
			{Kind: AggSum, Eval: func(b *Batch, i int) float64 { return float64(b.Int64(i, 1)) }},
		},
	}
	sink := runPlan(t, op, 4, true)
	if sink.Rows != 4 {
		t.Fatalf("groups = %d, want 4", sink.Rows)
	}
	res := sink.Result
	sch := res.Sch
	for i := 0; i < res.N; i++ {
		row := res.Row(i)
		k := RowInt64(sch, row, 0)
		cnt := float64frombits(uint64(RowInt64(sch, row, 1)))
		sum := float64frombits(uint64(RowInt64(sch, row, 2)))
		if cnt != 250 {
			t.Fatalf("key %d count = %v, want 250", k, cnt)
		}
		// Sum over i in 0..999 with i%4==k of i: 250 terms, arithmetic series.
		want := float64(250*int(k)) + 4*float64(249*250/2)
		if sum != want {
			t.Fatalf("key %d sum = %v, want %v", k, sum, want)
		}
	}
}

func TestTopN(t *testing.T) {
	tbl := makeInts(5000, 5000)
	op := &TopN{
		In: &Scan{T: tbl},
		N:  10,
		Less: func(sch *Schema, a, b []byte) bool {
			return RowInt64(sch, a, 1) > RowInt64(sch, b, 1) // descending v
		},
	}
	sink := runPlan(t, op, 4, true)
	if sink.Rows != 10 {
		t.Fatalf("rows = %d, want 10", sink.Rows)
	}
	for i := 0; i < sink.Result.N; i++ {
		v := RowInt64(sink.Result.Sch, sink.Result.Row(i), 1)
		if v != int64(4999-i) {
			t.Fatalf("row %d = %d, want %d", i, v, 4999-i)
		}
	}
}

func TestBurnAddsTime(t *testing.T) {
	elapsed := func(per sim.Duration) sim.Time {
		s := sim.New(1)
		ctx := testCtx(s, 2)
		sink := &Sink{In: &Burn{In: &Scan{T: makeInts(10_000, 3)}, PerBatch: per}}
		sink.Run(ctx, "t", nil)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	fast, slow := elapsed(0), elapsed(1000_000)
	if slow <= fast {
		t.Fatalf("burn did not add time: %v vs %v", fast, slow)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	s := sim.New(1)
	b := NewBarrier(s, "b", 3)
	var releases []sim.Time
	lastCount := 0
	for i := 0; i < 3; i++ {
		d := sim.Duration((i + 1) * 100)
		s.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			p.Sleep(d)
			if b.Wait(p) {
				lastCount++
			}
			releases = append(releases, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if lastCount != 1 {
		t.Fatalf("barrier designated %d last-arrivers, want 1", lastCount)
	}
	for _, r := range releases {
		if r != 300 {
			t.Fatalf("release at %v, want 300 (when the slowest arrived)", r)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	s := sim.New(1)
	b := NewBarrier(s, "b", 2)
	phase := 0
	for i := 0; i < 2; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			b.Wait(p)
			if b.Wait(p) {
				phase++
			}
			b.Wait(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if phase != 1 {
		t.Fatalf("phase = %d", phase)
	}
}

// Property: Filter(pred) ∪ Filter(!pred) = identity on row counts.
func TestFilterPartitionProperty(t *testing.T) {
	f := func(n uint16, mod uint8, cut uint8) bool {
		rows := int(n%2000) + 1
		m := int(mod)%50 + 1
		c := int64(cut) % int64(m+1)
		count := func(pred func(b *Batch, i int) bool) int64 {
			tbl := makeInts(rows, m)
			return runPlan(t, &Filter{In: &Scan{T: tbl}, Pred: pred}, 3, false).Rows
		}
		lo := count(func(b *Batch, i int) bool { return b.Int64(i, 0) < c })
		hi := count(func(b *Batch, i int) bool { return b.Int64(i, 0) >= c })
		return lo+hi == int64(rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: join cardinality equals the sum over keys of |build_k|×|probe_k|.
func TestJoinCardinalityProperty(t *testing.T) {
	f := func(bn, pn uint16, mod uint8) bool {
		b := int(bn)%500 + 1
		pr := int(pn)%500 + 1
		m := int(mod)%20 + 1
		got := runPlan(t, &HashJoin{
			Build: &Scan{T: makeInts(b, m)}, Probe: &Scan{T: makeInts(pr, m)},
			BuildKey: 0, ProbeKey: 0,
		}, 2, false).Rows
		var want int64
		for k := 0; k < m; k++ {
			bk := int64(b/m) + b2i(k < b%m)
			pk := int64(pr/m) + b2i(k < pr%m)
			want += bk * pk
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func BenchmarkScan(b *testing.B) {
	tbl := makeInts(100_000, 97)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPlan(b, &Scan{T: tbl}, 4, false)
	}
}

func BenchmarkHashJoin(b *testing.B) {
	build := makeInts(10_000, 10_000)
	probe := makeInts(50_000, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPlan(b, &HashJoin{Build: &Scan{T: build}, Probe: &Scan{T: probe},
			BuildKey: 0, ProbeKey: 0}, 4, false)
	}
}

func TestHashJoinSemi(t *testing.T) {
	// Build: 10 orders (unique keys 0..9). Probe: 40 lineitems over keys
	// 0..4 (8 each). Semi join must emit each matched build row exactly
	// once, with the build schema only.
	build := makeInts(10, 10)
	probe := makeInts(40, 5)
	op := &HashJoin{Build: &Scan{T: build}, Probe: &Scan{T: probe},
		BuildKey: 0, ProbeKey: 0, Semi: true}
	sink := runPlan(t, op, 3, true)
	if sink.Rows != 5 {
		t.Fatalf("semi join rows = %d, want 5", sink.Rows)
	}
	if sink.Result.Sch.Width() != build.Sch.Width() {
		t.Fatalf("semi join schema width = %d, want build width %d",
			sink.Result.Sch.Width(), build.Sch.Width())
	}
	seen := map[int64]bool{}
	for i := 0; i < sink.Result.N; i++ {
		k := RowInt64(sink.Result.Sch, sink.Result.Row(i), 0)
		if seen[k] {
			t.Fatalf("key %d emitted twice", k)
		}
		seen[k] = true
		if k >= 5 {
			t.Fatalf("unmatched key %d emitted", k)
		}
	}
}

func TestHashJoinSemiOverflow(t *testing.T) {
	// More matched build rows than one output batch forces the carry path
	// through the semi bookkeeping.
	build := makeInts(5000, 5000)
	probe := makeInts(5000, 5000)
	op := &HashJoin{Build: &Scan{T: build}, Probe: &Scan{T: probe},
		BuildKey: 0, ProbeKey: 0, Semi: true}
	sink := runPlan(t, op, 2, false)
	if sink.Rows != 5000 {
		t.Fatalf("semi join rows = %d, want 5000", sink.Rows)
	}
}

func TestBurnCountsBatches(t *testing.T) {
	s := sim.New(1)
	ctx := testCtx(s, 2)
	burn := &Burn{In: &Scan{T: makeInts(10_000, 3)}, PerBatch: 100}
	sink := &Sink{In: burn}
	sink.Run(ctx, "t", nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := int64((10_000 + DefaultBatchTuples - 1) / DefaultBatchTuples)
	if burn.Batches != want {
		t.Fatalf("burn batches = %d, want %d", burn.Batches, want)
	}
}

func TestFilterCarryOverflow(t *testing.T) {
	// An all-pass predicate over many consecutive batches exercises the
	// filter's carry path (output fills mid-input).
	tbl := makeInts(50_000, 7)
	op := &Filter{In: &Scan{T: tbl}, Pred: func(b *Batch, i int) bool { return true }}
	sink := runPlan(t, op, 2, false)
	if sink.Rows != 50_000 {
		t.Fatalf("rows = %d, want 50000", sink.Rows)
	}
}
