package engine

import "rshuffle/internal/sim"

// Table is an in-memory row store: one node's partition of a relation.
type Table struct {
	Sch  *Schema
	Data []byte
	N    int
}

// NewTable returns an empty table with the given schema.
func NewTable(sch *Schema) *Table { return &Table{Sch: sch} }

// Append adds one raw row.
func (t *Table) Append(row []byte) {
	t.Data = append(t.Data, row...)
	t.N++
}

// AppendBatch adds all rows of b.
func (t *Table) AppendBatch(b *Batch) {
	t.Data = append(t.Data, b.Bytes()...)
	t.N += b.N
}

// Row returns the raw bytes of row i.
func (t *Table) Row(i int) []byte {
	w := t.Sch.Width()
	return t.Data[i*w : (i+1)*w]
}

// Bytes returns the total payload size.
func (t *Table) Bytes() int { return len(t.Data) }

// Writer appends typed rows conveniently.
type Writer struct {
	t   *Table
	row []byte
}

// NewWriter returns a writer for t.
func NewWriter(t *Table) *Writer {
	return &Writer{t: t, row: make([]byte, t.Sch.Width())}
}

// Row returns the scratch row; fill it with the Set helpers then call Done.
func (w *Writer) Row() []byte { return w.row }

// SetInt64 sets an int64 column of the scratch row.
func (w *Writer) SetInt64(col int, v int64) { RowSetInt64(w.t.Sch, w.row, col, v) }

// SetFloat64 sets a float64 column of the scratch row.
func (w *Writer) SetFloat64(col int, v float64) {
	RowSetInt64(w.t.Sch, w.row, col, int64(float64bits(v)))
}

// SetStr sets a fixed-string column of the scratch row.
func (w *Writer) SetStr(col int, v string) {
	off := w.t.Sch.Offset(col)
	n := w.t.Sch.Cols[col].Size()
	dst := w.row[off : off+n]
	for i := range dst {
		dst[i] = 0
	}
	copy(dst, v)
}

// Done appends the scratch row to the table.
func (w *Writer) Done() { w.t.Append(w.row) }

// Scan is a morsel-driven parallel table scan: threads grab batches from a
// shared cursor, so work balances across threads automatically (Leis et
// al., morsel-driven parallelism).
type Scan struct {
	T *Table
	// Passes repeats the scan the given number of times (the paper's
	// synthetic experiment streams the table ten times); 0 means 1.
	Passes int

	ctx    *Ctx
	cursor int
	pass   int
	out    []*Batch
}

// Schema implements Operator.
func (s *Scan) Schema() *Schema { return s.T.Sch }

// Open implements Operator.
func (s *Scan) Open(ctx *Ctx) {
	s.ctx = ctx
	if s.Passes <= 0 {
		s.Passes = 1
	}
	s.out = make([]*Batch, ctx.Threads)
	for i := range s.out {
		s.out[i] = NewBatch(s.T.Sch, DefaultBatchTuples)
	}
}

// Next implements Operator.
func (s *Scan) Next(p *sim.Proc, tid int) (*Batch, State) {
	w := s.T.Sch.Width()
	for {
		if s.cursor >= s.T.N {
			if s.pass+1 >= s.Passes {
				return nil, Depleted
			}
			s.pass++
			s.cursor = 0
		}
		n := DefaultBatchTuples
		if rem := s.T.N - s.cursor; n > rem {
			n = rem
		}
		out := s.out[tid]
		out.Reset()
		out.AppendRows(s.T.Data[s.cursor*w : (s.cursor+n)*w])
		s.cursor += n
		s.ctx.ChargeTuples(p, n)
		return out, MoreData
	}
}

// Close implements Operator.
func (s *Scan) Close(p *sim.Proc) {}
