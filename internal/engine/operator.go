package engine

import (
	"math"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
)

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(u uint64) float64 { return math.Float64frombits(u) }

// State is the pull-protocol state returned by Next.
type State int

const (
	// MoreData means further batches may follow for this thread.
	MoreData State = iota
	// Depleted means this thread will receive no more data.
	Depleted
)

func (s State) String() string {
	if s == MoreData {
		return "MoreData"
	}
	return "Depleted"
}

// Ctx carries what operators need at Open time.
type Ctx struct {
	S       *sim.Simulation
	Prof    *fabric.Profile
	Threads int
	// Node is the cluster node this plan fragment runs on.
	Node int
}

// ChargeTuples charges p the light per-tuple processing cost for n tuples.
func (c *Ctx) ChargeTuples(p *sim.Proc, n int) {
	if n > 0 {
		p.Sleep(sim.Duration(n) * c.Prof.TupleProcess)
	}
}

// ChargeHash charges p the partition-hash cost for n tuples.
func (c *Ctx) ChargeHash(p *sim.Proc, n int) {
	if n > 0 {
		p.Sleep(sim.Duration(n) * c.Prof.HashPerTuple)
	}
}

// ChargeCopy charges p the cost of copying n bytes.
func (c *Ctx) ChargeCopy(p *sim.Proc, n int) {
	if n > 0 {
		p.Sleep(sim.Duration(float64(n) * c.Prof.MemCopyPerByte))
	}
}

// Operator is the vectorized, parallel pull interface of Figure 1. Next is
// called concurrently by ctx.Threads worker Procs, each passing its thread
// id; operator state is thread-partitioned to avoid interference.
type Operator interface {
	// Schema describes the rows this operator produces.
	Schema() *Schema
	// Open prepares per-thread state. It is called once, before any Next.
	Open(ctx *Ctx)
	// Next returns the next batch for thread tid. The returned batch is
	// owned by the operator and valid until the same thread's next call.
	// After returning Depleted the operator keeps returning Depleted.
	Next(p *sim.Proc, tid int) (*Batch, State)
	// Close releases operator resources after all threads have finished.
	Close(p *sim.Proc)
}

// Barrier blocks each arriving thread until all ctx.Threads have arrived,
// then releases them together. It is reusable across phases.
type Barrier struct {
	n       int
	arrived int
	gen     int
	cond    *sim.Cond
}

// NewBarrier returns a barrier for n threads.
func NewBarrier(s *sim.Simulation, name string, n int) *Barrier {
	return &Barrier{n: n, cond: s.NewCond("barrier " + name)}
}

// Wait blocks p until all threads arrive. It returns true for exactly one
// thread per generation (the last arriver), which is convenient for
// single-threaded merge steps.
func (b *Barrier) Wait(p *sim.Proc) bool {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return true
	}
	for b.gen == gen {
		b.cond.Wait(p)
	}
	return false
}
