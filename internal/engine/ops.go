package engine

import (
	"sort"

	"rshuffle/internal/sim"
)

// Filter passes through rows for which Pred returns true.
type Filter struct {
	In   Operator
	Pred func(b *Batch, i int) bool

	ctx   *Ctx
	out   []*Batch
	carry []filterCarry
}

// filterCarry resumes an input batch whose survivors overflowed the output.
type filterCarry struct {
	in  *Batch
	st  State
	row int
}

// Schema implements Operator.
func (f *Filter) Schema() *Schema { return f.In.Schema() }

// Open implements Operator.
func (f *Filter) Open(ctx *Ctx) {
	f.In.Open(ctx)
	f.ctx = ctx
	f.out = make([]*Batch, ctx.Threads)
	f.carry = make([]filterCarry, ctx.Threads)
	for i := range f.out {
		f.out[i] = NewBatch(f.In.Schema(), DefaultBatchTuples)
	}
}

// Next implements Operator.
func (f *Filter) Next(p *sim.Proc, tid int) (*Batch, State) {
	out := f.out[tid]
	out.Reset()
	c := &f.carry[tid]
	for {
		if c.in == nil {
			in, st := f.In.Next(p, tid)
			c.in, c.st, c.row = in, st, 0
			if in != nil {
				f.ctx.ChargeTuples(p, in.N)
			}
		}
		if c.in != nil {
			for ; c.row < c.in.N; c.row++ {
				if !f.Pred(c.in, c.row) {
					continue
				}
				if out.Full() {
					return out, MoreData
				}
				out.AppendRow(c.in.Row(c.row))
			}
		}
		st := c.st
		c.in = nil
		if st == Depleted {
			return out, Depleted
		}
		if out.N >= out.Cap()/2 {
			return out, MoreData
		}
	}
}

// Close implements Operator.
func (f *Filter) Close(p *sim.Proc) { f.In.Close(p) }

// Project keeps only the selected columns, in the given order.
type Project struct {
	In   Operator
	Cols []int

	ctx *Ctx
	sch *Schema
	out []*Batch
}

// Schema implements Operator; it is valid before Open.
func (pr *Project) Schema() *Schema {
	if pr.sch == nil {
		pr.sch = pr.In.Schema().Project(pr.Cols...)
	}
	return pr.sch
}

// Open implements Operator.
func (pr *Project) Open(ctx *Ctx) {
	pr.In.Open(ctx)
	pr.ctx = ctx
	pr.sch = nil
	pr.sch = pr.Schema()
	pr.out = make([]*Batch, ctx.Threads)
	for i := range pr.out {
		pr.out[i] = NewBatch(pr.sch, DefaultBatchTuples)
	}
}

// Next implements Operator.
func (pr *Project) Next(p *sim.Proc, tid int) (*Batch, State) {
	in, st := pr.In.Next(p, tid)
	out := pr.out[tid]
	out.Reset()
	if in != nil && in.N > out.Cap() {
		// The child produces larger batches than the default vector size
		// (e.g. a Receive configured for 32 KiB pulls); resize once.
		pr.out[tid] = NewBatch(pr.sch, in.N)
		out = pr.out[tid]
	}
	if in != nil {
		insch := pr.In.Schema()
		pr.ctx.ChargeCopy(p, in.N*pr.sch.Width())
		for i := 0; i < in.N; i++ {
			row := out.Row(out.N)
			src := in.Row(i)
			off := 0
			for _, c := range pr.Cols {
				n := insch.Cols[c].Size()
				copy(row[off:off+n], src[insch.Offset(c):])
				off += n
			}
			out.N++
		}
	}
	return out, st
}

// Close implements Operator.
func (pr *Project) Close(p *sim.Proc) { pr.In.Close(p) }

// HashJoin is an in-memory equi-join: it drains Build into a shared hash
// table (all threads cooperate, with a barrier), then streams Probe,
// emitting Build-row ++ Probe-row for each match. With Semi set it becomes
// a right semi-join: each build row is emitted alone, at most once, upon
// its first probe match (EXISTS semantics).
type HashJoin struct {
	Build, Probe       Operator
	BuildKey, ProbeKey int
	Semi               bool

	ctx     *Ctx
	sch     *Schema
	ht      map[int64][]int32
	rows    []byte // build-side row store
	matched []bool // Semi: build rows already emitted
	built   bool
	barrier *Barrier
	out     []*Batch
	carry   []probeCarry
	mu      *sim.Mutex
}

// probeCarry resumes a probe batch whose matches overflowed the output.
type probeCarry struct {
	in    *Batch
	st    State
	row   int // next probe row to examine
	match int // next match index within that row's chain
}

// Schema implements Operator; it is valid before Open.
func (h *HashJoin) Schema() *Schema {
	if h.sch == nil {
		if h.Semi {
			h.sch = h.Build.Schema()
		} else {
			h.sch = h.Build.Schema().Concat(h.Probe.Schema())
		}
	}
	return h.sch
}

// Open implements Operator.
func (h *HashJoin) Open(ctx *Ctx) {
	h.Build.Open(ctx)
	h.Probe.Open(ctx)
	h.ctx = ctx
	h.sch = h.Schema()
	h.ht = make(map[int64][]int32)
	h.barrier = NewBarrier(ctx.S, "hashjoin", ctx.Threads)
	h.mu = ctx.S.NewMutex("hashjoin-build")
	h.out = make([]*Batch, ctx.Threads)
	h.carry = make([]probeCarry, ctx.Threads)
	for i := range h.out {
		h.out[i] = NewBatch(h.sch, DefaultBatchTuples)
	}
}

// buildPhase drains the build child on this thread, inserting into the
// shared table under a lock (the contention is part of the model).
func (h *HashJoin) buildPhase(p *sim.Proc, tid int) {
	bw := h.Build.Schema().Width()
	for {
		in, st := h.Build.Next(p, tid)
		if in != nil && in.N > 0 {
			h.ctx.ChargeHash(p, in.N)
			h.ctx.ChargeCopy(p, in.N*bw)
			h.mu.Lock(p)
			for i := 0; i < in.N; i++ {
				k := in.Int64(i, h.BuildKey)
				h.ht[k] = append(h.ht[k], int32(len(h.rows)/bw))
				h.rows = append(h.rows, in.Row(i)...)
			}
			h.mu.Unlock(p)
		}
		if st == Depleted {
			break
		}
	}
	h.barrier.Wait(p)
	if h.Semi && h.matched == nil {
		h.matched = make([]bool, len(h.rows)/bw)
	}
	h.built = true
}

// Next implements Operator.
func (h *HashJoin) Next(p *sim.Proc, tid int) (*Batch, State) {
	if !h.built {
		h.buildPhase(p, tid)
	}
	bw := h.Build.Schema().Width()
	out := h.out[tid]
	out.Reset()
	c := &h.carry[tid]
	for {
		if c.in == nil {
			in, st := h.Probe.Next(p, tid)
			c.in, c.st, c.row, c.match = in, st, 0, 0
			if in != nil {
				h.ctx.ChargeHash(p, in.N)
			}
		}
		matched := 0
		if c.in != nil {
			for ; c.row < c.in.N; c.row, c.match = c.row+1, 0 {
				chain := h.ht[c.in.Int64(c.row, h.ProbeKey)]
				for ; c.match < len(chain); c.match++ {
					r := int(chain[c.match])
					if h.Semi && h.matched[r] {
						continue
					}
					if out.Full() {
						h.ctx.ChargeCopy(p, matched*h.sch.Width())
						return out, MoreData
					}
					row := out.Row(out.N)
					copy(row, h.rows[r*bw:(r+1)*bw])
					if h.Semi {
						h.matched[r] = true
					} else {
						copy(row[bw:], c.in.Row(c.row))
					}
					out.N++
					matched++
				}
			}
		}
		h.ctx.ChargeCopy(p, matched*h.sch.Width())
		st := c.st
		c.in = nil
		if st == Depleted {
			return out, Depleted
		}
		if out.N >= out.Cap()/2 {
			return out, MoreData
		}
	}
}

// Close implements Operator.
func (h *HashJoin) Close(p *sim.Proc) {
	h.Build.Close(p)
	h.Probe.Close(p)
}

// AggKind selects the aggregate function.
type AggKind int

const (
	// AggCount counts rows.
	AggCount AggKind = iota
	// AggSum sums Eval over rows.
	AggSum
)

// AggSpec is one aggregate: for AggSum, Eval extracts the addend.
type AggSpec struct {
	Kind AggKind
	Eval func(b *Batch, i int) float64
}

// HashAgg groups by the byte image of KeyCols and computes Aggs. Threads
// build per-thread partial tables; the last thread to finish merges them,
// then results are emitted round-robin across threads.
// Output schema: key columns followed by one float64 per aggregate.
type HashAgg struct {
	In      Operator
	KeyCols []int
	Aggs    []AggSpec

	ctx     *Ctx
	sch     *Schema
	partial []map[string][]float64
	merged  []string // deterministic key order
	table   map[string][]float64
	done    bool
	barrier *Barrier
	cursor  int
	out     []*Batch
}

// Schema implements Operator; it is valid before Open.
func (a *HashAgg) Schema() *Schema {
	if a.sch == nil {
		ts := make([]Type, 0, len(a.KeyCols)+len(a.Aggs))
		for _, c := range a.KeyCols {
			ts = append(ts, a.In.Schema().Cols[c])
		}
		for range a.Aggs {
			ts = append(ts, TFloat64)
		}
		a.sch = NewSchema(ts...)
	}
	return a.sch
}

// Open implements Operator.
func (a *HashAgg) Open(ctx *Ctx) {
	a.In.Open(ctx)
	a.ctx = ctx
	a.sch = a.Schema()
	a.partial = make([]map[string][]float64, ctx.Threads)
	for i := range a.partial {
		a.partial[i] = make(map[string][]float64)
	}
	a.barrier = NewBarrier(ctx.S, "hashagg", ctx.Threads)
	a.out = make([]*Batch, ctx.Threads)
	for i := range a.out {
		a.out[i] = NewBatch(a.sch, DefaultBatchTuples)
	}
}

func (a *HashAgg) keyOf(b *Batch, i int) string {
	insch := b.Sch
	row := b.Row(i)
	var key []byte
	for _, c := range a.KeyCols {
		off := insch.Offset(c)
		key = append(key, row[off:off+insch.Cols[c].Size()]...)
	}
	return string(key)
}

func (a *HashAgg) consume(p *sim.Proc, tid int) {
	part := a.partial[tid]
	for {
		in, st := a.In.Next(p, tid)
		if in != nil && in.N > 0 {
			a.ctx.ChargeHash(p, in.N)
			a.ctx.ChargeTuples(p, in.N*len(a.Aggs))
			for i := 0; i < in.N; i++ {
				k := a.keyOf(in, i)
				acc := part[k]
				if acc == nil {
					acc = make([]float64, len(a.Aggs))
					part[k] = acc
				}
				for j, spec := range a.Aggs {
					switch spec.Kind {
					case AggCount:
						acc[j]++
					case AggSum:
						acc[j] += spec.Eval(in, i)
					}
				}
			}
		}
		if st == Depleted {
			break
		}
	}
	if a.barrier.Wait(p) {
		// Last thread merges the partials deterministically.
		a.table = make(map[string][]float64)
		total := 0
		for _, part := range a.partial {
			total += len(part)
			for k, acc := range part {
				dst := a.table[k]
				if dst == nil {
					a.table[k] = append([]float64(nil), acc...)
					continue
				}
				for j := range dst {
					dst[j] += acc[j]
				}
			}
		}
		a.ctx.ChargeHash(p, total)
		a.merged = make([]string, 0, len(a.table))
		for k := range a.table {
			a.merged = append(a.merged, k)
		}
		sort.Strings(a.merged)
	}
	a.barrier.Wait(p)
	a.done = true
}

// Next implements Operator.
func (a *HashAgg) Next(p *sim.Proc, tid int) (*Batch, State) {
	if !a.done {
		a.consume(p, tid)
	}
	out := a.out[tid]
	out.Reset()
	for out.N < out.Cap() && a.cursor < len(a.merged) {
		k := a.merged[a.cursor]
		a.cursor++
		row := out.Row(out.N)
		copy(row, k) // key bytes are a prefix of the output row
		acc := a.table[k]
		out.N++
		for j, v := range acc {
			out.SetFloat64(out.N-1, len(a.KeyCols)+j, v)
		}
	}
	a.ctx.ChargeTuples(p, out.N)
	if a.cursor >= len(a.merged) {
		return out, Depleted
	}
	return out, MoreData
}

// Close implements Operator.
func (a *HashAgg) Close(p *sim.Proc) { a.In.Close(p) }

// TopN fully drains its input, sorts with Less over raw rows, and emits the
// first N rows (all of them if N <= 0). The sort itself runs on the last
// arriving thread.
type TopN struct {
	In   Operator
	N    int
	Less func(sch *Schema, a, b []byte) bool

	ctx     *Ctx
	rows    [][]byte
	sorted  bool
	barrier *Barrier
	mu      *sim.Mutex
	cursor  int
	out     []*Batch
}

// Schema implements Operator.
func (t *TopN) Schema() *Schema { return t.In.Schema() }

// Open implements Operator.
func (t *TopN) Open(ctx *Ctx) {
	t.In.Open(ctx)
	t.ctx = ctx
	t.barrier = NewBarrier(ctx.S, "topn", ctx.Threads)
	t.mu = ctx.S.NewMutex("topn")
	t.out = make([]*Batch, ctx.Threads)
	for i := range t.out {
		t.out[i] = NewBatch(t.In.Schema(), DefaultBatchTuples)
	}
}

// Next implements Operator.
func (t *TopN) Next(p *sim.Proc, tid int) (*Batch, State) {
	if !t.sorted {
		for {
			in, st := t.In.Next(p, tid)
			if in != nil && in.N > 0 {
				t.ctx.ChargeCopy(p, in.N*in.Sch.Width())
				t.mu.Lock(p)
				for i := 0; i < in.N; i++ {
					t.rows = append(t.rows, append([]byte(nil), in.Row(i)...))
				}
				t.mu.Unlock(p)
			}
			if st == Depleted {
				break
			}
		}
		if t.barrier.Wait(p) {
			sch := t.In.Schema()
			// n log n comparison cost, charged to the sorting thread.
			n := len(t.rows)
			if n > 1 {
				cost := 0
				for m := n; m > 1; m >>= 1 {
					cost += n
				}
				t.ctx.ChargeTuples(p, cost)
			}
			sort.SliceStable(t.rows, func(i, j int) bool {
				return t.Less(sch, t.rows[i], t.rows[j])
			})
			if t.N > 0 && len(t.rows) > t.N {
				t.rows = t.rows[:t.N]
			}
		}
		t.barrier.Wait(p)
		t.sorted = true
	}
	out := t.out[tid]
	out.Reset()
	for out.N < out.Cap() && t.cursor < len(t.rows) {
		out.AppendRow(t.rows[t.cursor])
		t.cursor++
	}
	if t.cursor >= len(t.rows) {
		return out, Depleted
	}
	return out, MoreData
}

// Close implements Operator.
func (t *TopN) Close(p *sim.Proc) { t.In.Close(p) }

// Burn adds a fixed CPU cost per batch pulled through it; the paper's
// compute-intensity experiment (Fig. 13) uses it to emulate query fragments
// of varying compute demand.
type Burn struct {
	In Operator
	// PerBatch is the CPU time burned for each batch returned by In.
	PerBatch sim.Duration
	// Batches counts burn periods across all threads.
	Batches int64
}

// Schema implements Operator.
func (b *Burn) Schema() *Schema { return b.In.Schema() }

// Open implements Operator.
func (b *Burn) Open(ctx *Ctx) { b.In.Open(ctx) }

// Next implements Operator.
func (b *Burn) Next(p *sim.Proc, tid int) (*Batch, State) {
	in, st := b.In.Next(p, tid)
	if in != nil && in.N > 0 && b.PerBatch > 0 {
		b.Batches++
		p.Sleep(b.PerBatch)
	}
	return in, st
}

// Close implements Operator.
func (b *Burn) Close(p *sim.Proc) { b.In.Close(p) }

// Sink drains an operator tree from all threads and accumulates counts. Use
// Run to execute a full plan.
type Sink struct {
	In Operator

	Rows  int64
	Bytes int64
	// Keep retains all emitted rows when set (for result verification).
	Keep   bool
	Result *Table
	// Busy and Blocked accumulate the worker threads' virtual CPU and wait
	// times, for utilization profiling.
	Busy, Blocked sim.Duration
}

// Run opens the plan and drains it with ctx.Threads worker Procs, invoking
// done (if non-nil) when every thread has finished and the plan is closed.
func (s *Sink) Run(ctx *Ctx, name string, done func(p *sim.Proc)) {
	s.In.Open(ctx)
	if s.Keep {
		s.Result = NewTable(s.In.Schema())
	}
	wg := ctx.S.NewWaitGroup("sink " + name)
	for tid := 0; tid < ctx.Threads; tid++ {
		tid := tid
		wg.Go(name+"-worker", func(p *sim.Proc) {
			defer func() {
				s.Busy += p.BusyTime()
				s.Blocked += p.BlockedTime()
			}()
			for {
				b, st := s.In.Next(p, tid)
				if b != nil && b.N > 0 {
					s.Rows += int64(b.N)
					s.Bytes += int64(b.N * b.Sch.Width())
					if s.Keep {
						s.Result.AppendBatch(b)
					}
				}
				if st == Depleted {
					return
				}
			}
		})
	}
	ctx.S.Spawn(name+"-join", func(p *sim.Proc) {
		wg.Wait(p)
		s.In.Close(p)
		if done != nil {
			done(p)
		}
	})
}
