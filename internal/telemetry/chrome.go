package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// WriteChromeTrace serializes the tracer's retained events as Chrome
// trace-event JSON (the format chrome://tracing and Perfetto load). Spans
// become async begin/end pairs keyed by (name, qp, a); instants become
// thread-scoped instant events. pid is the fabric node, tid the low 32 bits
// of the QP key, and ts is virtual microseconds with nanosecond precision.
//
// The output is a pure function of the event sequence: with a deterministic
// simulation, two same-seed runs produce byte-identical files.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	return WriteChromeEvents(w, t.Events())
}

// WriteChromeEvents is WriteChromeTrace over an explicit event stream — the
// shape a partitioned run produces after MergeShards.
func WriteChromeEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	for _, e := range events {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		if err := writeChromeEvent(bw, e); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func writeChromeEvent(w *bufio.Writer, e Event) error {
	// ts is in microseconds; three decimals keep full nanosecond precision.
	us := e.At / 1000
	ns := e.At % 1000
	tid := uint32(e.QP)
	var err error
	switch e.Kind {
	case KBegin, KEnd:
		ph := "b"
		if e.Kind == KEnd {
			ph = "e"
		}
		_, err = fmt.Fprintf(w,
			`{"name":%q,"cat":%q,"ph":%q,"id":"%d.%d","ts":%d.%03d,"pid":%d,"tid":%d,"args":{"a":%d,"b":%d}}`,
			e.Name.String(), e.Name.String(), ph, e.QP, e.A, us, ns, e.Node, tid, e.A, e.B)
	default:
		_, err = fmt.Fprintf(w,
			`{"name":%q,"cat":%q,"ph":"i","s":"t","ts":%d.%03d,"pid":%d,"tid":%d,"args":{"a":%d,"b":%d}}`,
			e.Name.String(), e.Name.String(), us, ns, e.Node, tid, e.A, e.B)
	}
	return err
}
