package telemetry

import (
	"fmt"
	"sort"
)

// Registry is a flat namespace of counters, gauges, and fixed-bucket
// histograms. Metric names are dotted paths whose trailing components key
// the metric (node, QP, operator, algorithm), e.g.
// "fabric.qp_cache_misses.node3" or "shuffle.qps_per_operator".
//
// The simulator is single-threaded, so the registry needs no locking. Hot
// paths obtain a metric handle once (at setup) and mutate it through the
// pointer; name lookup and formatting happen only off the hot path.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v int64 }

// Add increases the counter by n.
func (c *Counter) Add(n int64) { c.v += n }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time float metric.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// SetMax stores v if it exceeds the current value (high-water marks).
func (g *Gauge) SetMax(v float64) {
	if v > g.v {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket histogram of int64 observations. Bucket i
// counts observations v with v <= Bounds[i] (and v > Bounds[i-1]); the
// final bucket counts overflows beyond the last bound.
type Histogram struct {
	bounds []int64
	counts []int64
	sum    int64
	n      int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	h.n++
	h.sum += v
	// Buckets are few and fixed; a linear scan beats binary search at this
	// size and stays branch-predictable on the hot path.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Bounds returns the bucket upper bounds (exclusive of the overflow bucket).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// BucketCounts returns the per-bucket counts; the final entry is the
// overflow bucket.
func (h *Histogram) BucketCounts() []int64 { return h.counts }

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Counter returns the named counter, creating it at zero if absent.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero if absent.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds if absent. Bounds must be strictly increasing; they are copied.
// Re-requesting an existing histogram ignores the bounds argument.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q bounds not increasing", name))
			}
		}
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Value looks up a counter or gauge by name and returns its value.
func (r *Registry) Value(name string) (float64, bool) {
	if c, ok := r.counters[name]; ok {
		return float64(c.v), true
	}
	if g, ok := r.gauges[name]; ok {
		return g.v, true
	}
	return 0, false
}

// CounterValue returns the named counter's value, or 0 if absent.
func (r *Registry) CounterValue(name string) int64 {
	if c, ok := r.counters[name]; ok {
		return c.v
	}
	return 0
}

// CounterNames, GaugeNames, and HistogramNames return the registered names
// in sorted order, so every export is deterministic.
func (r *Registry) CounterNames() []string   { return sortedKeys(r.counters) }
func (r *Registry) GaugeNames() []string     { return sortedKeys(r.gauges) }
func (r *Registry) HistogramNames() []string { return sortedKeys(r.hists) }

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
