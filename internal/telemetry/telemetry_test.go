package telemetry

import (
	"strings"
	"testing"

	"rshuffle/internal/sim"
)

func TestRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant(sim.Time(i), EvWire, 0, 0, int64(i), 0)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events returned %d, want 4", len(evs))
	}
	// Oldest-first: the ring retains events 6..9.
	for i, e := range evs {
		want := int64(6 + i)
		if e.A != want || e.Seq != uint64(want) {
			t.Fatalf("event %d: A=%d Seq=%d, want %d", i, e.A, e.Seq, want)
		}
	}
}

func TestNilAndEmptyTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Instant(0, EvWire, 0, 0, 0, 0)
	tr.Begin(0, EvWR, 0, 0, 0, 0)
	tr.End(0, EvWR, 0, 0, 0, 0)
	if tr.Enabled() || tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be a disabled no-op")
	}
	var zero Tracer
	zero.Instant(0, EvWire, 0, 0, 0, 0)
	if zero.Enabled() || zero.Len() != 0 {
		t.Fatal("zero-value tracer must be a disabled no-op")
	}
}

func TestTracerNoAllocations(t *testing.T) {
	// The hot-path guarantee: emitting is allocation-free both when tracing
	// is disabled (nil tracer) and when it is enabled (preallocated ring).
	var nilTr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		nilTr.Instant(1, EvWire, 2, 3, 4, 5)
	}); n != 0 {
		t.Fatalf("nil tracer allocates %v per emit, want 0", n)
	}
	tr := NewTracer(64)
	if n := testing.AllocsPerRun(1000, func() {
		tr.Instant(1, EvWire, 2, 3, 4, 5)
		tr.Begin(1, EvWR, 2, 3, 4, 5)
		tr.End(2, EvWR, 2, 3, 4, 5)
	}); n != 0 {
		t.Fatalf("enabled tracer allocates %v per emit, want 0", n)
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := NewTracer(16)
	tr.Begin(1500, EvWR, 3, 77, 42, int64(1))
	tr.Instant(1750, EvQPCacheMiss, 3, 77, 0, 0)
	tr.End(2500, EvWR, 3, 77, 42, 0)

	var b strings.Builder
	if err := WriteChromeTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"displayTimeUnit":"ns"`,
		`"name":"wr","cat":"wr","ph":"b","id":"77.42","ts":1.500,"pid":3,"tid":77`,
		`"name":"qp_cache_miss","cat":"qp_cache_miss","ph":"i","s":"t","ts":1.750`,
		`"ph":"e","id":"77.42","ts":2.500`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q in:\n%s", want, out)
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	mk := func() string {
		tr := NewTracer(8)
		for i := 0; i < 20; i++ { // wraps the ring
			tr.Instant(sim.Time(i*100), EvWire, int32(i%4), uint64(i), int64(i), 0)
		}
		var b strings.Builder
		if err := WriteChromeTrace(&b, tr); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if mk() != mk() {
		t.Fatal("same event sequence produced different trace bytes")
	}
}

func TestEvStrings(t *testing.T) {
	for e := EvNone; e < evMax; e++ {
		if e.String() == "" || e.String() == "unknown" {
			t.Fatalf("event %d has no name", e)
		}
	}
	if Ev(200).String() != "unknown" {
		t.Fatal("out-of-range Ev must stringify as unknown")
	}
}
