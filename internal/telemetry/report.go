package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// WriteReport renders every metric of the registry as aligned plain text,
// sorted by name: counters first, then gauges, then histograms with their
// bucket breakdowns. Output is deterministic.
func WriteReport(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	width := 0
	for _, n := range r.CounterNames() {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range r.GaugeNames() {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, name := range r.CounterNames() {
		fmt.Fprintf(bw, "%-*s %15d\n", width+2, name, r.counters[name].Value())
	}
	for _, name := range r.GaugeNames() {
		fmt.Fprintf(bw, "%-*s %15.3f\n", width+2, name, r.gauges[name].Value())
	}
	for _, name := range r.HistogramNames() {
		h := r.hists[name]
		fmt.Fprintf(bw, "%s  n=%d mean=%.1f\n", name, h.Count(), h.Mean())
		lo := "-inf"
		for i, b := range h.bounds {
			if h.counts[i] > 0 {
				fmt.Fprintf(bw, "  (%s, %d]: %d\n", lo, b, h.counts[i])
			}
			lo = fmt.Sprint(b)
		}
		if over := h.counts[len(h.bounds)]; over > 0 {
			fmt.Fprintf(bw, "  (%s, +inf): %d\n", lo, over)
		}
	}
	return bw.Flush()
}

// WriteCSV renders counters and gauges as "kind,name,value" rows and
// histogram buckets as "hist,name,upper_bound,count" rows, sorted by name.
func WriteCSV(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	for _, name := range r.CounterNames() {
		fmt.Fprintf(bw, "counter,%s,%d\n", name, r.counters[name].Value())
	}
	for _, name := range r.GaugeNames() {
		fmt.Fprintf(bw, "gauge,%s,%g\n", name, r.gauges[name].Value())
	}
	for _, name := range r.HistogramNames() {
		h := r.hists[name]
		for i, b := range h.bounds {
			fmt.Fprintf(bw, "hist,%s,%d,%d\n", name, b, h.counts[i])
		}
		fmt.Fprintf(bw, "hist,%s,inf,%d\n", name, h.counts[len(h.bounds)])
	}
	return bw.Flush()
}
