// Package telemetry provides the observability layer of the shuffle stack:
// a deterministic virtual-time event tracer and a metrics registry, with
// exporters for Chrome trace-event JSON and plain-text/CSV reports.
//
// The tracer records spans (work-request post → completion, phases) and
// instant events (message on the wire, QP cache misses, retries, credit
// write-backs, failure-detector suspicions) into a fixed-capacity ring
// buffer of value-typed events. Because the simulator is deterministic,
// two same-seed runs emit byte-identical exported traces, which makes the
// trace itself a regression oracle.
//
// Cost discipline: a nil *Tracer is a valid, disabled tracer — every method
// is a nil-safe no-op — and an enabled tracer writes events in place into a
// preallocated ring, so neither state allocates on the send/receive hot
// path (verified by allocation tests).
package telemetry

import "rshuffle/internal/sim"

// Ev names one trace event type. The set is closed and interned so that
// emitting an event never allocates.
type Ev uint8

const (
	// EvNone is the zero value; it is never emitted.
	EvNone Ev = iota
	// EvWR spans a send-side work request from post to completion.
	// A = work-request id, B = opcode on begin / completion status on end.
	EvWR
	// EvWire marks the instant a message is fully serialized onto the
	// sender uplink. A = wire bytes, B = 1 for the control lane, 0 for data.
	EvWire
	// EvDrop marks a message lost on the wire (injected loss or crash).
	EvDrop
	// EvQPCacheMiss marks a work request touching a Queue Pair whose state
	// had to be fetched across PCIe.
	EvQPCacheMiss
	// EvQPCacheEvict marks a QP state evicted from the NIC cache; A = the
	// evicted QP key.
	EvQPCacheEvict
	// EvRNRRetry marks an RC send NAKed because no receive was posted.
	EvRNRRetry
	// EvTransportRetry marks an RC packet retransmitted after a loss;
	// A = attempt number.
	EvTransportRetry
	// EvQPError marks a Queue Pair transitioning to the Error state;
	// A = the triggering completion status.
	EvQPError
	// EvPeerDown marks a connection-manager disconnect event; A = the peer.
	EvPeerDown
	// EvCQPoll marks a completion-queue poll that returned entries; A = count.
	EvCQPoll
	// EvCredit marks a flow-control write-back (credit word, FreeArr/slot
	// grant); A = the peer, B = the value written.
	EvCredit
	// EvDrainPeer and EvClosePeer bracket membership-aware endpoint
	// teardown after a failure-detector verdict; A = the dead peer.
	EvDrainPeer
	EvClosePeer
	// EvFDTick marks one heartbeat-detector round; A = suspicion events
	// accumulated before the round.
	EvFDTick
	// EvSuspect marks a node declaring a peer dead; A = the suspect.
	EvSuspect
	// EvPhase spans a named run phase (setup, stream); A = phase id.
	EvPhase
	evMax
)

var evNames = [evMax]string{
	EvNone:           "none",
	EvWR:             "wr",
	EvWire:           "wire",
	EvDrop:           "drop",
	EvQPCacheMiss:    "qp_cache_miss",
	EvQPCacheEvict:   "qp_cache_evict",
	EvRNRRetry:       "rnr_retry",
	EvTransportRetry: "transport_retry",
	EvQPError:        "qp_error",
	EvPeerDown:       "peer_down",
	EvCQPoll:         "cq_poll",
	EvCredit:         "credit",
	EvDrainPeer:      "drain_peer",
	EvClosePeer:      "close_peer",
	EvFDTick:         "fd_tick",
	EvSuspect:        "suspect",
	EvPhase:          "phase",
}

func (e Ev) String() string {
	if int(e) < len(evNames) {
		return evNames[e]
	}
	return "unknown"
}

// Kind distinguishes span boundaries from instant events.
type Kind uint8

const (
	// KInstant is a point event.
	KInstant Kind = iota
	// KBegin and KEnd bracket a span; they pair on (Name, Node, QP, A).
	KBegin
	KEnd
)

// Event is one recorded trace event. It is a plain value: recording one is
// a struct store into the ring, never an allocation.
type Event struct {
	// At is the virtual-time instant of the event.
	At sim.Time
	// Seq is the emission sequence number (global, starting at 0). Events
	// at equal virtual instants are ordered by Seq, which the deterministic
	// scheduler makes reproducible.
	Seq uint64
	// Name identifies the event type.
	Name Ev
	// Kind is instant, span begin, or span end.
	Kind Kind
	// Node is the fabric node the event belongs to (-1 when cluster-wide).
	Node int32
	// QP is the cluster-unique Queue Pair key involved, or 0.
	QP uint64
	// A and B carry event-specific arguments (see the Ev constants).
	A, B int64
}

// Tracer is a fixed-capacity ring buffer of trace events. The zero value
// and the nil pointer are both valid, disabled tracers. Create an enabled
// one with NewTracer.
type Tracer struct {
	buf []Event
	n   uint64 // total events emitted; buf[i%cap] holds event i
}

// NewTracer returns an enabled tracer holding at most capacity events;
// older events are overwritten once the ring wraps. Capacity is clamped to
// at least 1.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Enabled reports whether events will be recorded.
func (t *Tracer) Enabled() bool { return t != nil && len(t.buf) > 0 }

func (t *Tracer) emit(at sim.Time, name Ev, kind Kind, node int32, qp uint64, a, b int64) {
	if t == nil || len(t.buf) == 0 {
		return
	}
	t.buf[t.n%uint64(len(t.buf))] = Event{
		At: at, Seq: t.n, Name: name, Kind: kind, Node: node, QP: qp, A: a, B: b,
	}
	t.n++
}

// Instant records a point event at virtual instant at.
func (t *Tracer) Instant(at sim.Time, name Ev, node int32, qp uint64, a, b int64) {
	t.emit(at, name, KInstant, node, qp, a, b)
}

// Begin records the start of a span identified by (name, node, qp, a).
func (t *Tracer) Begin(at sim.Time, name Ev, node int32, qp uint64, a, b int64) {
	t.emit(at, name, KBegin, node, qp, a, b)
}

// End records the end of the span identified by (name, node, qp, a).
func (t *Tracer) End(at sim.Time, name Ev, node int32, qp uint64, a, b int64) {
	t.emit(at, name, KEnd, node, qp, a, b)
}

// Len returns the number of events currently held (at most the capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten after the ring wrapped.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events oldest-first. The slice is a copy; the
// tracer may keep recording afterwards.
func (t *Tracer) Events() []Event {
	n := t.Len()
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := t.n - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, t.buf[(start+i)%uint64(len(t.buf))])
	}
	return out
}
