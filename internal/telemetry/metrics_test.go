package telemetry

import (
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{0, 10, 11, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // (-inf,10], (10,100], (100,1000], overflow
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+10+11+100+101+1000+1001+5000 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	// Re-requesting ignores the bounds argument and returns the same handle.
	if r.Histogram("lat", []int64{1}) != h {
		t.Fatal("Histogram must be get-or-create")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds must panic")
		}
	}()
	NewRegistry().Histogram("bad", []int64{10, 10})
}

func TestCountersGaugesAndLookup(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if r.CounterValue("x") != 5 {
		t.Fatalf("counter = %d, want 5", r.CounterValue("x"))
	}
	if r.CounterValue("absent") != 0 {
		t.Fatal("absent counter must read 0")
	}
	g := r.Gauge("y")
	g.Set(2)
	g.SetMax(1) // no-op
	g.SetMax(7)
	if v, ok := r.Value("y"); !ok || v != 7 {
		t.Fatalf("gauge = %v, %v", v, ok)
	}
	if _, ok := r.Value("absent"); ok {
		t.Fatal("absent lookup must fail")
	}
}

func TestExportsSortedAndDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		// Insert in non-sorted order.
		r.Counter("b.count").Add(2)
		r.Counter("a.count").Add(1)
		r.Gauge("z.g").Set(1.5)
		r.Gauge("m.g").Set(0.5)
		h := r.Histogram("h.lat", []int64{1, 2})
		h.Observe(0)
		h.Observe(3)
		return r
	}
	var t1, t2, c1 strings.Builder
	if err := WriteReport(&t1, mk()); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(&t2, mk()); err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Fatal("report export not deterministic")
	}
	if a, b := strings.Index(t1.String(), "a.count"), strings.Index(t1.String(), "b.count"); a > b {
		t.Fatal("counters not sorted by name")
	}
	if err := WriteCSV(&c1, mk()); err != nil {
		t.Fatal(err)
	}
	csv := c1.String()
	for _, want := range []string{
		"counter,a.count,1\n",
		"counter,b.count,2\n",
		"gauge,m.g,0.5\n",
		"hist,h.lat,1,1\n",
		"hist,h.lat,inf,1\n",
	} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q in:\n%s", want, csv)
		}
	}
}
