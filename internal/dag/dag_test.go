package dag

import (
	"bytes"
	"testing"
	"time"

	"rshuffle/internal/cluster"
	"rshuffle/internal/engine"
	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/telemetry"
)

// quiet removes the UD reordering jitter so cross-algorithm comparisons
// are not perturbed by datagram arrival order.
func quiet(p fabric.Profile) fabric.Profile {
	p.UDReorderProb = 0
	return p
}

// defaultFactory is the suite's default transport: MEMQ/SR.
func defaultFactory(threads int) cluster.ProviderFactory {
	return cluster.RDMAProvider(shuffle.Config{Impl: shuffle.MQSR, Endpoints: threads})
}

// seqTables builds one table per node with sequential keys 0..rows-1 and
// the row index as value.
func seqTables(n, rows int) []*engine.Table {
	ts := make([]*engine.Table, n)
	for a := 0; a < n; a++ {
		t := engine.NewTable(engine.NewSchema(engine.TInt64, engine.TInt64))
		w := engine.NewWriter(t)
		for i := 0; i < rows; i++ {
			w.SetInt64(0, int64(i))
			w.SetInt64(1, int64(a*rows+i))
			w.Done()
		}
		ts[a] = t
	}
	return ts
}

func scanStage(g *Graph, name string, tables []*engine.Table) *Stage {
	return g.AddStage(Stage{
		Name: name,
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.Scan{T: tables[node]}
		},
	})
}

func passStage(g *Graph, name string, par int, stateful bool) *Stage {
	return g.AddStage(Stage{
		Name: name, Parallelism: par, Stateful: stateful,
		Build: func(node int, in []engine.Operator) engine.Operator {
			return in[0]
		},
	})
}

// TestDetectEdgeTypeGolden pins the full detection matrix: parallelism ×
// statefulness × key requirement × replication, including the
// same-parallelism operator-chaining case.
func TestDetectEdgeTypeGolden(t *testing.T) {
	cases := []struct {
		upPar, downPar              int
		stateful, keyed, replicated bool
		want                        EdgeType
	}{
		// Replication dominates everything, including keys and equal
		// parallelism: a replicated join build side broadcasts.
		{4, 4, true, true, true, Broadcast},
		{4, 1, false, false, true, Broadcast},
		{2, 8, true, false, true, Broadcast},
		// Stateful + keyed repartitions by key, regardless of parallelism.
		{4, 4, true, true, false, Hash},
		{4, 1, true, true, false, Hash},
		{1, 4, true, true, false, Hash},
		// Equal parallelism with no redistribution requirement chains the
		// operators (forward), even when one side is stateful or a key is
		// present but the consumer keeps no keyed state.
		{4, 4, false, false, false, Forward},
		{4, 4, true, false, false, Forward},
		{4, 4, false, true, false, Forward},
		{1, 1, false, false, false, Forward},
		// Parallelism changes without a keyed consumer rebalance.
		{4, 2, false, false, false, Rebalance},
		{2, 4, false, false, false, Rebalance},
		{4, 1, false, true, false, Rebalance},
		{4, 2, true, false, false, Rebalance},
	}
	for _, c := range cases {
		got := DetectEdgeType(c.upPar, c.downPar, c.stateful, c.keyed, c.replicated)
		if got != c.want {
			t.Errorf("DetectEdgeType(%d, %d, stateful=%v, keyed=%v, replicated=%v) = %v, want %v",
				c.upPar, c.downPar, c.stateful, c.keyed, c.replicated, got, c.want)
		}
	}
}

// TestGraphValidation pins the construction-time panics: fan-out from one
// stage, cycles, and keyless hash edges are programming errors.
func TestGraphValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	build := func(node int, in []engine.Operator) engine.Operator { return in[0] }
	expectPanic("fan-out", func() {
		g := New()
		a := g.AddStage(Stage{Name: "a", Build: build})
		b := g.AddStage(Stage{Name: "b", Build: build})
		c := g.AddStage(Stage{Name: "c", Build: build})
		g.Connect(a, b)
		g.Connect(a, c)
	})
	expectPanic("cycle", func() {
		g := New()
		a := g.AddStage(Stage{Name: "a", Build: build})
		b := g.AddStage(Stage{Name: "b", Build: build})
		g.Connect(a, b)
		g.Connect(b, a)
	})
	expectPanic("hash-without-key", func() {
		g := New()
		a := g.AddStage(Stage{Name: "a", Build: build})
		b := g.AddStage(Stage{Name: "b", Build: build})
		g.Connect(a, b, WithType(Hash))
	})
	expectPanic("duplicate-name", func() {
		g := New()
		g.AddStage(Stage{Name: "a", Build: build})
		g.AddStage(Stage{Name: "a", Build: build})
	})
}

// TestForwardChaining runs a two-stage plan whose stages have equal
// parallelism: the edge must be detected as Forward, chain the fragments
// with no network traffic, and still meter the rows that crossed it.
func TestForwardChaining(t *testing.T) {
	const nodes, rows = 4, 3000
	tables := seqTables(nodes, rows)
	g := New()
	src := scanStage(g, "scan", tables)
	flt := g.AddStage(Stage{
		Name: "filter",
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.Filter{In: in[0], Pred: func(b *engine.Batch, i int) bool {
				return b.Int64(i, 0)%2 == 0
			}}
		},
	})
	e := g.Connect(src, flt)
	if e.Type != Forward {
		t.Fatalf("edge type = %v, want Forward", e.Type)
	}

	c := cluster.New(quiet(fabric.EDR()), nodes, 2, 42)
	res := g.Run(c, defaultFactory(2))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	st := res.EdgeByID("scan->filter")
	if st == nil {
		t.Fatal("no stats for scan->filter")
	}
	if st.Rows != nodes*rows {
		t.Errorf("forward edge rows = %d, want %d", st.Rows, nodes*rows)
	}
	if st.WRs != 0 {
		t.Errorf("forward edge posted %d WRs, want 0", st.WRs)
	}
	if want := int64(nodes * rows / 2); res.Rows != want {
		t.Errorf("result rows = %d, want %d", res.Rows, want)
	}
}

// TestRebalanceSpread checks that a parallelism-reducing stateless edge
// round-robins: only the downstream tasks receive rows, and the spread
// between them is bounded by the sender count.
func TestRebalanceSpread(t *testing.T) {
	const nodes, rows = 4, 2500
	tables := seqTables(nodes, rows)
	g := New()
	src := scanStage(g, "scan", tables)
	dst := passStage(g, "collect", 2, false)
	e := g.Connect(src, dst)
	if e.Type != Rebalance {
		t.Fatalf("edge type = %v, want Rebalance", e.Type)
	}

	c := cluster.New(quiet(fabric.EDR()), nodes, 2, 42)
	res := g.Run(c, defaultFactory(2))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	st := res.EdgeByID("scan->collect")
	if st.Rows != nodes*rows {
		t.Fatalf("edge rows = %d, want %d", st.Rows, nodes*rows)
	}
	if st.RowsPerNode[2] != 0 || st.RowsPerNode[3] != 0 {
		t.Errorf("tasks beyond parallelism received rows: %v", st.RowsPerNode)
	}
	diff := st.RowsPerNode[0] - st.RowsPerNode[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > nodes {
		t.Errorf("rebalance spread %v differs by %d, want <= %d (one per sender)",
			st.RowsPerNode[:2], diff, nodes)
	}
}

// TestRangePartition forces a Range edge and checks every receiving task
// sees only keys within its split range.
func TestRangePartition(t *testing.T) {
	const nodes, rows = 4, 1000 // keys 0..999 on every node
	tables := seqTables(nodes, rows)
	violations := make([]int64, nodes)
	g := New()
	src := scanStage(g, "scan", tables)
	chk := g.AddStage(Stage{
		Name: "check",
		Build: func(node int, in []engine.Operator) engine.Operator {
			lo := int64(node) * 250
			hi := lo + 249
			return &engine.Filter{In: in[0], Pred: func(b *engine.Batch, i int) bool {
				if k := b.Int64(i, 0); k < lo || k > hi {
					violations[node]++
				}
				return true
			}}
		},
	})
	g.Connect(src, chk, WithRange(0, []int64{249, 499, 749}))

	c := cluster.New(quiet(fabric.EDR()), nodes, 2, 42)
	res := g.Run(c, defaultFactory(2))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	st := res.EdgeByID("scan->check")
	for node, got := range st.RowsPerNode {
		if got != 250*nodes {
			t.Errorf("node %d received %d rows, want %d", node, got, 250*nodes)
		}
		if violations[node] != 0 {
			t.Errorf("node %d saw %d out-of-range keys", node, violations[node])
		}
	}
}

// TestBroadcastReplicates checks a replicated edge delivers the full input
// to every task.
func TestBroadcastReplicates(t *testing.T) {
	const nodes, rows = 4, 1500
	tables := seqTables(nodes, rows)
	g := New()
	src := scanStage(g, "scan", tables)
	all := passStage(g, "all", 0, true)
	e := g.Connect(src, all, WithReplicated())
	if e.Type != Broadcast {
		t.Fatalf("edge type = %v, want Broadcast", e.Type)
	}

	c := cluster.New(quiet(fabric.EDR()), nodes, 2, 42)
	res := g.Run(c, defaultFactory(2))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	st := res.EdgeByID("scan->all")
	for node, got := range st.RowsPerNode {
		if got != nodes*rows {
			t.Errorf("node %d received %d rows, want full copy %d", node, got, nodes*rows)
		}
	}
	if st.WRs == 0 {
		t.Error("broadcast edge reported zero WQEs")
	}
}

// demoRun executes the multi-stage demo once and returns the result.
func demoRun(t *testing.T, factory cluster.ProviderFactory, tweak func(*Graph)) *Result {
	t.Helper()
	const nodes, threads = 4, 2
	fact, dim := DemoTables(nodes, 2000, 250, 7)
	g := MultiStageDemo(fact, dim)
	if tweak != nil {
		tweak(g)
	}
	c := cluster.New(quiet(fabric.EDR()), nodes, threads, 42)
	res := g.Run(c, factory)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

// TestMultiStageAllAlgorithms runs the partial-agg → hash → join →
// broadcast plan under all six Table 1 designs: every run must succeed,
// produce the identical global summary row, and move the same rows and
// bytes across every edge; the per-edge counters must land in the metrics
// registry.
func TestMultiStageAllAlgorithms(t *testing.T) {
	var refResult []byte
	var refRows [3]int64
	for i, alg := range shuffle.Algorithms {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			res := demoRun(t, cluster.RDMAProvider(alg.Config(2)), nil)
			if res.Result == nil || res.Result.N != 1 {
				t.Fatalf("terminal result = %+v, want exactly one summary row", res.Result)
			}
			if res.Rows != 4 {
				t.Errorf("terminal rows = %d, want one replica per node", res.Rows)
			}
			// The summed fact values are an end-to-end checksum: every fact
			// row's val must flow through partial agg, merge, and join
			// exactly once. Per node: sum 0..1999 = 1999000; four nodes.
			sumVal := engine.RowFloat64(res.Result.Sch, res.Result.Row(0), 1)
			if sumVal != 4*1999000 {
				t.Errorf("sum(val) = %v, want %v", sumVal, 4*1999000)
			}
			if len(res.Edges) != 3 {
				t.Fatalf("edge count = %d, want 3", len(res.Edges))
			}
			if i == 0 {
				refResult = append([]byte(nil), res.Result.Data...)
				for j := range res.Edges {
					refRows[j] = res.Edges[j].Rows
				}
			} else {
				if !bytes.Equal(res.Result.Data, refResult) {
					t.Errorf("result bytes differ from %s", shuffle.Algorithms[0].Name)
				}
				for j := range res.Edges {
					if res.Edges[j].Rows != refRows[j] {
						t.Errorf("edge %s rows = %d, want %d (as under %s)",
							res.Edges[j].Edge, res.Edges[j].Rows, refRows[j], shuffle.Algorithms[0].Name)
					}
				}
			}
			reg := telemetry.NewRegistry()
			res.PublishMetrics(reg)
			for _, e := range res.Edges {
				if got := reg.CounterValue("dag.edge_rows." + e.Edge); got != e.Rows {
					t.Errorf("registry dag.edge_rows.%s = %d, want %d", e.Edge, got, e.Rows)
				}
				if got := reg.CounterValue("dag.edge_bytes." + e.Edge); got != e.Bytes {
					t.Errorf("registry dag.edge_bytes.%s = %d, want %d", e.Edge, got, e.Bytes)
				}
			}
		})
	}
}

// TestMixedTransportsPerEdge pins per-edge algorithm selection: one query
// whose three edges run RC send/receive, UD send/receive, and one-sided RC
// read side by side must match the single-transport result.
func TestMixedTransportsPerEdge(t *testing.T) {
	base := demoRun(t, defaultFactory(2), nil)
	mixed := demoRun(t, defaultFactory(2), func(g *Graph) {
		es := g.Edges()
		es[0].SetAlgorithm(shuffle.Algorithm{Name: "MEMQ/SR", Impl: shuffle.MQSR, ME: true}, 2)
		es[1].SetAlgorithm(shuffle.Algorithm{Name: "MESQ/SR", Impl: shuffle.SQSR, ME: true}, 2)
		es[2].SetAlgorithm(shuffle.Algorithm{Name: "SEMQ/RD", Impl: shuffle.MQRD, ME: false}, 2)
	})
	if !bytes.Equal(base.Result.Data, mixed.Result.Data) {
		t.Error("mixed-transport result differs from single-transport result")
	}
	for i := range base.Edges {
		if base.Edges[i].Rows != mixed.Edges[i].Rows {
			t.Errorf("edge %s rows %d != %d", base.Edges[i].Edge, mixed.Edges[i].Rows, base.Edges[i].Rows)
		}
	}
}

// TestSameSeedDeterminism runs the multi-stage plan twice with one seed:
// the exported telemetry traces and the per-edge registry metrics must be
// byte-identical — the repo's strongest reproducibility oracle, extended
// to the DAG path.
func TestSameSeedDeterminism(t *testing.T) {
	run := func() (trace, report []byte) {
		const nodes, threads = 4, 2
		fact, dim := DemoTables(nodes, 2000, 250, 7)
		g := MultiStageDemo(fact, dim)
		c := cluster.New(quiet(fabric.EDR()), nodes, threads, 42)
		tr := c.EnableTracing(1 << 15)
		res := g.Run(c, defaultFactory(threads))
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		var tb, rb bytes.Buffer
		if err := telemetry.WriteChromeTrace(&tb, tr); err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		res.PublishMetrics(reg)
		if err := telemetry.WriteReport(&rb, reg); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), rb.Bytes()
	}
	t1, r1 := run()
	t2, r2 := run()
	if !bytes.Equal(t1, t2) {
		t.Error("same-seed telemetry traces differ")
	}
	if !bytes.Equal(r1, r2) {
		t.Error("same-seed per-edge metric reports differ")
	}
	if len(r1) == 0 {
		t.Error("empty metrics report")
	}
}

// TestStageSpans checks the tracer records one EvStage span per
// sink-owning stage (forward-source stages share the downstream span).
func TestStageSpans(t *testing.T) {
	const nodes, rows = 2, 500
	tables := seqTables(nodes, rows)
	g := New()
	src := scanStage(g, "scan", tables)
	flt := passStage(g, "filter", 0, false)
	agg := g.AddStage(Stage{
		Name: "agg", Parallelism: 1, Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.HashAgg{In: in[0], KeyCols: []int{0},
				Aggs: []engine.AggSpec{{Kind: engine.AggCount}}}
		},
	})
	g.Connect(src, flt) // forward: no span of its own
	g.Connect(flt, agg, WithKey(0))

	c := cluster.New(quiet(fabric.EDR()), nodes, 2, 42)
	tr := c.EnableTracing(1 << 14)
	res := g.Run(c, defaultFactory(2))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	begins := map[int64]bool{}
	ends := map[int64]bool{}
	for _, ev := range tr.Events() {
		if ev.Name != telemetry.EvStage {
			continue
		}
		switch ev.Kind {
		case telemetry.KBegin:
			begins[ev.A] = true
		case telemetry.KEnd:
			ends[ev.A] = true
		}
	}
	// Stage ids: scan=0 (forward source, no span), filter=1, agg=2.
	for _, id := range []int64{int64(flt.ID()), int64(agg.ID())} {
		if !begins[id] || !ends[id] {
			t.Errorf("stage %d missing span (begin=%v end=%v)", id, begins[id], ends[id])
		}
	}
	if begins[int64(src.ID())] {
		t.Error("forward-source stage emitted its own span")
	}
}

// TestDagChaosSmoke drives the multi-stage plan through the rc-outage
// chaos fault: attempt 0 loses every RC packet into node 1 until the
// transport errors out, and the restart on a clean cluster must succeed.
func TestDagChaosSmoke(t *testing.T) {
	const nodes, threads = 4, 2
	fact, dim := DemoTables(nodes, 800, 100, 7)
	cfg := shuffle.Config{Impl: shuffle.MQSR, Endpoints: threads,
		DepletedTimeout: 10 * time.Millisecond, StallTimeout: 120 * time.Millisecond}
	res, restarts, err := RunWithRestart(func(attempt int) (*cluster.Cluster, *Graph, cluster.ProviderFactory) {
		c := cluster.New(quiet(fabric.EDR()), nodes, threads, 42)
		if attempt == 0 {
			c.Net.Faults().Add(fabric.FaultRule{
				Class: fabric.FaultRCLoss, From: fabric.AnyNode, To: 1, Rate: 1,
			})
		}
		g := MultiStageDemo(fact, dim)
		return c, g, cluster.RDMAProvider(cfg)
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if restarts < 1 {
		t.Errorf("restarts = %d, want at least one (attempt 0 runs under total RC loss)", restarts)
	}
	if res.Result == nil || res.Result.N != 1 {
		t.Fatalf("final attempt produced no summary row")
	}
	sumVal := engine.RowFloat64(res.Result.Sch, res.Result.Row(0), 1)
	if want := float64(nodes) * 799 * 800 / 2; sumVal != want {
		t.Errorf("sum(val) = %v, want %v", sumVal, want)
	}
}
