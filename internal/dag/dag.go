// Package dag provides a shuffle-aware DAG execution graph on top of the
// engine operators and the shuffle transport: operators as stages, typed
// shuffle edges (forward / hash / broadcast / rebalance / range) with
// automatic edge-type detection from stage parallelism and key
// requirements, N×M task wiring that instantiates one communication
// provider per edge (so every edge can run a different Table 1 design,
// mixing RC and UD transports within one query), and a pipelined stage
// scheduler over a simulated cluster.
//
// A Graph is a set of stages connected by edges. Each stage expands into
// one task per cluster node; its Build callback constructs the node's
// fragment root from the inbound edges' operators. Forward edges chain the
// upstream fragment directly into the downstream one (no network); every
// other edge type becomes a SHUFFLE/RECEIVE operator pair over its own
// endpoint provider, with transmission groups derived from the downstream
// stage's parallelism. A stage with parallelism 1 therefore gathers, one
// with full parallelism repartitions or broadcasts — the hand-wired
// exchange patterns of the TPC-H drivers fall out as special cases.
package dag

import (
	"fmt"
	"sort"

	"rshuffle/internal/engine"
	"rshuffle/internal/shuffle"
)

// EdgeType classifies how data moves between two stages.
type EdgeType int

const (
	// Forward chains two stages of equal parallelism: task i's output
	// feeds task i's downstream fragment directly, with no network hop.
	Forward EdgeType = iota
	// Hash partitions rows by a key column so equal keys meet on the same
	// downstream task.
	Hash
	// Broadcast replicates every row to all downstream tasks.
	Broadcast
	// Rebalance spreads rows round-robin across downstream tasks,
	// ignoring keys.
	Rebalance
	// Range partitions rows by comparing a key column against ordered
	// split points (never auto-detected; request it with WithRange).
	Range
)

func (t EdgeType) String() string {
	switch t {
	case Forward:
		return "forward"
	case Hash:
		return "hash"
	case Broadcast:
		return "broadcast"
	case Rebalance:
		return "rebalance"
	case Range:
		return "range"
	}
	return fmt.Sprintf("EdgeType(%d)", int(t))
}

// DetectEdgeType derives an edge's shuffle type from the two stages'
// parallelism and the downstream stage's data requirements, following the
// detection matrix of shuffle-aware streaming planners:
//
//	replicated (downstream needs a full copy)        → Broadcast
//	stateful downstream with a partition key          → Hash
//	equal parallelism, no redistribution requirement  → Forward (chaining)
//	otherwise (parallelism change, stateless)         → Rebalance
//
// Range is never detected automatically: split points cannot be inferred
// from the operator shape.
func DetectEdgeType(upPar, downPar int, stateful, keyed, replicated bool) EdgeType {
	switch {
	case replicated:
		return Broadcast
	case stateful && keyed:
		return Hash
	case upPar == downPar:
		return Forward
	default:
		return Rebalance
	}
}

// Stage is one logical operator of the execution graph. It expands into
// one task per cluster node at run time.
type Stage struct {
	// Name labels the stage in metrics, trace spans, and errors; it must
	// be unique within the graph.
	Name string
	// Parallelism is the number of cluster nodes that hold this stage's
	// data partitions; 0 (or anything above the cluster size) means the
	// full cluster. Inbound edges address tasks 0..Parallelism-1, so a
	// stage with Parallelism 1 gathers its input on node 0. Fragments
	// still run on every cluster node — tasks outside the parallelism
	// receive no rows but drain end-of-stream like any other receiver.
	Parallelism int
	// Stateful marks stages whose state is partitioned by key (hash join
	// builds, keyed aggregations, sorts); together with an edge key it
	// triggers Hash detection.
	Stateful bool
	// Build constructs the stage's fragment root for one cluster node.
	// in holds one operator per inbound edge, in Connect order: the
	// upstream fragment root itself for Forward edges, a RECEIVE leaf for
	// every other type. Build must return an equivalent operator shape
	// (same schema) on every node.
	Build func(node int, in []engine.Operator) engine.Operator

	id  int
	g   *Graph
	in  []*Edge
	out *Edge
}

// ID returns the stage's index within its graph (also the A argument of
// its EvStage trace span).
func (s *Stage) ID() int { return s.id }

// Edge is one typed data movement between two stages.
type Edge struct {
	From, To *Stage
	Type     EdgeType
	// Key is the partition key column in the upstream output schema
	// (Hash and Range edges; -1 otherwise).
	Key int
	// Bounds are the Range split points: rows with key <= Bounds[i] go to
	// task i, the remainder to the last task.
	Bounds []int64

	// forced marks an explicitly requested type (skips detection).
	forced bool
	// replicated marks a WithReplicated requirement (detection input).
	replicated bool
	// cfg is the per-edge transport override; nil inherits the runner's
	// default provider factory.
	cfg *shuffle.Config

	stats EdgeStats
}

// ID returns the edge's metric identifier, "<from>-><to>".
func (e *Edge) ID() string { return e.From.Name + "->" + e.To.Name }

// SetConfig pins this edge to a specific endpoint configuration (one of
// the Table 1 designs), overriding the run's default transport. Mixing
// configurations across the edges of one graph runs RC and UD transports
// side by side within a single query.
func (e *Edge) SetConfig(cfg shuffle.Config) *Edge {
	c := cfg.Defaulted()
	e.cfg = &c
	return e
}

// SetAlgorithm is SetConfig for one of the paper's named designs,
// materialized for the given worker thread count.
func (e *Edge) SetAlgorithm(a shuffle.Algorithm, threads int) *Edge {
	return e.SetConfig(a.Config(threads))
}

// EdgeOption customizes Connect.
type EdgeOption func(*Edge)

// WithKey declares the downstream stage's partition key: column col of the
// upstream output schema. Combined with a stateful downstream stage it
// makes detection choose Hash.
func WithKey(col int) EdgeOption {
	return func(e *Edge) { e.Key = col }
}

// WithReplicated declares that the downstream stage needs a full copy of
// the edge's data on every task (a replicated join build side); detection
// chooses Broadcast.
func WithReplicated() EdgeOption {
	return func(e *Edge) { e.replicated = true }
}

// WithType forces the edge type, bypassing detection.
func WithType(t EdgeType) EdgeOption {
	return func(e *Edge) { e.Type = t; e.forced = true }
}

// WithRange forces a Range edge partitioning column col against the given
// ascending split points: rows with key <= bounds[i] land on task i, the
// rest on the last task. len(bounds) must be the downstream parallelism
// minus one.
func WithRange(col int, bounds []int64) EdgeOption {
	return func(e *Edge) {
		e.Type, e.forced = Range, true
		e.Key = col
		e.Bounds = append([]int64(nil), bounds...)
	}
}

// WithConfig is the option form of SetConfig.
func WithConfig(cfg shuffle.Config) EdgeOption {
	return func(e *Edge) { e.SetConfig(cfg) }
}

// WithAlgorithm is the option form of SetAlgorithm.
func WithAlgorithm(a shuffle.Algorithm, threads int) EdgeOption {
	return func(e *Edge) { e.SetAlgorithm(a, threads) }
}

// Graph is a DAG of stages under construction. Build one with New,
// populate it with AddStage and Connect, and execute it with Run.
type Graph struct {
	stages []*Stage
	edges  []*Edge
	names  map[string]bool
}

// New returns an empty execution graph.
func New() *Graph {
	return &Graph{names: make(map[string]bool)}
}

// Stages returns the graph's stages in creation order.
func (g *Graph) Stages() []*Stage { return g.stages }

// Edges returns the graph's edges in Connect order (also the order their
// transport providers are built in).
func (g *Graph) Edges() []*Edge { return g.edges }

// AddStage adds a stage and returns its handle. Structural misuse — a
// duplicate or empty name, a nil builder — is a programming error and
// panics, mirroring the engine's constructor discipline.
func (g *Graph) AddStage(s Stage) *Stage {
	if s.Name == "" {
		panic("dag: stage needs a name")
	}
	if g.names[s.Name] {
		panic(fmt.Sprintf("dag: duplicate stage %q", s.Name))
	}
	if s.Build == nil {
		panic(fmt.Sprintf("dag: stage %q needs a Build function", s.Name))
	}
	st := &Stage{
		Name:        s.Name,
		Parallelism: s.Parallelism,
		Stateful:    s.Stateful,
		Build:       s.Build,
		id:          len(g.stages),
		g:           g,
	}
	g.stages = append(g.stages, st)
	g.names[s.Name] = true
	return st
}

// Connect adds an edge from one stage's output to another's input and
// returns it. Unless WithType/WithRange forces one, the edge type is
// detected from the stages' parallelism and the options' key requirements
// (see DetectEdgeType). Each stage feeds at most one edge — the pull-based
// fragments are drained exactly once — so plans are in-trees: joins fan
// in, nothing fans out except through Broadcast delivery.
func (g *Graph) Connect(from, to *Stage, opts ...EdgeOption) *Edge {
	if from.g != g || to.g != g {
		panic("dag: Connect across graphs")
	}
	if from == to {
		panic(fmt.Sprintf("dag: self-edge on %q", from.Name))
	}
	if from.out != nil {
		panic(fmt.Sprintf("dag: stage %q already has an outbound edge (fragments are drained once; duplicate the stage to fan out)", from.Name))
	}
	// With out-degree <= 1, any cycle must follow the out-chain from `to`
	// back into `from`.
	for s := to; s != nil; {
		if s == from {
			panic(fmt.Sprintf("dag: edge %s->%s creates a cycle", from.Name, to.Name))
		}
		if s.out == nil {
			break
		}
		s = s.out.To
	}
	e := &Edge{From: from, To: to, Key: -1}
	for _, o := range opts {
		o(e)
	}
	if !e.forced {
		e.Type = DetectEdgeType(from.Parallelism, to.Parallelism,
			to.Stateful, e.Key >= 0, e.replicated)
	}
	switch e.Type {
	case Hash:
		if e.Key < 0 {
			panic(fmt.Sprintf("dag: hash edge %s needs WithKey", e.ID()))
		}
	case Range:
		if e.Key < 0 {
			panic(fmt.Sprintf("dag: range edge %s needs a key column", e.ID()))
		}
		if !sort.SliceIsSorted(e.Bounds, func(i, j int) bool { return e.Bounds[i] < e.Bounds[j] }) {
			panic(fmt.Sprintf("dag: range edge %s bounds not ascending", e.ID()))
		}
	case Forward:
		if from.Parallelism != to.Parallelism {
			panic(fmt.Sprintf("dag: forward edge %s chains stages of unequal parallelism (%d vs %d)",
				e.ID(), from.Parallelism, to.Parallelism))
		}
	}
	from.out = e
	to.in = append(to.in, e)
	g.edges = append(g.edges, e)
	return e
}

// terminal returns the graph's single sink stage (no outbound edge).
func (g *Graph) terminal() *Stage {
	var t *Stage
	for _, s := range g.stages {
		if s.out == nil {
			if t != nil {
				panic(fmt.Sprintf("dag: two terminal stages (%q and %q); a runnable graph has exactly one sink", t.Name, s.Name))
			}
			t = s
		}
	}
	if t == nil {
		panic("dag: empty graph")
	}
	return t
}

// topo returns the stages in topological order (inputs before consumers).
// With connect-time cycle rejection the graph is always a DAG; topo only
// fixes the build order.
func (g *Graph) topo() []*Stage {
	order := make([]*Stage, 0, len(g.stages))
	done := make([]bool, len(g.stages))
	var visit func(s *Stage)
	visit = func(s *Stage) {
		if done[s.id] {
			return
		}
		done[s.id] = true
		for _, e := range s.in {
			visit(e.From)
		}
		order = append(order, s)
	}
	for _, s := range g.stages {
		visit(s)
	}
	return order
}

// par clamps a stage's parallelism to the cluster size.
func (s *Stage) par(n int) int {
	if s.Parallelism <= 0 || s.Parallelism > n {
		return n
	}
	return s.Parallelism
}

// groups returns the edge's transmission groups over a cluster of n nodes:
// one singleton group per downstream task for the partitioning types, one
// group holding every downstream task for Broadcast.
func (e *Edge) groups(n int) shuffle.Groups {
	p := e.To.par(n)
	if e.Type == Broadcast {
		return shuffle.Broadcast(p)
	}
	return shuffle.Repartition(p)
}

// keyFunc returns the partitioning function for one sending task. Hash
// uses the library's mixing hash so DAG plans partition identically to the
// hand-wired drivers; Range maps keys to the task whose bound covers them;
// Rebalance round-robins with a per-sender cursor (deterministic under the
// cooperative scheduler); Broadcast has a single group, so the constant
// zero suffices.
func (e *Edge) keyFunc(n int) func(sch *engine.Schema, row []byte) uint64 {
	switch e.Type {
	case Hash:
		return shuffle.KeyInt64Col(e.Key)
	case Range:
		bounds, last := e.Bounds, uint64(e.To.par(n)-1)
		col := e.Key
		return func(sch *engine.Schema, row []byte) uint64 {
			v := engine.RowInt64(sch, row, col)
			for i, b := range bounds {
				if v <= b {
					return uint64(i)
				}
			}
			return last
		}
	case Rebalance:
		var cursor uint64
		return func(sch *engine.Schema, row []byte) uint64 {
			cursor++
			return cursor - 1
		}
	default: // Broadcast: one group.
		return func(sch *engine.Schema, row []byte) uint64 { return 0 }
	}
}
