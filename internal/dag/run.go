package dag

import (
	"fmt"

	"rshuffle/internal/cluster"
	"rshuffle/internal/engine"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// Phase ids used in EvPhase trace spans; they mirror the cluster harness so
// DAG traces and RunBench traces read identically.
const (
	phaseSetup  = 0
	phaseStream = 1
)

// EdgeStats reports one edge's observed traffic after a run.
type EdgeStats struct {
	// Edge is the metric identifier, "<from>-><to>".
	Edge string
	// Type is the edge's (possibly detected) shuffle type.
	Type EdgeType
	// Rows and Bytes count tuples and payload bytes delivered across the
	// edge, summed over all receiving tasks (Forward edges count the rows
	// flowing through the chain).
	Rows, Bytes int64
	// WRs counts the send work requests the edge cost at the operator
	// level (zero for Forward edges, which never touch the network).
	WRs int64
	// RowsPerNode is the per-receiving-node row count; wiring tests use it
	// to check that hash edges partition, broadcast edges replicate, and
	// rebalance edges spread.
	RowsPerNode []int64
}

// Result reports one execution of a Graph.
type Result struct {
	// Elapsed is the query response time, excluding transport setup;
	// SetupTime is the transport bootstrap (all edges' providers).
	Elapsed, SetupTime sim.Duration
	// Result is node 0's retained output of the terminal stage; Rows is
	// the terminal row count summed over all nodes (equal to Result.N for
	// gathering plans, whose terminal parallelism is 1).
	Result *engine.Table
	Rows   int64
	// Edges holds per-edge traffic statistics in Connect order.
	Edges []EdgeStats
	// Err is the first transport error observed on any edge; non-nil
	// means the run failed and should restart (see RunWithRestart).
	Err error
}

// EdgeByID returns the named edge's statistics, or nil.
func (r *Result) EdgeByID(id string) *EdgeStats {
	for i := range r.Edges {
		if r.Edges[i].Edge == id {
			return &r.Edges[i]
		}
	}
	return nil
}

// PublishMetrics writes the per-edge traffic counters into a registry as
// dag.edge_rows.<id>, dag.edge_bytes.<id>, and dag.edge_wqes.<id>.
func (r *Result) PublishMetrics(reg *telemetry.Registry) {
	for i := range r.Edges {
		e := &r.Edges[i]
		reg.Counter("dag.edge_rows." + e.Edge).Add(e.Rows)
		reg.Counter("dag.edge_bytes." + e.Edge).Add(e.Bytes)
		reg.Counter("dag.edge_wqes." + e.Edge).Add(e.WRs)
	}
}

// tap is a transparent pass-through that meters a Forward edge, so chained
// stages report rows/bytes like networked ones (at zero WQE cost).
type tap struct {
	in          engine.Operator
	rows, bytes *int64
}

func (t *tap) Schema() *engine.Schema { return t.in.Schema() }
func (t *tap) Open(ctx *engine.Ctx)   { t.in.Open(ctx) }
func (t *tap) Close(p *sim.Proc)      { t.in.Close(p) }

func (t *tap) Next(p *sim.Proc, tid int) (*engine.Batch, engine.State) {
	b, st := t.in.Next(p, tid)
	if b != nil && b.N > 0 {
		*t.rows += int64(b.N)
		*t.bytes += int64(b.N) * int64(b.Sch.Width())
	}
	return b, st
}

// edgeRun is one edge's runtime state.
type edgeRun struct {
	e     *Edge
	prov  shuffle.Provider
	sends []*shuffle.Shuffle // per sending node; nil entries for Forward
	recvs []*shuffle.Receive // per receiving node; nil entries for Forward
	rows  []int64            // per-node Forward tap row counts
	bytes []int64            // per-node Forward tap byte counts
}

// Run executes the graph on a cluster: every stage expands into one task
// per node, every non-Forward edge gets its own communication provider
// (the default factory, unless the edge carries a SetConfig override), and
// all fragments stream concurrently — stages are pipelined, not phased.
// Run owns the cluster's simulation and recycles it; like the hand-wired
// drivers, use a fresh cluster per run.
//
// Structural problems (no terminal stage, schema divergence across nodes)
// panic; runtime transport failures surface in Result.Err.
func (g *Graph) Run(c *cluster.Cluster, factory cluster.ProviderFactory) *Result {
	g.terminal() // validate: exactly one sink stage
	order := g.topo()
	res := &Result{}

	c.Sim.Spawn("dag", func(p *sim.Proc) {
		tr := c.Net.Tracer()
		t0 := p.Now()
		tr.Begin(t0, telemetry.EvPhase, -1, 0, phaseSetup, 0)

		// One provider per network edge, built in Connect order so the
		// trace and the QP numbering are reproducible. A per-edge config
		// override builds its own RDMA transport; everything else shares
		// the run's default factory implementation (but still gets its own
		// provider instance — endpoints are per operator pair).
		runs := make(map[*Edge]*edgeRun, len(g.edges))
		for _, e := range g.edges {
			er := &edgeRun{e: e}
			runs[e] = er
			if e.Type == Forward {
				er.rows = make([]int64, c.N)
				er.bytes = make([]int64, c.N)
				continue
			}
			if e.cfg != nil {
				er.prov = shuffle.Build(p, c.Devs, *e.cfg, c.Threads)
			} else {
				er.prov = factory(p, c)
			}
			er.sends = make([]*shuffle.Shuffle, c.N)
			er.recvs = make([]*shuffle.Receive, c.N)
		}

		start := p.Now()
		res.SetupTime = start.Sub(t0)
		tr.End(start, telemetry.EvPhase, -1, 0, phaseSetup, 0)
		tr.Begin(start, telemetry.EvPhase, -1, 0, phaseStream, 0)
		c.FireBenchStart()

		// Build every stage's fragment on every node, inputs before
		// consumers. Fragments launch as they are built; the pull-based
		// receives idle until their upstream shuffles produce data, so
		// launch order does not affect the dataflow.
		done := c.Sim.NewWaitGroup("dag")
		roots := make([][]engine.Operator, len(g.stages)) // [stage][node]
		termSinks := make([]*engine.Sink, c.N)
		for _, s := range order {
			s := s
			roots[s.id] = make([]engine.Operator, c.N)
			for node := 0; node < c.N; node++ {
				in := make([]engine.Operator, len(s.in))
				for i, e := range s.in {
					if e.Type == Forward {
						er := runs[e]
						in[i] = &tap{
							in:   roots[e.From.id][node],
							rows: &er.rows[node], bytes: &er.bytes[node],
						}
					} else {
						in[i] = &shuffle.Receive{
							Comm: runs[e].prov, Node: node,
							Sch: roots[e.From.id][node].Schema(),
						}
						runs[e].recvs[node] = in[i].(*shuffle.Receive)
					}
				}
				root := s.Build(node, in)
				if root == nil {
					panic(fmt.Sprintf("dag: stage %q built a nil fragment on node %d", s.Name, node))
				}
				if node > 0 && !root.Schema().Equal(roots[s.id][0].Schema()) {
					panic(fmt.Sprintf("dag: stage %q builds different schemas on nodes 0 and %d", s.Name, node))
				}
				roots[s.id][node] = root
			}

			// Forward-source stages have no sinks: the downstream fragment
			// drains them through the chain.
			if s.out != nil && s.out.Type == Forward {
				continue
			}
			stageWG := c.Sim.NewWaitGroup("dag-stage " + s.Name)
			tr.Begin(p.Now(), telemetry.EvStage, -1, 0, int64(s.id), 0)
			for node := 0; node < c.N; node++ {
				var top engine.Operator = roots[s.id][node]
				var sink *engine.Sink
				if s.out != nil {
					e := s.out
					sh := &shuffle.Shuffle{
						In: top, Comm: runs[e].prov, Node: node,
						G: e.groups(c.N), Key: e.keyFunc(c.N),
					}
					runs[e].sends[node] = sh
					sink = &engine.Sink{In: sh}
				} else {
					sink = &engine.Sink{In: top, Keep: node == 0}
					termSinks[node] = sink
				}
				done.Add(1)
				stageWG.Add(1)
				sink.Run(c.Ctx(node), fmt.Sprintf("dag %s@%d", s.Name, node),
					func(p *sim.Proc) { stageWG.Done(); done.Done() })
			}
			c.Sim.Spawn("dag-stage-end "+s.Name, func(p *sim.Proc) {
				stageWG.Wait(p)
				tr.End(p.Now(), telemetry.EvStage, -1, 0, int64(s.id), 0)
			})
		}

		c.Sim.Spawn("dag-join", func(p *sim.Proc) {
			done.Wait(p)
			if c.FD != nil {
				c.FD.Stop()
			}
			res.Elapsed = p.Now().Sub(start)
			tr.End(p.Now(), telemetry.EvPhase, -1, 0, phaseStream, 0)
			res.Result = termSinks[0].Result
			for node := 0; node < c.N; node++ {
				res.Rows += termSinks[node].Rows
			}
			res.Edges = make([]EdgeStats, len(g.edges))
			for i, e := range g.edges {
				er := runs[e]
				st := &res.Edges[i]
				st.Edge, st.Type = e.ID(), e.Type
				st.RowsPerNode = make([]int64, c.N)
				if e.Type == Forward {
					for node := 0; node < c.N; node++ {
						st.RowsPerNode[node] = er.rows[node]
						st.Rows += er.rows[node]
						st.Bytes += er.bytes[node]
					}
					continue
				}
				for node := 0; node < c.N; node++ {
					st.RowsPerNode[node] = er.recvs[node].Rows
					st.Rows += er.recvs[node].Rows
					st.Bytes += er.recvs[node].Bytes
					st.WRs += er.sends[node].SendWRs
					if err := shuffle.CheckErr(er.sends[node], er.recvs[node]); err != nil && res.Err == nil {
						res.Err = fmt.Errorf("dag edge %s: %w", e.ID(), err)
					}
				}
			}
		})
	})
	if err := c.Sim.Run(); err != nil && res.Err == nil {
		res.Err = err
	}
	c.Recycle()
	return res
}

// RunWithRestart applies the paper's recovery policy to a DAG plan: any
// transport error fails the whole query, which restarts from scratch on a
// fresh cluster (a Simulation is single-use, so mk builds cluster, graph,
// and default factory anew per attempt). It returns the final result, the
// number of restarts taken, and an error once maxRestarts is exhausted.
func RunWithRestart(mk func(attempt int) (*cluster.Cluster, *Graph, cluster.ProviderFactory), maxRestarts int) (*Result, int, error) {
	for attempt := 0; ; attempt++ {
		c, g, f := mk(attempt)
		res := g.Run(c, f)
		if res.Err == nil {
			return res, attempt, nil
		}
		if attempt >= maxRestarts {
			return res, attempt, fmt.Errorf("dag: recovery exhausted after %d restarts: %w", attempt, res.Err)
		}
	}
}
