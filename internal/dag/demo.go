package dag

import (
	"rshuffle/internal/engine"
)

// DemoTables builds per-node fragments of a synthetic star pair for the
// multi-stage exhibit: a fact table R(key, val) whose keys are randomized
// over the dimension domain, and a dimension table S(key, c) partitioned
// round-robin-free — node a holds the contiguous keys [a·dimRows,
// (a+1)·dimRows) with c = 3·key. Generation is seeded and deterministic.
func DemoTables(n, factRows, dimRows int, seed int64) (fact, dim []*engine.Table) {
	domain := int64(n * dimRows)
	fact = make([]*engine.Table, n)
	dim = make([]*engine.Table, n)
	for a := 0; a < n; a++ {
		f := engine.NewTable(engine.NewSchema(engine.TInt64, engine.TInt64))
		fw := engine.NewWriter(f)
		x := uint64(seed) + uint64(a+1)*0x9E3779B97F4A7C15
		for i := 0; i < factRows; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			fw.SetInt64(0, int64(x%uint64(domain)))
			fw.SetInt64(1, int64(i))
			fw.Done()
		}
		fact[a] = f

		d := engine.NewTable(engine.NewSchema(engine.TInt64, engine.TInt64))
		dw := engine.NewWriter(d)
		for i := 0; i < dimRows; i++ {
			k := int64(a*dimRows + i)
			dw.SetInt64(0, k)
			dw.SetInt64(1, 3*k)
			dw.Done()
		}
		dim[a] = d
	}
	return fact, dim
}

// MultiStageDemo builds the repository's canonical genuinely multi-stage
// plan over DemoTables fragments:
//
//	fact-partial (per-node partial aggregation)
//	    │ hash on key            dim (dimension scan)
//	    ▼                          │ hash on key
//	  join (final agg merge ⨝ dim) ◀
//	    │ broadcast
//	    ▼
//	 report (global count + sums, replicated on every node)
//
// It exercises three edge types (two Hash fan-ins, one Broadcast) across
// three pipeline barriers; per-edge transports can be mixed afterwards via
// Graph.Edges and Edge.SetAlgorithm. The report stage's single output row
// is count(groups), sum(val-sums), sum(c) — a checksum of the whole
// dataflow that any wiring error perturbs.
func MultiStageDemo(fact, dim []*engine.Table) *Graph {
	g := New()

	partial := g.AddStage(Stage{
		Name: "fact-partial", Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.HashAgg{
				In:      &engine.Scan{T: fact[node]},
				KeyCols: []int{0},
				Aggs: []engine.AggSpec{{Kind: engine.AggSum,
					Eval: func(b *engine.Batch, i int) float64 { return float64(b.Int64(i, 1)) }}},
			}
		},
	})
	dimScan := g.AddStage(Stage{
		Name: "dim",
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.Scan{T: dim[node]}
		},
	})
	join := g.AddStage(Stage{
		Name: "join", Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			// in[0] carries the partial aggregates (key, sum); merge them
			// into finals, then join with the co-partitioned dimension rows
			// arriving on in[1].
			final := &engine.HashAgg{
				In:      in[0],
				KeyCols: []int{0},
				Aggs: []engine.AggSpec{{Kind: engine.AggSum,
					Eval: func(b *engine.Batch, i int) float64 { return b.Float64(i, 1) }}},
			}
			return &engine.HashJoin{
				Build: final, Probe: in[1],
				BuildKey: 0, ProbeKey: 0,
			}
		},
	})
	report := g.AddStage(Stage{
		Name: "report", Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			// Join output: (key, sum, dimKey, c). With a broadcast inbound
			// edge every node aggregates the full join result, so all
			// replicas hold the identical global summary row.
			return &engine.HashAgg{
				In: in[0],
				Aggs: []engine.AggSpec{
					{Kind: engine.AggCount},
					{Kind: engine.AggSum,
						Eval: func(b *engine.Batch, i int) float64 { return b.Float64(i, 1) }},
					{Kind: engine.AggSum,
						Eval: func(b *engine.Batch, i int) float64 { return float64(b.Int64(i, 3)) }},
				},
			}
		},
	})

	g.Connect(partial, join, WithKey(0))      // detected: Hash
	g.Connect(dimScan, join, WithKey(0))      // detected: Hash
	g.Connect(join, report, WithReplicated()) // detected: Broadcast
	return g
}
