package tpch

import (
	"fmt"
	"math"

	"rshuffle/internal/cluster"
	"rshuffle/internal/engine"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
)

// QueryResult reports one distributed query execution.
type QueryResult struct {
	// Elapsed is the query response time, measured after all transports are
	// connected (the paper reports Fig. 12 setup costs separately).
	Elapsed sim.Duration
	// Result holds the final rows, gathered on node 0.
	Result *engine.Table
	// Rows is the result cardinality.
	Rows int64
	// Err is the first transport error observed.
	Err error
}

// plan accumulates the fragments and exchanges of one distributed query.
type plan struct {
	c       *cluster.Cluster
	factory cluster.ProviderFactory
	done    *sim.WaitGroup
	sends   []*shuffle.Shuffle
	recvs   []*shuffle.Receive
	pending []func()
	frag    int
}

func newPlan(c *cluster.Cluster, f cluster.ProviderFactory) *plan {
	return &plan{c: c, factory: f, done: c.Sim.NewWaitGroup("query")}
}

// fragment drains root with one Sink per node using the standard worker
// thread count; keep retains rows (used for the final fragment on node 0).
func (pl *plan) fragment(node int, root engine.Operator, keep bool) *engine.Sink {
	pl.frag++
	name := fmt.Sprintf("f%d@%d", pl.frag, node)
	s := &engine.Sink{In: root, Keep: keep}
	pl.done.Add(1)
	// Starting is deferred until finish so that the response-time clock
	// begins only after every exchange's transport is connected.
	pl.pending = append(pl.pending, func() {
		s.Run(pl.c.Ctx(node), name, func(p *sim.Proc) { pl.done.Done() })
	})
	return s
}

// exchange wires one shuffle stage: node i's sending fragment drains
// mkIn(i) and transmits on groups keyed by column key; the returned Receive
// operators are the receiving fragments' leaves.
func (pl *plan) exchange(p *sim.Proc, g shuffle.Groups, key int, mkIn func(node int) engine.Operator) []*shuffle.Receive {
	prov := pl.factory(p, pl.c)
	recvs := make([]*shuffle.Receive, pl.c.N)
	var sch *engine.Schema
	for node := 0; node < pl.c.N; node++ {
		in := mkIn(node)
		if sch == nil {
			sch = in.Schema()
		}
		sh := &shuffle.Shuffle{
			In: in, Comm: prov, Node: node, G: g, Key: shuffle.KeyInt64Col(key),
		}
		pl.sends = append(pl.sends, sh)
		pl.fragment(node, sh, false)
		recvs[node] = &shuffle.Receive{Comm: prov, Node: node, Sch: sch}
		pl.recvs = append(pl.recvs, recvs[node])
	}
	return recvs
}

// gather returns groups that funnel everything to node 0.
func gather() shuffle.Groups { return shuffle.Groups{{0}} }

// finish launches every fragment, then waits for the query to drain and
// collects errors. The response-time clock starts here.
func (pl *plan) finish(start sim.Time, res *QueryResult, final *engine.Sink) {
	for _, launch := range pl.pending {
		launch()
	}
	pl.pending = nil
	pl.c.Sim.Spawn("query-join", func(p *sim.Proc) {
		pl.done.Wait(p)
		res.Elapsed = p.Now().Sub(start)
		res.Result = final.Result
		res.Rows = final.Rows
		for _, s := range pl.sends {
			if s.Err != nil && res.Err == nil {
				res.Err = s.Err
			}
		}
		for _, r := range pl.recvs {
			if r.Err != nil && res.Err == nil {
				res.Err = r.Err
			}
		}
	})
}

// revenue is the TPC-H revenue expression sum(l_extendedprice*(1-l_discount))
// over the given price and discount columns.
func revenue(priceCol, discCol int) engine.AggSpec {
	return engine.AggSpec{Kind: engine.AggSum, Eval: func(b *engine.Batch, i int) float64 {
		return b.Float64(i, priceCol) * (1 - b.Float64(i, discCol))
	}}
}

func sumCol(col int) engine.AggSpec {
	return engine.AggSpec{Kind: engine.AggSum, Eval: func(b *engine.Batch, i int) float64 {
		return b.Float64(i, col)
	}}
}

// RunQ4 executes TPC-H Q4: order counts per priority for orders of
// 1993Q3 that have at least one late lineitem. The distributed plan
// broadcasts the filtered (small) ORDERS columns, semi-joins against local
// LINEITEM, deduplicates order keys with a repartition, and gathers the
// five-row result. With local set (and a co-partitioned database) the semi
// join runs without any data shuffle, the paper's "local data" baseline.
func RunQ4(c *cluster.Cluster, db *DB, f cluster.ProviderFactory, local bool) *QueryResult {
	res := &QueryResult{}
	c.Sim.Spawn("q4", func(p *sim.Proc) {
		pl := newPlan(c, f)

		ordersIn := func(node int) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Orders[node]},
					Pred: func(b *engine.Batch, i int) bool {
						d := b.Int64(i, OOrderDate)
						return d >= Date(1993, 7, 1) && d < Date(1993, 10, 1)
					},
				},
				Cols: []int{OOrderKey, OOrderPriority},
			}
		}
		lineIn := func(node int) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Lineitem[node]},
					Pred: func(b *engine.Batch, i int) bool {
						return b.Int64(i, LCommitDate) < b.Int64(i, LReceiptDate)
					},
				},
				Cols: []int{LOrderKey},
			}
		}

		var matchedIn func(node int) engine.Operator
		if local {
			matchedIn = func(node int) engine.Operator {
				return &engine.HashJoin{
					Build: ordersIn(node), Probe: lineIn(node),
					BuildKey: 0, ProbeKey: 0, Semi: true,
				}
			}
		} else {
			bcast := pl.exchange(p, shuffle.Broadcast(c.N), 0, ordersIn)
			matchedIn = func(node int) engine.Operator {
				return &engine.HashJoin{
					Build: bcast[node], Probe: lineIn(node),
					BuildKey: 0, ProbeKey: 0, Semi: true,
				}
			}
		}

		// Deduplicate matched orders globally (broadcast-side semi joins can
		// match the same order on several nodes), then count per priority.
		var perPrioIn func(node int) engine.Operator
		if local {
			perPrioIn = matchedIn
		} else {
			dedupIn := pl.exchange(p, shuffle.Repartition(c.N), 0, matchedIn)
			perPrioIn = func(node int) engine.Operator {
				return &engine.HashAgg{In: dedupIn[node], KeyCols: []int{0, 1},
					Aggs: []engine.AggSpec{{Kind: engine.AggCount}}}
			}
		}
		perPrio := func(node int) engine.Operator {
			keyCols := []int{1} // priority column of (okey, priority, ...)
			return &engine.HashAgg{In: perPrioIn(node), KeyCols: keyCols,
				Aggs: []engine.AggSpec{{Kind: engine.AggCount}}}
		}

		finalRecv := pl.exchange(p, gather(), 0, perPrio)
		var final *engine.Sink
		for node := 0; node < c.N; node++ {
			root := &engine.TopN{
				In: &engine.HashAgg{In: finalRecv[node], KeyCols: []int{0},
					Aggs: []engine.AggSpec{sumCol(1)}},
				Less: func(sch *engine.Schema, a, b []byte) bool {
					return string(a[:16]) < string(b[:16]) // priority ascending
				},
			}
			s := pl.fragment(node, root, node == 0)
			if node == 0 {
				final = s
			}
		}
		pl.finish(p.Now(), res, final)
	})
	if err := c.Sim.Run(); err != nil && res.Err == nil {
		res.Err = err
	}
	c.Recycle()
	return res
}

// RunQ3 executes TPC-H Q3: the ten highest-revenue undelivered orders for
// the BUILDING market segment. CUSTOMER and ORDERS repartition on customer
// key for the first join; its output and LINEITEM repartition on order key
// for the second; grouped revenues are gathered and the top ten extracted.
func RunQ3(c *cluster.Cluster, db *DB, f cluster.ProviderFactory) *QueryResult {
	res := &QueryResult{}
	c.Sim.Spawn("q3", func(p *sim.Proc) {
		pl := newPlan(c, f)

		custRecv := pl.exchange(p, shuffle.Repartition(c.N), 0, func(node int) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Customer[node]},
					Pred: func(b *engine.Batch, i int) bool {
						return b.Int64(i, CMktSegment) == SegBuilding
					},
				},
				Cols: []int{CCustKey},
			}
		})
		ordRecv := pl.exchange(p, shuffle.Repartition(c.N), 0, func(node int) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Orders[node]},
					Pred: func(b *engine.Batch, i int) bool {
						return b.Int64(i, OOrderDate) < Date(1995, 3, 15)
					},
				},
				Cols: []int{OCustKey, OOrderKey, OOrderDate, OShipPriority},
			}
		})

		// join1 output: (custkey) ++ (custkey, okey, odate, shippri);
		// keep (okey, odate, shippri) and repartition on order key.
		j1Recv := pl.exchange(p, shuffle.Repartition(c.N), 0, func(node int) engine.Operator {
			return &engine.Project{
				In: &engine.HashJoin{
					Build: custRecv[node], Probe: ordRecv[node],
					BuildKey: 0, ProbeKey: 0,
				},
				Cols: []int{2, 3, 4},
			}
		})
		lineRecv := pl.exchange(p, shuffle.Repartition(c.N), 0, func(node int) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Lineitem[node]},
					Pred: func(b *engine.Batch, i int) bool {
						return b.Int64(i, LShipDate) > Date(1995, 3, 15)
					},
				},
				Cols: []int{LOrderKey, LExtendedPrice, LDiscount},
			}
		})

		// join2 output: (okey, odate, shippri) ++ (okey, price, disc).
		aggRecv := pl.exchange(p, gather(), 0, func(node int) engine.Operator {
			return &engine.HashAgg{
				In: &engine.HashJoin{
					Build: j1Recv[node], Probe: lineRecv[node],
					BuildKey: 0, ProbeKey: 0,
				},
				KeyCols: []int{0, 1, 2},
				Aggs:    []engine.AggSpec{revenue(4, 5)},
			}
		})

		var final *engine.Sink
		for node := 0; node < c.N; node++ {
			root := &engine.TopN{
				In: &engine.HashAgg{In: aggRecv[node], KeyCols: []int{0, 1, 2},
					Aggs: []engine.AggSpec{sumCol(3)}},
				N: 10,
				Less: func(sch *engine.Schema, a, b []byte) bool {
					ra := engine.RowInt64(sch, a, 3)
					rb := engine.RowInt64(sch, b, 3)
					fa, fb := f64(ra), f64(rb)
					if fa != fb {
						return fa > fb // revenue descending
					}
					return engine.RowInt64(sch, a, 1) < engine.RowInt64(sch, b, 1)
				},
			}
			s := pl.fragment(node, root, node == 0)
			if node == 0 {
				final = s
			}
		}
		pl.finish(p.Now(), res, final)
	})
	if err := c.Sim.Run(); err != nil && res.Err == nil {
		res.Err = err
	}
	c.Recycle()
	return res
}

// RunQ10 executes TPC-H Q10: the twenty customers with the highest revenue
// from returned items in 1993Q4, joined with their nation. ORDERS and
// LINEITEM repartition on order key, pre-aggregated revenue repartitions on
// customer key against the customer×nation join, and the result gathers.
func RunQ10(c *cluster.Cluster, db *DB, f cluster.ProviderFactory) *QueryResult {
	res := &QueryResult{}
	c.Sim.Spawn("q10", func(p *sim.Proc) {
		pl := newPlan(c, f)

		ordRecv := pl.exchange(p, shuffle.Repartition(c.N), 0, func(node int) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Orders[node]},
					Pred: func(b *engine.Batch, i int) bool {
						d := b.Int64(i, OOrderDate)
						return d >= Date(1993, 10, 1) && d < Date(1994, 1, 1)
					},
				},
				Cols: []int{OOrderKey, OCustKey},
			}
		})
		lineRecv := pl.exchange(p, shuffle.Repartition(c.N), 0, func(node int) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Lineitem[node]},
					Pred: func(b *engine.Batch, i int) bool {
						return b.Int64(i, LReturnFlag) == ReturnFlagR
					},
				},
				Cols: []int{LOrderKey, LExtendedPrice, LDiscount},
			}
		})

		// join1: (okey, custkey) ++ (okey, price, disc); pre-aggregate
		// revenue per customer, then repartition on customer key.
		revRecv := pl.exchange(p, shuffle.Repartition(c.N), 0, func(node int) engine.Operator {
			return &engine.HashAgg{
				In: &engine.HashJoin{
					Build: ordRecv[node], Probe: lineRecv[node],
					BuildKey: 0, ProbeKey: 0,
				},
				KeyCols: []int{1}, // custkey
				Aggs:    []engine.AggSpec{revenue(3, 4)},
			}
		})
		// Customer ⋈ NATION is local (NATION is replicated); output wide
		// customer attributes keyed by custkey.
		custRecv := pl.exchange(p, shuffle.Repartition(c.N), 0, func(node int) engine.Operator {
			return &engine.Project{
				In: &engine.HashJoin{
					Build: &engine.Scan{T: db.Nation}, Probe: &engine.Scan{T: db.Customer[node]},
					BuildKey: NNationKey, ProbeKey: CNationKey,
				},
				// nation(nk,name,rk) ++ customer(8 cols)
				Cols: []int{3 + CCustKey, 3 + CName, 3 + CAcctBal, 3 + CPhone,
					3 + CAddress, 3 + CComment, NName},
			}
		})

		// join2: customer attrs ++ (custkey, revenue); aggregate and gather.
		aggRecv := pl.exchange(p, gather(), 0, func(node int) engine.Operator {
			return &engine.HashAgg{
				In: &engine.HashJoin{
					Build: custRecv[node], Probe: revRecv[node],
					BuildKey: 0, ProbeKey: 0,
				},
				KeyCols: []int{0, 1, 2, 3, 4, 5, 6},
				Aggs:    []engine.AggSpec{sumCol(8)},
			}
		})

		var final *engine.Sink
		for node := 0; node < c.N; node++ {
			root := &engine.TopN{
				In: &engine.HashAgg{In: aggRecv[node], KeyCols: []int{0, 1, 2, 3, 4, 5, 6},
					Aggs: []engine.AggSpec{sumCol(7)}},
				N: 20,
				Less: func(sch *engine.Schema, a, b []byte) bool {
					return f64(engine.RowInt64(sch, a, 7)) > f64(engine.RowInt64(sch, b, 7))
				},
			}
			s := pl.fragment(node, root, node == 0)
			if node == 0 {
				final = s
			}
		}
		pl.finish(p.Now(), res, final)
	})
	if err := c.Sim.Run(); err != nil && res.Err == nil {
		res.Err = err
	}
	c.Recycle()
	return res
}

func f64(bits int64) float64 {
	return math.Float64frombits(uint64(bits))
}
