package tpch

import (
	"bytes"
	"testing"

	"rshuffle/internal/cluster"
)

// TestDagPlansMatchHandWired pins the planner against the hand-wired
// drivers: for Q3, Q4 (both layouts), and Q10, the declarative DAG plan
// must produce a byte-identical result table on an identically seeded
// cluster — same rows, same order, same float bits.
func TestDagPlansMatchHandWired(t *testing.T) {
	cases := []struct {
		name   string
		q      int
		layout Layout
		local  bool
		seed   int64
	}{
		{"q3", 3, Random, false, 13},
		{"q4", 4, Random, false, 11},
		{"q4-local", 4, CoPartitioned, true, 11},
		{"q10", 10, Random, false, 17},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db := Generate(0.01, 4, tc.layout, tc.seed)

			var hand *QueryResult
			hc := cluster.New(quiet(), 4, 4, 5)
			switch tc.q {
			case 3:
				hand = RunQ3(hc, db, testFactory())
			case 4:
				hand = RunQ4(hc, db, testFactory(), tc.local)
			case 10:
				hand = RunQ10(hc, db, testFactory())
			}
			if hand.Err != nil {
				t.Fatalf("hand-wired: %v", hand.Err)
			}

			dc := cluster.New(quiet(), 4, 4, 5)
			declarative, dr, err := Run(dc, db, tc.q, testFactory(), tc.local)
			if err != nil {
				t.Fatal(err)
			}
			if declarative.Err != nil {
				t.Fatalf("dag plan: %v", declarative.Err)
			}

			if declarative.Rows != hand.Rows {
				t.Fatalf("rows = %d, hand-wired %d", declarative.Rows, hand.Rows)
			}
			if !declarative.Result.Sch.Equal(hand.Result.Sch) {
				t.Fatal("result schemas differ")
			}
			if !bytes.Equal(declarative.Result.Data, hand.Result.Data) {
				t.Fatal("result tables are not byte-identical")
			}
			// The plan must actually have moved data over typed edges.
			var moved int64
			for _, e := range dr.Edges {
				moved += e.Rows
			}
			if moved == 0 {
				t.Fatal("no rows crossed any DAG edge")
			}
		})
	}
}

// TestDagQ4EdgeTypes checks detection picks the paper's exchange patterns
// for Q4: broadcast for the semi-join build side, hash for dedup and
// gather in the distributed plan; a forward chain in the local plan.
func TestDagQ4EdgeTypes(t *testing.T) {
	db := Generate(0.005, 4, Random, 3)
	g := PlanQ4(db, false)
	types := []string{}
	for _, e := range g.Edges() {
		types = append(types, e.ID()+":"+e.Type.String())
	}
	want := []string{"orders->match:broadcast", "match->perprio:hash", "perprio->final:hash"}
	for i, w := range want {
		if types[i] != w {
			t.Errorf("edge %d = %s, want %s", i, types[i], w)
		}
	}

	local := PlanQ4(Generate(0.005, 4, CoPartitioned, 3), true)
	les := local.Edges()
	if les[0].Type.String() != "forward" {
		t.Errorf("local match->perprio = %s, want forward", les[0].Type)
	}
}

// TestTransportFactory pins the name vocabulary shared by cmd/tpchq and
// the examples.
func TestTransportFactory(t *testing.T) {
	for _, name := range []string{"mesq", "sesq", "memq", "semq",
		"memq-rd", "semq-rd", "memq-wr", "semq-wr", "mpi", "ipoib"} {
		f, err := TransportFactory(name, 4)
		if err != nil || f == nil {
			t.Errorf("TransportFactory(%q) = %v, %v", name, f, err)
		}
	}
	if _, err := TransportFactory("bogus", 4); err == nil {
		t.Error("unknown transport accepted")
	}
}
