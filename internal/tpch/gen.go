// Package tpch generates the TPC-H subset the paper evaluates (Q3, Q4 and
// Q10 touch CUSTOMER, ORDERS, LINEITEM, NATION and REGION) and implements
// distributed physical plans for those queries on the simulated cluster.
//
// As in the paper's setup, every tuple of every table is distributed to a
// random node, except NATION and REGION which are replicated everywhere,
// and unused columns are pre-projected away by the plans, as a column store
// would. A co-partitioned layout (orders and lineitem partitioned by order
// key) is also available for the paper's "local data" baseline plans.
package tpch

import (
	"fmt"

	"rshuffle/internal/engine"
)

// Column indices of the generated tables.
const (
	// CUSTOMER
	CCustKey = iota
	CMktSegment
	CNationKey
	CAcctBal
	CName
	CAddress
	CPhone
	CComment
)

const (
	// ORDERS
	OOrderKey = iota
	OCustKey
	OOrderDate
	OShipPriority
	OOrderPriority
)

const (
	// LINEITEM
	LOrderKey = iota
	LExtendedPrice
	LDiscount
	LShipDate
	LCommitDate
	LReceiptDate
	LReturnFlag
)

const (
	// NATION
	NNationKey = iota
	NName
	NRegionKey
)

// Schemas of the generated tables.
var (
	CustomerSchema = engine.NewSchema(
		engine.TInt64, engine.TInt64, engine.TInt64, engine.TFloat64,
		engine.TStr32, engine.TStr32, engine.TStr16, engine.TStr32)
	OrdersSchema = engine.NewSchema(
		engine.TInt64, engine.TInt64, engine.TInt64, engine.TInt64, engine.TStr16)
	LineitemSchema = engine.NewSchema(
		engine.TInt64, engine.TFloat64, engine.TFloat64,
		engine.TInt64, engine.TInt64, engine.TInt64, engine.TInt64)
	NationSchema = engine.NewSchema(engine.TInt64, engine.TStr16, engine.TInt64)
)

// Mktsegment codes 0..4; "BUILDING" is the segment Q3 filters on.
const (
	SegAutomobile = iota
	SegBuilding
	SegFurniture
	SegMachinery
	SegHousehold
)

// Priorities are the five TPC-H order priorities.
var Priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}

// ReturnFlagR is the l_returnflag code Q10 filters on.
const ReturnFlagR = 1

// Date returns days since 1992-01-01 for a date in the TPC-H range.
func Date(y, m, d int) int64 {
	days := int64(0)
	for yy := 1992; yy < y; yy++ {
		days += 365
		if leap(yy) {
			days++
		}
	}
	mdays := [...]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	for mm := 1; mm < m; mm++ {
		days += int64(mdays[mm-1])
		if mm == 2 && leap(y) {
			days++
		}
	}
	return days + int64(d-1)
}

func leap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

// Layout selects how rows are placed on nodes.
type Layout int

const (
	// Random sends every tuple to a random node (the paper's setup).
	Random Layout = iota
	// CoPartitioned places orders and lineitem rows by hash of the order
	// key and customers by customer key, enabling the "local data" plans.
	CoPartitioned
)

// DB is one generated, distributed TPC-H database.
type DB struct {
	SF     float64
	Nodes  int
	Layout Layout

	Customer, Orders, Lineitem []*engine.Table // one fragment per node
	Nation, Region             *engine.Table   // replicated

	// Totals for sanity checks.
	NCustomer, NOrders, NLineitem int
}

// rng is a splitmix64 stream.
type rng struct{ x uint64 }

func (r *rng) next() uint64 {
	r.x += 0x9E3779B97F4A7C15
	z := r.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
func (r *rng) intn(n int) int         { return int(r.next() % uint64(n)) }
func (r *rng) rangeI(lo, hi int) int  { return lo + r.intn(hi-lo+1) }
func (r *rng) f64() float64           { return float64(r.next()>>11) / (1 << 53) }
func partKey(h uint64, nodes int) int { return int((h * 0x9E3779B97F4A7C15 >> 17) % uint64(nodes)) }

// Generate builds a database at the given scale factor across nodes.
// Row counts follow TPC-H proportions (150k customers, 1.5M orders, ~6M
// lineitems per unit of scale factor).
func Generate(sf float64, nodes int, layout Layout, seed int64) *DB {
	db := &DB{SF: sf, Nodes: nodes, Layout: layout}
	db.Customer = make([]*engine.Table, nodes)
	db.Orders = make([]*engine.Table, nodes)
	db.Lineitem = make([]*engine.Table, nodes)
	for i := 0; i < nodes; i++ {
		db.Customer[i] = engine.NewTable(CustomerSchema)
		db.Orders[i] = engine.NewTable(OrdersSchema)
		db.Lineitem[i] = engine.NewTable(LineitemSchema)
	}
	r := &rng{x: uint64(seed)*2654435761 + 1}

	nCust := int(150_000 * sf)
	if nCust < 10 {
		nCust = 10
	}
	nOrders := 10 * nCust

	// CUSTOMER.
	for ck := 1; ck <= nCust; ck++ {
		node := r.intn(nodes)
		if layout == CoPartitioned {
			node = partKey(uint64(ck), nodes)
		}
		w := engine.NewWriter(db.Customer[node])
		w.SetInt64(CCustKey, int64(ck))
		w.SetInt64(CMktSegment, int64(r.intn(5)))
		w.SetInt64(CNationKey, int64(r.intn(25)))
		w.SetFloat64(CAcctBal, -999.99+r.f64()*10999.98)
		w.SetStr(CName, fmt.Sprintf("Customer#%09d", ck))
		w.SetStr(CAddress, addr(r))
		w.SetStr(CPhone, fmt.Sprintf("%02d-%03d-%03d", 10+r.intn(25), r.intn(1000), r.intn(1000)))
		w.SetStr(CComment, comment(r))
		w.Done()
		db.NCustomer++
	}

	// ORDERS and LINEITEM. Order keys are sparse as in TPC-H.
	lastDate := int(Date(1998, 8, 2))
	for i := 1; i <= nOrders; i++ {
		ok := int64(i*8 - 7)
		node := r.intn(nodes)
		if layout == CoPartitioned {
			node = partKey(uint64(ok), nodes)
		}
		odate := int64(r.intn(lastDate - 151))
		w := engine.NewWriter(db.Orders[node])
		w.SetInt64(OOrderKey, ok)
		w.SetInt64(OCustKey, int64(1+r.intn(nCust)))
		w.SetInt64(OOrderDate, odate)
		w.SetInt64(OShipPriority, 0)
		w.SetStr(OOrderPriority, Priorities[r.intn(5)])
		w.Done()
		db.NOrders++

		nl := 1 + r.intn(7)
		for j := 0; j < nl; j++ {
			lnode := r.intn(nodes)
			if layout == CoPartitioned {
				lnode = partKey(uint64(ok), nodes)
			}
			ship := odate + int64(r.rangeI(1, 121))
			lw := engine.NewWriter(db.Lineitem[lnode])
			lw.SetInt64(LOrderKey, ok)
			lw.SetFloat64(LExtendedPrice, 901.0+r.f64()*104049.0)
			lw.SetFloat64(LDiscount, float64(r.intn(11))/100)
			lw.SetInt64(LShipDate, ship)
			lw.SetInt64(LCommitDate, odate+int64(r.rangeI(30, 90)))
			lw.SetInt64(LReceiptDate, ship+int64(r.rangeI(1, 30)))
			flag := int64(0)
			if ship+int64(r.rangeI(1, 30)) <= Date(1995, 6, 17) && r.intn(2) == 0 {
				flag = ReturnFlagR
			}
			lw.SetInt64(LReturnFlag, flag)
			lw.Done()
			db.NLineitem++
		}
	}

	// NATION and REGION, replicated (only 25 and 5 rows).
	db.Nation = engine.NewTable(NationSchema)
	for nk := 0; nk < 25; nk++ {
		w := engine.NewWriter(db.Nation)
		w.SetInt64(NNationKey, int64(nk))
		w.SetStr(NName, fmt.Sprintf("NATION %02d", nk))
		w.SetInt64(NRegionKey, int64(nk%5))
		w.Done()
	}
	db.Region = engine.NewTable(engine.NewSchema(engine.TInt64, engine.TStr16))
	for rk := 0; rk < 5; rk++ {
		w := engine.NewWriter(db.Region)
		w.SetInt64(0, int64(rk))
		w.SetStr(1, fmt.Sprintf("REGION %d", rk))
		w.Done()
	}
	return db
}

var addrParts = []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}

func addr(r *rng) string {
	return fmt.Sprintf("%d %s %s st", r.intn(9999), addrParts[r.intn(8)], addrParts[r.intn(8)])
}

func comment(r *rng) string {
	return addrParts[r.intn(8)] + " " + addrParts[r.intn(8)] + " " + addrParts[r.intn(8)]
}

// Bytes returns the database's total payload size across all nodes.
func (db *DB) Bytes() int64 {
	var total int64
	for i := 0; i < db.Nodes; i++ {
		total += int64(db.Customer[i].Bytes() + db.Orders[i].Bytes() + db.Lineitem[i].Bytes())
	}
	return total
}
