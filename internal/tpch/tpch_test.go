package tpch

import (
	"math"
	"sort"
	"testing"

	"rshuffle/internal/cluster"
	"rshuffle/internal/engine"
	"rshuffle/internal/fabric"
	"rshuffle/internal/ipoib"
	"rshuffle/internal/mpi"
	"rshuffle/internal/shuffle"
)

func quiet() fabric.Profile {
	p := fabric.EDR()
	p.UDReorderProb = 0
	return p
}

func testFactory() cluster.ProviderFactory {
	return cluster.RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 14})
}

func TestDateArithmetic(t *testing.T) {
	if Date(1992, 1, 1) != 0 {
		t.Fatalf("epoch = %d", Date(1992, 1, 1))
	}
	if Date(1992, 3, 1) != 60 { // 1992 is a leap year
		t.Fatalf("1992-03-01 = %d, want 60", Date(1992, 3, 1))
	}
	if Date(1993, 1, 1) != 366 {
		t.Fatalf("1993-01-01 = %d, want 366", Date(1993, 1, 1))
	}
	if d := Date(1998, 8, 2) - Date(1998, 7, 2); d != 31 {
		t.Fatalf("july length = %d", d)
	}
}

func TestGenerateProportions(t *testing.T) {
	db := Generate(0.01, 4, Random, 1)
	if db.NCustomer != 1500 {
		t.Fatalf("customers = %d, want 1500", db.NCustomer)
	}
	if db.NOrders != 15000 {
		t.Fatalf("orders = %d, want 15000", db.NOrders)
	}
	if db.NLineitem < 3*db.NOrders || db.NLineitem > 5*db.NOrders {
		t.Fatalf("lineitems = %d, want ~4 per order", db.NLineitem)
	}
	var rows int
	for i := 0; i < 4; i++ {
		rows += db.Orders[i].N
	}
	if rows != db.NOrders {
		t.Fatalf("distributed orders = %d, want %d", rows, db.NOrders)
	}
	if db.Nation.N != 25 || db.Region.N != 5 {
		t.Fatal("nation/region cardinality wrong")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.005, 2, Random, 7)
	b := Generate(0.005, 2, Random, 7)
	for i := 0; i < 2; i++ {
		if string(a.Orders[i].Data) != string(b.Orders[i].Data) {
			t.Fatal("generation is not deterministic")
		}
	}
}

func TestCoPartitionedLayout(t *testing.T) {
	db := Generate(0.005, 4, CoPartitioned, 3)
	// Every lineitem must reside with its order.
	orderNode := map[int64]int{}
	for node := 0; node < 4; node++ {
		tb := db.Orders[node]
		for i := 0; i < tb.N; i++ {
			orderNode[engine.RowInt64(tb.Sch, tb.Row(i), OOrderKey)] = node
		}
	}
	for node := 0; node < 4; node++ {
		tb := db.Lineitem[node]
		for i := 0; i < tb.N; i++ {
			ok := engine.RowInt64(tb.Sch, tb.Row(i), LOrderKey)
			if orderNode[ok] != node {
				t.Fatalf("lineitem of order %d on node %d, order on node %d",
					ok, node, orderNode[ok])
			}
		}
	}
}

// refQ4 computes Q4 by direct iteration.
func refQ4(db *DB) map[string]float64 {
	late := map[int64]bool{}
	for node := 0; node < db.Nodes; node++ {
		tb := db.Lineitem[node]
		for i := 0; i < tb.N; i++ {
			row := tb.Row(i)
			if engine.RowInt64(tb.Sch, row, LCommitDate) < engine.RowInt64(tb.Sch, row, LReceiptDate) {
				late[engine.RowInt64(tb.Sch, row, LOrderKey)] = true
			}
		}
	}
	out := map[string]float64{}
	lo, hi := Date(1993, 7, 1), Date(1993, 10, 1)
	for node := 0; node < db.Nodes; node++ {
		tb := db.Orders[node]
		for i := 0; i < tb.N; i++ {
			b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
			d := b.Int64(0, OOrderDate)
			if d >= lo && d < hi && late[b.Int64(0, OOrderKey)] {
				out[b.Str(0, OOrderPriority)]++
			}
		}
	}
	return out
}

func TestQ4MatchesReference(t *testing.T) {
	for _, layout := range []Layout{Random, CoPartitioned} {
		db := Generate(0.01, 4, layout, 11)
		want := refQ4(db)
		c := cluster.New(quiet(), 4, 4, 5)
		res := RunQ4(c, db, testFactory(), layout == CoPartitioned)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if int(res.Rows) != len(want) {
			t.Fatalf("layout %v: %d priorities, want %d", layout, res.Rows, len(want))
		}
		tb := res.Result
		for i := 0; i < tb.N; i++ {
			b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
			prio := b.Str(0, 0)
			cnt := b.Float64(0, 1)
			if cnt != want[prio] {
				t.Fatalf("layout %v: %s count = %v, want %v", layout, prio, cnt, want[prio])
			}
		}
		// Result must be ordered by priority ascending.
		for i := 1; i < tb.N; i++ {
			a := engine.Batch{Sch: tb.Sch, Data: tb.Row(i - 1), N: 1}
			b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
			if a.Str(0, 0) > b.Str(0, 0) {
				t.Fatal("Q4 result not sorted by priority")
			}
		}
	}
}

// refQ3 computes Q3's top-10 by direct iteration.
type q3row struct {
	okey, odate, ship int64
	rev               float64
}

func refQ3(db *DB) []q3row {
	building := map[int64]bool{}
	for node := 0; node < db.Nodes; node++ {
		tb := db.Customer[node]
		for i := 0; i < tb.N; i++ {
			b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
			if b.Int64(0, CMktSegment) == SegBuilding {
				building[b.Int64(0, CCustKey)] = true
			}
		}
	}
	type okeyInfo struct{ odate, ship int64 }
	orders := map[int64]okeyInfo{}
	cutoff := Date(1995, 3, 15)
	for node := 0; node < db.Nodes; node++ {
		tb := db.Orders[node]
		for i := 0; i < tb.N; i++ {
			b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
			if b.Int64(0, OOrderDate) < cutoff && building[b.Int64(0, OCustKey)] {
				orders[b.Int64(0, OOrderKey)] = okeyInfo{b.Int64(0, OOrderDate), b.Int64(0, OShipPriority)}
			}
		}
	}
	rev := map[int64]float64{}
	for node := 0; node < db.Nodes; node++ {
		tb := db.Lineitem[node]
		for i := 0; i < tb.N; i++ {
			b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
			ok := b.Int64(0, LOrderKey)
			if _, hit := orders[ok]; hit && b.Int64(0, LShipDate) > cutoff {
				rev[ok] += b.Float64(0, LExtendedPrice) * (1 - b.Float64(0, LDiscount))
			}
		}
	}
	var rows []q3row
	for ok, r := range rev {
		info := orders[ok]
		rows = append(rows, q3row{ok, info.odate, info.ship, r})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].rev != rows[j].rev {
			return rows[i].rev > rows[j].rev
		}
		return rows[i].odate < rows[j].odate
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	return rows
}

func TestQ3MatchesReference(t *testing.T) {
	db := Generate(0.01, 4, Random, 13)
	want := refQ3(db)
	c := cluster.New(quiet(), 4, 4, 5)
	res := RunQ3(c, db, testFactory())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if int(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", res.Rows, len(want))
	}
	tb := res.Result
	for i := 0; i < tb.N; i++ {
		b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
		if b.Int64(0, 0) != want[i].okey {
			t.Fatalf("row %d: okey = %d, want %d", i, b.Int64(0, 0), want[i].okey)
		}
		if math.Abs(b.Float64(0, 3)-want[i].rev) > 1e-6*math.Abs(want[i].rev) {
			t.Fatalf("row %d: rev = %v, want %v", i, b.Float64(0, 3), want[i].rev)
		}
	}
}

// refQ10 computes Q10's top-20 revenue by custkey.
func refQ10(db *DB) []float64 {
	lo, hi := Date(1993, 10, 1), Date(1994, 1, 1)
	orderCust := map[int64]int64{}
	for node := 0; node < db.Nodes; node++ {
		tb := db.Orders[node]
		for i := 0; i < tb.N; i++ {
			b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
			d := b.Int64(0, OOrderDate)
			if d >= lo && d < hi {
				orderCust[b.Int64(0, OOrderKey)] = b.Int64(0, OCustKey)
			}
		}
	}
	rev := map[int64]float64{}
	for node := 0; node < db.Nodes; node++ {
		tb := db.Lineitem[node]
		for i := 0; i < tb.N; i++ {
			b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
			ck, hit := orderCust[b.Int64(0, LOrderKey)]
			if hit && b.Int64(0, LReturnFlag) == ReturnFlagR {
				rev[ck] += b.Float64(0, LExtendedPrice) * (1 - b.Float64(0, LDiscount))
			}
		}
	}
	var revs []float64
	for _, r := range rev {
		revs = append(revs, r)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(revs)))
	if len(revs) > 20 {
		revs = revs[:20]
	}
	return revs
}

func TestQ10MatchesReference(t *testing.T) {
	db := Generate(0.01, 4, Random, 17)
	want := refQ10(db)
	c := cluster.New(quiet(), 4, 4, 5)
	res := RunQ10(c, db, testFactory())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if int(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", res.Rows, len(want))
	}
	tb := res.Result
	for i := 0; i < tb.N; i++ {
		b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
		got := b.Float64(0, 7)
		if math.Abs(got-want[i]) > 1e-6*math.Abs(want[i]) {
			t.Fatalf("row %d: rev = %v, want %v", i, got, want[i])
		}
		if b.Str(0, 6) == "" {
			t.Fatalf("row %d: nation name missing", i)
		}
	}
}

func TestQ4MPIAndLocalOrdering(t *testing.T) {
	// MESQ/SR should beat MPI on Q4, and the co-partitioned local plan
	// should be fastest (nothing to shuffle but the final gather).
	db := Generate(0.02, 4, Random, 11)
	dbLocal := Generate(0.02, 4, CoPartitioned, 11)

	rdma := RunQ4(cluster.New(quiet(), 4, 0, 5), db, testFactory(), false)
	mpiRes := RunQ4(cluster.New(quiet(), 4, 0, 5), db, cluster.MPIProvider(mpiConfig()), false)
	local := RunQ4(cluster.New(quiet(), 4, 0, 5), dbLocal, testFactory(), true)
	for _, r := range []*QueryResult{rdma, mpiRes, local} {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	t.Logf("Q4: local=%v MESQ/SR=%v MPI=%v", local.Elapsed, rdma.Elapsed, mpiRes.Elapsed)
	if !(local.Elapsed <= rdma.Elapsed && rdma.Elapsed < mpiRes.Elapsed) {
		t.Fatalf("ordering violated: local=%v rdma=%v mpi=%v",
			local.Elapsed, rdma.Elapsed, mpiRes.Elapsed)
	}
}

func mpiConfig() mpi.Config  { return mpi.Config{} }
func ipoibCfg() ipoib.Config { return ipoib.Config{} }

// TestQ4AllTransportsAgree runs Q4 over five transports and checks they
// produce identical results.
func TestQ4AllTransportsAgree(t *testing.T) {
	db := Generate(0.01, 4, Random, 23)
	want := refQ4(db)
	factories := map[string]cluster.ProviderFactory{
		"MESQ/SR": cluster.RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 4}),
		"MEMQ/RD": cluster.RDMAProvider(shuffle.Config{Impl: shuffle.MQRD, Endpoints: 4}),
		"MEMQ/WR": cluster.RDMAProvider(shuffle.Config{Impl: shuffle.MQWR, Endpoints: 4}),
		"MPI":     cluster.MPIProvider(mpi.Config{}),
		"IPoIB":   cluster.IPoIBProvider(ipoibCfg()),
	}
	for name, f := range factories {
		c := cluster.New(quiet(), 4, 4, 5)
		res := RunQ4(c, db, f, false)
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		if int(res.Rows) != len(want) {
			t.Fatalf("%s: %d rows, want %d", name, res.Rows, len(want))
		}
		tb := res.Result
		for i := 0; i < tb.N; i++ {
			b := engine.Batch{Sch: tb.Sch, Data: tb.Row(i), N: 1}
			if b.Float64(0, 1) != want[b.Str(0, 0)] {
				t.Fatalf("%s: %s = %v, want %v", name, b.Str(0, 0), b.Float64(0, 1), want[b.Str(0, 0)])
			}
		}
	}
}
