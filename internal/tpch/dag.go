// Declarative TPC-H plans over the DAG execution graph. Each PlanQ*
// builds the same operator trees, partition keys, and exchange patterns as
// the hand-wired RunQ* drivers in queries.go, expressed as stages and
// typed edges: the planner detects broadcast/hash/forward edges from the
// stage shapes, and the gathering final fragment falls out of a
// parallelism-1 stage. The two paths produce byte-identical result tables
// (pinned by dag_test.go), so the hand-wired drivers remain as the
// equivalence oracle while new experiments compose plans declaratively.
package tpch

import (
	"fmt"

	"rshuffle/internal/cluster"
	"rshuffle/internal/dag"
	"rshuffle/internal/engine"
	"rshuffle/internal/ipoib"
	"rshuffle/internal/mpi"
	"rshuffle/internal/shuffle"
)

// TransportFactory maps a transport name — the -transport vocabulary of
// cmd/tpchq, also used by the examples — to a provider factory for the
// given worker thread count (the ME endpoint count).
func TransportFactory(name string, threads int) (cluster.ProviderFactory, error) {
	rdma := func(impl shuffle.Impl, endpoints int) (cluster.ProviderFactory, error) {
		return cluster.RDMAProvider(shuffle.Config{Impl: impl, Endpoints: endpoints}), nil
	}
	switch name {
	case "mesq":
		return rdma(shuffle.SQSR, threads)
	case "sesq":
		return rdma(shuffle.SQSR, 1)
	case "memq":
		return rdma(shuffle.MQSR, threads)
	case "semq":
		return rdma(shuffle.MQSR, 1)
	case "memq-rd":
		return rdma(shuffle.MQRD, threads)
	case "semq-rd":
		return rdma(shuffle.MQRD, 1)
	case "memq-wr":
		return rdma(shuffle.MQWR, threads)
	case "semq-wr":
		return rdma(shuffle.MQWR, 1)
	case "mpi":
		return cluster.MPIProvider(mpi.Config{}), nil
	case "ipoib":
		return cluster.IPoIBProvider(ipoib.Config{}), nil
	}
	return nil, fmt.Errorf("tpch: unknown transport %q", name)
}

// RunPlan executes a declarative plan and adapts the result to the
// QueryResult shape of the hand-wired drivers; the full dag.Result is
// returned alongside for per-edge statistics.
func RunPlan(c *cluster.Cluster, g *dag.Graph, f cluster.ProviderFactory) (*QueryResult, *dag.Result) {
	r := g.Run(c, f)
	return &QueryResult{Elapsed: r.Elapsed, Result: r.Result, Rows: r.Rows, Err: r.Err}, r
}

// Run executes TPC-H query q (3, 4, or 10) through the DAG planner —
// the default execution path of cmd/tpchq and the examples. local selects
// Q4's co-partitioned variant.
func Run(c *cluster.Cluster, db *DB, q int, f cluster.ProviderFactory, local bool) (*QueryResult, *dag.Result, error) {
	if local && q != 4 {
		return nil, nil, fmt.Errorf("tpch: -local is only meaningful for Q4")
	}
	var g *dag.Graph
	switch q {
	case 3:
		g = PlanQ3(db)
	case 4:
		g = PlanQ4(db, local)
	case 10:
		g = PlanQ10(db)
	default:
		return nil, nil, fmt.Errorf("tpch: query must be 3, 4 or 10")
	}
	qr, dr := RunPlan(c, g, f)
	return qr, dr, nil
}

// q4OrdersIn is the filtered, projected ORDERS scan of Q4.
func q4OrdersIn(db *DB, node int) engine.Operator {
	return &engine.Project{
		In: &engine.Filter{
			In: &engine.Scan{T: db.Orders[node]},
			Pred: func(b *engine.Batch, i int) bool {
				d := b.Int64(i, OOrderDate)
				return d >= Date(1993, 7, 1) && d < Date(1993, 10, 1)
			},
		},
		Cols: []int{OOrderKey, OOrderPriority},
	}
}

// q4LineIn is the late-lineitem scan of Q4.
func q4LineIn(db *DB, node int) engine.Operator {
	return &engine.Project{
		In: &engine.Filter{
			In: &engine.Scan{T: db.Lineitem[node]},
			Pred: func(b *engine.Batch, i int) bool {
				return b.Int64(i, LCommitDate) < b.Int64(i, LReceiptDate)
			},
		},
		Cols: []int{LOrderKey},
	}
}

// PlanQ4 builds TPC-H Q4 as a DAG. The distributed variant broadcasts the
// filtered ORDERS columns into a semi join against local LINEITEM
// (replicated edge → Broadcast), deduplicates matched orders with a hash
// edge, and gathers per-priority counts on a parallelism-1 final stage.
// The local variant drops both redistribution edges: the semi join runs
// on co-partitioned data and chains forward into the per-priority count.
func PlanQ4(db *DB, local bool) *dag.Graph {
	g := dag.New()
	var perprio *dag.Stage
	if local {
		match := g.AddStage(dag.Stage{
			Name: "match",
			Build: func(node int, in []engine.Operator) engine.Operator {
				return &engine.HashJoin{
					Build: q4OrdersIn(db, node), Probe: q4LineIn(db, node),
					BuildKey: 0, ProbeKey: 0, Semi: true,
				}
			},
		})
		perprio = g.AddStage(dag.Stage{
			Name: "perprio",
			Build: func(node int, in []engine.Operator) engine.Operator {
				return &engine.HashAgg{In: in[0], KeyCols: []int{1},
					Aggs: []engine.AggSpec{{Kind: engine.AggCount}}}
			},
		})
		g.Connect(match, perprio) // detected: Forward (co-partitioned chaining)
	} else {
		orders := g.AddStage(dag.Stage{
			Name: "orders",
			Build: func(node int, in []engine.Operator) engine.Operator {
				return q4OrdersIn(db, node)
			},
		})
		match := g.AddStage(dag.Stage{
			Name: "match", Stateful: true,
			Build: func(node int, in []engine.Operator) engine.Operator {
				return &engine.HashJoin{
					Build: in[0], Probe: q4LineIn(db, node),
					BuildKey: 0, ProbeKey: 0, Semi: true,
				}
			},
		})
		g.Connect(orders, match, dag.WithReplicated()) // detected: Broadcast
		perprio = g.AddStage(dag.Stage{
			Name: "perprio", Stateful: true,
			Build: func(node int, in []engine.Operator) engine.Operator {
				// Broadcast-side semi joins can match one order on several
				// nodes: deduplicate on (okey, priority) first.
				return &engine.HashAgg{
					In: &engine.HashAgg{In: in[0], KeyCols: []int{0, 1},
						Aggs: []engine.AggSpec{{Kind: engine.AggCount}}},
					KeyCols: []int{1},
					Aggs:    []engine.AggSpec{{Kind: engine.AggCount}},
				}
			},
		})
		g.Connect(match, perprio, dag.WithKey(0)) // detected: Hash
	}
	final := g.AddStage(dag.Stage{
		Name: "final", Parallelism: 1, Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.TopN{
				In: &engine.HashAgg{In: in[0], KeyCols: []int{0},
					Aggs: []engine.AggSpec{sumCol(1)}},
				Less: func(sch *engine.Schema, a, b []byte) bool {
					return string(a[:16]) < string(b[:16]) // priority ascending
				},
			}
		},
	})
	g.Connect(perprio, final, dag.WithKey(0)) // detected: Hash; par 1 gathers
	return g
}

// PlanQ3 builds TPC-H Q3 as a DAG: CUSTOMER and ORDERS hash to the first
// join on customer key, its projected output meets LINEITEM on order key,
// and the grouped revenues gather into the top-ten stage.
func PlanQ3(db *DB) *dag.Graph {
	g := dag.New()
	cust := g.AddStage(dag.Stage{
		Name: "cust",
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Customer[node]},
					Pred: func(b *engine.Batch, i int) bool {
						return b.Int64(i, CMktSegment) == SegBuilding
					},
				},
				Cols: []int{CCustKey},
			}
		},
	})
	ord := g.AddStage(dag.Stage{
		Name: "ord",
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Orders[node]},
					Pred: func(b *engine.Batch, i int) bool {
						return b.Int64(i, OOrderDate) < Date(1995, 3, 15)
					},
				},
				Cols: []int{OCustKey, OOrderKey, OOrderDate, OShipPriority},
			}
		},
	})
	join1 := g.AddStage(dag.Stage{
		Name: "join1", Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			// (custkey) ++ (custkey, okey, odate, shippri); keep the order
			// attributes and re-key on order key.
			return &engine.Project{
				In: &engine.HashJoin{
					Build: in[0], Probe: in[1],
					BuildKey: 0, ProbeKey: 0,
				},
				Cols: []int{2, 3, 4},
			}
		},
	})
	g.Connect(cust, join1, dag.WithKey(0))
	g.Connect(ord, join1, dag.WithKey(0))
	line := g.AddStage(dag.Stage{
		Name: "line",
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Lineitem[node]},
					Pred: func(b *engine.Batch, i int) bool {
						return b.Int64(i, LShipDate) > Date(1995, 3, 15)
					},
				},
				Cols: []int{LOrderKey, LExtendedPrice, LDiscount},
			}
		},
	})
	join2 := g.AddStage(dag.Stage{
		Name: "join2", Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			// (okey, odate, shippri) ++ (okey, price, disc), grouped.
			return &engine.HashAgg{
				In: &engine.HashJoin{
					Build: in[0], Probe: in[1],
					BuildKey: 0, ProbeKey: 0,
				},
				KeyCols: []int{0, 1, 2},
				Aggs:    []engine.AggSpec{revenue(4, 5)},
			}
		},
	})
	g.Connect(join1, join2, dag.WithKey(0))
	g.Connect(line, join2, dag.WithKey(0))
	final := g.AddStage(dag.Stage{
		Name: "final", Parallelism: 1, Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.TopN{
				In: &engine.HashAgg{In: in[0], KeyCols: []int{0, 1, 2},
					Aggs: []engine.AggSpec{sumCol(3)}},
				N: 10,
				Less: func(sch *engine.Schema, a, b []byte) bool {
					fa := f64(engine.RowInt64(sch, a, 3))
					fb := f64(engine.RowInt64(sch, b, 3))
					if fa != fb {
						return fa > fb // revenue descending
					}
					return engine.RowInt64(sch, a, 1) < engine.RowInt64(sch, b, 1)
				},
			}
		},
	})
	g.Connect(join2, final, dag.WithKey(0))
	return g
}

// PlanQ10 builds TPC-H Q10 as a DAG: ORDERS and LINEITEM hash to the
// first join on order key, per-customer revenues meet the local
// customer×nation join on customer key, and the grouped result gathers
// into the top-twenty stage.
func PlanQ10(db *DB) *dag.Graph {
	g := dag.New()
	ord := g.AddStage(dag.Stage{
		Name: "ord",
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Orders[node]},
					Pred: func(b *engine.Batch, i int) bool {
						d := b.Int64(i, OOrderDate)
						return d >= Date(1993, 10, 1) && d < Date(1994, 1, 1)
					},
				},
				Cols: []int{OOrderKey, OCustKey},
			}
		},
	})
	line := g.AddStage(dag.Stage{
		Name: "line",
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.Project{
				In: &engine.Filter{
					In: &engine.Scan{T: db.Lineitem[node]},
					Pred: func(b *engine.Batch, i int) bool {
						return b.Int64(i, LReturnFlag) == ReturnFlagR
					},
				},
				Cols: []int{LOrderKey, LExtendedPrice, LDiscount},
			}
		},
	})
	join1 := g.AddStage(dag.Stage{
		Name: "join1", Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			// (okey, custkey) ++ (okey, price, disc): pre-aggregate revenue
			// per customer before re-keying on customer key.
			return &engine.HashAgg{
				In: &engine.HashJoin{
					Build: in[0], Probe: in[1],
					BuildKey: 0, ProbeKey: 0,
				},
				KeyCols: []int{1}, // custkey
				Aggs:    []engine.AggSpec{revenue(3, 4)},
			}
		},
	})
	g.Connect(ord, join1, dag.WithKey(0))
	g.Connect(line, join1, dag.WithKey(0))
	cust := g.AddStage(dag.Stage{
		Name: "cust",
		Build: func(node int, in []engine.Operator) engine.Operator {
			// Customer ⋈ NATION is local (NATION is replicated); output wide
			// customer attributes keyed by custkey.
			return &engine.Project{
				In: &engine.HashJoin{
					Build: &engine.Scan{T: db.Nation}, Probe: &engine.Scan{T: db.Customer[node]},
					BuildKey: NNationKey, ProbeKey: CNationKey,
				},
				// nation(nk,name,rk) ++ customer(8 cols)
				Cols: []int{3 + CCustKey, 3 + CName, 3 + CAcctBal, 3 + CPhone,
					3 + CAddress, 3 + CComment, NName},
			}
		},
	})
	join2 := g.AddStage(dag.Stage{
		Name: "join2", Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			// customer attrs ++ (custkey, revenue), grouped per customer.
			return &engine.HashAgg{
				In: &engine.HashJoin{
					Build: in[1], Probe: in[0],
					BuildKey: 0, ProbeKey: 0,
				},
				KeyCols: []int{0, 1, 2, 3, 4, 5, 6},
				Aggs:    []engine.AggSpec{sumCol(8)},
			}
		},
	})
	g.Connect(join1, join2, dag.WithKey(0))
	g.Connect(cust, join2, dag.WithKey(0))
	final := g.AddStage(dag.Stage{
		Name: "final", Parallelism: 1, Stateful: true,
		Build: func(node int, in []engine.Operator) engine.Operator {
			return &engine.TopN{
				In: &engine.HashAgg{In: in[0], KeyCols: []int{0, 1, 2, 3, 4, 5, 6},
					Aggs: []engine.AggSpec{sumCol(7)}},
				N: 20,
				Less: func(sch *engine.Schema, a, b []byte) bool {
					return f64(engine.RowInt64(sch, a, 7)) > f64(engine.RowInt64(sch, b, 7))
				},
			}
		},
	})
	g.Connect(join2, final, dag.WithKey(0))
	return g
}
