package experiments

import (
	"fmt"
	"time"

	"rshuffle/internal/cluster"
	"rshuffle/internal/fabric"
	"rshuffle/internal/ipoib"
	"rshuffle/internal/mpi"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
)

// BurnSweep is the Fig. 13 x-axis: average time the receiving fragment
// takes to retrieve (and process) the next 32 KiB batch.
var BurnSweep = []sim.Duration{
	0, 2 * time.Microsecond, 4 * time.Microsecond, 6 * time.Microsecond,
	9 * time.Microsecond, 12 * time.Microsecond, 15 * time.Microsecond,
}

// Fig13 reproduces Figure 13: relative shuffling throughput (shuffle
// throughput over the receiving fragment's processing throughput) as the
// receiving query fragment becomes compute intensive, on 8 EDR nodes.
// 100% means communication completely overlaps computation.
func Fig13(o Options) (*Table, error) {
	prof := fabric.EDR()
	const batchBytes = 32 << 10
	t := &Table{
		ID:    "Figure 13",
		Title: "relative shuffling throughput vs compute intensity, 8 nodes, EDR",
		Unit:  "% of receiving-fragment processing throughput",
	}
	for _, b := range BurnSweep {
		t.Cols = append(t.Cols, fmt.Sprintf("%dus", b/time.Microsecond))
	}

	type entry struct {
		name string
		f    cluster.ProviderFactory
		cfg  shuffle.Config // for workload sizing
	}
	var entries []entry
	for _, a := range shuffle.Algorithms {
		cfg := a.Config(prof.Threads)
		entries = append(entries, entry{a.Name, cluster.RDMAProvider(cfg), cfg})
	}
	entries = append(entries,
		entry{"MPI", cluster.MPIProvider(mpi.Config{}), shuffle.Config{Impl: shuffle.MQSR}},
		entry{"IPoIB", cluster.IPoIBProvider(ipoib.Config{}), shuffle.Config{Impl: shuffle.MQSR}},
	)

	cs := cells{o: o}
	for _, e := range entries {
		row := Row{Name: e.name, Vals: make([]float64, len(BurnSweep))}
		rows, passes := o.workload(e.cfg, prof, 8)
		// This experiment also needs enough 32 KiB batches per receiving
		// thread that per-thread quantization does not mask the overlap.
		batchesPerThread := 50
		if o.Fast {
			batchesPerThread = 25
		}
		if need := batchesPerThread * prof.Threads * (batchBytes / 16); rows*passes < need {
			rows, passes = need, 1
		}
		for i, burn := range BurnSweep {
			cs.add(func() error {
				c := cluster.New(quiet(prof), 8, 0, o.Seed+int64(500+i))
				// The x-axis is the fragment-wide batch-retrieval interval: all
				// threads snatch batches concurrently, so each thread's
				// per-batch burn is threads times the interval.
				res, err := c.RunBench(cluster.BenchOpts{
					Factory: e.f, RowsPerNode: rows, Passes: passes,
					BurnPerBatch: burn * sim.Duration(prof.Threads), ReceiveBatchBytes: batchBytes,
				})
				if err != nil {
					return fmt.Errorf("%s burn=%v: %w", e.name, burn, err)
				}
				if res.Err != nil {
					return fmt.Errorf("%s burn=%v: %w", e.name, burn, res.Err)
				}
				// Processing throughput of the receiving fragment: t threads
				// each consuming one 32 KiB batch per burn period.
				rel := 100.0
				if burn > 0 {
					// Actual burn periods on node 0 (counting partial tail
					// batches), spread over the fragment's threads.
					perThreadBurn := burn * sim.Duration(prof.Threads)
					computeTime := float64(res.BurnBatches) * perThreadBurn.Seconds() / float64(prof.Threads)
					rel = 100 * computeTime / res.Elapsed.Seconds()
				} else {
					// Network-bound leftmost point: shuffle throughput relative
					// to the fragment's peak consumption rate (~50 GiB/s).
					rel = 100 * res.GiBps() / 50
				}
				if rel > 100 {
					rel = 100
				}
				row.Vals[i] = rel
				return nil
			})
		}
		t.Rows = append(t.Rows, row)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: all algorithms are network-bound at the left; MQ/SR and MESQ/SR reach 100% first,",
		"MQ/RD later; MPI and IPoIB never completely overlap communication with computation")
	return t, nil
}
