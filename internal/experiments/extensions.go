package experiments

import (
	"fmt"
	"math"

	"rshuffle/internal/cluster"
	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

// The extension experiments implement the paper's §7 future-work agenda:
// an RDMA Write endpoint, RoCE and iWARP fabrics, and native InfiniBand
// multicast for MESQ/SR broadcast — plus the copy-vs-zero-copy ablation the
// paper discusses in §4.3.1 (citing Kesavan et al.).

// ExtWrite compares the one-sided designs: the paper's RDMA Read endpoints
// against the future-work RDMA Write endpoints, for both patterns on EDR.
func ExtWrite(o Options) ([]*Table, error) {
	prof := fabric.EDR()
	algos := []shuffle.Algorithm{
		{Name: "MEMQ/RD", Impl: shuffle.MQRD, ME: true},
		{Name: "SEMQ/RD", Impl: shuffle.MQRD, ME: false},
		{Name: "MEMQ/WR", Impl: shuffle.MQWR, ME: true},
		{Name: "SEMQ/WR", Impl: shuffle.MQWR, ME: false},
		{Name: "MEMQ/SR", Impl: shuffle.MQSR, ME: true},
	}
	var out []*Table
	cs := cells{o: o}
	for _, pattern := range []string{"repartition", "broadcast"} {
		t := &Table{
			ID:    "Extension: RDMA Write endpoint (" + pattern + ")",
			Title: "one-sided designs on EDR — the paper's first future-work item",
			Unit:  "GiB/s per node",
		}
		nodesSweep := []int{4, 8, 16}
		for _, n := range nodesSweep {
			t.Cols = append(t.Cols, fmt.Sprintf("%dn", n))
		}
		for _, a := range algos {
			row := Row{Name: a.Name, Vals: make([]float64, len(nodesSweep))}
			for i, n := range nodesSweep {
				cs.add(func() error {
					groups := shuffle.Repartition(n)
					if pattern == "broadcast" {
						groups = shuffle.Broadcast(n)
					}
					res, err := o.runThroughput(prof, a.Config(prof.Threads), n, groups, int64(700+i))
					if err != nil {
						return fmt.Errorf("%s %s %dn: %w", a.Name, pattern, n, err)
					}
					row.Vals[i] = res.GiBps()
					return nil
				})
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"WR frees send buffers on local completions, so broadcast does not starve for buffer",
			"returns the way RD does (§5.1.3); data+announcement ride one ordered QP")
		out = append(out, t)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	return out, nil
}

// ExtFabrics runs the designs on RoCE and iWARP (the second future-work
// item). iWARP offers no Unreliable Datagram service, so the SQ/SR designs
// cannot run there.
func ExtFabrics(o Options) (*Table, error) {
	t := &Table{
		ID:    "Extension: RoCE and iWARP",
		Title: "repartition throughput on Ethernet RDMA fabrics, 8 nodes",
		Unit:  "GiB/s per node",
		Cols:  []string{"RoCE", "iWARP"},
	}
	profs := []fabric.Profile{fabric.RoCE(), fabric.IWARP()}
	cs := cells{o: o}
	for _, a := range shuffle.Algorithms {
		row := Row{Name: a.Name, Vals: make([]float64, len(profs))}
		for i, prof := range profs {
			if a.Impl == shuffle.SQSR && !prof.SupportsUD {
				row.Vals[i] = math.NaN()
				continue
			}
			cs.add(func() error {
				res, err := o.runThroughput(prof, a.Config(prof.Threads), 8, nil, int64(800+i))
				if err != nil {
					return fmt.Errorf("%s on %s: %w", a.Name, prof.Name, err)
				}
				row.Vals[i] = res.GiBps()
				return nil
			})
		}
		t.Rows = append(t.Rows, row)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"iWARP has no UD service: the SQ/SR designs (including the paper's winner MESQ/SR)",
		"cannot run there, leaving only the connection-oriented designs")
	return t, nil
}

// ExtMulticast measures MESQ/SR broadcast with native InfiniBand hardware
// multicast (the third future-work item): one work request and one uplink
// serialization per buffer, replicated by the switch.
func ExtMulticast(o Options) (*Table, error) {
	prof := fabric.EDR()
	nodesSweep := []int{4, 8, 16}
	t := &Table{
		ID:    "Extension: native multicast for MESQ/SR broadcast",
		Title: "broadcast with hardware multicast vs software loops, EDR",
		Unit:  "GiB/s per node (tx msgs per node in parentheses rows)",
	}
	for _, n := range nodesSweep {
		t.Cols = append(t.Cols, fmt.Sprintf("%dn", n))
	}
	cs := cells{o: o}
	for _, hw := range []bool{false, true} {
		name := "MESQ/SR"
		if hw {
			name = "MESQ/SR+mcast"
		}
		row := Row{Name: name, Vals: make([]float64, len(nodesSweep))}
		tx := Row{Name: name + " txmsgs", Vals: make([]float64, len(nodesSweep))}
		for i, n := range nodesSweep {
			cs.add(func() error {
				cfg := shuffle.Config{Impl: shuffle.SQSR, Endpoints: prof.Threads, HWMulticast: hw}
				rows, passes := o.workloadFor(cfg, prof, n, shuffle.Broadcast(n))
				c := cluster.New(quiet(prof), n, 0, o.Seed+int64(900+i))
				res, err := c.RunBench(cluster.BenchOpts{
					Factory: cluster.RDMAProvider(cfg), RowsPerNode: rows, Passes: passes,
					Groups: shuffle.Broadcast(n),
				})
				if err != nil {
					return err
				}
				if res.Err != nil {
					return res.Err
				}
				row.Vals[i] = res.GiBps()
				tx.Vals[i] = float64(c.Net.Stats(0).TxMessages)
				return nil
			})
		}
		t.Rows = append(t.Rows, row, tx)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the paper hypothesizes multicast reduces CPU cost since MESQ/SR already runs at line",
		"rate: transmitted messages (and send WQEs) drop by ~the cluster size")
	return t, nil
}

// ExtZeroCopy reproduces the §4.3.1 design discussion: copying tuples into
// registered buffers versus zero-copy sends that need one scatter/gather
// element per record. Small records favour copying (Kesavan et al.).
func ExtZeroCopy(o Options) (*Table, error) {
	prof := fabric.EDR()
	widths := []int{16, 64, 144, 272, 528}
	t := &Table{
		ID:    "Extension: copy vs zero-copy sends",
		Title: "MEMQ/SR repartition throughput by record width, 8 nodes, EDR",
		Unit:  "GiB/s per node",
	}
	for _, w := range widths {
		t.Cols = append(t.Cols, fmt.Sprintf("%dB", w))
	}
	cs := cells{o: o}
	for _, zc := range []bool{false, true} {
		name := "copy"
		if zc {
			name = "zero-copy"
		}
		row := Row{Name: name, Vals: make([]float64, len(widths))}
		for i, w := range widths {
			cs.add(func() error {
				cfg := shuffle.Config{Impl: shuffle.MQSR, Endpoints: prof.Threads}
				rows, passes := o.workload(cfg, prof, 8)
				rows = rows * 16 / w // keep byte volume comparable
				if rows < 200_000 {
					rows = 200_000
				}
				c := cluster.New(quiet(prof), 8, 0, o.Seed+int64(950+i))
				res, err := c.RunBench(cluster.BenchOpts{
					Factory: cluster.RDMAProvider(cfg), RowsPerNode: rows, Passes: passes,
					RowWidth: w, ZeroCopy: zc,
				})
				if err != nil {
					return err
				}
				if res.Err != nil {
					return res.Err
				}
				row.Vals[i] = res.GiBps()
				return nil
			})
		}
		t.Rows = append(t.Rows, row)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the paper always copies: tuples are ~16-200 B, and zero copy shows little benefit for",
		"small records because each record costs a gather element (~60 ns) instead of its copy")
	return t, nil
}

// ExtQPCache ablates the NIC Queue-Pair state cache, the mechanism this
// reproduction attributes the paper's FDR scale-out degradation to: MEMQ/SR
// on 16 nodes uses 448 QPs per node, and throughput tracks how many of them
// the NIC can cache.
func ExtQPCache(o Options) (*Table, error) {
	sizes := []int{16, 48, 128, 512, 2048}
	t := &Table{
		ID:    "Ablation: NIC QP-state cache size",
		Title: "MEMQ/SR and MESQ/SR repartition on 16 FDR-class nodes vs cache capacity",
		Unit:  "GiB/s per node",
	}
	for _, s := range sizes {
		t.Cols = append(t.Cols, fmt.Sprintf("%dQPs", s))
	}
	cs := cells{o: o}
	for _, a := range []shuffle.Algorithm{
		{Name: "MEMQ/SR", Impl: shuffle.MQSR, ME: true},
		{Name: "MESQ/SR", Impl: shuffle.SQSR, ME: true},
	} {
		row := Row{Name: a.Name, Vals: make([]float64, len(sizes))}
		for i, size := range sizes {
			cs.add(func() error {
				prof := fabric.FDR()
				prof.QPCacheSize = size
				res, err := o.runThroughput(prof, a.Config(prof.Threads), 16, nil, int64(980+i))
				if err != nil {
					return err
				}
				row.Vals[i] = res.GiBps()
				return nil
			})
		}
		t.Rows = append(t.Rows, row)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"MEMQ/SR recovers its line-rate throughput once the cache holds its 448 QP states;",
		"MESQ/SR is insensitive because it uses 14 QPs regardless of cluster size (Table 1)")
	return t, nil
}

// ExtProfile reproduces the paper's §5.1.3 profiling analysis: on the
// sending side the most CPU-intensive activity is hashing tuples and
// copying them into registered memory, yet a sizable fraction of cycles is
// idle; the receiving side is blocked on completions for up to 90% of its
// cycles.
func ExtProfile(o Options) (*Table, error) {
	prof := fabric.EDR()
	t := &Table{
		ID:    "Profiling (§5.1.3)",
		Title: "worker busy fraction during 8-node EDR repartition",
		Unit:  "% of worker time on CPU work (rest blocked)",
		Cols:  []string{"sender", "receiver"},
	}
	t.Rows = make([]Row, len(shuffle.Algorithms))
	cs := cells{o: o}
	for ai, a := range shuffle.Algorithms {
		t.Rows[ai] = Row{Name: a.Name, Vals: make([]float64, 2)}
		cs.add(func() error {
			res, err := o.runThroughput(prof, a.Config(prof.Threads), 8, nil, 990)
			if err != nil {
				return err
			}
			t.Rows[ai].Vals[0] = 100 * res.SendBusyFrac
			t.Rows[ai].Vals[1] = 100 * res.RecvBusyFrac
			return nil
		})
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: senders hash+copy but still idle ~30% of cycles; MEMQ/SR and MESQ/SR block on",
		"credit, the others on pending RDMA operations; receivers are blocked up to 90%")
	return t, nil
}

// ExtSkew studies the designs under Zipf-skewed partitioning keys: hot
// receivers throttle every sender through flow control, the problem the
// flow-join line of work (paper §6) addresses above the transport.
func ExtSkew(o Options) (*Table, error) {
	prof := fabric.EDR()
	exps := []float64{0, 0.4, 0.8, 1.2}
	t := &Table{
		ID:    "Study: skewed partitioning keys",
		Title: "repartition throughput under Zipf key skew, 8 nodes, EDR",
		Unit:  "GiB/s per node (mean)",
	}
	for _, e := range exps {
		label := "uniform"
		if e > 0 {
			label = fmt.Sprintf("zipf %.1f", e)
		}
		t.Cols = append(t.Cols, label)
	}
	cs := cells{o: o}
	for _, a := range []shuffle.Algorithm{
		{Name: "MESQ/SR", Impl: shuffle.SQSR, ME: true},
		{Name: "MEMQ/SR", Impl: shuffle.MQSR, ME: true},
		{Name: "MEMQ/RD", Impl: shuffle.MQRD, ME: true},
	} {
		row := Row{Name: a.Name, Vals: make([]float64, len(exps))}
		for i, ex := range exps {
			cs.add(func() error {
				cfg := a.Config(prof.Threads)
				rows, passes := o.workload(cfg, prof, 8)
				c := cluster.New(quiet(prof), 8, 0, o.Seed+int64(1100+i))
				res, err := c.RunBench(cluster.BenchOpts{
					Factory: cluster.RDMAProvider(cfg), RowsPerNode: rows, Passes: passes,
					ZipfExponent: ex,
				})
				if err != nil {
					return err
				}
				if res.Err != nil {
					return res.Err
				}
				row.Vals[i] = res.GiBps()
				return nil
			})
		}
		t.Rows = append(t.Rows, row)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"skew concentrates traffic on hot receivers whose downlinks saturate while others idle;",
		"the transport cannot fix this — the paper cites track-join/flow-join as the remedy")
	return t, nil
}
