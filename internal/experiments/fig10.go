package experiments

import (
	"fmt"

	"rshuffle/internal/cluster"
	"rshuffle/internal/fabric"
	"rshuffle/internal/ipoib"
	"rshuffle/internal/mpi"
	"rshuffle/internal/qperf"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
)

// ScaleOutNodes is the Fig. 10 cluster-size sweep.
var ScaleOutNodes = []int{2, 4, 8, 16}

// Fig10 reproduces Figure 10: per-node receive throughput of the six RDMA
// designs plus MPI and IPoIB as the cluster grows, for the repartition and
// broadcast patterns on both FDR and EDR.
func Fig10(o Options) ([]*Table, error) {
	var out []*Table
	cs := cells{o: o}
	subs := []string{"(a)", "(b)", "(c)", "(d)"}
	si := 0
	for _, prof := range []fabric.Profile{fabric.FDR(), fabric.EDR()} {
		for _, pattern := range []string{"repartition", "broadcast"} {
			t := &Table{
				ID:    "Figure 10" + subs[si],
				Title: fmt.Sprintf("%s throughput vs cluster size, %s", pattern, prof.Name),
				Unit:  "GiB/s per node",
			}
			si++
			for _, n := range ScaleOutNodes {
				t.Cols = append(t.Cols, fmt.Sprintf("%dn", n))
			}
			groupsFor := func(n int) shuffle.Groups {
				if pattern == "broadcast" {
					return shuffle.Broadcast(n)
				}
				return shuffle.Repartition(n)
			}
			for _, a := range shuffle.Algorithms {
				row := Row{Name: a.Name, Vals: make([]float64, len(ScaleOutNodes))}
				for i, n := range ScaleOutNodes {
					cs.add(func() error {
						cfg := a.Config(prof.Threads)
						res, err := o.runThroughput(prof, cfg, n, groupsFor(n), int64(200+i))
						if err != nil {
							return fmt.Errorf("%s %s %dn: %w", a.Name, pattern, n, err)
						}
						row.Vals[i] = res.GiBps()
						return nil
					})
				}
				t.Rows = append(t.Rows, row)
			}
			for _, base := range []struct {
				name string
				f    cluster.ProviderFactory
			}{
				{"MPI", cluster.MPIProvider(mpi.Config{})},
				{"IPoIB", cluster.IPoIBProvider(ipoib.Config{})},
			} {
				row := Row{Name: base.name, Vals: make([]float64, len(ScaleOutNodes))}
				for i, n := range ScaleOutNodes {
					cs.add(func() error {
						rows, passes := o.workloadFor(shuffle.Config{Impl: shuffle.MQSR}, prof, n, groupsFor(n))
						res, err := o.runFactory(prof, base.f, n, rows, passes, groupsFor(n), int64(300+i))
						if err != nil {
							return fmt.Errorf("%s %s %dn: %w", base.name, pattern, n, err)
						}
						row.Vals[i] = res.GiBps()
						return nil
					})
				}
				t.Rows = append(t.Rows, row)
			}
			if pattern == "repartition" {
				row := Row{Name: "qperf", Vals: make([]float64, len(ScaleOutNodes))}
				cs.add(func() error {
					q := qperf.Run(prof, 64<<10, 1<<30).GiBps()
					for i := range row.Vals {
						row.Vals[i] = q
					}
					return nil
				})
				t.Rows = append(t.Rows, row)
				t.Notes = append(t.Notes, "qperf measures a single pair and is shown as a constant line")
			}
			out = append(out, t)
		}
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig11 reproduces Figure 11: receive throughput on 16 EDR nodes as the
// number of Queue Pairs per operator varies, by sweeping the endpoint count
// e for each implementation (SE = 1, ME = t, and intermediate values).
func Fig11(o Options) (*Table, error) {
	prof := fabric.EDR()
	endpoints := []int{1, 2, 7, 14}
	t := &Table{
		ID:    "Figure 11",
		Title: "throughput vs Queue Pairs per operator, 16 nodes, EDR (repartition)",
		Unit:  "GiB/s per node",
	}
	impls := []struct {
		name string
		impl shuffle.Impl
	}{
		{"SQ/SR", shuffle.SQSR},
		{"MQ/SR", shuffle.MQSR},
		{"MQ/RD", shuffle.MQRD},
	}
	for _, e := range endpoints {
		t.Cols = append(t.Cols, fmt.Sprintf("e=%d", e))
	}
	cs := cells{o: o}
	for _, im := range impls {
		row := Row{Name: im.name, Vals: make([]float64, len(endpoints))}
		qps := Row{Name: im.name + " QPs", Vals: make([]float64, len(endpoints))}
		for i, e := range endpoints {
			cs.add(func() error {
				cfg := shuffle.Config{Impl: im.impl, Endpoints: e}
				res, err := o.runThroughput(prof, cfg, 16, nil, int64(400+i))
				if err != nil {
					return fmt.Errorf("%s e=%d: %w", im.name, e, err)
				}
				row.Vals[i] = res.GiBps()
				qps.Vals[i] = float64(res.QPsPerOperator)
				return nil
			})
		}
		t.Rows = append(t.Rows, row, qps)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"QPs per operator: e for SQ, e*n for MQ — the paper's x-axis values 1,2,7,14,16,32,112,224",
		"paper: MESQ/SR reaches higher throughput with far fewer Queue Pairs than the MQ designs")
	return t, nil
}

// Fig12 reproduces Figure 12: time to build the RDMA connections as the
// cluster size grows, per algorithm.
func Fig12(o Options) (*Table, error) {
	prof := fabric.EDR()
	sizes := []int{2, 4, 6, 8, 10, 12, 14, 16}
	t := &Table{
		ID:    "Figure 12",
		Title: "time to build RDMA connections vs cluster size, EDR",
		Unit:  "ms",
	}
	for _, n := range sizes {
		t.Cols = append(t.Cols, fmt.Sprintf("%dn", n))
	}
	cs := cells{o: o}
	for _, a := range shuffle.Algorithms {
		row := Row{Name: a.Name, Vals: make([]float64, len(sizes))}
		for i, n := range sizes {
			cs.add(func() error {
				c := cluster.New(quiet(prof), n, 0, o.Seed)
				c.Sim.Spawn("setup", func(p *sim.Proc) {
					comm := shuffle.Build(p, c.Devs, a.Config(prof.Threads), c.Threads)
					row.Vals[i] = comm.SetupTime.Seconds() * 1e3
				})
				return c.Sim.Run()
			})
		}
		t.Rows = append(t.Rows, row)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: ME algorithms connect more endpoints than SE; MQ grows linearly with cluster size,",
		"SQ stays flat — MESQ/SR stays under 40 ms; memory (de)registration is separate and <5 ms")
	return t, nil
}
