package experiments

// Runner executes one exhibit's reproduction and returns its tables.
type Runner func(Options) ([]*Table, error)

func single(f func(Options) (*Table, error)) Runner {
	return func(o Options) ([]*Table, error) {
		t, err := f(o)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Experiment names one reproducible exhibit.
type Experiment struct {
	Name string // CLI name, e.g. "fig10"
	What string
	Run  Runner
}

// All lists every exhibit of the paper's evaluation in order.
var All = []Experiment{
	{"table1", "design-space summary and Queue Pair census", single(Table1)},
	{"fig08", "credit write-back frequency sweep (FDR and EDR)", Fig08},
	{"fig09", "message size: throughput and registered memory", Fig09},
	{"fig10", "scale-out: repartition and broadcast on FDR and EDR", Fig10},
	{"fig11", "effect of the number of Queue Pairs", single(Fig11)},
	{"fig12", "RDMA connection setup time", single(Fig12)},
	{"fig13", "compute-intensive receiving fragments", single(Fig13)},
	{"fig14a", "TPC-H Q4 under a network upgrade", single(Fig14a)},
	{"fig14bcd", "TPC-H Q4/Q3/Q10 scale-out", Fig14bcd},
	{"ext-write", "future work: RDMA Write endpoint", ExtWrite},
	{"ext-fabrics", "future work: RoCE and iWARP fabrics", single(ExtFabrics)},
	{"ext-mcast", "future work: native multicast broadcast", single(ExtMulticast)},
	{"ext-zerocopy", "ablation: copy vs zero-copy sends", single(ExtZeroCopy)},
	{"ext-qpcache", "ablation: NIC QP-state cache capacity", single(ExtQPCache)},
	{"ext-profile", "profiling: worker busy vs blocked fractions (§5.1.3)", single(ExtProfile)},
	{"ext-skew", "study: Zipf-skewed partitioning keys", single(ExtSkew)},
	{"ext-lossy", "extension: lossy RoCEv2 tier (PFC/ECN/DCQCN)", ExtLossy},
	{"ext-dag", "extension: shuffle-aware DAG multi-stage plans (per-edge transports)", single(ExtDag)},
}

// Find returns the named experiment, or nil.
func Find(name string) *Experiment {
	for i := range All {
		if All[i].Name == name {
			return &All[i]
		}
	}
	return nil
}
