// Package experiments reproduces every table and figure of the paper's
// evaluation (§5): one driver per exhibit, each printing the same rows and
// series the paper reports, measured in virtual time on the simulated
// cluster. Absolute numbers depend on the calibrated cost model; the shapes
// (who wins, by how much, where the crossovers fall) are the reproduction
// targets recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"rshuffle/internal/cluster"
	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

// Options configures a reproduction run.
type Options struct {
	// Fast shrinks data volumes for CI-speed runs; the full volumes give
	// smoother steady-state numbers.
	Fast bool
	// Seed for the simulations.
	Seed int64
	// Workers selects the cell execution mode: 1 runs every simulation cell
	// serially on the calling goroutine (the reference path); any other
	// value fans independent cells out across a process-wide GOMAXPROCS
	// worker pool. Both modes produce byte-identical tables — each cell is
	// its own deterministic Simulation and parallelism only moves wall-clock
	// time (see pool.go).
	Workers int
	// ParallelLPs > 0 runs each whole-query cell on the conservative PDES
	// engine with that many logical partitions (see internal/sim/pdes.go);
	// results stay byte-identical at every LP count. Complementary to
	// Workers: cell-parallel sweeps spread *independent* simulations over
	// cores, LP-parallelism spreads *one big* simulation — combine with
	// Workers=1 to give a single large run the whole machine. Lossy-profile
	// cells ignore the setting (the partitioned fabric is lossless-only).
	ParallelLPs int
}

// newCluster boots one experiment cell, on the PDES engine when the run
// asked for logical partitions and the profile allows it.
func (o Options) newCluster(prof fabric.Profile, nodes, threads int, seed int64) *cluster.Cluster {
	lps := o.ParallelLPs
	if prof.Lossy {
		lps = 0
	}
	return cluster.NewWithOptions(prof, nodes, threads, seed,
		cluster.SimOptions{ParallelLPs: lps})
}

// fills is the steady-state target: how many times each (thread,
// destination) stream should fill its transmission buffer.
func (o Options) fills() int {
	if o.Fast {
		return 6
	}
	return 20
}

// workload returns RowsPerNode and Passes for a steady-state run of the
// given configuration, capping resident table size.
func (o Options) workload(cfg shuffle.Config, prof fabric.Profile, nodes int) (rows, passes int) {
	cfg = cfg.Defaulted()
	bufTuples := (cfg.BufSize - shuffle.HeaderSize) / 16
	if cfg.Impl == shuffle.SQSR {
		bufTuples = (prof.MTU - shuffle.HeaderSize) / 16
	}
	need := o.fills() * prof.Threads * nodes * bufTuples
	const maxRows = 4_000_000 // 64 MiB per node resident
	rows = need
	passes = 1
	for rows > maxRows {
		passes++
		rows = need / passes
	}
	// Keep at least ~16 MiB per node so the measurement is past the ramp.
	if rows < 1_000_000 {
		rows = 1_000_000
	}
	return rows, passes
}

// Row is one series of an experiment table.
type Row struct {
	Name string
	Vals []float64
}

// Table is one exhibit's result in a printable form.
type Table struct {
	ID    string // "Figure 8(a)"
	Title string
	Unit  string
	Cols  []string
	Rows  []Row
	Notes []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, " [%s]", t.Unit)
	}
	b.WriteByte('\n')
	name := 10
	for _, r := range t.Rows {
		if len(r.Name) > name {
			name = len(r.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s", name+2, "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%10s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", name+2, r.Name)
		for _, v := range r.Vals {
			switch {
			case v != v: // NaN marks a cell the paper leaves empty
				fmt.Fprintf(&b, "%10s", "-")
			case v >= 1000:
				fmt.Fprintf(&b, "%10.0f", v)
			default:
				fmt.Fprintf(&b, "%10.2f", v)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// quiet disables UD reordering randomness for smoother sweeps; correctness
// under reordering is covered by the test suite.
func quiet(p fabric.Profile) fabric.Profile {
	p.UDReorderProb = 0
	return p
}

// tuneRecvWindow caps the per-source receive window so that large message
// sizes keep the resident set bounded (the real clusters had 64-128 GiB per
// node; the simulator shares one machine).
func tuneRecvWindow(cfg shuffle.Config, prof fabric.Profile, nodes int) shuffle.Config {
	c := cfg.Defaulted()
	if c.Impl == shuffle.SQSR {
		return c
	}
	const budget = 160 << 20 // per-node receive-window budget
	// Per node, every thread holds RecvBuffersPerPeer slots per source
	// regardless of how threads map to endpoints.
	rbp := budget / (prof.Threads * nodes * c.BufSize)
	if rbp > c.RecvBuffersPerPeer {
		rbp = c.RecvBuffersPerPeer
	}
	if rbp < 2 {
		rbp = 2
	}
	c.RecvBuffersPerPeer = rbp
	return c
}

// workloadFor is workload adjusted for the transmission pattern: broadcast
// multiplies received volume by the fan-out, so the source table shrinks
// accordingly to keep simulated traffic comparable.
func (o Options) workloadFor(cfg shuffle.Config, prof fabric.Profile, nodes int, groups shuffle.Groups) (rows, passes int) {
	rows, passes = o.workload(cfg, prof, nodes)
	fanout := 1
	for _, g := range groups {
		if len(g) > fanout {
			fanout = len(g)
		}
	}
	if fanout > 1 {
		rows /= fanout
		if rows < 150_000 {
			rows = 150_000
		}
	}
	return rows, passes
}

// runThroughput executes one receive-throughput cell and returns GiB/s per
// node.
func (o Options) runThroughput(prof fabric.Profile, cfg shuffle.Config, nodes int, groups shuffle.Groups, seedOff int64) (*cluster.BenchResult, error) {
	cfg = tuneRecvWindow(cfg, prof, nodes)
	rows, passes := o.workloadFor(cfg, prof, nodes, groups)
	c := o.newCluster(quiet(prof), nodes, 0, o.Seed+seedOff)
	res, err := c.RunBench(cluster.BenchOpts{
		Factory:     cluster.RDMAProvider(cfg),
		RowsPerNode: rows,
		Passes:      passes,
		Groups:      groups,
	})
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, res.Err
	}
	return res, nil
}

// runFactory is runThroughput for non-RDMA transports.
func (o Options) runFactory(prof fabric.Profile, f cluster.ProviderFactory, nodes, rows, passes int, groups shuffle.Groups, seedOff int64) (*cluster.BenchResult, error) {
	c := o.newCluster(quiet(prof), nodes, 0, o.Seed+seedOff)
	res, err := c.RunBench(cluster.BenchOpts{
		Factory: f, RowsPerNode: rows, Passes: passes, Groups: groups,
	})
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, res.Err
	}
	return res, nil
}

// fourSRAlgos are the Send/Receive designs swept in Fig. 8.
var fourSRAlgos = []shuffle.Algorithm{
	{Name: "SEMQ/SR", Impl: shuffle.MQSR, ME: false},
	{Name: "MEMQ/SR", Impl: shuffle.MQSR, ME: true},
	{Name: "SESQ/SR", Impl: shuffle.SQSR, ME: false},
	{Name: "MESQ/SR", Impl: shuffle.SQSR, ME: true},
}
