package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunJobsSemantics covers the pool contract both drivers rely on: serial
// mode preserves order and short-circuits, parallel mode runs every job and
// reports the earliest job's error (what a serial run would have seen).
func TestRunJobsSemantics(t *testing.T) {
	var order []int
	serial := Options{Workers: 1}
	err := serial.runJobs([]func() error{
		func() error { order = append(order, 0); return nil },
		func() error { order = append(order, 1); return nil },
		func() error { order = append(order, 2); return nil },
	})
	if err != nil || len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("serial mode: err=%v order=%v", err, order)
	}

	ran := 0
	errB := errors.New("b")
	err = serial.runJobs([]func() error{
		func() error { ran++; return errB },
		func() error { ran++; return nil },
	})
	if err != errB || ran != 1 {
		t.Fatalf("serial mode should short-circuit: err=%v ran=%d", err, ran)
	}

	var count atomic.Int32
	pooled := Options{Workers: 0}
	errA, errC := errors.New("a"), errors.New("c")
	jobs := []func() error{
		func() error { count.Add(1); return nil },
		func() error { count.Add(1); return errA },
		func() error { count.Add(1); return nil },
		func() error { count.Add(1); return errC },
	}
	if err := pooled.runJobs(jobs); err != errA {
		t.Fatalf("pooled mode should report the earliest error, got %v", err)
	}
	if count.Load() != 4 {
		t.Fatalf("pooled mode should run every job, ran %d", count.Load())
	}
}

// TestParallelMatchesSerial is the determinism acceptance check: the pooled
// driver must produce byte-identical tables to the serial reference path.
// Every cell owns a private Simulation, so completion order cannot leak into
// the assembled rows.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	exhibits := []struct {
		name string
		run  func(Options) (*Table, error)
	}{
		{"table1", Table1},
		{"fig14a", Fig14a},
	}
	for _, ex := range exhibits {
		serialT, err := ex.run(Options{Fast: true, Seed: 7, Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", ex.name, err)
		}
		pooledT, err := ex.run(Options{Fast: true, Seed: 7, Workers: 0})
		if err != nil {
			t.Fatalf("%s pooled: %v", ex.name, err)
		}
		if s, p := serialT.Format(), pooledT.Format(); s != p {
			t.Fatalf("%s: pooled table differs from serial reference\nserial:\n%s\npooled:\n%s", ex.name, s, p)
		}
	}
}
