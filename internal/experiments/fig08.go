package experiments

import (
	"fmt"
	"math"

	"rshuffle/internal/cluster"
	"rshuffle/internal/fabric"
	"rshuffle/internal/mpi"
	"rshuffle/internal/qperf"
	"rshuffle/internal/shuffle"
)

// CreditFrequencies is the Fig. 8 sweep.
var CreditFrequencies = []int{1, 2, 3, 4, 8, 16}

// Fig08 reproduces Figure 8: receive throughput of the four Send/Receive
// algorithms on 8 nodes as the credit write-back frequency varies, with the
// MPI and qperf reference lines, for FDR (a) and EDR (b).
func Fig08(o Options) ([]*Table, error) {
	var out []*Table
	cs := cells{o: o}
	for _, prof := range []fabric.Profile{fabric.FDR(), fabric.EDR()} {
		sub := "(a)"
		if prof.Name == "EDR" {
			sub = "(b)"
		}
		t := &Table{
			ID:    "Figure 8" + sub,
			Title: fmt.Sprintf("receive throughput vs credit write-back frequency, 8 nodes, %s", prof.Name),
			Unit:  "GiB/s per node",
		}
		for _, f := range CreditFrequencies {
			t.Cols = append(t.Cols, fmt.Sprintf("f=%d", f))
		}
		for _, a := range fourSRAlgos {
			row := Row{Name: a.Name, Vals: make([]float64, len(CreditFrequencies))}
			for i, f := range CreditFrequencies {
				cs.add(func() error {
					cfg := a.Config(prof.Threads)
					cfg.CreditFrequency = f
					res, err := o.runThroughput(prof, cfg, 8, nil, int64(i))
					if err != nil {
						return fmt.Errorf("%s f=%d: %w", a.Name, f, err)
					}
					row.Vals[i] = res.GiBps()
					return nil
				})
			}
			t.Rows = append(t.Rows, row)
		}

		// Reference lines: MPI (frequency-independent) and qperf.
		mrow := Row{Name: "MPI", Vals: make([]float64, len(CreditFrequencies))}
		qrow := Row{Name: "qperf", Vals: make([]float64, len(CreditFrequencies))}
		cs.add(func() error {
			rows, passes := o.workload(shuffle.Config{Impl: shuffle.MQSR}, prof, 8)
			mres, err := o.runFactory(prof, cluster.MPIProvider(mpi.Config{}), 8, rows, passes, nil, 99)
			if err != nil {
				return err
			}
			for i := range mrow.Vals {
				mrow.Vals[i] = mres.GiBps()
			}
			return nil
		})
		cs.add(func() error {
			q := qperf.Run(prof, 64<<10, 1<<30).GiBps()
			for i := range qrow.Vals {
				qrow.Vals[i] = q
			}
			return nil
		})
		t.Rows = append(t.Rows, mrow, qrow)
		t.Notes = append(t.Notes,
			"paper: degradation from the credit mechanism is not significant; frequency fixed to 2")
		out = append(out, t)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig09 reproduces Figure 9: the effect of message size under the Reliable
// Connection transport on EDR, 8 nodes — (a) receive throughput and (b)
// RDMA-registered memory of one shuffle operator.
func Fig09(o Options) ([]*Table, error) {
	sizes := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	prof := fabric.EDR()
	algos := []shuffle.Algorithm{
		{Name: "MEMQ/RD", Impl: shuffle.MQRD, ME: true},
		{Name: "SEMQ/RD", Impl: shuffle.MQRD, ME: false},
		{Name: "MEMQ/SR", Impl: shuffle.MQSR, ME: true},
		{Name: "SEMQ/SR", Impl: shuffle.MQSR, ME: false},
		{Name: "MESQ/SR", Impl: shuffle.SQSR, ME: true},
		{Name: "SESQ/SR", Impl: shuffle.SQSR, ME: false},
	}
	thr := &Table{
		ID:    "Figure 9(a)",
		Title: "receive throughput vs message size, 8 nodes, EDR",
		Unit:  "GiB/s per node",
	}
	mem := &Table{
		ID:    "Figure 9(b)",
		Title: "registered memory of one send operator vs message size",
		Unit:  "MiB",
	}
	for _, s := range sizes {
		col := fmt.Sprintf("%dKiB", s>>10)
		if s >= 1<<20 {
			col = fmt.Sprintf("%dMiB", s>>20)
		}
		thr.Cols = append(thr.Cols, col)
		mem.Cols = append(mem.Cols, col)
	}
	cs := cells{o: o}
	for _, a := range algos {
		trow := Row{Name: a.Name, Vals: make([]float64, len(sizes))}
		mrow := Row{Name: a.Name, Vals: make([]float64, len(sizes))}
		for i, s := range sizes {
			if a.Impl == shuffle.SQSR && s != sizes[0] {
				// UD is capped at the MTU: a single point, as in the paper.
				trow.Vals[i] = math.NaN()
				mrow.Vals[i] = math.NaN()
				continue
			}
			cs.add(func() error {
				cfg := a.Config(prof.Threads)
				cfg.BufSize = s
				res, err := o.runThroughput(prof, cfg, 8, nil, int64(100+i))
				if err != nil {
					return fmt.Errorf("%s size=%d: %w", a.Name, s, err)
				}
				trow.Vals[i] = res.GiBps()
				mrow.Vals[i] = float64(res.SendMemoryPerNode) / (1 << 20)
				return nil
			})
		}
		thr.Rows = append(thr.Rows, trow)
		mem.Rows = append(mem.Rows, mrow)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	thr.Notes = append(thr.Notes,
		"paper: SE throughput rises with message size then drops past the peak; ME stays stable",
		"message size fixed to 64 KiB for RC algorithms thereafter")
	mem.Notes = append(mem.Notes,
		"paper: UD needs under ~1 MiB of pinned memory; RC at 1 MiB messages exceeds 100 MiB")
	return []*Table{thr, mem}, nil
}
