package experiments

import (
	"fmt"

	"rshuffle/internal/cluster"
	"rshuffle/internal/dag"
	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

// ExtDag runs the multi-stage demo plan (partial aggregation → hash
// re-shuffle → join → broadcast) of internal/dag under each of the six
// Table 1 designs, plus one run that mixes transports per edge — the
// planner picks a different algorithm (and so RC vs UD) for every shuffle
// edge of the same query. The per-edge traffic columns come from the DAG
// runner's edge statistics; they are identical across algorithms because
// the plan, not the transport, determines what moves.
func ExtDag(o Options) (*Table, error) {
	prof := fabric.EDR()
	const nodes = 8
	factRows, dimRows := 40_000, 2_000
	if o.Fast {
		factRows, dimRows = 5_000, 500
	}
	fact, dim := dag.DemoTables(nodes, factRows, dimRows, 7)

	t := &Table{
		ID:    "Extension: shuffle-aware DAG execution graph",
		Title: fmt.Sprintf("multi-stage plan (partial agg → join → broadcast), %d nodes, EDR", nodes),
		Cols:  []string{"ms", "krows", "MiB", "kWQE"},
	}

	type variant struct {
		name  string
		tweak func(g *dag.Graph)
	}
	variants := make([]variant, 0, len(shuffle.Algorithms)+1)
	for _, a := range shuffle.Algorithms {
		a := a
		variants = append(variants, variant{a.Name, func(g *dag.Graph) {
			for _, e := range g.Edges() {
				e.SetAlgorithm(a, prof.Threads)
			}
		}})
	}
	// Mixed transports: RC for the hash re-shuffles, UD for the broadcast.
	variants = append(variants, variant{"mixed", func(g *dag.Graph) {
		es := g.Edges()
		es[0].SetAlgorithm(shuffle.Algorithm{Name: "MEMQ/SR", Impl: shuffle.MQSR, ME: true}, prof.Threads)
		es[1].SetAlgorithm(shuffle.Algorithm{Name: "MEMQ/RD", Impl: shuffle.MQRD, ME: true}, prof.Threads)
		es[2].SetAlgorithm(shuffle.Algorithm{Name: "MESQ/SR", Impl: shuffle.SQSR, ME: true}, prof.Threads)
	}})

	t.Rows = make([]Row, len(variants))
	cs := cells{o: o}
	for i, v := range variants {
		i, v := i, v
		cs.add(func() error {
			c := cluster.New(quiet(prof), nodes, 0, o.Seed+int64(990+i))
			g := dag.MultiStageDemo(fact, dim)
			v.tweak(g)
			res := g.Run(c, cluster.RDMAProvider(shuffle.Config{Impl: shuffle.MQSR, Endpoints: prof.Threads}))
			if res.Err != nil {
				return fmt.Errorf("%s: %w", v.name, res.Err)
			}
			var rows, bytes, wrs int64
			for _, e := range res.Edges {
				rows += e.Rows
				bytes += e.Bytes
				wrs += e.WRs
			}
			t.Rows[i] = Row{Name: v.name, Vals: []float64{
				float64(res.Elapsed.Microseconds()) / 1e3,
				float64(rows) / 1e3,
				float64(bytes) / (1 << 20),
				float64(wrs) / 1e3,
			}}
			if i == 0 {
				for _, e := range res.Edges {
					t.Notes = append(t.Notes, fmt.Sprintf("edge %s (%s): %d rows, %d bytes",
						e.Edge, e.Type, e.Rows, e.Bytes))
				}
			}
			return nil
		})
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	return t, nil
}
