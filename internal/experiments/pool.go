package experiments

import (
	"runtime"
	"sync"
)

// Every cell of every exhibit — one (experiment, configuration, seed)
// simulation — is independent: it owns a private Simulation, Network, and
// device set, and a Simulation is single-goroutine-deterministic (exactly
// one Proc runs at a time, scheduled by virtual time and sequence number,
// never by the Go scheduler). Cells therefore parallelize across OS cores
// without changing a single virtual-time result; only wall-clock time moves.
//
// cellSlots is the process-wide budget of concurrently executing cells.
// It is shared by every exhibit so that shufflebench can also overlap whole
// experiments without oversubscribing the machine: however many experiments
// are in flight, at most GOMAXPROCS simulations run at once.
var cellSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// SetParallelism resizes the process-wide cell budget. n < 1 restores the
// default of one slot per CPU. It must be called before any experiment
// starts (shufflebench calls it once at startup); resizing mid-flight would
// strand in-use slots.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	cellSlots = make(chan struct{}, n)
}

// runJobs executes one exhibit's simulation cells. jobs must be appended in
// the exhibit's natural (serial) order; each job writes its results into
// cells it owns exclusively (preallocated Row.Vals slots), so the assembled
// tables are byte-identical to a serial run regardless of completion order.
//
// Workers == 1 runs the jobs in order on the calling goroutine — the serial
// reference path. Any other value fans every job out to its own goroutine,
// gated by cellSlots. On failure the error returned is the earliest job's
// error, matching what the serial run would have reported.
func (o Options) runJobs(jobs []func() error) error {
	if o.Workers == 1 || len(jobs) <= 1 {
		for _, job := range jobs {
			if err := job(); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i, job := range jobs {
		go func() {
			defer wg.Done()
			cellSlots <- struct{}{}
			defer func() { <-cellSlots }()
			errs[i] = job()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cells accumulates an exhibit's independent simulation jobs while the
// driver lays out its tables, then executes them through the pool.
type cells struct {
	o    Options
	jobs []func() error
}

func (c *cells) add(job func() error) { c.jobs = append(c.jobs, job) }
func (c *cells) run() error           { return c.o.runJobs(c.jobs) }
