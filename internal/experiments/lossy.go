package experiments

import (
	"fmt"
	"math"

	"rshuffle/internal/cluster"
	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

// ExtLossy reruns the Table 1 design matrix on the lossy RoCEv2 tier: the
// same six designs, on converged Ethernet where the switch can actually
// drop packets, with and without the DCQCN congestion-control loop. The
// lossless RoCE column is the baseline the extension is judged against.
func ExtLossy(o Options) ([]*Table, error) {
	matrix := &Table{
		ID:    "Extension: lossy RoCEv2 — Table 1 matrix",
		Title: "repartition throughput on lossy Ethernet, 8 nodes ('-' = query failed)",
		Unit:  "GiB/s per node",
		Cols:  []string{"lossless", "lossy-cc", "lossy+cc"},
	}
	profs := []fabric.Profile{fabric.RoCE(), lossyNoCC(), fabric.RoCEv2Lossy()}
	cs := cells{o: o}
	for _, a := range shuffle.Algorithms {
		row := Row{Name: a.Name, Vals: make([]float64, len(profs))}
		for i, prof := range profs {
			cs.add(func() error {
				res, err := o.runThroughput(prof, a.Config(prof.Threads), 8, nil, int64(1200+i))
				if err != nil {
					// A transport failure is a result on the lossy tier, not a
					// broken experiment: UD designs lose datagrams on tail
					// drop, RC designs can exhaust retry budgets. The paper's
					// lossless columns must still error out loudly.
					if i == 0 {
						return fmt.Errorf("%s on %s: %w", a.Name, prof.Name, err)
					}
					row.Vals[i] = math.NaN()
					return nil
				}
				row.Vals[i] = res.GiBps()
				return nil
			})
		}
		matrix.Rows = append(matrix.Rows, row)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	matrix.Notes = append(matrix.Notes,
		"balanced repartition keeps switch queues shallow: PFC plus go-back-N absorb what",
		"little loss pressure there is, so the Table 1 ranking survives the lossy tier")

	incast, err := extLossyIncast(o)
	if err != nil {
		return nil, err
	}
	return []*Table{matrix, incast}, nil
}

// extLossyIncast is the crossover exhibit: a Zipf-skewed shuffle whose hot
// receiver congests one switch port. With DCQCN the run completes; without
// it the committed windows overrun the shared buffer, go-back-N burns ACK
// timeouts, and sustained drops exhaust the retry budget.
func extLossyIncast(o Options) (*Table, error) {
	t := &Table{
		ID:    "Extension: lossy RoCEv2 — skewed incast crossover",
		Title: "MEMQ/SR, 8 nodes, Zipf 1.0 toward node 0 (elapsed in ms; 0 = query failed)",
		Cols:  []string{"elapsed", "drops", "retries", "pauses"},
	}
	rows := 262144
	if !o.Fast {
		rows *= 4
	}
	for _, on := range []bool{true, false} {
		prof := fabric.RoCEv2Lossy()
		prof.DCQCN = on
		name := "DCQCN on"
		if !on {
			name = "DCQCN off"
		}
		c := cluster.New(quiet(prof), 8, 2, o.Seed)
		cfg := shuffle.Algorithms[0].Config(c.Threads) // MEMQ/SR
		cfg.BuffersPerPeer = 8
		cfg.BufSize = 32 << 10
		res, err := c.RunBench(cluster.BenchOpts{
			Factory: cluster.RDMAProvider(cfg), RowsPerNode: rows, ZipfExponent: 1.0,
		})
		if err != nil {
			return nil, err
		}
		var drops, pauses, retries float64
		for n := 0; n < 8; n++ {
			st := c.Net.Stats(n)
			drops += float64(st.TailDrops)
			pauses += float64(st.PFCPausesSent)
		}
		for _, d := range c.Devs {
			retries += float64(d.Stats().TransportRetries)
		}
		elapsed := float64(res.Elapsed.Microseconds()) / 1000
		if res.Err != nil {
			elapsed = 0
		}
		t.Rows = append(t.Rows, Row{Name: name, Vals: []float64{elapsed, drops, retries, pauses}})
	}
	t.Notes = append(t.Notes,
		"the crossover the extension exists for: with congestion control off the incast",
		"tail-drops whole send windows until retry budgets exhaust and the query dies")
	return t, nil
}

// lossyNoCC is the lossy tier with the DCQCN loop disabled: PFC and ECN
// marking still run, but nobody answers the marks.
func lossyNoCC() fabric.Profile {
	p := fabric.RoCEv2Lossy()
	p.DCQCN = false
	return p
}
