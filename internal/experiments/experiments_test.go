package experiments

import (
	"math"
	"strings"
	"testing"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

var fast = Options{Fast: true, Seed: 7}

func val(t *Table, rowName string, col int) float64 {
	for _, r := range t.Rows {
		if r.Name == rowName {
			return r.Vals[col]
		}
	}
	return math.NaN()
}

func TestTable1QPCensus(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	tb, err := Table1(fast)
	if err != nil {
		t.Fatal(err)
	}
	if got := val(tb, "MEMQ/SR", 0); got != 224 {
		t.Fatalf("MEMQ/SR QPs = %v, want 224", got)
	}
	if got := val(tb, "MESQ/SR", 0); got != 14 {
		t.Fatalf("MESQ/SR QPs = %v, want 14", got)
	}
	if got := val(tb, "SESQ/SR", 0); got != 1 {
		t.Fatalf("SESQ/SR QPs = %v, want 1", got)
	}
}

func TestFig12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	tb, err := Fig12(fast)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Cols) - 1
	// MQ grows with cluster size; SQ stays flat.
	if val(tb, "MEMQ/SR", last) < 3*val(tb, "MEMQ/SR", 0) {
		t.Fatalf("MEMQ/SR setup should grow ~linearly: %v -> %v",
			val(tb, "MEMQ/SR", 0), val(tb, "MEMQ/SR", last))
	}
	if val(tb, "MESQ/SR", last) != val(tb, "MESQ/SR", 0) {
		t.Fatal("MESQ/SR setup should be flat across cluster sizes")
	}
	// Paper: MESQ/SR stays under 40 ms; ME connects more endpoints than SE.
	if v := val(tb, "MESQ/SR", last); v >= 40 {
		t.Fatalf("MESQ/SR setup = %v ms, want < 40", v)
	}
	if val(tb, "MEMQ/SR", last) <= val(tb, "SEMQ/SR", last) {
		t.Fatal("ME should cost more setup than SE")
	}
	if val(tb, "MEMQ/SR", last) < 250 || val(tb, "MEMQ/SR", last) > 650 {
		t.Fatalf("MEMQ/SR at 16 nodes = %v ms, paper shows ~300", val(tb, "MEMQ/SR", last))
	}
}

func TestWorkloadSizing(t *testing.T) {
	o := Options{Fast: true}
	edr := fabric.EDR()
	rows, passes := o.workload(shuffle.Config{Impl: shuffle.MQSR}, edr, 16)
	if rows > 4_000_000 {
		t.Fatalf("rows = %d exceeds residency cap", rows)
	}
	need := o.fills() * edr.Threads * 16 * (64<<10 - shuffle.HeaderSize) / 16
	if rows*passes < need*9/10 {
		t.Fatalf("volume %d under steady-state need %d", rows*passes, need)
	}
	udRows, udPasses := o.workload(shuffle.Config{Impl: shuffle.SQSR}, edr, 16)
	if udRows*udPasses >= rows*passes {
		t.Fatal("UD workloads should be smaller than RC workloads")
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{
		ID: "Figure X", Title: "demo", Unit: "GiB/s",
		Cols: []string{"a", "b"},
		Rows: []Row{{Name: "algo", Vals: []float64{1.5, math.NaN()}}},
	}
	s := tb.Format()
	if !strings.Contains(s, "Figure X") || !strings.Contains(s, "1.50") {
		t.Fatalf("format output:\n%s", s)
	}
	if !strings.Contains(s, "-") {
		t.Fatal("NaN cells should render as '-'")
	}
}

func TestFindRegistry(t *testing.T) {
	if Find("fig10") == nil || Find("table1") == nil {
		t.Fatal("registry lookup failed")
	}
	if Find("nope") != nil {
		t.Fatal("unknown name should return nil")
	}
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
	}
}

// TestFig13Overlap checks the headline Fig. 13 behaviour at one compute
// intensity: MESQ/SR overlaps fully while MPI does not.
func TestFig13Overlap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	tb, err := Fig13(Options{Fast: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Cols) - 1
	mesq := val(tb, "MESQ/SR", last)
	if mesq < 90 {
		t.Fatalf("MESQ/SR at max compute intensity = %.1f%%, want ~100%%", mesq)
	}
	// At 4us per 32 KiB batch the fragment demands ~8 GB/s: the RDMA
	// designs can feed it but IPoIB (~2.5 GB/s) is deeply network-bound.
	// (MESQ/SR vs MPI right at MPI's crossover is within harness noise; the
	// full sweep in EXPERIMENTS.md shows the crossover ordering.)
	mid := 2
	if val(tb, "IPoIB", mid) > val(tb, "MESQ/SR", mid)-15 {
		t.Fatalf("IPoIB should lag well behind at mid intensity: IPoIB=%.1f%% MESQ=%.1f%%",
			val(tb, "IPoIB", mid), val(tb, "MESQ/SR", mid))
	}
	// Everything is network-bound (well below 100%) at the leftmost point.
	if v := val(tb, "MESQ/SR", 0); v > 60 {
		t.Fatalf("leftmost point should be network-bound, got %.1f%%", v)
	}
}

// TestFig14aShape checks the network-upgrade behaviour on a small scale
// factor: MESQ/SR ~= local plan, MPI slower, and EDR faster than FDR.
func TestFig14aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	o := Options{Fast: true, Seed: 7}
	tb, err := Fig14a(o)
	if err != nil {
		t.Fatal(err)
	}
	for c, name := range tb.Cols {
		mpi, rdma, local := val(tb, "MPI", c), val(tb, "MESQ/SR", c), val(tb, "local data", c)
		if !(local <= rdma && rdma < mpi) {
			t.Fatalf("%s: ordering violated: local=%.2f rdma=%.2f mpi=%.2f", name, local, rdma, mpi)
		}
	}
	if val(tb, "MESQ/SR", 1) >= val(tb, "MESQ/SR", 0) {
		t.Fatal("EDR should be faster than FDR for MESQ/SR")
	}
}

// TestExtZeroCopyCrossover checks the Kesavan-style ablation: copying wins
// for small records, the gap closes as records grow.
func TestExtZeroCopyCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	tb, err := ExtZeroCopy(fast)
	if err != nil {
		t.Fatal(err)
	}
	if val(tb, "zero-copy", 0) > 0.5*val(tb, "copy", 0) {
		t.Fatalf("zero-copy should collapse for 16 B records: zc=%.2f copy=%.2f",
			val(tb, "zero-copy", 0), val(tb, "copy", 0))
	}
	last := len(tb.Cols) - 1
	if val(tb, "zero-copy", last) < 0.95*val(tb, "copy", last) {
		t.Fatalf("zero-copy should match copy for large records: zc=%.2f copy=%.2f",
			val(tb, "zero-copy", last), val(tb, "copy", last))
	}
}

// TestExtFabrics checks that iWARP rules out the UD designs and that
// Ethernet fabrics land well below EDR line rate.
func TestExtFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	tb, err := ExtFabrics(fast)
	if err != nil {
		t.Fatal(err)
	}
	if v := val(tb, "MESQ/SR", 1); v == v { // NaN check: v==v is false for NaN
		t.Fatalf("MESQ/SR on iWARP should be absent, got %v", v)
	}
	if v := val(tb, "SEMQ/SR", 0); v < 3.0 || v > 4.6 {
		t.Fatalf("RoCE 40GbE should run near its ~4.1 GiB/s line rate, got %.2f", v)
	}
}

// TestExtMulticastSavesWQEs checks the future-work hypothesis: hardware
// multicast cuts transmitted messages roughly by the cluster size while
// throughput stays at least as good.
func TestExtMulticastSavesWQEs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	tb, err := ExtMulticast(fast)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Cols) - 1
	sw := val(tb, "MESQ/SR txmsgs", last)
	hw := val(tb, "MESQ/SR+mcast txmsgs", last)
	// Multicast collapses the n per-destination data datagrams of a broadcast
	// batch into one, but the per-receiver credit datagrams remain: with n=16
	// and one credit return per two batches the floor is
	// (1 + n/2) / (n + n/2) = 0.375 of the software count, and the totals /
	// Finish datagrams (sent per peer either way) push the observed ratio to
	// ~0.39. Assert hw <= 0.42*sw to leave headroom over that floor while
	// still requiring the ~n-fold collapse of the data leg.
	if hw*100 > sw*42 {
		t.Fatalf("multicast should slash tx messages: hw=%.0f sw=%.0f (ratio %.3f > 0.42)",
			hw, sw, hw/sw)
	}
	if val(tb, "MESQ/SR+mcast", last) < 0.9*val(tb, "MESQ/SR", last) {
		t.Fatalf("multicast throughput regressed: %.2f vs %.2f",
			val(tb, "MESQ/SR+mcast", last), val(tb, "MESQ/SR", last))
	}
}

func TestWorkloadForBroadcastScales(t *testing.T) {
	o := Options{Fast: true}
	edr := fabric.EDR()
	cfg := shuffle.Config{Impl: shuffle.MQSR}
	rRows, rPasses := o.workloadFor(cfg, edr, 8, shuffle.Repartition(8))
	bRows, bPasses := o.workloadFor(cfg, edr, 8, shuffle.Broadcast(8))
	if bRows*bPasses >= rRows*rPasses {
		t.Fatalf("broadcast volume (%d) should shrink vs repartition (%d)",
			bRows*bPasses, rRows*rPasses)
	}
}

func TestTuneRecvWindowCapsMemory(t *testing.T) {
	edr := fabric.EDR()
	small := tuneRecvWindow(shuffle.Config{Impl: shuffle.MQSR, Endpoints: 14, BufSize: 64 << 10}, edr, 8)
	big := tuneRecvWindow(shuffle.Config{Impl: shuffle.MQSR, Endpoints: 14, BufSize: 1 << 20}, edr, 8)
	if small.RecvBuffersPerPeer != 16 {
		t.Fatalf("64KiB window = %d, want default 16", small.RecvBuffersPerPeer)
	}
	if big.RecvBuffersPerPeer >= 4 {
		t.Fatalf("1MiB window = %d, want tightly capped", big.RecvBuffersPerPeer)
	}
	ud := tuneRecvWindow(shuffle.Config{Impl: shuffle.SQSR, Endpoints: 14}, edr, 8)
	if ud.RecvBuffersPerPeer != 16 {
		t.Fatalf("UD window = %d, want untouched", ud.RecvBuffersPerPeer)
	}
}
