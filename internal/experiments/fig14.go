package experiments

import (
	"fmt"
	"math"

	"rshuffle/internal/cluster"
	"rshuffle/internal/fabric"
	"rshuffle/internal/mpi"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
	"rshuffle/internal/tpch"
)

// sfPerNode is the scaled-down substitute for the paper's 100 GiB (scale
// factor 100) per node; virtual-time response scales with data volume, so
// the MPI/MESQ-SR/local comparisons are volume-independent ratios.
func (o Options) sfPerNode() float64 {
	if o.Fast {
		return 0.02
	}
	return 0.05
}

func mesqFactory(threads int) cluster.ProviderFactory {
	return cluster.RDMAProvider(shuffle.Config{Impl: shuffle.SQSR, Endpoints: threads})
}

// Fig14a reproduces Figure 14(a): TPC-H Q4 response time on 8 nodes when
// upgrading from FDR to EDR, for MPI, MESQ/SR and the co-partitioned
// "local data" plan.
func Fig14a(o Options) (*Table, error) {
	t := &Table{
		ID:    "Figure 14(a)",
		Title: "TPC-H Q4 response time, 8 nodes, network upgrade",
		Unit:  "ms",
		Cols:  []string{"FDR", "EDR"},
	}
	rows := map[string]*Row{
		"MPI":        {Name: "MPI", Vals: make([]float64, 2)},
		"MESQ/SR":    {Name: "MESQ/SR", Vals: make([]float64, 2)},
		"local data": {Name: "local data", Vals: make([]float64, 2)},
	}
	plans := []struct {
		name  string
		part  tpch.Layout
		local bool
	}{
		{"MPI", tpch.Random, false},
		{"MESQ/SR", tpch.Random, false},
		{"local data", tpch.CoPartitioned, true},
	}
	cs := cells{o: o}
	for pi, prof := range []fabric.Profile{fabric.FDR(), fabric.EDR()} {
		// One cell per (profile, plan); each generates its own database so
		// cells stay independent.
		for _, pl := range plans {
			cs.add(func() error {
				db := tpch.Generate(o.sfPerNode()*8, 8, pl.part, o.Seed)
				f := mesqFactory(prof.Threads)
				if pl.name == "MPI" {
					f = cluster.MPIProvider(mpi.Config{})
				}
				r := tpch.RunQ4(cluster.New(quiet(prof), 8, 0, o.Seed), db, f, pl.local)
				if r.Err != nil {
					return fmt.Errorf("Q4 %s on %s: %w", pl.name, prof.Name, r.Err)
				}
				rows[pl.name].Vals[pi] = r.Elapsed.Seconds() * 1e3
				return nil
			})
		}
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Rows = []Row{*rows["MPI"], *rows["MESQ/SR"], *rows["local data"]}
	t.Notes = append(t.Notes,
		"paper: MESQ/SR matches the no-shuffle local plan (full overlap) and its gain from the",
		"upgrade keeps pace with local processing (~50%), while MPI improves only ~30%")
	return t, nil
}

// Fig14bcd reproduces Figures 14(b), (c) and (d): response time of Q4, Q3
// and Q10 as the database grows in proportion to the cluster (scale factor
// per node held constant), EDR, for MPI and MESQ/SR (plus the local plan
// for Q4).
func Fig14bcd(o Options) ([]*Table, error) {
	prof := fabric.EDR()
	nodes := []int{2, 4, 8, 16}
	type qdef struct {
		id, name string
		run      func(c *cluster.Cluster, db *tpch.DB, f cluster.ProviderFactory) *tpch.QueryResult
		local    bool
	}
	defs := []qdef{
		{"Figure 14(b)", "TPC-H Q4",
			func(c *cluster.Cluster, db *tpch.DB, f cluster.ProviderFactory) *tpch.QueryResult {
				return tpch.RunQ4(c, db, f, false)
			}, true},
		{"Figure 14(c)", "TPC-H Q3", tpch.RunQ3, false},
		{"Figure 14(d)", "TPC-H Q10", tpch.RunQ10, false},
	}
	var out []*Table
	cs := cells{o: o}
	for _, q := range defs {
		t := &Table{
			ID:    q.id,
			Title: q.name + " response time vs cluster size (database grows with cluster), EDR",
			Unit:  "ms",
		}
		for _, n := range nodes {
			t.Cols = append(t.Cols, fmt.Sprintf("%dn", n))
		}
		mpiRow := Row{Name: "MPI", Vals: make([]float64, len(nodes))}
		rdmaRow := Row{Name: "MESQ/SR", Vals: make([]float64, len(nodes))}
		localRow := Row{Name: "local data", Vals: make([]float64, len(nodes))}
		for i, n := range nodes {
			cs.add(func() error {
				sf := o.sfPerNode() * float64(n)
				db := tpch.Generate(sf, n, tpch.Random, o.Seed)
				m := q.run(cluster.New(quiet(prof), n, 0, o.Seed), db,
					cluster.MPIProvider(mpi.Config{}))
				r := q.run(cluster.New(quiet(prof), n, 0, o.Seed), db,
					mesqFactory(prof.Threads))
				if m.Err != nil || r.Err != nil {
					return fmt.Errorf("%s at %dn: mpi=%v rdma=%v", q.name, n, m.Err, r.Err)
				}
				mpiRow.Vals[i] = m.Elapsed.Seconds() * 1e3
				rdmaRow.Vals[i] = r.Elapsed.Seconds() * 1e3
				if !q.local {
					localRow.Vals[i] = math.NaN()
					return nil
				}
				dbl := tpch.Generate(sf, n, tpch.CoPartitioned, o.Seed)
				l := tpch.RunQ4(cluster.New(quiet(prof), n, 0, o.Seed), dbl,
					mesqFactory(prof.Threads), true)
				if l.Err != nil {
					return fmt.Errorf("%s local at %dn: %v", q.name, n, l.Err)
				}
				localRow.Vals[i] = l.Elapsed.Seconds() * 1e3
				return nil
			})
		}
		t.Rows = []Row{mpiRow, rdmaRow}
		if q.local {
			t.Rows = append(t.Rows, localRow)
			t.Notes = append(t.Notes,
				"the optimal line rises with cluster size because of the broadcast pattern")
		}
		t.Notes = append(t.Notes,
			"paper: MESQ/SR scales better than MPI — ~70% faster for Q4, ~55% for Q3, ~2x for Q10 at 16 nodes")
		out = append(out, t)
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	return out, nil
}

// Table1 reproduces Table 1: the design-space summary, with the Queue Pair
// counts verified against the built communication layers (n = 16 nodes,
// t = 14 threads).
func Table1(o Options) (*Table, error) {
	const n, threads = 16, 14
	t := &Table{
		ID:    "Table 1",
		Title: fmt.Sprintf("design alternatives for n=%d nodes, t=%d threads", n, threads),
		Cols:  []string{"QPs/node"},
	}
	prof := fabric.EDR()
	t.Rows = make([]Row, len(shuffle.Algorithms))
	cs := cells{o: o}
	for ai, a := range shuffle.Algorithms {
		t.Rows[ai] = Row{Name: a.Name, Vals: make([]float64, 1)}
		cs.add(func() error {
			c := cluster.New(quiet(prof), n, threads, o.Seed)
			var qps int
			c.Sim.Spawn("census", func(p *sim.Proc) {
				qps = shuffle.Build(p, c.Devs, a.Config(threads), threads).QPsPerOperator
			})
			if err := c.Sim.Run(); err != nil {
				return err
			}
			want := map[string]int{
				"MEMQ/SR": n * threads, "MEMQ/RD": n * threads,
				"SEMQ/SR": n, "SEMQ/RD": n,
				"MESQ/SR": threads, "SESQ/SR": 1,
			}[a.Name]
			if qps != want {
				return fmt.Errorf("%s: built %d QPs per operator, Table 1 says %d", a.Name, qps, want)
			}
			t.Rows[ai].Vals[0] = float64(qps)
			return nil
		})
	}
	if err := cs.run(); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"contention: none (ME), moderate (SEMQ), excessive (SESQ); messaging: RC round-trip w/ hardware",
		"error control up to 1 GiB, UD half-trip w/ software error control up to 4 KiB (paper Table 1)")
	return t, nil
}
