package mpi

import (
	"bytes"
	"testing"

	"rshuffle/internal/fabric"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

func TestHeaderRoundtrip(t *testing.T) {
	b := make([]byte, hdrSize)
	h := msgHeader{kind: kindRTS, flags: flagDepleted | flagTotal,
		src: 1023, msgID: 7_000_001, payload: 65536, value: 1 << 40}
	putHdr(b, h)
	if got := getHdr(b); got != h {
		t.Fatalf("roundtrip = %+v, want %+v", got, h)
	}
}

func TestDefaulted(t *testing.T) {
	c := Config{}.Defaulted()
	if c.EagerLimit != 16<<10 || c.BufSize != 64<<10 || c.RdvSlots <= 0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.Overhead != 0 {
		t.Fatal("Overhead should default at Build from the profile")
	}
}

// world builds a 2-node MPI job on a quiet EDR fabric.
func world(t *testing.T) (*sim.Simulation, *World) {
	t.Helper()
	prof := fabric.EDR()
	prof.UDReorderProb = 0
	s := sim.New(3)
	net := fabric.New(s, prof, 2)
	devs := verbs.OpenAll(net)
	var w *World
	s.Spawn("build", func(p *sim.Proc) {
		w = Build(p, devs, Config{})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s, w
}

// exchange sends the payloads from node 0 to node 1 and returns what node 1
// received, in order.
func exchange(t *testing.T, payloads [][]byte) [][]byte {
	t.Helper()
	s, w := world(t)
	send := w.SendEndpoints(0)[0]
	recv := w.RecvEndpoints(1)[0]
	var got [][]byte

	s.Spawn("sender", func(p *sim.Proc) {
		for _, pl := range payloads {
			b, err := send.GetFree(p)
			if err != nil {
				t.Error(err)
				return
			}
			b.Len = copy(b.Data, pl)
			if err := send.Send(p, b, []int{1}); err != nil {
				t.Error(err)
				return
			}
		}
		if err := send.Finish(p); err != nil {
			t.Error(err)
		}
	})
	// Node 1 must also finish its (empty) sending side so node 0's receive
	// endpoint terminates if used; here only node 1 receives.
	s.Spawn("peer-finish", func(p *sim.Proc) {
		if err := w.SendEndpoints(1)[0].Finish(p); err != nil {
			t.Error(err)
		}
	})
	s.Spawn("receiver", func(p *sim.Proc) {
		for {
			d, err := recv.GetData(p)
			if err != nil {
				t.Error(err)
				return
			}
			if d == nil {
				return
			}
			got = append(got, append([]byte(nil), d.Payload...))
			recv.Release(p, d)
		}
	})
	// Node 0's receive side must drain its own EOF too.
	s.Spawn("recv0", func(p *sim.Proc) {
		r0 := w.RecvEndpoints(0)[0]
		for {
			d, err := r0.GetData(p)
			if err != nil || d == nil {
				return
			}
			r0.Release(p, d)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestEagerPathIntegrity(t *testing.T) {
	var payloads [][]byte
	for i := 0; i < 40; i++ {
		pl := bytes.Repeat([]byte{byte(i + 1)}, 1000+i) // well under EagerLimit
		payloads = append(payloads, pl)
	}
	got := exchange(t, payloads)
	if len(got) != len(payloads) {
		t.Fatalf("received %d messages, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

func TestRendezvousPathIntegrity(t *testing.T) {
	var payloads [][]byte
	for i := 0; i < 30; i++ {
		pl := bytes.Repeat([]byte{byte(i + 1)}, 50_000) // above EagerLimit
		payloads = append(payloads, pl)
	}
	got := exchange(t, payloads)
	if len(got) != len(payloads) {
		t.Fatalf("received %d messages, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

func TestMixedSizes(t *testing.T) {
	var payloads [][]byte
	for i := 0; i < 30; i++ {
		n := 100
		if i%2 == 1 {
			n = 40_000
		}
		payloads = append(payloads, bytes.Repeat([]byte{byte(i + 1)}, n))
	}
	got := exchange(t, payloads)
	total := 0
	for _, g := range got {
		total += len(g)
	}
	want := 0
	for _, pl := range payloads {
		want += len(pl)
	}
	if total != want {
		t.Fatalf("received %d bytes, want %d", total, want)
	}
}

func TestSetupReported(t *testing.T) {
	_, w := world(t)
	conn, reg := w.Setup()
	if conn <= 0 || reg <= 0 {
		t.Fatalf("setup = %v, %v; want positive costs", conn, reg)
	}
}
