// Package mpi implements an MVAPICH-like message-passing library over the
// simulated verbs layer, used as the paper's primary comparison baseline.
//
// The model captures the properties that make MPI slower than the bespoke
// RDMA endpoints:
//
//   - an eager protocol for small messages with an extra library-internal
//     copy at both ends;
//   - a rendezvous protocol (RTS/CTS handshake) for large messages, where
//     the CTS is only generated while some receiver thread is inside an MPI
//     call — so communication fails to overlap with computation;
//   - a single library instance per node whose progress engine and posting
//     paths serialize on one lock (MPI_THREAD_MULTIPLE);
//   - per-message library overhead (matching, request bookkeeping).
//
// The library implements shuffle.SendEndpoint, shuffle.RecvEndpoint and
// shuffle.Provider, so the paper's SHUFFLE/RECEIVE operators run over MPI
// unchanged, exactly as the paper's MPI endpoint does.
package mpi

import (
	"fmt"
	"time"

	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

// Config tunes the library.
type Config struct {
	// EagerLimit is the largest payload sent eagerly (copied through
	// pre-posted bounce buffers); larger messages use rendezvous.
	EagerLimit int
	// BufSize is the application message buffer size (matches the shuffle
	// operator's transmission buffer size).
	BufSize int
	// EagerSlots is the number of pre-posted eager bounce buffers per peer.
	EagerSlots int
	// RdvSlots is the number of rendezvous data slots per peer.
	RdvSlots int
	// Overhead is per-message library bookkeeping charged under the lock at
	// both ends (tag matching, request management).
	Overhead sim.Duration
	// StallTimeout bounds blocking calls.
	StallTimeout sim.Duration
}

// Defaulted fills zero fields.
func (c Config) Defaulted() Config {
	if c.EagerLimit <= 0 {
		c.EagerLimit = 16 << 10
	}
	if c.BufSize <= 0 {
		c.BufSize = 64 << 10
	}
	if c.EagerSlots <= 0 {
		c.EagerSlots = 16
	}
	if c.RdvSlots <= 0 {
		c.RdvSlots = 16
	}
	// Overhead defaults to the cluster profile's MPIPerMessage at Build.
	if c.StallTimeout <= 0 {
		c.StallTimeout = 5 * time.Second
	}
	return c
}

const (
	hdrSize = 24

	kindEager = 1
	kindRTS   = 2
	kindCTS   = 3
	kindData  = 4
	kindCred  = 5
)

type msgHeader struct {
	kind    byte
	flags   byte // bit0: depleted marker, bit1: carries total
	src     uint16
	msgID   uint32
	payload uint32
	value   uint64 // totals / credit
}

func putHdr(b []byte, h msgHeader) {
	b[0] = h.kind
	b[1] = h.flags
	verbs.PutUint32(b[4:], h.msgID)
	verbs.PutUint32(b[8:], h.payload)
	verbs.PutUint32(b[12:], uint32(h.src))
	verbs.PutUint64(b[16:], h.value)
}

func getHdr(b []byte) msgHeader {
	return msgHeader{
		kind:    b[0],
		flags:   b[1],
		msgID:   verbs.ReadUint32(b[4:]),
		payload: verbs.ReadUint32(b[8:]),
		src:     uint16(verbs.ReadUint32(b[12:])),
		value:   verbs.ReadUint64(b[16:]),
	}
}

const (
	flagDepleted = 1 << 0
	flagTotal    = 1 << 1
)

// World is one MPI job spanning the cluster; it implements
// shuffle.Provider with a single library endpoint per node.
type World struct {
	Cfg   Config
	libs  []*lib
	setup sim.Duration
	reg   sim.Duration
}

// SendEndpoints implements shuffle.Provider.
func (w *World) SendEndpoints(node int) []shuffle.SendEndpoint {
	return []shuffle.SendEndpoint{w.libs[node]}
}

// RecvEndpoints implements shuffle.Provider.
func (w *World) RecvEndpoints(node int) []shuffle.RecvEndpoint {
	return []shuffle.RecvEndpoint{w.libs[node]}
}

// Setup reports connection and registration time, like shuffle.Comm.
func (w *World) Setup() (conn, reg sim.Duration) { return w.setup, w.reg }

// lib is one node's MPI library instance.
type lib struct {
	w    *World
	dev  *verbs.Device
	cfg  Config
	n    int
	node int

	// mu is the MPI_THREAD_MULTIPLE library lock: every path that touches
	// library state (copies, postings, the progress engine) serializes here.
	mu *sim.Mutex

	ctlQP  []*verbs.QP // per peer: eager/control traffic
	dataQP []*verbs.QP // per peer: rendezvous payloads
	cq     *verbs.CQ   // single progress CQ

	// Eager path.
	eagerRecvMR *verbs.MR // pre-posted bounce buffers (all peers)
	eagerSlot   int
	eagerCredit []uint64 // send side, absolute
	eagerSent   []uint64
	eagerSeen   []uint64 // recv side, releases per peer
	eagerAcked  []uint64

	// Rendezvous path.
	stagingMR *verbs.MR // registered send staging, RdvSlots*n
	stagFree  []int
	rdvRecvMR *verbs.MR // data landing slots
	rdvFree   []int
	nextMsgID uint32
	granted   map[uint32]bool
	pendRTS   []msgHeader // RTS waiting for a free rdv slot

	// Application-side buffers handed out by GetFree.
	appFree [][]byte

	// Receive side.
	ready   dataQueue
	recvd   []uint64 // data messages received per source
	total   []uint64
	known   []bool
	knownN  int
	sendCnt []uint64 // data messages sent per destination
}

// Arrived payloads are queued as shuffle.Data; Data.Remote is 0 for eager
// messages (application-pool buffer) and 1+rdvOffset for rendezvous slots.
type dataQueue struct{ items []*shuffle.Data }

func (q *dataQueue) push(d *shuffle.Data) { q.items = append(q.items, d) }
func (q *dataQueue) pop() *shuffle.Data {
	if len(q.items) == 0 {
		return nil
	}
	d := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return d
}

// Build boots the MPI job across all devices. It charges p one node's
// connection setup (two QPs per peer, like mpirun wireup).
func Build(p *sim.Proc, devs []*verbs.Device, cfg Config) *World {
	cfg = cfg.Defaulted()
	if cfg.Overhead <= 0 {
		cfg.Overhead = devs[0].Network().Prof.MPIPerMessage
	}
	n := len(devs)
	w := &World{Cfg: cfg, libs: make([]*lib, n)}
	prof := &devs[0].Network().Prof

	for a, dev := range devs {
		l := &lib{
			w: w, dev: dev, cfg: cfg, n: n, node: a,
			// The library lock lives on the node's own partition sim: waking
			// a queued waiter pushes a dispatch event onto the lock's sim, so
			// homing it anywhere else would leak events across partitions on
			// a parallel (-lps) run.
			mu:          dev.Sim().NewMutex(fmt.Sprintf("mpi@%d", a)),
			eagerSlot:   hdrSize + cfg.EagerLimit,
			eagerCredit: make([]uint64, n),
			eagerSent:   make([]uint64, n),
			eagerSeen:   make([]uint64, n),
			eagerAcked:  make([]uint64, n),
			granted:     make(map[uint32]bool),
			recvd:       make([]uint64, n),
			total:       make([]uint64, n),
			known:       make([]bool, n),
			sendCnt:     make([]uint64, n),
		}
		ctlSlots := n * (cfg.EagerSlots + 4*cfg.RdvSlots + 16)
		rdvSlots := n * cfg.RdvSlots
		l.cq = dev.CreateCQ(4*(ctlSlots+rdvSlots) + 256)
		l.eagerRecvMR = dev.AllocMRNoCost(ctlSlots * l.eagerSlot)
		l.stagingMR = dev.AllocMRNoCost(rdvSlots * (hdrSize + cfg.BufSize))
		l.rdvRecvMR = dev.AllocMRNoCost(rdvSlots * (hdrSize + cfg.BufSize))
		for i := 0; i < rdvSlots; i++ {
			l.stagFree = append(l.stagFree, i*(hdrSize+cfg.BufSize))
			l.rdvFree = append(l.rdvFree, i*(hdrSize+cfg.BufSize))
		}
		for i := 0; i < 2*n; i++ {
			l.appFree = append(l.appFree, make([]byte, cfg.BufSize))
		}
		l.ctlQP = make([]*verbs.QP, n)
		l.dataQP = make([]*verbs.QP, n)
		for b := 0; b < n; b++ {
			l.ctlQP[b] = dev.CreateQP(verbs.QPConfig{
				Type: fabric.RC, SendCQ: l.cq, RecvCQ: l.cq,
				MaxSend: ctlSlots, MaxRecv: ctlSlots + 8,
			})
			l.dataQP[b] = dev.CreateQP(verbs.QPConfig{
				Type: fabric.RC, SendCQ: l.cq, RecvCQ: l.cq,
				MaxSend: 2*cfg.RdvSlots + 8, MaxRecv: 2*cfg.RdvSlots + 8,
			})
		}
		w.libs[a] = l
	}
	// Wire QPs and prime receive windows.
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			mustNil(w.libs[a].ctlQP[b].Connect(b, w.libs[b].ctlQP[a].QPN()))
			mustNil(w.libs[a].dataQP[b].Connect(b, w.libs[b].dataQP[a].QPN()))
		}
	}
	for a := 0; a < n; a++ {
		l := w.libs[a]
		slot := 0
		for b := 0; b < n; b++ {
			for i := 0; i < cfg.EagerSlots+4*cfg.RdvSlots+16; i++ {
				err := l.ctlQP[b].PostRecv(p, verbs.RecvWR{
					ID: uint64(slot), MR: l.eagerRecvMR,
					Offset: slot * l.eagerSlot, Len: l.eagerSlot,
				})
				mustNil(err)
				slot++
			}
			l.eagerCredit[b] = uint64(cfg.EagerSlots)
		}
	}
	qpsPerNode := 2 * 2 * n
	w.setup = prof.ConnSetupBase + sim.Duration(qpsPerNode)*prof.ConnSetupPerQP
	w.reg = prof.MemRegBase + sim.Duration(float64(devs[0].RegisteredBytes())*prof.MemRegPerByte)
	p.Sleep(w.setup + w.reg)
	return w
}

func mustNil(err error) {
	if err != nil {
		panic(fmt.Sprintf("mpi: %v", err))
	}
}

// progress runs one step of the library progress engine under the lock,
// dispatching every pending completion. It must be called with mu held.
func (l *lib) progress(p *sim.Proc) {
	var es [16]verbs.CQE
	for l.cq.Len() > 0 {
		n := l.cq.Poll(p, es[:])
		for _, c := range es[:n] {
			l.dispatch(p, c)
		}
	}
}

func (l *lib) dispatch(p *sim.Proc, c verbs.CQE) {
	switch c.Op {
	case verbs.OpSend:
		// A staging or control send finished. Staging sends encode the
		// offset+1 in the WRID so 0 means control.
		if c.WRID > 0 {
			l.stagFree = append(l.stagFree, int(c.WRID-1))
		}
	case verbs.OpRecv:
		l.handleRecv(p, c)
	}
}

func (l *lib) handleRecv(p *sim.Proc, c verbs.CQE) {
	// Data-QP receives carry rendezvous payloads; control-QP receives carry
	// everything else. Distinguish by the slot id space: rdv recv WRIDs are
	// offset by 1<<32.
	if c.WRID >= 1<<32 {
		off := int(c.WRID - 1<<32)
		h := getHdr(l.rdvRecvMR.Buf[off:])
		l.finishIncoming(p, h, l.rdvRecvMR.Buf[off+hdrSize:off+hdrSize+int(h.payload)], off)
		return
	}
	slot := int(c.WRID)
	off := slot * l.eagerSlot
	h := getHdr(l.eagerRecvMR.Buf[off:])
	src := int(h.src)
	switch h.kind {
	case kindEager:
		// Copy out to an application buffer (the extra eager copy).
		buf := l.takeAppBuf()
		p.Sleep(sim.Duration(float64(h.payload) * l.prof().MemCopyPerByte))
		copy(buf, l.eagerRecvMR.Buf[off+hdrSize:off+hdrSize+int(h.payload)])
		l.repostCtl(p, slot, src)
		l.eagerSeen[src]++
		if l.eagerSeen[src]-l.eagerAcked[src] >= uint64(l.cfg.EagerSlots/2) {
			l.sendCredit(p, src)
		}
		if h.flags&flagTotal != 0 {
			l.markTotal(src, h.value)
		}
		if h.payload == 0 {
			l.putAppBuf(buf)
			return
		}
		l.recvd[src]++
		l.ready.push(&shuffle.Data{Src: src, Payload: buf[:h.payload]})
	case kindRTS:
		l.pendRTS = append(l.pendRTS, h)
		l.repostCtl(p, slot, src)
		l.grantRTS(p)
	case kindCTS:
		l.granted[h.msgID] = true
		l.repostCtl(p, slot, src)
	case kindCred:
		if h.value > l.eagerCredit[src] {
			l.eagerCredit[src] = h.value
		}
		l.repostCtl(p, slot, src)
	default:
		panic(fmt.Sprintf("mpi: unknown control kind %d", h.kind))
	}
}

// finishIncoming queues an arrived rendezvous payload.
func (l *lib) finishIncoming(p *sim.Proc, h msgHeader, payload []byte, rdvOff int) {
	src := int(h.src)
	if h.flags&flagTotal != 0 {
		l.markTotal(src, h.value)
	}
	if h.payload == 0 {
		l.rdvFree = append(l.rdvFree, rdvOff)
		l.grantRTS(p)
		return
	}
	l.recvd[src]++
	l.ready.push(&shuffle.Data{Src: src, Payload: payload, Remote: uint64(rdvOff) + 1})
}

func (l *lib) markTotal(src int, v uint64) {
	if !l.known[src] {
		l.known[src] = true
		l.knownN++
	}
	l.total[src] = v
}

// grantRTS matches pending RTS announcements with free rendezvous slots:
// it posts the landing receive and returns a CTS.
func (l *lib) grantRTS(p *sim.Proc) {
	for len(l.pendRTS) > 0 && len(l.rdvFree) > 0 {
		h := l.pendRTS[0]
		l.pendRTS = l.pendRTS[1:]
		off := l.rdvFree[len(l.rdvFree)-1]
		l.rdvFree = l.rdvFree[:len(l.rdvFree)-1]
		src := int(h.src)
		err := l.dataQP[src].PostRecv(p, verbs.RecvWR{
			ID: uint64(off) + 1<<32, MR: l.rdvRecvMR,
			Offset: off, Len: hdrSize + l.cfg.BufSize,
		})
		mustNil(err)
		l.ctlSend(p, src, msgHeader{kind: kindCTS, msgID: h.msgID, src: uint16(l.node)}, nil)
	}
}

// ctlSend transmits a small control/eager message; payload may be nil.
// Must be called with mu held.
func (l *lib) ctlSend(p *sim.Proc, dest int, h msgHeader, payload []byte) {
	off, ok := l.takeStaging()
	if !ok {
		// Recycle staging by draining completions; staging is plentiful, so
		// one progress pass suffices in practice.
		l.progress(p)
		off, ok = l.takeStaging()
		if !ok {
			panic("mpi: out of staging buffers")
		}
	}
	h.payload = uint32(len(payload))
	putHdr(l.stagingMR.Buf[off:], h)
	if len(payload) > 0 {
		p.Sleep(sim.Duration(float64(len(payload)) * l.prof().MemCopyPerByte))
		copy(l.stagingMR.Buf[off+hdrSize:], payload)
	}
	for {
		err := l.ctlQP[dest].PostSend(p, verbs.SendWR{
			ID: uint64(off) + 1, Op: verbs.OpSend,
			MR: l.stagingMR, Offset: off, Len: hdrSize + len(payload),
		})
		if err == nil {
			return
		}
		if err != verbs.ErrSQFull {
			panic(fmt.Sprintf("mpi: ctl send: %v", err))
		}
		l.progress(p)
	}
}

func (l *lib) sendCredit(p *sim.Proc, src int) {
	l.eagerAcked[src] = l.eagerSeen[src]
	grant := l.eagerSeen[src] + uint64(l.cfg.EagerSlots)
	l.ctlSend(p, src, msgHeader{kind: kindCred, src: uint16(l.node), value: grant}, nil)
}

func (l *lib) takeStaging() (int, bool) {
	if len(l.stagFree) == 0 {
		return 0, false
	}
	off := l.stagFree[len(l.stagFree)-1]
	l.stagFree = l.stagFree[:len(l.stagFree)-1]
	return off, true
}

func (l *lib) takeAppBuf() []byte {
	if len(l.appFree) == 0 {
		return make([]byte, l.cfg.BufSize)
	}
	b := l.appFree[len(l.appFree)-1]
	l.appFree = l.appFree[:len(l.appFree)-1]
	return b
}

func (l *lib) putAppBuf(b []byte) { l.appFree = append(l.appFree, b[:cap(b)]) }

func (l *lib) repostCtl(p *sim.Proc, slot, src int) {
	err := l.ctlQP[src].PostRecv(p, verbs.RecvWR{
		ID: uint64(slot), MR: l.eagerRecvMR,
		Offset: slot * l.eagerSlot, Len: l.eagerSlot,
	})
	mustNil(err)
}

func (l *lib) prof() *fabric.Profile { return &l.dev.Network().Prof }

// GetFree implements shuffle.SendEndpoint: MPI applications send from plain
// memory, so this returns an unregistered buffer.
func (l *lib) GetFree(p *sim.Proc) (*shuffle.Buf, error) {
	l.mu.Lock(p)
	buf := l.takeAppBuf()
	l.mu.Unlock(p)
	return &shuffle.Buf{Data: buf}, nil
}

// Send implements shuffle.SendEndpoint: MPI_Send to every group member.
func (l *lib) Send(p *sim.Proc, b *shuffle.Buf, dest []int) error {
	for _, d := range dest {
		if err := l.sendOne(p, d, b.Data[:b.Len], 0, 0); err != nil {
			return err
		}
		l.mu.Lock(p)
		l.sendCnt[d]++
		l.mu.Unlock(p)
	}
	l.mu.Lock(p)
	l.putAppBuf(b.Data)
	l.mu.Unlock(p)
	return nil
}

// sendOne is MPI_Send: eager for small payloads, rendezvous otherwise.
func (l *lib) sendOne(p *sim.Proc, dest int, payload []byte, flags byte, value uint64) error {
	l.mu.Lock(p)
	p.Sleep(l.cfg.Overhead)
	if len(payload) <= l.cfg.EagerLimit {
		// Eager: wait for credit, then copy-and-send.
		var waited sim.Duration
		for l.eagerSent[dest] >= l.eagerCredit[dest] {
			l.progress(p)
			if l.eagerSent[dest] < l.eagerCredit[dest] {
				break
			}
			l.mu.Unlock(p)
			if !l.cq.WaitNonEmpty(p, 200*time.Microsecond) {
				if waited += 200 * time.Microsecond; waited > l.cfg.StallTimeout {
					return fmt.Errorf("%w: MPI eager credit to %d", shuffle.ErrStalled, dest)
				}
			}
			l.mu.Lock(p)
		}
		l.eagerSent[dest]++
		l.ctlSend(p, dest, msgHeader{
			kind: kindEager, flags: flags, src: uint16(l.node), value: value,
		}, payload)
		l.mu.Unlock(p)
		return nil
	}

	// Rendezvous: RTS, wait for CTS (requires remote progress), send data.
	l.nextMsgID++
	id := l.nextMsgID
	l.ctlSend(p, dest, msgHeader{kind: kindRTS, msgID: id, src: uint16(l.node),
		payload: uint32(len(payload))}, nil)
	var waited sim.Duration
	for !l.granted[id] {
		l.progress(p)
		if l.granted[id] {
			break
		}
		l.mu.Unlock(p)
		if !l.cq.WaitNonEmpty(p, 200*time.Microsecond) {
			if waited += 200 * time.Microsecond; waited > l.cfg.StallTimeout {
				return fmt.Errorf("%w: MPI CTS from %d", shuffle.ErrStalled, dest)
			}
		}
		l.mu.Lock(p)
	}
	delete(l.granted, id)

	// Copy into registered staging (the library-internal copy) and post.
	var off int
	for {
		var ok bool
		if off, ok = l.takeStaging(); ok {
			break
		}
		l.progress(p)
	}
	h := msgHeader{kind: kindData, flags: flags, src: uint16(l.node),
		msgID: id, payload: uint32(len(payload)), value: value}
	putHdr(l.stagingMR.Buf[off:], h)
	// The library copies the payload into registered staging under the
	// lock (this MVAPICH generation does not hit its registration cache
	// for the shuffle's cycling buffer pool).
	p.Sleep(sim.Duration(float64(len(payload)) * l.prof().MemCopyPerByte))
	copy(l.stagingMR.Buf[off+hdrSize:], payload)
	for {
		err := l.dataQP[dest].PostSend(p, verbs.SendWR{
			ID: uint64(off) + 1, Op: verbs.OpSend,
			MR: l.stagingMR, Offset: off, Len: hdrSize + len(payload),
		})
		if err == nil {
			break
		}
		if err != verbs.ErrSQFull {
			l.mu.Unlock(p)
			return fmt.Errorf("mpi: data send: %v", err)
		}
		l.progress(p)
	}
	l.mu.Unlock(p)
	return nil
}

// Finish implements shuffle.SendEndpoint: every peer learns the total
// message count (totals ride an eager marker), then outstanding staging
// drains.
func (l *lib) Finish(p *sim.Proc) error {
	for d := 0; d < l.n; d++ {
		l.mu.Lock(p)
		cnt := l.sendCnt[d]
		l.mu.Unlock(p)
		if err := l.sendOne(p, d, nil, flagDepleted|flagTotal, cnt); err != nil {
			return err
		}
	}
	return nil
}

// GetData implements shuffle.RecvEndpoint (MPI_Irecv + progress).
func (l *lib) GetData(p *sim.Proc) (*shuffle.Data, error) {
	var waited sim.Duration
	for {
		l.mu.Lock(p)
		p.Sleep(l.cfg.Overhead / 2)
		l.progress(p)
		it := l.ready.pop()
		done := l.allDone()
		l.mu.Unlock(p)
		if it != nil {
			return it, nil
		}
		if done {
			return nil, nil
		}
		if !l.cq.WaitNonEmpty(p, 200*time.Microsecond) {
			if waited += 200 * time.Microsecond; waited > l.cfg.StallTimeout {
				return nil, fmt.Errorf("%w: MPI GetData on node %d", shuffle.ErrStalled, l.node)
			}
		} else {
			waited = 0
		}
	}
}

func (l *lib) allDone() bool {
	if l.knownN < l.n {
		return false
	}
	for s := 0; s < l.n; s++ {
		if l.recvd[s] != l.total[s] {
			return false
		}
	}
	return len(l.ready.items) == 0
}

// Release implements shuffle.RecvEndpoint.
func (l *lib) Release(p *sim.Proc, d *shuffle.Data) error {
	l.mu.Lock(p)
	if d.Remote > 0 {
		l.rdvFree = append(l.rdvFree, int(d.Remote-1))
		l.grantRTS(p)
	} else if d.Payload != nil {
		l.putAppBuf(d.Payload)
	}
	l.mu.Unlock(p)
	return nil
}
