package sim

// Cond is a condition variable in virtual time. Unlike sync.Cond it needs no
// external mutex: simulation state is never accessed concurrently, so the
// usual lost-wakeup race cannot occur as long as callers re-check their
// predicate in a loop around Wait.
type Cond struct {
	sim  *Simulation
	name string
	// waiters[qhead:] are the live and already-claimed waiters in arrival
	// order, held by value: steady-state Wait/Signal cycles touch only the
	// slice's reclaimed backing array and never allocate. A claimed entry
	// (woken or timed out) has id 0 and is skipped when popped.
	waiters []condWaiter
	qhead   int
	// nextID issues claim tickets for timeout events; 0 is never issued.
	nextID uint64
	// reason and reasonT are the precomputed blocked-on labels ("cond x",
	// "cond(timeout) x") so Wait does not concatenate strings per block.
	reason, reasonT string
}

type condWaiter struct {
	p  *Proc
	id uint64 // claim ticket; 0 once a Signal/Broadcast or timeout claims it
}

// NewCond returns a condition variable with a diagnostic name used in
// deadlock reports.
func (s *Simulation) NewCond(name string) *Cond {
	return &Cond{sim: s, name: name, reason: "cond " + name, reasonT: "cond(timeout) " + name}
}

// push appends a live waiter and returns its claim ticket.
func (c *Cond) push(p *Proc) uint64 {
	c.nextID++
	c.waiters = append(c.waiters, condWaiter{p: p, id: c.nextID})
	return c.nextID
}

// Wait suspends p until Signal or Broadcast wakes it. Callers must re-check
// their predicate after Wait returns.
func (c *Cond) Wait(p *Proc) {
	c.push(p)
	p.timedOut = false
	p.block(c.reason)
}

// WaitTimeout is Wait with a virtual-time timeout. It returns false if the
// wait timed out before a Signal/Broadcast reached this waiter. The
// deadline is a closure-free tagged event carrying the claim ticket; if the
// waiter was claimed first the event pops as a no-op.
func (c *Cond) WaitTimeout(p *Proc, d Duration) bool {
	id := c.push(p)
	p.timedOut = false
	s := c.sim
	t := s.now.Add(d)
	var e *event
	if t <= s.now {
		e = s.newEvent(s.now, nil, nil)
		e.cond, e.wid = c, id
		s.ringPush(e)
	} else {
		e = s.newEvent(t, nil, nil)
		e.cond, e.wid = c, id
		s.wheelPush(e)
	}
	p.block(c.reasonT)
	return !p.timedOut
}

// timeoutFire expires the waiter holding ticket id, if it is still waiting.
func (c *Cond) timeoutFire(id uint64) {
	for i := c.qhead; i < len(c.waiters); i++ {
		if w := &c.waiters[i]; w.id == id {
			p := w.p
			w.p, w.id = nil, 0
			p.timedOut = true
			c.sim.ready(p)
			return
		}
	}
}

// pop removes and returns the head entry, reclaiming the drained prefix
// when the queue empties so steady-state signalling never reallocates.
func (c *Cond) pop() condWaiter {
	w := c.waiters[c.qhead]
	c.waiters[c.qhead] = condWaiter{}
	c.qhead++
	if c.qhead == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.qhead = 0
	}
	return w
}

// Signal wakes the longest-waiting waiter, if any.
func (c *Cond) Signal() {
	for c.qhead < len(c.waiters) {
		w := c.pop()
		if w.id == 0 {
			continue // already claimed by a timeout
		}
		c.sim.ready(w.p)
		return
	}
}

// Broadcast wakes every current waiter in FIFO order.
func (c *Cond) Broadcast() {
	for c.qhead < len(c.waiters) {
		if w := c.pop(); w.id != 0 {
			c.sim.ready(w.p)
		}
	}
}

// Mutex is a FIFO-fair mutual-exclusion lock in virtual time. Acquiring an
// uncontended Mutex costs no virtual time; contended acquisitions queue in
// arrival order, which models a ticket lock guarding a shared resource such
// as a Queue Pair's doorbell.
type Mutex struct {
	sim    *Simulation
	name   string
	reason string // precomputed "mutex <name>" blocked-on label
	owner  *Proc
	// queue[qhead:] are the waiters in arrival order; the drained prefix is
	// reclaimed when the queue empties so steady-state handoff never
	// reallocates.
	queue []*Proc
	qhead int
}

// NewMutex returns a FIFO mutex with a diagnostic name.
func (s *Simulation) NewMutex(name string) *Mutex {
	return &Mutex{sim: s, name: name, reason: "mutex " + name}
}

// Lock acquires the mutex, blocking p in FIFO order if it is held.
func (m *Mutex) Lock(p *Proc) {
	if m.owner == nil {
		m.owner = p
		return
	}
	if m.owner == p {
		panic("sim: recursive Mutex.Lock by " + p.name)
	}
	m.queue = append(m.queue, p)
	p.block(m.reason)
}

// Unlock releases the mutex and hands it to the next queued Proc, if any.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("sim: Mutex.Unlock by non-owner " + p.name)
	}
	if m.qhead == len(m.queue) {
		m.owner = nil
		return
	}
	next := m.queue[m.qhead]
	m.queue[m.qhead] = nil
	m.qhead++
	if m.qhead == len(m.queue) {
		m.queue = m.queue[:0]
		m.qhead = 0
	}
	m.owner = next
	m.sim.ready(next)
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Waiters returns the number of Procs queued behind the current owner.
func (m *Mutex) Waiters() int { return len(m.queue) - m.qhead }

// Queue is an unbounded FIFO of items with blocking Get, usable as a simple
// mailbox between Procs.
type Queue[T any] struct {
	sim   *Simulation
	name  string
	items []T
	cond  *Cond
	// closed marks end-of-stream: Get returns the zero value and false once
	// drained.
	closed bool
}

// NewQueue returns an empty queue with a diagnostic name.
func NewQueue[T any](s *Simulation, name string) *Queue[T] {
	return &Queue[T]{sim: s, name: name, cond: s.NewCond("queue " + name)}
}

// Put appends v. It never blocks and may be called from event callbacks.
func (q *Queue[T]) Put(v T) {
	if q.closed {
		panic("sim: Put on closed Queue " + q.name)
	}
	q.items = append(q.items, v)
	q.cond.Signal()
}

// Close marks end-of-stream and wakes all blocked getters.
func (q *Queue[T]) Close() {
	q.closed = true
	q.cond.Broadcast()
}

// Get removes and returns the head item, blocking p while the queue is
// empty. It returns ok=false when the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		q.cond.Wait(p)
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
