package sim

import "math/bits"

// Hierarchical timer wheel: the timed-event successor to the binary heap.
//
// Virtual time is bucketed by byte: level l indexes events by byte l of
// their firing instant, so level 0 resolves single nanoseconds across a
// 256 ns window, level 1 resolves 256 ns strides across 64 Ki-ns, and so on.
// Five levels span 2^40 ns (~18 minutes) of lookahead — comfortably past
// every delay the fabric model produces (the largest calibrated constant,
// the 400 µs transport retry, sits in level 2) — and events beyond the span
// go to an unsorted overflow list that is reindexed on the rare occasion
// the wheel runs dry.
//
// Each bucket is an intrusive singly-linked FIFO threaded through the
// event records' next pointers, with a per-level occupancy bitmap so the
// next bucket is found with a TrailingZeros scan instead of a walk. Both
// schedule and cancel are O(1); advancing cascades a higher-level bucket
// down only when virtual time enters its stride.
//
// Determinism argument (same-seed traces must stay byte-identical to the
// heap's): the kernel's contract is that events fire in strict (time, seq)
// order. The wheel preserves it structurally:
//
//   - A level-0 bucket holds exactly one timestamp. Events there share
//     byte 0 (the slot index) and bytes ≥1 (equal to the clock's, or the
//     event would sit at a higher level), i.e. the whole instant.
//   - Buckets are FIFO and seq is monotonic, so a bucket is in seq order if
//     events arrive in schedule order. Direct pushes do; cascades preserve
//     list order; and a cascade always lands strictly below its source
//     level, finishing before the clock enters the stride — so cascaded
//     events are appended to a level-0 bucket before any direct push for
//     that instant can occur (a direct push at level 0 requires the clock
//     to already share bytes ≥1 with the instant).
//   - Levels are scanned bottom-up from the clock's own slot: level-l
//     events strictly above the clock's slot are strictly later than every
//     level-(l−1) event, so scan order is time order.
//
// The same-instant ring is unchanged and still merges ahead of the wheel by
// seq (see Run), so the heap-era TestSameInstantFloodOrdering contract
// holds verbatim.
const (
	wheelBits   = 8               // log2 slots per level: one byte of the timestamp
	wheelSlots  = 1 << wheelBits  // 256
	wheelMask   = wheelSlots - 1  // slot index mask
	wheelWords  = wheelSlots / 64 // occupancy words per level
	wheelLevels = 5               // spans 2^(8·5) ns ≈ 18 min before overflow
	wheelSpan   = 1 << (wheelBits * wheelLevels)
)

// bucket is one wheel slot's FIFO. head and tail share a 16-byte pair so an
// append touches a single cache line.
type bucket struct {
	head, tail *event
}

// timerWheel holds the future-event state embedded in Simulation. Buckets
// are indexed by level*wheelSlots+slot.
type timerWheel struct {
	occ [wheelLevels][wheelWords]uint64
	b   [wheelLevels * wheelSlots]bucket
	// Overflow events (beyond wheelSpan of the clock) in schedule order, an
	// intrusive FIFO like the buckets.
	ovHead, ovTail *event
	ovLen          int
}

// wheelPush files e, which must satisfy e.at > s.now, under the bucket for
// its firing instant. O(1).
func (s *Simulation) wheelPush(e *event) {
	d := uint64(e.at) ^ uint64(s.now)
	var lvl int
	if d < wheelSlots {
		lvl = 0 // fast path: within the current 256 ns stride
	} else if d >= wheelSpan {
		w := &s.wh
		e.next = nil
		if w.ovTail == nil {
			w.ovHead = e
		} else {
			w.ovTail.next = e
		}
		w.ovTail = e
		w.ovLen++
		return
	} else {
		lvl = (bits.Len64(d) - 1) >> 3 // highest differing byte
	}
	s.bucketAppend(lvl, e)
}

// bucketAppend files e at the given level under the slot addressed by byte
// lvl of its instant. Callers guarantee bytes above lvl match the clock's.
func (s *Simulation) bucketAppend(lvl int, e *event) {
	w := &s.wh
	slot := int(uint64(e.at)>>(uint(lvl)*wheelBits)) & wheelMask
	b := &w.b[lvl*wheelSlots+slot]
	e.next = nil
	if t := b.tail; t != nil {
		t.next = e
	} else {
		b.head = e
	}
	b.tail = e
	w.occ[lvl][slot>>6] |= 1 << uint(slot&63)
}

// advResult is wheelAdvance's outcome.
type advResult int

const (
	advEmpty   advResult = iota // no future events anywhere
	advHorizon                  // the next event lies beyond s.maxT
	advFound                    // s.chain now holds the next instant's events
)

// wheelAdvance finds the earliest future instant, detaches its (level-0)
// bucket into s.chain, and reports what it found. It may cascade
// higher-level buckets downward and advance s.now to a stride boundary on
// the way; on advHorizon it stops before committing any state past s.maxT.
func (s *Simulation) wheelAdvance() advResult {
	w := &s.wh
	for {
		now := uint64(s.now)
		for lvl := 0; lvl < wheelLevels; lvl++ {
			slot := w.scan(lvl, int(now>>(uint(lvl)*wheelBits))&wheelMask)
			if slot < 0 {
				continue
			}
			b := &w.b[lvl*wheelSlots+slot]
			if lvl == 0 {
				// One timestamp per level-0 bucket: detach it whole.
				h := b.head
				if s.maxT != 0 && h.at > s.maxT {
					return advHorizon
				}
				b.head, b.tail = nil, nil
				w.occ[0][slot>>6] &^= 1 << uint(slot&63)
				s.chain = chainCanon(h)
				return advFound
			}
			// Virtual time is entering this stride: cascade its bucket down.
			// Everything in it lands strictly below lvl, so the bottom-up
			// rescan makes progress.
			shift := uint(lvl) * wheelBits
			stride := (now &^ ((uint64(wheelSlots) << shift) - 1)) | uint64(slot)<<shift
			if s.maxT != 0 && Time(stride) > s.maxT {
				return advHorizon // whole stride starts past the horizon
			}
			s.now = Time(stride)
			h := b.head
			b.head, b.tail = nil, nil
			w.occ[lvl][slot>>6] &^= 1 << uint(slot&63)
			for h != nil {
				n := h.next
				s.wheelPush(h)
				h = n
			}
			break // rescan from level 0 with the new clock
		}
		if w.occAny() {
			continue
		}
		// Wheel empty: the next event, if any, is in the overflow list,
		// beyond the wheel's 2^40 ns block. Jump the clock to the earliest
		// one and reindex everything that lands inside the new block.
		if w.ovHead == nil {
			return advEmpty
		}
		min := w.ovHead
		for e := w.ovHead.next; e != nil; e = e.next {
			if e.at < min.at {
				min = e
			}
		}
		if s.maxT != 0 && min.at > s.maxT {
			return advHorizon
		}
		s.now = min.at
		h := w.ovHead
		w.ovHead, w.ovTail, w.ovLen = nil, nil, 0
		for h != nil {
			n := h.next
			s.wheelPush(h) // refiles near events; the rest rejoin overflow in order
			h = n
		}
	}
}

// chainCanon puts a detached same-instant chain into canonical execution
// order: locally scheduled events first, in schedule order, then
// cross-partition deliveries by their (source actor, send sequence) key.
// Local push order is already deterministic per partition — it follows the
// partition's own execution — but deliveries append in barrier order, and
// window bounds move with the partition count: two deliveries for one
// instant can split across different barriers under one layout and share a
// single merged flush under another, swapping their FIFO positions. Keying
// ties off (rsrc, rseq) makes the executed order a pure function of the
// event set, which the cross-layout byte-identity contract requires. The
// single-wheel engine never stamps rsrc, so it takes the scan-only fast
// path.
func chainCanon(h *event) *event {
	e := h
	for e != nil && e.rsrc == 0 {
		e = e.next
	}
	if e == nil {
		return h
	}
	var lh, lt, rh *event // locals head/tail; deliveries head, sorted
	for e = h; e != nil; {
		n := e.next
		if e.rsrc == 0 {
			e.next = nil
			if lt == nil {
				lh = e
			} else {
				lt.next = e
			}
			lt = e
		} else {
			// Insertion sort: ties at one instant are nearly always 1-2
			// events, so quadratic worst case is fine.
			var prev *event
			for c := rh; c != nil && (c.rsrc < e.rsrc || (c.rsrc == e.rsrc && c.rseq < e.rseq)); c = c.next {
				prev = c
			}
			if prev == nil {
				e.next, rh = rh, e
			} else {
				e.next, prev.next = prev.next, e
			}
		}
		e = n
	}
	if lt == nil {
		return rh
	}
	lt.next = rh
	return lh
}

// scan returns the first occupied slot ≥ from at level lvl, or -1. The
// clock's own slot is included: a cascade can deposit a level-0 bucket at
// exactly the current instant.
func (w *timerWheel) scan(lvl, from int) int {
	word := from >> 6
	bmp := w.occ[lvl][word] &^ (1<<uint(from&63) - 1)
	for {
		if bmp != 0 {
			return word<<6 + bits.TrailingZeros64(bmp)
		}
		word++
		if word == wheelWords {
			return -1
		}
		bmp = w.occ[lvl][word]
	}
}

// occAny reports whether any bucket at any level is occupied.
func (w *timerWheel) occAny() bool {
	var or uint64
	for lvl := range w.occ {
		for _, word := range w.occ[lvl] {
			or |= word
		}
	}
	return or != 0
}
