// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel in virtual time.
//
// A Simulation owns a virtual clock and an event queue. Simulated threads of
// execution are Procs: ordinary goroutines that are scheduled cooperatively,
// exactly one at a time. A Proc runs until it blocks on a simulation
// primitive (Sleep, Cond.Wait, Mutex.Lock, ...), at which point control
// returns to the scheduler, which advances the clock to the next event.
// Because at most one Proc executes at any instant, simulation state needs no
// locking and every run is deterministic: events scheduled for the same
// virtual instant fire in the order they were scheduled.
//
// The kernel detects deadlock: if live Procs remain but no event can wake
// any of them, Run returns a DeadlockError naming each blocked Proc and the
// primitive it is blocked on.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is an instant in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time. It aliases time.Duration so the usual
// constants (time.Microsecond, ...) can be used when building cost models.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

type event struct {
	at   Time
	seq  uint64
	fire func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Simulation is a discrete-event simulator. The zero value is not usable;
// create one with New.
type Simulation struct {
	now    Time
	seq    uint64
	events eventHeap
	yield  chan struct{}
	live   int
	procs  map[*Proc]struct{}
	rng    *rand.Rand
	maxT   Time // horizon; 0 means none
}

// New returns an empty simulation whose random source is seeded with seed.
// The same seed always yields the same execution.
func New(seed int64) *Simulation {
	return &Simulation{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only be
// used from Procs or event callbacks (never concurrently with Run from
// outside).
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// SetHorizon stops Run once virtual time would exceed t. Events past the
// horizon are left unfired. A zero horizon (the default) means no limit.
func (s *Simulation) SetHorizon(t Time) { s.maxT = t }

// At schedules fn to run at instant t (not before now). fn runs in scheduler
// context: it may schedule events, wake Procs, and mutate simulation state,
// but must not block.
func (s *Simulation) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fire: fn})
}

// After schedules fn to run d after the current instant.
func (s *Simulation) After(d Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Proc is a simulated thread of execution. Procs are created with Spawn and
// run as goroutines scheduled cooperatively by the Simulation. All methods
// that block (Sleep, and the Wait/Lock methods on Cond/Mutex that take the
// Proc) must be called only from within the Proc's own function.
type Proc struct {
	sim    *Simulation
	name   string
	resume chan struct{}
	done   bool
	// blockedOn describes what the Proc is waiting for, for deadlock reports.
	blockedOn string
	// timedOut reports whether the last WaitTimeout expired.
	timedOut bool
	// busy accumulates virtual CPU time consumed via Sleep; blocked
	// accumulates time spent waiting on synchronization primitives. The
	// split drives utilization profiling (the paper's §5.1.3 analysis).
	busy    Duration
	blocked Duration
}

// BusyTime returns the virtual CPU time this Proc has consumed.
func (p *Proc) BusyTime() Duration { return p.busy }

// BlockedTime returns the virtual time this Proc spent blocked on
// synchronization (waiting for completions, credit, buffers, ...).
func (p *Proc) BlockedTime() Duration { return p.blocked }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation that owns this Proc.
func (p *Proc) Sim() *Simulation { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn creates a Proc named name that will begin executing fn at the
// current virtual instant. It may be called before Run or from inside a
// running Proc or event callback.
func (s *Simulation) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.live++
	s.procs[p] = struct{}{}
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.done = true
		delete(s.procs, p)
		s.live--
		s.yield <- struct{}{}
	}()
	s.At(s.now, func() { s.dispatch(p) })
	return p
}

// dispatch hands control to p and waits for it to block or finish.
// It must run in scheduler context.
func (s *Simulation) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.blockedOn = ""
	p.resume <- struct{}{}
	<-s.yield
}

// block suspends the calling Proc until something calls s.ready(p),
// accounting the wait as blocked time.
func (p *Proc) block(reason string) {
	p.blockedOn = reason
	t0 := p.sim.now
	p.sim.yield <- struct{}{}
	<-p.resume
	p.blocked += Duration(p.sim.now - t0)
}

// ready schedules p to resume at the current instant.
func (s *Simulation) ready(p *Proc) { s.At(s.now, func() { s.dispatch(p) }) }

// Sleep suspends the Proc for d of virtual time. Negative and zero durations
// yield to other same-instant events and return.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.busy += d
	p.sim.At(p.sim.now.Add(d), func() { p.sim.dispatch(p) })
	p.blockedOn = "sleep"
	p.sim.yield <- struct{}{}
	<-p.resume
}

// Yield lets all other events scheduled for the current instant run before
// the Proc continues.
func (p *Proc) Yield() { p.Sleep(0) }

// DeadlockError is returned by Run when live Procs remain but the event
// queue is empty, so no Proc can ever be woken again.
type DeadlockError struct {
	Time    Time
	Blocked []string // "name: reason" for each blocked Proc, sorted
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v; %d proc(s) blocked: %v",
		e.Time, len(e.Blocked), e.Blocked)
}

// Run executes events until the queue drains, all Procs have finished, or
// the horizon is reached. It returns a *DeadlockError if Procs remain
// blocked with no pending events, and nil otherwise. Run must be called from
// the goroutine that owns the Simulation, and only once at a time.
func (s *Simulation) Run() error {
	for len(s.events) > 0 {
		e := s.events.peek()
		if s.maxT != 0 && e.at > s.maxT {
			s.now = s.maxT
			return nil
		}
		heap.Pop(&s.events)
		s.now = e.at
		e.fire()
	}
	if s.live > 0 {
		de := &DeadlockError{Time: s.now}
		for p := range s.procs {
			de.Blocked = append(de.Blocked, p.name+": "+p.blockedOn)
		}
		sort.Strings(de.Blocked)
		return de
	}
	return nil
}

// RunFor runs until the event queue drains or until d of virtual time has
// elapsed from the current instant, whichever comes first.
func (s *Simulation) RunFor(d Duration) error {
	s.SetHorizon(s.now.Add(d))
	defer s.SetHorizon(0)
	return s.Run()
}
