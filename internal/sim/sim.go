// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel in virtual time.
//
// A Simulation owns a virtual clock and an event queue. Simulated threads of
// execution are Procs: ordinary goroutines that are scheduled cooperatively,
// exactly one at a time. A Proc runs until it blocks on a simulation
// primitive (Sleep, Cond.Wait, Mutex.Lock, ...), at which point control
// returns to the scheduler, which advances the clock to the next event.
// Because at most one Proc executes at any instant, simulation state needs no
// locking and every run is deterministic: events scheduled for the same
// virtual instant fire in the order they were scheduled.
//
// The kernel detects deadlock: if live Procs remain but no event can wake
// any of them, Run returns a DeadlockError naming each blocked Proc and the
// primitive it is blocked on.
//
// Scheduling is the simulator's hot path, so the kernel avoids per-event
// allocation: event records are recycled on a free list, Proc wakeups are a
// closure-free event variant, and same-instant wakeups (ready, Yield, the
// first dispatch after Spawn) go through an O(1) FIFO ring that bypasses the
// O(log n) heap while preserving the global schedule-order semantics. See
// DESIGN.md, "Kernel performance".
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is an instant in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time. It aliases time.Duration so the usual
// constants (time.Microsecond, ...) can be used when building cost models.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// event is one scheduled occurrence. At most one of fire and proc is set:
// fire is a general callback; proc is the direct-dispatch variant that
// resumes a Proc without allocating a closure; an event with neither is a
// cancelled timer, which still pops (advancing the clock and the fired
// counter exactly as the live timer would have) but does nothing. Events are
// recycled through Simulation.free, so no pointer to an event may outlive
// its firing — Timer handles guard against reuse with the seq stamp.
type event struct {
	at   Time
	seq  uint64
	next *event // intrusive link: wheel bucket / overflow / chain membership
	fire func()
	proc *Proc
	// pgen snapshots proc.gen at schedule time: Proc records are pooled, so
	// a dispatch event must not resume a record recycled for a new Proc.
	pgen uint64
	// cond/wid make a Cond timeout a closure-free event variant: at the
	// deadline the waiter with claim ticket wid times out if still waiting.
	cond *Cond
	wid  uint64
	// rsrc/rseq carry a cross-partition delivery's merge key through the
	// wheel: source actor + 1 and the source's send sequence (zero for
	// locally scheduled events). Deliveries reach a bucket in barrier
	// order, which shifts with the partition layout, so same-instant
	// execution order is re-derived from this key at detach time — see
	// chainCanon.
	rsrc int
	rseq uint64
}

// eventLess orders events by (time, schedule sequence): the global firing
// order is a strict total order, identical for the heap and the ring.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Simulation is a discrete-event simulator. The zero value is not usable;
// create one with New.
type Simulation struct {
	now Time
	seq uint64
	// wh holds future events in a hierarchical timer wheel (see wheel.go):
	// O(1) schedule and cancel, with the (at, seq) total order preserved
	// structurally. chain is the bucket currently being drained — the
	// already-detached FIFO of events at the next instant.
	wh    timerWheel
	chain *event
	// ring holds same-instant events (at == now, always ahead of every wheel
	// entry of the same instant scheduled later) in a power-of-two circular
	// buffer: rhead is the read index, rlen the occupancy. Pushing and
	// popping are O(1).
	ring  []*event
	rhead int
	rlen  int
	// free recycles fired event records; its length is bounded by the peak
	// number of simultaneously pending events. procFree recycles finished
	// Proc records along with their parked goroutines.
	free     []*event
	procFree []*Proc
	fired    uint64
	yield    chan struct{}
	live     int
	procs    map[*Proc]struct{}
	rng      *rand.Rand
	maxT     Time // horizon; 0 means none
	// dead is set by Shutdown; parked goroutines observe it on their next
	// wake and exit instead of resuming their Proc body.
	dead bool
	// lpid is this simulation's logical-partition index when it belongs to
	// a Group (see pdes.go); 0 otherwise.
	lpid int
}

// New returns an empty simulation whose random source is seeded with seed.
// The same seed always yields the same execution.
func New(seed int64) *Simulation {
	return &Simulation{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Events returns the number of events fired so far — the denominator for
// events/sec wall-clock throughput measurements.
func (s *Simulation) Events() uint64 { return s.fired }

// Rand returns the simulation's deterministic random source. It must only be
// used from Procs or event callbacks (never concurrently with Run from
// outside).
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// SetHorizon stops Run once virtual time would exceed t. Events past the
// horizon are left unfired. A zero horizon (the default) means no limit.
func (s *Simulation) SetHorizon(t Time) { s.maxT = t }

// newEvent takes an event record off the free list (or allocates one) and
// stamps it with the next schedule sequence number.
func (s *Simulation) newEvent(at Time, fn func(), p *Proc) *event {
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &event{}
	}
	s.seq++
	e.at, e.seq, e.fire, e.proc = at, s.seq, fn, p
	e.rsrc, e.rseq = 0, 0
	if p != nil {
		e.pgen = p.gen
	}
	return e
}

// releaseEvent returns a fired event to the free list, dropping its payload
// references so recycled records don't retain closures, Procs, or siblings.
func (s *Simulation) releaseEvent(e *event) {
	e.fire, e.proc, e.next, e.cond = nil, nil, nil, nil
	s.free = append(s.free, e)
}

// ringPush appends e to the same-instant FIFO. e.at must equal s.now.
func (s *Simulation) ringPush(e *event) {
	if s.rlen == len(s.ring) {
		s.growRing()
	}
	s.ring[(s.rhead+s.rlen)&(len(s.ring)-1)] = e
	s.rlen++
}

func (s *Simulation) growRing() {
	n := 2 * len(s.ring)
	if n == 0 {
		n = 64
	}
	buf := make([]*event, n)
	for i := 0; i < s.rlen; i++ {
		buf[i] = s.ring[(s.rhead+i)&(len(s.ring)-1)]
	}
	s.ring, s.rhead = buf, 0
}

func (s *Simulation) ringPop() *event {
	e := s.ring[s.rhead]
	s.ring[s.rhead] = nil
	s.rhead = (s.rhead + 1) & (len(s.ring) - 1)
	s.rlen--
	return e
}

// At schedules fn to run at instant t (not before now). fn runs in scheduler
// context: it may schedule events, wake Procs, and mutate simulation state,
// but must not block.
func (s *Simulation) At(t Time, fn func()) {
	if t <= s.now {
		s.ringPush(s.newEvent(s.now, fn, nil))
		return
	}
	s.wheelPush(s.newEvent(t, fn, nil))
}

// After schedules fn to run d after the current instant.
func (s *Simulation) After(d Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Timer is a cancellable handle to a callback scheduled with AfterTimer.
// The zero Timer is valid and inert.
type Timer struct {
	e   *event
	seq uint64
}

// AfterTimer schedules fn like After and returns a handle that can cancel
// it in O(1). It replaces the generation-counter idiom (keep the event,
// have the callback check a counter and return) that cancellation-heavy
// protocol timers — retransmission, DCQCN rate recovery — used against the
// heap.
func (s *Simulation) AfterTimer(d Duration, fn func()) Timer {
	t := s.now.Add(d)
	var e *event
	if t <= s.now {
		e = s.newEvent(s.now, fn, nil)
		s.ringPush(e)
	} else {
		e = s.newEvent(t, fn, nil)
		s.wheelPush(e)
	}
	return Timer{e: e, seq: e.seq}
}

// Stop cancels the timer's callback if it has not fired yet and reports
// whether it did. A stopped timer still pops as a no-op at its deadline —
// the clock, the fired count, and same-instant ordering are exactly those
// of a live timer whose callback does nothing, so cancellation never
// perturbs a same-seed trace. The seq stamp guards against the event
// record having been recycled for a later schedule.
func (t Timer) Stop() bool {
	if t.e == nil || t.e.seq != t.seq || t.e.fire == nil {
		return false
	}
	t.e.fire = nil
	return true
}

// Proc is a simulated thread of execution. Procs are created with Spawn and
// run as goroutines scheduled cooperatively by the Simulation. All methods
// that block (Sleep, and the Wait/Lock methods on Cond/Mutex that take the
// Proc) must be called only from within the Proc's own function.
type Proc struct {
	sim    *Simulation
	name   string
	resume chan struct{}
	done   bool
	// fn is the body the parked goroutine runs on its next dispatch; Proc
	// records and their goroutines are pooled across Spawns, so fn changes
	// with each reincarnation.
	fn func(p *Proc)
	// gen counts reincarnations: a pending dispatch event resumes the Proc
	// only if its snapshot matches, so an event scheduled for a finished
	// Proc can never wake the record's next tenant. Stats (BusyTime,
	// BlockedTime) stay readable on a retained handle until the record is
	// reused by a later Spawn.
	gen uint64
	// blockedOn describes what the Proc is waiting for, for deadlock reports.
	blockedOn string
	// timedOut reports whether the last WaitTimeout expired.
	timedOut bool
	// busy accumulates virtual CPU time consumed via Sleep; blocked
	// accumulates time spent waiting on synchronization primitives. The
	// split drives utilization profiling (the paper's §5.1.3 analysis).
	busy    Duration
	blocked Duration
}

// BusyTime returns the virtual CPU time this Proc has consumed.
func (p *Proc) BusyTime() Duration { return p.busy }

// BlockedTime returns the virtual time this Proc spent blocked on
// synchronization (waiting for completions, credit, buffers, ...).
func (p *Proc) BlockedTime() Duration { return p.blocked }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation that owns this Proc.
func (p *Proc) Sim() *Simulation { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn creates a Proc named name that will begin executing fn at the
// current virtual instant. It may be called before Run or from inside a
// running Proc or event callback.
//
// Proc records and their goroutines are pooled: a finished Proc parks its
// goroutine and the record is recycled by a later Spawn (with a fresh
// generation, zeroed stats, and the new body). Spawning is therefore
// allocation-free at steady state — the dominant cost of the heap-era
// Spawn was the goroutine start and its closure.
func (s *Simulation) Spawn(name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(s.procFree); n > 0 {
		p = s.procFree[n-1]
		s.procFree[n-1] = nil
		s.procFree = s.procFree[:n-1]
		p.name, p.fn = name, fn
		p.gen++
		p.done, p.timedOut = false, false
		p.blockedOn = ""
		p.busy, p.blocked = 0, 0
	} else {
		p = &Proc{sim: s, name: name, fn: fn, resume: make(chan struct{})}
		go procLoop(p)
	}
	s.live++
	s.procs[p] = struct{}{}
	s.ready(p)
	return p
}

// procLoop is the body of every pooled Proc goroutine: run one incarnation,
// retire the record to the free list, hand control back to the scheduler,
// and park until the record's next tenant is dispatched. The retirement
// writes happen before the yield send, which synchronizes them with the
// scheduler exactly as the pre-pool teardown did.
func procLoop(p *Proc) {
	s := p.sim
	for {
		<-p.resume // wait for first dispatch of this incarnation
		if s.dead {
			s.yield <- struct{}{}
			return
		}
		if !p.runBody() {
			s.yield <- struct{}{} // unwound by Shutdown: acknowledge and exit
			return
		}
		p.fn = nil
		p.done = true
		delete(s.procs, p)
		s.live--
		s.procFree = append(s.procFree, p)
		s.yield <- struct{}{}
	}
}

// killProc is the panic value Shutdown uses to unwind a Proc parked inside
// its body (block or Sleep), so the pooled goroutine can run the body's
// deferred functions and exit.
type killProc struct{}

// runBody executes one incarnation's body, reporting false when the body
// was unwound by Shutdown rather than returning normally. Any other panic
// propagates.
func (p *Proc) runBody() (completed bool) {
	defer func() {
		if completed {
			return
		}
		if r := recover(); r != nil {
			if _, ok := r.(killProc); !ok {
				panic(r)
			}
		}
	}()
	p.fn(p)
	return true
}

// dispatch hands control to p and waits for it to block or finish. It must
// run in scheduler context. The yield is received from p's own simulation:
// normally that is s, but under partitioned execution (see pdes.go) a Proc
// can be woken by another partition's event — e.g. a fused-phase Cond on a
// different clock — and it hands control back on its owner's channel.
func (s *Simulation) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.blockedOn = ""
	p.resume <- struct{}{}
	<-p.sim.yield
}

// block suspends the calling Proc until something calls s.ready(p),
// accounting the wait as blocked time.
func (p *Proc) block(reason string) {
	p.blockedOn = reason
	t0 := p.sim.now
	p.sim.yield <- struct{}{}
	<-p.resume
	if p.sim.dead {
		panic(killProc{})
	}
	p.blocked += Duration(p.sim.now - t0)
}

// ready schedules p to resume at the current instant: an O(1) ring push of
// a closure-free dispatch event.
func (s *Simulation) ready(p *Proc) { s.ringPush(s.newEvent(s.now, nil, p)) }

// Sleep suspends the Proc for d of virtual time. Negative and zero durations
// yield to other same-instant events and return.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.busy += d
	s := p.sim
	if d == 0 {
		s.ringPush(s.newEvent(s.now, nil, p))
	} else {
		s.wheelPush(s.newEvent(s.now.Add(d), nil, p))
	}
	p.blockedOn = "sleep"
	s.yield <- struct{}{}
	<-p.resume
	if s.dead {
		panic(killProc{})
	}
}

// Yield lets all other events scheduled for the current instant run before
// the Proc continues.
//
// Yield is the hottest proc-switch path (every poll loop spins on it), so it
// shortcuts the scheduler where the outcome is already decided: after
// queueing its own wakeup it pops same-instant dispatch events directly. A
// self-dispatch (no other runnable work at this instant) returns with zero
// channel operations; a dispatch of another Proc is a single direct
// proc-to-proc handoff — the scheduler stays parked inside the current
// dispatch and receives the yield from whichever Proc blocks next. Closure
// and Cond-timeout events fall back to the scheduler, which must run them in
// its own context. The observable schedule — (time, seq) firing order, the
// fired counter, Proc wake order — is exactly the one Run would produce.
func (p *Proc) Yield() {
	s := p.sim
	s.ringPush(s.newEvent(s.now, nil, p))
	for {
		var e *event
		if e = s.chain; e != nil {
			if e.at != s.now || e.fire != nil || e.cond != nil {
				break
			}
			s.chain = e.next
		} else if s.rlen > 0 {
			e = s.ring[s.rhead]
			if e.fire != nil || e.cond != nil {
				break
			}
			s.ringPop()
		} else {
			break
		}
		// e is a proc dispatch or a cancelled timer at the current instant.
		s.fired++
		p2, gen := e.proc, e.pgen
		s.releaseEvent(e)
		if p2 == nil || p2.gen != gen || p2.done {
			continue // cancelled timer or stale dispatch: pops as a no-op
		}
		if p2 == p {
			return // self-dispatch: continue without a scheduler round-trip
		}
		p.blockedOn = "sleep"
		p2.blockedOn = ""
		p2.resume <- struct{}{}
		<-p.resume
		if s.dead {
			panic(killProc{})
		}
		return
	}
	// Scheduler path: the wakeup is already queued, so this is Sleep(0)
	// minus the push.
	p.blockedOn = "sleep"
	s.yield <- struct{}{}
	<-p.resume
	if s.dead {
		panic(killProc{})
	}
}

// DeadlockError is returned by Run when live Procs remain but the event
// queue is empty, so no Proc can ever be woken again.
type DeadlockError struct {
	Time    Time
	Blocked []string // "name: reason" for each blocked Proc, sorted
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v; %d proc(s) blocked: %v",
		e.Time, len(e.Blocked), e.Blocked)
}

// Run executes events until the queue drains, all Procs have finished, or
// the horizon is reached. It returns a *DeadlockError if Procs remain
// blocked with no pending events, and nil otherwise. Run must be called from
// the goroutine that owns the Simulation, and only once at a time.
func (s *Simulation) Run() error {
loop:
	for {
		var e *event
		if e = s.chain; e != nil {
			// The chain is the detached wheel bucket for the current instant.
			// Everything in it was scheduled before the clock reached this
			// instant, so it carries smaller seqs than any ring entry (which
			// could only have been pushed at this instant) and drains first —
			// the same order the heap's (at, seq) merge produced.
			s.chain = e.next
		} else if s.rlen > 0 {
			e = s.ringPop()
		} else {
			switch s.wheelAdvance() {
			case advFound:
				e = s.chain
				s.chain = e.next
			case advHorizon:
				s.now = s.maxT
				return nil
			default:
				break loop
			}
		}
		s.now = e.at
		s.fired++
		if p := e.proc; p != nil {
			gen := e.pgen
			s.releaseEvent(e)
			if p.gen == gen {
				s.dispatch(p)
			}
		} else if e.fire != nil {
			fn := e.fire
			s.releaseEvent(e)
			fn()
		} else if c := e.cond; c != nil {
			wid := e.wid
			s.releaseEvent(e)
			c.timeoutFire(wid)
		} else {
			// A cancelled timer: pops as a no-op so the clock, fired count,
			// and same-instant ordering stay exactly as if it had fired a
			// do-nothing callback (what cancellation-by-generation-counter
			// used to cost).
			s.releaseEvent(e)
		}
	}
	if s.live > 0 {
		de := &DeadlockError{Time: s.now}
		for p := range s.procs {
			de.Blocked = append(de.Blocked, p.name+": "+p.blockedOn)
		}
		sort.Strings(de.Blocked)
		return de
	}
	return nil
}

// Shutdown terminates every goroutine the simulation owns. Each Proc is
// driven by a parked goroutine (pooled across Spawns), so a discarded
// Simulation otherwise retains all of them — and everything their stacks
// and records reference, wheel and rings included — until process exit.
// Sweeps that build thousands of short-lived simulations then pay an
// ever-growing GC mark and stack-scan bill: goroutine counts climb by the
// cluster's proc population per run and wall-clock per simulation drifts
// upward. Shutdown wakes each parked goroutine with the dead flag set;
// idle pooled goroutines exit immediately, and Procs still blocked
// mid-simulation unwind via a panic that runs their deferred functions
// (body defers must not block: Signal/Unlock are fine, Wait/Sleep are
// not). Call it once the simulation is finished — Cluster.Recycle does —
// after which the Simulation must not schedule or run anything further.
// Idempotent. Reading Now, Events, or Proc stats remains safe.
func (s *Simulation) Shutdown() {
	if s.dead {
		return
	}
	s.dead = true
	// Re-fetch from the map each round: a body's deferred functions may in
	// principle retire other state, and the kill path leaves its own entry
	// for us to delete.
	for len(s.procs) > 0 {
		var p *Proc
		for q := range s.procs {
			p = q
			break
		}
		delete(s.procs, p)
		s.live--
		p.resume <- struct{}{}
		<-s.yield
	}
	for _, p := range s.procFree {
		p.resume <- struct{}{}
		<-s.yield
	}
	s.procFree = nil
}

// RunFor runs until the event queue drains or until d of virtual time has
// elapsed from the current instant, whichever comes first. A horizon already
// set by the caller is honored if it is nearer, and is restored on return.
func (s *Simulation) RunFor(d Duration) error {
	prev := s.maxT
	h := s.now.Add(d)
	if prev != 0 && prev < h {
		h = prev
	}
	s.SetHorizon(h)
	defer s.SetHorizon(prev)
	return s.Run()
}
