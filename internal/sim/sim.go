// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel in virtual time.
//
// A Simulation owns a virtual clock and an event queue. Simulated threads of
// execution are Procs: ordinary goroutines that are scheduled cooperatively,
// exactly one at a time. A Proc runs until it blocks on a simulation
// primitive (Sleep, Cond.Wait, Mutex.Lock, ...), at which point control
// returns to the scheduler, which advances the clock to the next event.
// Because at most one Proc executes at any instant, simulation state needs no
// locking and every run is deterministic: events scheduled for the same
// virtual instant fire in the order they were scheduled.
//
// The kernel detects deadlock: if live Procs remain but no event can wake
// any of them, Run returns a DeadlockError naming each blocked Proc and the
// primitive it is blocked on.
//
// Scheduling is the simulator's hot path, so the kernel avoids per-event
// allocation: event records are recycled on a free list, Proc wakeups are a
// closure-free event variant, and same-instant wakeups (ready, Yield, the
// first dispatch after Spawn) go through an O(1) FIFO ring that bypasses the
// O(log n) heap while preserving the global schedule-order semantics. See
// DESIGN.md, "Kernel performance".
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is an instant in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time. It aliases time.Duration so the usual
// constants (time.Microsecond, ...) can be used when building cost models.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return Duration(t).String() }

// event is one scheduled occurrence. Exactly one of fire and proc is set:
// fire is a general callback; proc is the direct-dispatch variant that
// resumes a Proc without allocating a closure. Events are recycled through
// Simulation.free, so no pointer to an event may outlive its firing.
type event struct {
	at   Time
	seq  uint64
	fire func()
	proc *Proc
}

// eventLess orders events by (time, schedule sequence): the global firing
// order is a strict total order, identical for the heap and the ring.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Simulation is a discrete-event simulator. The zero value is not usable;
// create one with New.
type Simulation struct {
	now Time
	seq uint64
	// heap holds future events as a binary min-heap on (at, seq). It is a
	// concrete *event slice with inlined sift routines rather than a
	// container/heap adapter: the interface boxing of heap.Push/Pop costs an
	// allocation and an indirect call per event.
	heap []*event
	// ring holds same-instant events (at == now, always ahead of every heap
	// entry of the same instant scheduled later) in a power-of-two circular
	// buffer: rhead is the read index, rlen the occupancy. Pushing and
	// popping are O(1), versus O(log n) through the heap.
	ring  []*event
	rhead int
	rlen  int
	// free recycles fired event records; its length is bounded by the peak
	// number of simultaneously pending events.
	free  []*event
	fired uint64
	yield chan struct{}
	live  int
	procs map[*Proc]struct{}
	rng   *rand.Rand
	maxT  Time // horizon; 0 means none
}

// New returns an empty simulation whose random source is seeded with seed.
// The same seed always yields the same execution.
func New(seed int64) *Simulation {
	return &Simulation{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Events returns the number of events fired so far — the denominator for
// events/sec wall-clock throughput measurements.
func (s *Simulation) Events() uint64 { return s.fired }

// Rand returns the simulation's deterministic random source. It must only be
// used from Procs or event callbacks (never concurrently with Run from
// outside).
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// SetHorizon stops Run once virtual time would exceed t. Events past the
// horizon are left unfired. A zero horizon (the default) means no limit.
func (s *Simulation) SetHorizon(t Time) { s.maxT = t }

// newEvent takes an event record off the free list (or allocates one) and
// stamps it with the next schedule sequence number.
func (s *Simulation) newEvent(at Time, fn func(), p *Proc) *event {
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &event{}
	}
	s.seq++
	e.at, e.seq, e.fire, e.proc = at, s.seq, fn, p
	return e
}

// releaseEvent returns a fired event to the free list, dropping its payload
// references so recycled records don't retain closures or Procs.
func (s *Simulation) releaseEvent(e *event) {
	e.fire, e.proc = nil, nil
	s.free = append(s.free, e)
}

// ringPush appends e to the same-instant FIFO. e.at must equal s.now.
func (s *Simulation) ringPush(e *event) {
	if s.rlen == len(s.ring) {
		s.growRing()
	}
	s.ring[(s.rhead+s.rlen)&(len(s.ring)-1)] = e
	s.rlen++
}

func (s *Simulation) growRing() {
	n := 2 * len(s.ring)
	if n == 0 {
		n = 64
	}
	buf := make([]*event, n)
	for i := 0; i < s.rlen; i++ {
		buf[i] = s.ring[(s.rhead+i)&(len(s.ring)-1)]
	}
	s.ring, s.rhead = buf, 0
}

func (s *Simulation) ringPop() *event {
	e := s.ring[s.rhead]
	s.ring[s.rhead] = nil
	s.rhead = (s.rhead + 1) & (len(s.ring) - 1)
	s.rlen--
	return e
}

func (s *Simulation) heapPush(e *event) {
	s.heap = append(s.heap, e)
	h := s.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (s *Simulation) heapPop() *event {
	h := s.heap
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	s.heap = h[:n]
	h = s.heap
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			m = r
		}
		if !eventLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return e
}

// At schedules fn to run at instant t (not before now). fn runs in scheduler
// context: it may schedule events, wake Procs, and mutate simulation state,
// but must not block.
func (s *Simulation) At(t Time, fn func()) {
	if t <= s.now {
		s.ringPush(s.newEvent(s.now, fn, nil))
		return
	}
	s.heapPush(s.newEvent(t, fn, nil))
}

// After schedules fn to run d after the current instant.
func (s *Simulation) After(d Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Proc is a simulated thread of execution. Procs are created with Spawn and
// run as goroutines scheduled cooperatively by the Simulation. All methods
// that block (Sleep, and the Wait/Lock methods on Cond/Mutex that take the
// Proc) must be called only from within the Proc's own function.
type Proc struct {
	sim    *Simulation
	name   string
	resume chan struct{}
	done   bool
	// blockedOn describes what the Proc is waiting for, for deadlock reports.
	blockedOn string
	// timedOut reports whether the last WaitTimeout expired.
	timedOut bool
	// busy accumulates virtual CPU time consumed via Sleep; blocked
	// accumulates time spent waiting on synchronization primitives. The
	// split drives utilization profiling (the paper's §5.1.3 analysis).
	busy    Duration
	blocked Duration
}

// BusyTime returns the virtual CPU time this Proc has consumed.
func (p *Proc) BusyTime() Duration { return p.busy }

// BlockedTime returns the virtual time this Proc spent blocked on
// synchronization (waiting for completions, credit, buffers, ...).
func (p *Proc) BlockedTime() Duration { return p.blocked }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation that owns this Proc.
func (p *Proc) Sim() *Simulation { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn creates a Proc named name that will begin executing fn at the
// current virtual instant. It may be called before Run or from inside a
// running Proc or event callback.
func (s *Simulation) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.live++
	s.procs[p] = struct{}{}
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.done = true
		delete(s.procs, p)
		s.live--
		s.yield <- struct{}{}
	}()
	s.ready(p)
	return p
}

// dispatch hands control to p and waits for it to block or finish.
// It must run in scheduler context.
func (s *Simulation) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.blockedOn = ""
	p.resume <- struct{}{}
	<-s.yield
}

// block suspends the calling Proc until something calls s.ready(p),
// accounting the wait as blocked time.
func (p *Proc) block(reason string) {
	p.blockedOn = reason
	t0 := p.sim.now
	p.sim.yield <- struct{}{}
	<-p.resume
	p.blocked += Duration(p.sim.now - t0)
}

// ready schedules p to resume at the current instant: an O(1) ring push of
// a closure-free dispatch event.
func (s *Simulation) ready(p *Proc) { s.ringPush(s.newEvent(s.now, nil, p)) }

// Sleep suspends the Proc for d of virtual time. Negative and zero durations
// yield to other same-instant events and return.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.busy += d
	s := p.sim
	if d == 0 {
		s.ringPush(s.newEvent(s.now, nil, p))
	} else {
		s.heapPush(s.newEvent(s.now.Add(d), nil, p))
	}
	p.blockedOn = "sleep"
	s.yield <- struct{}{}
	<-p.resume
}

// Yield lets all other events scheduled for the current instant run before
// the Proc continues.
func (p *Proc) Yield() { p.Sleep(0) }

// DeadlockError is returned by Run when live Procs remain but the event
// queue is empty, so no Proc can ever be woken again.
type DeadlockError struct {
	Time    Time
	Blocked []string // "name: reason" for each blocked Proc, sorted
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v; %d proc(s) blocked: %v",
		e.Time, len(e.Blocked), e.Blocked)
}

// Run executes events until the queue drains, all Procs have finished, or
// the horizon is reached. It returns a *DeadlockError if Procs remain
// blocked with no pending events, and nil otherwise. Run must be called from
// the goroutine that owns the Simulation, and only once at a time.
func (s *Simulation) Run() error {
	for {
		var e *event
		if s.rlen > 0 {
			// The ring holds only events at the current instant; a heap entry
			// can still precede the ring head if it was scheduled earlier for
			// this same instant (smaller seq).
			if len(s.heap) > 0 && eventLess(s.heap[0], s.ring[s.rhead]) {
				e = s.heapPop()
			} else {
				e = s.ringPop()
			}
		} else if len(s.heap) > 0 {
			if s.maxT != 0 && s.heap[0].at > s.maxT {
				s.now = s.maxT
				return nil
			}
			e = s.heapPop()
		} else {
			break
		}
		s.now = e.at
		s.fired++
		if p := e.proc; p != nil {
			s.releaseEvent(e)
			s.dispatch(p)
		} else {
			fn := e.fire
			s.releaseEvent(e)
			fn()
		}
	}
	if s.live > 0 {
		de := &DeadlockError{Time: s.now}
		for p := range s.procs {
			de.Blocked = append(de.Blocked, p.name+": "+p.blockedOn)
		}
		sort.Strings(de.Blocked)
		return de
	}
	return nil
}

// RunFor runs until the event queue drains or until d of virtual time has
// elapsed from the current instant, whichever comes first. A horizon already
// set by the caller is honored if it is nearer, and is restored on return.
func (s *Simulation) RunFor(d Duration) error {
	prev := s.maxT
	h := s.now.Add(d)
	if prev != 0 && prev < h {
		h = prev
	}
	s.SetHorizon(h)
	defer s.SetHorizon(prev)
	return s.Run()
}
