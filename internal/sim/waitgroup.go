package sim

// WaitGroup waits for a collection of simulated activities to finish, in the
// manner of sync.WaitGroup but in virtual time.
type WaitGroup struct {
	sim   *Simulation
	count int
	cond  *Cond
}

// NewWaitGroup returns a WaitGroup with a diagnostic name.
func (s *Simulation) NewWaitGroup(name string) *WaitGroup {
	return &WaitGroup{sim: s, cond: s.NewCond("waitgroup " + name)}
}

// Add adds delta to the counter. It panics if the counter goes negative.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		w.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.cond.Wait(p)
	}
}

// Go spawns fn as a Proc tracked by the WaitGroup.
func (w *WaitGroup) Go(name string, fn func(p *Proc)) {
	w.Add(1)
	w.sim.Spawn(name, func(p *Proc) {
		defer w.Done()
		fn(p)
	})
}
