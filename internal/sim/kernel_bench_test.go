package sim

import (
	"fmt"
	"testing"
	"time"
)

// Kernel microbenchmarks: the per-event scheduling cost is the wall-clock
// price of every figure, chaos matrix, and CI run, so each path gets its own
// number. allocs/op is the regression guard for the event free list (the
// hot paths must stay at 0), ns/op is the dispatch cost, and events/sec the
// headline throughput exported to BENCH_sim.json by `make bench`.

// BenchmarkHeapSchedule measures the pure event-queue path with no Procs: a
// window of 1024 pending future events, each rescheduling itself, so every
// fire is an O(log n) pop plus push at realistic heap depth.
func BenchmarkHeapSchedule(b *testing.B) {
	s := New(1)
	const window = 1024
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			s.After(Duration(remaining%127+1), tick)
		}
	}
	for i := 0; i < window; i++ {
		s.After(Duration(i+1), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Events())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSameInstantChain measures the O(1) ring fast path: a callback
// chain that never advances the clock, so no heap operation is involved.
func BenchmarkSameInstantChain(b *testing.B) {
	s := New(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			s.At(s.Now(), tick)
		}
	}
	s.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Events())/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkProcYield measures a Proc scheduling step on the ring path: one
// closure-free dispatch event plus the two goroutine handoffs.
func BenchmarkProcYield(b *testing.B) {
	s := New(1)
	var events uint64
	s.Spawn("yielder", func(p *Proc) {
		for i := 0; i < 64; i++ { // warm the ring and event pool
			p.Yield()
		}
		b.ReportAllocs()
		b.ResetTimer()
		start := s.Events()
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
		events = s.Events() - start
		b.StopTimer()
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSpawnJoin measures Proc creation: goroutine start, first
// dispatch, and teardown accounting. The pools (Proc records, event free
// list, ring) are warmed before the timer starts, so the reported allocs/op
// is the steady-state figure at any -benchtime — including the 1x smoke and
// the short regression-gate runs, which previously charged the one-time
// pool growth to the handful of timed iterations.
func BenchmarkSpawnJoin(b *testing.B) {
	s := New(1)
	s.Spawn("parent", func(p *Proc) {
		for i := 0; i < 64; i++ { // warm the Proc pool and the ring
			s.Spawn("child", func(q *Proc) {})
			p.Yield()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Spawn("child", func(q *Proc) {})
			p.Yield() // let the child run to completion
		}
		b.StopTimer()
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCondSignalWake measures the ready() wakeup round trip through a
// condition variable: Signal -> ring dispatch -> re-Wait.
func BenchmarkCondSignalWake(b *testing.B) {
	s := New(1)
	c := s.NewCond("bench")
	stop := false
	s.Spawn("waiter", func(p *Proc) {
		for {
			c.Wait(p)
			if stop {
				return
			}
		}
	})
	s.Spawn("signaller", func(p *Proc) {
		for i := 0; i < 64; i++ { // warm the waiter queue and event pools
			c.Signal()
			p.Yield()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Signal()
			p.Yield() // let the waiter wake and re-wait
		}
		b.StopTimer()
		stop = true
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerWheelMix mixes the paths the shuffle stack actually drives:
// many Procs sleeping staggered durations (heap) plus same-instant handoffs
// (ring), approximating a streaming run's event profile.
func BenchmarkTimerWheelMix(b *testing.B) {
	s := New(1)
	const procs = 16
	per := b.N / procs
	for i := 0; i < procs; i++ {
		d := Duration(i%7 + 1)
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < per; j++ {
				if j%4 == 3 {
					p.Yield()
				} else {
					p.Sleep(d * time.Nanosecond)
				}
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Events())/b.Elapsed().Seconds(), "events/sec")
}
