package sim

import (
	"fmt"
	"testing"
)

// TestSameInstantFloodOrdering floods single instants with every kind of
// same-instant scheduling — At callbacks, Spawn first-dispatches, ready
// wakeups (via Cond.Signal) and Yield resumptions — while heap-scheduled
// events for the same instant are still pending, and asserts the global
// firing order is exactly the scheduling order. This is the seq-order FIFO
// contract the package documentation promises, now served by two data
// structures (heap and ring) that the test forces to interleave.
func TestSameInstantFloodOrdering(t *testing.T) {
	s := New(1)
	var fired []int
	sched := 0
	// mark assigns the next schedule index; the very next statement must be
	// the scheduling call it tags, so mark order equals seq order.
	mark := func() int { k := sched; sched++; return k }

	// Phase 1: pre-schedule heap-path events for instant 100 (scheduled at
	// t=0, so they traverse the heap). Each one floods the ring when it
	// fires; every ring push has a higher seq than every still-pending heap
	// entry of the instant, so the scheduler must keep draining the heap
	// before touching the ring. 100 callbacks x 2 ring pushes also exceeds
	// the ring's initial capacity, exercising growth mid-instant.
	const T = Time(100)
	for i := 0; i < 100; i++ {
		k := mark()
		s.At(T, func() {
			fired = append(fired, k)
			k2 := mark()
			s.At(s.Now(), func() { fired = append(fired, k2) })
			k3 := mark()
			s.Spawn("sp1", func(p *Proc) { fired = append(fired, k3) })
		})
	}

	// Phase 2: a driver Proc at instant 200 interleaves all four wakeup
	// kinds from inside a running Proc.
	stop := false
	c := s.NewCond("flood")
	var tags []int
	for i := 0; i < 4; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for {
				c.Wait(p)
				if stop {
					return
				}
				fired = append(fired, tags[0])
				tags = tags[1:]
			}
		})
	}
	s.Spawn("driver", func(p *Proc) {
		p.Sleep(200)
		for i := 0; i < 400; i++ {
			switch i % 4 {
			case 0: // same-instant At -> ring callback
				k := mark()
				s.At(p.Now(), func() { fired = append(fired, k) })
			case 1: // Spawn -> ring first dispatch
				k := mark()
				s.Spawn("sp2", func(q *Proc) { fired = append(fired, k) })
			case 2: // Signal -> ready() ring wakeup; the waiter records the
				// tag assigned at signal time when its dispatch fires.
				k := mark()
				tags = append(tags, k)
				c.Signal()
			case 3: // Yield -> ring resumption of the driver itself
				k := mark()
				p.Yield()
				fired = append(fired, k)
			}
		}
		stop = true
		c.Broadcast()
	})

	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != sched {
		t.Fatalf("fired %d events, scheduled %d", len(fired), sched)
	}
	for i, k := range fired {
		if k != i {
			t.Fatalf("event scheduled %dth fired %dth (window %v)", k, i,
				fired[max(0, i-3):min(len(fired), i+3)])
		}
	}
}

// TestEventPoolReuse checks that recycled event records do not leak stale
// payloads: a long same-instant chain must fire every callback exactly once.
func TestEventPoolReuse(t *testing.T) {
	s := New(1)
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 10_000 {
			s.At(s.Now(), chain)
		}
	}
	s.At(0, chain)
	// A sleeping Proc holds a pooled heap event across the chain.
	s.Spawn("sleeper", func(p *Proc) { p.Sleep(5) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 10_000 {
		t.Fatalf("chain fired %d times, want 10000", n)
	}
	if s.Events() != 10_000+2 { // chain + spawn dispatch + sleep wakeup
		t.Fatalf("Events() = %d, want %d", s.Events(), 10_000+2)
	}
}

// TestRunForRestoresHorizon verifies RunFor no longer clobbers a horizon the
// caller had set: the outer horizon survives the call and still caps a later
// Run, and a RunFor window past the outer horizon is clipped to it.
func TestRunForRestoresHorizon(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(50, func() { fired++ })
	s.At(150, func() { fired++ })
	s.At(900, func() { fired++ })
	s.SetHorizon(200)
	// Window [0, 100): only the t=50 event fires.
	if err := s.RunFor(100); err != nil {
		t.Fatal(err)
	}
	if fired != 1 || s.Now() != 100 {
		t.Fatalf("after RunFor(100): fired=%d now=%v, want 1 at 100", fired, s.Now())
	}
	// RunFor(1000) would pass the caller's horizon: it must clip to 200.
	if err := s.RunFor(1000); err != nil {
		t.Fatal(err)
	}
	if fired != 2 || s.Now() != 200 {
		t.Fatalf("after RunFor(1000): fired=%d now=%v, want 2 at 200 (outer horizon)", fired, s.Now())
	}
	// The outer horizon must still be in force for a plain Run.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 || s.Now() != 200 {
		t.Fatalf("after Run: fired=%d now=%v, want t=900 event still past horizon", fired, s.Now())
	}
	s.SetHorizon(0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("fired = %d after clearing horizon, want 3", fired)
	}
}
