package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestWheelOrderAgainstReference drives the wheel with an adversarial mix of
// delays — same-instant, sub-stride, cascade-crossing, and far-future — and
// checks the firing order against the kernel contract: strict (time, seq)
// order. The reference is a simple sort of the schedule log.
func TestWheelOrderAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(1)
	type ref struct {
		at  Time
		seq int
	}
	var want []ref
	var got []ref
	seq := 0
	schedule := func(at Time) {
		r := ref{at: at, seq: seq}
		seq++
		want = append(want, r)
		s.At(at, func() {
			if s.Now() != r.at {
				t.Fatalf("event %d fired at %v, scheduled for %v", r.seq, s.Now(), r.at)
			}
			got = append(got, r)
		})
	}
	// Delays spanning every level: same-bucket (<256 ns), one cascade
	// (<64 Ki-ns), multi-level, and beyond the 2^40 ns wheel span into the
	// overflow list. Duplicates are frequent on the small strides, which is
	// what exercises the FIFO-per-bucket order.
	spans := []int64{1 << 7, 1 << 10, 1 << 19, 1 << 28, 1 << 37, 1 << 44}
	for i := 0; i < 4000; i++ {
		d := rng.Int63n(spans[rng.Intn(len(spans))]) + 1
		schedule(s.Now() + Time(d))
	}
	// Rescheduling mid-run from random instants stresses cascades landing at
	// the current clock.
	s.After(5, func() {
		for i := 0; i < 2000; i++ {
			d := rng.Int63n(spans[rng.Intn(len(spans))])
			schedule(s.Now() + Time(d)) // d may be 0: same-instant ring
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d of %d events", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("order violation at %d: (%v, #%d) fired before (%v, #%d)",
				i, a.at, a.seq, b.at, b.seq)
		}
	}
}

// TestWheelFarFutureOverflow pins the overflow path: timers beyond the
// wheel's 2^40 ns span park on the overflow list, reindex into the wheel
// when the clock's block catches up, and still fire in exact order.
func TestWheelFarFutureOverflow(t *testing.T) {
	s := New(1)
	var order []int
	mark := func(i int) func() { return func() { order = append(order, i) } }
	far := Time(3) << (wheelBits * wheelLevels) // three blocks out
	s.At(far+5, mark(0))
	s.At(far+5, mark(1)) // same far instant: FIFO by schedule order
	s.At(far, mark(2))
	s.At(7, mark(3)) // near event fires first
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	wantOrder := []int{3, 2, 0, 1}
	for i, w := range wantOrder {
		if order[i] != w {
			t.Fatalf("firing order %v, want %v", order, wantOrder)
		}
	}
	if s.Now() != far+5 {
		t.Fatalf("clock stopped at %v, want %v", s.Now(), far+5)
	}
}

// TestTimerStopAcrossCascade arms a timer far enough out that the wheel must
// cascade it down through multiple levels, stops it mid-flight, and checks
// the cancelled record pops as a no-op: the callback never runs, while the
// clock and the fired count behave exactly as if it had fired empty.
func TestTimerStopAcrossCascade(t *testing.T) {
	s := New(1)
	fired := false
	var tm Timer
	s.Spawn("driver", func(p *Proc) {
		tm = s.AfterTimer(1<<20, func() { fired = true }) // level-2 resident
		p.Sleep(1 << 10)                                  // force a cascade below the timer first
		if !tm.Stop() {
			t.Error("Stop returned false for a pending timer")
		}
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
		p.Sleep(1 << 21) // sleep past the cancelled deadline
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
	// Cancelled timer still popped: driver-spawn ready + two sleeps + the
	// no-op pop = 4 events.
	if got := s.Events(); got != 4 {
		t.Fatalf("fired %d events, want 4 (cancelled timer must pop as a no-op)", got)
	}
}

// TestTimerStopAfterFire checks a handle goes inert once its callback ran,
// even if the event record has been recycled for a new schedule.
func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	var tm Timer
	count := 0
	tm = s.AfterTimer(5, func() { count++ })
	s.After(10, func() {
		if tm.Stop() {
			t.Error("Stop returned true after the timer fired")
		}
		// The record may now back a different timer; stopping the old handle
		// must not kill the new one.
		s.AfterTimer(5, func() { count++ })
		tm.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2 (stale Stop must not cancel a recycled record)", count)
	}
}

// TestTimerZeroDelayRidesRing pins that an AfterTimer(0) lands in the
// same-instant ring behind events already scheduled for this instant, like
// every other zero-delay schedule.
func TestTimerZeroDelayRidesRing(t *testing.T) {
	s := New(1)
	var order []int
	s.After(3, func() {
		s.At(s.Now(), func() { order = append(order, 0) })
		tm := s.AfterTimer(0, func() { order = append(order, 1) })
		s.At(s.Now(), func() { order = append(order, 2) })
		_ = tm
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("ring order %v, want [0 1 2]", order)
	}
}

// TestTimerStopZeroDelay cancels a ring-resident timer before the instant
// drains.
func TestTimerStopZeroDelay(t *testing.T) {
	s := New(1)
	fired := false
	s.After(3, func() {
		tm := s.AfterTimer(0, func() { fired = true })
		if !tm.Stop() {
			t.Error("Stop returned false for a pending zero-delay timer")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped zero-delay timer fired")
	}
}

// TestRunForAcrossCascadeBoundary runs the clock up to horizons that fall
// inside higher-level strides holding pending events, ensuring a horizon
// stop mid-cascade leaves the wheel consistent and a later Run picks the
// events up in order.
func TestRunForAcrossCascadeBoundary(t *testing.T) {
	s := New(1)
	var order []int
	s.At(1<<16+5, func() { order = append(order, 0) }) // level-2 resident
	s.At(1<<16+5, func() { order = append(order, 1) })
	s.At(1<<17, func() { order = append(order, 2) })
	if err := s.RunFor(1 << 10); err != nil { // horizon far below the stride
		t.Fatal(err)
	}
	if len(order) != 0 || s.Now() != Time(1<<10) {
		t.Fatalf("horizon overshoot: order=%v now=%v", order, s.Now())
	}
	if err := s.RunFor(Duration(1<<16 + 10 - 1<<10)); err != nil { // lands between the two instants
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("after second horizon: order=%v, want first two", order)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[2] != 2 {
		t.Fatalf("final order %v, want [0 1 2]", order)
	}
}

// TestSpawnJoinZeroAlloc guards the pooled-Proc spawn path: steady-state
// Spawn + run-to-completion + join must not allocate.
func TestSpawnJoinZeroAlloc(t *testing.T) {
	s := New(1)
	var allocs float64
	s.Spawn("parent", func(p *Proc) {
		// Warm the pools outside the measurement.
		for i := 0; i < 64; i++ {
			s.Spawn("child", func(q *Proc) {})
			p.Yield()
		}
		allocs = testing.AllocsPerRun(1000, func() {
			s.Spawn("child", func(q *Proc) {})
			p.Yield()
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("SpawnJoin allocates %.1f times per op, want 0", allocs)
	}
}

// TestProcYieldZeroAlloc guards the direct-handoff Yield fast path: a
// self-dispatch must complete with no allocation (and no channel round
// trip, which is what the ProcYield benchmark times).
func TestProcYieldZeroAlloc(t *testing.T) {
	s := New(1)
	var allocs float64
	s.Spawn("yielder", func(p *Proc) {
		for i := 0; i < 64; i++ { // warm-up
			p.Yield()
		}
		allocs = testing.AllocsPerRun(1000, func() {
			p.Yield()
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("Yield allocates %.1f times per op, want 0", allocs)
	}
}

// TestCondSignalWakeZeroAlloc guards the by-value waiter queue: the
// Signal → dispatch → re-Wait cycle must not allocate at steady state.
func TestCondSignalWakeZeroAlloc(t *testing.T) {
	s := New(1)
	c := s.NewCond("guard")
	stop := false
	var allocs float64
	s.Spawn("waiter", func(p *Proc) {
		for {
			c.Wait(p)
			if stop {
				return
			}
		}
	})
	s.Spawn("signaller", func(p *Proc) {
		for i := 0; i < 64; i++ { // warm-up
			c.Signal()
			p.Yield()
		}
		allocs = testing.AllocsPerRun(1000, func() {
			c.Signal()
			p.Yield()
		})
		stop = true
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("CondSignalWake allocates %.1f times per op, want 0", allocs)
	}
}

// TestWaitTimeoutZeroAlloc guards the closure-free timeout event: a
// WaitTimeout that expires must not allocate at steady state either — this
// is the CQ poll-wait shape on the whole-query hot path.
func TestWaitTimeoutZeroAlloc(t *testing.T) {
	s := New(1)
	c := s.NewCond("guard")
	var allocs float64
	s.Spawn("poller", func(p *Proc) {
		for i := 0; i < 64; i++ { // warm-up
			c.WaitTimeout(p, 10*time.Nanosecond)
		}
		allocs = testing.AllocsPerRun(1000, func() {
			if c.WaitTimeout(p, 10*time.Nanosecond) {
				t.Error("WaitTimeout returned true with no signaller")
			}
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("WaitTimeout allocates %.1f times per op, want 0", allocs)
	}
}

// TestChainCanonDeliveryOrder pins the canonical same-instant execution
// order the partitioned engine depends on: locally scheduled events fire in
// schedule order, and cross-partition deliveries — stamped with their
// (source, sequence) merge key — fire after them in key order, regardless
// of the order they were pushed into the bucket. Delivery push order is
// barrier order, which shifts with the partition layout, so any dependence
// on it would break cross-layout byte-identity (the fig. 9 regression: two
// messages serialized at the same instant toward one receiver swapped
// their ACK order between LP counts).
func TestChainCanonDeliveryOrder(t *testing.T) {
	const T = Time(100)
	// Each push records a tag; the canonical firing order must come out
	// identical for every delivery push order.
	run := func(order []int) []string {
		s := New(1)
		var fired []string
		local := func(tag string) {
			s.At(T, func() { fired = append(fired, tag) })
		}
		delivery := func(src int, seq uint64, tag string) {
			e := s.newEvent(T, func() { fired = append(fired, tag) }, nil)
			e.rsrc, e.rseq = src, seq
			s.wheelPush(e)
		}
		local("l0")
		// Deliveries keyed (src, seq); push order permuted per run.
		devs := []func(){
			func() { delivery(3, 1, "d:3,1") },
			func() { delivery(2, 7, "d:2,7") },
			func() { delivery(2, 4, "d:2,4") },
			func() { delivery(5, 2, "d:5,2") },
		}
		for _, i := range order {
			devs[i]()
		}
		local("l1")
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return fired
	}
	want := []string{"l0", "l1", "d:2,4", "d:2,7", "d:3,1", "d:5,2"}
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}} {
		got := run(order)
		if len(got) != len(want) {
			t.Fatalf("order %v: fired %v, want %v", order, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order %v: fired %v, want %v", order, got, want)
			}
		}
	}
}
