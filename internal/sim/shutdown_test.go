package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// goroutinesSettle polls until the process goroutine count drops to at most
// want, giving killed proc goroutines (which have already handed control
// back when Shutdown returns, but may not have finished exiting) a moment
// to unwind. Returns the last observed count.
func goroutinesSettle(want int) int {
	var n int
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	return n
}

// TestShutdownReleasesGoroutines pins the teardown contract: after
// Shutdown, a simulation retains no goroutines — neither pooled idle procs
// nor procs that were still blocked when Run returned. Without it, every
// discarded Simulation would leak its proc population for the life of the
// process, and sweeps over many short-lived simulations slow down as GC
// mark work accumulates (the regression this test exists to prevent).
func TestShutdownReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		s := New(int64(i))
		c := s.NewCond("never")
		// A mix of terminal states: finished procs (pooled goroutines),
		// procs blocked on a cond that never signals, and a proc asleep
		// past the horizon.
		for j := 0; j < 4; j++ {
			s.Spawn(fmt.Sprintf("done%d", j), func(p *Proc) { p.Sleep(5) })
		}
		for j := 0; j < 3; j++ {
			s.Spawn(fmt.Sprintf("stuck%d", j), func(p *Proc) { c.Wait(p) })
		}
		s.Spawn("sleeper", func(p *Proc) { p.Sleep(1 << 30) })
		s.SetHorizon(100)
		if err := s.Run(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		s.Shutdown()
		s.Shutdown() // idempotent
	}
	if n := goroutinesSettle(base); n > base {
		t.Fatalf("goroutines = %d after 20 shutdown simulations, started with %d", n, base)
	}
}

// TestShutdownRunsDeferredFunctions pins that a Proc blocked mid-body is
// unwound — not abandoned — so its deferred cleanups (unlocks, signals)
// run, exactly like a killed thread running its unwind handlers.
func TestShutdownRunsDeferredFunctions(t *testing.T) {
	s := New(1)
	c := s.NewCond("never")
	cleaned := false
	s.Spawn("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		c.Wait(p)
	})
	if err := s.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	if cleaned {
		t.Fatal("deferred cleanup ran before Shutdown")
	}
	s.Shutdown()
	if !cleaned {
		t.Fatal("deferred cleanup did not run during Shutdown")
	}
}
