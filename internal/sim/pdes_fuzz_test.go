package sim

import (
	"encoding/binary"
	"testing"
)

// FuzzWindowMerge pins the property the PDES determinism contract rests on:
// mergeRouted's (time, source actor, per-source sequence) key is a total
// order over a barrier's cross-LP events, so the delivery order is
// independent of how actors are grouped into logical partitions. The fuzzer
// decodes one global send stream, replays it through two different
// partition layouts — each outbox receives its actors' sends in send order,
// outboxes concatenate in LP order, exactly as Group.deliver does — and
// requires both merges to produce the identical sequence.
func FuzzWindowMerge(f *testing.F) {
	// Seeds: same-instant bursts from distinct sources, one source fanning
	// out at one instant (seq must break the tie), interleaved instants.
	f.Add([]byte{0, 0, 1, 2, 0, 0, 2, 1, 0, 0, 0, 3}, uint8(1), uint8(3))
	f.Add([]byte{5, 0, 1, 1, 5, 0, 1, 2, 5, 0, 1, 3}, uint8(2), uint8(4))
	f.Add([]byte{1, 0, 0, 1, 0, 0, 1, 0, 2, 0, 2, 0}, uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, lpsA, lpsB uint8) {
		kA := int(lpsA)%8 + 1
		kB := int(lpsB)%8 + 1
		const actors = 16
		// Decode the send stream: 4 bytes per event — at(2), from(1), to(1).
		// Per-source sequence numbers are assigned in stream order, matching
		// Route's invariant that an actor's seq is strictly increasing.
		var seqs [actors]uint64
		var stream []routed
		for i := 0; i+4 <= len(data) && len(stream) < 512; i += 4 {
			from := int(data[i+2]) % actors
			stream = append(stream, routed{
				at:   Time(binary.LittleEndian.Uint16(data[i : i+2])),
				from: from,
				seq:  seqs[from],
				to:   int(data[i+3]) % actors,
			})
			seqs[from]++
		}
		gather := func(lps int) []routed {
			// Contiguous-block actor assignment, as NewGroup lays out nodes.
			outbox := make([][]routed, lps)
			for _, r := range stream {
				lp := r.from * lps / actors
				outbox[lp] = append(outbox[lp], r)
			}
			var merge []routed
			for _, ob := range outbox {
				merge = append(merge, ob...)
			}
			mergeRouted(merge)
			return merge
		}
		a, b := gather(kA), gather(kB)
		if len(a) != len(b) {
			t.Fatalf("merge lost events: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].at != b[i].at || a[i].from != b[i].from ||
				a[i].seq != b[i].seq || a[i].to != b[i].to {
				t.Fatalf("delivery order diverges at %d between %d and %d LPs:\n  %+v\n  %+v",
					i, kA, kB, a[i], b[i])
			}
			if i > 0 {
				p, q := a[i-1], a[i]
				if p.at > q.at || (p.at == q.at && p.from > q.from) ||
					(p.at == q.at && p.from == q.from && p.seq > q.seq) {
					t.Fatalf("merge order violation at %d: %+v before %+v", i, p, q)
				}
			}
		}
	})
}
