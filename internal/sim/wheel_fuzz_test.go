package sim

import (
	"encoding/binary"
	"testing"
)

// FuzzTimerWheel drives the hierarchical timer wheel with a fuzzed op
// stream — schedule, cancel, and advance ops whose delays span every wheel
// level and the overflow list — and checks the kernel contract: every
// armed timer fires exactly at its deadline in strict (time, schedule
// order), a Stop that returns true suppresses the callback forever, and a
// Stop that returns false means the callback already ran.
func FuzzTimerWheel(f *testing.F) {
	// Seeds: same-instant bursts, cascade crossings, far-future overflow,
	// cancel-before-fire, cancel-after-fire, zero delays.
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0xff, 2, 0, 0x10, 3, 0, 1})
	f.Add([]byte{0, 0xff, 0xff, 0, 0xff, 0xff, 3, 0, 0, 1, 0, 0, 2, 0, 1})
	f.Add([]byte{16, 0, 1, 17, 0, 1, 18, 0, 1, 19, 0, 1, 20, 0, 1, 3, 0, 2})
	f.Add([]byte{0, 0, 1, 2, 0, 4, 1, 0, 0, 3, 0, 0, 2, 0, 8, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*512 {
			data = data[:3*512] // bound the schedule, not the delays
		}
		s := New(1)
		type rec struct {
			at        Time
			seq       int
			tm        Timer
			fired     bool
			cancelled bool
		}
		var recs []*rec
		var order []*rec
		s.Spawn("driver", func(p *Proc) {
			for i := 0; i+3 <= len(data); i += 3 {
				op := data[i]
				arg := binary.LittleEndian.Uint16(data[i+1 : i+3])
				switch op % 4 {
				case 0, 1: // schedule; the op's high bits pick the magnitude
					d := Duration(arg) << (uint(op/4) % 8 * 6) // up to ~2^57 ns: overflow territory
					r := &rec{at: s.Now().Add(d), seq: len(recs)}
					r.tm = s.AfterTimer(d, func() {
						if s.Now() != r.at {
							t.Errorf("timer %d fired at %v, armed for %v", r.seq, s.Now(), r.at)
						}
						r.fired = true
						order = append(order, r)
					})
					recs = append(recs, r)
				case 2: // cancel an arbitrary earlier timer
					if len(recs) > 0 {
						r := recs[int(arg)%len(recs)]
						if r.tm.Stop() {
							if r.fired {
								t.Errorf("Stop returned true for fired timer %d", r.seq)
							}
							r.cancelled = true
						} else if !r.fired && !r.cancelled {
							t.Errorf("Stop returned false for pending timer %d", r.seq)
						}
					}
				case 3: // advance the clock mid-stream to force cascades
					p.Sleep(Duration(arg) << (uint(op/4) % 6 * 5))
				}
			}
		})
		if err := s.Run(); err != nil {
			t.Fatalf("simulation failed: %v", err)
		}
		for _, r := range recs {
			if r.cancelled && r.fired {
				t.Fatalf("timer %d both cancelled and fired", r.seq)
			}
			if !r.cancelled && !r.fired {
				t.Fatalf("timer %d armed for %v never fired (clock ended at %v)", r.seq, r.at, s.Now())
			}
		}
		for i := 1; i < len(order); i++ {
			a, b := order[i-1], order[i]
			if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
				t.Fatalf("order violation: timer %d (%v) fired before timer %d (%v)",
					a.seq, a.at, b.seq, b.at)
			}
		}
	})
}
