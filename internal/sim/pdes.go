package sim

// Conservative parallel discrete-event execution (PDES).
//
// A Group couples k Simulations — logical partitions, LPs — into one run
// with a partitioned clock. Model code is partitioned by *actor* (a fabric
// node, plus one control actor for cluster-wide coordination); every actor's
// state lives on exactly one LP and is only ever touched by that LP's
// events. Cross-actor interactions go through Route: the event is buffered
// in the sending LP's outbox and delivered at the next barrier, merged
// across all LPs in deterministic (time, source actor, per-actor sequence)
// order. Routing is structural — the same interactions are routed at every
// LP count, including one — so each actor observes an identical event
// sequence whether the run uses 1 LP or 8, and same-seed outputs are
// byte-identical across LP counts.
//
// The Group runs in one of two modes:
//
//   - Fused: a single-threaded per-instant lockstep. The coordinator
//     advances every LP's clock to the global minimum next-event time t and
//     drains each LP's events at exactly t, rescanning until quiescent.
//     Because all clocks agree at every instant, model code may touch other
//     LPs' simulation state directly (spawn Procs on them, wait on their
//     Conds) — the mode used for setup and teardown, where a control Proc
//     legitimately reaches into every node.
//
//   - Wide: the Chandy–Misra-style parallel phase. Each round the
//     coordinator computes the global minimum next-event time T and lets
//     every LP execute all its events in [T, T+lookahead) concurrently on a
//     pool of worker goroutines. The lookahead is the fabric's minimum
//     cross-node latency (Profile.Lookahead), so no LP can receive a routed
//     event inside the window being executed: every Route arrival time is
//     checked against the window bound. During wide execution an LP's
//     events must touch only that LP's actors.
//
// Conservative, not optimistic: the kernel's value is its determinism
// contract (same seed ⇒ byte-identical traces), which every test in the
// repository pins. Optimistic execution (Time Warp) needs rollback of
// arbitrary model state — Procs, NIC caches, tracer rings — and its
// commit order depends on execution timing, making byte-level determinism
// an uphill fight. Windowed conservative execution never executes an event
// that could be invalidated, so determinism falls out of the merge rule.
import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
)

// routed is one cross-LP event in flight: fn runs on the destination
// actor's LP at instant at. The (at, from, seq) triple is the merge key.
type routed struct {
	at   Time
	from int
	seq  uint64
	to   int
	fn   func()
}

// mergeRouted sorts a barrier's cross-LP events into the deterministic
// delivery order: by time, then source actor, then the source's send
// sequence. The order is a total order over all routed events (an actor's
// seq is strictly increasing), independent of how actors are grouped into
// LPs — the property FuzzWindowMerge pins.
func mergeRouted(evs []routed) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.seq < b.seq
	})
}

// Group is a set of coupled Simulations executing one partitioned run.
// Create one with NewGroup; it is not safe for concurrent use except where
// noted (Route and Fuse may be called from model code inside a window).
type Group struct {
	sims  []*Simulation
	lpOf  []int         // actor -> LP index
	simOf []*Simulation // actor -> owning simulation
	look  Duration
	nodes int

	seqs   []uint64   // per-actor Route sequence; written only by the owner LP
	outbox [][]routed // per-LP send buffers; written only by the owner LP
	merge  []routed   // scratch for the barrier merge

	// limit is the exclusive upper bound of the window being executed. It is
	// written by the coordinator before workers are released and is
	// read-only during the window.
	limit Time

	wide     bool
	wantWide bool
	fuseReq  [][]fuse // per-LP Fuse requests, collected at the barrier

	// Worker pool for wide windows: LP 0 runs on the coordinator, LPs 1..k-1
	// on persistent goroutines synchronized by a spin barrier on round.
	round   uint64
	release atomic.Uint64
	done    []atomic.Uint64
	started bool
	quit    atomic.Bool
}

// NewGroup builds a Group of lps partitions hosting nodes node actors plus
// one control actor (id == nodes) on LP 0. Nodes are assigned to LPs in
// contiguous blocks: node n lives on LP n*lps/nodes. look is the window
// lookahead — the minimum latency of any routed interaction.
func NewGroup(seed int64, lps, nodes int, look Duration) *Group {
	if lps < 1 {
		lps = 1
	}
	if lps > nodes {
		lps = nodes
	}
	if look <= 0 {
		panic("sim: NewGroup requires positive lookahead")
	}
	g := &Group{
		look:    look,
		nodes:   nodes,
		sims:    make([]*Simulation, lps),
		lpOf:    make([]int, nodes+1),
		simOf:   make([]*Simulation, nodes+1),
		seqs:    make([]uint64, nodes+1),
		outbox:  make([][]routed, lps),
		fuseReq: make([][]fuse, lps),
		done:    make([]atomic.Uint64, lps),
	}
	for i := range g.sims {
		g.sims[i] = New(seed + int64(i))
		g.sims[i].lpid = i
	}
	for n := 0; n < nodes; n++ {
		g.lpOf[n] = n * lps / nodes
		g.simOf[n] = g.sims[g.lpOf[n]]
	}
	g.lpOf[nodes] = 0 // control actor
	g.simOf[nodes] = g.sims[0]
	return g
}

// LPs returns the number of logical partitions.
func (g *Group) LPs() int { return len(g.sims) }

// Lookahead returns the window lookahead the Group was built with.
func (g *Group) Lookahead() Duration { return g.look }

// Control returns the control actor's id (== the node count).
func (g *Group) Control() int { return g.nodes }

// Sim returns the Simulation owning the given actor (a node id, or
// Control() for the control actor).
func (g *Group) Sim(actor int) *Simulation { return g.simOf[actor] }

// Events returns the total number of events fired across all partitions.
func (g *Group) Events() uint64 {
	var n uint64
	for _, s := range g.sims {
		n += s.fired
	}
	return n
}

// Now returns the maximum clock across partitions — the run's finishing
// instant once Run has returned.
func (g *Group) Now() Time {
	var t Time
	for _, s := range g.sims {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Route schedules fn on to's partition at instant at, on behalf of actor
// from (which must be the actor whose event is executing). at must be at or
// beyond the current window bound — callers guarantee this by using a delay
// of at least the Group's lookahead. Route may be called concurrently from
// different LPs' windows; an actor's routes are FIFO per source.
func (g *Group) Route(from, to int, at Time, fn func()) {
	if at < g.limit {
		panic(fmt.Sprintf("sim: Route at %v violates window bound %v (from %d to %d, sender clock %v)",
			at, g.limit, from, to, g.simOf[from].now))
	}
	g.seqs[from]++
	lp := g.lpOf[from]
	g.outbox[lp] = append(g.outbox[lp], routed{at: at, from: from, seq: g.seqs[from], to: to, fn: fn})
}

// GoWide switches the Group to wide (parallel window) execution at the next
// barrier. Call it from model code once per-actor isolation holds — after
// setup has finished reaching across partitions.
func (g *Group) GoWide() { g.wantWide = true }

// fuse is one pending Fuse request: the parked Proc and the instant it
// called Fuse, which — being the caller's own causal instant — is the same
// at every partition count and so can anchor the resume time.
type fuse struct {
	p  *Proc
	at Time
}

// Fuse parks the calling Proc and switches the Group back to fused
// (lockstep) execution at the next barrier; p resumes a fixed offset after
// the instant it called Fuse, with every partition clock synchronized, and
// may then touch other partitions' state again. The resume instant is a
// pure function of the call instant, so state read after Fuse is identical
// at every LP count. Call it from the Proc that ends the parallel phase
// (e.g. after a benchmark's sinks have all joined).
func (g *Group) Fuse(p *Proc) {
	lp := p.sim.lpid
	g.fuseReq[lp] = append(g.fuseReq[lp], fuse{p: p, at: p.sim.now})
	p.block("fuse")
}

// deliver flushes every LP's outbox into the destination wheels in merged
// (time, source actor, seq) order. Runs at barriers only.
func (g *Group) deliver() {
	g.merge = g.merge[:0]
	for i, ob := range g.outbox {
		g.merge = append(g.merge, ob...)
		g.outbox[i] = ob[:0]
	}
	if len(g.merge) == 0 {
		return
	}
	mergeRouted(g.merge)
	for i := range g.merge {
		r := &g.merge[i]
		s := g.simOf[r.to]
		e := s.newEvent(r.at, r.fn, nil)
		// Stamp the merge key on the event: the merged order holds within
		// this barrier, but two same-instant deliveries can arrive at
		// different barriers under one partition layout and the same
		// barrier under another (window bounds move with the LP count), so
		// the destination wheel re-sorts ties from this key at detach.
		e.rsrc, e.rseq = r.from+1, r.seq
		s.wheelPush(e)
		r.fn = nil
	}
}

// barrier applies mode transitions requested during the previous window.
func (g *Group) barrier() {
	if g.wantWide {
		g.wide, g.wantWide = true, false
	}
	for lp := range g.fuseReq {
		for _, f := range g.fuseReq[lp] {
			g.wide = false
			// Resume at a deterministic instant. The window bound itself
			// depends on the partition layout (window starts derive from
			// per-partition lower-bound peeks), so it cannot anchor anything
			// observable. Two lookahead intervals past the call instant is at
			// or beyond every partition clock at any LP count, and the extra
			// nanosecond keeps the wake off the route-latency lattice so it
			// does not collide with trailing message arrivals anchored at the
			// same call instant.
			s := f.p.sim
			s.wheelPush(s.newEvent(f.at.Add(2*g.look+1), nil, f.p))
		}
		g.fuseReq[lp] = g.fuseReq[lp][:0]
	}
}

// minNext returns the global minimum next-event time across partitions.
func (g *Group) minNext() (Time, bool) {
	var t Time
	ok := false
	for _, s := range g.sims {
		if u, has := s.nextAt(); has && (!ok || u < t) {
			t, ok = u, true
		}
	}
	return t, ok
}

// runFused executes the single instant t on every partition in LP order,
// rescanning until no partition holds further work at t — a cross-partition
// touch during the instant (a control Proc waking a node Proc) deposits
// same-instant events that a later pass picks up.
func (g *Group) runFused(t Time) {
	g.limit = t + 1
	for _, s := range g.sims {
		s.advanceTo(t)
	}
	for {
		before := g.Events()
		for _, s := range g.sims {
			s.runWindow(t + 1)
		}
		if g.Events() == before {
			return
		}
	}
}

// runWide executes one lookahead window on every partition concurrently:
// LP 0 inline on the coordinator, the rest on the worker pool. On a
// single-core host the pool cannot overlap anything, so the windows run
// serially in LP order instead — identical semantics (windows are
// independent by construction), none of the spin-barrier overhead. Tests
// force the true parallel path by raising GOMAXPROCS above 1.
func (g *Group) runWide(limit Time) {
	g.limit = limit
	if !g.started && runtime.GOMAXPROCS(0) == 1 {
		for _, s := range g.sims {
			s.runWindow(limit)
		}
		return
	}
	if !g.started && len(g.sims) > 1 {
		g.started = true
		for i := 1; i < len(g.sims); i++ {
			go g.worker(i)
		}
	}
	g.round++
	g.release.Store(g.round) // publishes limit to the workers
	g.sims[0].runWindow(limit)
	for i := 1; i < len(g.sims); i++ {
		for g.done[i].Load() != g.round {
			runtime.Gosched()
		}
	}
}

// worker is the body of one wide-window worker: spin until released, run
// the owned partition's window, publish completion.
func (g *Group) worker(i int) {
	var round uint64
	for {
		for g.release.Load() == round {
			runtime.Gosched()
		}
		round = g.release.Load()
		if g.quit.Load() {
			g.done[i].Store(round)
			return
		}
		g.sims[i].runWindow(g.limit)
		g.done[i].Store(round)
	}
}

// Run executes the partitioned simulation to completion: barriers deliver
// routed events and apply mode switches, then either one fused instant or
// one wide window runs. It returns a DeadlockError naming every blocked
// Proc across all partitions if live Procs remain with no pending events.
// Run must be called from the goroutine that owns the Group, once.
func (g *Group) Run() error {
	for {
		g.deliver()
		g.barrier()
		t, ok := g.minNext()
		if !ok {
			break
		}
		if g.wide {
			g.runWide(t.Add(g.look))
		} else {
			g.runFused(t)
		}
	}
	live := 0
	var blocked []string
	for _, s := range g.sims {
		live += s.live
		for p := range s.procs {
			blocked = append(blocked, p.name+": "+p.blockedOn)
		}
	}
	if live > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Time: g.Now(), Blocked: blocked}
	}
	return nil
}

// Shutdown stops the worker pool and terminates every Proc goroutine in
// every partition (see Simulation.Shutdown). Idempotent.
func (g *Group) Shutdown() {
	if g.started && !g.quit.Load() {
		g.quit.Store(true)
		g.release.Store(g.round + 1)
		for i := 1; i < len(g.sims); i++ {
			for g.done[i].Load() != g.round+1 {
				runtime.Gosched()
			}
		}
	}
	for _, s := range g.sims {
		s.Shutdown()
	}
}

// nextAt returns a lower bound on the instant of the earliest pending
// event, touching nothing: no cascade, no clock movement. This matters — a
// cross-LP delivery may land on this partition at any instant ≥ the window
// bound, so a peek that committed clock or wheel state toward a far-future
// local event would put later deliveries in the partition's past, where
// they would never fire. The bound is exact when the earliest event sits in
// the chain, the ring, or a level-0 bucket; for a higher-level bucket it is
// the bucket's stride start, which runWindow refines (its bounded cascades
// commit only up to the window horizon), so repeated rounds converge on the
// true instant without ever overshooting a bound.
func (s *Simulation) nextAt() (Time, bool) {
	if s.chain != nil {
		return s.chain.at, true
	}
	if s.rlen > 0 {
		return s.now, true
	}
	w := &s.wh
	now := uint64(s.now)
	for lvl := 0; lvl < wheelLevels; lvl++ {
		slot := w.scan(lvl, int(now>>(uint(lvl)*wheelBits))&wheelMask)
		if slot < 0 {
			continue
		}
		if lvl == 0 {
			// One timestamp per level-0 bucket: the head's instant is exact.
			return w.b[slot].head.at, true
		}
		shift := uint(lvl) * wheelBits
		stride := (now &^ ((uint64(wheelSlots) << shift) - 1)) | uint64(slot)<<shift
		if Time(stride) <= s.now {
			// The clock is already inside this stride (events pushed under an
			// older clock); all pending events are still in the future.
			return s.now + 1, true
		}
		return Time(stride), true
	}
	// Wheel empty: the earliest overflow event, if any, is exact. (Like
	// wheelAdvance, the wheel is consulted first; overflow events live at
	// least a full wheel span past their scheduling instant.)
	if w.ovHead == nil {
		return 0, false
	}
	min := w.ovHead.at
	for e := w.ovHead.next; e != nil; e = e.next {
		if e.at < min {
			min = e.at
		}
	}
	return min, true
}

// advanceTo moves an idle partition's clock forward to t. Callers guarantee
// no pending event precedes t (t is the global minimum next-event time), so
// the direct assignment is safe: the wheel's bottom-up scan starts at the
// clock's own slot at every level and never skips a future event.
func (s *Simulation) advanceTo(t Time) {
	if t > s.now {
		s.now = t
	}
}

// runWindow executes every pending event with instant < limit, in exactly
// the (time, seq) order Run would use, and stops with the clock at the last
// executed instant (never forced to the bound, so a later routed insertion
// at ≥ limit is always in this partition's future). The horizon is set to
// limit-1 during the window so wheelAdvance never commits clock state past
// the bound.
func (s *Simulation) runWindow(limit Time) {
	save := s.maxT
	s.maxT = limit - 1
	// A window bounded at instant 1 (the fused instant 0) would set horizon
	// 0, which the wheel reads as "none". The wheel holds only events > 0
	// there — instant-0 work lives in the chain and ring — so it is simply
	// skipped instead.
	useWheel := s.maxT != 0
	for {
		var e *event
		if c := s.chain; c != nil {
			if c.at >= limit {
				break
			}
			e, s.chain = c, c.next
		} else if s.rlen > 0 {
			e = s.ringPop()
		} else if useWheel && s.wheelAdvance() == advFound {
			e = s.chain
			s.chain = e.next
		} else {
			break // horizon (next event ≥ limit) or empty
		}
		s.now = e.at
		s.fired++
		if p := e.proc; p != nil {
			gen := e.pgen
			s.releaseEvent(e)
			if p.gen == gen {
				s.dispatch(p)
			}
		} else if e.fire != nil {
			fn := e.fire
			s.releaseEvent(e)
			fn()
		} else if c := e.cond; c != nil {
			wid := e.wid
			s.releaseEvent(e)
			c.timeoutFire(wid)
		} else {
			s.releaseEvent(e)
		}
	}
	s.maxT = save
}
