package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v, want 30", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	s := New(1)
	var at1, at2 Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100 * time.Nanosecond)
		at1 = p.Now()
		p.Sleep(250 * time.Nanosecond)
		at2 = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 100 || at2 != 350 {
		t.Fatalf("sleep times = %v, %v; want 100, 350", at1, at2)
	}
}

func TestNegativeSleepIsYield(t *testing.T) {
	s := New(1)
	s.Spawn("p", func(p *Proc) {
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	s := New(1)
	var trace []string
	step := func(p *Proc, d Duration) {
		p.Sleep(d)
		trace = append(trace, fmt.Sprintf("%s@%d", p.Name(), p.Now()))
	}
	s.Spawn("a", func(p *Proc) { step(p, 10); step(p, 20) }) // a@10, a@30
	s.Spawn("b", func(p *Proc) { step(p, 15); step(p, 10) }) // b@15, b@25
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@10", "b@15", "b@25", "a@30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	s := New(1)
	c := s.NewCond("c")
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	s.At(10, func() { c.Signal() })
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock: two waiters never woken")
	}
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %T, want *DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked = %v, want 2 procs", de.Blocked)
	}
}

func TestCondBroadcast(t *testing.T) {
	s := New(1)
	c := s.NewCond("c")
	woken := 0
	for i := 0; i < 5; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	s.At(10, func() { c.Broadcast() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	s := New(1)
	c := s.NewCond("c")
	var ok1, ok2 bool
	var t1, t2 Time
	s.Spawn("timesout", func(p *Proc) {
		ok1 = c.WaitTimeout(p, 100*time.Nanosecond)
		t1 = p.Now()
	})
	s.Spawn("signalled", func(p *Proc) {
		ok2 = c.WaitTimeout(p, 1000*time.Nanosecond)
		t2 = p.Now()
	})
	// Signal at t=200: the first waiter has already timed out at t=100 and
	// must not be re-woken; the second is still waiting.
	s.At(200, func() { c.Signal() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ok1 || t1 != 100 {
		t.Fatalf("first waiter: ok=%v at %v, want timeout at 100", ok1, t1)
	}
	if !ok2 || t2 != 200 {
		t.Fatalf("second waiter: ok=%v at %v, want signal at 200", ok2, t2)
	}
}

func TestCondTimeoutDoesNotFireAfterWake(t *testing.T) {
	s := New(1)
	c := s.NewCond("c")
	wakes := 0
	s.Spawn("w", func(p *Proc) {
		if !c.WaitTimeout(p, 1000*time.Nanosecond) {
			t.Error("wait timed out despite early signal")
		}
		wakes++
		p.Sleep(5000 * time.Nanosecond) // outlive the stale timer
	})
	s.At(10, func() { c.Signal() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 1 {
		t.Fatalf("wakes = %d, want 1", wakes)
	}
}

func TestMutexFIFO(t *testing.T) {
	s := New(1)
	m := s.NewMutex("m")
	var order []string
	hold := func(p *Proc) {
		m.Lock(p)
		order = append(order, p.Name())
		p.Sleep(10 * time.Nanosecond)
		m.Unlock(p)
	}
	// Spawn in name order; all contend at t=0 after the first grabs it.
	for _, n := range []string{"a", "b", "c", "d"} {
		n := n
		s.Spawn(n, func(p *Proc) { hold(p) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("lock order = %v, want FIFO %v", order, want)
		}
	}
	if s.Now() != 40 {
		t.Fatalf("serial critical sections should end at 40, got %v", s.Now())
	}
}

func TestMutexPanicsOnBadUse(t *testing.T) {
	s := New(1)
	m := s.NewMutex("m")
	recovered := false
	s.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		m.Lock(p)
		m.Lock(p) // recursive: must panic
	})
	_ = s.Run()
	if !recovered {
		t.Fatal("recursive lock did not panic")
	}
}

func TestQueueBlockingGet(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, "q")
	var got []int
	s.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10 * time.Nanosecond)
			q.Put(i)
		}
		q.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got = %v, want [1 2 3]", got)
	}
}

func TestQueueCloseUnblocksAll(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, "q")
	done := 0
	for i := 0; i < 4; i++ {
		s.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			_, ok := q.Get(p)
			if ok {
				t.Error("Get returned ok on empty closed queue")
			}
			done++
		})
	}
	s.At(50, func() { q.Close() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
}

func TestWaitGroup(t *testing.T) {
	s := New(1)
	wg := s.NewWaitGroup("wg")
	finished := 0
	for i := 0; i < 3; i++ {
		d := Duration(i+1) * 10 * time.Nanosecond
		wg.Go(fmt.Sprintf("g%d", i), func(p *Proc) {
			p.Sleep(d)
			finished++
		})
	}
	var joinedAt Time
	s.Spawn("joiner", func(p *Proc) {
		wg.Wait(p)
		joinedAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 3 || joinedAt != 30 {
		t.Fatalf("finished=%d joinedAt=%v, want 3 at 30", finished, joinedAt)
	}
}

func TestSpawnFromProc(t *testing.T) {
	s := New(1)
	var childRan bool
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(10 * time.Nanosecond)
		s.Spawn("child", func(c *Proc) {
			c.Sleep(5 * time.Nanosecond)
			childRan = true
			if c.Now() != 15 {
				t.Errorf("child time = %v, want 15", c.Now())
			}
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestHorizonStopsRun(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(10, func() { fired++ })
	s.At(1000, func() { fired++ })
	s.SetHorizon(100)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (second event past horizon)", fired)
	}
	if s.Now() != 100 {
		t.Fatalf("Now = %v, want horizon 100", s.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		s := New(42)
		var trace []string
		m := s.NewMutex("m")
		c := s.NewCond("c")
		q := NewQueue[int](s, "q")
		for i := 0; i < 5; i++ {
			i := i
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(Duration(s.Rand().Intn(100)))
				m.Lock(p)
				trace = append(trace, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
				p.Sleep(Duration(s.Rand().Intn(50)))
				m.Unlock(p)
				q.Put(i)
				c.Broadcast()
			})
		}
		s.Spawn("drain", func(p *Proc) {
			for n := 0; n < 5; {
				if _, ok := q.TryGet(); ok {
					n++
					continue
				}
				c.Wait(p)
			}
			trace = append(trace, fmt.Sprintf("drained@%v", p.Now()))
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic trace lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any set of sleep durations, each Proc wakes exactly at the
// prefix sums of its own sleeps, independent of the other Procs.
func TestSleepIsolationProperty(t *testing.T) {
	f := func(a, b []uint16) bool {
		s := New(7)
		check := func(name string, ds []uint16) {
			s.Spawn(name, func(p *Proc) {
				var total Time
				for _, d := range ds {
					p.Sleep(Duration(d))
					total += Time(d)
					if p.Now() != total {
						t.Errorf("%s: woke at %v, want %v", name, p.Now(), total)
					}
				}
			})
		}
		check("a", a)
		check("b", b)
		return s.Run() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Mutex never admits two holders: we track a critical-section
// depth that must alternate 0->1->0 strictly.
func TestMutexExclusionProperty(t *testing.T) {
	f := func(sleeps []uint8) bool {
		if len(sleeps) == 0 {
			return true
		}
		s := New(11)
		m := s.NewMutex("m")
		depth, maxDepth := 0, 0
		for i, d := range sleeps {
			d := Duration(d)
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				m.Lock(p)
				depth++
				if depth > maxDepth {
					maxDepth = depth
				}
				p.Sleep(d + 1)
				depth--
				m.Unlock(p)
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return maxDepth == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: events scheduled at arbitrary times fire in nondecreasing time
// order.
func TestEventMonotonicityProperty(t *testing.T) {
	f := func(times []uint32) bool {
		s := New(3)
		var fired []Time
		for _, at := range times {
			s.At(Time(at), func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMutexHandoff(b *testing.B) {
	s := New(1)
	m := s.NewMutex("m")
	for w := 0; w < 2; w++ {
		s.Spawn(fmt.Sprintf("w%d", w), func(p *Proc) {
			for i := 0; i < b.N/2; i++ {
				m.Lock(p)
				p.Sleep(1)
				m.Unlock(p)
			}
		})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestBusyBlockedAccounting(t *testing.T) {
	s := New(1)
	c := s.NewCond("c")
	var worker *Proc
	worker = s.Spawn("worker", func(p *Proc) {
		p.Sleep(100) // busy
		c.Wait(p)    // blocked until t=500
		p.Sleep(50)  // busy
	})
	s.At(500, func() { c.Broadcast() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if worker.BusyTime() != 150 {
		t.Fatalf("busy = %v, want 150ns", worker.BusyTime())
	}
	if worker.BlockedTime() != 400 {
		t.Fatalf("blocked = %v, want 400ns", worker.BlockedTime())
	}
}

func TestMutexWaitCountsAsBlocked(t *testing.T) {
	s := New(1)
	m := s.NewMutex("m")
	var second *Proc
	s.Spawn("first", func(p *Proc) {
		m.Lock(p)
		p.Sleep(200)
		m.Unlock(p)
	})
	second = s.Spawn("second", func(p *Proc) {
		m.Lock(p) // blocked ~200ns behind first
		m.Unlock(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if second.BlockedTime() != 200 {
		t.Fatalf("blocked = %v, want 200ns", second.BlockedTime())
	}
}
