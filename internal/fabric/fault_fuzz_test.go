package fabric

import (
	"slices"
	"strings"
	"testing"

	"rshuffle/internal/sim"
)

// FuzzFaultPlanValidation throws arbitrary rule fields at FaultPlan.Add and
// checks the contract both ways: a rejected rule must fail with a
// diagnosable "fabric:" panic (never an index error or a nil dereference),
// and an accepted rule must satisfy the plan's scheduling invariants at
// every probed instant — no activity before Start, crash-stops are
// permanent, reboot windows heal, partitions respect their groups and their
// heal deadline, and severed stays consistent with down and cut.
func FuzzFaultPlanValidation(f *testing.F) {
	// One seed per class, plus the tricky shapes: a reboot expressed via
	// OnFor, a periodic pause, an asymmetric partition, overlapping windows
	// via Period > OnFor, and degenerate zero-width windows.
	f.Add(uint8(0), int64(-1), int64(1), int64(0), int64(0), int64(0), 0.5, int64(3), 1.0, uint8(1), uint8(2), false)
	f.Add(uint8(5), int64(1), int64(1), int64(100), int64(0), int64(0), 0.0, int64(0), 1.0, uint8(0), uint8(0), false)   // crash
	f.Add(uint8(6), int64(1), int64(1), int64(100), int64(900), int64(0), 0.0, int64(0), 1.0, uint8(0), uint8(0), false) // reboot via End
	f.Add(uint8(6), int64(1), int64(1), int64(100), int64(0), int64(800), 0.0, int64(0), 1.0, uint8(0), uint8(0), false) // reboot via OnFor
	f.Add(uint8(6), int64(1), int64(1), int64(100), int64(90), int64(0), 0.0, int64(0), 1.0, uint8(0), uint8(0), false)  // reboot ends before it starts
	f.Add(uint8(7), int64(0), int64(0), int64(50), int64(5000), int64(0), 0.0, int64(0), 1.0, uint8(0b0010), uint8(0b1101), true)
	f.Add(uint8(7), int64(0), int64(0), int64(50), int64(40), int64(0), 0.0, int64(0), 1.0, uint8(0b0010), uint8(0b0110), false) // End<Start, groups overlap
	f.Add(uint8(4), int64(-1), int64(2), int64(0), int64(0), int64(300), 0.0, int64(0), 1.0, uint8(0), uint8(0), false)          // pause, OnFor only
	f.Add(uint8(4), int64(-1), int64(2), int64(10), int64(0), int64(0), 0.0, int64(0), 1.0, uint8(0), uint8(0), false)           // open-ended pause: rejected
	f.Add(uint8(3), int64(-1), int64(1), int64(0), int64(0), int64(0), 0.0, int64(0), 0.25, uint8(0), uint8(0), false)           // degrade
	f.Fuzz(func(t *testing.T, class uint8, from, to, start, end, onFor int64, rate float64, count int64, factor float64, maskA, maskB uint8, asym bool) {
		const nodes = 8
		r := FaultRule{
			Class: FaultClass(class % 8), From: int(from % nodes), To: int(to % nodes),
			Start: sim.Time(start), End: sim.Time(end),
			OnFor: sim.Duration(onFor), Rate: rate, Count: int(count % 16), Factor: factor,
			Asym: asym,
		}
		for n := 0; n < nodes; n++ {
			if maskA&(1<<n) != 0 {
				r.GroupA = append(r.GroupA, n)
			}
			if maskB&(1<<n) != 0 {
				r.GroupB = append(r.GroupB, n)
			}
		}
		var p FaultPlan
		accepted := func() (ok bool) {
			defer func() {
				if msg := recover(); msg != nil {
					s, isStr := msg.(string)
					if !isStr || !strings.HasPrefix(s, "fabric:") {
						t.Fatalf("Add paniced without a diagnosable fabric error: %v", msg)
					}
					ok = false
				}
			}()
			p.Add(r)
			return true
		}()
		if !accepted {
			// A rejected rule must leave the plan untouched.
			if !p.Empty() {
				t.Fatal("rejected rule left residue in the plan")
			}
			return
		}
		// Probe the plan across the rule's own landmarks plus surrounding
		// instants; every query must return without panicking and obey the
		// class semantics. The probes walk forward in time so monotone
		// properties (a crash never heals) are checkable.
		probes := []sim.Time{0, 1, r.Start - 1, r.Start, r.Start + 1,
			r.Start.Add(r.OnFor), r.End - 1, r.End, r.End + 1,
			r.Start.Add(3*r.OnFor + 17), 1 << 40}
		probes = slices.DeleteFunc(probes, func(t sim.Time) bool { return t < 0 })
		slices.Sort(probes)
		wasDown := false
		for _, now := range probes {
			for a := 0; a < nodes; a++ {
				down := p.down(a, now)
				if down && now < r.Start {
					t.Fatalf("node %d down at %v, before Start %v", a, now, r.Start)
				}
				if down && r.Class != FaultCrash && r.Class != FaultReboot {
					t.Fatalf("class %d marked node %d down", r.Class, a)
				}
				if r.Class == FaultReboot && down {
					if r.End != 0 && now >= r.End {
						t.Fatalf("reboot window did not heal at End: down at %v, End %v", now, r.End)
					}
					if r.End == 0 && now.Sub(r.Start) >= r.OnFor {
						t.Fatalf("reboot window did not heal at Start+OnFor: down at %v", now)
					}
				}
				for b := 0; b < nodes; b++ {
					cut := p.cut(a, b, now)
					if cut {
						if r.Class != FaultPartition {
							t.Fatalf("class %d cut link (%d,%d)", r.Class, a, b)
						}
						if now < r.Start || now >= r.End {
							t.Fatalf("cut (%d,%d) outside window at %v", a, b, now)
						}
						ab := inGroup(r.GroupA, a) && inGroup(r.GroupB, b)
						ba := inGroup(r.GroupB, a) && inGroup(r.GroupA, b)
						if !ab && !(ba && !r.Asym) {
							t.Fatalf("cut (%d,%d) not implied by the partition groups", a, b)
						}
					}
					if want := p.down(a, now) || p.down(b, now) || cut; p.severed(a, b, now, now) != want {
						t.Fatalf("severed(%d,%d) inconsistent with down/cut at %v", a, b, now)
					}
				}
			}
			// Crash-stops are permanent over any non-decreasing probe walk.
			if r.Class == FaultCrash && r.To >= 0 {
				down := p.down(r.To, now)
				if wasDown && !down && now >= r.Start {
					t.Fatalf("crash-stopped node %d came back at %v", r.To, now)
				}
				wasDown = down
			}
		}
		// downTime names an instant the node is genuinely dark, and the
		// window machinery must agree.
		if r.Class == FaultCrash || r.Class == FaultReboot {
			at, found := p.downTime(r.To)
			if !found {
				t.Fatalf("downTime found no window for class %d", r.Class)
			}
			if at != r.Start {
				t.Fatalf("downTime = %v, want Start %v", at, r.Start)
			}
			if at >= 0 && !p.down(r.To, at) {
				t.Fatalf("node %d not down at its own downTime %v", r.To, at)
			}
		}
		// pausedUntil must terminate and never travel backwards.
		for _, now := range probes {
			if now < 0 {
				continue
			}
			if until := p.pausedUntil(r.To, now); until < now {
				t.Fatalf("pausedUntil(%d, %v) = %v travelled backwards", r.To, now, until)
			}
		}
	})
}
