// Package fabric models an InfiniBand-like lossless switched network in
// virtual time: per-link serialization, switch-port queueing, NIC
// work-request engines with a finite Queue-Pair state cache, MTU
// segmentation, out-of-order delivery on the datagram service, and fault
// injection.
//
// The model is event-driven and requires no simulated Procs: a transmit is a
// pure computation over two "busy-until" servers (the sender uplink and the
// receiver downlink), so a million-message shuffle costs only a few events
// per message.
package fabric

import (
	"time"

	"rshuffle/internal/sim"
)

// Service is the transport service type of a transmission, mirroring the
// InfiniBand transport services the paper uses.
type Service int

const (
	// RC is the Reliable Connection service: connection-oriented, in-order,
	// acknowledged delivery, messages up to 1 GiB.
	RC Service = iota
	// UD is the Unreliable Datagram service: connectionless, unacknowledged,
	// possibly out-of-order delivery, messages up to one MTU.
	UD
)

func (s Service) String() string {
	if s == RC {
		return "RC"
	}
	return "UD"
}

// Profile holds every calibrated constant of a cluster: link speed, NIC
// behaviour, and the host CPU cost model. The FDR and EDR constructors mirror
// the two clusters of the paper's evaluation.
type Profile struct {
	Name string

	// Link and switch.

	// LinkBandwidth is the usable wire rate of each host link in bytes/sec.
	LinkBandwidth float64
	// PropagationDelay is the one-way host-switch-host propagation time.
	PropagationDelay sim.Duration
	// SwitchDelay is the per-message switching latency.
	SwitchDelay sim.Duration
	// MTU is the maximum transmission unit; it caps UD message size.
	MTU int
	// HeaderRC and HeaderUD are per-MTU-packet wire overhead in bytes
	// (headers plus amortized link-level ACK traffic for RC).
	HeaderRC, HeaderUD int
	// MaxMsgRC caps RC message size (the InfiniBand spec allows up to 1 GiB).
	MaxMsgRC int

	// NIC.

	// WQEProcessing is the NIC-side fixed cost to fetch and execute one work
	// request.
	WQEProcessing sim.Duration
	// QPCacheSize is the number of Queue Pair states the NIC caches on-chip.
	QPCacheSize int
	// QPCacheMissPenalty is the extra NIC occupancy when a work request
	// touches a Queue Pair whose state must be fetched across PCIe.
	QPCacheMissPenalty sim.Duration
	// ReadRequestBytes is the wire size of a one-sided read request packet.
	ReadRequestBytes int
	// RNRRetryDelay is how long the sender NIC waits before retrying an RC
	// Send that found no posted Receive at the destination.
	RNRRetryDelay sim.Duration
	// RNRRetryCount bounds RNR retries, as ibv_modify_qp's rnr_retry does
	// on real HCAs. When exhausted the sender QP enters the Error state and
	// the send completes with an RNR-retry-exceeded status.
	RNRRetryCount int
	// RetryCount bounds transport-level retries of lost or unacknowledged
	// RC packets (ibv_modify_qp retry_cnt); exhaustion errors the QP.
	RetryCount int
	// TransportRetryDelay is how long the sender NIC waits for a missing
	// acknowledgment before retransmitting an RC message (the local ACK
	// timeout).
	TransportRetryDelay sim.Duration
	// UDReorderProb is the probability that a UD packet is delayed by a
	// random jitter of up to UDReorderJitter, which can reorder it with later
	// packets.
	UDReorderProb   float64
	UDReorderJitter sim.Duration
	// UDLossRate is the probability that a UD packet is silently lost on the
	// wire (bit errors; rare in practice).
	UDLossRate float64

	// Lossy Ethernet tier (RoCEv2). All zero on the InfiniBand and legacy
	// lossless RoCE/iWARP profiles: Lossy == false keeps every congestion
	// branch disabled, so those profiles are bit-for-bit unchanged.

	// Lossy enables the Ethernet congestion model: per-egress-port buffer
	// occupancy with ECN marking, PFC pause frames propagated upstream, and
	// tail drop on overrun, instead of InfiniBand's lossless link-level
	// credits.
	Lossy bool
	// SwitchBufferBytes is the per-egress-port shared-buffer allotment; a
	// data packet that would overrun it is tail-dropped.
	SwitchBufferBytes int
	// PFCXoffBytes and PFCXonBytes are the pause hysteresis thresholds:
	// when occupancy crosses XOFF the port sends a pause frame upstream and
	// the arriving sender's uplink freezes until the port would have
	// drained back to XON.
	PFCXoffBytes, PFCXonBytes int
	// ECNMarkBytes is the marking threshold (below XOFF, as DCQCN requires):
	// data packets arriving above it are CE-marked and the receiver NIC
	// answers with a congestion notification packet toward the sender QP.
	ECNMarkBytes int

	// DCQCN enables the per-QP rate limiter in the NIC TX engine (CNP on
	// marked arrivals, multiplicative rate cut, additive/hyper recovery).
	DCQCN bool
	// CNPBytes is the payload size of one congestion notification packet
	// (it rides the control lane).
	CNPBytes int
	// CNPInterval is the minimum per-flow gap between generated CNPs (the
	// CNP timer of the DCQCN paper).
	CNPInterval sim.Duration
	// DCQCNAlphaG is the EWMA gain g of the congestion estimate alpha.
	DCQCNAlphaG float64
	// DCQCNRateAI is the additive-increase step in bytes/s applied to the
	// target rate each recovery period.
	DCQCNRateAI float64
	// DCQCNMinRate floors the per-QP rate so a cut flow keeps probing.
	DCQCNMinRate float64
	// DCQCNRecoveryPeriod is the rate/alpha recovery timer period.
	DCQCNRecoveryPeriod sim.Duration

	// Host CPU cost model.

	// PostCost is the CPU cost of one ibv_post_send/ibv_post_recv call.
	PostCost sim.Duration
	// PollCost is the CPU cost of one ibv_poll_cq call.
	PollCost sim.Duration
	// MemCopyPerByte is the per-byte CPU cost of copying between application
	// and RDMA-registered memory (also used by the engine's materialization).
	MemCopyPerByte float64 // ns per byte
	// HashPerTuple is the CPU cost of hashing one tuple during partitioning.
	HashPerTuple sim.Duration
	// TupleProcess is the per-tuple CPU cost of light operator work (scan
	// predicate evaluation, projection bookkeeping).
	TupleProcess sim.Duration

	// Setup costs (Fig. 12).

	// ConnSetupPerQP is the out-of-band cost to create, transition and
	// exchange one RC Queue Pair (or to create one UD QP and its address
	// handles).
	ConnSetupPerQP sim.Duration
	// ConnSetupBase is the fixed per-node cost to bootstrap the exchange.
	ConnSetupBase sim.Duration
	// MemRegBase and MemRegPerByte model ibv_reg_mr.
	MemRegBase    sim.Duration
	MemRegPerByte float64 // ns per byte
	// MemDeregBase models ibv_dereg_mr.
	MemDeregBase sim.Duration

	// MPI cost model.

	// MPIPerMessage is the per-message library overhead of the era's
	// MVAPICH under MPI_THREAD_MULTIPLE (tag matching, request management,
	// lock handoffs), charged under the library lock. Together with the
	// rendezvous staging copy it calibrates the paper's measured MPI
	// throughput (roughly half the line rate on EDR, less on FDR).
	MPIPerMessage sim.Duration

	// TCP/IPoIB cost model.

	// TCPPerByte is the per-byte CPU cost of the TCP stack (copies, checksum);
	// it is what makes IPoIB CPU-bound.
	TCPPerByte float64 // ns per byte
	// TCPPerMessage is the per-send/recv syscall cost.
	TCPPerMessage sim.Duration
	// IPoIBBandwidth is the achievable IPoIB wire rate (lower than native).
	IPoIBBandwidth float64

	// SupportsUD reports whether the transport offers an Unreliable
	// Datagram service. InfiniBand and RoCE do; iWARP does not, which rules
	// out the SQ/SR designs there.
	SupportsUD bool

	// SGEPerTuple is the per-scatter/gather-element cost of a zero-copy
	// send: without copying, every (non-contiguous) record needs its own
	// gather entry in the work request (cf. Kesavan et al., to copy or not
	// to copy).
	SGEPerTuple sim.Duration

	// Threads is the default worker-thread count per node on this cluster.
	Threads int
}

// FDR returns the profile of the paper's 56 Gb/s FDR InfiniBand cluster
// (dual-socket Xeon E5-2670v2, 10 cores/socket). Its NIC caches few QP
// states, so multi-QP designs degrade as the cluster grows.
func FDR() Profile {
	return Profile{
		Name:                "FDR",
		LinkBandwidth:       6.60e9, // ~6.15 GiB/s usable wire rate
		PropagationDelay:    600 * time.Nanosecond,
		SwitchDelay:         200 * time.Nanosecond,
		MTU:                 4096,
		HeaderRC:            38,
		HeaderUD:            66,
		MaxMsgRC:            1 << 30,
		WQEProcessing:       35 * time.Nanosecond,
		QPCacheSize:         48,
		QPCacheMissPenalty:  1200 * time.Nanosecond,
		ReadRequestBytes:    30,
		RNRRetryDelay:       12 * time.Microsecond,
		RNRRetryCount:       7,
		RetryCount:          7,
		TransportRetryDelay: 400 * time.Microsecond,
		UDReorderProb:       0.02,
		UDReorderJitter:     4 * time.Microsecond,
		UDLossRate:          0,
		PostCost:            340 * time.Nanosecond,
		PollCost:            90 * time.Nanosecond,
		MemCopyPerByte:      0.12,
		HashPerTuple:        4 * time.Nanosecond,
		TupleProcess:        3 * time.Nanosecond,
		ConnSetupPerQP:      1300 * time.Microsecond,
		ConnSetupBase:       2 * time.Millisecond,
		MemRegBase:          500 * time.Microsecond,
		MemRegPerByte:       0.015,
		MemDeregBase:        200 * time.Microsecond,
		MPIPerMessage:       2800 * time.Nanosecond,
		TCPPerByte:          0.42,
		TCPPerMessage:       1800 * time.Nanosecond,
		IPoIBBandwidth:      3.2e9,
		SupportsUD:          true,
		SGEPerTuple:         60 * time.Nanosecond,
		Threads:             10,
	}
}

// EDR returns the profile of the paper's 100 Gb/s EDR InfiniBand cluster
// (dual-socket Xeon E5-2680v4, 14 cores/socket). Its NIC caches many more QP
// states, so multi-QP designs keep scaling (cf. Kalia et al., FaSST).
func EDR() Profile {
	p := FDR()
	p.Name = "EDR"
	p.LinkBandwidth = 12.40e9 // ~11.5 GiB/s usable wire rate
	p.QPCacheSize = 1024
	p.QPCacheMissPenalty = 900 * time.Nanosecond
	p.WQEProcessing = 25 * time.Nanosecond
	p.PostCost = 280 * time.Nanosecond
	p.PollCost = 75 * time.Nanosecond
	p.MemCopyPerByte = 0.095
	p.HashPerTuple = 3 * time.Nanosecond
	p.TupleProcess = 2 * time.Nanosecond
	p.ConnSetupPerQP = 1250 * time.Microsecond
	p.MPIPerMessage = 350 * time.Nanosecond
	p.TCPPerByte = 0.28
	p.IPoIBBandwidth = 4.4e9
	p.Threads = 14
	return p
}

// RoCE returns a profile for a 40 GbE RDMA-over-Converged-Ethernet network
// (the paper's second future-work item). The verbs interface is identical;
// the Ethernet fabric has lower usable bandwidth, higher switching latency,
// and Priority Flow Control makes it lossless like InfiniBand.
func RoCE() Profile {
	p := EDR()
	p.Name = "RoCE"
	p.LinkBandwidth = 4.45e9 // 40 GbE with Ethernet framing overheads
	p.PropagationDelay = 900 * time.Nanosecond
	p.SwitchDelay = 600 * time.Nanosecond
	p.HeaderRC = 58 // Ethernet+IP+UDP encapsulation (RoCEv2)
	p.HeaderUD = 86
	p.QPCacheSize = 512
	p.Threads = 14
	return p
}

// RoCEv2Lossy returns the RoCE profile with the lossless illusion removed:
// the same 40 GbE wire, but switch egress ports have finite shared buffers,
// congestion marks ECN below the PFC pause point, overruns tail-drop, and the
// NICs run a DCQCN-style per-QP rate limiter. Drops and pauses are emergent
// from traffic, not injected faults. Thresholds follow common shallow-buffer
// ToR tuning: mark early (96 KiB), pause late (192 KiB), drop only when the
// 288 KiB allotment is exhausted; XON at 128 KiB gives pause hysteresis.
func RoCEv2Lossy() Profile {
	p := RoCE()
	p.Name = "RoCEv2"
	p.Lossy = true
	p.SwitchBufferBytes = 288 << 10
	p.PFCXoffBytes = 192 << 10
	p.PFCXonBytes = 128 << 10
	p.ECNMarkBytes = 96 << 10
	p.DCQCN = true
	p.CNPBytes = 58
	p.CNPInterval = 50 * time.Microsecond
	// The DCQCN paper uses g = 1/256 with a dedicated 55 µs alpha timer; we
	// piggyback the alpha decay on the recovery timer, and on the few-ms
	// timescale of a whole shuffle alpha must relax within hundreds of
	// microseconds or every CNP keeps halving the rate. g = 1/16 gives the
	// same equilibrium shape at our timescale.
	p.DCQCNAlphaG = 1.0 / 16
	p.DCQCNRateAI = 80e6
	p.DCQCNMinRate = 60e6
	p.DCQCNRecoveryPeriod = 55 * time.Microsecond
	return p
}

// IWARP returns a profile for a 40 GbE iWARP (RDMA over offloaded TCP)
// network. iWARP offers no Unreliable Datagram service, so the SQ/SR
// designs cannot run; per-message costs are higher because of TCP/DDP
// framing in the NIC.
func IWARP() Profile {
	p := RoCE()
	p.Name = "iWARP"
	p.SupportsUD = false
	p.HeaderRC = 94 // Ethernet+IP+TCP+MPA/DDP/RDMAP framing
	p.WQEProcessing = 80 * time.Nanosecond
	p.PropagationDelay = 1500 * time.Nanosecond
	p.PostCost = 360 * time.Nanosecond
	return p
}

// Lookahead returns the minimum latency between a transmit decision on any
// host and the earliest instant it can be observed at a remote NIC: WQE
// processing plus serialization of the smallest possible frame, plus
// switching and propagation. It is the fabric's conservative lookahead in
// the PDES sense — a transmit issued at time t cannot affect any remote
// timeline before t + Lookahead() — which makes it both the drain-window
// bound for batched arrival processing (Network.Transmit) and the null-
// message bound groundwork for conservative parallel execution across
// simulation partitions.
func (p *Profile) Lookahead() sim.Duration {
	minWire := p.HeaderRC
	if p.SupportsUD && p.HeaderUD < minWire {
		minWire = p.HeaderUD
	}
	return p.WQEProcessing + Serialize(minWire, p.LinkBandwidth) +
		p.SwitchDelay + p.PropagationDelay
}

// Serialize returns the time to push n bytes onto a link at rate bw bytes/s.
func Serialize(n int, bw float64) sim.Duration {
	return sim.Duration(float64(n) / bw * 1e9)
}

// WireBytes returns the on-wire size of a message with the given payload
// under the given service, including per-packet header overhead.
func (p *Profile) WireBytes(payload int, svc Service) int {
	hdr := p.HeaderRC
	if svc == UD {
		hdr = p.HeaderUD
	}
	pkts := (payload + p.MTU - 1) / p.MTU
	if pkts == 0 {
		pkts = 1
	}
	return payload + pkts*hdr
}
