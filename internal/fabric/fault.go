package fabric

import (
	"math/rand"

	"rshuffle/internal/sim"
)

// AnyNode is the wildcard endpoint for fault rules: a rule with From or To
// set to AnyNode matches traffic from or to every node.
const AnyNode = -1

// FaultClass names one kind of injected fault.
type FaultClass int

const (
	// FaultUDLoss silently drops matching Unreliable Datagram packets, as a
	// lossy wire or an overrun receive queue would.
	FaultUDLoss FaultClass = iota
	// FaultRCLoss drops matching Reliable Connection packets. The verbs
	// layer sees the loss through the message's Dropped callback and is
	// responsible for transport-level retry; messages without a Dropped
	// handler are infrastructure transfers and pass through unharmed.
	FaultRCLoss
	// FaultCorrupt flips bits in one packet of a matching RC message: the
	// link-level CRC catches it and the packet is retransmitted, costing one
	// extra packet serialization plus a round trip.
	FaultCorrupt
	// FaultDegrade scales the usable bandwidth of matching links by Factor
	// (0 < Factor <= 1), modelling congestion or a renegotiated lane width.
	FaultDegrade
	// FaultPause freezes a node's NIC (rule field To names the node): no
	// message may start serializing on its uplink or downlink during the
	// pause window. Periodic pauses model stragglers and GC-like stalls.
	FaultPause
	// FaultCrash permanently silences a node (rule field To names the node)
	// from Start on: every link to and from it is cut, so all traffic —
	// including control-lane and infrastructure transfers that other fault
	// classes spare — vanishes on the wire. Unlike FaultPause the node never
	// comes back; the rule admits no End, Period, OnFor, Rate or Count.
	FaultCrash
	// FaultReboot silences a node (rule field To names the node) exactly like
	// FaultCrash — every link cut, control lane included — but only for a
	// bounded window: the port comes back up at the window's end. Memory-tier
	// consequences (a rebooted node forgets everything it had received; its
	// stale Queue Pairs must be fenced) live in the verbs and cluster layers;
	// the fabric only models the port outage. The window must be finite (End
	// or OnFor), and Period/Rate/Count are not admitted.
	FaultReboot
	// FaultPartition cuts every link from the nodes of GroupA to the nodes of
	// GroupB over [Start, End) — control lane included, exactly as a failed
	// inter-switch trunk would. Symmetric by default (both directions); Asym
	// restricts the cut to the A->B direction, modelling the one-way gray
	// failures that confuse majority-vote failure detectors. End is required:
	// a partition heals at a deadline (a permanent one is a set of
	// FaultCrash rules).
	FaultPartition
)

func (c FaultClass) String() string {
	switch c {
	case FaultUDLoss:
		return "ud-loss"
	case FaultRCLoss:
		return "rc-loss"
	case FaultCorrupt:
		return "corrupt"
	case FaultDegrade:
		return "degrade"
	case FaultPause:
		return "pause"
	case FaultCrash:
		return "crash"
	case FaultReboot:
		return "reboot"
	case FaultPartition:
		return "partition"
	}
	return "unknown"
}

// FaultRule is one entry of a FaultPlan: a fault class applied to a directed
// link (From -> To, with AnyNode wildcards) over a time window.
//
// The window is [Start, End); End == 0 means open-ended. If Period > 0 the
// rule additionally flaps: within each Period-long stretch after Start it is
// active only for the first OnFor. If Period == 0 and OnFor > 0 the window
// is the single stretch [Start, Start+OnFor).
//
// Rate and Count select how often an active rule fires. Count > 0 with
// Rate == 0 fires deterministically on the next Count matching messages and
// draws nothing from the RNG stream (this is what the old InjectUDLoss did).
// 0 < Rate < 1 fires probabilistically; Rate >= 1 always fires. A Count
// budget, when set alongside a Rate, caps the total number of firings.
type FaultRule struct {
	Class    FaultClass
	From, To int
	Start    sim.Time
	End      sim.Time
	Period   sim.Duration
	OnFor    sim.Duration
	Rate     float64
	Count    int
	// Factor is the bandwidth multiplier for FaultDegrade rules.
	Factor float64
	// GroupA and GroupB are the two sides of a FaultPartition rule; every
	// link from a GroupA node to a GroupB node is cut while the window is
	// open, and the reverse direction too unless Asym is set.
	GroupA, GroupB []int
	Asym           bool

	fired int
}

// inGroup reports whether node appears in g.
func inGroup(g []int, node int) bool {
	for _, n := range g {
		if n == node {
			return true
		}
	}
	return false
}

// windowOpen reports whether the rule's time window covers now.
func (r *FaultRule) windowOpen(now sim.Time) bool {
	if now < r.Start {
		return false
	}
	if r.End != 0 && now >= r.End {
		return false
	}
	since := now.Sub(r.Start)
	if r.Period > 0 {
		return since%r.Period < r.OnFor
	}
	if r.OnFor > 0 {
		return since < r.OnFor
	}
	return true
}

// matches reports whether the rule covers the directed link (from, to) at
// now, with budget remaining.
func (r *FaultRule) matches(from, to int, now sim.Time) bool {
	if r.From != AnyNode && r.From != from {
		return false
	}
	if r.To != AnyNode && r.To != to {
		return false
	}
	if r.Count > 0 && r.Rate > 0 && r.fired >= r.Count {
		return false
	}
	return r.windowOpen(now)
}

// fire decides whether a matching rule actually triggers, consuming budget
// and (only for probabilistic rules) one RNG draw.
func (r *FaultRule) fire(rng *rand.Rand) bool {
	if r.Rate == 0 {
		// Deterministic count budget: no RNG draw, so installing such a rule
		// never perturbs the random stream of the rest of the simulation.
		if r.Count > 0 && r.fired < r.Count {
			r.fired++
			return true
		}
		return false
	}
	if r.Rate < 1 && rng.Float64() >= r.Rate {
		return false
	}
	r.fired++
	return true
}

// FaultPlan is a deterministic schedule of fault rules evaluated against the
// simulation clock. The zero plan injects nothing and costs one branch per
// transmission.
type FaultPlan struct {
	rules []*FaultRule
	rng   *rand.Rand
}

// Add installs a rule and returns it (so tests can keep a handle).
func (p *FaultPlan) Add(r FaultRule) *FaultRule {
	// Written as a negated conjunction so a NaN Factor is rejected too.
	if r.Class == FaultDegrade && !(r.Factor > 0 && r.Factor <= 1) {
		panic("fabric: FaultDegrade requires 0 < Factor <= 1")
	}
	if r.Class == FaultPause && r.End == 0 && r.OnFor <= 0 {
		// windowEnd has no finite bound for such a rule, so pausedUntil would
		// have to either ignore it (the node silently stays up) or loop
		// forever; a node that never comes back is FaultCrash.
		panic("fabric: open-ended FaultPause requires End or OnFor (use FaultCrash for a permanent outage)")
	}
	if r.Class == FaultCrash {
		if r.To == AnyNode {
			panic("fabric: FaultCrash requires a concrete To node")
		}
		if r.End != 0 || r.Period != 0 || r.OnFor != 0 || r.Rate != 0 || r.Count != 0 {
			panic("fabric: FaultCrash is permanent and unconditional; End/Period/OnFor/Rate/Count must be zero")
		}
	}
	if r.Class == FaultReboot {
		if r.To == AnyNode || r.To < 0 {
			panic("fabric: FaultReboot requires a concrete To node")
		}
		if r.End == 0 && r.OnFor <= 0 {
			panic("fabric: FaultReboot requires a finite down window (End or OnFor); a node that never comes back is FaultCrash")
		}
		if r.End != 0 && r.End <= r.Start {
			panic("fabric: FaultReboot window must end after it starts")
		}
		if r.Period != 0 || r.Rate != 0 || r.Count != 0 {
			panic("fabric: FaultReboot is a single unconditional window; Period/Rate/Count must be zero")
		}
	}
	if r.Class == FaultPartition {
		if len(r.GroupA) == 0 || len(r.GroupB) == 0 {
			panic("fabric: FaultPartition requires non-empty GroupA and GroupB")
		}
		for _, a := range r.GroupA {
			if inGroup(r.GroupB, a) {
				panic("fabric: FaultPartition groups must be disjoint")
			}
		}
		// End == 0 would read as an open-ended window regardless of Start.
		if r.End == 0 || r.End <= r.Start {
			panic("fabric: FaultPartition requires a heal deadline (End > Start); a permanent cut is a set of FaultCrash rules")
		}
		if r.Period != 0 || r.OnFor != 0 || r.Rate != 0 || r.Count != 0 {
			panic("fabric: FaultPartition is a single unconditional window; Period/OnFor/Rate/Count must be zero")
		}
	}
	rule := &r
	p.rules = append(p.rules, rule)
	return rule
}

// Clear removes every rule.
func (p *FaultPlan) Clear() { p.rules = nil }

// Empty reports whether the plan has no rules installed.
func (p *FaultPlan) Empty() bool { return len(p.rules) == 0 }

// Fired returns the total number of rule firings, for tests and reports.
func (p *FaultPlan) Fired() int {
	n := 0
	for _, r := range p.rules {
		n += r.fired
	}
	return n
}

// drop evaluates loss-like classes (FaultUDLoss, FaultRCLoss, FaultCorrupt)
// for one message on (from, to) at now.
func (p *FaultPlan) drop(class FaultClass, from, to int, now sim.Time) bool {
	for _, r := range p.rules {
		if r.Class != class || !r.matches(from, to, now) {
			continue
		}
		if r.fire(p.rng) {
			return true
		}
	}
	return false
}

// degradeFactor returns the combined bandwidth multiplier for (from, to) at
// now: the product of every active FaultDegrade rule's Factor, 1 if none.
func (p *FaultPlan) degradeFactor(from, to int, now sim.Time) float64 {
	f := 1.0
	for _, r := range p.rules {
		if r.Class == FaultDegrade && r.matches(from, to, now) {
			f *= r.Factor
		}
	}
	return f
}

// pausedUntil returns the earliest time at or after now when node's NIC is
// out of every pause window (now itself if the node is not paused).
func (p *FaultPlan) pausedUntil(node int, now sim.Time) sim.Time {
	t := now
	for changed := true; changed; {
		changed = false
		for _, r := range p.rules {
			if r.Class != FaultPause {
				continue
			}
			if r.To != AnyNode && r.To != node {
				continue
			}
			if !r.windowOpen(t) {
				continue
			}
			if end := r.windowEnd(t); end > t {
				t = end
				changed = true
			}
		}
	}
	return t
}

// crashed reports whether node is crash-stopped at now.
func (p *FaultPlan) crashed(node int, now sim.Time) bool {
	for _, r := range p.rules {
		if r.Class == FaultCrash && r.To == node && now >= r.Start {
			return true
		}
	}
	return false
}

// crashTime returns the instant node crash-stops (the earliest Start among
// its FaultCrash rules) and whether any such rule exists.
func (p *FaultPlan) crashTime(node int) (sim.Time, bool) {
	var at sim.Time
	found := false
	for _, r := range p.rules {
		if r.Class != FaultCrash || r.To != node {
			continue
		}
		if !found || r.Start < at {
			at = r.Start
		}
		found = true
	}
	return at, found
}

// down reports whether node's port is dark at now: crash-stopped, or inside
// a FaultReboot window.
func (p *FaultPlan) down(node int, now sim.Time) bool {
	for _, r := range p.rules {
		switch r.Class {
		case FaultCrash:
			if r.To == node && now >= r.Start {
				return true
			}
		case FaultReboot:
			if r.To == node && r.windowOpen(now) {
				return true
			}
		}
	}
	return false
}

// cut reports whether the directed link (from, to) is severed by an active
// FaultPartition rule at now.
func (p *FaultPlan) cut(from, to int, now sim.Time) bool {
	for _, r := range p.rules {
		if r.Class != FaultPartition || !r.windowOpen(now) {
			continue
		}
		if inGroup(r.GroupA, from) && inGroup(r.GroupB, to) {
			return true
		}
		if !r.Asym && inGroup(r.GroupB, from) && inGroup(r.GroupA, to) {
			return true
		}
	}
	return false
}

// severed reports whether a message on (from, to) dies on the wire: the
// sender's port was dark at serialization, the receiver's port is dark at
// arrival, or the link between them is partitioned at arrival.
func (p *FaultPlan) severed(from, to int, sentAt, arriveAt sim.Time) bool {
	return p.down(from, sentAt) || p.down(to, arriveAt) || p.cut(from, to, arriveAt)
}

// downTime returns the instant node's port first goes dark (the earliest
// Start among its FaultCrash and FaultReboot rules) and whether any such
// rule exists. Failure detectors use it to measure detection latency.
func (p *FaultPlan) downTime(node int) (sim.Time, bool) {
	var at sim.Time
	found := false
	for _, r := range p.rules {
		if (r.Class != FaultCrash && r.Class != FaultReboot) || r.To != node {
			continue
		}
		if !found || r.Start < at {
			at = r.Start
		}
		found = true
	}
	return at, found
}

// windowEnd returns the end of the active window covering t (which must be
// inside a window).
func (r *FaultRule) windowEnd(t sim.Time) sim.Time {
	var end sim.Time
	since := t.Sub(r.Start)
	switch {
	case r.Period > 0:
		end = r.Start.Add((since/r.Period)*r.Period + r.OnFor)
	case r.OnFor > 0:
		end = r.Start.Add(r.OnFor)
	default:
		end = r.End // open-ended pause without End would freeze forever
	}
	if r.End != 0 && (end == 0 || end > r.End) {
		end = r.End
	}
	return end
}
