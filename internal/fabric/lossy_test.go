package fabric

import (
	"testing"
	"time"

	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// lossyProf returns the RoCEv2 lossy profile with randomness disabled and
// DCQCN off, so these tests exercise the switch model alone.
func lossyProf() Profile {
	p := RoCEv2Lossy()
	p.UDReorderProb = 0
	p.UDLossRate = 0
	p.DCQCN = false
	return p
}

// pacedStream spawns a proc on s that transmits count RC messages of size
// payload from src to dst, one per gap, starting at start. RC messages with
// a Dropped handler are droppable data; handler nil means infrastructure.
func pacedStream(s *sim.Simulation, n *Network, name string, src, dst, payload, count int, start, gap sim.Duration, onDrop func()) {
	s.Spawn(name, func(p *sim.Proc) {
		p.Sleep(start)
		for i := 0; i < count; i++ {
			m := &Message{
				From: src, To: dst, FromQP: uint64(src)<<32 | 1, ToQP: uint64(dst)<<32 | 1,
				Payload: payload, Service: RC,
				Deliver: func(at sim.Time) {},
			}
			if onDrop != nil {
				m.Dropped = onDrop
			}
			n.Transmit(m)
			p.Sleep(gap)
		}
	})
}

// TestPFCPauseHysteresis drives a 3-into-1 incast of paced RC streams
// against the lossy profile and checks the XOFF/XON machinery in virtual
// time: the congested egress port emits pause frames whose durations equal
// the analytic drain time from the crossing occupancy back to XON (bounded
// below by draining XOFF−XON and above by draining a full buffer), the
// hysteresis band keeps pause frames far rarer than ECN marks, senders
// accumulate exactly the paused time the port charged, and PFC protects the
// buffer well enough that nothing tail-drops.
func TestPFCPauseHysteresis(t *testing.T) {
	prof := lossyProf()
	// Lossless operation needs XOFF-to-buffer headroom that covers worst-case
	// in-flight (committed-but-unarrived messages plus post-pause backlog
	// bursts), exactly like real PFC headroom sizing. Deepen the buffer while
	// keeping the default XOFF/XON/mark thresholds.
	prof.SwitchBufferBytes = 512 << 10
	s := sim.New(1)
	n := New(s, prof, 4)
	tr := telemetry.NewTracer(1 << 16)
	n.SetTracer(tr)

	// 8 KiB messages at 1.2x aggregate oversubscription: occupancy ramps
	// slowly enough that the in-flight overshoot past XOFF (messages already
	// committed to sender uplinks when the pause frame lands, plus the backlog
	// posted during a pause that bursts at resume) stays inside the
	// XOFF-to-buffer headroom, as PFC sizing requires.
	const payload = 8 << 10
	wire := prof.WireBytes(payload, RC)
	gap := Serialize(wire, prof.LinkBandwidth) * 5 / 2 // 0.4x line rate each
	for src := 0; src < 3; src++ {
		pacedStream(s, n, "agg", src, 3, payload, 100, 0, gap, func() {
			t.Error("PFC should have protected the buffer; got a tail drop")
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	port := n.Stats(3)
	if port.PFCPausesSent == 0 {
		t.Fatal("3x oversubscription never crossed XOFF")
	}
	if port.ECNMarks == 0 {
		t.Fatal("no ECN marks below the pause threshold")
	}
	if port.TailDrops != 0 {
		t.Fatalf("TailDrops = %d, want 0 under PFC protection", port.TailDrops)
	}
	if port.PFCPausesSent >= port.ECNMarks {
		t.Fatalf("pauses (%d) not rarer than marks (%d): hysteresis band ineffective",
			port.PFCPausesSent, port.ECNMarks)
	}

	// A sender's first pause frame must carry the full analytic drain-to-XON
	// duration; later frames are incremental extensions of an already-frozen
	// uplink and may be arbitrarily short. All are bounded by draining a full
	// buffer.
	minPause := int64(prof.PropagationDelay + Serialize(prof.PFCXoffBytes-prof.PFCXonBytes, prof.LinkBandwidth))
	maxPause := int64(prof.PropagationDelay + Serialize(prof.SwitchBufferBytes+wire-prof.PFCXonBytes, prof.LinkBandwidth))
	var pauseEvents int
	pausedPerNode := map[int32]int64{}
	for _, e := range tr.Events() {
		if e.Name != telemetry.EvPFCPause {
			continue
		}
		pauseEvents++
		if _, seen := pausedPerNode[e.Node]; !seen && e.A < minPause {
			t.Fatalf("first pause for node %d extends only %d ns, want >= %d (drain XOFF to XON)", e.Node, e.A, minPause)
		}
		if e.A <= 0 || e.A > maxPause {
			t.Fatalf("pause extension %d ns outside analytic window (0, %d]", e.A, maxPause)
		}
		if e.B != 3 {
			t.Fatalf("pause attributed to egress node %d, want 3", e.B)
		}
		pausedPerNode[e.Node] += e.A
	}
	if int64(pauseEvents) != port.PFCPausesSent {
		t.Fatalf("trace has %d pause events, counters say %d", pauseEvents, port.PFCPausesSent)
	}
	var total sim.Duration
	for src := 0; src < 3; src++ {
		st := n.Stats(src)
		if got := pausedPerNode[int32(src)]; got != int64(st.PFCPauseTime) {
			t.Fatalf("node %d: traced pause time %d ns != counted %d ns", src, got, st.PFCPauseTime)
		}
		total += st.PFCPauseTime
	}
	if total <= 0 {
		t.Fatal("senders recorded no paused uplink time")
	}
}

// TestPFCVictimHeadOfLineBlocking shows the classic PFC pathology: a victim
// flow to an idle port stalls behind its sender's paused uplink. The victim
// node first participates in a hot incast (earning itself a pause frame),
// then sends to a cold port; the same schedule runs once with aggressors and
// once without, and the congested run must deliver the cold-port message
// later than the quiet run — and, in virtual time, no earlier than the pause
// the victim's uplink was charged.
func TestPFCVictimHeadOfLineBlocking(t *testing.T) {
	const payload = 64 << 10
	run := func(withAggressors bool) (cold sim.Time, pauseFloor sim.Time, pausedFor sim.Duration) {
		prof := lossyProf()
		s := sim.New(1)
		n := New(s, prof, 5)
		tr := telemetry.NewTracer(1 << 16)
		n.SetTracer(tr)
		wire := prof.WireBytes(payload, RC)
		gap := Serialize(wire, prof.LinkBandwidth)
		if withAggressors {
			for src := 1; src <= 3; src++ {
				pacedStream(s, n, "agg", src, 4, payload, 12, 0, gap, nil)
			}
		}
		s.Spawn("victim", func(p *sim.Proc) {
			// Join the hot flow once occupancy is past XOFF, then try the
			// idle port at node 1 while the uplink is frozen.
			p.Sleep(40 * time.Microsecond)
			n.Transmit(&Message{From: 0, To: 4, FromQP: 1, ToQP: 2,
				Payload: payload, Service: RC, Deliver: func(at sim.Time) {}})
			p.Sleep(25 * time.Microsecond)
			n.Transmit(&Message{From: 0, To: 1, FromQP: 1, ToQP: 3,
				Payload: payload, Service: RC,
				Deliver: func(at sim.Time) { cold = at }})
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		for _, e := range tr.Events() {
			if e.Name == telemetry.EvPFCPause && e.Node == 0 {
				if end := e.At.Add(sim.Duration(e.A)); end > pauseFloor {
					pauseFloor = end
				}
			}
		}
		pausedFor = n.Stats(0).PFCPauseTime
		return cold, pauseFloor, pausedFor
	}

	coldHot, pauseFloor, pausedFor := run(true)
	coldQuiet, _, quietPaused := run(false)
	if quietPaused != 0 {
		t.Fatalf("quiet run paused the victim for %v", quietPaused)
	}
	if pausedFor <= 0 {
		t.Fatal("victim's uplink was never paused; the incast is miscalibrated")
	}
	if coldHot <= coldQuiet {
		t.Fatalf("cold-port delivery %v not delayed vs quiet run %v", coldHot, coldQuiet)
	}
	if coldHot < pauseFloor {
		t.Fatalf("cold-port message delivered at %v, before the uplink unfroze at %v", coldHot, pauseFloor)
	}
}

// TestTailDropOnOverrun pre-posts a UD incast too fast for pause frames to
// help (every transmit is already queued when the first pause lands), so the
// egress buffer must overrun: droppable packets tail-drop with their Dropped
// callbacks run, undroppable RC infrastructure is never lost, and
// bookkeeping (delivered + dropped == sent, marks at or above drops) holds.
func TestTailDropOnOverrun(t *testing.T) {
	prof := lossyProf()
	s := sim.New(1)
	n := New(s, prof, 5)

	const perSender = 60
	payload := prof.MTU
	delivered, dropped := 0, 0
	for src := 0; src < 4; src++ {
		for i := 0; i < perSender; i++ {
			n.Transmit(&Message{
				From: src, To: 4, FromQP: uint64(src)<<32 | 1, ToQP: 4<<32 | 1,
				Payload: payload, Service: UD,
				Deliver: func(at sim.Time) { delivered++ },
				Dropped: func() { dropped++ },
			})
		}
	}
	// RC infrastructure (no Dropped handler) rides through the same storm.
	infraDelivered := 0
	for i := 0; i < 8; i++ {
		n.Transmit(&Message{
			From: 0, To: 4, FromQP: 1<<32 | 9, ToQP: 4<<32 | 9,
			Payload: payload, Service: RC,
			Deliver: func(at sim.Time) { infraDelivered++ },
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	port := n.Stats(4)
	if port.TailDrops == 0 {
		t.Fatal("pre-posted 4x incast did not overrun the buffer")
	}
	if dropped != int(port.TailDrops) || int64(dropped) != port.UDDropped {
		t.Fatalf("dropped callbacks %d, TailDrops %d, UDDropped %d: must agree",
			dropped, port.TailDrops, port.UDDropped)
	}
	if delivered+dropped != 4*perSender {
		t.Fatalf("delivered %d + dropped %d != sent %d", delivered, dropped, 4*perSender)
	}
	if infraDelivered != 8 {
		t.Fatalf("infrastructure RC delivered %d of 8; must never tail-drop", infraDelivered)
	}
	// Admitted packets above the marking threshold were CE-marked on the way
	// in (dropped packets never mark: they are gone before the ECN stage).
	if port.ECNMarks == 0 {
		t.Fatal("an overrunning incast must mark admitted packets")
	}
}
