package fabric

import (
	"fmt"

	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// ControlThreshold is the wire size below which a message rides the NIC's
// control lane: per-packet round-robin QP arbitration lets it depart within
// about one bulk-packet time instead of queueing behind the bulk backlog.
const ControlThreshold = 256

// Message is one transmission handed to the fabric. Deliver runs in
// scheduler context at the instant the last byte reaches the destination
// host; it must not block. For lost packets Deliver never runs (Dropped runs
// instead, if set).
type Message struct {
	From, To int
	// FromQP and ToQP identify the Queue Pair state the NICs must touch to
	// process this message; they key the NIC QP caches.
	FromQP, ToQP uint64
	// Payload is the application payload size in bytes.
	Payload int
	Service Service
	// Deliver is invoked at delivery time in scheduler context.
	Deliver func(at sim.Time)
	// Sent, if non-nil, is invoked when the source NIC has finished pushing
	// the message onto the wire (the instant a UD send completion would be
	// generated).
	Sent func(at sim.Time)
	// Dropped, if non-nil, is invoked if the message is lost (UD only).
	Dropped func()
}

// NICStats counts per-NIC activity.
type NICStats struct {
	TxMessages, RxMessages     int64
	TxBytes, RxBytes           int64 // payload bytes
	TxWireBytes                int64
	QPCacheHits, QPCacheMisses int64
	// QPCacheEvictions counts QP states pushed out of the NIC cache to make
	// room for a missed one.
	QPCacheEvictions int64
	UDDropped        int64
	// RCDropped counts injected Reliable Connection losses surfaced to the
	// verbs layer (which retries them at the transport level).
	RCDropped int64
	// RCRetransmits counts packets re-sent after an injected corruption.
	RCRetransmits int64
	ReadRequests  int64

	// Lossy Ethernet tier counters (zero under lossless profiles).

	// PFCPausesSent counts pause frames this node's switch egress port sent
	// upstream after crossing the XOFF threshold.
	PFCPausesSent int64
	// PFCPauseTime is the total time this node's uplink spent frozen by
	// pause frames from congested egress ports.
	PFCPauseTime sim.Duration
	// ECNMarks counts data packets CE-marked at this node's egress port.
	ECNMarks int64
	// TailDrops counts packets dropped at this node's egress port because
	// the shared-buffer allotment was exhausted.
	TailDrops int64

	// Per-lane wire-byte split: control-lane messages (wire size at or under
	// ControlThreshold: credit write-backs, read requests, grant words) versus
	// bulk data. Congestion claims about the control fast lane are measured
	// against these, not inferred.
	TxControlBytes, TxDataBytes int64
	RxControlBytes, RxDataBytes int64

	// TxBacklogPeak and RxBacklogPeak are switch-port queue-depth high-water
	// marks, expressed as the longest time a newly arriving message would
	// have to wait for the uplink serializer (Tx) or the downlink/egress-port
	// serializer (Rx) to drain ahead of it.
	TxBacklogPeak, RxBacklogPeak sim.Duration
}

// Sub returns the counter deltas s - o, for scoping a run phase between two
// snapshots. The backlog high-water marks are maxima, not sums, so Sub keeps
// s's values; use Network.ResetStats at a phase boundary to re-arm them.
func (s NICStats) Sub(o NICStats) NICStats {
	s.TxMessages -= o.TxMessages
	s.RxMessages -= o.RxMessages
	s.TxBytes -= o.TxBytes
	s.RxBytes -= o.RxBytes
	s.TxWireBytes -= o.TxWireBytes
	s.QPCacheHits -= o.QPCacheHits
	s.QPCacheMisses -= o.QPCacheMisses
	s.QPCacheEvictions -= o.QPCacheEvictions
	s.UDDropped -= o.UDDropped
	s.RCDropped -= o.RCDropped
	s.RCRetransmits -= o.RCRetransmits
	s.ReadRequests -= o.ReadRequests
	s.PFCPausesSent -= o.PFCPausesSent
	s.PFCPauseTime -= o.PFCPauseTime
	s.ECNMarks -= o.ECNMarks
	s.TailDrops -= o.TailDrops
	s.TxControlBytes -= o.TxControlBytes
	s.TxDataBytes -= o.TxDataBytes
	s.RxControlBytes -= o.RxControlBytes
	s.RxDataBytes -= o.RxDataBytes
	return s
}

// nic models one host adapter: an uplink serializer, a downlink serializer,
// and a QP-state cache shared by both directions.
type nic struct {
	id     int
	txBusy sim.Time
	rxBusy sim.Time
	cache  *qpCache
	stats  NICStats
	// pfcPausedUntil freezes this NIC's data-lane uplink while a downstream
	// egress port has it paused (lossy tier only; control traffic rides a
	// separate, never-paused priority).
	pfcPausedUntil sim.Time
	// txOrder and rxOrder track the last scheduled departure/arrival per
	// Queue Pair: Reliable Connection traffic is strictly ordered within a
	// QP even when the control fast lane would otherwise let a small
	// message overtake bulk data.
	txOrder map[uint64]sim.Time
	rxOrder map[uint64]sim.Time
	// pend[pendHead:] are this source's batch-queued arrivals, sorted by
	// (arrive, seq); the drained prefix is reclaimed when the queue empties.
	pend     []pendingArrival
	pendHead int
}

// orderFloor returns t clamped to be no earlier than the previous value for
// qp and records the new value.
func orderFloor(m map[uint64]sim.Time, qp uint64, t sim.Time) sim.Time {
	if last, ok := m[qp]; ok && last > t {
		t = last
	}
	m[qp] = t
	return t
}

// Network is a full-bisection switched fabric connecting n hosts.
type Network struct {
	Sim  *sim.Simulation
	Prof Profile
	nics []*nic

	// hosts holds one opaque per-node host context (the verbs device), set
	// by the layer above so its delivery callbacks can dispatch.
	hosts []any

	// faults is the installed fault schedule; empty by default.
	faults FaultPlan

	// tr is the attached event tracer; nil (the default) disables tracing
	// at zero cost on the transmit path.
	tr *telemetry.Tracer

	// onECN, when set, runs in scheduler context at packet receive time for
	// every ECN-marked data packet, identifying the flow. The verbs layer
	// installs it to generate congestion notification packets.
	onECN func(from, to int, fromQP, toQP uint64)

	// Batched arrival processing (the NIC RX fast path). On lossless,
	// fault-free, untraced runs every arrival-side computation — switch-port
	// accounting, QP-cache touch, downlink serialization — is a pure
	// function of the arrival instant, so instead of one scheduler event per
	// message the fabric queues arrivals per source NIC and a single drain
	// event processes a whole lookahead window of them per kernel dispatch.
	// Arrivals are near-monotone per source (a source's TX backlog
	// serializes in order; only the control fast lane jumps the queue), so
	// each source queue inserts at or near its tail in O(1), and the drain
	// K-way-merges the source heads in global (arrive, transmit) order. See
	// Transmit for the gating and the ordering argument.
	pendCount int
	pendSeq   uint64
	// drain is the pending wheel timer for the next drain; drainAt is the
	// instant it fires (the earliest pending arrival).
	drain      sim.Timer
	drainArmed bool
	drainAt    sim.Time
	// lookahead caches Prof.Lookahead(): no transmit issued at or after the
	// drain instant T can arrive before T+lookahead, so the window
	// [T, T+lookahead) is closed when the drain runs.
	lookahead sim.Duration
	// batchOff forces the exact per-message arrival path even when the
	// fast-path conditions hold (SetArrivalBatching). The equivalence test
	// uses it to A/B the two paths at the same seed.
	batchOff bool

	// part is the PDES partition state (see pdes.go); nil on the legacy
	// single-simulation path.
	part *partition
}

// pendingArrival is one queued fast-path arrival: everything the arrival
// computation needs, decided at transmit time. seq is the global transmit
// order, the tie-break for equal arrival instants across sources.
type pendingArrival struct {
	m       *Message
	arrive  sim.Time
	seq     uint64
	wire    int
	jitter  sim.Duration
	control bool
}

// SetECNHandler installs h as the ECN-mark notification hook; nil detaches
// it. Marks are still counted with no handler installed.
func (n *Network) SetECNHandler(h func(from, to int, fromQP, toQP uint64)) { n.onECN = h }

// SetTracer attaches an event tracer; nil detaches it. All layers above the
// fabric (verbs, shuffle, cluster) reach the tracer through Tracer(), so a
// single attachment instruments the whole stack. Attaching a tracer
// disables the batched-arrival fast path from the next transmit on (traced
// runs take the exact per-message path so traces stay byte-identical);
// already-queued arrivals are flushed to per-message events first.
func (n *Network) SetTracer(t *telemetry.Tracer) {
	n.flushPending()
	n.tr = t
}

// Tracer returns the attached tracer; nil means tracing is disabled, and a
// nil *telemetry.Tracer is safe to emit on (every method is a no-op).
func (n *Network) Tracer() *telemetry.Tracer { return n.tr }

// SetArrivalBatching enables (the default) or disables the batched-arrival
// fast path. Disabling flushes any queued arrivals to exact per-message
// events and routes every later transmit through the per-message path.
//
// Equivalence contract: both paths compute identical per-message arrival
// arithmetic and process arrivals in the same (arrive, transmit-seq)
// order, so all per-message timing is bit-equal. The batched path does,
// however, schedule deliver events at drain time — earlier in the
// kernel's global sequence than the per-message path, which schedules
// them at the arrival instant — so when a delivery ties with an unrelated
// event at the same virtual nanosecond the tie can resolve in the other
// order. Both resolutions are valid serializations of simultaneous
// events, and each path is individually deterministic per seed; at scale
// this shifts figure-level throughput numbers by at most the last printed
// digit (see DESIGN.md, "Kernel performance"). The equivalence test
// drives this switch and pins the two paths identical where no such ties
// arise.
func (n *Network) SetArrivalBatching(on bool) {
	if n.part != nil {
		return // partitioned runs always use the exact per-message path
	}
	if !on {
		n.flushPending()
	}
	n.batchOff = !on
}

// SetHost attaches an opaque host context to node i.
func (n *Network) SetHost(i int, h any) {
	if n.hosts == nil {
		n.hosts = make([]any, len(n.nics))
	}
	n.hosts[i] = h
}

// Host returns the host context attached to node i, or nil.
func (n *Network) Host(i int) any {
	if n.hosts == nil {
		return nil
	}
	return n.hosts[i]
}

// New builds a network of n hosts over the given profile.
func New(s *sim.Simulation, prof Profile, n int) *Network {
	net := &Network{Sim: s, Prof: prof, nics: make([]*nic, n)}
	net.faults.rng = s.Rand()
	net.lookahead = prof.Lookahead()
	for i := range net.nics {
		net.nics[i] = &nic{id: i, cache: newQPCache(prof.QPCacheSize, s.Rand()),
			txOrder: make(map[uint64]sim.Time), rxOrder: make(map[uint64]sim.Time)}
	}
	return net
}

// Nodes returns the number of hosts.
func (n *Network) Nodes() int { return len(n.nics) }

// Stats returns a copy of node i's NIC counters.
func (n *Network) Stats(i int) NICStats { return n.nics[i].stats }

// SnapshotStats returns a copy of every NIC's counters, for scoping a run
// phase: subtract two snapshots (NICStats.Sub) to isolate the traffic of
// the interval between them.
func (n *Network) SnapshotStats() []NICStats {
	out := make([]NICStats, len(n.nics))
	for i, nc := range n.nics {
		out[i] = nc.stats
	}
	return out
}

// ResetStats zeroes every NIC's counters (including the backlog high-water
// marks), so multi-phase experiments can account each phase separately
// instead of conflating setup and stream traffic.
func (n *Network) ResetStats() {
	for _, nc := range n.nics {
		nc.stats = NICStats{}
	}
}

// Faults exposes the network's fault schedule for installing rules. Like
// SetTracer it first flushes any batch-queued arrivals to per-message
// events: messages already in flight were transmitted under the old (empty)
// plan and keep their decided fate, while every later transmit sees the new
// rules and takes the exact per-message path.
func (n *Network) Faults() *FaultPlan {
	n.flushPending()
	return &n.faults
}

// Crashed reports whether node is crash-stopped at time at (a FaultCrash
// rule names it with Start <= at). A crashed node's links are cut: nothing
// it sends reaches the switch, nothing addressed to it is delivered. Its
// NIC hairpin loopback still works — crash models a network-visible
// failure, and local state on the dead node is unreachable anyway.
func (n *Network) Crashed(node int, at sim.Time) bool {
	if n.faults.Empty() {
		return false
	}
	return n.faults.crashed(node, at)
}

// CrashTime returns the instant node crash-stops and whether a FaultCrash
// rule names it at all, for failure detectors measuring detection latency.
func (n *Network) CrashTime(node int) (sim.Time, bool) { return n.faults.crashTime(node) }

// Down reports whether node's port is dark at time at: crash-stopped, or
// inside a FaultReboot window. Unlike Crashed, a Down node may come back.
func (n *Network) Down(node int, at sim.Time) bool {
	if n.faults.Empty() {
		return false
	}
	return n.faults.down(node, at)
}

// Cut reports whether the directed link (from, to) is severed by an active
// FaultPartition rule at time at. Partitions cut everything on the link —
// control lane and infrastructure transfers included — in the given
// direction only (a symmetric partition installs both directions).
func (n *Network) Cut(from, to int, at sim.Time) bool {
	if n.faults.Empty() {
		return false
	}
	return n.faults.cut(from, to, at)
}

// Reachable reports whether a packet from node from can reach node to at
// time at: both ports up and the directed link not partitioned. Connection
// managers probe it before attempting a reconnect.
func (n *Network) Reachable(from, to int, at sim.Time) bool {
	if n.faults.Empty() {
		return true
	}
	return !n.faults.down(from, at) && !n.faults.down(to, at) && !n.faults.cut(from, to, at)
}

// DownTime returns the instant node's port first goes dark (earliest
// FaultCrash or FaultReboot Start) and whether any such rule exists, for
// failure detectors measuring detection latency.
func (n *Network) DownTime(node int) (sim.Time, bool) { return n.faults.downTime(node) }

// InjectUDLoss forces the next k UD messages destined to node to be dropped,
// for fault-injection tests. It is a convenience wrapper over a
// deterministic count rule in the fault plan (no RNG draws).
func (n *Network) InjectUDLoss(node, k int) {
	n.Faults().Add(FaultRule{Class: FaultUDLoss, From: AnyNode, To: node, Count: k})
}

// touch charges the QP-cache cost of accessing qp state on nc and returns
// the penalty to add to the engine occupancy.
func (n *Network) touch(nc *nic, qp uint64) sim.Duration {
	hit, victim, evicted := nc.cache.touch(qp)
	if hit {
		nc.stats.QPCacheHits++
		return 0
	}
	nc.stats.QPCacheMisses++
	// The touched NIC's owner is always the executing partition, so its
	// shard and clock are the right emission context.
	tr, now := n.TracerAt(nc.id), n.SimAt(nc.id).Now()
	tr.Instant(now, telemetry.EvQPCacheMiss, int32(nc.id), qp, 0, 0)
	if evicted {
		nc.stats.QPCacheEvictions++
		tr.Instant(now, telemetry.EvQPCacheEvict, int32(nc.id), qp, int64(victim), 0)
	}
	return n.Prof.QPCacheMissPenalty
}

// lossyAdmit applies the lossy-Ethernet egress-port model to a data packet
// of wire bytes arriving at dst from src at rnow. The port's buffer
// occupancy is the backlog of bytes still queued on the downlink serializer.
// In threshold order: a packet that would overrun SwitchBufferBytes is
// tail-dropped (dropped == true); past PFCXoffBytes the port sends a pause
// frame freezing src's data-lane uplink until the buffer would have drained
// back to PFCXonBytes (re-pausing only once the previous pause has lapsed —
// the XOFF/XON hysteresis); past ECNMarkBytes the packet is CE-marked
// (marked == true). droppable is false for RC infrastructure transfers the
// verbs layer cannot retry: those always get buffer, modelled as reserved
// headroom, so congestion can never wedge the simulation.
func (n *Network) lossyAdmit(src, dst *nic, qp uint64, wire int, bw float64, droppable bool, rnow sim.Time) (dropped, marked bool) {
	prof := &n.Prof
	occ := 0
	if q := dst.rxBusy.Sub(rnow); q > 0 {
		occ = int(float64(q) * bw / 1e9)
	}
	fill := occ + wire
	if droppable && fill > prof.SwitchBufferBytes {
		dst.stats.TailDrops++
		return true, false
	}
	if fill >= prof.PFCXoffBytes {
		// The pause frame takes one propagation delay to reach the sender;
		// transmissions already serialized keep arriving meanwhile.
		resume := rnow.Add(prof.PropagationDelay + Serialize(fill-prof.PFCXonBytes, bw))
		cur := src.pfcPausedUntil
		if cur < rnow {
			cur = rnow
		}
		if resume > cur {
			ext := resume.Sub(cur)
			src.pfcPausedUntil = resume
			src.stats.PFCPauseTime += ext
			dst.stats.PFCPausesSent++
			n.tr.Instant(rnow, telemetry.EvPFCPause, int32(src.id), qp, int64(ext), int64(dst.id))
		}
	}
	// WRED-style ECN: the marking probability ramps linearly from 0 at the
	// marking threshold to 1 at the pause threshold (and stays 1 above it).
	// Probabilistic marking is what keeps the DCQCN control loop stable — a
	// deterministic cliff would CNP every flow on every interval at
	// equilibrium and crash rates to the floor. The draw comes from the
	// seeded simulation RNG, so same-seed runs stay byte-identical.
	if fill >= prof.ECNMarkBytes {
		p := float64(fill-prof.ECNMarkBytes) / float64(prof.PFCXoffBytes-prof.ECNMarkBytes)
		if p >= 1 || n.Sim.Rand().Float64() < p {
			dst.stats.ECNMarks++
			n.tr.Instant(rnow, telemetry.EvECNMark, int32(dst.id), qp, int64(wire), 0)
			marked = true
		}
	}
	return false, marked
}

// Transmit schedules delivery of m. It may be called from Procs or event
// callbacks. The transmit engine of the source NIC and the receive engine of
// the destination NIC are serving resources: messages queue in FIFO order
// and the caller does not block.
func (n *Network) Transmit(m *Message) {
	prof := &n.Prof
	if m.From == m.To {
		// Hairpin loopback through the NIC; the switch is not traversed.
		n.loopback(m)
		return
	}
	src, dst := n.nics[m.From], n.nics[m.To]
	if m.Service == UD && m.Payload > prof.MTU {
		panic(fmt.Sprintf("fabric: UD payload %d exceeds MTU %d", m.Payload, prof.MTU))
	}
	wire := prof.WireBytes(m.Payload, m.Service)
	control := wire <= ControlThreshold

	// Transmit executes on the source node's partition; everything up to the
	// arrival hand-off uses its clock, tracer shard, and RNG stream. On the
	// legacy path these are the shared Sim/tr/RNG and nothing changes.
	ssim := n.SimAt(m.From)
	now := ssim.Now()
	bw := prof.LinkBandwidth
	if !n.faults.Empty() {
		// A paused NIC freezes its engines: nothing starts serializing until
		// the pause window closes.
		now = n.faults.pausedUntil(m.From, now)
		bw *= n.faults.degradeFactor(m.From, m.To, now)
	}
	if prof.Lossy && !control && src.pfcPausedUntil > now {
		// A PFC pause frame from a congested egress port has frozen this
		// uplink's data priority; control traffic rides a separate one.
		now = src.pfcPausedUntil
	}
	if q := src.txBusy.Sub(now); q > src.stats.TxBacklogPeak {
		src.stats.TxBacklogPeak = q
	}
	// Source NIC: WQE fetch + QP state + serialization onto the uplink.
	txOcc := prof.WQEProcessing + n.touch(src, m.FromQP) + Serialize(wire, bw)
	var txDone sim.Time
	if control {
		// NICs arbitrate Queue Pairs round-robin at packet granularity, so a
		// tiny control message (credit write, read request) departs within
		// about one bulk-packet time even when bulk transfers have a deep
		// backlog; its bandwidth is still stolen from the bulk lane.
		txDone = now.Add(Serialize(prof.MTU, bw) + txOcc)
		src.txBusy = src.txBusy.Add(txOcc)
		if src.txBusy < now {
			src.txBusy = now
		}
	} else {
		start := now
		if src.txBusy > start {
			start = src.txBusy
		}
		txDone = start.Add(txOcc)
		src.txBusy = txDone
	}
	if m.Service == RC {
		txDone = orderFloor(src.txOrder, m.FromQP, txDone)
	}
	src.stats.TxMessages++
	src.stats.TxBytes += int64(m.Payload)
	src.stats.TxWireBytes += int64(wire)
	lane := int64(0)
	if control {
		lane = 1
		src.stats.TxControlBytes += int64(wire)
	} else {
		src.stats.TxDataBytes += int64(wire)
	}
	n.TracerAt(m.From).Instant(txDone, telemetry.EvWire, int32(m.From), m.FromQP, int64(wire), lane)
	if m.Sent != nil {
		ssim.At(txDone, func() { m.Sent(ssim.Now()) })
	}

	// Loss and reordering decisions are made now so the whole computation
	// stays a pure function of the RNG stream (deterministic). The draws
	// come from the sender's stream, which advances only in the sender's
	// own causal order — invariant across LP counts.
	lost, corrupted := false, false
	if !n.faults.Empty() {
		switch {
		case m.Service == UD:
			lost = n.faults.drop(FaultUDLoss, m.From, m.To, now)
		case m.Dropped != nil:
			// RC messages without a Dropped handler are infrastructure
			// transfers the verbs layer cannot retry; they pass unharmed.
			lost = n.faults.drop(FaultRCLoss, m.From, m.To, now)
		}
		if !lost && m.Service == RC {
			corrupted = n.faults.drop(FaultCorrupt, m.From, m.To, now)
		}
	}
	if !lost && m.Service == UD && prof.UDLossRate > 0 && n.rngAt(m.From).Float64() < prof.UDLossRate {
		lost = true
	}
	var jitter sim.Duration
	if m.Service == UD && prof.UDReorderProb > 0 && n.rngAt(m.From).Float64() < prof.UDReorderProb {
		jitter = sim.Duration(n.rngAt(m.From).Int63n(int64(prof.UDReorderJitter) + 1))
	}

	// The message reaches the destination switch port after propagation and
	// switching, then serializes onto the receiver downlink. The downlink is
	// the incast bottleneck: simultaneous senders queue here.
	arrive := txDone.Add(prof.SwitchDelay + prof.PropagationDelay)
	if !prof.Lossy && !n.batchOff && n.tr == nil && n.faults.Empty() && !lost {
		// Fast path: with no lossy admission, no faults, and no tracer the
		// arrival-side computation is pure arithmetic on (arrive, NIC state),
		// so it batches — one drain event processes a whole lookahead window
		// of arrivals instead of one scheduler event per message. Loss and
		// reorder draws above already happened, keeping the RNG stream
		// byte-identical with the per-message path; a message the draw
		// declared lost still takes the exact path so its Dropped callback
		// runs at the arrival instant.
		n.enqueueArrival(src, pendingArrival{m: m, arrive: arrive, wire: wire,
			jitter: jitter, control: control})
		return
	}
	n.Route(m.From, m.To, arrive, func() {
		// From here on the computation executes on the receiver's partition.
		dsim, dtr := n.SimAt(m.To), n.TracerAt(m.To)
		// A dark endpoint port (crash or reboot window) or a partitioned link
		// kills the message on the wire regardless of class: unlike
		// FaultRCLoss this also swallows infrastructure transfers (nil
		// Dropped), exactly as a dead port or severed trunk would. The
		// sender's outage is judged at serialization time, the receiver's and
		// the link's at arrival.
		if !lost && !n.faults.Empty() &&
			n.faults.severed(m.From, m.To, now, dsim.Now()) {
			lost = true
		}
		if lost {
			if m.Service == UD {
				dst.stats.UDDropped++
			} else {
				dst.stats.RCDropped++
			}
			dtr.Instant(dsim.Now(), telemetry.EvDrop, int32(m.To), m.ToQP, int64(m.Payload), lane)
			if m.Dropped != nil {
				m.Dropped()
			}
			return
		}
		rnow := dsim.Now()
		if !n.faults.Empty() {
			rnow = n.faults.pausedUntil(m.To, rnow)
		}
		marked := false
		if prof.Lossy && !control {
			var tailDropped bool
			tailDropped, marked = n.lossyAdmit(src, dst, m.ToQP, wire, bw,
				m.Service == UD || m.Dropped != nil, rnow)
			if tailDropped {
				udBit := int64(0)
				if m.Service == UD {
					udBit = 1
					dst.stats.UDDropped++
				} else {
					dst.stats.RCDropped++
				}
				dtr.Instant(rnow, telemetry.EvTailDrop, int32(m.To), m.ToQP, int64(m.Payload), udBit)
				if m.Dropped != nil {
					m.Dropped()
				}
				return
			}
		}
		rxOcc := n.touch(dst, m.ToQP) + Serialize(wire, bw)
		if q := dst.rxBusy.Sub(rnow); q > dst.stats.RxBacklogPeak {
			dst.stats.RxBacklogPeak = q
		}
		var rxDone sim.Time
		if control {
			// Same packet-granularity arbitration on the switch egress port.
			rxDone = rnow.Add(Serialize(prof.MTU, bw) + rxOcc)
			dst.rxBusy = dst.rxBusy.Add(rxOcc)
			if dst.rxBusy < rnow {
				dst.rxBusy = rnow
			}
		} else {
			rstart := rnow
			if dst.rxBusy > rstart {
				rstart = dst.rxBusy
			}
			rxDone = rstart.Add(rxOcc)
			dst.rxBusy = rxDone
		}
		if corrupted {
			// One packet failed its CRC: the receiver NAKs, the sender
			// re-serializes that packet after a round trip.
			pkt := wire
			if lim := prof.MTU + prof.HeaderRC; pkt > lim {
				pkt = lim
			}
			rxDone = rxDone.Add(Serialize(pkt, bw) + 2*prof.PropagationDelay + prof.SwitchDelay)
			dst.stats.RCRetransmits++
		}
		if m.Service == RC {
			rxDone = orderFloor(dst.rxOrder, m.ToQP, rxDone)
		}
		dst.stats.RxMessages++
		dst.stats.RxBytes += int64(m.Payload)
		if control {
			dst.stats.RxControlBytes += int64(wire)
		} else {
			dst.stats.RxDataBytes += int64(wire)
		}
		if marked && n.onECN != nil {
			dsim.At(rxDone, func() { n.onECN(m.From, m.To, m.FromQP, m.ToQP) })
		}
		dsim.At(rxDone.Add(jitter), func() { m.Deliver(dsim.Now()) })
	})
}

// enqueueArrival queues a fast-path arrival on its source NIC and makes
// sure the drain timer fires no later than the earliest pending arrival.
// A source's bulk backlog serializes in order, so insertion lands at or
// near the queue tail; only a control-lane message overtaking queued bulk
// data scans deeper.
func (n *Network) enqueueArrival(src *nic, pa pendingArrival) {
	n.pendSeq++
	pa.seq = n.pendSeq
	i := len(src.pend)
	for i > src.pendHead && src.pend[i-1].arrive > pa.arrive {
		i--
	}
	src.pend = append(src.pend, pendingArrival{})
	copy(src.pend[i+1:], src.pend[i:])
	src.pend[i] = pa
	n.pendCount++
	if !n.drainArmed || pa.arrive < n.drainAt {
		if n.drainArmed {
			n.drain.Stop()
		}
		n.drainArmed = true
		if i == src.pendHead {
			n.drainAt = pa.arrive
		} else {
			n.drainAt = n.pendMin().arrive
		}
		n.drain = n.Sim.AfterTimer(n.drainAt.Sub(n.Sim.Now()), n.drainFire)
	}
}

// pendMin returns the globally earliest pending arrival: the (arrive, seq)
// minimum over the source-queue heads.
func (n *Network) pendMin() *pendingArrival {
	var best *pendingArrival
	for _, nc := range n.nics {
		if nc.pendHead == len(nc.pend) {
			continue
		}
		h := &nc.pend[nc.pendHead]
		if best == nil || h.arrive < best.arrive ||
			(h.arrive == best.arrive && h.seq < best.seq) {
			best = h
		}
	}
	return best
}

// drainFire runs at the earliest pending arrival instant T and processes
// every queued arrival in [T, T+lookahead) in (arrive, transmit) order —
// the same total order the per-message path's scheduler events would have
// used — by K-way merging the source-queue heads. The window is closed:
// any transmit issued at or after T (including later in this same instant)
// arrives at T+lookahead or beyond, so nothing can be missed or reordered
// by draining it in one dispatch. Arrivals beyond the window re-arm the
// timer for their own instant.
func (n *Network) drainFire() {
	n.drainArmed = false
	limit := n.drainAt.Add(n.lookahead)
	for {
		best := n.pendMin()
		if best == nil || best.arrive >= limit {
			break
		}
		n.processArrival(best)
		src := n.nics[best.m.From]
		src.pend[src.pendHead] = pendingArrival{}
		src.pendHead++
		if src.pendHead == len(src.pend) {
			src.pend = src.pend[:0]
			src.pendHead = 0
		}
		n.pendCount--
	}
	if n.pendCount > 0 {
		n.drainArmed = true
		n.drainAt = n.pendMin().arrive
		n.drain = n.Sim.AfterTimer(n.drainAt.Sub(n.Sim.Now()), n.drainFire)
	}
}

// flushPending converts every batch-queued arrival into a per-message
// scheduler event at its exact arrival instant, in global (arrive, seq)
// order. SetTracer and Faults call it before changing mode, so batched and
// per-message processing never interleave: each flushed arrival fires at
// its own instant with the event seq order the per-message path would have
// produced for messages already on the wire.
func (n *Network) flushPending() {
	if !n.drainArmed {
		return
	}
	n.drain.Stop()
	n.drainArmed = false
	for n.pendCount > 0 {
		pa := *n.pendMin()
		src := n.nics[pa.m.From]
		src.pend[src.pendHead] = pendingArrival{}
		src.pendHead++
		if src.pendHead == len(src.pend) {
			src.pend = src.pend[:0]
			src.pendHead = 0
		}
		n.pendCount--
		n.Sim.At(pa.arrive, func() { n.processArrival(&pa) })
	}
}

// processArrival is the arrival-side computation for one fast-path message:
// the lossless, fault-free, untraced specialization of the per-message
// arrival closure in Transmit, evaluated at pa.arrive regardless of the
// clock's current instant (the two coincide except while draining a batch
// window). It must mirror that closure's arithmetic exactly — the S6 table
// regeneration test holds the two paths to byte-identical results.
func (n *Network) processArrival(pa *pendingArrival) {
	prof := &n.Prof
	m := pa.m
	dst := n.nics[m.To]
	rnow := pa.arrive
	bw := prof.LinkBandwidth
	rxOcc := n.touch(dst, m.ToQP) + Serialize(pa.wire, bw)
	if q := dst.rxBusy.Sub(rnow); q > dst.stats.RxBacklogPeak {
		dst.stats.RxBacklogPeak = q
	}
	var rxDone sim.Time
	if pa.control {
		rxDone = rnow.Add(Serialize(prof.MTU, bw) + rxOcc)
		dst.rxBusy = dst.rxBusy.Add(rxOcc)
		if dst.rxBusy < rnow {
			dst.rxBusy = rnow
		}
	} else {
		rstart := rnow
		if dst.rxBusy > rstart {
			rstart = dst.rxBusy
		}
		rxDone = rstart.Add(rxOcc)
		dst.rxBusy = rxDone
	}
	if m.Service == RC {
		rxDone = orderFloor(dst.rxOrder, m.ToQP, rxDone)
	}
	dst.stats.RxMessages++
	dst.stats.RxBytes += int64(m.Payload)
	if pa.control {
		dst.stats.RxControlBytes += int64(pa.wire)
	} else {
		dst.stats.RxDataBytes += int64(pa.wire)
	}
	n.Sim.At(rxDone.Add(pa.jitter), func() { m.Deliver(n.Sim.Now()) })
}

// TransmitMulticast sends one datagram to every node in dests with a single
// work request and a single uplink serialization: the switch replicates the
// packet to each member port, as InfiniBand hardware multicast does. Each
// member's downlink still serializes its own copy. deliver runs once per
// reached member; per-member loss and jitter apply independently.
func (n *Network) TransmitMulticast(m *Message, dests []int, deliver func(dest int, at sim.Time)) {
	prof := &n.Prof
	if m.Service != UD {
		panic("fabric: hardware multicast requires the UD service")
	}
	if m.Payload > prof.MTU {
		panic(fmt.Sprintf("fabric: UD payload %d exceeds MTU %d", m.Payload, prof.MTU))
	}
	src := n.nics[m.From]
	wire := prof.WireBytes(m.Payload, UD)

	ssim := n.SimAt(m.From)
	now := ssim.Now()
	if !n.faults.Empty() {
		now = n.faults.pausedUntil(m.From, now)
	}
	if prof.Lossy && src.pfcPausedUntil > now {
		now = src.pfcPausedUntil
	}
	if q := src.txBusy.Sub(now); q > src.stats.TxBacklogPeak {
		src.stats.TxBacklogPeak = q
	}
	txOcc := prof.WQEProcessing + n.touch(src, m.FromQP) + Serialize(wire, prof.LinkBandwidth)
	start := now
	if src.txBusy > start {
		start = src.txBusy
	}
	txDone := start.Add(txOcc)
	src.txBusy = txDone
	src.stats.TxMessages++
	src.stats.TxBytes += int64(m.Payload)
	src.stats.TxWireBytes += int64(wire)
	src.stats.TxDataBytes += int64(wire)
	n.TracerAt(m.From).Instant(txDone, telemetry.EvWire, int32(m.From), m.FromQP, int64(wire), 0)
	if m.Sent != nil {
		ssim.At(txDone, func() { m.Sent(ssim.Now()) })
	}

	// A dark sender port (crash or reboot window) keeps the packet off the
	// switch: no member — not even the sender's own switch-loopback copy —
	// sees it.
	senderDown := !n.faults.Empty() && n.faults.down(m.From, now)
	for _, d := range dests {
		d := d
		if d == m.From {
			if senderDown {
				continue
			}
			// The switch loops the packet back to an attached sender port.
			ssim.At(txDone, func() { deliver(d, ssim.Now()) })
			continue
		}
		lost := senderDown
		if !lost && !n.faults.Empty() && n.faults.drop(FaultUDLoss, m.From, d, now) {
			lost = true
		} else if !lost && prof.UDLossRate > 0 && n.rngAt(m.From).Float64() < prof.UDLossRate {
			lost = true
		}
		var jitter sim.Duration
		if prof.UDReorderProb > 0 && n.rngAt(m.From).Float64() < prof.UDReorderProb {
			jitter = sim.Duration(n.rngAt(m.From).Int63n(int64(prof.UDReorderJitter) + 1))
		}
		dst := n.nics[d]
		arrive := txDone.Add(prof.SwitchDelay + prof.PropagationDelay)
		n.Route(m.From, d, arrive, func() {
			dsim, dtr := n.SimAt(d), n.TracerAt(d)
			if !lost && !n.faults.Empty() &&
				(n.faults.down(d, dsim.Now()) || n.faults.cut(m.From, d, dsim.Now())) {
				lost = true // dark member port or severed trunk: the copy vanishes
			}
			if lost {
				dst.stats.UDDropped++
				dtr.Instant(dsim.Now(), telemetry.EvDrop, int32(d), m.ToQP, int64(m.Payload), 0)
				if m.Dropped != nil {
					m.Dropped()
				}
				return
			}
			rnow := dsim.Now()
			marked := false
			if prof.Lossy {
				var tailDropped bool
				tailDropped, marked = n.lossyAdmit(src, dst, m.ToQP, wire,
					prof.LinkBandwidth, true, rnow)
				if tailDropped {
					dst.stats.UDDropped++
					dtr.Instant(rnow, telemetry.EvTailDrop, int32(d), m.ToQP, int64(m.Payload), 1)
					if m.Dropped != nil {
						m.Dropped()
					}
					return
				}
			}
			rxOcc := n.touch(dst, m.ToQP) + Serialize(wire, prof.LinkBandwidth)
			rstart := rnow
			if q := dst.rxBusy.Sub(rstart); q > dst.stats.RxBacklogPeak {
				dst.stats.RxBacklogPeak = q
			}
			if dst.rxBusy > rstart {
				rstart = dst.rxBusy
			}
			rxDone := rstart.Add(rxOcc)
			dst.rxBusy = rxDone
			dst.stats.RxMessages++
			dst.stats.RxBytes += int64(m.Payload)
			dst.stats.RxDataBytes += int64(wire)
			if marked && n.onECN != nil {
				dsim.At(rxDone, func() { n.onECN(m.From, d, m.FromQP, m.ToQP) })
			}
			dsim.At(rxDone.Add(jitter), func() { deliver(d, dsim.Now()) })
		})
	}
}

// loopback delivers a self-addressed message through the NIC's hairpin
// path without traversing the switch: it occupies the transmit engine at
// the line rate but not the receive downlink.
func (n *Network) loopback(m *Message) {
	nc := n.nics[m.From]
	// Self-addressed traffic never crosses partitions: the whole hairpin
	// stays on the node's own clock at every LP count.
	s := n.SimAt(m.From)
	occ := n.Prof.WQEProcessing + n.touch(nc, m.FromQP) +
		Serialize(m.Payload, n.Prof.LinkBandwidth)
	start := s.Now()
	if nc.txBusy > start {
		start = nc.txBusy
	}
	done := start.Add(occ)
	nc.txBusy = done
	if m.Sent != nil {
		s.At(done, func() { m.Sent(s.Now()) })
	}
	nc.stats.TxMessages++
	nc.stats.RxMessages++
	nc.stats.TxBytes += int64(m.Payload)
	nc.stats.RxBytes += int64(m.Payload)
	s.At(done, func() { m.Deliver(s.Now()) })
}

// ReadTransfer models a one-sided RDMA Read: a small request packet travels
// from the requester to the responder, whose NIC then streams size bytes
// back without involving the remote CPU. onData runs at the requester when
// the data has fully arrived.
func (n *Network) ReadTransfer(requester, responder int, reqQP, respQP uint64, size int, onData func(at sim.Time)) {
	prof := &n.Prof
	n.nics[requester].stats.ReadRequests++
	// Request leg: a control packet addressed to the responder's QP.
	req := &Message{
		From: requester, To: responder,
		FromQP: reqQP, ToQP: respQP,
		Payload: prof.ReadRequestBytes, Service: RC,
		Deliver: func(at sim.Time) {
			// Response leg: the responder NIC DMA-reads local memory and
			// streams it back; this consumes the responder's uplink.
			resp := &Message{
				From: responder, To: requester,
				FromQP: respQP, ToQP: reqQP,
				Payload: size, Service: RC,
				Deliver: onData,
			}
			n.Transmit(resp)
		},
	}
	n.Transmit(req)
}
