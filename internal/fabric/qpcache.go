package fabric

import "math/rand"

// qpCache models the NIC's on-chip Queue Pair state cache. Real adapters
// hold a limited number of QP contexts; touching an uncached QP forces a
// state fetch across PCIe (Dragojević et al. report up to 5× slowdowns from
// this). Replacement is random, which is both close to NIC behaviour and
// avoids the LRU scan-thrash cliff: with a working set of w QPs and capacity
// c < w, the hit rate degrades smoothly as roughly c/w.
type qpCache struct {
	cap   int
	slots []uint64
	index map[uint64]int
	rng   *rand.Rand
}

func newQPCache(capacity int, rng *rand.Rand) *qpCache {
	return &qpCache{
		cap:   capacity,
		index: make(map[uint64]int, capacity),
		rng:   rng,
	}
}

// touch reports whether qp was cached, inserting it (evicting a random
// victim if full) when it was not.
func (c *qpCache) touch(qp uint64) bool {
	if _, ok := c.index[qp]; ok {
		return true
	}
	if len(c.slots) < c.cap {
		c.index[qp] = len(c.slots)
		c.slots = append(c.slots, qp)
		return false
	}
	victim := c.rng.Intn(c.cap)
	delete(c.index, c.slots[victim])
	c.slots[victim] = qp
	c.index[qp] = victim
	return false
}

// Len returns the number of cached QP states.
func (c *qpCache) Len() int { return len(c.slots) }
