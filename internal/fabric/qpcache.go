package fabric

import "math/rand"

// qpCache models the NIC's on-chip Queue Pair state cache. Real adapters
// hold a limited number of QP contexts; touching an uncached QP forces a
// state fetch across PCIe (Dragojević et al. report up to 5× slowdowns from
// this). Replacement is random, which is both close to NIC behaviour and
// avoids the LRU scan-thrash cliff: with a working set of w QPs and capacity
// c < w, the hit rate degrades smoothly as roughly c/w.
type qpCache struct {
	cap   int
	slots []uint64
	index map[uint64]int
	rng   *rand.Rand
}

func newQPCache(capacity int, rng *rand.Rand) *qpCache {
	return &qpCache{
		cap:   capacity,
		index: make(map[uint64]int, capacity),
		rng:   rng,
	}
}

// touch reports whether qp was cached, inserting it (evicting a random
// victim if full) when it was not. On eviction it also returns the evicted
// QP key for the telemetry layer.
func (c *qpCache) touch(qp uint64) (hit bool, victim uint64, evicted bool) {
	if _, ok := c.index[qp]; ok {
		return true, 0, false
	}
	if len(c.slots) < c.cap {
		c.index[qp] = len(c.slots)
		c.slots = append(c.slots, qp)
		return false, 0, false
	}
	slot := c.rng.Intn(c.cap)
	victim = c.slots[slot]
	delete(c.index, victim)
	c.slots[slot] = qp
	c.index[qp] = slot
	return false, victim, true
}

// Len returns the number of cached QP states.
func (c *qpCache) Len() int { return len(c.slots) }
