package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rshuffle/internal/sim"
)

// quietProfile returns an EDR profile with randomness disabled so latency
// arithmetic is exact.
func quietProfile() Profile {
	p := EDR()
	p.UDReorderProb = 0
	p.UDLossRate = 0
	return p
}

func TestSingleMessageLatency(t *testing.T) {
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 2)
	var deliveredAt sim.Time
	size := 65536
	n.Transmit(&Message{
		From: 0, To: 1, FromQP: 1, ToQP: 2, Payload: size, Service: RC,
		Deliver: func(at sim.Time) { deliveredAt = at },
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	wire := p.WireBytes(size, RC)
	// First touch of each QP misses the cache.
	want := sim.Time(0).
		Add(p.WQEProcessing + p.QPCacheMissPenalty + Serialize(wire, p.LinkBandwidth)).
		Add(p.SwitchDelay + p.PropagationDelay).
		Add(p.QPCacheMissPenalty + Serialize(wire, p.LinkBandwidth))
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestPipelinedStreamReachesLineRate(t *testing.T) {
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 2)
	const msgSize = 65536
	const count = 400
	var last sim.Time
	for i := 0; i < count; i++ {
		n.Transmit(&Message{
			From: 0, To: 1, FromQP: 1, ToQP: 2, Payload: msgSize, Service: RC,
			Deliver: func(at sim.Time) { last = at },
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	gbps := float64(count*msgSize) / (float64(last) / 1e9)
	// Should be within 5% of the configured link bandwidth (headers + ramp).
	if gbps < 0.95*p.LinkBandwidth*float64(msgSize)/float64(p.WireBytes(msgSize, RC)) {
		t.Fatalf("stream goodput %.3g B/s, want close to %.3g", gbps, p.LinkBandwidth)
	}
	if gbps > p.LinkBandwidth {
		t.Fatalf("goodput %.3g exceeds line rate %.3g", gbps, p.LinkBandwidth)
	}
}

func TestIncastSharesReceiverDownlink(t *testing.T) {
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 5)
	const msgSize = 65536
	const perSender = 100
	var last sim.Time
	received := 0
	for src := 1; src < 5; src++ {
		for i := 0; i < perSender; i++ {
			n.Transmit(&Message{
				From: src, To: 0, FromQP: uint64(src), ToQP: 100 + uint64(src),
				Payload: msgSize, Service: RC,
				Deliver: func(at sim.Time) { received++; last = at },
			})
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 4*perSender {
		t.Fatalf("received %d, want %d", received, 4*perSender)
	}
	goodput := float64(received*msgSize) / (float64(last) / 1e9)
	line := p.LinkBandwidth * float64(msgSize) / float64(p.WireBytes(msgSize, RC))
	if goodput > line {
		t.Fatalf("incast goodput %.4g exceeds downlink line rate %.4g", goodput, line)
	}
	if goodput < 0.9*line {
		t.Fatalf("incast goodput %.4g too far below line rate %.4g", goodput, line)
	}
}

func TestUDOversizePanics(t *testing.T) {
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize UD message did not panic")
		}
	}()
	n.Transmit(&Message{From: 0, To: 1, Payload: p.MTU + 1, Service: UD, Deliver: func(sim.Time) {}})
}

func TestUDReorderingHappens(t *testing.T) {
	s := sim.New(7)
	p := EDR()
	p.UDReorderProb = 0.3
	p.UDReorderJitter = 20 * time.Microsecond
	n := New(s, p, 2)
	var order []int
	const count = 300
	for i := 0; i < count; i++ {
		i := i
		n.Transmit(&Message{
			From: 0, To: 1, FromQP: 1, ToQP: 2, Payload: 4096, Service: UD,
			Deliver: func(at sim.Time) { order = append(order, i) },
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != count {
		t.Fatalf("delivered %d, want %d", len(order), count)
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("expected at least one out-of-order UD delivery")
	}
}

func TestRCNeverReorders(t *testing.T) {
	s := sim.New(7)
	p := EDR() // reorder prob nonzero, but applies to UD only
	n := New(s, p, 2)
	var order []int
	for i := 0; i < 200; i++ {
		i := i
		n.Transmit(&Message{
			From: 0, To: 1, FromQP: 1, ToQP: 2, Payload: 4096, Service: RC,
			Deliver: func(at sim.Time) { order = append(order, i) },
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("RC delivery reordered at %d: %d after %d", i, order[i], order[i-1])
		}
	}
}

func TestInjectedUDLoss(t *testing.T) {
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 2)
	n.InjectUDLoss(1, 2)
	delivered, dropped := 0, 0
	for i := 0; i < 5; i++ {
		n.Transmit(&Message{
			From: 0, To: 1, FromQP: 1, ToQP: 2, Payload: 1024, Service: UD,
			Deliver: func(at sim.Time) { delivered++ },
			Dropped: func() { dropped++ },
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 3 || dropped != 2 {
		t.Fatalf("delivered=%d dropped=%d, want 3 and 2", delivered, dropped)
	}
	if got := n.Stats(1).UDDropped; got != 2 {
		t.Fatalf("stats UDDropped = %d, want 2", got)
	}
}

func TestQPCacheMissesDegradeThroughput(t *testing.T) {
	run := func(nqps int) float64 {
		s := sim.New(1)
		p := FDR() // small cache
		p.UDReorderProb = 0
		n := New(s, p, 2)
		const msgSize = 65536
		const count = 600
		var last sim.Time
		for i := 0; i < count; i++ {
			qp := uint64(i % nqps)
			n.Transmit(&Message{
				From: 0, To: 1, FromQP: qp, ToQP: 1000 + qp, Payload: msgSize, Service: RC,
				Deliver: func(at sim.Time) { last = at },
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(count*msgSize) / (float64(last) / 1e9)
	}
	few, many := run(4), run(200)
	if many >= few {
		t.Fatalf("throughput with 200 QPs (%.3g) should be below 4 QPs (%.3g)", many, few)
	}
	if many > 0.93*few {
		t.Fatalf("expected >7%% degradation from QP cache misses, got %.1f%%",
			100*(1-many/few))
	}
}

func TestReadTransfer(t *testing.T) {
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 2)
	var at sim.Time
	n.ReadTransfer(0, 1, 10, 20, 65536, func(t sim.Time) { at = t })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at == 0 {
		t.Fatal("read data never arrived")
	}
	// Must take at least two propagation delays plus both serializations.
	min := sim.Time(0).Add(2*(p.SwitchDelay+p.PropagationDelay) +
		Serialize(p.WireBytes(65536, RC), p.LinkBandwidth))
	if at < min {
		t.Fatalf("read completed at %v, below physical minimum %v", at, min)
	}
	if got := n.Stats(0).ReadRequests; got != 1 {
		t.Fatalf("ReadRequests = %d, want 1", got)
	}
}

func TestLoopbackDelivers(t *testing.T) {
	s := sim.New(1)
	n := New(s, quietProfile(), 2)
	ok := false
	n.Transmit(&Message{From: 1, To: 1, FromQP: 5, ToQP: 5, Payload: 4096, Service: RC,
		Deliver: func(at sim.Time) { ok = at > 0 }})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("loopback message not delivered after t=0")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 3)
	for i := 0; i < 10; i++ {
		n.Transmit(&Message{From: 0, To: 2, FromQP: 1, ToQP: 2, Payload: 1000, Service: RC,
			Deliver: func(sim.Time) {}})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	tx, rx := n.Stats(0), n.Stats(2)
	if tx.TxMessages != 10 || tx.TxBytes != 10000 {
		t.Fatalf("tx stats = %+v", tx)
	}
	if rx.RxMessages != 10 || rx.RxBytes != 10000 {
		t.Fatalf("rx stats = %+v", rx)
	}
	if tx.TxWireBytes <= tx.TxBytes {
		t.Fatal("wire bytes should exceed payload bytes")
	}
	if mid := n.Stats(1); mid.RxMessages != 0 || mid.TxMessages != 0 {
		t.Fatalf("uninvolved node has traffic: %+v", mid)
	}
}

func TestQPCacheBasics(t *testing.T) {
	c := newQPCache(2, rand.New(rand.NewSource(1)))
	hit := func(qp uint64) bool { h, _, _ := c.touch(qp); return h }
	if hit(1) {
		t.Fatal("first touch of 1 should miss")
	}
	if !hit(1) {
		t.Fatal("second touch of 1 should hit")
	}
	hit(2)
	if !hit(1) || !hit(2) {
		t.Fatal("both QPs should fit in a cache of 2")
	}
	_, victim, evicted := c.touch(3) // evicts one of {1,2}
	if !evicted || (victim != 1 && victim != 2) {
		t.Fatalf("touch(3) evicted=%v victim=%d, want eviction of 1 or 2", evicted, victim)
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	if !hit(3) {
		t.Fatal("3 must be cached right after insertion")
	}
}

// Property: hit rate with working set w and capacity c (< w, random
// replacement, cyclic access) should be well above zero and below one —
// i.e., no scan-thrash cliff.
func TestQPCacheNoThrashCliff(t *testing.T) {
	c := newQPCache(32, rand.New(rand.NewSource(3)))
	hits, total := 0, 0
	for round := 0; round < 200; round++ {
		for qp := uint64(0); qp < 48; qp++ {
			if h, _, _ := c.touch(qp); h {
				hits++
			}
			total++
		}
	}
	rate := float64(hits) / float64(total)
	if rate < 0.3 || rate > 0.9 {
		t.Fatalf("hit rate %.2f outside smooth-degradation range [0.3, 0.9]", rate)
	}
}

// Property: WireBytes is monotone in payload and always at least payload+1.
func TestWireBytesProperty(t *testing.T) {
	p := EDR()
	f := func(a, b uint16) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		for _, svc := range []Service{RC, UD} {
			if p.WireBytes(x, svc) > p.WireBytes(y, svc) {
				return false
			}
			if p.WireBytes(x, svc) <= x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery time is nondecreasing in message count for a fixed
// route (FIFO serving), and total elapsed grows at least linearly with
// bytes.
func TestFIFODeliveryProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		s := sim.New(5)
		p := quietProfile()
		n := New(s, p, 2)
		var times []sim.Time
		for _, sz := range sizes {
			n.Transmit(&Message{
				From: 0, To: 1, FromQP: 1, ToQP: 2,
				Payload: int(sz) + 1, Service: RC,
				Deliver: func(at sim.Time) { times = append(times, at) },
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(times) != len(sizes) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransmit64K(b *testing.B) {
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 2)
	for i := 0; i < b.N; i++ {
		n.Transmit(&Message{From: 0, To: 1, FromQP: 1, ToQP: 2, Payload: 65536,
			Service: RC, Deliver: func(sim.Time) {}})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestControlLaneBypassesBulkBacklog(t *testing.T) {
	// Queue a deep bulk backlog, then send a tiny control message: it must
	// be delivered within roughly one packet time, not behind the backlog.
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 2)
	var bulkLast, ctlAt sim.Time
	for i := 0; i < 100; i++ {
		n.Transmit(&Message{From: 0, To: 1, FromQP: 1, ToQP: 2, Payload: 65536,
			Service: RC, Deliver: func(at sim.Time) { bulkLast = at }})
	}
	// The control message rides a DIFFERENT QP (same-QP ordering would
	// rightly hold it back).
	n.Transmit(&Message{From: 0, To: 1, FromQP: 9, ToQP: 10, Payload: 8,
		Service: RC, Deliver: func(at sim.Time) { ctlAt = at }})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ctlAt >= bulkLast/10 {
		t.Fatalf("control message delivered at %v, should beat the %v bulk backlog", ctlAt, bulkLast)
	}
}

func TestControlLaneRespectsQPOrder(t *testing.T) {
	// On the SAME RC QP, a small message posted after a bulk one must not
	// overtake it.
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 2)
	var order []string
	n.Transmit(&Message{From: 0, To: 1, FromQP: 1, ToQP: 2, Payload: 65536,
		Service: RC, Deliver: func(at sim.Time) { order = append(order, "bulk") }})
	n.Transmit(&Message{From: 0, To: 1, FromQP: 1, ToQP: 2, Payload: 8,
		Service: RC, Deliver: func(at sim.Time) { order = append(order, "ctl") }})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "bulk" {
		t.Fatalf("same-QP order violated: %v", order)
	}
}

func TestMulticastSingleUplinkSerialization(t *testing.T) {
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 5)
	delivered := map[int]sim.Time{}
	m := &Message{From: 0, FromQP: 1, ToQP: 99, Payload: 4096, Service: UD}
	n.TransmitMulticast(m, []int{1, 2, 3, 4}, func(dest int, at sim.Time) {
		delivered[dest] = at
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 4 {
		t.Fatalf("delivered to %d members, want 4", len(delivered))
	}
	// One uplink serialization: sender tx accounts exactly one message.
	if tx := n.Stats(0).TxMessages; tx != 1 {
		t.Fatalf("tx messages = %d, want 1", tx)
	}
	// All member arrivals within a small window of each other.
	var min, max sim.Time
	for _, at := range delivered {
		if min == 0 || at < min {
			min = at
		}
		if at > max {
			max = at
		}
	}
	if max-min > sim.Time(2*Serialize(p.WireBytes(4096, UD), p.LinkBandwidth)) {
		t.Fatalf("member arrival spread too wide: %v..%v", min, max)
	}
}

func TestMulticastPerMemberLoss(t *testing.T) {
	s := sim.New(1)
	p := quietProfile()
	n := New(s, p, 4)
	n.InjectUDLoss(2, 1)
	delivered := map[int]bool{}
	m := &Message{From: 0, FromQP: 1, ToQP: 99, Payload: 512, Service: UD,
		Dropped: func() {}}
	n.TransmitMulticast(m, []int{1, 2, 3}, func(dest int, at sim.Time) {
		delivered[dest] = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered[2] {
		t.Fatal("member 2's copy should have been lost")
	}
	if !delivered[1] || !delivered[3] {
		t.Fatal("other members must still receive their copies")
	}
}
