package fabric

import (
	"testing"
	"time"

	"rshuffle/internal/sim"
)

// TestFaultCrashSilencesNode checks the crash-stop contract: from the crash
// instant, traffic INTO the node vanishes (even infrastructure transfers
// with no Dropped handler), traffic FROM the node vanishes on the wire
// while the sender still observes its local send completion, and traffic
// between two healthy nodes is untouched.
func TestFaultCrashSilencesNode(t *testing.T) {
	s := sim.New(1)
	n := New(s, quietProfile(), 3)
	n.Faults().Add(FaultRule{Class: FaultCrash, To: 1, Start: sim.Time(time.Millisecond)})

	var delivered, dropped, sent, healthy int
	tx := func(from, to int, withDrop bool) {
		m := &Message{
			From: from, To: to, FromQP: 1, ToQP: 2, Payload: 4096, Service: RC,
			Deliver: func(at sim.Time) {
				if from == 0 && to == 2 {
					healthy++
				} else {
					delivered++
				}
			},
			Sent: func(at sim.Time) { sent++ },
		}
		if withDrop {
			m.Dropped = func() { dropped++ }
		}
		n.Transmit(m)
	}
	s.At(sim.Time(2*time.Millisecond), func() {
		tx(0, 1, true)  // into the crashed node: dropped, retry machinery told
		tx(0, 1, false) // infrastructure transfer into it: silently gone
		tx(1, 2, true)  // from the crashed node: local send completes, wire eats it
		tx(0, 2, true)  // between survivors: unaffected
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("crashed node exchanged %d message(s)", delivered)
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (one each way with a Dropped handler)", dropped)
	}
	if sent != 4 {
		t.Fatalf("sent = %d, want 4: local completions fire regardless of the remote fate", sent)
	}
	if healthy != 1 {
		t.Fatalf("survivor-to-survivor message lost: healthy = %d", healthy)
	}
}

// TestFaultCrashBeforeStartDelivers sends before the crash instant: the
// message is in flight while the node is still up and must arrive.
func TestFaultCrashBeforeStartDelivers(t *testing.T) {
	s := sim.New(1)
	n := New(s, quietProfile(), 2)
	n.Faults().Add(FaultRule{Class: FaultCrash, To: 1, Start: sim.Time(time.Second)})
	got := 0
	n.Transmit(&Message{
		From: 0, To: 1, FromQP: 1, ToQP: 2, Payload: 4096, Service: RC,
		Deliver: func(at sim.Time) { got++ },
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("pre-crash message not delivered")
	}
}

// TestFaultCrashMulticast checks the two multicast halves: a crashed sender
// reaches nobody (not even its own switch-loopback copy), and a crashed
// member's copy vanishes while the rest of the group still receives.
func TestFaultCrashMulticast(t *testing.T) {
	s := sim.New(1)
	n := New(s, quietProfile(), 3)
	n.Faults().Add(FaultRule{Class: FaultCrash, To: 1, Start: 0})

	reached := map[int]int{}
	dests := []int{0, 1, 2}
	// Healthy sender 0: members 0 and 2 receive, crashed member 1 does not.
	n.TransmitMulticast(&Message{From: 0, FromQP: 1, ToQP: 2, Payload: 2048, Service: UD},
		dests, func(dest int, at sim.Time) { reached[dest]++ })
	// Crashed sender 1: nobody receives.
	n.TransmitMulticast(&Message{From: 1, FromQP: 1, ToQP: 2, Payload: 2048, Service: UD},
		dests, func(dest int, at sim.Time) { reached[10+dest]++ })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if reached[0] != 1 || reached[2] != 1 || reached[1] != 0 {
		t.Fatalf("healthy multicast reached %v, want members 0 and 2 only", reached)
	}
	for d := 10; d <= 12; d++ {
		if reached[d] != 0 {
			t.Fatalf("crashed sender's multicast reached member %d", d-10)
		}
	}
}

// TestCrashedAndCrashTime covers the introspection the failure detector
// relies on.
func TestCrashedAndCrashTime(t *testing.T) {
	s := sim.New(1)
	n := New(s, quietProfile(), 2)
	if n.Crashed(1, sim.Time(time.Hour)) {
		t.Fatalf("empty plan reports a crash")
	}
	at := sim.Time(3 * time.Millisecond)
	n.Faults().Add(FaultRule{Class: FaultCrash, To: 1, Start: at})
	if n.Crashed(1, at-1) || !n.Crashed(1, at) || n.Crashed(0, at) {
		t.Fatalf("Crashed window wrong around %v", at)
	}
	if ct, ok := n.CrashTime(1); !ok || ct != at {
		t.Fatalf("CrashTime(1) = %v,%v, want %v,true", ct, ok, at)
	}
	if _, ok := n.CrashTime(0); ok {
		t.Fatalf("CrashTime(0) reported for a healthy node")
	}
}

// TestOpenEndedPausePanics is the regression for a silent misconfiguration:
// a FaultPause with neither an End nor a duty cycle used to be accepted and
// then ignored by the pause-window arithmetic. It must panic at Add time
// and point the caller at FaultCrash.
func TestOpenEndedPausePanics(t *testing.T) {
	expectPanic := func(name string, r FaultRule) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Add accepted an invalid rule", name)
			}
		}()
		s := sim.New(1)
		New(s, quietProfile(), 2).Faults().Add(r)
	}
	expectPanic("open-ended pause", FaultRule{Class: FaultPause, To: 0})
	expectPanic("crash with AnyNode", FaultRule{Class: FaultCrash, To: AnyNode})
	expectPanic("crash with End", FaultRule{Class: FaultCrash, To: 1, End: sim.Time(time.Second)})
	expectPanic("crash with Count", FaultRule{Class: FaultCrash, To: 1, Count: 3})

	// The two bounded pause forms must still be accepted.
	s := sim.New(1)
	n := New(s, quietProfile(), 2)
	n.Faults().Add(FaultRule{Class: FaultPause, To: 0, End: sim.Time(time.Second)})
	n.Faults().Add(FaultRule{Class: FaultPause, To: 0, Period: time.Millisecond, OnFor: 100 * time.Microsecond})
}
