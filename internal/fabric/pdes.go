package fabric

import (
	"math/rand"

	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

// PDES plumbing: a partitioned Network spreads its nodes across the logical
// partitions of a sim.Group (see internal/sim/pdes.go). Every per-node
// resource — the NIC, its QP cache, its RNG stream, its trace shard — is
// owned by the node's partition and only touched from that partition's
// events; cross-node deliveries go through Group.Route. The legacy
// single-simulation path is the nil-partition case: every accessor below
// degrades to the shared Sim/tracer/RNG, so the pre-PDES code path is
// byte-for-byte unchanged.
//
// Per-node RNG streams are the key to LP-count invariance: a draw made on
// the shared simulation RNG would interleave with other nodes' draws in an
// order that depends on how LPs execute, while a per-node stream advances
// only in that node's own (deterministic) causal order. The same holds for
// trace shards: each node appends to its own ring, and the shards merge
// into one deterministic stream after the run (telemetry.MergeShards).
type partition struct {
	g    *sim.Group
	sims []*sim.Simulation
	rngs []*rand.Rand
	// shards[i] is node i's trace shard; shards[nodes] is the control
	// actor's. nil until tracing is enabled.
	shards []*telemetry.Tracer
}

// NewPartitioned builds a network whose n hosts are partitioned across g's
// LPs. Network.Sim is the control partition's simulation (LP 0), which keeps
// host-side helpers working; per-node scheduling must go through SimAt.
// Lossy profiles are rejected: the PFC/ECN egress model writes sender state
// from receiver context, which is only safe on a single clock.
func NewPartitioned(g *sim.Group, prof Profile, n int, seed int64) *Network {
	if prof.Lossy {
		panic("fabric: partitioned execution does not support lossy profiles")
	}
	net := &Network{Sim: g.Sim(g.Control()), Prof: prof, nics: make([]*nic, n)}
	p := &partition{g: g, sims: make([]*sim.Simulation, n), rngs: make([]*rand.Rand, n)}
	for i := 0; i < n; i++ {
		p.sims[i] = g.Sim(i)
		// splitmix-style spread keeps per-node streams decorrelated while
		// staying a pure function of (seed, node) — identical at every LP
		// count.
		p.rngs[i] = rand.New(rand.NewSource(seed ^ (int64(i)+1)*-0x61C8864680B583EB))
	}
	net.part = p
	net.faults.rng = net.Sim.Rand()
	net.lookahead = prof.Lookahead()
	// The batched-arrival fast path assumes one clock; partitioned runs
	// always take the exact per-message path.
	net.batchOff = true
	for i := range net.nics {
		net.nics[i] = &nic{id: i, cache: newQPCache(prof.QPCacheSize, p.rngs[i]),
			txOrder: make(map[uint64]sim.Time), rxOrder: make(map[uint64]sim.Time)}
	}
	return net
}

// Partitioned reports whether the network runs on a sim.Group.
func (n *Network) Partitioned() bool { return n.part != nil }

// Group returns the owning sim.Group, or nil on the legacy path.
func (n *Network) Group() *sim.Group {
	if n.part == nil {
		return nil
	}
	return n.part.g
}

// SimAt returns the simulation owning node's events: the node's partition
// when partitioned, the shared simulation otherwise. node == -1 (cluster-
// wide context) maps to the control partition.
func (n *Network) SimAt(node int) *sim.Simulation {
	if n.part == nil || node < 0 {
		return n.Sim
	}
	return n.part.sims[node]
}

// TracerAt returns the tracer shard for events executing on node's
// partition (-1 for control), or the shared tracer on the legacy path. The
// shard is chosen by the *executing* partition, never by the node a trace
// happens to be attributed to, so emission stays race-free.
func (n *Network) TracerAt(node int) *telemetry.Tracer {
	if n.part == nil || n.part.shards == nil {
		return n.tr
	}
	if node < 0 || node >= len(n.part.sims) {
		return n.part.shards[len(n.part.sims)]
	}
	return n.part.shards[node]
}

// rngAt returns node's deterministic random stream (the shared simulation
// RNG on the legacy path).
func (n *Network) rngAt(node int) *rand.Rand {
	if n.part == nil {
		return n.Sim.Rand()
	}
	return n.part.rngs[node]
}

// SetTracerShards installs per-node trace shards (one per node plus one for
// the control actor). Partitioned runs use shards instead of SetTracer.
func (n *Network) SetTracerShards(shards []*telemetry.Tracer) {
	if n.part == nil {
		panic("fabric: SetTracerShards requires a partitioned network")
	}
	if len(shards) != len(n.part.sims)+1 {
		panic("fabric: need one shard per node plus control")
	}
	n.part.shards = shards
}

// TraceShards returns the installed shards, or nil.
func (n *Network) TraceShards() []*telemetry.Tracer {
	if n.part == nil {
		return nil
	}
	return n.part.shards
}

// Route schedules fn on dst's partition at instant at, on behalf of the
// actor whose event is executing (src). On the legacy path it degrades to a
// plain scheduler event at at.
func (n *Network) Route(src, dst int, at sim.Time, fn func()) {
	if n.part == nil {
		n.Sim.At(at, fn)
		return
	}
	n.part.g.Route(src, dst, at, fn)
}

// RouteLatency is the minimum latency of any routed cross-node interaction
// — switch traversal plus propagation, with no serialization component —
// and therefore the widest safe PDES window lookahead. Data messages add
// WQE processing and serialization on top (Profile.Lookahead); control
// completions (ACKs, fence NAKs, membership verdicts) pay exactly this.
func (p *Profile) RouteLatency() sim.Duration {
	return p.SwitchDelay + p.PropagationDelay
}
