package fabric

import (
	"testing"
	"time"
)

// TestLosslessProfilesPinned pins the legacy RoCE()/IWARP() extension
// profiles field by field: the lossy RoCEv2 tier must not disturb them, or
// the calibrated BenchmarkExtFabrics numbers (~4.1 GiB/s SEMQ/SR on RoCE)
// silently shift. If a pinned value changes deliberately, update this test
// AND re-derive the throughput window in internal/experiments.
func TestLosslessProfilesPinned(t *testing.T) {
	_ = RoCEv2Lossy() // constructing the lossy profile must not leak state
	roce, iw := RoCE(), IWARP()

	for _, c := range []struct {
		name string
		got  any
		want any
	}{
		{"RoCE.LinkBandwidth", roce.LinkBandwidth, 4.45e9},
		{"RoCE.PropagationDelay", roce.PropagationDelay, 900 * time.Nanosecond},
		{"RoCE.SwitchDelay", roce.SwitchDelay, 600 * time.Nanosecond},
		{"RoCE.MTU", roce.MTU, 4096},
		{"RoCE.HeaderRC", roce.HeaderRC, 58},
		{"RoCE.HeaderUD", roce.HeaderUD, 86},
		{"RoCE.QPCacheSize", roce.QPCacheSize, 512},
		{"RoCE.SupportsUD", roce.SupportsUD, true},
		{"RoCE.Threads", roce.Threads, 14},
		{"iWARP.LinkBandwidth", iw.LinkBandwidth, 4.45e9},
		{"iWARP.HeaderRC", iw.HeaderRC, 94},
		{"iWARP.WQEProcessing", iw.WQEProcessing, 80 * time.Nanosecond},
		{"iWARP.PropagationDelay", iw.PropagationDelay, 1500 * time.Nanosecond},
		{"iWARP.PostCost", iw.PostCost, 360 * time.Nanosecond},
		{"iWARP.SupportsUD", iw.SupportsUD, false},
	} {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}

	// The whole lossy tier must be disabled on the legacy profiles.
	for _, p := range []Profile{roce, iw, FDR(), EDR()} {
		if p.Lossy || p.DCQCN {
			t.Errorf("%s: lossy tier enabled on a lossless profile", p.Name)
		}
		if p.SwitchBufferBytes != 0 || p.PFCXoffBytes != 0 || p.PFCXonBytes != 0 || p.ECNMarkBytes != 0 {
			t.Errorf("%s: lossy thresholds set on a lossless profile", p.Name)
		}
	}

	// And the lossy profile must keep its thresholds ordered as DCQCN
	// requires: mark < XON < XOFF < buffer.
	lp := RoCEv2Lossy()
	if !lp.Lossy || !lp.DCQCN {
		t.Fatal("RoCEv2Lossy must enable the lossy tier and DCQCN")
	}
	if !(lp.ECNMarkBytes < lp.PFCXonBytes && lp.PFCXonBytes < lp.PFCXoffBytes &&
		lp.PFCXoffBytes < lp.SwitchBufferBytes) {
		t.Fatalf("threshold order violated: mark %d, xon %d, xoff %d, buffer %d",
			lp.ECNMarkBytes, lp.PFCXonBytes, lp.PFCXoffBytes, lp.SwitchBufferBytes)
	}
}
