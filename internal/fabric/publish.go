package fabric

import (
	"fmt"

	"rshuffle/internal/telemetry"
)

// PublishMetrics copies every NIC counter into the registry under
// "fabric.<metric>.node<i>" names plus "fabric.<metric>.total" aggregates.
// It supersedes scattered per-test NICStats reads: experiments scrape the
// registry once and derive their figures from it. Counters accumulate, so
// publishing twice doubles them — publish into a fresh registry per run (or
// per phase, after ResetStats).
func (n *Network) PublishMetrics(reg *telemetry.Registry) {
	type item struct {
		name string
		get  func(*NICStats) int64
	}
	items := []item{
		{"tx_messages", func(s *NICStats) int64 { return s.TxMessages }},
		{"rx_messages", func(s *NICStats) int64 { return s.RxMessages }},
		{"tx_bytes", func(s *NICStats) int64 { return s.TxBytes }},
		{"rx_bytes", func(s *NICStats) int64 { return s.RxBytes }},
		{"tx_wire_bytes", func(s *NICStats) int64 { return s.TxWireBytes }},
		{"tx_control_bytes", func(s *NICStats) int64 { return s.TxControlBytes }},
		{"tx_data_bytes", func(s *NICStats) int64 { return s.TxDataBytes }},
		{"rx_control_bytes", func(s *NICStats) int64 { return s.RxControlBytes }},
		{"rx_data_bytes", func(s *NICStats) int64 { return s.RxDataBytes }},
		{"qp_cache_hits", func(s *NICStats) int64 { return s.QPCacheHits }},
		{"qp_cache_misses", func(s *NICStats) int64 { return s.QPCacheMisses }},
		{"qp_cache_evictions", func(s *NICStats) int64 { return s.QPCacheEvictions }},
		{"ud_dropped", func(s *NICStats) int64 { return s.UDDropped }},
		{"rc_dropped", func(s *NICStats) int64 { return s.RCDropped }},
		{"rc_retransmits", func(s *NICStats) int64 { return s.RCRetransmits }},
		{"read_requests", func(s *NICStats) int64 { return s.ReadRequests }},
		{"pfc_pauses_sent", func(s *NICStats) int64 { return s.PFCPausesSent }},
		{"pfc_pause_ns", func(s *NICStats) int64 { return int64(s.PFCPauseTime) }},
		{"ecn_marks", func(s *NICStats) int64 { return s.ECNMarks }},
		{"tail_drops", func(s *NICStats) int64 { return s.TailDrops }},
	}
	for _, it := range items {
		total := reg.Counter("fabric." + it.name + ".total")
		for i, nc := range n.nics {
			v := it.get(&nc.stats)
			reg.Counter(fmt.Sprintf("fabric.%s.node%d", it.name, i)).Add(v)
			total.Add(v)
		}
	}
	txPeak := reg.Gauge("fabric.tx_backlog_peak_us.max")
	rxPeak := reg.Gauge("fabric.rx_backlog_peak_us.max")
	for i, nc := range n.nics {
		tx := float64(nc.stats.TxBacklogPeak) / 1e3
		rx := float64(nc.stats.RxBacklogPeak) / 1e3
		reg.Gauge(fmt.Sprintf("fabric.tx_backlog_peak_us.node%d", i)).SetMax(tx)
		reg.Gauge(fmt.Sprintf("fabric.rx_backlog_peak_us.node%d", i)).SetMax(rx)
		txPeak.SetMax(tx)
		rxPeak.SetMax(rx)
	}
}
