module rshuffle

go 1.22
