package rshuffle_test

import (
	"fmt"

	"rshuffle"
)

// Example runs the paper's synthetic receive-throughput workload on a small
// simulated EDR cluster with the MESQ/SR design and prints the row count
// (throughput varies with the calibrated cost model, so it is not asserted
// here; see EXPERIMENTS.md for the measured figures).
func Example() {
	prof := rshuffle.EDR()
	prof.UDReorderProb = 0 // deterministic delivery order for the example
	c := rshuffle.NewCluster(prof, 2, 4, 1)

	res, err := c.RunBench(rshuffle.BenchOpts{
		Factory:     rshuffle.RDMA(rshuffle.Config{Impl: rshuffle.SQSR, Endpoints: 4}),
		RowsPerNode: 100_000,
	})
	if err != nil || res.Err != nil {
		fmt.Println("error:", err, res.Err)
		return
	}
	var rows int64
	for _, r := range res.RowsPerNode {
		rows += r
	}
	fmt.Printf("shuffled %d rows across %d nodes\n", rows, c.N)
	// Output:
	// shuffled 200000 rows across 2 nodes
}

// ExampleAlgorithms lists the paper's six designs.
func ExampleAlgorithms() {
	for _, a := range rshuffle.Algorithms {
		fmt.Println(a.Name)
	}
	// Output:
	// MEMQ/SR
	// MEMQ/RD
	// MESQ/SR
	// SEMQ/SR
	// SEMQ/RD
	// SESQ/SR
}

// ExampleBroadcast shows the transmission-group abstraction: a single group
// holding every node broadcasts, singleton groups repartition.
func ExampleBroadcast() {
	fmt.Println(rshuffle.Broadcast(3))
	fmt.Println(rshuffle.Repartition(3))
	// Output:
	// [[0 1 2]]
	// [[0] [1] [2]]
}
