GO ?= go

.PHONY: build test test-full vet race fmt trace trace-rocev2 lossy-smoke partition-smoke dag-smoke pdes-smoke fuzz-smoke bench bench-smoke bench-gate profile

build:
	$(GO) build ./...

# Fast suite: unit + protocol tests, multi-second experiment sweeps skipped.
test:
	$(GO) test -short ./...

# Full suite, including the experiment reproductions (several minutes).
test-full:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

fmt:
	gofmt -l -w .

# Run a short traced benchmark twice with the same seed and check the
# exported Chrome traces are byte-identical (the determinism oracle); the
# trace lands in trace.json for chrome://tracing or Perfetto. The binary is
# built once and run twice — `go run` would pay the toolchain twice.
trace:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp" trace2.json' EXIT; \
	$(GO) build -o $$tmp/shufflebench ./cmd/shufflebench && \
	$$tmp/shufflebench -trace trace.json && \
	$$tmp/shufflebench -trace trace2.json && \
	cmp trace.json trace2.json && \
	echo "trace deterministic: trace.json"

# Same determinism oracle on the lossy RoCEv2 tier: the trace now carries
# pause frames, ECN marks, CNPs, rate cuts, and retransmits, and must still
# be byte-identical across same-seed runs.
trace-rocev2:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp" trace-rocev2-2.json' EXIT; \
	$(GO) build -o $$tmp/shufflebench ./cmd/shufflebench && \
	$$tmp/shufflebench -profile rocev2 -trace trace-rocev2.json && \
	$$tmp/shufflebench -profile rocev2 -trace trace-rocev2-2.json && \
	cmp trace-rocev2.json trace-rocev2-2.json && \
	grep -q '"name":"rate_cut"' trace-rocev2.json && \
	echo "lossy trace deterministic: trace-rocev2.json"

# Short lossy chaos smoke: every Table 1 design through the fault matrix on
# the lossy RoCEv2 fabric; any non-converging cell fails the run.
lossy-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/shufflebench ./cmd/shufflebench && \
	out=$$($$tmp/shufflebench -chaos -profile rocev2) && \
	echo "$$out" && \
	! echo "$$out" | grep -q exhausted

# Race-enabled transient-fault smoke: one mid-stream reboot and one
# asymmetric partition against MEMQ/SR, through detection, epoch fencing,
# and partial restart. The partition cell must re-stream strictly fewer
# partitions than a full restart would.
partition-smoke:
	$(GO) test -race -run '^TestPartitionSmoke$$' -v ./internal/cluster/

# Race-enabled DAG smoke: the multi-stage plan (partial agg → hash
# re-shuffle → join → broadcast) through an attempt-zero RC outage and a
# whole-plan restart, exercising the planner's recovery path.
dag-smoke:
	$(GO) test -race -run '^TestDagChaosSmoke$$' -v ./internal/dag/

# Race-enabled PDES equivalence smoke: all six Table 1 designs plus a
# crash-stop chaos cell at 1, 2, and 8 logical partitions; every output
# fingerprint (result, metrics report, merged trace) must be byte-identical
# across LP counts.
pdes-smoke:
	$(GO) test -race -run '^TestPDES' -v ./internal/cluster/

# Short fuzz smoke for the fuzz targets (checked-in corpus plus a few
# seconds of fresh coverage each). Go runs one -fuzz target per invocation,
# so the packages are fuzzed back to back.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzFaultPlanValidation$$' -fuzztime $(FUZZTIME) ./internal/fabric/
	$(GO) test -run '^$$' -fuzz '^FuzzTimerWheel$$' -fuzztime $(FUZZTIME) ./internal/sim/
	$(GO) test -run '^$$' -fuzz '^FuzzWindowMerge$$' -fuzztime $(FUZZTIME) ./internal/sim/

# Wall-clock benchmarks: kernel micro (events/sec, ns/dispatch, allocs/event)
# plus whole-query macro, exported as BENCH_sim.json for regression tracking.
# Each run appends to the file's run history (the old single-run schema is
# absorbed as the first entry), so repeated invocations build a series.
# benchjson is built before the benchmarks start: `go test | go run ...`
# compiles the consumer concurrently with the first benchmarks in the pipe,
# which inflates their ns/op on small machines.
BENCH_PKGS = ./internal/sim/ ./internal/cluster/
bench:
	@tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/benchjson ./cmd/benchjson && \
	$(GO) test -run='^$$' -bench=. -benchmem $(BENCH_PKGS) | $$tmp/benchjson -append -o BENCH_sim.json

# CI smoke: every benchmark runs one iteration, proving the harness and the
# JSON export stay green without paying for steady-state measurements.
bench-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/benchjson ./cmd/benchjson && \
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x $(BENCH_PKGS) | $$tmp/benchjson -o BENCH_sim.json

# Bench regression gate: benchmark the smoke set at the working tree AND at
# GATE_BASE (default origin/main) on the same machine, then fail on a >15%
# ns/op regression via benchjson -compare. Same-machine A/B is the only
# honest comparison — ns/op from the checked-in history was measured on
# different hardware. Each side runs GATE_COUNT repetitions and benchjson
# keeps the fastest (noise only adds time; single repetitions make the
# ~1 µs channel-handoff benchmarks flap by ±20%). Benchmarks that exist on
# only one side are reported but never fail the gate.
GATE_BASE ?= origin/main
GATE_BENCHTIME ?= 300ms
GATE_COUNT ?= 3
bench-gate:
	@tmp=$$(mktemp -d); trap 'git worktree remove -f $$tmp/base 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/benchjson ./cmd/benchjson && \
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(GATE_BENCHTIME) -count=$(GATE_COUNT) $(BENCH_PKGS) | $$tmp/benchjson -o $$tmp/new.json && \
	git worktree add -q --detach $$tmp/base $(GATE_BASE) && \
	( cd $$tmp/base && $(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(GATE_BENCHTIME) -count=$(GATE_COUNT) $(BENCH_PKGS) ) | $$tmp/benchjson -o $$tmp/old.json && \
	$$tmp/benchjson -compare $$tmp/old.json $$tmp/new.json -threshold 0.15

# CPU + heap profile of a whole-query run: future kernel work starts from a
# pprof, not a guess. Tune PROFILE_EXP to the experiment you care about.
PROFILE_EXP ?= table1
profile:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/shufflebench ./cmd/shufflebench && \
	$$tmp/shufflebench -exp $(PROFILE_EXP) -cpuprofile cpu.prof -memprofile mem.prof >/dev/null && \
	echo "wrote cpu.prof and mem.prof; inspect with:" && \
	echo "  $(GO) tool pprof -top cpu.prof" && \
	echo "  $(GO) tool pprof -top -sample_index=alloc_space mem.prof"
