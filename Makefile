GO ?= go

.PHONY: build test test-full vet race fmt

build:
	$(GO) build ./...

# Fast suite: unit + protocol tests, multi-second experiment sweeps skipped.
test:
	$(GO) test -short ./...

# Full suite, including the experiment reproductions (several minutes).
test-full:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

fmt:
	gofmt -l -w .
