GO ?= go

.PHONY: build test test-full vet race fmt trace

build:
	$(GO) build ./...

# Fast suite: unit + protocol tests, multi-second experiment sweeps skipped.
test:
	$(GO) test -short ./...

# Full suite, including the experiment reproductions (several minutes).
test-full:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

fmt:
	gofmt -l -w .

# Run a short traced benchmark twice with the same seed and check the
# exported Chrome traces are byte-identical (the determinism oracle); the
# trace lands in trace.json for chrome://tracing or Perfetto.
trace:
	$(GO) run ./cmd/shufflebench -trace trace.json
	$(GO) run ./cmd/shufflebench -trace trace2.json
	cmp trace.json trace2.json
	rm trace2.json
	@echo "trace deterministic: trace.json"
