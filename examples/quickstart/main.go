// Quickstart: boot a 4-node simulated EDR cluster, shuffle a synthetic
// table with the paper's best design (MESQ/SR — Send/Receive over the
// Unreliable Datagram service, one endpoint per thread), and print the
// per-node receive throughput.
package main

import (
	"fmt"
	"log"

	"rshuffle"
)

func main() {
	const nodes = 4

	// Boot a simulated cluster with the EDR (100 Gb/s) hardware profile.
	c := rshuffle.NewCluster(rshuffle.EDR(), nodes, 0, 1)

	// Pick the paper's headline design: MESQ/SR.
	cfg := rshuffle.Config{Impl: rshuffle.SQSR, Endpoints: c.Threads}

	// Run the paper's synthetic workload: every node scans a local copy of
	// R(a,b) and repartitions it on R.a across the cluster.
	res, err := c.RunBench(rshuffle.BenchOpts{
		Factory:     rshuffle.RDMA(cfg),
		RowsPerNode: 1_000_000,
		Passes:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatal(res.Err)
	}

	fmt.Printf("MESQ/SR repartition on %d EDR nodes\n", nodes)
	fmt.Printf("  connection setup: %v (+%v memory registration)\n", res.SetupTime, res.RegTime)
	fmt.Printf("  shuffled %d rows in %v of virtual time\n",
		sum(res.RowsPerNode), res.Elapsed)
	fmt.Printf("  per-node receive throughput: %.2f GiB/s\n", res.GiBps())
	for node, b := range res.BytesPerNode {
		fmt.Printf("    node %d received %.1f MiB\n", node, float64(b)/(1<<20))
	}
}

func sum(xs []int64) (t int64) {
	for _, x := range xs {
		t += x
	}
	return
}
