// Broadcast join: when one relation is small (a dimension table), it is
// cheaper to broadcast it to every node than to repartition both sides —
// the pattern behind the paper's TPC-H Q4 plan and Figure 10(b)/(d). The
// example also demonstrates multicast transmission groups: the dimension
// table is sent only to the nodes that hold fact data.
package main

import (
	"fmt"
	"log"

	"rshuffle"
	"rshuffle/internal/engine"
	"rshuffle/internal/shuffle"
)

const (
	nodes    = 4
	dimRows  = 5_000   // small dimension table, lives on node 0
	factRows = 400_000 // per node
	threads  = 8
)

func main() {
	c := rshuffle.NewCluster(rshuffle.EDR(), nodes, threads, 1)
	cfg := rshuffle.Config{Impl: rshuffle.SQSR, Endpoints: threads}

	sch := engine.NewSchema(engine.TInt64, engine.TInt64)
	dim := engine.NewTable(sch)
	w := engine.NewWriter(dim)
	for i := 0; i < dimRows; i++ {
		w.SetInt64(0, int64(i))
		w.SetInt64(1, int64(i*10))
		w.Done()
	}
	facts := make([]*engine.Table, nodes)
	for a := 0; a < nodes; a++ {
		facts[a] = engine.NewTable(sch)
		fw := engine.NewWriter(facts[a])
		for i := 0; i < factRows; i++ {
			fw.SetInt64(0, int64((i*7+a)%dimRows))
			fw.SetInt64(1, int64(i))
			fw.Done()
		}
	}

	var total int64
	c.Sim.Spawn("query", func(p *rshuffle.Proc) {
		comm := rshuffle.BuildComm(p, c, cfg)
		done := c.Sim.NewWaitGroup("bcast-join")

		// Node 0 broadcasts the dimension table to every node (including
		// itself, via NIC loopback); other nodes send nothing but must
		// still signal end-of-stream.
		recvs := make([]*shuffle.Receive, nodes)
		for a := 0; a < nodes; a++ {
			a := a
			in := engine.Operator(&engine.Scan{T: dim})
			if a != 0 {
				in = &engine.Scan{T: engine.NewTable(sch)} // empty
			}
			sh := &shuffle.Shuffle{
				In: in, Comm: comm, Node: a,
				G:   rshuffle.Broadcast(nodes),
				Key: rshuffle.KeyInt64Col(0),
			}
			sink := &engine.Sink{In: sh}
			done.Add(1)
			sink.Run(c.Ctx(a), "send", func(p *rshuffle.Proc) { done.Done() })
			recvs[a] = &shuffle.Receive{Comm: comm, Node: a, Sch: sch}
		}

		// Each node joins the broadcast dimension against its local facts.
		sinks := make([]*engine.Sink, nodes)
		for a := 0; a < nodes; a++ {
			join := &engine.HashJoin{
				Build: recvs[a], Probe: &engine.Scan{T: facts[a]},
				BuildKey: 0, ProbeKey: 0,
			}
			sinks[a] = &engine.Sink{In: join}
			done.Add(1)
			sinks[a].Run(c.Ctx(a), "join", func(p *rshuffle.Proc) { done.Done() })
		}
		c.Sim.Spawn("report", func(p *rshuffle.Proc) {
			done.Wait(p)
			for a := 0; a < nodes; a++ {
				total += sinks[a].Rows
			}
			fmt.Printf("broadcast join matched %d fact rows in %v of virtual time\n",
				total, p.Now())
		})
	})
	if err := c.Sim.Run(); err != nil {
		log.Fatal(err)
	}
	if want := int64(nodes * factRows); total != want {
		log.Fatalf("joined %d rows, want %d (every fact matches one dimension row)", total, want)
	}
	fmt.Println("verified: every fact row matched exactly once")
}
