// TPC-H Q4 end to end: generate a distributed TPC-H database, run the
// distributed Q4 plan over three transports (MESQ/SR, MPI, and the
// co-partitioned "local data" plan), and compare response times — a
// miniature of the paper's Figure 14. Plans execute through the DAG
// planner; the per-edge table shows what each exchange moved.
package main

import (
	"fmt"
	"log"

	"rshuffle"
	"rshuffle/internal/engine"
	"rshuffle/internal/tpch"
)

const (
	nodes = 8
	sf    = 0.05
)

func main() {
	prof := rshuffle.EDR()
	prof.UDReorderProb = 0

	fmt.Printf("generating TPC-H SF %.2f across %d nodes...\n", sf, nodes)
	db := tpch.Generate(sf, nodes, tpch.Random, 42)
	dbLocal := tpch.Generate(sf, nodes, tpch.CoPartitioned, 42)
	fmt.Printf("  %d orders, %d lineitems (%.1f MiB)\n\n",
		db.NOrders, db.NLineitem, float64(db.Bytes())/(1<<20))

	type runDef struct {
		name      string
		db        *tpch.DB
		transport string
		local     bool
	}
	runs := []runDef{
		{"MESQ/SR", db, "mesq", false},
		{"MPI", db, "mpi", false},
		{"local data", dbLocal, "mesq", true},
	}

	var first *engine.Table
	for _, r := range runs {
		factory, err := tpch.TransportFactory(r.transport, prof.Threads)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		c := rshuffle.NewCluster(prof, nodes, 0, 42)
		res, dr, err := tpch.Run(c, r.db, 4, factory, r.local)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		if res.Err != nil {
			log.Fatalf("%s: %v", r.name, res.Err)
		}
		fmt.Printf("%-12s response time %10v (%d result rows)\n", r.name, res.Elapsed, res.Rows)
		for _, e := range dr.Edges {
			fmt.Printf("    %-16s %-9s %8d rows %11d bytes\n", e.Edge, e.Type, e.Rows, e.Bytes)
		}
		if first == nil {
			first = res.Result
			fmt.Println("  o_orderpriority  order_count")
			for i := 0; i < first.N; i++ {
				b := engine.Batch{Sch: first.Sch, Data: first.Row(i), N: 1}
				fmt.Printf("  %-16s %.0f\n", b.Str(0, 0), b.Float64(0, 1))
			}
		} else {
			// All transports must produce identical results.
			if res.Result.N != first.N {
				log.Fatalf("%s: result cardinality differs", r.name)
			}
		}
	}
	fmt.Println("\nall transports returned the same result; MESQ/SR tracks the local plan")
}
