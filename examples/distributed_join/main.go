// Distributed hash join: the classic use of the shuffle operator. Two
// relations R(k, payload) and S(k, payload) are scattered across a 4-node
// cluster; both sides repartition on the join key so matching rows meet on
// the same node, where a hash join runs. The example builds the plan
// directly from the engine operators and the RDMA communication layer —
// the same way the TPC-H plans in internal/tpch are assembled.
package main

import (
	"fmt"
	"log"

	"rshuffle"
	"rshuffle/internal/engine"
	"rshuffle/internal/shuffle"
)

const (
	nodes   = 4
	rRows   = 120_000 // per node
	sRows   = 240_000 // per node
	keyMod  = 50_000  // join keys repeat, so the join fans out
	threads = 8
)

func makeTable(seed int64, rows, mod int) *engine.Table {
	t := engine.NewTable(engine.NewSchema(engine.TInt64, engine.TInt64))
	w := engine.NewWriter(t)
	for i := 0; i < rows; i++ {
		w.SetInt64(0, int64((i*2654435761+int(seed)*97)%mod))
		w.SetInt64(1, int64(i))
		w.Done()
	}
	return t
}

func main() {
	c := rshuffle.NewCluster(rshuffle.EDR(), nodes, threads, 1)
	cfg := rshuffle.Config{Impl: rshuffle.SQSR, Endpoints: threads}

	r := make([]*engine.Table, nodes)
	s := make([]*engine.Table, nodes)
	for a := 0; a < nodes; a++ {
		r[a] = makeTable(int64(a), rRows, keyMod)
		s[a] = makeTable(int64(a+100), sRows, keyMod)
	}

	var joined int64
	c.Sim.Spawn("query", func(p *rshuffle.Proc) {
		// One communication layer per shuffle operator pair, as in a real
		// plan with two exchanges.
		commR := rshuffle.BuildComm(p, c, cfg)
		commS := rshuffle.BuildComm(p, c, cfg)
		done := c.Sim.NewWaitGroup("join")

		recvR := make([]*shuffle.Receive, nodes)
		recvS := make([]*shuffle.Receive, nodes)
		for a := 0; a < nodes; a++ {
			a := a
			// Sending fragments: repartition R and S on the join key.
			for _, side := range []struct {
				comm *rshuffle.Comm
				tbl  *engine.Table
				name string
			}{{commR, r[a], "R"}, {commS, s[a], "S"}} {
				sh := &shuffle.Shuffle{
					In:   &engine.Scan{T: side.tbl},
					Comm: side.comm, Node: a,
					G:   rshuffle.Repartition(nodes),
					Key: rshuffle.KeyInt64Col(0),
				}
				sink := &engine.Sink{In: sh}
				done.Add(1)
				sink.Run(c.Ctx(a), "send-"+side.name, func(p *rshuffle.Proc) { done.Done() })
			}
			recvR[a] = &shuffle.Receive{Comm: commR, Node: a, Sch: r[a].Sch}
			recvS[a] = &shuffle.Receive{Comm: commS, Node: a, Sch: s[a].Sch}
		}

		// Receiving fragments: build on R, probe with S, count matches.
		sinks := make([]*engine.Sink, nodes)
		for a := 0; a < nodes; a++ {
			join := &engine.HashJoin{
				Build: recvR[a], Probe: recvS[a],
				BuildKey: 0, ProbeKey: 0,
			}
			sinks[a] = &engine.Sink{In: join}
			done.Add(1)
			sinks[a].Run(c.Ctx(a), "join", func(p *rshuffle.Proc) { done.Done() })
		}
		c.Sim.Spawn("report", func(p *rshuffle.Proc) {
			done.Wait(p)
			for a := 0; a < nodes; a++ {
				fmt.Printf("  node %d joined %d rows\n", a, sinks[a].Rows)
				joined += sinks[a].Rows
			}
			fmt.Printf("distributed join produced %d rows in %v of virtual time\n",
				joined, p.Now())
		})
	})
	if err := c.Sim.Run(); err != nil {
		log.Fatal(err)
	}

	// Sanity check against a sequential join.
	counts := map[int64]int64{}
	for a := 0; a < nodes; a++ {
		for i := 0; i < r[a].N; i++ {
			counts[engine.RowInt64(r[a].Sch, r[a].Row(i), 0)]++
		}
	}
	var want int64
	for a := 0; a < nodes; a++ {
		for i := 0; i < s[a].N; i++ {
			want += counts[engine.RowInt64(s[a].Sch, s[a].Row(i), 0)]
		}
	}
	if joined != want {
		log.Fatalf("join produced %d rows, want %d", joined, want)
	}
	fmt.Println("verified against sequential join: OK")
}
