package rshuffle_test

import (
	"testing"

	"rshuffle"
)

// TestPublicAPIQuickstart exercises the facade end to end the way the
// quickstart example does.
func TestPublicAPIQuickstart(t *testing.T) {
	prof := rshuffle.EDR()
	prof.UDReorderProb = 0
	c := rshuffle.NewCluster(prof, 4, 0, 1)
	cfg := rshuffle.Config{Impl: rshuffle.SQSR, Endpoints: c.Threads}
	res, err := c.RunBench(rshuffle.BenchOpts{
		Factory:     rshuffle.RDMA(cfg),
		RowsPerNode: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var rows int64
	for _, r := range res.RowsPerNode {
		rows += r
	}
	if rows != 4*200_000 {
		t.Fatalf("rows = %d", rows)
	}
	if res.GiBps() <= 0 {
		t.Fatal("no throughput measured")
	}
}

func TestPublicAPIAlgorithms(t *testing.T) {
	if len(rshuffle.Algorithms) != 6 {
		t.Fatalf("expected the paper's six designs, got %d", len(rshuffle.Algorithms))
	}
	names := map[string]bool{}
	for _, a := range rshuffle.Algorithms {
		names[a.Name] = true
	}
	for _, want := range []string{"MESQ/SR", "SESQ/SR", "MEMQ/SR", "SEMQ/SR", "MEMQ/RD", "SEMQ/RD"} {
		if !names[want] {
			t.Fatalf("missing algorithm %s", want)
		}
	}
}

func TestPublicAPIGroups(t *testing.T) {
	if g := rshuffle.Repartition(4); len(g) != 4 {
		t.Fatalf("Repartition(4) = %v", g)
	}
	if g := rshuffle.Broadcast(4); len(g) != 1 || len(g[0]) != 4 {
		t.Fatalf("Broadcast(4) = %v", g)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	prof := rshuffle.EDR()
	prof.UDReorderProb = 0
	for _, f := range []struct {
		name    string
		factory rshuffle.ProviderFactory
	}{{"mpi", rshuffle.MPI()}, {"ipoib", rshuffle.IPoIB()}} {
		c := rshuffle.NewCluster(prof, 2, 4, 1)
		res, err := c.RunBench(rshuffle.BenchOpts{
			Factory:     f.factory,
			RowsPerNode: 50_000,
		})
		if err != nil || res.Err != nil {
			t.Fatalf("%s: %v %v", f.name, err, res.Err)
		}
	}
}
