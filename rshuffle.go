// Package rshuffle is the public API of the RDMA-aware data shuffling
// library: a faithful reproduction of "Design and Evaluation of an
// RDMA-aware Data Shuffling Operator for Parallel Database Systems"
// (EuroSys 2017) over a deterministic virtual-time InfiniBand model.
//
// The building blocks:
//
//   - FDR/EDR hardware profiles and NewCluster boot a simulated cluster;
//   - Config/Algorithms select one of the paper's six shuffle designs
//     (SESQ/SR, MESQ/SR, SEMQ/SR, MEMQ/SR, SEMQ/RD, MEMQ/RD);
//   - BuildComm wires the communication endpoints, and the Shuffle/Receive
//     operators plug them into the vectorized pull-based engine;
//   - RunBench runs the paper's synthetic receive-throughput workload, and
//     the tpch subpackage (internal/tpch) runs TPC-H Q3, Q4 and Q10;
//   - MPI and IPoIB baseline transports implement the same Provider
//     interface, so the identical operators run over every transport.
//
// See examples/quickstart for a complete program.
package rshuffle

import (
	"rshuffle/internal/cluster"
	"rshuffle/internal/engine"
	"rshuffle/internal/fabric"
	"rshuffle/internal/ipoib"
	"rshuffle/internal/mpi"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
	"rshuffle/internal/verbs"
)

// Hardware profiles of the paper's two clusters.
var (
	// FDR returns the 56 Gb/s FDR InfiniBand cluster profile.
	FDR = fabric.FDR
	// EDR returns the 100 Gb/s EDR InfiniBand cluster profile.
	EDR = fabric.EDR
)

// Re-exported core types; see the internal packages for full documentation.
type (
	// Profile holds a cluster's calibrated hardware and cost model.
	Profile = fabric.Profile
	// Cluster is one simulated cluster instance.
	Cluster = cluster.Cluster
	// Config selects a point in the shuffle design space.
	Config = shuffle.Config
	// Algorithm names one of the paper's six designs.
	Algorithm = shuffle.Algorithm
	// Comm is a wired RDMA communication layer (implements Provider).
	Comm = shuffle.Comm
	// Provider supplies communication endpoints for the operators.
	Provider = shuffle.Provider
	// Groups is the transmission-group abstraction (repartition /
	// multicast / broadcast).
	Groups = shuffle.Groups
	// Shuffle is the data-transmitting operator (Algorithm 1).
	Shuffle = shuffle.Shuffle
	// Receive is the data-receiving operator (Algorithm 2).
	Receive = shuffle.Receive
	// BenchOpts configures the synthetic receive-throughput workload.
	BenchOpts = cluster.BenchOpts
	// BenchResult reports a workload run.
	BenchResult = cluster.BenchResult
	// ProviderFactory builds one transport layer for one shuffle.
	ProviderFactory = cluster.ProviderFactory
	// Proc is a simulated thread of execution.
	Proc = sim.Proc
	// Device is a node's verbs context.
	Device = verbs.Device
	// Operator is the vectorized pull-based operator interface.
	Operator = engine.Operator
	// Table is an in-memory row store.
	Table = engine.Table
	// Schema describes fixed-width rows.
	Schema = engine.Schema
)

// Transport implementation selectors.
const (
	// SQSR: one Queue Pair, Send/Receive over Unreliable Datagram.
	SQSR = shuffle.SQSR
	// MQSR: one Queue Pair per peer, Send/Receive over Reliable Connection.
	MQSR = shuffle.MQSR
	// MQRD: one Queue Pair per peer, one-sided RDMA Read.
	MQRD = shuffle.MQRD
	// MQWR: one Queue Pair per peer, one-sided RDMA Write (the paper's
	// first future-work item, implemented as an extension).
	MQWR = shuffle.MQWR
)

// Algorithms lists the six designs of the paper's Table 1;
// ExtendedAlgorithms adds the RDMA Write designs.
var (
	Algorithms         = shuffle.Algorithms
	ExtendedAlgorithms = shuffle.ExtendedAlgorithms
)

// NewCluster boots a simulated cluster of nodes over the profile; threads
// <= 0 selects the profile default.
func NewCluster(prof Profile, nodes, threads int, seed int64) *Cluster {
	return cluster.New(prof, nodes, threads, seed)
}

// BuildComm wires the endpoints of a shuffle configuration across the
// cluster; it must run inside a Proc (use Cluster.Sim.Spawn).
func BuildComm(p *Proc, c *Cluster, cfg Config) *Comm {
	return shuffle.Build(p, c.Devs, cfg, c.Threads)
}

// RDMA returns a transport factory for one of the paper's RDMA designs.
func RDMA(cfg Config) cluster.ProviderFactory { return cluster.RDMAProvider(cfg) }

// MPI returns the MVAPICH-like baseline transport factory.
func MPI() cluster.ProviderFactory { return cluster.MPIProvider(mpi.Config{}) }

// IPoIB returns the TCP-over-InfiniBand baseline transport factory.
func IPoIB() cluster.ProviderFactory { return cluster.IPoIBProvider(ipoib.Config{}) }

// Repartition returns singleton transmission groups (hash partitioning).
func Repartition(n int) Groups { return shuffle.Repartition(n) }

// Broadcast returns a single group containing every node.
func Broadcast(n int) Groups { return shuffle.Broadcast(n) }

// KeyInt64Col returns a partitioning hash over an int64 column.
func KeyInt64Col(col int) func(sch *Schema, row []byte) uint64 {
	return shuffle.KeyInt64Col(col)
}

// SyntheticTable generates the paper's synthetic table R.
func SyntheticTable(seed int64, rows int) *Table {
	return cluster.SyntheticTable(seed, rows)
}
