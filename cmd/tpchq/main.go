// Command tpchq runs TPC-H Q3, Q4, or Q10 on a simulated cluster with a
// chosen shuffle transport, printing the response time, per-edge shuffle
// statistics, and the result rows. Queries execute through the DAG
// planner (internal/dag) by default; -handwired selects the original
// hand-wired drivers, which produce byte-identical results.
//
// Usage:
//
//	tpchq -q 4 -nodes 8 -sf 0.1 -transport mesq
//	tpchq -q 4 -nodes 8 -sf 0.1 -local        # co-partitioned baseline
//	tpchq -q 10 -nodes 16 -sf 0.2 -transport mpi -profile fdr
package main

import (
	"flag"
	"fmt"
	"os"

	"rshuffle/internal/cluster"
	"rshuffle/internal/dag"
	"rshuffle/internal/engine"
	"rshuffle/internal/fabric"
	"rshuffle/internal/tpch"
)

func main() {
	var (
		q         = flag.Int("q", 4, "TPC-H query: 3, 4 or 10")
		nodes     = flag.Int("nodes", 8, "cluster size")
		sf        = flag.Float64("sf", 0.05, "TPC-H scale factor")
		transport = flag.String("transport", "mesq", "mesq, memq, semq, sesq, memq-rd, semq-rd, memq-wr, semq-wr, mpi, ipoib")
		profile   = flag.String("profile", "edr", "cluster profile: fdr or edr")
		local     = flag.Bool("local", false, "co-partitioned 'local data' plan (Q4 only)")
		handwired = flag.Bool("handwired", false, "use the hand-wired drivers instead of the DAG planner")
		seed      = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	var prof fabric.Profile
	switch *profile {
	case "fdr":
		prof = fabric.FDR()
	case "edr":
		prof = fabric.EDR()
	default:
		fatal("unknown profile %q", *profile)
	}
	prof.UDReorderProb = 0

	factory, err := tpch.TransportFactory(*transport, prof.Threads)
	if err != nil {
		fatal("%v", err)
	}

	layout := tpch.Random
	if *local {
		if *q != 4 {
			fatal("-local is only meaningful for Q4")
		}
		layout = tpch.CoPartitioned
	}
	fmt.Printf("generating TPC-H SF %.3g across %d nodes...\n", *sf, *nodes)
	db := tpch.Generate(*sf, *nodes, layout, *seed)
	fmt.Printf("  %d customers, %d orders, %d lineitems (%.1f MiB)\n",
		db.NCustomer, db.NOrders, db.NLineitem, float64(db.Bytes())/(1<<20))

	c := cluster.New(prof, *nodes, 0, *seed)
	var res *tpch.QueryResult
	var dr *dag.Result
	if *handwired {
		switch *q {
		case 3:
			res = tpch.RunQ3(c, db, factory)
		case 4:
			res = tpch.RunQ4(c, db, factory, *local)
		case 10:
			res = tpch.RunQ10(c, db, factory)
		default:
			fatal("query must be 3, 4 or 10")
		}
	} else {
		var err error
		res, dr, err = tpch.Run(c, db, *q, factory, *local)
		if err != nil {
			fatal("%v", err)
		}
	}
	if res.Err != nil {
		fatal("query failed: %v", res.Err)
	}
	fmt.Printf("Q%d on %d %s nodes over %s: %v (%d result rows)\n",
		*q, *nodes, prof.Name, *transport, res.Elapsed, res.Rows)
	if dr != nil {
		fmt.Println("shuffle edges:")
		for _, e := range dr.Edges {
			fmt.Printf("  %-20s %-10s %9d rows %12d bytes %9d wqes\n",
				e.Edge, e.Type, e.Rows, e.Bytes, e.WRs)
		}
	}
	printRows(res.Result)
}

func printRows(t *engine.Table) {
	if t == nil {
		return
	}
	for i := 0; i < t.N && i < 25; i++ {
		b := engine.Batch{Sch: t.Sch, Data: t.Row(i), N: 1}
		fmt.Printf("  ")
		for col, typ := range t.Sch.Cols {
			switch typ {
			case engine.TInt64:
				fmt.Printf("%d\t", b.Int64(0, col))
			case engine.TFloat64:
				fmt.Printf("%.2f\t", b.Float64(0, col))
			default:
				fmt.Printf("%s\t", b.Str(0, col))
			}
		}
		fmt.Println()
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
