// Command shufflebench regenerates the paper's evaluation: every figure and
// table of §5 as a text report, measured in virtual time on the simulated
// FDR/EDR clusters.
//
// Usage:
//
//	shufflebench -list
//	shufflebench -exp fig10,fig12
//	shufflebench -exp all -full -out results.txt
//	shufflebench -chaos
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rshuffle/internal/cluster"
	"rshuffle/internal/experiments"
	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		exp   = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		full  = flag.Bool("full", false, "paper-grade data volumes (slower, smoother numbers)")
		out   = flag.String("out", "", "also write the report to this file")
		seed  = flag.Int64("seed", 42, "simulation seed")
		chaos = flag.Bool("chaos", false, "run the fault-injection matrix instead of the experiments")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("  %-10s %s\n", e.Name, e.What)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *chaos {
		if err := runChaosMatrix(w, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = names[:0]
		for _, e := range experiments.All {
			names = append(names, e.Name)
		}
	}
	opts := experiments.Options{Fast: !*full, Seed: *seed}
	mode := "fast"
	if *full {
		mode = "full"
	}
	fmt.Fprintf(w, "rshuffle evaluation reproduction (%s mode, seed %d)\n\n", mode, *seed)
	for _, name := range names {
		e := experiments.Find(strings.TrimSpace(name))
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(1)
		}
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Fprintln(w, t.Format())
		}
		fmt.Fprintf(w, "  (%s completed in %v wall time)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}

// runChaosMatrix runs every Table 1 algorithm under every fault scenario —
// transient, persistent, and crash-stop — and prints one outcome row per
// cell. With a fixed seed the table is bit-for-bit reproducible.
func runChaosMatrix(w io.Writer, seed int64) error {
	opts := cluster.ChaosOpts{
		Prof: fabric.FDR(), Nodes: 3, Threads: 2,
		RowsPerNode: 8192, Seed: seed,
		Policy: cluster.RecoveryPolicy{
			MaxRestarts: 2,
			BaseBackoff: 500 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
		},
	}
	faults := append(cluster.ChaosFaults(), cluster.ChaosCrashFaults()...)
	fmt.Fprintf(w, "chaos matrix: %d nodes, %d rows/node, seed %d (restarts<=%d)\n\n",
		opts.Nodes, opts.RowsPerNode, seed, opts.Policy.MaxRestarts)
	fmt.Fprintf(w, "%-9s %-13s %-9s %8s %7s %8s %5s %10s  %s\n",
		"alg", "fault", "outcome", "restarts", "members", "rows", "det", "maxdetect", "error")
	for _, alg := range shuffle.Algorithms {
		for _, f := range faults {
			o, err := cluster.RunChaos(alg, f, opts)
			if err != nil {
				return fmt.Errorf("%s/%s: simulation failed: %v", alg.Name, f.Name, err)
			}
			outcome := "ok"
			if o.Failed {
				outcome = "exhausted"
			}
			maxDet := "-"
			if o.MaxDetect > 0 {
				maxDet = o.MaxDetect.String()
			}
			errText := ""
			if o.Failed {
				errText = o.Err
			}
			fmt.Fprintf(w, "%-9s %-13s %-9s %8d %7d %8d %5d %10s  %s\n",
				alg.Name, f.Name, outcome, o.Restarts, o.Members, o.Rows, o.Detections, maxDet, errText)
		}
	}
	return nil
}
