// Command shufflebench regenerates the paper's evaluation: every figure and
// table of §5 as a text report, measured in virtual time on the simulated
// FDR/EDR clusters.
//
// Usage:
//
//	shufflebench -list
//	shufflebench -exp fig10,fig12
//	shufflebench -exp all -full -out results.txt
//	shufflebench -chaos
//	shufflebench -trace out.json
//	shufflebench -metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rshuffle/internal/cluster"
	"rshuffle/internal/experiments"
	"rshuffle/internal/fabric"
	"rshuffle/internal/shuffle"
	"rshuffle/internal/sim"
	"rshuffle/internal/telemetry"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exp     = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		full    = flag.Bool("full", false, "paper-grade data volumes (slower, smoother numbers)")
		out     = flag.String("out", "", "also write the report to this file")
		seed    = flag.Int64("seed", 42, "simulation seed")
		chaos   = flag.Bool("chaos", false, "run the fault-injection matrix instead of the experiments")
		trace   = flag.String("trace", "", "run a short traced benchmark and write Chrome trace-event JSON to this file")
		metrics = flag.Bool("metrics", false, "regenerate the paper's Table 1 counters from the metrics registry")
		workers = flag.Int("workers", 0, "simulation cells in flight at once: 1 = serial reference mode, 0 = one per CPU")
		lps     = flag.Int("lps", 0, "logical partitions per simulation: >0 runs each whole-query cell on the conservative PDES engine (byte-identical results, lossless profiles only; combine with -workers 1 to give one big run the whole machine), 0 = classic single-threaded engine")
		profile = flag.String("profile", "ib", "fabric for -chaos and -trace: 'ib' (lossless InfiniBand) or 'rocev2' (lossy Ethernet with PFC/ECN/DCQCN)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	var prof fabric.Profile
	switch *profile {
	case "ib":
		prof = fabric.FDR()
	case "rocev2":
		prof = fabric.RoCEv2Lossy()
	default:
		fmt.Fprintf(os.Stderr, "unknown -profile %q (want ib or rocev2)\n", *profile)
		os.Exit(1)
	}

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("  %-10s %s\n", e.Name, e.What)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *trace != "" {
		if err := runTraced(w, *trace, prof, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*metrics {
			return
		}
	}
	if *metrics {
		if err := runMetrics(w, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *chaos {
		if err := runChaosMatrix(w, prof, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = names[:0]
		for _, e := range experiments.All {
			names = append(names, e.Name)
		}
	}
	var exps []*experiments.Experiment
	for _, name := range names {
		e := experiments.Find(strings.TrimSpace(name))
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(1)
		}
		exps = append(exps, e)
	}
	experiments.SetParallelism(*workers)
	opts := experiments.Options{Fast: !*full, Seed: *seed, Workers: *workers, ParallelLPs: *lps}
	mode := "fast"
	if *full {
		mode = "full"
	}
	fmt.Fprintf(w, "rshuffle evaluation reproduction (%s mode, seed %d)\n\n", mode, *seed)

	if opts.Workers == 1 {
		for _, e := range exps {
			start := time.Now()
			tables, err := e.Run(opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
				os.Exit(1)
			}
			printTables(w, e.Name, tables, time.Since(start))
		}
		return
	}

	// Overlap whole experiments: each renders into a private buffer and the
	// buffers are flushed in the order the experiments were requested, so the
	// report reads identically to a serial run. The process-wide cell budget
	// keeps at most -workers simulations executing no matter how many
	// experiments are in flight.
	type result struct {
		buf  strings.Builder
		err  error
		done chan struct{}
	}
	results := make([]*result, len(exps))
	for i, e := range exps {
		r := &result{done: make(chan struct{})}
		results[i] = r
		go func() {
			defer close(r.done)
			start := time.Now()
			tables, err := e.Run(opts)
			if err != nil {
				r.err = err
				return
			}
			printTables(&r.buf, e.Name, tables, time.Since(start))
		}()
	}
	for i, r := range results {
		<-r.done
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", exps[i].Name, r.err)
			os.Exit(1)
		}
		io.WriteString(w, r.buf.String())
	}
}

func printTables(w io.Writer, name string, tables []*experiments.Table, elapsed time.Duration) {
	for _, t := range tables {
		fmt.Fprintln(w, t.Format())
	}
	fmt.Fprintf(w, "  (%s completed in %v wall time)\n\n", name, elapsed.Round(time.Millisecond))
}

// runTraced executes a short MEMQ/SR benchmark with the event tracer
// attached and writes the Chrome trace-event JSON (loadable in
// chrome://tracing or Perfetto) to path. On the rocev2 profile the workload
// funnels into node 0 so the trace exercises the lossy-tier vocabulary
// (pause frames, ECN marks, CNPs, rate cuts, retransmits). The simulation
// is deterministic: two runs with the same seed write byte-identical files,
// which CI exploits as a regression check.
func runTraced(w io.Writer, path string, prof fabric.Profile, seed int64) error {
	c := cluster.New(prof, 4, 2, seed)
	tr := c.EnableTracing(1 << 20)
	cfg := shuffle.Algorithms[0].Config(c.Threads) // MEMQ/SR
	opts := cluster.BenchOpts{
		Factory: cluster.RDMAProvider(cfg), RowsPerNode: 8192,
	}
	if prof.Lossy {
		opts.RowsPerNode = 16384
		opts.GroupsFn = func(int) shuffle.Groups { return shuffle.Groups{{0}} }
	}
	res, err := c.RunBench(opts)
	if err != nil {
		return err
	}
	if res.Err != nil {
		return res.Err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := telemetry.WriteChromeTrace(f, tr); err != nil {
		return err
	}
	fmt.Fprintf(w, "traced %s benchmark: %s, %d nodes, %d rows/node, seed %d\n",
		shuffle.Algorithms[0].Name, prof.Name, 4, opts.RowsPerNode, seed)
	fmt.Fprintf(w, "  elapsed %v, %d events retained (%d overwritten) -> %s\n",
		res.Elapsed, tr.Len(), tr.Dropped(), path)
	return nil
}

// runMetrics regenerates the paper's Table 1 counters purely from the
// metrics registry: the Queue Pair census of the EDR cluster (16 nodes, 14
// threads per node) and the per-design WQE and QP-state-cache activity of a
// streaming run on the FDR cluster, whose 48-entry cache is the bottleneck
// the paper's Fig. 11 investigates.
func runMetrics(w io.Writer, seed int64) error {
	fmt.Fprintf(w, "registry-derived paper counters (seed %d)\n\n", seed)
	fmt.Fprintf(w, "Table 1 QP census (EDR, 16 nodes x 14 threads/node)\n")
	fmt.Fprintf(w, "  derivation: verbs.qps_created.node0 / 2 (one operator pair creates send + receive side)\n")
	fmt.Fprintf(w, "  %-8s %12s\n", "design", "QPs/operator")
	for _, name := range []string{"MEMQ/SR", "SEMQ/SR", "MESQ/SR", "SESQ/SR"} {
		alg := findAlgorithm(name)
		c := cluster.New(fabric.EDR(), 16, 14, seed)
		cfg := alg.Config(c.Threads)
		c.Sim.Spawn("build", func(p *sim.Proc) {
			shuffle.Build(p, c.Devs, cfg, c.Threads)
		})
		if err := c.Sim.Run(); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		reg := c.Metrics()
		fmt.Fprintf(w, "  %-8s %12d\n", strings.SplitN(name, "/", 2)[0],
			reg.CounterValue("verbs.qps_created.node0")/2)
	}

	const rows = 2048
	fmt.Fprintf(w, "\nWQE and QP-cache activity (FDR, 8 nodes x 10 threads/node, %d rows/node)\n", rows)
	fmt.Fprintf(w, "  %-8s %8s %9s %9s %9s %8s %7s %7s\n",
		"design", "QPs/op", "WQEs", "hits", "misses", "evicts", "miss%", "ctl%")
	for _, alg := range shuffle.Algorithms {
		c := cluster.New(fabric.FDR(), 8, 10, seed)
		cfg := alg.Config(c.Threads)
		res, err := c.RunBench(cluster.BenchOpts{
			Factory: cluster.RDMAProvider(cfg), RowsPerNode: rows,
		})
		if err != nil {
			return fmt.Errorf("%s: %v", alg.Name, err)
		}
		if res.Err != nil {
			return fmt.Errorf("%s: %v", alg.Name, res.Err)
		}
		reg := c.Metrics()
		hits := reg.CounterValue("fabric.qp_cache_hits.total")
		misses := reg.CounterValue("fabric.qp_cache_misses.total")
		missPct := 0.0
		if hits+misses > 0 {
			missPct = 100 * float64(misses) / float64(hits+misses)
		}
		ctl := reg.CounterValue("fabric.tx_control_bytes.total")
		wire := reg.CounterValue("fabric.tx_wire_bytes.total")
		ctlPct := 0.0
		if wire > 0 {
			ctlPct = 100 * float64(ctl) / float64(wire)
		}
		fmt.Fprintf(w, "  %-8s %8d %9d %9d %9d %8d %6.1f%% %6.2f%%\n",
			alg.Name,
			reg.CounterValue("verbs.qps_created.node0")/2,
			reg.CounterValue("verbs.posts.total"),
			hits, misses,
			reg.CounterValue("fabric.qp_cache_evictions.total"),
			missPct, ctlPct)
	}
	return nil
}

func findAlgorithm(name string) shuffle.Algorithm {
	for _, a := range shuffle.Algorithms {
		if a.Name == name {
			return a
		}
	}
	panic("unknown algorithm " + name)
}

// runChaosMatrix runs every Table 1 algorithm under every fault scenario —
// transient, persistent, and crash-stop — and prints one outcome row per
// cell. On the rocev2 profile the injected faults compose with the lossy
// tier's own hazards (pause frames, marks, tail drops, retransmits). With a
// fixed seed the table is bit-for-bit reproducible.
func runChaosMatrix(w io.Writer, prof fabric.Profile, seed int64) error {
	opts := cluster.ChaosOpts{
		Prof: prof, Nodes: 3, Threads: 2,
		RowsPerNode: 8192, Seed: seed,
		Policy: cluster.RecoveryPolicy{
			MaxRestarts: 2,
			BaseBackoff: 500 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
		},
	}
	faults := append(cluster.ChaosFaults(), cluster.ChaosCrashFaults()...)
	faults = append(faults, cluster.ChaosTransientFaults()...)
	fmt.Fprintf(w, "chaos matrix: %s, %d nodes, %d rows/node, seed %d (restarts<=%d)\n\n",
		prof.Name, opts.Nodes, opts.RowsPerNode, seed, opts.Policy.MaxRestarts)
	fmt.Fprintf(w, "%-9s %-21s %-9s %8s %7s %8s %5s %10s %9s  %s\n",
		"alg", "fault", "outcome", "restarts", "members", "rows", "det", "maxdetect", "restream", "error")
	for _, alg := range shuffle.Algorithms {
		for _, f := range faults {
			o, err := cluster.RunChaos(alg, f, opts)
			if err != nil {
				return fmt.Errorf("%s/%s: simulation failed: %v", alg.Name, f.Name, err)
			}
			outcome := "ok"
			if o.Failed {
				outcome = "exhausted"
			}
			maxDet := "-"
			if o.MaxDetect > 0 {
				maxDet = o.MaxDetect.String()
			}
			// restream reports the partial-restart economy: partitions
			// re-streamed over the total a full restart would move.
			restream := "-"
			if all := o.PartitionsKept + o.PartitionsRestreamed; all > 0 {
				restream = fmt.Sprintf("%d/%d", o.PartitionsRestreamed, all)
			}
			errText := ""
			if o.Failed {
				errText = o.Err
			}
			fmt.Fprintf(w, "%-9s %-21s %-9s %8d %7d %8d %5d %10s %9s  %s\n",
				alg.Name, f.Name, outcome, o.Restarts, o.Members, o.Rows, o.Detections, maxDet, restream, errText)
		}
	}
	return nil
}
