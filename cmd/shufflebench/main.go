// Command shufflebench regenerates the paper's evaluation: every figure and
// table of §5 as a text report, measured in virtual time on the simulated
// FDR/EDR clusters.
//
// Usage:
//
//	shufflebench -list
//	shufflebench -exp fig10,fig12
//	shufflebench -exp all -full -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rshuffle/internal/experiments"
)

func main() {
	var (
		list = flag.Bool("list", false, "list available experiments and exit")
		exp  = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		full = flag.Bool("full", false, "paper-grade data volumes (slower, smoother numbers)")
		out  = flag.String("out", "", "also write the report to this file")
		seed = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("  %-10s %s\n", e.Name, e.What)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = names[:0]
		for _, e := range experiments.All {
			names = append(names, e.Name)
		}
	}
	opts := experiments.Options{Fast: !*full, Seed: *seed}
	mode := "fast"
	if *full {
		mode = "full"
	}
	fmt.Fprintf(w, "rshuffle evaluation reproduction (%s mode, seed %d)\n\n", mode, *seed)
	for _, name := range names {
		e := experiments.Find(strings.TrimSpace(name))
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(1)
		}
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Fprintln(w, t.Format())
		}
		fmt.Fprintf(w, "  (%s completed in %v wall time)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
