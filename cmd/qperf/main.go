// Command qperf measures the peak point-to-point RC Send/Receive bandwidth
// of a simulated cluster profile, mirroring the qperf tool the paper uses
// as its line-rate reference.
//
// Usage:
//
//	qperf -profile edr -size 65536 -total 1073741824
package main

import (
	"flag"
	"fmt"
	"os"

	"rshuffle/internal/fabric"
	"rshuffle/internal/qperf"
)

func main() {
	var (
		profile = flag.String("profile", "edr", "cluster profile: fdr or edr")
		size    = flag.Int("size", 64<<10, "message size in bytes")
		total   = flag.Int64("total", 1<<30, "bytes to transfer")
	)
	flag.Parse()

	var prof fabric.Profile
	switch *profile {
	case "fdr":
		prof = fabric.FDR()
	case "edr":
		prof = fabric.EDR()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(1)
	}
	res := qperf.Run(prof, *size, *total)
	fmt.Printf("%s  msg %d B  %d B in %v  ->  %.2f GiB/s\n",
		prof.Name, *size, res.Bytes, res.Elapsed, res.GiBps())
}
