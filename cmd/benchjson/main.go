// Command benchjson converts `go test -bench` text output (read from stdin)
// into a machine-readable JSON report. `make bench` pipes the kernel micro-
// and cluster macro-benchmarks through it to produce BENCH_sim.json, which
// CI archives so hot-path regressions (ns/op, allocs/op, events/sec) show up
// as artifact diffs rather than anecdotes.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./internal/sim/ | benchjson -o BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is one benchmark run.
type Report struct {
	Time       string      `json:"time,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// History is the accumulating BENCH_sim.json schema: one entry per `make
// bench` invocation, newest last, so regression tracking sees a series
// instead of only the latest sample.
type History struct {
	Runs []Report `json:"runs"`
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output file")
	appendRun := flag.Bool("append", false, "append this run to the output file's run history instead of overwriting")
	flag.Parse()

	rep := Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	var doc any = &rep
	runs := 1
	if *appendRun {
		rep.Time = time.Now().UTC().Format(time.RFC3339)
		hist := loadHistory(*out)
		hist.Runs = append(hist.Runs, rep)
		doc, runs = &hist, len(hist.Runs)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *appendRun {
		fmt.Printf("benchjson: appended %d benchmarks to %s (%d runs)\n", len(rep.Benchmarks), *out, runs)
		return
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// loadHistory reads the existing output file, accepting both the history
// schema and the original bare-Report schema (which becomes the first run).
// A missing or unparseable file starts a fresh history.
func loadHistory(path string) History {
	var hist History
	raw, err := os.ReadFile(path)
	if err != nil {
		return hist
	}
	if json.Unmarshal(raw, &hist) == nil && hist.Runs != nil {
		return hist
	}
	var old Report
	if json.Unmarshal(raw, &old) == nil && len(old.Benchmarks) > 0 {
		hist.Runs = append(hist.Runs, old)
	}
	return hist
}

// parseLine parses one result line: the benchmark name (with its -N GOMAXPROCS
// suffix, if any), the iteration count, then (value, unit) metric pairs.
//
//	BenchmarkRing 	124924426	         9.710 ns/op	 103164018 events/sec	       0 B/op	       0 allocs/op
func parseLine(line, pkg string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
