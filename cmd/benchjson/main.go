// Command benchjson converts `go test -bench` text output (read from stdin)
// into a machine-readable JSON report. `make bench` pipes the kernel micro-
// and cluster macro-benchmarks through it to produce BENCH_sim.json, which
// CI archives so hot-path regressions (ns/op, allocs/op, events/sec) show up
// as artifact diffs rather than anecdotes.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./internal/sim/ | benchjson -o BENCH_sim.json
//
// When -count>1 repeats a benchmark, the fastest repetition is kept:
// scheduler and cache interference only ever add time, so the minimum is
// the noise-robust estimate the regression gate should judge.
//
// Regression gate mode: -compare diffs two runs and exits non-zero when any
// benchmark's ns/op regressed by more than -threshold (fractional; 0.15 =
// 15%). With two file arguments it compares their latest runs; with one
// argument it compares the last two runs of that file's -append history.
// CI runs the smoke benches through it so a hot-path regression fails the
// build instead of landing silently.
//
//	benchjson -compare old.json new.json -threshold 0.15
//	benchjson -compare BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is one benchmark run.
type Report struct {
	Time       string      `json:"time,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// History is the accumulating BENCH_sim.json schema: one entry per `make
// bench` invocation, newest last, so regression tracking sees a series
// instead of only the latest sample.
type History struct {
	Runs []Report `json:"runs"`
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output file")
	appendRun := flag.Bool("append", false, "append this run to the output file's run history instead of overwriting")
	compare := flag.Bool("compare", false, "compare runs and exit non-zero on ns/op regression: two file args = their latest runs, one file arg = the last two runs of its history")
	threshold := flag.Float64("threshold", 0.15, "fractional ns/op regression that fails -compare (0.15 = 15%)")
	flag.Parse()

	if *compare {
		// Accept flags after the file arguments (`-compare a.json b.json
		// -threshold 0.15`): stdlib flag parsing stops at the first
		// positional, so re-parse whenever one of the remaining arguments
		// still looks like a flag.
		rest := flag.Args()
		var files []string
		for len(rest) > 0 {
			if strings.HasPrefix(rest[0], "-") {
				if err := flag.CommandLine.Parse(rest); err != nil {
					os.Exit(2)
				}
				rest = flag.Args()
				continue
			}
			files = append(files, rest[0])
			rest = rest[1:]
		}
		os.Exit(runCompare(files, *threshold))
	}

	rep := Report{Benchmarks: []Benchmark{}}
	pkg := ""
	idx := map[string]int{} // Pkg+"."+Name -> position in rep.Benchmarks
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line, pkg)
			if !ok {
				break
			}
			// -count>1 repeats each benchmark; keep the fastest repetition.
			// The minimum is the noise-robust estimator for gating — scheduler
			// and cache interference only ever add time — where a single
			// repetition makes channel-handoff-bound benchmarks flap by ±20%
			// on a busy machine.
			if j, seen := idx[b.Pkg+"."+b.Name]; seen {
				if b.Metrics["ns/op"] < rep.Benchmarks[j].Metrics["ns/op"] {
					rep.Benchmarks[j] = b
				}
				break
			}
			idx[b.Pkg+"."+b.Name] = len(rep.Benchmarks)
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	var doc any = &rep
	runs := 1
	if *appendRun {
		rep.Time = time.Now().UTC().Format(time.RFC3339)
		hist := loadHistory(*out)
		hist.Runs = append(hist.Runs, rep)
		doc, runs = &hist, len(hist.Runs)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *appendRun {
		fmt.Printf("benchjson: appended %d benchmarks to %s (%d runs)\n", len(rep.Benchmarks), *out, runs)
		return
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// runCompare loads the baseline and candidate runs, diffs ns/op per
// benchmark, prints a verdict line for each, and returns the process exit
// code: 0 when no benchmark regressed past the threshold, 1 otherwise.
// Benchmarks present on only one side are reported but never fail the gate
// (new benchmarks appear, retired ones disappear; neither is a regression).
func runCompare(args []string, threshold float64) int {
	var oldRun, newRun Report
	var oldLabel, newLabel string
	switch len(args) {
	case 1:
		hist := loadHistory(args[0])
		if len(hist.Runs) < 2 {
			fmt.Fprintf(os.Stderr, "benchjson: %s has %d run(s); -compare needs two\n",
				args[0], len(hist.Runs))
			return 1
		}
		oldRun, newRun = hist.Runs[len(hist.Runs)-2], hist.Runs[len(hist.Runs)-1]
		oldLabel, newLabel = "previous run", "latest run"
	case 2:
		for i, p := range []string{args[0], args[1]} {
			hist := loadHistory(p)
			if len(hist.Runs) == 0 {
				fmt.Fprintf(os.Stderr, "benchjson: %s holds no benchmark runs\n", p)
				return 1
			}
			if i == 0 {
				oldRun = hist.Runs[len(hist.Runs)-1]
			} else {
				newRun = hist.Runs[len(hist.Runs)-1]
			}
		}
		oldLabel, newLabel = args[0], args[1]
	default:
		fmt.Fprintln(os.Stderr, "benchjson: -compare takes one history file or two run files")
		return 1
	}

	oldNs := map[string]float64{}
	for _, b := range oldRun.Benchmarks {
		oldNs[b.Pkg+"."+b.Name] = b.Metrics["ns/op"]
	}
	fmt.Printf("benchjson: comparing %s -> %s (threshold %+.0f%% ns/op)\n",
		oldLabel, newLabel, threshold*100)
	failed := 0
	for _, b := range newRun.Benchmarks {
		key := b.Pkg + "." + b.Name
		was, ok := oldNs[key]
		now := b.Metrics["ns/op"]
		delete(oldNs, key)
		if !ok {
			fmt.Printf("  new      %-40s %12.1f ns/op\n", b.Name, now)
			continue
		}
		if was <= 0 || now <= 0 {
			continue
		}
		delta := now/was - 1
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSED"
			failed++
		}
		fmt.Printf("  %-8s %-40s %12.1f -> %10.1f ns/op (%+.1f%%)\n",
			verdict, b.Name, was, now, delta*100)
	}
	for key := range oldNs {
		fmt.Printf("  retired  %s\n", key)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%\n",
			failed, threshold*100)
		return 1
	}
	return 0
}

// loadHistory reads the existing output file, accepting both the history
// schema and the original bare-Report schema (which becomes the first run).
// A missing or unparseable file starts a fresh history.
func loadHistory(path string) History {
	var hist History
	raw, err := os.ReadFile(path)
	if err != nil {
		return hist
	}
	if json.Unmarshal(raw, &hist) == nil && hist.Runs != nil {
		return hist
	}
	var old Report
	if json.Unmarshal(raw, &old) == nil && len(old.Benchmarks) > 0 {
		hist.Runs = append(hist.Runs, old)
	}
	return hist
}

// parseLine parses one result line: the benchmark name (with its -N GOMAXPROCS
// suffix, if any), the iteration count, then (value, unit) metric pairs.
//
//	BenchmarkRing 	124924426	         9.710 ns/op	 103164018 events/sec	       0 B/op	       0 allocs/op
func parseLine(line, pkg string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
