// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs the corresponding experiment driver once per
// iteration (the drivers themselves sweep the paper's parameter grids) and
// reports the headline values as custom metrics, so `go test -bench=.`
// reproduces the full evaluation. Wall time measures the simulator, not the
// modelled cluster — the reported custom metrics are the virtual-time
// results that correspond to the paper's axes.
package rshuffle_test

import (
	"math"
	"testing"

	"rshuffle/internal/experiments"
	"rshuffle/internal/fabric"
	"rshuffle/internal/qperf"
)

var benchOpts = experiments.Options{Fast: true, Seed: 42}

func metric(b *testing.B, t *experiments.Table, row string, col int, name string) {
	b.Helper()
	for _, r := range t.Rows {
		if r.Name == row && col < len(r.Vals) && !math.IsNaN(r.Vals[col]) {
			b.ReportMetric(r.Vals[col], name)
			return
		}
	}
	b.Fatalf("row %q col %d missing in %s", row, col, t.ID)
}

func runExp(b *testing.B, name string) []*experiments.Table {
	b.Helper()
	e := experiments.Find(name)
	if e == nil {
		b.Fatalf("unknown experiment %q", name)
	}
	var out []*experiments.Table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts, err := e.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		out = ts
	}
	return out
}

// BenchmarkTable1DesignSpace regenerates Table 1 and verifies the Queue
// Pair census of all six designs.
func BenchmarkTable1DesignSpace(b *testing.B) {
	ts := runExp(b, "table1")
	metric(b, ts[0], "MEMQ/SR", 0, "MEMQ/SR-QPs")
	metric(b, ts[0], "MESQ/SR", 0, "MESQ/SR-QPs")
}

// BenchmarkFig08CreditFrequency regenerates Figure 8 (both clusters).
func BenchmarkFig08CreditFrequency(b *testing.B) {
	ts := runExp(b, "fig08")
	// f=2 is the paper's chosen operating point.
	metric(b, ts[0], "MESQ/SR", 1, "FDR-MESQ/SR-GiBps")
	metric(b, ts[1], "MESQ/SR", 1, "EDR-MESQ/SR-GiBps")
	metric(b, ts[1], "MPI", 1, "EDR-MPI-GiBps")
}

// BenchmarkFig09MessageSize regenerates Figure 9(a) and (b).
func BenchmarkFig09MessageSize(b *testing.B) {
	ts := runExp(b, "fig09")
	metric(b, ts[0], "SEMQ/SR", 0, "SEMQ/SR-4KiB-GiBps")
	metric(b, ts[0], "SEMQ/SR", 2, "SEMQ/SR-64KiB-GiBps")
	metric(b, ts[1], "MESQ/SR", 0, "UD-memory-MiB")
	metric(b, ts[1], "MEMQ/SR", 4, "RC-1MiB-memory-MiB")
}

// BenchmarkFig10ScaleOut regenerates Figure 10 (all four panels).
func BenchmarkFig10ScaleOut(b *testing.B) {
	ts := runExp(b, "fig10")
	// Panel (a): FDR repartition; panel (c): EDR repartition; 16 nodes.
	metric(b, ts[0], "MESQ/SR", 3, "FDR-16n-MESQ/SR-GiBps")
	metric(b, ts[0], "MEMQ/SR", 3, "FDR-16n-MEMQ/SR-GiBps")
	metric(b, ts[2], "MESQ/SR", 3, "EDR-16n-MESQ/SR-GiBps")
	metric(b, ts[2], "MPI", 3, "EDR-16n-MPI-GiBps")
	metric(b, ts[2], "IPoIB", 3, "EDR-16n-IPoIB-GiBps")
}

// BenchmarkFig11QueuePairs regenerates Figure 11.
func BenchmarkFig11QueuePairs(b *testing.B) {
	ts := runExp(b, "fig11")
	metric(b, ts[0], "SQ/SR", 3, "MESQ/SR-GiBps")
	metric(b, ts[0], "MQ/SR", 3, "MEMQ/SR-GiBps")
}

// BenchmarkFig12SetupCost regenerates Figure 12.
func BenchmarkFig12SetupCost(b *testing.B) {
	ts := runExp(b, "fig12")
	last := len(ts[0].Cols) - 1
	metric(b, ts[0], "MESQ/SR", last, "MESQ/SR-16n-ms")
	metric(b, ts[0], "MEMQ/SR", last, "MEMQ/SR-16n-ms")
}

// BenchmarkFig13ComputeIntensive regenerates Figure 13.
func BenchmarkFig13ComputeIntensive(b *testing.B) {
	ts := runExp(b, "fig13")
	last := len(ts[0].Cols) - 1
	metric(b, ts[0], "MESQ/SR", last, "MESQ/SR-overlap-pct")
	metric(b, ts[0], "IPoIB", last, "IPoIB-overlap-pct")
}

// BenchmarkFig14aNetworkUpgrade regenerates Figure 14(a).
func BenchmarkFig14aNetworkUpgrade(b *testing.B) {
	ts := runExp(b, "fig14a")
	metric(b, ts[0], "MESQ/SR", 1, "EDR-MESQ/SR-ms")
	metric(b, ts[0], "MPI", 1, "EDR-MPI-ms")
	metric(b, ts[0], "local data", 1, "EDR-local-ms")
}

// BenchmarkFig14ScaleOut regenerates Figures 14(b), (c) and (d).
func BenchmarkFig14ScaleOut(b *testing.B) {
	ts := runExp(b, "fig14bcd")
	metric(b, ts[0], "MESQ/SR", 3, "Q4-16n-MESQ/SR-ms")
	metric(b, ts[0], "MPI", 3, "Q4-16n-MPI-ms")
	metric(b, ts[1], "MESQ/SR", 3, "Q3-16n-MESQ/SR-ms")
	metric(b, ts[2], "MESQ/SR", 3, "Q10-16n-MESQ/SR-ms")
	metric(b, ts[2], "MPI", 3, "Q10-16n-MPI-ms")
}

// BenchmarkQperf measures the line-rate reference used throughout §5.
func BenchmarkQperf(b *testing.B) {
	var fdr, edr float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fdr = qperf.Run(fabric.FDR(), 64<<10, 1<<30).GiBps()
		edr = qperf.Run(fabric.EDR(), 64<<10, 1<<30).GiBps()
	}
	b.ReportMetric(fdr, "FDR-GiBps")
	b.ReportMetric(edr, "EDR-GiBps")
}

// BenchmarkExtWriteEndpoint regenerates the RDMA Write future-work study.
func BenchmarkExtWriteEndpoint(b *testing.B) {
	ts := runExp(b, "ext-write")
	metric(b, ts[1], "MEMQ/WR", 1, "bcast-8n-MEMQ/WR-GiBps")
	metric(b, ts[1], "MEMQ/RD", 1, "bcast-8n-MEMQ/RD-GiBps")
}

// BenchmarkExtFabrics regenerates the RoCE/iWARP future-work study.
func BenchmarkExtFabrics(b *testing.B) {
	ts := runExp(b, "ext-fabrics")
	metric(b, ts[0], "SEMQ/SR", 0, "RoCE-SEMQ/SR-GiBps")
	metric(b, ts[0], "SEMQ/SR", 1, "iWARP-SEMQ/SR-GiBps")
}

// BenchmarkExtMulticast regenerates the native-multicast future-work study.
func BenchmarkExtMulticast(b *testing.B) {
	ts := runExp(b, "ext-mcast")
	last := len(ts[0].Cols) - 1
	metric(b, ts[0], "MESQ/SR+mcast", last, "mcast-16n-GiBps")
	metric(b, ts[0], "MESQ/SR+mcast txmsgs", last, "mcast-16n-txmsgs")
}

// BenchmarkExtZeroCopy regenerates the copy-vs-zero-copy ablation.
func BenchmarkExtZeroCopy(b *testing.B) {
	ts := runExp(b, "ext-zerocopy")
	metric(b, ts[0], "copy", 0, "copy-16B-GiBps")
	metric(b, ts[0], "zero-copy", 0, "zerocopy-16B-GiBps")
}

// BenchmarkExtQPCache regenerates the QP-cache ablation.
func BenchmarkExtQPCache(b *testing.B) {
	ts := runExp(b, "ext-qpcache")
	metric(b, ts[0], "MEMQ/SR", 0, "MEMQ/SR-16QPcache-GiBps")
	last := len(ts[0].Cols) - 1
	metric(b, ts[0], "MEMQ/SR", last, "MEMQ/SR-bigcache-GiBps")
}
